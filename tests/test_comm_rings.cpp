#include "comm/ring.hpp"

#include <gtest/gtest.h>

#include <set>

namespace burst::comm {
namespace {

TEST(RingOrder, FlatRingNavigation) {
  RingOrder r = flat_ring(4);
  EXPECT_EQ(r.size(), 4);
  EXPECT_EQ(r.next_of(0), 1);
  EXPECT_EQ(r.next_of(3), 0);
  EXPECT_EQ(r.prev_of(0), 3);
  EXPECT_EQ(r.prev_of(2), 1);
  EXPECT_EQ(r.index_of(2), 2);
}

TEST(RingOrder, ContainsChecksMembership) {
  RingOrder r({4, 5, 6});
  EXPECT_TRUE(r.contains(5));
  EXPECT_FALSE(r.contains(0));
  EXPECT_FALSE(r.contains(7));
  EXPECT_FALSE(r.contains(-1));
}

TEST(RingOrder, NonContiguousOrder) {
  RingOrder r({2, 0, 5});
  EXPECT_EQ(r.next_of(2), 0);
  EXPECT_EQ(r.next_of(5), 2);
  EXPECT_EQ(r.prev_of(2), 5);
}

TEST(Rings, IntraNodeRingCoversOneNode) {
  sim::Topology topo = sim::Topology::multi_node(2, 4);
  RingOrder r = intra_node_ring(topo, 1);
  EXPECT_EQ(r.size(), 4);
  EXPECT_EQ(r.ranks(), (std::vector<int>{4, 5, 6, 7}));
  for (int rank : r.ranks()) {
    EXPECT_EQ(topo.node_of(rank), 1);
  }
}

TEST(Rings, InterNodeSlotRingUsesOneRailPerSlot) {
  sim::Topology topo = sim::Topology::multi_node(3, 4);
  RingOrder r = inter_node_slot_ring(topo, 2);
  EXPECT_EQ(r.size(), 3);
  EXPECT_EQ(r.ranks(), (std::vector<int>{2, 6, 10}));
  for (int rank : r.ranks()) {
    EXPECT_EQ(topo.local_rank(rank), 2);
  }
}

// Every rank appears in exactly one intra ring and one slot ring, and those
// two rings intersect only at that rank — the structural property behind the
// double-ring decomposition in Figure 4.
TEST(Rings, DoubleRingDecompositionPartitionsCluster) {
  sim::Topology topo = sim::Topology::multi_node(2, 4);
  for (int rank = 0; rank < topo.world_size(); ++rank) {
    RingOrder intra = intra_node_ring(topo, topo.node_of(rank));
    RingOrder inter = inter_node_slot_ring(topo, topo.local_rank(rank));
    EXPECT_TRUE(intra.contains(rank));
    EXPECT_TRUE(inter.contains(rank));
    std::set<int> intersection;
    for (int a : intra.ranks()) {
      if (inter.contains(a)) {
        intersection.insert(a);
      }
    }
    EXPECT_EQ(intersection, std::set<int>{rank});
  }
}

}  // namespace
}  // namespace burst::comm
