// Cross-validation between the two performance paths (DESIGN.md §2): the
// discrete-event simulator's measured sweep times must agree with the
// closed-form communication model when both are given identical link
// parameters. This pins the Table 1 formulas to the executable schedules.
#include <gtest/gtest.h>

#include "comm/communicator.hpp"
#include "comm/sim_transport.hpp"
#include "core/sweep.hpp"
#include "perfmodel/comm_model.hpp"
#include "sim/cluster.hpp"
#include "tensor/tensor.hpp"

namespace burst {
namespace {

using perfmodel::ClusterShape;
using perfmodel::CommModel;
using perfmodel::HardwareModel;
using sim::Cluster;
using sim::DeviceContext;
using sim::Topology;
using tensor::Tensor;

HardwareModel hw_from(const Topology& topo) {
  HardwareModel hw;
  hw.nvlink_bw = topo.intra.bandwidth_bytes_per_s;
  hw.nvlink_latency = topo.intra.latency_s;
  hw.ib_bw = topo.inter.bandwidth_bytes_per_s;
  hw.ib_latency = topo.inter.latency_s;
  return hw;
}

double simulate_activation_sweep(const Topology& topo, double shard_bytes,
                                 bool topo_aware) {
  Cluster cluster({topo});
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp, 1.0);
    const auto route =
        topo_aware ? core::SweepRoute::double_ring(topo)
                   : core::SweepRoute::flat(comm::flat_ring(topo.world_size()));
    Tensor own(static_cast<std::int64_t>(shard_bytes / 8), 8);
    core::ring_sweep_activation(comm, route, core::SweepOptions{}, {own},
                                [](const std::vector<Tensor>&, int) {});
  });
  return cluster.makespan();
}

class SimVsModel : public ::testing::TestWithParam<std::pair<int, int>> {};

// Flat-ring forward sweep: (G-1)/G of one tensor pass; the simulator and
// the closed form must agree within a few percent (pipeline fill effects).
TEST_P(SimVsModel, FlatRingForwardSweepMatchesClosedForm) {
  const auto [nodes, gpus] = GetParam();
  Topology topo = Topology::multi_node(nodes, gpus);
  const double shard = 32e6;
  const CommModel cm(hw_from(topo));
  const ClusterShape shape{nodes, gpus};
  const int g = shape.world();
  const double model =
      cm.pass_flat(shard, shape) * static_cast<double>(g - 1) / g;
  const double sim = simulate_activation_sweep(topo, shard, false);
  EXPECT_NEAR(sim, model, 0.10 * model)
      << nodes << "x" << gpus << ": sim " << sim << " model " << model;
}

// Topology-aware sweep: the closed form is the full-overlap lower bound;
// the hop-by-hop simulator must sit at or above it, but within the
// flat-ring time (it must actually help).
TEST_P(SimVsModel, DoubleRingSweepBetweenBoundAndFlat) {
  const auto [nodes, gpus] = GetParam();
  if (nodes < 2 || gpus < 2) {
    GTEST_SKIP();
  }
  Topology topo = Topology::multi_node(nodes, gpus);
  const double shard = 32e6;
  const CommModel cm(hw_from(topo));
  const ClusterShape shape{nodes, gpus};
  const int g = shape.world();
  const double scale = static_cast<double>(g - 1) / g;
  const double bound = std::max(cm.pass_intra_part(shard, shape),
                                cm.pass_inter_part(shard, shape)) *
                       scale;
  const double flat = cm.pass_flat(shard, shape) * scale;
  const double sim = simulate_activation_sweep(topo, shard, true);
  EXPECT_GE(sim, 0.95 * bound);
  EXPECT_LT(sim, flat);
}

INSTANTIATE_TEST_SUITE_P(Topologies, SimVsModel,
                         ::testing::Values(std::make_pair(1, 4),
                                           std::make_pair(2, 4),
                                           std::make_pair(4, 4),
                                           std::make_pair(2, 8)));

}  // namespace
}  // namespace burst
