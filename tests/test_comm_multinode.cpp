// Collectives on multi-node topologies: correctness is topology-invariant,
// stream selection follows link classes, and virtual time reflects the
// slower inter-node rails.
#include <gtest/gtest.h>

#include <mutex>

#include "comm/communicator.hpp"
#include "comm/sim_transport.hpp"
#include "sim/cluster.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace burst::comm {
namespace {

using sim::Cluster;
using sim::DeviceContext;
using sim::Topology;
using tensor::Rng;
using tensor::Tensor;

class MultiNodeCollectives
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MultiNodeCollectives, AllReduceMatchesSerialAcrossNodes) {
  const auto [nodes, gpus] = GetParam();
  const int g = nodes * gpus;
  Cluster cluster({Topology::multi_node(nodes, gpus)});
  std::vector<Tensor> inputs;
  for (int r = 0; r < g; ++r) {
    Rng rng(300 + static_cast<std::uint64_t>(r));
    inputs.push_back(rng.gaussian(static_cast<std::int64_t>(g) * 2, 3, 1.0f));
  }
  Tensor expected = Tensor::zeros(g * 2, 3);
  for (const auto& t : inputs) {
    tensor::add_inplace(expected, t);
  }
  std::vector<float> err(static_cast<std::size_t>(g), 1.0f);
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    Communicator comm(comm_tp);
    Tensor t = inputs[static_cast<std::size_t>(ctx.rank())];
    comm.all_reduce_inplace(t);
    err[static_cast<std::size_t>(ctx.rank())] =
        tensor::max_abs_diff(t, expected);
  });
  for (int r = 0; r < g; ++r) {
    EXPECT_LT(err[static_cast<std::size_t>(r)], 1e-4f) << "rank " << r;
  }
}

TEST_P(MultiNodeCollectives, AllToAllGroupWithinOneNodeStaysOnNvlink) {
  const auto [nodes, gpus] = GetParam();
  if (gpus < 2) {
    GTEST_SKIP();
  }
  Cluster cluster({Topology::multi_node(nodes, gpus)});
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    Communicator comm(comm_tp);
    // Group = this rank's node.
    const int node = ctx.topo().node_of(ctx.rank());
    std::vector<int> group;
    for (int l = 0; l < gpus; ++l) {
      group.push_back(node * gpus + l);
    }
    std::vector<Tensor> send;
    for (int i = 0; i < gpus; ++i) {
      send.push_back(Tensor::full(1, 1, static_cast<float>(
                                            ctx.rank() * 100 + group[i])));
    }
    auto got = comm.all_to_all_group(group, std::move(send));
    for (int i = 0; i < gpus; ++i) {
      EXPECT_FLOAT_EQ(got[static_cast<std::size_t>(i)](0, 0),
                      static_cast<float>(group[i] * 100 + ctx.rank()));
    }
    // No traffic left the node: the inter-node stream never advanced.
    EXPECT_DOUBLE_EQ(ctx.clock().now(sim::kInterComm), 0.0);
  });
}

INSTANTIATE_TEST_SUITE_P(Topologies, MultiNodeCollectives,
                         ::testing::Values(std::make_pair(2, 2),
                                           std::make_pair(2, 4),
                                           std::make_pair(4, 2)));

TEST(MultiNodeTiming, CrossNodeBroadcastSlowerThanLocal) {
  Cluster::Config cc;
  cc.topo = Topology::multi_node(2, 2);
  cc.topo.intra = {1e-6, 100e9};
  cc.topo.inter = {1e-5, 5e9};
  const std::int64_t rows = 4096;

  const auto broadcast_time = [&](int root) {
    Cluster cluster(cc);
    cluster.run([&](DeviceContext& ctx) {
      comm::SimTransport comm_tp(ctx);
      Communicator comm(comm_tp);
      Tensor t = ctx.rank() == root ? Tensor::zeros(rows, 64) : Tensor();
      comm.broadcast(t, root);
    });
    // Time until the farthest receiver got the payload.
    return cluster.makespan();
  };

  // Root 0 must reach ranks 2 and 3 across the slow link either way, so
  // compare against a degenerate single-node cluster instead.
  Cluster::Config local = cc;
  local.topo = Topology::single_node(4);
  local.topo.intra = cc.topo.intra;
  Cluster local_cluster(local);
  local_cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    Communicator comm(comm_tp);
    Tensor t = ctx.rank() == 0 ? Tensor::zeros(rows, 64) : Tensor();
    comm.broadcast(t, 0);
  });
  EXPECT_GT(broadcast_time(0), local_cluster.makespan());
}

TEST(MultiNodeTiming, ReduceScatterUsesBothStreams) {
  Cluster cluster({Topology::multi_node(2, 2)});
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    Communicator comm(comm_tp);
    Tensor full = Tensor::zeros(8, 16);
    comm.reduce_scatter_rows(full);
    // The flat ring crosses node boundaries: ranks adjacent to the boundary
    // must have used the inter-node stream.
    const int next = (ctx.rank() + 1) % 4;
    if (!ctx.topo().same_node(ctx.rank(), next)) {
      EXPECT_GT(ctx.clock().now(sim::kInterComm), 0.0);
    }
  });
}

}  // namespace
}  // namespace burst::comm
