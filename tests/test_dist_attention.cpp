// Integration tests: distributed attention (BurstAttention, RingAttention,
// double-ring routes, all balance strategies, all masks) must reproduce the
// single-device reference bit-for-bit up to fp32 reassociation.
#include "core/dist_attention.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/sim_transport.hpp"
#include "core/partition.hpp"
#include "kernels/reference_attention.hpp"
#include "sim/cluster.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace burst::core {
namespace {

using comm::Communicator;
using kernels::IndexMap;
using kernels::MaskSpec;
using sim::Cluster;
using sim::DeviceContext;
using sim::Topology;
using tensor::Rng;
using tensor::Tensor;

MaskSpec mask_by_name(const std::string& name, std::int64_t n) {
  if (name == "full") {
    return MaskSpec::full();
  }
  if (name == "causal") {
    return MaskSpec::causal();
  }
  if (name == "swa") {
    return MaskSpec::sliding_window(n / 4);
  }
  if (name == "dilated") {
    return MaskSpec::dilated(3);
  }
  // Block-sparse sliding window with block size divisible by every tested G.
  return MaskSpec::block_sliding_window(n / 8, 2, 8);
}

struct Problem {
  Tensor q, k, v, d_out;
  std::int64_t n, d;
  float scale;
};

Problem make_problem(std::uint64_t seed, std::int64_t n, std::int64_t d) {
  Rng rng(seed);
  Problem p;
  p.n = n;
  p.d = d;
  p.scale = 1.0f / std::sqrt(static_cast<float>(d));
  p.q = rng.gaussian(n, d, 0.8f);
  p.k = rng.gaussian(n, d, 0.8f);
  p.v = rng.gaussian(n, d, 0.8f);
  p.d_out = rng.gaussian(n, d, 0.8f);
  return p;
}

struct GlobalResult {
  Tensor o, lse, dq, dk, dv;
};

// Runs the distributed forward+backward on `topo` and gathers global
// results. `route_kind`: "flat" or "double".
GlobalResult run_distributed(const Problem& p, const Topology& topo,
                             const std::string& route_kind,
                             const DistAttnConfig& cfg_base) {
  const int g = topo.world_size();
  Cluster cluster({topo});
  GlobalResult out;
  out.o = Tensor::zeros(p.n, p.d);
  out.lse = Tensor(p.n);
  out.dq = Tensor::zeros(p.n, p.d);
  out.dk = Tensor::zeros(p.n, p.d);
  out.dv = Tensor::zeros(p.n, p.d);
  std::mutex mu;
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    Communicator comm(comm_tp);
    const SweepRoute route = route_kind == "flat"
                                 ? SweepRoute::flat(comm::flat_ring(g))
                                 : SweepRoute::double_ring(topo);
    DistAttnConfig cfg = cfg_base;
    cfg.seq_len = p.n;
    const IndexMap map = route_index_map(route, cfg, ctx.rank());
    LocalQKV local{shard_rows(p.q, map), shard_rows(p.k, map),
                   shard_rows(p.v, map)};
    auto fwd = dist_attention_forward(comm, route, cfg, local);
    Tensor d_out_local = shard_rows(p.d_out, map);
    auto grads =
        dist_attention_backward(comm, route, cfg, local, fwd, d_out_local);
    std::lock_guard lock(mu);
    unshard_rows(out.o, map, fwd.o);
    unshard_vec(out.lse, map, fwd.lse);
    unshard_rows(out.dq, map, grads.dq);
    unshard_rows(out.dk, map, grads.dk);
    unshard_rows(out.dv, map, grads.dv);
  });
  return out;
}

GlobalResult run_reference(const Problem& p, const MaskSpec& mask) {
  const IndexMap full = IndexMap::range(0, p.n);
  auto fwd =
      kernels::reference_attention_forward(p.q, full, p.k, p.v, full, mask,
                                           p.scale);
  auto bwd =
      kernels::reference_attention_backward(p.q, p.k, p.v, fwd, p.d_out,
                                            p.scale);
  GlobalResult out;
  out.o = fwd.o;
  out.lse = fwd.lse;
  out.dq = bwd.dq;
  out.dk = bwd.dk;
  out.dv = bwd.dv;
  return out;
}

void expect_matches(const GlobalResult& got, const GlobalResult& ref,
                    float tol) {
  EXPECT_LT(tensor::max_abs_diff(got.o, ref.o), tol);
  EXPECT_LT(tensor::max_abs_diff(got.dq, ref.dq), tol);
  EXPECT_LT(tensor::max_abs_diff(got.dk, ref.dk), tol);
  EXPECT_LT(tensor::max_abs_diff(got.dv, ref.dv), tol);
  for (std::int64_t i = 0; i < got.lse.numel(); ++i) {
    if (std::isinf(ref.lse[i])) {
      EXPECT_TRUE(std::isinf(got.lse[i]));
    } else {
      EXPECT_NEAR(got.lse[i], ref.lse[i], 1e-3f) << "lse row " << i;
    }
  }
}

using Combo = std::tuple<std::string, Balance, BackwardComm, int>;

class DistAttention : public ::testing::TestWithParam<Combo> {};

TEST_P(DistAttention, FlatRingMatchesReference) {
  const auto [mask_name, balance, backward, g] = GetParam();
  Problem p = make_problem(7, 64, 8);
  DistAttnConfig cfg;
  cfg.mask = mask_by_name(mask_name, p.n);
  cfg.scale = p.scale;
  cfg.balance = balance;
  cfg.backward = backward;
  GlobalResult got =
      run_distributed(p, Topology::single_node(g), "flat", cfg);
  expect_matches(got, run_reference(p, cfg.mask), 3e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, DistAttention,
    ::testing::Combine(
        ::testing::Values("full", "causal", "swa", "dilated", "blocksparse"),
        ::testing::Values(Balance::kContiguous, Balance::kZigzag,
                          Balance::kStriped),
        ::testing::Values(BackwardComm::kRing, BackwardComm::kBurst),
        ::testing::Values(2, 4)));

class DistAttentionDoubleRing
    : public ::testing::TestWithParam<std::tuple<std::string, BackwardComm>> {};

TEST_P(DistAttentionDoubleRing, TopologyAwareRouteMatchesReference) {
  const auto [mask_name, backward] = GetParam();
  Problem p = make_problem(11, 64, 8);
  DistAttnConfig cfg;
  cfg.mask = mask_by_name(mask_name, p.n);
  cfg.scale = p.scale;
  cfg.balance = Balance::kZigzag;
  cfg.backward = backward;
  GlobalResult got =
      run_distributed(p, Topology::multi_node(2, 4), "double", cfg);
  expect_matches(got, run_reference(p, cfg.mask), 3e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, DistAttentionDoubleRing,
    ::testing::Combine(::testing::Values("full", "causal", "swa"),
                       ::testing::Values(BackwardComm::kRing,
                                         BackwardComm::kBurst)));

TEST(DistAttention, SingleDeviceDegeneratesToLocalFlash) {
  Problem p = make_problem(13, 32, 8);
  DistAttnConfig cfg;
  cfg.mask = MaskSpec::causal();
  cfg.scale = p.scale;
  cfg.backward = BackwardComm::kBurst;
  GlobalResult got =
      run_distributed(p, Topology::single_node(1), "flat", cfg);
  expect_matches(got, run_reference(p, cfg.mask), 2e-4f);
}

TEST(DistAttention, NonOverlappedModeIsNumericallyIdentical) {
  Problem p = make_problem(17, 64, 8);
  DistAttnConfig cfg;
  cfg.mask = MaskSpec::causal();
  cfg.scale = p.scale;
  cfg.balance = Balance::kZigzag;
  cfg.backward = BackwardComm::kBurst;
  cfg.overlap = true;
  GlobalResult a = run_distributed(p, Topology::single_node(4), "flat", cfg);
  cfg.overlap = false;
  GlobalResult b = run_distributed(p, Topology::single_node(4), "flat", cfg);
  EXPECT_FLOAT_EQ(tensor::max_abs_diff(a.o, b.o), 0.0f);
  EXPECT_FLOAT_EQ(tensor::max_abs_diff(a.dq, b.dq), 0.0f);
}

// --- the paper's headline communication claim ------------------------------
//
// Per device: forward moves 2Nd (both methods). Backward: RingAttention
// moves (K,V) immutably (G-1 hops) plus (∇K,∇V) accumulators (G hops)
// ≈ 4Nd; BurstAttention moves (Q,∇O) + (Lse,D) immutably plus ∇Q
// ≈ 3Nd + 2N — about 25% less (Section 3.1).
TEST(DistAttentionVolume, BurstBackwardMovesQuarterLessThanRing) {
  Problem p = make_problem(19, 64, 16);
  const int g = 4;
  const double w = 2.0;  // bf16 wire bytes per element
  const std::int64_t n_loc = p.n / g;

  const auto measure = [&](BackwardComm backward) {
    Cluster cluster({Topology::single_node(g)});
    std::vector<std::uint64_t> bytes(static_cast<std::size_t>(g));
    cluster.run([&](DeviceContext& ctx) {
      comm::SimTransport comm_tp(ctx);
      Communicator comm(comm_tp, w);
      const SweepRoute route = SweepRoute::flat(comm::flat_ring(g));
      DistAttnConfig cfg;
      cfg.mask = MaskSpec::full();
      cfg.scale = p.scale;
      cfg.backward = backward;
      cfg.seq_len = p.n;
      const IndexMap map = route_index_map(route, cfg, ctx.rank());
      LocalQKV local{shard_rows(p.q, map), shard_rows(p.k, map),
                     shard_rows(p.v, map)};
      auto fwd = dist_attention_forward(comm, route, cfg, local);
      const std::uint64_t fwd_bytes = ctx.bytes_sent();
      // Forward: (G-1) hops x 2 tensors of [N/G, d].
      EXPECT_EQ(fwd_bytes,
                static_cast<std::uint64_t>(
                    static_cast<double>((g - 1) * 2 * n_loc * p.d) * w));
      auto grads = dist_attention_backward(comm, route, cfg, local, fwd,
                                           shard_rows(p.d_out, map));
      (void)grads;
      bytes[static_cast<std::size_t>(ctx.rank())] =
          ctx.bytes_sent() - fwd_bytes;
    });
    return bytes[0];
  };

  const std::uint64_t ring_bytes = measure(BackwardComm::kRing);
  const std::uint64_t burst_bytes = measure(BackwardComm::kBurst);

  // Exact per-implementation formulas (wire bytes, per device):
  const std::uint64_t ring_expected = static_cast<std::uint64_t>(
      w * static_cast<double>(
              (g - 1) * 2 * n_loc * p.d    // K,V immutable hops
              + g * 2 * n_loc * p.d));     // ∇K,∇V accumulator hops
  const std::uint64_t burst_expected = static_cast<std::uint64_t>(
      w * static_cast<double>(
              (g - 1) * (2 * n_loc * p.d + 2 * n_loc)  // Q,∇O,Lse,D hops
              + g * n_loc * p.d));                     // ∇Q accumulator hops
  EXPECT_EQ(ring_bytes, ring_expected);
  EXPECT_EQ(burst_bytes, burst_expected);

  // Headline ratio: ~ (3Nd + 2N) / 4Nd -> 0.75 + 1/(2d).
  const double ratio =
      static_cast<double>(burst_bytes) / static_cast<double>(ring_bytes);
  EXPECT_NEAR(ratio, 0.75 + 1.0 / (2.0 * static_cast<double>(p.d)), 0.07);
}

// Identical math, different communication: Ring and Burst backward must agree
// with each other to tight tolerance on every balance strategy.
TEST(DistAttention, RingAndBurstBackwardAgree) {
  Problem p = make_problem(23, 64, 8);
  for (Balance b :
       {Balance::kContiguous, Balance::kZigzag, Balance::kStriped}) {
    DistAttnConfig cfg;
    cfg.mask = MaskSpec::causal();
    cfg.scale = p.scale;
    cfg.balance = b;
    cfg.backward = BackwardComm::kRing;
    GlobalResult ring =
        run_distributed(p, Topology::single_node(4), "flat", cfg);
    cfg.backward = BackwardComm::kBurst;
    GlobalResult burst =
        run_distributed(p, Topology::single_node(4), "flat", cfg);
    EXPECT_LT(tensor::max_abs_diff(ring.dq, burst.dq), 1e-4f);
    EXPECT_LT(tensor::max_abs_diff(ring.dk, burst.dk), 1e-4f);
    EXPECT_LT(tensor::max_abs_diff(ring.dv, burst.dv), 1e-4f);
  }
}

}  // namespace
}  // namespace burst::core
