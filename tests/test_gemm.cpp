#include "tensor/gemm.hpp"

#include <gtest/gtest.h>

#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace burst::tensor {
namespace {

Tensor naive_matmul(const Tensor& a, Trans ta, const Tensor& b, Trans tb) {
  const std::int64_t m = ta == Trans::No ? a.rows() : a.cols();
  const std::int64_t k = ta == Trans::No ? a.cols() : a.rows();
  const std::int64_t n = tb == Trans::No ? b.cols() : b.rows();
  Tensor c = Tensor::zeros(m, n);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = ta == Trans::No ? a(i, kk) : a(kk, i);
        const float bv = tb == Trans::No ? b(kk, j) : b(j, kk);
        acc += static_cast<double>(av) * bv;
      }
      c(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

struct GemmCase {
  std::int64_t m, k, n;
};

class GemmShapes : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmShapes, MatchesNaiveAllTransposeCombos) {
  const auto p = GetParam();
  Rng rng(42 + p.m * 131 + p.k * 17 + p.n);
  Tensor a_nn = rng.gaussian(p.m, p.k, 1.0f);
  Tensor a_t = rng.gaussian(p.k, p.m, 1.0f);
  Tensor b_nn = rng.gaussian(p.k, p.n, 1.0f);
  Tensor b_t = rng.gaussian(p.n, p.k, 1.0f);

  {
    Tensor c(p.m, p.n);
    gemm(a_nn.view(), Trans::No, b_nn.view(), Trans::No, c.view());
    EXPECT_LT(max_abs_diff(c, naive_matmul(a_nn, Trans::No, b_nn, Trans::No)),
              2e-4f);
  }
  {
    Tensor c(p.m, p.n);
    gemm(a_nn.view(), Trans::No, b_t.view(), Trans::Yes, c.view());
    EXPECT_LT(max_abs_diff(c, naive_matmul(a_nn, Trans::No, b_t, Trans::Yes)),
              2e-4f);
  }
  {
    Tensor c(p.m, p.n);
    gemm(a_t.view(), Trans::Yes, b_nn.view(), Trans::No, c.view());
    EXPECT_LT(max_abs_diff(c, naive_matmul(a_t, Trans::Yes, b_nn, Trans::No)),
              2e-4f);
  }
  {
    Tensor c(p.m, p.n);
    gemm(a_t.view(), Trans::Yes, b_t.view(), Trans::Yes, c.view());
    EXPECT_LT(max_abs_diff(c, naive_matmul(a_t, Trans::Yes, b_t, Trans::Yes)),
              2e-4f);
  }
}

// Shapes straddle the blocking tile sizes (32/64) to exercise full tiles,
// remainders, and degenerate K=1 paths.
INSTANTIATE_TEST_SUITE_P(Shapes, GemmShapes,
                         ::testing::Values(GemmCase{1, 1, 1},
                                           GemmCase{3, 5, 7},
                                           GemmCase{32, 64, 64},
                                           GemmCase{33, 65, 66},
                                           GemmCase{64, 1, 64},
                                           GemmCase{100, 40, 9},
                                           GemmCase{17, 128, 31}));

TEST(Gemm, AlphaBetaSemantics) {
  Rng rng(5);
  Tensor a = rng.gaussian(4, 3, 1.0f);
  Tensor b = rng.gaussian(3, 5, 1.0f);
  Tensor c0 = rng.gaussian(4, 5, 1.0f);

  Tensor c = c0;
  gemm(a.view(), Trans::No, b.view(), Trans::No, c.view(), 2.0f, 0.5f);

  Tensor expected = naive_matmul(a, Trans::No, b, Trans::No);
  for (std::int64_t i = 0; i < expected.numel(); ++i) {
    expected.data()[i] = 2.0f * expected.data()[i] + 0.5f * c0.data()[i];
  }
  EXPECT_LT(max_abs_diff(c, expected), 2e-4f);
}

TEST(Gemm, AccumulateWithBetaOne) {
  Rng rng(6);
  Tensor a = rng.gaussian(2, 2, 1.0f);
  Tensor b = rng.gaussian(2, 2, 1.0f);
  Tensor c = Tensor::full(2, 2, 1.0f);
  gemm(a.view(), Trans::No, b.view(), Trans::No, c.view(), 1.0f, 1.0f);
  Tensor expected = naive_matmul(a, Trans::No, b, Trans::No);
  for (std::int64_t i = 0; i < 4; ++i) {
    expected.data()[i] += 1.0f;
  }
  EXPECT_LT(max_abs_diff(c, expected), 1e-5f);
}

TEST(Gemm, WorksOnRowBlockViews) {
  Rng rng(8);
  Tensor big = rng.gaussian(8, 4, 1.0f);
  Tensor b = rng.gaussian(4, 4, 1.0f);
  Tensor c(2, 4);
  gemm(big.row_block(2, 2), Trans::No, b.view(), Trans::No, c.view());
  Tensor sub = big.copy_rows(2, 2);
  EXPECT_LT(max_abs_diff(c, naive_matmul(sub, Trans::No, b, Trans::No)), 1e-4f);
}

TEST(Gemm, ConvenienceWrappers) {
  Rng rng(9);
  Tensor a = rng.gaussian(3, 4, 1.0f);
  Tensor b = rng.gaussian(4, 2, 1.0f);
  EXPECT_LT(max_abs_diff(matmul(a, b), naive_matmul(a, Trans::No, b, Trans::No)),
            1e-4f);
  Tensor bt = rng.gaussian(2, 4, 1.0f);
  EXPECT_LT(
      max_abs_diff(matmul_nt(a, bt), naive_matmul(a, Trans::No, bt, Trans::Yes)),
      1e-4f);
  Tensor at = rng.gaussian(4, 3, 1.0f);
  EXPECT_LT(
      max_abs_diff(matmul_tn(at, b), naive_matmul(at, Trans::Yes, b, Trans::No)),
      1e-4f);
}

}  // namespace
}  // namespace burst::tensor
