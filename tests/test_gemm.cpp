#include "tensor/gemm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace burst::tensor {
namespace {

Tensor naive_matmul(const Tensor& a, Trans ta, const Tensor& b, Trans tb) {
  const std::int64_t m = ta == Trans::No ? a.rows() : a.cols();
  const std::int64_t k = ta == Trans::No ? a.cols() : a.rows();
  const std::int64_t n = tb == Trans::No ? b.cols() : b.rows();
  Tensor c = Tensor::zeros(m, n);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = ta == Trans::No ? a(i, kk) : a(kk, i);
        const float bv = tb == Trans::No ? b(kk, j) : b(j, kk);
        acc += static_cast<double>(av) * bv;
      }
      c(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

struct GemmCase {
  std::int64_t m, k, n;
};

class GemmShapes : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmShapes, MatchesNaiveAllTransposeCombos) {
  const auto p = GetParam();
  Rng rng(42 + p.m * 131 + p.k * 17 + p.n);
  Tensor a_nn = rng.gaussian(p.m, p.k, 1.0f);
  Tensor a_t = rng.gaussian(p.k, p.m, 1.0f);
  Tensor b_nn = rng.gaussian(p.k, p.n, 1.0f);
  Tensor b_t = rng.gaussian(p.n, p.k, 1.0f);

  {
    Tensor c(p.m, p.n);
    gemm(a_nn.view(), Trans::No, b_nn.view(), Trans::No, c.view());
    EXPECT_LT(max_abs_diff(c, naive_matmul(a_nn, Trans::No, b_nn, Trans::No)),
              2e-4f);
  }
  {
    Tensor c(p.m, p.n);
    gemm(a_nn.view(), Trans::No, b_t.view(), Trans::Yes, c.view());
    EXPECT_LT(max_abs_diff(c, naive_matmul(a_nn, Trans::No, b_t, Trans::Yes)),
              2e-4f);
  }
  {
    Tensor c(p.m, p.n);
    gemm(a_t.view(), Trans::Yes, b_nn.view(), Trans::No, c.view());
    EXPECT_LT(max_abs_diff(c, naive_matmul(a_t, Trans::Yes, b_nn, Trans::No)),
              2e-4f);
  }
  {
    Tensor c(p.m, p.n);
    gemm(a_t.view(), Trans::Yes, b_t.view(), Trans::Yes, c.view());
    EXPECT_LT(max_abs_diff(c, naive_matmul(a_t, Trans::Yes, b_t, Trans::Yes)),
              2e-4f);
  }
}

// Shapes straddle the blocking tile sizes (32/64) to exercise full tiles,
// remainders, and degenerate K=1 paths.
INSTANTIATE_TEST_SUITE_P(Shapes, GemmShapes,
                         ::testing::Values(GemmCase{1, 1, 1},
                                           GemmCase{3, 5, 7},
                                           GemmCase{32, 64, 64},
                                           GemmCase{33, 65, 66},
                                           GemmCase{64, 1, 64},
                                           GemmCase{100, 40, 9},
                                           GemmCase{17, 128, 31},
                                           // Straddle the packing cache
                                           // blocks (MC=64, KC=256, NC=512)
                                           // with non-multiple remainders.
                                           GemmCase{65, 257, 513},
                                           GemmCase{130, 300, 60}));

TEST(Gemm, AlphaBetaSemantics) {
  Rng rng(5);
  Tensor a = rng.gaussian(4, 3, 1.0f);
  Tensor b = rng.gaussian(3, 5, 1.0f);
  Tensor c0 = rng.gaussian(4, 5, 1.0f);

  Tensor c = c0;
  gemm(a.view(), Trans::No, b.view(), Trans::No, c.view(), 2.0f, 0.5f);

  Tensor expected = naive_matmul(a, Trans::No, b, Trans::No);
  for (std::int64_t i = 0; i < expected.numel(); ++i) {
    expected.data()[i] = 2.0f * expected.data()[i] + 0.5f * c0.data()[i];
  }
  EXPECT_LT(max_abs_diff(c, expected), 2e-4f);
}

TEST(Gemm, AccumulateWithBetaOne) {
  Rng rng(6);
  Tensor a = rng.gaussian(2, 2, 1.0f);
  Tensor b = rng.gaussian(2, 2, 1.0f);
  Tensor c = Tensor::full(2, 2, 1.0f);
  gemm(a.view(), Trans::No, b.view(), Trans::No, c.view(), 1.0f, 1.0f);
  Tensor expected = naive_matmul(a, Trans::No, b, Trans::No);
  for (std::int64_t i = 0; i < 4; ++i) {
    expected.data()[i] += 1.0f;
  }
  EXPECT_LT(max_abs_diff(c, expected), 1e-5f);
}

// IEEE semantics: a zero in A must not suppress an inf/NaN in B. An earlier
// implementation skipped multiplies where A(i,k) == 0, silently dropping
// 0 * inf = NaN and defeating vectorization; this pins the correct behaviour.
TEST(Gemm, ZeroTimesInfFollowsIeee) {
  Tensor a = Tensor::zeros(2, 2);
  a(0, 0) = 0.0f;
  a(0, 1) = 1.0f;
  a(1, 0) = 1.0f;
  a(1, 1) = 0.0f;
  Tensor b = Tensor::zeros(2, 2);
  b(0, 0) = std::numeric_limits<float>::infinity();
  b(0, 1) = 2.0f;
  b(1, 0) = 3.0f;
  b(1, 1) = std::numeric_limits<float>::quiet_NaN();
  Tensor c(2, 2);
  gemm(a.view(), Trans::No, b.view(), Trans::No, c.view());
  // Row 0: 0*inf + 1*3 = NaN + 3 = NaN; 0*2 + 1*NaN = NaN.
  EXPECT_TRUE(std::isnan(c(0, 0)));
  EXPECT_TRUE(std::isnan(c(0, 1)));
  // Row 1: 1*inf + 0*3 = inf; 1*2 + 0*NaN = NaN.
  EXPECT_TRUE(std::isinf(c(1, 0)));
  EXPECT_GT(c(1, 0), 0.0f);
  EXPECT_TRUE(std::isnan(c(1, 1)));
}

// Strided operands: column blocks of a wider matrix (head slices) must give
// the same values as contiguous copies of the same data.
TEST(Gemm, WorksOnColBlockViews) {
  Rng rng(10);
  Tensor a_wide = rng.gaussian(20, 12, 1.0f);
  Tensor b_wide = rng.gaussian(12, 4, 1.0f);
  Tensor c(20, 4);
  gemm(a_wide.col_block(4, 4), Trans::No, b_wide.row_block(4, 4), Trans::No,
       c.view());
  Tensor a_sub = copy_cols(a_wide, 4, 4);
  Tensor b_sub = b_wide.copy_rows(4, 4);
  Tensor expect(20, 4);
  gemm(a_sub.view(), Trans::No, b_sub.view(), Trans::No, expect.view());
  // burst-lint: allow(no-naked-float-eq) strided-view gemm must match the
  // packed contiguous path bitwise
  EXPECT_EQ(max_abs_diff(c, expect), 0.0f);
}

TEST(Gemm, WorksOnRowBlockViews) {
  Rng rng(8);
  Tensor big = rng.gaussian(8, 4, 1.0f);
  Tensor b = rng.gaussian(4, 4, 1.0f);
  Tensor c(2, 4);
  gemm(big.row_block(2, 2), Trans::No, b.view(), Trans::No, c.view());
  Tensor sub = big.copy_rows(2, 2);
  EXPECT_LT(max_abs_diff(c, naive_matmul(sub, Trans::No, b, Trans::No)), 1e-4f);
}

TEST(Gemm, ConvenienceWrappers) {
  Rng rng(9);
  Tensor a = rng.gaussian(3, 4, 1.0f);
  Tensor b = rng.gaussian(4, 2, 1.0f);
  EXPECT_LT(max_abs_diff(matmul(a, b), naive_matmul(a, Trans::No, b, Trans::No)),
            1e-4f);
  Tensor bt = rng.gaussian(2, 4, 1.0f);
  EXPECT_LT(
      max_abs_diff(matmul_nt(a, bt), naive_matmul(a, Trans::No, bt, Trans::Yes)),
      1e-4f);
  Tensor at = rng.gaussian(4, 3, 1.0f);
  EXPECT_LT(
      max_abs_diff(matmul_tn(at, b), naive_matmul(at, Trans::Yes, b, Trans::No)),
      1e-4f);
}

}  // namespace
}  // namespace burst::tensor
