#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

namespace burst::core {
namespace {

TEST(Checkpoint, Names) {
  EXPECT_STREQ(ckpt_name(CkptStrategy::kNone), "none");
  EXPECT_STREQ(ckpt_name(CkptStrategy::kFull), "full");
  EXPECT_STREQ(ckpt_name(CkptStrategy::kSelectivePP), "selective++");
  EXPECT_STREQ(ckpt_name(CkptStrategy::kSeqSelective), "seq-selective");
}

TEST(Checkpoint, BoundaryPerStrategy) {
  const std::int64_t n = 1000;
  EXPECT_EQ(stored_boundary({CkptStrategy::kNone, 0.5}, n), 0);
  EXPECT_EQ(stored_boundary({CkptStrategy::kSelectivePP, 0.5}, n), 0);
  EXPECT_EQ(stored_boundary({CkptStrategy::kFull, 0.5}, n), n);
  EXPECT_EQ(stored_boundary({CkptStrategy::kSeqSelective, 0.5}, n), 500);
  EXPECT_EQ(stored_boundary({CkptStrategy::kSeqSelective, 0.25}, n), 750);
  EXPECT_EQ(stored_boundary({CkptStrategy::kSeqSelective, 1.0}, n), 0);
  EXPECT_EQ(stored_boundary({CkptStrategy::kSeqSelective, 0.0}, n), n);
}

TEST(Checkpoint, StoresPositionConsistentWithBoundary) {
  const CkptConfig cfg{CkptStrategy::kSeqSelective, 0.5};
  const std::int64_t n = 100;
  EXPECT_FALSE(stores_position(cfg, 0, n));
  EXPECT_FALSE(stores_position(cfg, 49, n));
  EXPECT_TRUE(stores_position(cfg, 50, n));
  EXPECT_TRUE(stores_position(cfg, 99, n));
}

TEST(Checkpoint, FractionClamped) {
  EXPECT_EQ(stored_boundary({CkptStrategy::kSeqSelective, 2.0}, 100), 0);
  EXPECT_EQ(stored_boundary({CkptStrategy::kSeqSelective, -1.0}, 100), 100);
}

}  // namespace
}  // namespace burst::core
