// Bitwise determinism across thread-pool sizes: the packed GEMM and the
// flash-attention kernels partition work at fixed chunk boundaries and keep
// a fixed per-element arithmetic order, so the exact same bits must come out
// for any worker count (including a BURST_THREADS override).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "kernels/flash_attention.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/gemm.hpp"
#include "tensor/rng.hpp"

namespace burst {
namespace {

using kernels::IndexMap;
using kernels::MaskSpec;
using tensor::Rng;
using tensor::Tensor;
using tensor::Trans;

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

Tensor gemm_result() {
  Rng rng(83);
  Tensor a = rng.gaussian(150, 70, 1.0f);
  Tensor b = rng.gaussian(70, 90, 1.0f);
  Tensor c(150, 90);
  tensor::gemm(a.view(), Trans::No, b.view(), Trans::Yes,
               c.view(), 1.25f, 0.0f);
  return c;
}

struct AttnOut {
  Tensor o, lse, dq, dk, dv;
};

AttnOut attention_result(const MaskSpec& mask) {
  Rng rng(89);
  const std::int64_t n = 95;
  const std::int64_t d = 16;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  const IndexMap id = IndexMap::range(0, n);
  Tensor q = rng.gaussian(n, d, 1.0f);
  Tensor k = rng.gaussian(n, d, 1.0f);
  Tensor v = rng.gaussian(n, d, 1.0f);
  Tensor d_out = rng.gaussian(n, d, 1.0f);

  AttnOut out;
  auto fwd = kernels::flash_forward(q, id, k, v, id, mask, scale);
  Tensor dvec = kernels::attention_dvec(d_out, fwd.o);
  out.dq = Tensor::zeros(n, d);
  out.dk = Tensor::zeros(n, d);
  out.dv = Tensor::zeros(n, d);
  kernels::flash_backward_partial(q, id, k, v, id, mask, scale, d_out, fwd.lse,
                                  dvec, out.dq, out.dk, out.dv);
  out.o = std::move(fwd.o);
  out.lse = std::move(fwd.lse);
  return out;
}

TEST(KernelDeterminism, GemmBitwiseIdenticalAcrossPoolSizes) {
  parallel::ThreadPool::reset_global(1);
  const Tensor base = gemm_result();
  for (std::size_t workers : {2u, 8u}) {
    parallel::ThreadPool::reset_global(workers);
    EXPECT_TRUE(bitwise_equal(gemm_result(), base))
        << "pool size " << workers;
  }
  parallel::ThreadPool::reset_global();
}

TEST(KernelDeterminism, GemmBitwiseIdenticalUnderBurstThreadsEnv) {
  parallel::ThreadPool::reset_global(1);
  const Tensor base = gemm_result();
  ASSERT_EQ(setenv("BURST_THREADS", "2", /*overwrite=*/1), 0);
  parallel::ThreadPool::reset_global();
  ASSERT_EQ(parallel::ThreadPool::global().size(), 2u);
  EXPECT_TRUE(bitwise_equal(gemm_result(), base));
  ASSERT_EQ(unsetenv("BURST_THREADS"), 0);
  parallel::ThreadPool::reset_global();
}

TEST(KernelDeterminism, AttentionBitwiseIdenticalAcrossPoolSizes) {
  for (const bool document : {false, true}) {
    const MaskSpec mask =
        document ? MaskSpec::document_from_lengths({40, 25, 30})
                 : MaskSpec::causal();
    parallel::ThreadPool::reset_global(1);
    const AttnOut base = attention_result(mask);
    EXPECT_NE(base.lse[0], kNegInf);
    for (std::size_t workers : {2u, 8u}) {
      parallel::ThreadPool::reset_global(workers);
      const AttnOut got = attention_result(mask);
      EXPECT_TRUE(bitwise_equal(got.o, base.o)) << workers;
      EXPECT_TRUE(bitwise_equal(got.lse, base.lse)) << workers;
      EXPECT_TRUE(bitwise_equal(got.dq, base.dq)) << workers;
      EXPECT_TRUE(bitwise_equal(got.dk, base.dk)) << workers;
      EXPECT_TRUE(bitwise_equal(got.dv, base.dv)) << workers;
    }
  }
  parallel::ThreadPool::reset_global();
}

}  // namespace
}  // namespace burst
