// Durable snapshots (src/resilience/snapshot.hpp): round-trip fidelity,
// atomic commit, corruption rejection, retention — and the acceptance
// property that restoring a snapshot resumes training bitwise identically
// to a run that was never interrupted.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>

#include "comm/communicator.hpp"
#include "comm/sim_transport.hpp"
#include "model/dist_model.hpp"
#include "model/optimizer.hpp"
#include "resilience/driver.hpp"
#include "resilience/snapshot.hpp"
#include "sim/cluster.hpp"
#include "tensor/rng.hpp"

namespace burst {
namespace {

namespace fs = std::filesystem;

using model::AdamConfig;
using model::AdamOptimizer;
using model::DistTrainConfig;
using model::ModelConfig;
using model::ModelGrads;
using model::ModelWeights;
using resilience::SnapshotCorruptError;
using resilience::SnapshotManager;
using resilience::TrainSnapshot;
using sim::Cluster;
using sim::DeviceContext;
using sim::Topology;
using tensor::Rng;
using tensor::Tensor;

/// Fresh per-test snapshot directory under the system temp dir.
class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("burst-snap-") + info->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TrainSnapshot make_snapshot(std::uint64_t step, std::uint64_t seed) {
  ModelConfig cfg = ModelConfig::toy();
  TrainSnapshot snap;
  snap.step = step;
  snap.data_cursor = step;
  Rng rng(seed);
  rng.next_gaussian();  // populate the Box-Muller spare
  snap.data_rng = rng.save_state();
  snap.weights = ModelWeights::init(cfg, seed);
  AdamOptimizer opt(snap.weights, AdamConfig{});
  snap.adam = opt.export_state();
  return snap;
}

TEST_F(SnapshotTest, RoundTripIsBitwise) {
  SnapshotManager mgr(dir_);
  TrainSnapshot snap = make_snapshot(7, 11);
  const std::uint64_t written = mgr.save(snap);
  EXPECT_EQ(written, resilience::snapshot_bytes(snap));

  TrainSnapshot back = mgr.load_latest();
  EXPECT_EQ(back.step, 7u);
  EXPECT_EQ(back.data_cursor, 7u);
  EXPECT_EQ(back.data_rng.state, snap.data_rng.state);
  EXPECT_EQ(back.data_rng.has_spare, snap.data_rng.has_spare);
  EXPECT_EQ(back.data_rng.spare, snap.data_rng.spare);
  EXPECT_EQ(back.adam.t, snap.adam.t);
  EXPECT_TRUE(back.adam.m == snap.adam.m);
  EXPECT_TRUE(back.adam.v == snap.adam.v);
  EXPECT_TRUE(resilience::bitwise_equal(back.weights, snap.weights));
}

TEST_F(SnapshotTest, SaveCommitsAtomically) {
  SnapshotManager mgr(dir_);
  mgr.save(make_snapshot(3, 1));
  bool saw_snapshot = false;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(name.find(".tmp"), std::string::npos)
        << "temporary file leaked: " << name;
    saw_snapshot = saw_snapshot || name == "snap-3.bin";
  }
  EXPECT_TRUE(saw_snapshot);
}

TEST_F(SnapshotTest, CorruptByteFlipRejectedAndSkipped) {
  SnapshotManager mgr(dir_, /*keep_last=*/4);
  mgr.save(make_snapshot(1, 1));
  mgr.save(make_snapshot(2, 2));

  // Flip one payload byte in the newest snapshot.
  const std::string newest = mgr.list().back();
  {
    std::fstream f(newest, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(64, std::ios::beg);
    char b = 0;
    f.seekg(64, std::ios::beg);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(64, std::ios::beg);
    f.write(&b, 1);
  }
  EXPECT_THROW(mgr.load(newest), SnapshotCorruptError);
  // load_latest falls back to the older valid snapshot.
  EXPECT_EQ(mgr.load_latest().step, 1u);
}

TEST_F(SnapshotTest, TruncatedFileRejected) {
  SnapshotManager mgr(dir_);
  mgr.save(make_snapshot(5, 3));
  const std::string path = mgr.list().back();
  fs::resize_file(path, fs::file_size(path) / 2);
  EXPECT_THROW(mgr.load(path), SnapshotCorruptError);
  EXPECT_THROW(mgr.load_latest(), SnapshotCorruptError);  // nothing valid left
}

TEST_F(SnapshotTest, KeepLastPrunesOldest) {
  SnapshotManager mgr(dir_, /*keep_last=*/2);
  mgr.save(make_snapshot(1, 1));
  mgr.save(make_snapshot(2, 2));
  mgr.save(make_snapshot(3, 3));
  const auto paths = mgr.list();
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_NE(paths[0].find("snap-2.bin"), std::string::npos);
  EXPECT_NE(paths[1].find("snap-3.bin"), std::string::npos);
}

/// Runs `n` deterministic distributed training steps in-place.
void train_steps(const DistTrainConfig& dc, ModelWeights& w,
                 AdamOptimizer& opt, Rng& data_rng, int n) {
  Cluster cluster({Topology::single_node(2)});
  for (int i = 0; i < n; ++i) {
    Tensor tokens =
        resilience::make_markov_sequence(data_rng, 32, dc.model.vocab);
    ModelGrads grads;
    std::mutex mu;
    cluster.run([&](DeviceContext& ctx) {
      comm::SimTransport comm_tp(ctx);
      comm::Communicator comm(comm_tp);
      auto r = model::dist_train_step(comm, dc, w, tokens);
      if (ctx.rank() == 0) {
        std::lock_guard lock(mu);
        grads = std::move(r.grads);
      }
    });
    opt.step(w, grads);
  }
}

// The satellite acceptance test: train k steps, snapshot, let the run
// diverge (extra steps mutate weights, optimizer moments, and the data-RNG
// cursor), restore — the continuation must match an uninterrupted run
// bit for bit, including optimizer state and the data stream.
TEST_F(SnapshotTest, RestoredTrainingContinuesBitwiseIdentically) {
  DistTrainConfig dc;
  dc.model = ModelConfig::toy();
  const AdamConfig ac;

  // Uninterrupted reference: 3 + 3 steps.
  ModelWeights ref = ModelWeights::init(dc.model, 42);
  AdamOptimizer ref_opt(ref, ac);
  Rng ref_rng(99);
  train_steps(dc, ref, ref_opt, ref_rng, 3);

  // Snapshot the k=3 state.
  SnapshotManager mgr(dir_);
  TrainSnapshot snap;
  snap.step = 3;
  snap.data_cursor = 3;
  snap.data_rng = ref_rng.save_state();
  snap.weights = ref;
  snap.adam = ref_opt.export_state();
  mgr.save(snap);

  train_steps(dc, ref, ref_opt, ref_rng, 3);  // reference continues to 6

  // Perturbed run: wander past the snapshot point (different data, extra
  // optimizer steps), then restore and replay the last 3 steps.
  ModelWeights w = snap.weights;
  AdamOptimizer opt(w, ac);
  opt.restore_state(snap.adam);
  Rng rng(7);  // wrong stream on purpose
  train_steps(dc, w, opt, rng, 2);
  EXPECT_FALSE(resilience::bitwise_equal(w, ref));

  TrainSnapshot restored = mgr.load_latest();
  w = restored.weights;
  opt.restore_state(restored.adam);
  rng.restore_state(restored.data_rng);
  train_steps(dc, w, opt, rng, 3);

  EXPECT_TRUE(resilience::bitwise_equal(w, ref));
  EXPECT_EQ(opt.export_state().t, ref_opt.export_state().t);
  EXPECT_TRUE(opt.export_state().m == ref_opt.export_state().m);
  EXPECT_TRUE(opt.export_state().v == ref_opt.export_state().v);
  // The data stream is also back in lockstep.
  EXPECT_EQ(rng.save_state().state, ref_rng.save_state().state);
}

}  // namespace
}  // namespace burst
