#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/rng.hpp"

namespace burst::tensor {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

TEST(Ops, AddSubScaleAxpy) {
  Tensor a = Tensor::full(2, 2, 1.0f);
  Tensor b = Tensor::full(2, 2, 2.0f);
  add_inplace(a, b);
  EXPECT_FLOAT_EQ(a(0, 0), 3.0f);
  sub_inplace(a, b);
  EXPECT_FLOAT_EQ(a(1, 1), 1.0f);
  scale_inplace(a, 4.0f);
  EXPECT_FLOAT_EQ(a(0, 1), 4.0f);
  axpy(0.5f, b, a);
  EXPECT_FLOAT_EQ(a(0, 0), 5.0f);
}

TEST(Ops, RowsumProductMatchesManual) {
  Tensor a(2, 3);
  Tensor b(2, 3);
  for (std::int64_t i = 0; i < 6; ++i) {
    a.data()[i] = static_cast<float>(i + 1);
    b.data()[i] = static_cast<float>(2 * i);
  }
  Tensor d = rowsum_product(a, b);
  // row 0: 1*0 + 2*2 + 3*4 = 16; row 1: 4*6 + 5*8 + 6*10 = 124.
  EXPECT_FLOAT_EQ(d[0], 16.0f);
  EXPECT_FLOAT_EQ(d[1], 124.0f);
}

TEST(Ops, RowLseStableForLargeValues) {
  Tensor s(1, 3);
  s(0, 0) = 1000.0f;
  s(0, 1) = 1000.0f;
  s(0, 2) = 1000.0f;
  Tensor lse = row_lse(s);
  EXPECT_NEAR(lse[0], 1000.0f + std::log(3.0f), 1e-4);
}

TEST(Ops, RowLseFullyMaskedRowIsNegInf) {
  Tensor s = Tensor::full(1, 4, -kInf);
  Tensor lse = row_lse(s);
  EXPECT_EQ(lse[0], -kInf);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(7);
  Tensor s = rng.gaussian(5, 9, 3.0f);
  softmax_rows_inplace(s);
  for (std::int64_t i = 0; i < s.rows(); ++i) {
    double total = 0.0;
    for (std::int64_t j = 0; j < s.cols(); ++j) {
      EXPECT_GE(s(i, j), 0.0f);
      total += s(i, j);
    }
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST(Ops, ExpSubRowHandlesMaskedRows) {
  Tensor s = Tensor::full(2, 2, -kInf);
  s(0, 0) = 0.0f;
  Tensor lse = row_lse(s);
  exp_sub_row_inplace(s, lse);
  EXPECT_FLOAT_EQ(s(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(s(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(s(1, 0), 0.0f);  // -inf row: exp must yield 0, not NaN
  EXPECT_FLOAT_EQ(s(1, 1), 0.0f);
}

// The core invariant behind RingAttention/BurstAttention forward: merging
// partition-wise softmax results online equals softmax over the whole row.
TEST(Ops, OnlineSoftmaxMergeEqualsGlobalSoftmax) {
  Rng rng(13);
  const std::int64_t n = 6;
  const std::int64_t d = 4;
  const std::int64_t parts = 3;
  const std::int64_t cols_per_part = 5;
  // Build a full score matrix and value matrix, compute reference softmax@V.
  Tensor s = rng.gaussian(n, parts * cols_per_part, 2.0f);
  Tensor v = rng.gaussian(parts * cols_per_part, d, 1.0f);
  Tensor p = s;
  softmax_rows_inplace(p);
  Tensor ref = Tensor::zeros(n, d);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t k = 0; k < p.cols(); ++k) {
      for (std::int64_t j = 0; j < d; ++j) {
        ref(i, j) += p(i, k) * v(k, j);
      }
    }
  }
  // Now merge per-partition (unnormalized softmax, LSE) results online.
  Tensor o_acc = Tensor::zeros(n, d);
  Tensor lse_vec(n);
  lse_vec.fill(-kInf);
  for (std::int64_t part = 0; part < parts; ++part) {
    Tensor s_part(n, cols_per_part);
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t c = 0; c < cols_per_part; ++c) {
        s_part(i, c) = s(i, part * cols_per_part + c);
      }
    }
    Tensor lse_part = row_lse(s_part);
    exp_sub_row_inplace(s_part, lse_part);
    Tensor o_part = Tensor::zeros(n, d);
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t c = 0; c < cols_per_part; ++c) {
        for (std::int64_t j = 0; j < d; ++j) {
          o_part(i, j) += s_part(i, c) * v(part * cols_per_part + c, j);
        }
      }
    }
    merge_online_softmax(o_acc, lse_vec, o_part, lse_part);
  }
  EXPECT_LT(max_abs_diff(o_acc, ref), 1e-5f);
}

TEST(Ops, OnlineMergeOrderIndependent) {
  Rng rng(17);
  Tensor o1 = rng.gaussian(4, 3, 1.0f);
  Tensor o2 = rng.gaussian(4, 3, 1.0f);
  Tensor l1 = rng.gaussian(static_cast<std::int64_t>(4), 1.0f);
  Tensor l2 = rng.gaussian(static_cast<std::int64_t>(4), 1.0f);

  Tensor oa = o1;
  Tensor la = l1;
  merge_online_softmax(oa, la, o2, l2);

  Tensor ob = o2;
  Tensor lb = l2;
  merge_online_softmax(ob, lb, o1, l1);

  EXPECT_LT(max_abs_diff(oa, ob), 1e-5f);
  EXPECT_LT(max_abs_diff(la, lb), 1e-5f);
}

TEST(Ops, TransposeRoundTrip) {
  Rng rng(3);
  Tensor a = rng.gaussian(3, 5, 1.0f);
  Tensor att = transpose(transpose(a));
  EXPECT_FLOAT_EQ(max_abs_diff(a, att), 0.0f);
}

TEST(Ops, ConcatRows) {
  Tensor a = Tensor::full(1, 2, 1.0f);
  Tensor b = Tensor::full(2, 2, 2.0f);
  Tensor c = concat_rows({a, b});
  EXPECT_EQ(c.rows(), 3);
  EXPECT_FLOAT_EQ(c(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(c(2, 1), 2.0f);
}

TEST(Ops, AllcloseRespectsTolerance) {
  Tensor a = Tensor::full(2, 2, 1.0f);
  Tensor b = Tensor::full(2, 2, 1.0f + 1e-7f);
  EXPECT_TRUE(allclose(a, b));
  Tensor c = Tensor::full(2, 2, 1.1f);
  EXPECT_FALSE(allclose(a, c));
}

TEST(Ops, ReluAndBackward) {
  Tensor x(1, 4);
  x(0, 0) = -1.0f;
  x(0, 1) = 0.0f;
  x(0, 2) = 2.0f;
  x(0, 3) = -3.0f;
  Tensor y = relu(x);
  EXPECT_FLOAT_EQ(y(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y(0, 2), 2.0f);
  Tensor dy = Tensor::full(1, 4, 1.0f);
  Tensor dx = relu_backward(dy, x);
  EXPECT_FLOAT_EQ(dx(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(dx(0, 1), 0.0f);  // gradient 0 at x == 0
  EXPECT_FLOAT_EQ(dx(0, 2), 1.0f);
}

TEST(Ops, NormMatchesManual) {
  Tensor a(1, 2);
  a(0, 0) = 3.0f;
  a(0, 1) = 4.0f;
  EXPECT_FLOAT_EQ(norm(a), 5.0f);
}

}  // namespace
}  // namespace burst::tensor
