// Dtype conformance suite (DESIGN.md section 16).
//
// Part 1 — bf16 numerical fidelity: the distributed algorithms must stay
// close to the fp32 reference when activations are rounded to bf16 at the
// communication boundary (what real NCCL transfers carry).
//
// Part 2 — quantized weight formats: Q8_0/Q4_0 round-trip error bounds,
// block-boundary and odd-remainder (K % 32 != 0) packing, and two-level
// GEMM parity: the dequantize-in-microkernel path must be *bitwise* equal
// to the fp32 GEMM over the pre-dequantized operand (same fp expression,
// same accumulation order), and within the format's documented error bound
// of the unquantized fp32 result.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "comm/sim_transport.hpp"
#include "core/dist_attention.hpp"
#include "core/partition.hpp"
#include "kernels/reference_attention.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/cluster.hpp"
#include "tensor/dtype.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace burst {
namespace {

using tensor::DType;
using tensor::kQuantBlock;
using tensor::PackedB;
using tensor::Rng;
using tensor::Tensor;
using tensor::Trans;

TEST(Bf16, RoundingIdentityForRepresentables) {
  Tensor t(1, 4);
  t(0, 0) = 1.0f;
  t(0, 1) = -2.5f;
  t(0, 2) = 0.0f;
  t(0, 3) = 96.0f;
  Tensor before = t;
  tensor::round_bf16_inplace(t);
  EXPECT_FLOAT_EQ(tensor::max_abs_diff(t, before), 0.0f);
}

TEST(Bf16, RelativeErrorBounded) {
  Rng rng(5);
  Tensor t = rng.gaussian(64, 64, 3.0f);
  Tensor orig = t;
  tensor::round_bf16_inplace(t);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    const float a = orig.data()[i];
    const float b = t.data()[i];
    // bf16 has 8 mantissa bits: relative error <= 2^-8.
    EXPECT_LE(std::fabs(a - b), std::fabs(a) * (1.0f / 256.0f) + 1e-30f);
  }
}

TEST(Bf16, RoundToNearestEven) {
  // 1 + 2^-9 sits exactly between two bf16 values; ties go to even (1.0).
  Tensor t(1, 1);
  t(0, 0) = 1.0f + std::ldexp(1.0f, -9);
  tensor::round_bf16_inplace(t);
  EXPECT_FLOAT_EQ(t(0, 0), 1.0f);
}

// Distributed BurstAttention with inputs quantized to bf16 must track the
// fp32 reference to bf16-level error — the rounding must not be amplified
// by the online-softmax merges or the ring accumulation order.
TEST(Bf16, BurstAttentionStableUnderQuantizedInputs) {
  const std::int64_t n = 64;
  const std::int64_t d = 16;
  const int g = 4;
  Rng rng(11);
  Tensor q = rng.gaussian(n, d, 0.7f);
  Tensor k = rng.gaussian(n, d, 0.7f);
  Tensor v = rng.gaussian(n, d, 0.7f);
  tensor::round_bf16_inplace(q);
  tensor::round_bf16_inplace(k);
  tensor::round_bf16_inplace(v);

  const auto id = kernels::IndexMap::range(0, n);
  auto ref = kernels::reference_attention_forward(
      q, id, k, v, id, kernels::MaskSpec::causal(), 0.25f);

  core::DistAttnConfig cfg;
  cfg.mask = kernels::MaskSpec::causal();
  cfg.scale = 0.25f;
  cfg.balance = core::Balance::kZigzag;
  cfg.seq_len = n;

  sim::Cluster cluster({sim::Topology::single_node(g)});
  Tensor o_global = Tensor::zeros(n, d);
  std::mutex mu;
  cluster.run([&](sim::DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    const auto route = core::SweepRoute::flat(comm::flat_ring(g));
    const auto map = core::route_index_map(route, cfg, ctx.rank());
    core::LocalQKV local{core::shard_rows(q, map), core::shard_rows(k, map),
                         core::shard_rows(v, map)};
    // Quantize what would ride the wire each hop.
    tensor::round_bf16_inplace(local.k);
    tensor::round_bf16_inplace(local.v);
    auto fwd = core::dist_attention_forward(comm, route, cfg, local);
    std::lock_guard lock(mu);
    core::unshard_rows(o_global, map, fwd.o);
  });

  // Inputs were identical (already bf16); only fp32-accumulation order
  // differs from the reference, so agreement should be tight.
  EXPECT_LT(tensor::max_abs_diff(o_global, ref.o), 1e-4f);
}

// ---- quantized block formats ----------------------------------------------

// Quantize one kQuantBlock-column of `src` (column j, rows [k0, k0+n)) and
// dequantize it back, mirroring the packed-panel grouping: blocks run along
// K per column, restarting at each kGemmKC slice (a no-op for the global
// 32-block grid since kGemmKC % 32 == 0, except that a short K edge makes a
// short final block).
Tensor dequantize_reference(const Tensor& b, DType dt) {
  Tensor out(b.rows(), b.cols());
  for (std::int64_t j = 0; j < b.cols(); ++j) {
    for (std::int64_t k0 = 0; k0 < b.rows(); k0 += kQuantBlock) {
      const std::int64_t n = std::min(kQuantBlock, b.rows() - k0);
      const float* col = b.data() + k0 * b.cols() + j;
      const auto stride = b.cols();
      if (dt == DType::kQ8_0) {
        std::int8_t qs[kQuantBlock];
        const float s = tensor::quantize_block_q8_0(col, n, stride, qs, 1);
        for (std::int64_t i = 0; i < n; ++i) {
          out(k0 + i, j) = tensor::dequantize_q8_0(s, qs[i]);
        }
      } else {
        std::uint8_t codes[kQuantBlock];
        const float s = tensor::quantize_block_q4_0(col, n, stride, codes, 1);
        for (std::int64_t i = 0; i < n; ++i) {
          out(k0 + i, j) = tensor::dequantize_q4_0(s, codes[i]);
        }
      }
    }
  }
  return out;
}

float frob_norm(const Tensor& t) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    acc += static_cast<double>(t.data()[i]) * t.data()[i];
  }
  return static_cast<float>(std::sqrt(acc));
}

float rel_frob_err(const Tensor& got, const Tensor& want) {
  Tensor diff(got.rows(), got.cols());
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    diff.data()[i] = got.data()[i] - want.data()[i];
  }
  return frob_norm(diff) / frob_norm(want);
}

TEST(QuantFormats, Q8RoundTripBoundedByHalfStep) {
  Rng rng(21);
  Tensor x = rng.gaussian(1, kQuantBlock, 2.0f);
  std::int8_t qs[kQuantBlock];
  const float scale = tensor::quantize_block_q8_0(x.data(), kQuantBlock, 1,
                                                  qs, 1);
  ASSERT_GT(scale, 0.0f);
  for (std::int64_t i = 0; i < kQuantBlock; ++i) {
    const float back = tensor::dequantize_q8_0(scale, qs[i]);
    // Round-to-nearest over a symmetric [-127, 127] grid: error <= step/2.
    EXPECT_LE(std::fabs(back - x.data()[i]), 0.5f * scale + 1e-6f) << i;
  }
}

TEST(QuantFormats, Q4RoundTripBoundedByOneStepExtremalExact) {
  Rng rng(22);
  Tensor x = rng.gaussian(1, kQuantBlock, 2.0f);
  float amax = 0.0f;
  std::int64_t imax = 0;
  for (std::int64_t i = 0; i < kQuantBlock; ++i) {
    if (std::fabs(x.data()[i]) > amax) {
      amax = std::fabs(x.data()[i]);
      imax = i;
    }
  }
  std::uint8_t codes[kQuantBlock];
  const float scale = tensor::quantize_block_q4_0(x.data(), kQuantBlock, 1,
                                                  codes, 1);
  for (std::int64_t i = 0; i < kQuantBlock; ++i) {
    const float back = tensor::dequantize_q4_0(scale, codes[i]);
    // Codes span [-8, 7] while x/scale spans [-8, 8]: nearest-code error is
    // at most one step (the clamp case at the opposite extreme).
    EXPECT_LE(std::fabs(back - x.data()[i]), std::fabs(scale) + 1e-6f) << i;
  }
  // The signed extremal element keys the scale (scale = smax / -8, exact in
  // fp since 8 is a power of two), so it must round-trip bitwise.
  EXPECT_EQ(codes[imax], 0);  // the -8 code
  EXPECT_EQ(tensor::dequantize_q4_0(scale, codes[imax]), x.data()[imax]);
}

TEST(QuantFormats, OddRemainderBlocksPadWithExactZero) {
  Rng rng(23);
  const std::int64_t n = 20;  // partial block: 20 of 32 elements
  Tensor x = rng.gaussian(1, n, 1.0f);
  std::int8_t qs[kQuantBlock];
  tensor::quantize_block_q8_0(x.data(), n, 1, qs, 1);
  for (std::int64_t i = n; i < kQuantBlock; ++i) {
    EXPECT_EQ(qs[i], 0) << i;
  }
  std::uint8_t codes[kQuantBlock];
  const float s4 = tensor::quantize_block_q4_0(x.data(), n, 1, codes, 1);
  for (std::int64_t i = n; i < kQuantBlock; ++i) {
    EXPECT_EQ(codes[i], 8) << i;  // biased zero
    // burst-lint: allow(no-naked-float-eq) padding must decode to exact 0.0f
    EXPECT_EQ(tensor::dequantize_q4_0(s4, codes[i]), 0.0f);
  }
}

TEST(QuantFormats, RoundTripRmsWithinFormatBudget) {
  // DESIGN.md section 16 error budget: RMS relative error (vs the block's
  // RMS magnitude) stays under ~1% for Q8_0 and ~10% for Q4_0 on gaussian
  // weights. These are the documented planning numbers; the GEMM parity
  // tests below bound end-to-end error.
  Rng rng(24);
  Tensor w = rng.gaussian(96, 64, 0.8f);
  const Tensor q8 = dequantize_reference(w, DType::kQ8_0);
  const Tensor q4 = dequantize_reference(w, DType::kQ4_0);
  EXPECT_LT(rel_frob_err(q8, w), 0.01f);
  EXPECT_LT(rel_frob_err(q4, w), 0.10f);
  EXPECT_GT(rel_frob_err(q4, w), rel_frob_err(q8, w));  // q4 is coarser
}

// ---- packed GEMM parity ---------------------------------------------------

// The f32 PackedB path must reproduce gemm() bit for bit — same packing,
// same microkernel, same blocking — including odd shapes that exercise
// remainder tiles and a K that is not a multiple of the quant block.
TEST(QuantGemm, PackedF32BitwiseEqualsGemm) {
  Rng rng(31);
  const std::int64_t m = 33;
  const std::int64_t k = 70;  // k % 32 != 0, k % 256 != 0
  const std::int64_t n = 50;
  Tensor a = rng.gaussian(m, k, 1.0f);
  Tensor b = rng.gaussian(k, n, 1.0f);
  Tensor want(m, n);
  tensor::gemm(a.view(), Trans::No, b.view(), Trans::No, want.view(), 0.7f);

  const PackedB pb = PackedB::pack(b.view(), Trans::No, DType::kF32);
  EXPECT_EQ(pb.k(), k);
  EXPECT_EQ(pb.n(), n);
  Tensor got(m, n);
  tensor::gemm_packed(a.view(), Trans::No, pb, got.view(), 0.7f);
  EXPECT_FLOAT_EQ(tensor::max_abs_diff(got, want), 0.0f);

  // Transposed B operand resolves at pack time.
  Tensor bt = rng.gaussian(n, k, 1.0f);
  Tensor want_t(m, n);
  tensor::gemm(a.view(), Trans::No, bt.view(), Trans::Yes, want_t.view());
  const PackedB pbt = PackedB::pack(bt.view(), Trans::Yes, DType::kF32);
  Tensor got_t(m, n);
  tensor::gemm_packed(a.view(), Trans::No, pbt, got_t.view());
  EXPECT_FLOAT_EQ(tensor::max_abs_diff(got_t, want_t), 0.0f);
}

// Level 1 parity: the dequantize-in-microkernel path computes the exact
// same fp expression as the f32 GEMM over the pre-dequantized operand, so
// the two must agree bitwise — for every dtype, including the short-block
// K edge. Level 2: the result stays within the format's error budget of
// the unquantized fp32 product.
TEST(QuantGemm, DequantInKernelBitwiseEqualsDequantThenGemm) {
  Rng rng(32);
  const std::int64_t m = 21;
  const std::int64_t k = 300;  // spans a kKC boundary; 300 % 32 != 0
  const std::int64_t n = 40;
  Tensor a = rng.gaussian(m, k, 0.9f);
  Tensor b = rng.gaussian(k, n, 0.9f);
  Tensor ref(m, n);
  tensor::gemm(a.view(), Trans::No, b.view(), Trans::No, ref.view());

  for (const DType dt : {DType::kQ8_0, DType::kQ4_0}) {
    const PackedB pb = PackedB::pack(b.view(), Trans::No, dt);
    Tensor got(m, n);
    tensor::gemm_packed(a.view(), Trans::No, pb, got.view());

    const Tensor bdq = dequantize_reference(b, dt);
    Tensor want(m, n);
    tensor::gemm(a.view(), Trans::No, bdq.view(), Trans::No, want.view());
    EXPECT_FLOAT_EQ(tensor::max_abs_diff(got, want), 0.0f)
        << tensor::dtype_name(dt);

    const float budget = dt == DType::kQ8_0 ? 0.02f : 0.15f;
    EXPECT_LT(rel_frob_err(got, ref), budget) << tensor::dtype_name(dt);
    // And the error is real: quantization must actually have happened.
    EXPECT_GT(tensor::max_abs_diff(got, ref), 0.0f) << tensor::dtype_name(dt);
  }
}

// bf16 packs round B once at pack time; the GEMM must equal the f32 GEMM
// over the pre-rounded operand bitwise.
TEST(QuantGemm, PackedBf16BitwiseEqualsGemmOverRoundedB) {
  Rng rng(33);
  Tensor a = rng.gaussian(17, 45, 1.0f);
  Tensor b = rng.gaussian(45, 29, 1.0f);
  const PackedB pb = PackedB::pack(b.view(), Trans::No, DType::kBf16);
  Tensor got = tensor::packed_matmul(a, pb);

  tensor::round_bf16_inplace(b);
  const Tensor want = tensor::matmul(a, b);
  EXPECT_FLOAT_EQ(tensor::max_abs_diff(got, want), 0.0f);
}

// gemm_dt (pack-on-the-fly) must agree bitwise with the PackedB path: same
// codecs, same panel layout, same driver.
TEST(QuantGemm, GemmDtBitwiseEqualsPackedPath) {
  Rng rng(34);
  const std::int64_t m = 12;
  const std::int64_t k = 96;
  const std::int64_t n = 33;
  Tensor a = rng.gaussian(m, k, 1.0f);
  Tensor b = rng.gaussian(k, n, 1.0f);
  for (const DType dt : {DType::kBf16, DType::kQ8_0, DType::kQ4_0}) {
    const PackedB pb = PackedB::pack(b.view(), Trans::No, dt);
    Tensor want(m, n);
    tensor::gemm_packed(a.view(), Trans::No, pb, want.view());
    Tensor got(m, n);
    tensor::gemm_dt(a.view(), Trans::No, b.view(), Trans::No, got.view(), dt);
    EXPECT_FLOAT_EQ(tensor::max_abs_diff(got, want), 0.0f)
        << tensor::dtype_name(dt);
  }
}

// Block-aligned windows over a PackedB (what the vocab-tiled LM head walks)
// must equal the full-operand product on the corresponding slices,
// including beta = 1 accumulation over row windows.
TEST(QuantGemm, PackedWindowMatchesSlicedOperand) {
  Rng rng(35);
  const std::int64_t m = 9;
  const std::int64_t k = tensor::kGemmKC + 100;  // 2 pc blocks, short edge
  const std::int64_t n = tensor::kGemmNC + 200;  // 2 jc blocks, short edge
  Tensor a = rng.gaussian(m, k, 0.8f);
  Tensor b = rng.gaussian(k, n, 0.8f);
  const PackedB pb = PackedB::pack(b.view(), Trans::No, DType::kQ8_0);

  // Column window: second jc block.
  const std::int64_t j0 = tensor::kGemmNC;
  const std::int64_t nw = n - j0;
  Tensor got_cols(m, nw);
  tensor::gemm_packed_window(a.view(), Trans::No, pb, j0, nw, 0, k,
                             got_cols.view());
  Tensor full(m, n);
  tensor::gemm_packed(a.view(), Trans::No, pb, full.view());
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < nw; ++j) {
      EXPECT_EQ(got_cols(i, j), full(i, j0 + j));
    }
  }

  // Row (K) windows with beta = 1 accumulate back to the full product.
  Tensor acc = Tensor::zeros(m, n);
  for (const std::int64_t k0 : {std::int64_t{0}, tensor::kGemmKC}) {
    const std::int64_t kw = std::min(tensor::kGemmKC, k - k0);
    Tensor a_slice(m, kw);
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t kk = 0; kk < kw; ++kk) {
        a_slice(i, kk) = a(i, k0 + kk);
      }
    }
    tensor::gemm_packed_window(a_slice.view(), Trans::No, pb, 0, n, k0, kw,
                               acc.view(), 1.0f, 1.0f);
  }
  EXPECT_LT(tensor::max_abs_diff(acc, full), 1e-4f);
}

// Per-dtype bitwise determinism across thread-pool sizes: the quantized
// driver inherits gemm()'s deterministic row-block partitioning.
TEST(QuantGemm, BitwiseDeterministicAcrossPoolSizes) {
  Rng rng(36);
  const std::int64_t m = 130;  // several kMC row blocks
  const std::int64_t k = 80;
  const std::int64_t n = 48;
  Tensor a = rng.gaussian(m, k, 1.0f);
  Tensor b = rng.gaussian(k, n, 1.0f);
  for (const DType dt :
       {DType::kF32, DType::kBf16, DType::kQ8_0, DType::kQ4_0}) {
    const PackedB pb = PackedB::pack(b.view(), Trans::No, dt);
    parallel::ThreadPool::reset_global(1);
    Tensor c1(m, n);
    tensor::gemm_packed(a.view(), Trans::No, pb, c1.view());
    parallel::ThreadPool::reset_global(3);
    Tensor c3(m, n);
    tensor::gemm_packed(a.view(), Trans::No, pb, c3.view());
    parallel::ThreadPool::reset_global(0);
    EXPECT_FLOAT_EQ(tensor::max_abs_diff(c1, c3), 0.0f)
        << tensor::dtype_name(dt);
  }
}

// Byte accounting: quantized packs report the real scale+payload stream;
// dense packs report K*N at their element width.
TEST(QuantGemm, ModelBytesMatchFormat) {
  Rng rng(37);
  const std::int64_t k = 64;
  const std::int64_t n = 32;  // 2 micro-panels of 16 cols, 2 k-blocks
  Tensor b = rng.gaussian(k, n, 1.0f);
  const PackedB p32 = PackedB::pack(b.view(), Trans::No, DType::kF32);
  const PackedB p16 = PackedB::pack(b.view(), Trans::No, DType::kBf16);
  const PackedB p8 = PackedB::pack(b.view(), Trans::No, DType::kQ8_0);
  const PackedB p4 = PackedB::pack(b.view(), Trans::No, DType::kQ4_0);
  EXPECT_EQ(p32.model_bytes(), static_cast<std::uint64_t>(k * n * 4));
  EXPECT_EQ(p16.model_bytes(), static_cast<std::uint64_t>(k * n * 2));
  // Per micro-panel (16 cols) per k-block: 16 scales + payload.
  const std::uint64_t q8_chunk = 16 * 4 + 32 * 16;
  const std::uint64_t q4_chunk = 16 * 4 + 16 * 16;
  EXPECT_EQ(p8.model_bytes(), 2 * 2 * q8_chunk);
  EXPECT_EQ(p4.model_bytes(), 2 * 2 * q4_chunk);
  EXPECT_LT(p4.model_bytes(), p8.model_bytes());
  EXPECT_LT(p8.model_bytes(), p32.model_bytes());
}

}  // namespace
}  // namespace burst
