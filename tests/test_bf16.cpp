// Numerical fidelity under the training dtype: the distributed algorithms
// must stay close to the fp32 reference when activations are rounded to
// bf16 at the communication boundary (what real NCCL transfers carry).
#include <gtest/gtest.h>

#include <cmath>

#include "comm/sim_transport.hpp"
#include "core/dist_attention.hpp"
#include "core/partition.hpp"
#include "kernels/reference_attention.hpp"
#include "sim/cluster.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace burst {
namespace {

using tensor::Rng;
using tensor::Tensor;

TEST(Bf16, RoundingIdentityForRepresentables) {
  Tensor t(1, 4);
  t(0, 0) = 1.0f;
  t(0, 1) = -2.5f;
  t(0, 2) = 0.0f;
  t(0, 3) = 96.0f;
  Tensor before = t;
  tensor::round_bf16_inplace(t);
  EXPECT_FLOAT_EQ(tensor::max_abs_diff(t, before), 0.0f);
}

TEST(Bf16, RelativeErrorBounded) {
  Rng rng(5);
  Tensor t = rng.gaussian(64, 64, 3.0f);
  Tensor orig = t;
  tensor::round_bf16_inplace(t);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    const float a = orig.data()[i];
    const float b = t.data()[i];
    // bf16 has 8 mantissa bits: relative error <= 2^-8.
    EXPECT_LE(std::fabs(a - b), std::fabs(a) * (1.0f / 256.0f) + 1e-30f);
  }
}

TEST(Bf16, RoundToNearestEven) {
  // 1 + 2^-9 sits exactly between two bf16 values; ties go to even (1.0).
  Tensor t(1, 1);
  t(0, 0) = 1.0f + std::ldexp(1.0f, -9);
  tensor::round_bf16_inplace(t);
  EXPECT_FLOAT_EQ(t(0, 0), 1.0f);
}

// Distributed BurstAttention with inputs quantized to bf16 must track the
// fp32 reference to bf16-level error — the rounding must not be amplified
// by the online-softmax merges or the ring accumulation order.
TEST(Bf16, BurstAttentionStableUnderQuantizedInputs) {
  const std::int64_t n = 64;
  const std::int64_t d = 16;
  const int g = 4;
  Rng rng(11);
  Tensor q = rng.gaussian(n, d, 0.7f);
  Tensor k = rng.gaussian(n, d, 0.7f);
  Tensor v = rng.gaussian(n, d, 0.7f);
  tensor::round_bf16_inplace(q);
  tensor::round_bf16_inplace(k);
  tensor::round_bf16_inplace(v);

  const auto id = kernels::IndexMap::range(0, n);
  auto ref = kernels::reference_attention_forward(
      q, id, k, v, id, kernels::MaskSpec::causal(), 0.25f);

  core::DistAttnConfig cfg;
  cfg.mask = kernels::MaskSpec::causal();
  cfg.scale = 0.25f;
  cfg.balance = core::Balance::kZigzag;
  cfg.seq_len = n;

  sim::Cluster cluster({sim::Topology::single_node(g)});
  Tensor o_global = Tensor::zeros(n, d);
  std::mutex mu;
  cluster.run([&](sim::DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    const auto route = core::SweepRoute::flat(comm::flat_ring(g));
    const auto map = core::route_index_map(route, cfg, ctx.rank());
    core::LocalQKV local{core::shard_rows(q, map), core::shard_rows(k, map),
                         core::shard_rows(v, map)};
    // Quantize what would ride the wire each hop.
    tensor::round_bf16_inplace(local.k);
    tensor::round_bf16_inplace(local.v);
    auto fwd = core::dist_attention_forward(comm, route, cfg, local);
    std::lock_guard lock(mu);
    core::unshard_rows(o_global, map, fwd.o);
  });

  // Inputs were identical (already bf16); only fp32-accumulation order
  // differs from the reference, so agreement should be tight.
  EXPECT_LT(tensor::max_abs_diff(o_global, ref.o), 1e-4f);
}

}  // namespace
}  // namespace burst
