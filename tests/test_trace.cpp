#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/cluster.hpp"

namespace burst::sim {
namespace {

TEST(Trace, RecordsComputeIntervals) {
  TraceRecorder trace;
  Cluster::Config cfg;
  cfg.topo = Topology::single_node(2);
  cfg.flops_per_s = 1e9;
  cfg.trace = &trace;
  Cluster cluster(cfg);
  cluster.run([&](DeviceContext& ctx) {
    ctx.compute(1e6, kCompute, "work-a");
    ctx.compute(2e6, kCompute, "work-b");
  });
  auto events = trace.events();
  ASSERT_EQ(events.size(), 4u);  // 2 devices x 2 intervals
  int found_b = 0;
  for (const auto& e : events) {
    if (e.name == "work-b") {
      EXPECT_NEAR(e.end_s - e.begin_s, 2e-3, 1e-9);
      ++found_b;
    }
  }
  EXPECT_EQ(found_b, 2);
}

TEST(Trace, RecordsSendAndRecvWaits) {
  TraceRecorder trace;
  Cluster::Config cfg;
  cfg.topo = Topology::single_node(2);
  cfg.topo.intra = {1e-3, 1e6};
  cfg.trace = &trace;
  Cluster cluster(cfg);
  cluster.run([&](DeviceContext& ctx) {
    if (ctx.rank() == 0) {
      Message m;
      m.bytes = 1000;
      ctx.send(1, 0, std::move(m), kIntraComm);
    } else {
      // burst-lint: allow(no-unchecked-recv) trace events are the assertion, not the payload
      ctx.recv(0, 0, kIntraComm);
    }
  });
  bool saw_send = false;
  bool saw_recv = false;
  for (const auto& e : trace.events()) {
    saw_send = saw_send || e.name == "send->1";
    saw_recv = saw_recv || e.name == "recv<-0";
  }
  EXPECT_TRUE(saw_send);
  EXPECT_TRUE(saw_recv);
}

TEST(Trace, ChromeJsonIsWellFormedish) {
  TraceRecorder trace;
  trace.record(0, kCompute, "alpha \"quoted\"", 0.0, 1e-3);
  trace.record(1, kInterComm, "beta", 1e-3, 2e-3);
  std::ostringstream os;
  trace.write_chrome_trace(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(s.find("alpha \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(s.find("inter-node (IB)"), std::string::npos);
  // Balanced braces at the ends.
  EXPECT_EQ(s.front(), '{');
  EXPECT_EQ(s[s.size() - 2], '}');
}

TEST(Trace, OverlapFractionExtremes) {
  TraceRecorder trace;
  // Fully hidden: comm inside compute window.
  trace.record(0, kCompute, "c", 0.0, 10.0);
  trace.record(0, kIntraComm, "m", 2.0, 4.0);
  EXPECT_NEAR(trace.overlap_fraction(0), 1.0, 1e-9);
  // Fully exposed: comm after compute.
  trace.record(1, kCompute, "c", 0.0, 1.0);
  trace.record(1, kIntraComm, "m", 1.0, 3.0);
  EXPECT_NEAR(trace.overlap_fraction(1), 0.0, 1e-9);
  // No comm at all -> trivially 1.0.
  trace.record(2, kCompute, "c", 0.0, 1.0);
  EXPECT_NEAR(trace.overlap_fraction(2), 1.0, 1e-9);
}

TEST(Trace, ClearEmptiesBuffer) {
  TraceRecorder trace;
  trace.record(0, 0, "x", 0.0, 1.0);
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
}

}  // namespace
}  // namespace burst::sim
