// Transport conformance suite: every test body is written once against the
// comm::Transport contract and instantiated over both backends — the
// virtual-clock simulator (SimTransport over a thread-per-rank sim::Cluster)
// and real TCP (SocketTransport, one transport per thread on loopback, wired
// through the root/worker rendezvous). A backend passes by behaving
// identically at the protocol layer: tag demultiplexing, collective results,
// sequence-number duplicate discard, checksum rejection, bounded retry and
// recv deadlines.
//
// Protocol faults are injected through FaultDecorator, a Transport wrapper
// that drops, duplicates or corrupts frames *below* the Communicator — the
// same mechanism on both backends, so the reliability machinery is proven
// portable rather than simulator-only. (The multi-process smoke test lives
// in examples/dist_ring_tcp.cpp; here socket ranks are threads so gtest
// assertions work normally.)
#include "comm/communicator.hpp"
#include "comm/sim_transport.hpp"
#include "comm/socket_transport.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "comm/errors.hpp"
#include "sim/cluster.hpp"
#include "sim/fault.hpp"
#include "tensor/tensor.hpp"

namespace burst::comm {
namespace {

using sim::Cluster;
using sim::DeviceContext;
using sim::Topology;
using tensor::Tensor;

// ---------------------------------------------------------------------------
// Harness: run one SPMD body on every rank of a `world`-sized job, on either
// backend. Assertion state lives in the body's captures (indexed by rank);
// exceptions escaping a rank propagate out of run_world on both backends.
using RankBody = std::function<void(Transport&)>;

void run_sim_world(int world, const RankBody& body) {
  Cluster cluster({Topology::single_node(world)});
  cluster.run([&](DeviceContext& ctx) {
    SimTransport tp(ctx);
    body(tp);
  });
}

void run_socket_world(int world, const RankBody& body) {
  std::uint16_t port = 0;
  const int listen_fd = SocketTransport::bind_rendezvous_listener(&port);
  std::vector<std::thread> ranks;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(world));
  ranks.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    ranks.emplace_back([&, r] {
      try {
        SocketTransportConfig cfg;
        cfg.rank = r;
        cfg.world_size = world;
        cfg.root.port = port;
        cfg.rendezvous_listen_fd = r == 0 ? listen_fd : -1;
        SocketTransport tp(cfg);
        body(tp);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : ranks) {
    t.join();
  }
  for (const auto& e : errors) {
    if (e) {
      std::rethrow_exception(e);
    }
  }
}

void run_world(const std::string& backend, int world, const RankBody& body) {
  if (backend == "sim") {
    run_sim_world(world, body);
  } else {
    run_socket_world(world, body);
  }
}

// ---------------------------------------------------------------------------
// FaultDecorator: injects protocol-visible faults below the Communicator,
// uniformly over any inner transport. Faults act at the frame layer (what
// the protocol hands down), and unreliable_network() forces the integrity
// machinery on so checksums are carried on both backends.
class FaultDecorator final : public Transport {
 public:
  enum class Fault { kNone, kDropOnce, kDropAlways, kDuplicateOnce,
                     kCorruptOnce };

  FaultDecorator(Transport& inner, Fault fault)
      : inner_(inner), fault_(fault) {}

  const char* kind() const override { return inner_.kind(); }
  int rank() const override { return inner_.rank(); }
  int world_size() const override { return inner_.world_size(); }
  const sim::Topology& topo() const override { return inner_.topo(); }
  double now(int stream) const override { return inner_.now(stream); }
  double elapsed() const override { return inner_.elapsed(); }
  void wait(int stream, sim::Event e) override { inner_.wait(stream, e); }
  void sync_all() override { inner_.sync_all(); }
  void busy(double seconds, int stream, const char* label) override {
    inner_.busy(seconds, stream, label);
  }
  void compute(double flops, int stream, const char* label) override {
    inner_.compute(flops, stream, label);
  }
  sim::MemoryTracker& mem() override { return inner_.mem(); }
  obs::Registry* metrics() const override { return inner_.metrics(); }
  std::uint64_t bytes_sent() const override { return inner_.bytes_sent(); }

  bool send_bytes(const Endpoint& dst, int tag, std::vector<std::uint8_t> bytes,
                  std::uint64_t wire_bytes, int stream) override {
    return inner_.send_bytes(dst, tag, std::move(bytes), wire_bytes, stream);
  }
  std::vector<std::uint8_t> recv_bytes(const Endpoint& src, int tag, int stream,
                                       double timeout_s) override {
    return inner_.recv_bytes(src, tag, stream, timeout_s);
  }

  bool send_frame(const Endpoint& dst, int tag, Frame frame,
                  int stream) override {
    switch (fault_) {
      case Fault::kDropOnce:
        if (!fired_) {
          fired_ = true;
          return false;  // observable delivery failure: protocol retries
        }
        break;
      case Fault::kDropAlways:
        return false;
      case Fault::kDuplicateOnce:
        if (!fired_) {
          fired_ = true;
          Frame copy = frame;
          if (!inner_.send_frame(dst, tag, std::move(copy), stream)) {
            return false;
          }
        }
        break;
      case Fault::kCorruptOnce:
        if (!fired_ && !frame.tensors.empty() &&
            frame.tensors.front().numel() > 0) {
          fired_ = true;
          frame.tensors.front().data()[0] += 1024.0f;  // flip payload bits
        }
        break;
      case Fault::kNone:
        break;
    }
    return inner_.send_frame(dst, tag, std::move(frame), stream);
  }
  Frame recv_frame(const Endpoint& src, int tag, int stream,
                   double timeout_s) override {
    return inner_.recv_frame(src, tag, stream, timeout_s);
  }

  void barrier() override { inner_.barrier(); }
  bool unreliable_network() const override { return true; }
  double default_recv_timeout_s() const override {
    return inner_.default_recv_timeout_s();
  }

 private:
  Transport& inner_;
  Fault fault_;
  bool fired_ = false;
};

class TransportConformance
    : public ::testing::TestWithParam<const char*> {};

// ---------------------------------------------------------------------------
// Identity & defaults: what the protocol layer reads off the backend.
TEST_P(TransportConformance, ReportsIdentityAndBackendDefaults) {
  const std::string backend = GetParam();
  const int world = 2;
  std::vector<int> ok(world, 0);
  run_world(backend, world, [&](Transport& tp) {
    bool good = tp.world_size() == world && tp.kind() == backend;
    good = good && tp.topo().same_node(0, 1);  // flat default topology
    if (backend == "sim") {
      // Blocked sim receives are woken by the abort machinery; no deadline.
      good = good && std::isinf(tp.default_recv_timeout_s());
      good = good && !tp.unreliable_network();  // no fault plan installed
    } else {
      // A dead TCP peer can hang a recv forever: the default is finite,
      // and checksums stay on across process boundaries.
      good = good && std::isfinite(tp.default_recv_timeout_s()) &&
             tp.default_recv_timeout_s() > 0.0;
      good = good && tp.unreliable_network();
    }
    ok[static_cast<std::size_t>(tp.rank())] = good ? 1 : 0;
    tp.barrier();
  });
  for (int r = 0; r < world; ++r) {
    EXPECT_EQ(ok[static_cast<std::size_t>(r)], 1) << "rank " << r;
  }
}

// ---------------------------------------------------------------------------
// Byte primitives: ordered per (peer, tag), demultiplexed across tags — a
// later-posted tag can be received first without losing the earlier one.
TEST_P(TransportConformance, BytePrimitivesDemultiplexTags) {
  const int world = 2;
  std::vector<int> ok(world, 0);
  run_world(GetParam(), world, [&](Transport& tp) {
    const std::vector<std::uint8_t> a{1, 2, 3};
    const std::vector<std::uint8_t> b{9, 8, 7, 6};
    const std::vector<std::uint8_t> empty;
    if (tp.rank() == 0) {
      tp.send_bytes(Endpoint::of(1), /*tag=*/5, a, a.size(), sim::kIntraComm);
      tp.send_bytes(Endpoint::of(1), /*tag=*/5, b, b.size(), sim::kIntraComm);
      tp.send_bytes(Endpoint::of(1), /*tag=*/6, empty, 0, sim::kIntraComm);
      ok[0] = 1;
    } else {
      const double inf = tp.default_recv_timeout_s();
      // Drain tag 6 first, then tag 5 in posted order.
      auto got6 = tp.recv_bytes(Endpoint::of(0), 6, sim::kIntraComm, inf);
      auto got5a = tp.recv_bytes(Endpoint::of(0), 5, sim::kIntraComm, inf);
      auto got5b = tp.recv_bytes(Endpoint::of(0), 5, sim::kIntraComm, inf);
      ok[1] = (got6 == empty && got5a == a && got5b == b) ? 1 : 0;
    }
    tp.barrier();
  });
  EXPECT_EQ(ok[0], 1);
  EXPECT_EQ(ok[1], 1);
}

// ---------------------------------------------------------------------------
// Collectives through the Communicator: ring all-gather and pairwise
// all-to-all produce identical results and identical wire-byte accounting on
// both backends.
TEST_P(TransportConformance, RingAllGatherRowsMatchesOnBothBackends) {
  const int world = 4;
  const std::int64_t m = 2, c = 3;
  std::vector<int> ok(world, 0);
  run_world(GetParam(), world, [&](Transport& tp) {
    Communicator comm(tp);
    const int r = tp.rank();
    Tensor local(m, c);
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < c; ++j) {
        local(i, j) = static_cast<float>(100 * r + 10 * i + j);
      }
    }
    Tensor full = comm.all_gather_rows(local);
    bool good = full.rows() == m * world && full.cols() == c;
    for (int src = 0; src < world && good; ++src) {
      for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < c; ++j) {
          good = good && full(src * m + i, j) ==
                             static_cast<float>(100 * src + 10 * i + j);
        }
      }
    }
    // Accounting conformance: each rank forwarded world-1 shards of m*c
    // elements at 2 wire bytes per element, headers excluded.
    const auto expect_bytes =
        static_cast<std::uint64_t>((world - 1) * m * c * 2);
    good = good && tp.bytes_sent() == expect_bytes;
    ok[static_cast<std::size_t>(r)] = good ? 1 : 0;
    tp.barrier();
  });
  for (int r = 0; r < world; ++r) {
    EXPECT_EQ(ok[static_cast<std::size_t>(r)], 1) << "rank " << r;
  }
}

TEST_P(TransportConformance, AllToAllMatchesOnBothBackends) {
  const int world = 4;
  std::vector<int> ok(world, 0);
  run_world(GetParam(), world, [&](Transport& tp) {
    Communicator comm(tp);
    const int r = tp.rank();
    std::vector<Tensor> send;
    for (int dst = 0; dst < world; ++dst) {
      send.push_back(Tensor::full(2, 1, static_cast<float>(10 * r + dst)));
    }
    std::vector<Tensor> got = comm.all_to_all(std::move(send));
    bool good = static_cast<int>(got.size()) == world;
    for (int src = 0; src < world && good; ++src) {
      const auto& t = got[static_cast<std::size_t>(src)];
      good = good && t.numel() == 2 &&
             t(0, 0) == static_cast<float>(10 * src + r) &&
             t(1, 0) == static_cast<float>(10 * src + r);
    }
    ok[static_cast<std::size_t>(r)] = good ? 1 : 0;
    tp.barrier();
  });
  for (int r = 0; r < world; ++r) {
    EXPECT_EQ(ok[static_cast<std::size_t>(r)], 1) << "rank " << r;
  }
}

// ---------------------------------------------------------------------------
// Reliability protocol over faulty links — same FaultDecorator on both
// backends.

// A duplicated frame is discarded by sequence-number matching; the payload
// stream is unaffected.
TEST_P(TransportConformance, DuplicateFrameDiscardedBySequenceNumber) {
  const int world = 2;
  std::vector<int> ok(world, 0);
  run_world(GetParam(), world, [&](Transport& inner) {
    const auto fault = inner.rank() == 0 ? FaultDecorator::Fault::kDuplicateOnce
                                         : FaultDecorator::Fault::kNone;
    FaultDecorator tp(inner, fault);
    Communicator comm(tp);
    if (tp.rank() == 0) {
      comm.send(1, /*tag=*/7, {Tensor::full(1, 2, 3.0f)});  // duplicated
      comm.send(1, /*tag=*/7, {Tensor::full(1, 2, 4.0f)});
      ok[0] = 1;
    } else {
      auto first = comm.recv(0, 7);
      auto second = comm.recv(0, 7);
      ok[1] = (first.at(0)(0, 0) == 3.0f && second.at(0)(0, 0) == 4.0f &&
               comm.duplicates_discarded() == 1)
                  ? 1
                  : 0;
    }
    tp.barrier();
  });
  EXPECT_EQ(ok[0], 1);
  EXPECT_EQ(ok[1], 1);
}

// A corrupted payload fails the checksum and surfaces as a typed error.
TEST_P(TransportConformance, CorruptFrameRejectedByChecksum) {
  const int world = 2;
  std::vector<int> ok(world, 0);
  run_world(GetParam(), world, [&](Transport& inner) {
    const auto fault = inner.rank() == 0 ? FaultDecorator::Fault::kCorruptOnce
                                         : FaultDecorator::Fault::kNone;
    FaultDecorator tp(inner, fault);
    Communicator comm(tp);
    if (tp.rank() == 0) {
      comm.send(1, /*tag=*/7, {Tensor::full(2, 2, 1.5f)});
      ok[0] = 1;
    } else {
      bool threw = false;
      try {
        // burst-lint: allow(no-unchecked-recv) corruption must throw before any payload exists
        comm.recv(0, 7);
      } catch (const CommCorruptionError& e) {
        threw = e.peer() == 0;
      }
      ok[1] = threw ? 1 : 0;
    }
    tp.barrier();
  });
  EXPECT_EQ(ok[0], 1);
  EXPECT_EQ(ok[1], 1);
}

// One dropped delivery is absorbed by a retransmission, invisibly to the
// receiver.
TEST_P(TransportConformance, RetryAbsorbsTransientDrop) {
  const int world = 2;
  std::vector<int> ok(world, 0);
  run_world(GetParam(), world, [&](Transport& inner) {
    const auto fault = inner.rank() == 0 ? FaultDecorator::Fault::kDropOnce
                                         : FaultDecorator::Fault::kNone;
    FaultDecorator tp(inner, fault);
    Communicator comm(tp);
    if (tp.rank() == 0) {
      comm.send(1, /*tag=*/7, {Tensor::full(1, 3, 2.5f)});
      ok[0] = comm.retries() == 1 ? 1 : 0;
    } else {
      auto got = comm.recv(0, 7);
      ok[1] = (got.at(0)(0, 1) == 2.5f && comm.duplicates_discarded() == 0)
                  ? 1
                  : 0;
    }
    tp.barrier();
  });
  EXPECT_EQ(ok[0], 1);
  EXPECT_EQ(ok[1], 1);
}

// A permanently dead link exhausts max_send_attempts and raises
// CommTimeoutError on the sender; no receiver is involved.
TEST_P(TransportConformance, SendGivesUpAfterMaxAttempts) {
  const int world = 2;
  std::vector<int> ok(world, 0);
  run_world(GetParam(), world, [&](Transport& inner) {
    const auto fault = inner.rank() == 0 ? FaultDecorator::Fault::kDropAlways
                                         : FaultDecorator::Fault::kNone;
    FaultDecorator tp(inner, fault);
    Communicator comm(tp);
    if (tp.rank() == 0) {
      bool threw = false;
      try {
        comm.send(1, /*tag=*/7, {Tensor::full(1, 1, 1.0f)});
      } catch (const CommTimeoutError& e) {
        threw = e.peer() == 1;
      }
      const auto attempts = comm.reliability().max_send_attempts;
      ok[0] = (threw &&
               comm.retries() == static_cast<std::uint64_t>(attempts - 1))
                  ? 1
                  : 0;
    } else {
      ok[1] = 1;  // nothing was ever delivered; nothing to receive
    }
    tp.barrier();
  });
  EXPECT_EQ(ok[0], 1);
  EXPECT_EQ(ok[1], 1);
}

// An explicit (near-zero) recv deadline fires as CommTimeoutError on both
// clocks: the simulator's link latency exceeds it on the virtual timeline,
// and a socket rank's poll deadline expires on the wall clock.
TEST_P(TransportConformance, ExplicitRecvDeadlineFires) {
  const int world = 2;
  std::vector<int> ok(world, 0);
  run_world(GetParam(), world, [&](Transport& tp) {
    Communicator comm(tp);
    Reliability rel;
    rel.recv_timeout_s = 1e-9;
    comm.set_reliability(rel);
    if (tp.rank() == 0) {
      comm.send(1, /*tag=*/7, {Tensor::full(4, 4, 1.0f)});
      ok[0] = 1;
    } else {
      bool threw = false;
      try {
        // burst-lint: allow(no-unchecked-recv) the deadline must fire before any payload exists
        comm.recv(0, 7);
      } catch (const CommTimeoutError& e) {
        threw = e.peer() == 0;
      }
      ok[1] = threw ? 1 : 0;
    }
    tp.barrier();
  });
  EXPECT_EQ(ok[0], 1);
  EXPECT_EQ(ok[1], 1);
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformance,
                         ::testing::Values("sim", "socket"),
                         [](const auto& backend_info) {
                           return std::string(backend_info.param);
                         });

// ---------------------------------------------------------------------------
// Socket-specific smoke: 2-rank world over TCP threads exercising both
// directions of the mesh plus a barrier storm (the barrier control tags must
// never collide with data tags).
TEST(SocketTransportSmoke, TwoRankPingPongAndBarrierStorm) {
  std::vector<int> ok(2, 0);
  run_socket_world(2, [&](Transport& tp) {
    Communicator comm(tp);
    const int me = tp.rank();
    const int peer = 1 - me;
    for (int round = 0; round < 5; ++round) {
      if (me == 0) {
        comm.send(peer, round, {Tensor::full(1, 1, static_cast<float>(round))});
        auto echo = comm.recv(peer, round + 100);
        if (echo.at(0)(0, 0) != static_cast<float>(round + 1)) {
          return;  // leaves ok[0] unset
        }
      } else {
        auto got = comm.recv(peer, round);
        comm.send(peer, round + 100,
                  {Tensor::full(1, 1, got.at(0)(0, 0) + 1.0f)});
      }
      tp.barrier();
    }
    ok[static_cast<std::size_t>(me)] = 1;
  });
  EXPECT_EQ(ok[0], 1);
  EXPECT_EQ(ok[1], 1);
}

// ---------------------------------------------------------------------------
// Frame codec unit tests (backend-independent byte contract).
TEST(FrameCodec, RoundTripsMixedRankTensors) {
  Frame in;
  Tensor v(3);
  v[0] = 1.0f;
  v[1] = -2.5f;
  v[2] = 1024.0f;
  in.tensors.push_back(v);
  in.tensors.push_back(Tensor::full(2, 2, 7.0f));
  in.wire_bytes = 42;
  const auto bytes = serialize_frame(in);
  Frame out = deserialize_frame(bytes.data(), bytes.size());
  ASSERT_EQ(out.tensors.size(), 2u);
  EXPECT_EQ(out.wire_bytes, 42u);
  EXPECT_EQ(out.tensors[0].rank(), 1);
  // burst-lint: allow(no-naked-float-eq) the codec round-trip is byte-exact by contract
  EXPECT_EQ(out.tensors[0][1], -2.5f);
  EXPECT_EQ(out.tensors[1].rank(), 2);
  // burst-lint: allow(no-naked-float-eq) the codec round-trip is byte-exact by contract
  EXPECT_EQ(out.tensors[1](1, 1), 7.0f);
}

TEST(FrameCodec, RejectsBadMagic) {
  Frame in;
  in.tensors.push_back(Tensor::full(1, 1, 0.0f));
  auto bytes = serialize_frame(in);
  bytes[0] ^= 0xFF;
  EXPECT_THROW(deserialize_frame(bytes.data(), bytes.size()), CommError);
}

TEST(FrameCodec, RejectsTruncationAndTrailingBytes) {
  Frame in;
  in.tensors.push_back(Tensor::full(2, 3, 1.0f));
  auto bytes = serialize_frame(in);
  EXPECT_THROW(deserialize_frame(bytes.data(), bytes.size() - 1), CommError);
  bytes.push_back(0);
  EXPECT_THROW(deserialize_frame(bytes.data(), bytes.size()), CommError);
}

}  // namespace
}  // namespace burst::comm
