#include "comm/communicator.hpp"
#include "comm/sim_transport.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace burst::comm {
namespace {

using sim::Cluster;
using sim::DeviceContext;
using sim::Topology;
using tensor::Rng;
using tensor::Tensor;

class Collectives : public ::testing::TestWithParam<int> {};

TEST_P(Collectives, AllGatherRowsConcatenatesByRank) {
  const int g = GetParam();
  Cluster cluster({Topology::single_node(g)});
  std::vector<int> ok(static_cast<std::size_t>(g), 0);
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    Communicator comm(comm_tp);
    Tensor local = Tensor::full(2, 3, static_cast<float>(ctx.rank()));
    Tensor full = comm.all_gather_rows(local);
    ASSERT_EQ(full.rows(), 2 * g);
    bool good = true;
    for (int r = 0; r < g; ++r) {
      for (std::int64_t i = 0; i < 2; ++i) {
        for (std::int64_t j = 0; j < 3; ++j) {
          good = good && full(r * 2 + i, j) == static_cast<float>(r);
        }
      }
    }
    ok[static_cast<std::size_t>(ctx.rank())] = good ? 1 : 0;
  });
  for (int r = 0; r < g; ++r) {
    EXPECT_EQ(ok[static_cast<std::size_t>(r)], 1) << "rank " << r;
  }
}

TEST_P(Collectives, ReduceScatterRowsSumsAndShards) {
  const int g = GetParam();
  Cluster cluster({Topology::single_node(g)});
  std::vector<float> got(static_cast<std::size_t>(g), -1.0f);
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    Communicator comm(comm_tp);
    // Each rank contributes chunk value (rank+1) * (chunk index+1).
    Tensor full(g * 2, 2);
    for (int c = 0; c < g; ++c) {
      for (std::int64_t i = 0; i < 2; ++i) {
        for (std::int64_t j = 0; j < 2; ++j) {
          full(c * 2 + i, j) =
              static_cast<float>((ctx.rank() + 1) * (c + 1));
        }
      }
    }
    Tensor shard = comm.reduce_scatter_rows(full);
    // Sum over ranks of (rank+1)*(my_chunk+1) = (my_chunk+1) * g(g+1)/2.
    got[static_cast<std::size_t>(ctx.rank())] = shard(0, 0);
  });
  const float ranksum = static_cast<float>(g * (g + 1)) / 2.0f;
  for (int r = 0; r < g; ++r) {
    EXPECT_FLOAT_EQ(got[static_cast<std::size_t>(r)],
                    static_cast<float>(r + 1) * ranksum)
        << "rank " << r;
  }
}

TEST_P(Collectives, AllReduceMatchesSerialSum) {
  const int g = GetParam();
  Cluster cluster({Topology::single_node(g)});
  // Reference: sum of every rank's tensor.
  std::vector<Tensor> inputs;
  for (int r = 0; r < g; ++r) {
    Rng rng(100 + r);
    inputs.push_back(rng.gaussian(static_cast<std::int64_t>(g) * 3, 4, 1.0f));
  }
  Tensor expected = Tensor::zeros(g * 3, 4);
  for (const auto& t : inputs) {
    tensor::add_inplace(expected, t);
  }
  std::vector<float> err(static_cast<std::size_t>(g), 1.0f);
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    Communicator comm(comm_tp);
    Tensor t = inputs[static_cast<std::size_t>(ctx.rank())];
    comm.all_reduce_inplace(t);
    err[static_cast<std::size_t>(ctx.rank())] =
        tensor::max_abs_diff(t, expected);
  });
  for (int r = 0; r < g; ++r) {
    EXPECT_LT(err[static_cast<std::size_t>(r)], 1e-4f) << "rank " << r;
  }
}

TEST_P(Collectives, AllToAllTransposesOwnership) {
  const int g = GetParam();
  Cluster cluster({Topology::single_node(g)});
  std::vector<int> ok(static_cast<std::size_t>(g), 0);
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    Communicator comm(comm_tp);
    std::vector<Tensor> send;
    for (int dst = 0; dst < g; ++dst) {
      // Encode (src, dst) into the payload.
      send.push_back(
          Tensor::full(1, 2, static_cast<float>(ctx.rank() * 100 + dst)));
    }
    std::vector<Tensor> got = comm.all_to_all(std::move(send));
    bool good = got.size() == static_cast<std::size_t>(g);
    for (int src = 0; src < g && good; ++src) {
      good = got[static_cast<std::size_t>(src)](0, 0) ==
             static_cast<float>(src * 100 + ctx.rank());
    }
    ok[static_cast<std::size_t>(ctx.rank())] = good ? 1 : 0;
  });
  for (int r = 0; r < g; ++r) {
    EXPECT_EQ(ok[static_cast<std::size_t>(r)], 1) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, Collectives,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(CollectivesFixed, BroadcastFromNonzeroRoot) {
  const int g = 4;
  Cluster cluster({Topology::single_node(g)});
  std::vector<float> got(g, -1.0f);
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    Communicator comm(comm_tp);
    Tensor t = ctx.rank() == 2 ? Tensor::full(2, 2, 9.0f) : Tensor();
    comm.broadcast(t, 2);
    got[static_cast<std::size_t>(ctx.rank())] = t(1, 1);
  });
  for (int r = 0; r < g; ++r) {
    EXPECT_FLOAT_EQ(got[static_cast<std::size_t>(r)], 9.0f);
  }
}

TEST(CollectivesFixed, WireBytesUsesConfiguredWidth) {
  Cluster cluster({Topology::single_node(1)});
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport bf16_tp(ctx);
    Communicator bf16(bf16_tp, 2.0);
    comm::SimTransport fp32_tp(ctx);
    Communicator fp32(fp32_tp, 4.0);
    std::vector<Tensor> bundle;
    bundle.push_back(Tensor::zeros(4, 8));   // 32 elements
    bundle.push_back(Tensor::zeros(16));     // 16 elements
    EXPECT_EQ(bf16.wire_bytes(bundle), 96u);
    EXPECT_EQ(fp32.wire_bytes(bundle), 192u);
  });
}

TEST(CollectivesFixed, StreamSelectionFollowsTopology) {
  Cluster cluster({Topology::multi_node(2, 2)});
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    Communicator comm(comm_tp);
    if (ctx.rank() == 0) {
      EXPECT_EQ(comm.stream_for(1), sim::kIntraComm);
      EXPECT_EQ(comm.stream_for(2), sim::kInterComm);
      EXPECT_EQ(comm.stream_for(3), sim::kInterComm);
    }
  });
}

// Ring all-gather on G devices must move exactly (G-1) shards per device.
TEST(CollectivesFixed, AllGatherWireVolumeIsOptimal) {
  const int g = 4;
  Cluster cluster({Topology::single_node(g)});
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    Communicator comm(comm_tp, 2.0);
    Tensor local = Tensor::zeros(2, 8);  // 16 elements -> 32 wire bytes
    comm.all_gather_rows(local);
    EXPECT_EQ(ctx.bytes_sent(), static_cast<std::uint64_t>((g - 1) * 32));
    EXPECT_EQ(ctx.messages_sent(), static_cast<std::uint64_t>(g - 1));
  });
}

TEST(CollectivesFixed, SingleRankCollectivesAreIdentity) {
  Cluster cluster({Topology::single_node(1)});
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    Communicator comm(comm_tp);
    Rng rng(1);
    Tensor t = rng.gaussian(3, 3, 1.0f);
    Tensor ag = comm.all_gather_rows(t);
    EXPECT_LT(tensor::max_abs_diff(ag, t), 1e-7f);
    Tensor rs = comm.reduce_scatter_rows(t);
    EXPECT_LT(tensor::max_abs_diff(rs, t), 1e-7f);
    Tensor ar = t;
    comm.all_reduce_inplace(ar);
    EXPECT_LT(tensor::max_abs_diff(ar, t), 1e-7f);
  });
}

}  // namespace
}  // namespace burst::comm
