#include "core/partition.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace burst::core {
namespace {

using kernels::IndexMap;
using kernels::MaskSpec;
using tensor::Rng;
using tensor::Tensor;

class PartitionCoverage
    : public ::testing::TestWithParam<std::tuple<Balance, int>> {};

TEST_P(PartitionCoverage, MapsPartitionTheSequenceExactly) {
  const auto [balance, g] = GetParam();
  const std::int64_t n = 96;  // divisible by 2G for every tested G
  std::multiset<std::int64_t> seen;
  for (int r = 0; r < g; ++r) {
    IndexMap m = device_index_map(balance, n, g, r);
    EXPECT_EQ(m.size(), n / g);
    for (std::int64_t i = 0; i < m.size(); ++i) {
      seen.insert(m.global(i));
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(n));
  for (std::int64_t t = 0; t < n; ++t) {
    EXPECT_EQ(seen.count(t), 1u) << "token " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, PartitionCoverage,
    ::testing::Combine(::testing::Values(Balance::kContiguous,
                                         Balance::kZigzag, Balance::kStriped),
                       ::testing::Values(1, 2, 4, 8)));

TEST(Partition, ZigzagMatchesEq11) {
  // N=16, G=2: P=4. Device 0: chunks 0 and 3; device 1: chunks 1 and 2.
  IndexMap d0 = device_index_map(Balance::kZigzag, 16, 2, 0);
  EXPECT_EQ(d0.global(0), 0);
  EXPECT_EQ(d0.global(3), 3);
  EXPECT_EQ(d0.global(4), 12);
  EXPECT_EQ(d0.global(7), 15);
  IndexMap d1 = device_index_map(Balance::kZigzag, 16, 2, 1);
  EXPECT_EQ(d1.global(0), 4);
  EXPECT_EQ(d1.global(4), 8);
}

TEST(Partition, StripedMatchesEq13) {
  IndexMap d1 = device_index_map(Balance::kStriped, 12, 3, 1);
  EXPECT_EQ(d1.global(0), 1);
  EXPECT_EQ(d1.global(1), 4);
  EXPECT_EQ(d1.global(3), 10);
}

TEST(Partition, DivisibilityErrors) {
  EXPECT_THROW(device_index_map(Balance::kContiguous, 10, 4, 0),
               std::invalid_argument);
  EXPECT_THROW(device_index_map(Balance::kZigzag, 12, 4, 0),
               std::invalid_argument);  // needs 2G | N
  EXPECT_NO_THROW(device_index_map(Balance::kZigzag, 16, 4, 0));
}

TEST(Partition, ShardUnshardRoundTrip) {
  Rng rng(3);
  const std::int64_t n = 32;
  Tensor global = rng.gaussian(n, 4, 1.0f);
  for (Balance b :
       {Balance::kContiguous, Balance::kZigzag, Balance::kStriped}) {
    Tensor rebuilt = Tensor::zeros(n, 4);
    for (int r = 0; r < 4; ++r) {
      IndexMap m = device_index_map(b, n, 4, r);
      Tensor local = shard_rows(global, m);
      unshard_rows(rebuilt, m, local);
    }
    EXPECT_FLOAT_EQ(tensor::max_abs_diff(rebuilt, global), 0.0f)
        << balance_name(b);
  }
}

TEST(Partition, SubmapCoversRequestedRows) {
  IndexMap zig = device_index_map(Balance::kZigzag, 32, 2, 0);  // 2 segments
  IndexMap sub = submap(zig, 6, 6);  // straddles the segment boundary
  EXPECT_EQ(sub.size(), 6);
  for (std::int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(sub.global(i), zig.global(6 + i));
  }
}

// --- workload balance: the quantitative claim behind Figure 10 ------------

TEST(Balance, CausalContiguousIsImbalanced) {
  const double f =
      balance_factor(MaskSpec::causal(), Balance::kContiguous, 128, 4);
  // Last device holds the final quarter of a causal triangle: ~1.75x ideal.
  EXPECT_GT(f, 1.6);
}

TEST(Balance, CausalZigzagIsPerfect) {
  const double f =
      balance_factor(MaskSpec::causal(), Balance::kZigzag, 128, 4);
  // Chunk i pairs with chunk 2G-1-i; row counts complement exactly
  // (rows q and N-1-q attend q+1 and N-q keys, summing to N+1).
  EXPECT_NEAR(f, 1.0, 1e-2);
}

TEST(Balance, CausalStripedIsNearPerfect) {
  const double f =
      balance_factor(MaskSpec::causal(), Balance::kStriped, 128, 4);
  EXPECT_LT(f, 1.05);
}

TEST(Balance, SlidingWindowContiguousVsStriped) {
  MaskSpec swa = MaskSpec::sliding_window(16);
  const double contiguous =
      balance_factor(swa, Balance::kContiguous, 128, 4);
  const double striped = balance_factor(swa, Balance::kStriped, 128, 4);
  // SWA work is nearly uniform per row (except the first window), so even
  // contiguous is close; striped must still be at least as balanced.
  EXPECT_LE(striped, contiguous + 1e-9);
  EXPECT_LT(striped, 1.05);
}

TEST(Balance, BlockSparseStripedBalancesWhenBlockMultipleOfG) {
  // Figure 11: block size a multiple of G -> striped is perfectly balanced.
  const int g = 4;
  MaskSpec m = MaskSpec::block_sliding_window(/*num_blocks=*/8,
                                              /*window_blocks=*/3,
                                              /*block_size=*/16);
  const double striped = balance_factor(m, Balance::kStriped, 128, g);
  EXPECT_NEAR(striped, 1.0, 1e-9);
  const double contiguous = balance_factor(m, Balance::kContiguous, 128, g);
  EXPECT_GT(contiguous, striped);
}

TEST(Balance, FullMaskAlwaysBalanced) {
  for (Balance b :
       {Balance::kContiguous, Balance::kZigzag, Balance::kStriped}) {
    EXPECT_NEAR(balance_factor(MaskSpec::full(), b, 64, 4), 1.0, 1e-9);
  }
}

TEST(Balance, DeviceWorkloadSumsToTotal) {
  MaskSpec m = MaskSpec::causal();
  const std::int64_t n = 64;
  for (Balance b :
       {Balance::kContiguous, Balance::kZigzag, Balance::kStriped}) {
    std::uint64_t sum = 0;
    for (int r = 0; r < 4; ++r) {
      sum += device_workload(m, device_index_map(b, n, 4, r), n);
    }
    EXPECT_EQ(sum, m.count_allowed(0, n, 0, n)) << balance_name(b);
  }
}

}  // namespace
}  // namespace burst::core
