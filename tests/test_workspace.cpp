#include "tensor/workspace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "kernels/flash_attention.hpp"
#include "kernels/lm_head.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace burst::tensor {
namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

TEST(Workspace, ScopeRewindReusesStorageWithoutGrowth) {
  Workspace ws;
  float* first = nullptr;
  {
    Workspace::Scope scope(ws);
    first = ws.alloc_f32(100);
  }
  const std::uint64_t grows = ws.grow_count();
  for (int iter = 0; iter < 50; ++iter) {
    Workspace::Scope scope(ws);
    float* p = ws.alloc_f32(100);
    EXPECT_EQ(p, first);  // same storage every iteration
    p[0] = static_cast<float>(iter);
  }
  EXPECT_EQ(ws.grow_count(), grows);
}

TEST(Workspace, BorrowedPointersSurviveGrowth) {
  Workspace ws;
  Workspace::Scope scope(ws);
  float* small = ws.alloc_f32(8);
  for (std::size_t i = 0; i < 8; ++i) {
    small[i] = static_cast<float>(i);
  }
  // Force several new blocks while `small` is still borrowed.
  float* big1 = ws.alloc_f32(1u << 16);
  float* big2 = ws.alloc_f32(1u << 18);
  big1[0] = 1.0f;
  big2[0] = 2.0f;
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(small[i], static_cast<float>(i));
  }
}

TEST(Workspace, NestedScopesRestoreInStackOrder) {
  Workspace ws;
  Workspace::Scope outer(ws);
  float* a = ws.alloc_f32(16);
  float* inner_ptr = nullptr;
  {
    Workspace::Scope inner(ws);
    inner_ptr = ws.alloc_f32(16);
    EXPECT_NE(inner_ptr, a);
  }
  // After the inner scope pops, its storage is handed out again.
  Workspace::Scope inner2(ws);
  EXPECT_EQ(ws.alloc_f32(16), inner_ptr);
}

TEST(Workspace, HighWaterTracksPeakBorrowedBytes) {
  Workspace ws;
  {
    Workspace::Scope scope(ws);
    ws.alloc_f32(100);
    ws.alloc_f64(50);
  }
  const std::size_t peak = 100 * sizeof(float) + 50 * sizeof(double);
  EXPECT_GE(ws.high_water_bytes(), peak);
  // Rewinding does not lower the recorded peak.
  {
    Workspace::Scope scope(ws);
    ws.alloc_f32(1);
  }
  EXPECT_GE(ws.high_water_bytes(), peak);
}

TEST(Workspace, ZeroSizedAllocationsAreDistinct) {
  Workspace ws;
  Workspace::Scope scope(ws);
  float* a = ws.alloc_f32(0);
  float* b = ws.alloc_f32(0);
  EXPECT_NE(a, b);
}

// The acceptance gate for the fused hot path: after one warm-up call, a
// repeat of the same problem must not grow any arena — i.e. the kernels do
// zero heap allocations (from the workspace) in steady state. Run with one
// worker so all scratch flows through this thread's arena.
TEST(Workspace, KernelsDoNotGrowArenaInSteadyState) {
  parallel::ThreadPool::reset_global(1);
  Rng rng(71);
  const std::int64_t n = 96;
  const std::int64_t d = 16;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  const kernels::MaskSpec mask = kernels::MaskSpec::causal();
  const kernels::IndexMap id = kernels::IndexMap::range(0, n);
  Tensor q = rng.gaussian(n, d, 1.0f);
  Tensor k = rng.gaussian(n, d, 1.0f);
  Tensor v = rng.gaussian(n, d, 1.0f);
  Tensor d_out = rng.gaussian(n, d, 1.0f);
  Tensor a = rng.gaussian(40, 72, 1.0f);
  Tensor b = rng.gaussian(72, 56, 1.0f);
  Tensor c(40, 56);

  const auto run_all = [&] {
    gemm(a.view(), Trans::No, b.view(), Trans::No, c.view());
    auto fwd = kernels::flash_forward(q, id, k, v, id, mask, scale);
    Tensor dvec = kernels::attention_dvec(d_out, fwd.o);
    Tensor dq = Tensor::zeros(n, d);
    Tensor dk = Tensor::zeros(n, d);
    Tensor dv = Tensor::zeros(n, d);
    kernels::flash_backward_partial(q, id, k, v, id, mask, scale, d_out,
                                    fwd.lse, dvec, dq, dk, dv);
    std::vector<std::int64_t> targets(static_cast<std::size_t>(n), 3);
    kernels::fused_lm_head_loss(q, k, targets, /*block_s=*/32, /*block_v=*/24);
  };

  run_all();  // warm-up: arenas grow to the problem's high-water mark
  const std::uint64_t grows = Workspace::tls().grow_count();
  for (int iter = 0; iter < 3; ++iter) {
    run_all();
  }
  EXPECT_EQ(Workspace::tls().grow_count(), grows)
      << "kernel hot path grew the workspace after warm-up";
  EXPECT_GT(Workspace::tls().high_water_bytes(), 0u);
  parallel::ThreadPool::reset_global();
}

}  // namespace
}  // namespace burst::tensor
