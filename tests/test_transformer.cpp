#include "model/transformer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace burst::model {
namespace {

using kernels::MaskSpec;
using tensor::Rng;
using tensor::Tensor;

Tensor make_tokens(std::uint64_t seed, std::int64_t n_plus_one,
                   std::int64_t vocab) {
  Rng rng(seed);
  return rng.token_ids(n_plus_one, vocab);
}

TEST(Transformer, WeightsShapes) {
  ModelConfig cfg = ModelConfig::toy();
  ModelWeights w = ModelWeights::init(cfg, 1);
  ASSERT_EQ(static_cast<std::int64_t>(w.layers.size()), cfg.layers);
  EXPECT_EQ(w.layers[0].wq.rows(), cfg.d_model);
  EXPECT_EQ(w.layers[0].w1.cols(), cfg.d_ff);
  EXPECT_EQ(w.w_embed.rows(), cfg.vocab);
  EXPECT_EQ(w.w_head.cols(), cfg.d_model);
}

TEST(Transformer, ParamCountMatchesFormula) {
  ModelConfig c7 = ModelConfig::llama7b();
  // ~6.9e9 params (projections + FFN + embeddings), LLaMA-1 scale.
  EXPECT_NEAR(static_cast<double>(c7.param_count()), 6.8e9, 0.4e9);
  ModelConfig c14 = ModelConfig::llama14b();
  EXPECT_NEAR(static_cast<double>(c14.param_count()), 14.0e9, 1.0e9);
}

TEST(Transformer, LossIsFiniteAndNearLogVocabAtInit) {
  ModelConfig cfg = ModelConfig::toy();
  ModelWeights w = ModelWeights::init(cfg, 7);
  Tensor tokens = make_tokens(3, 33, cfg.vocab);
  const double loss = serial_loss(cfg, w, tokens, MaskSpec::causal());
  EXPECT_TRUE(std::isfinite(loss));
  // Untrained model on random tokens: CE should sit within a few nats of
  // log(vocab).
  EXPECT_NEAR(loss, std::log(static_cast<double>(cfg.vocab)), 3.0);
}

TEST(Transformer, TrainStepLossMatchesForwardOnly) {
  ModelConfig cfg = ModelConfig::toy();
  ModelWeights w = ModelWeights::init(cfg, 9);
  Tensor tokens = make_tokens(5, 17, cfg.vocab);
  auto step = serial_train_step(cfg, w, tokens, MaskSpec::causal());
  const double fwd = serial_loss(cfg, w, tokens, MaskSpec::causal());
  EXPECT_NEAR(step.loss, fwd, 1e-6);
}

// Central check on the whole serial backward: finite differences through the
// entire model for a few parameters of every kind.
TEST(Transformer, GradcheckSelectedParameters) {
  ModelConfig cfg = ModelConfig::toy();
  cfg.layers = 2;
  ModelWeights w = ModelWeights::init(cfg, 11);
  Tensor tokens = make_tokens(13, 13, cfg.vocab);
  const MaskSpec mask = MaskSpec::causal();
  auto step = serial_train_step(cfg, w, tokens, mask);

  const float eps = 2e-2f;
  const auto check = [&](Tensor& param, const Tensor& grad, std::int64_t idx,
                         const char* name) {
    const float orig = param.data()[idx];
    param.data()[idx] = orig + eps;
    const double lp = serial_loss(cfg, w, tokens, mask);
    param.data()[idx] = orig - eps;
    const double lm = serial_loss(cfg, w, tokens, mask);
    param.data()[idx] = orig;
    const double fd = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(grad.data()[idx], fd, 2e-3 + 0.1 * std::fabs(fd))
        << name << "[" << idx << "]";
  };

  check(w.layers[0].wq, step.grads.layers[0].wq, 5, "l0.wq");
  check(w.layers[0].wv, step.grads.layers[0].wv, 40, "l0.wv");
  check(w.layers[1].wo, step.grads.layers[1].wo, 7, "l1.wo");
  check(w.layers[1].w1, step.grads.layers[1].w1, 3, "l1.w1");
  check(w.layers[0].w2, step.grads.layers[0].w2, 11, "l0.w2");
  check(w.w_head, step.grads.w_head, 123, "w_head");
  // An embedding row that actually occurs in the input.
  const auto tok = static_cast<std::int64_t>(tokens[0]);
  check(w.w_embed, step.grads.w_embed, tok * cfg.d_model + 1, "w_embed");
}

TEST(Transformer, SgdStepReducesLoss) {
  ModelConfig cfg = ModelConfig::toy();
  ModelWeights w = ModelWeights::init(cfg, 21);
  Tensor tokens = make_tokens(23, 33, cfg.vocab);
  const MaskSpec mask = MaskSpec::causal();
  double prev = serial_loss(cfg, w, tokens, mask);
  for (int iter = 0; iter < 5; ++iter) {
    auto step = serial_train_step(cfg, w, tokens, mask);
    apply_sgd(w, step.grads, 0.05f);
  }
  const double after = serial_loss(cfg, w, tokens, mask);
  EXPECT_LT(after, prev);
}

TEST(Transformer, GradsAccumulateAndMaxAbs) {
  ModelConfig cfg = ModelConfig::toy();
  ModelGrads a = ModelGrads::zeros(cfg);
  ModelGrads b = ModelGrads::zeros(cfg);
  a.layers[0].wq(0, 0) = 2.0f;
  b.layers[0].wq(0, 0) = 3.0f;
  b.w_head(1, 1) = -7.0f;
  a.add(b);
  EXPECT_FLOAT_EQ(a.layers[0].wq(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(a.max_abs(), 7.0f);
}

TEST(Transformer, CausalityHoldsInSerialModel) {
  // Changing a future token must not change earlier positions' losses; we
  // check via total loss on a prefix-targets trick: loss over first rows
  // computed with a shortened sequence equals the same rows of the longer
  // sequence's per-row CE. Cheap proxy: perturb the last input token and
  // verify the loss changes only via the last prediction row.
  ModelConfig cfg = ModelConfig::toy();
  cfg.layers = 1;
  ModelWeights w = ModelWeights::init(cfg, 31);
  Rng rng(33);
  Tensor tokens = rng.token_ids(9, cfg.vocab);  // 8 predictions
  const MaskSpec mask = MaskSpec::causal();

  // Loss over the first 4 predictions from the 5-token prefix.
  Tensor prefix(5);
  for (std::int64_t i = 0; i < 5; ++i) {
    prefix[i] = tokens[i];
  }
  const double prefix_loss = serial_loss(cfg, w, prefix, mask);

  // Same 4 predictions inside the full sequence must match exactly: under a
  // causal mask they cannot see tokens 5..8.
  // Compute full per-sequence loss with modified future tokens; difference
  // of sums isolates rows 0..3 only if causality holds. We instead directly
  // compare: loss(prefix) computed from full-run is not exposed, so we use
  // two full runs with different future tokens and verify their row-0..3
  // contributions agree by comparing (loss_full * 8 - loss_tail * 4) where
  // tail rows differ. Simpler and sufficient: perturbed future tokens give
  // different total loss but identical prefix loss re-computed standalone.
  Tensor tokens2 = tokens;
  tokens2[7] = static_cast<float>(
      (static_cast<std::int64_t>(tokens2[7]) + 1) % cfg.vocab);
  Tensor prefix2(5);
  for (std::int64_t i = 0; i < 5; ++i) {
    prefix2[i] = tokens2[i];
  }
  const double prefix_loss2 = serial_loss(cfg, w, prefix2, mask);
  EXPECT_DOUBLE_EQ(prefix_loss, prefix_loss2);
}

}  // namespace
}  // namespace burst::model
