// Paged KV-cache storage (model::SequenceKvCache) and the serving block
// pool that charges it to a device MemoryTracker (serve::KvBlockPool).
#include <gtest/gtest.h>

#include <stdexcept>

#include "model/kv_cache.hpp"
#include "serve/kv_cache.hpp"
#include "sim/memory.hpp"
#include "tensor/rng.hpp"

namespace burst {
namespace {

using model::ModelConfig;
using model::SequenceKvCache;
using serve::KvBlockPool;
using tensor::Rng;
using tensor::Tensor;

ModelConfig gqa_toy() {
  ModelConfig cfg = ModelConfig::toy();
  cfg.kv_heads = 2;
  cfg.use_rope = true;
  return cfg;
}

TEST(KvCache, BlockArithmetic) {
  EXPECT_EQ(SequenceKvCache::blocks_for(0, 16), 0);
  EXPECT_EQ(SequenceKvCache::blocks_for(1, 16), 1);
  EXPECT_EQ(SequenceKvCache::blocks_for(16, 16), 1);
  EXPECT_EQ(SequenceKvCache::blocks_for(17, 16), 2);

  const ModelConfig cfg = gqa_toy();
  // One block holds K + V rows for every (layer, kv head).
  const std::uint64_t expect = static_cast<std::uint64_t>(
      static_cast<double>(16 * cfg.layers * cfg.num_kv_heads() *
                          cfg.head_dim() * 2) *
      cfg.kv_bytes_per_el());
  EXPECT_EQ(SequenceKvCache::block_bytes(cfg, 16), expect);
}

TEST(KvCache, ReserveGrowsInWholeBlocks) {
  SequenceKvCache cache = SequenceKvCache::create(gqa_toy(), 8);
  EXPECT_EQ(cache.len(), 0);
  EXPECT_EQ(cache.blocks_allocated(), 0);
  EXPECT_EQ(cache.reserve(3), 1);  // 3 tokens -> 1 block of 8
  EXPECT_EQ(cache.capacity_tokens(), 8);
  EXPECT_EQ(cache.reserve(3), 0);  // still fits: idempotent
  EXPECT_EQ(cache.reserve(9), 1);  // len 0 + 9 tokens -> 2 blocks
  EXPECT_EQ(cache.blocks_allocated(), 2);
}

TEST(KvCache, PutCommitViewRoundTrip) {
  const ModelConfig cfg = gqa_toy();
  SequenceKvCache cache = SequenceKvCache::create(cfg, 4);
  Rng rng(7);
  const Tensor k = rng.gaussian(std::int64_t{3}, cfg.head_dim());
  const Tensor v = rng.gaussian(std::int64_t{3}, cfg.head_dim());
  cache.reserve(3);
  for (std::int64_t l = 0; l < cfg.layers; ++l) {
    for (std::int64_t h = 0; h < cfg.num_kv_heads(); ++h) {
      cache.put(l, h, k, v);
    }
  }
  cache.commit(3);
  EXPECT_EQ(cache.len(), 3);
  const auto kv_view = cache.k_view(1, 1, 3);
  const auto vv = cache.v_view(0, 0, 2);
  EXPECT_EQ(kv_view.rows, 3);
  EXPECT_EQ(vv.rows, 2);
  for (std::int64_t r = 0; r < 3; ++r) {
    for (std::int64_t c = 0; c < cfg.head_dim(); ++c) {
      EXPECT_EQ(kv_view(r, c), k(r, c));
    }
  }
  EXPECT_EQ(vv(1, 2), v(1, 2));
}

// Growing past the initial capacity must preserve already-committed rows.
TEST(KvCache, GrowthPreservesCommittedRows) {
  const ModelConfig cfg = gqa_toy();
  SequenceKvCache cache = SequenceKvCache::create(cfg, 2);
  Rng rng(11);
  Tensor all_k(std::int64_t{9}, cfg.head_dim());
  for (std::int64_t t = 0; t < 9; ++t) {  // one token at a time, many growths
    const Tensor k = rng.gaussian(std::int64_t{1}, cfg.head_dim());
    const Tensor v = rng.gaussian(std::int64_t{1}, cfg.head_dim());
    for (std::int64_t c = 0; c < cfg.head_dim(); ++c) {
      all_k(t, c) = k(0, c);
    }
    cache.reserve(1);
    for (std::int64_t l = 0; l < cfg.layers; ++l) {
      for (std::int64_t h = 0; h < cfg.num_kv_heads(); ++h) {
        cache.put(l, h, k, v);
      }
    }
    cache.commit(1);
  }
  EXPECT_EQ(cache.len(), 9);
  EXPECT_EQ(cache.blocks_allocated(), 5);
  const auto view = cache.k_view(0, 1, 9);
  for (std::int64_t t = 0; t < 9; ++t) {
    for (std::int64_t c = 0; c < cfg.head_dim(); ++c) {
      EXPECT_EQ(view(t, c), all_k(t, c)) << "row " << t;
    }
  }
}

// put_at assembles out-of-order shards (the distributed-prefill gather).
TEST(KvCache, PutAtGathersShards) {
  const ModelConfig cfg = gqa_toy();
  SequenceKvCache cache = SequenceKvCache::create(cfg, 4);
  Rng rng(13);
  const Tensor full_k = rng.gaussian(std::int64_t{8}, cfg.head_dim());
  const Tensor full_v = rng.gaussian(std::int64_t{8}, cfg.head_dim());
  cache.reserve(8);
  for (std::int64_t l = 0; l < cfg.layers; ++l) {
    for (std::int64_t h = 0; h < cfg.num_kv_heads(); ++h) {
      cache.put_at(l, h, 4, full_k.copy_rows(4, 4), full_v.copy_rows(4, 4));
      cache.put_at(l, h, 0, full_k.copy_rows(0, 4), full_v.copy_rows(0, 4));
    }
  }
  cache.commit(8);
  const auto view = cache.k_view(1, 0, 8);
  for (std::int64_t r = 0; r < 8; ++r) {
    EXPECT_EQ(view(r, 3), full_k(r, 3));
  }
}

TEST(KvBlockPool, AcquireChargesTrackerAndBudget) {
  sim::MemoryTracker mem;
  KvBlockPool pool(mem, /*bytes_per_block=*/1024, /*max_blocks=*/4);
  EXPECT_TRUE(pool.try_acquire(3, "req0"));
  EXPECT_EQ(pool.used_blocks(), 3);
  EXPECT_EQ(pool.free_blocks(), 1);
  EXPECT_EQ(mem.used(), 3 * 1024u);
  // Over budget: refused with no charge.
  EXPECT_FALSE(pool.try_acquire(2, "req1"));
  EXPECT_EQ(mem.used(), 3 * 1024u);
  pool.release(3);
  EXPECT_EQ(mem.used(), 0u);
  EXPECT_EQ(pool.free_blocks(), 4);
  EXPECT_THROW(pool.release(1), serve::SchedulerInvariantError);
}

// A capacity-limited tracker turns pool over-admission into DeviceOomError,
// the same failure mode as the training experiments.
TEST(KvBlockPool, TrackerCapacityStillEnforced) {
  sim::MemoryTracker mem(/*rank=*/0, /*capacity_bytes=*/2048);
  KvBlockPool pool(mem, 1024, /*max_blocks=*/100);
  EXPECT_TRUE(pool.try_acquire(2, "fits"));
  EXPECT_THROW(pool.try_acquire(1, "oom"), sim::DeviceOomError);
}

}  // namespace
}  // namespace burst
