// Quantized serving path (DESIGN.md section 16): prepacked Q8_0/Q4_0
// weights through prefill/decode and the fused LM head. The quantized
// forward must be exactly self-consistent (chunked == one-shot, bitwise,
// per dtype) and track the fp32 functional path within the format's error
// budget; the engine must serve a quantized QuantSpec end to end with a
// smaller weight stream and a faster roofline.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "kernels/lm_head.hpp"
#include "kernels/mask.hpp"
#include "model/kv_cache.hpp"
#include "model/quant_weights.hpp"
#include "model/transformer.hpp"
#include "serve/engine.hpp"
#include "tensor/dtype.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace burst {
namespace {

using kernels::MaskSpec;
using model::ModelConfig;
using model::ModelWeights;
using model::QuantizedWeights;
using model::SequenceKvCache;
using tensor::DType;
using tensor::Rng;
using tensor::Tensor;

ModelConfig quant_toy(DType weights) {
  ModelConfig cfg = ModelConfig::toy();  // 2 layers, d 32, 4 heads
  cfg.kv_heads = 2;
  cfg.use_rope = true;
  cfg.quant.weights = weights;
  return cfg;
}

std::vector<std::int64_t> prompt_of(std::uint64_t seed, std::int64_t n,
                                    std::int64_t vocab) {
  Rng rng(seed);
  std::vector<std::int64_t> p(static_cast<std::size_t>(n));
  for (auto& t : p) {
    t = rng.next_index(vocab);
  }
  return p;
}

// Chunked prefill through the quantized path must reproduce one-shot
// quantized prefill bitwise — quantization must not break the KV-cache
// position invariants, and the packed GEMMs are deterministic.
TEST(QuantModel, ChunkedPrefillBitwiseMatchesOneShot) {
  const MaskSpec mask = MaskSpec::causal();
  const auto prompt = prompt_of(7, 24, 64);
  for (const DType dt : {DType::kF32, DType::kQ8_0, DType::kQ4_0}) {
    const ModelConfig cfg = quant_toy(dt);
    const ModelWeights w = ModelWeights::init(cfg, 11);
    const QuantizedWeights qw = QuantizedWeights::pack(cfg, w);

    SequenceKvCache one = SequenceKvCache::create(cfg, 16);
    const Tensor h_one = model::forward_prefill_chunk_q(
        cfg, w, qw, one, prompt.data(), 24, mask);

    SequenceKvCache two = SequenceKvCache::create(cfg, 16);
    model::forward_prefill_chunk_q(cfg, w, qw, two, prompt.data(), 10, mask);
    const Tensor h_two = model::forward_prefill_chunk_q(
        cfg, w, qw, two, prompt.data() + 10, 14, mask);

    // Rows 10..23 of the one-shot hidden == the second chunk's rows.
    for (std::int64_t r = 0; r < 14; ++r) {
      for (std::int64_t c = 0; c < cfg.d_model; ++c) {
        ASSERT_EQ(h_two(r, c), h_one(10 + r, c))
            << tensor::dtype_name(dt) << " row " << r;
      }
    }
    // And decode continues identically from both caches.
    const Tensor l_one = model::forward_decode_q(cfg, w, qw, one, 3, mask);
    const Tensor l_two = model::forward_decode_q(cfg, w, qw, two, 3, mask);
    EXPECT_FLOAT_EQ(tensor::max_abs_diff(l_one, l_two), 0.0f)
        << tensor::dtype_name(dt);
  }
}

// The quantized forward tracks the fp32 functional path within the format
// error budget on a toy model (logit-level agreement; Q4 is coarse but the
// toy logits stay O(1)).
TEST(QuantModel, QuantizedLogitsTrackDenseWithinBudget) {
  const MaskSpec mask = MaskSpec::causal();
  const auto prompt = prompt_of(9, 16, 64);
  const ModelConfig dense_cfg = quant_toy(DType::kBf16);
  const ModelWeights w = ModelWeights::init(dense_cfg, 13);

  SequenceKvCache dense_cache = SequenceKvCache::create(dense_cfg, 16);
  const Tensor h_dense = model::forward_prefill_chunk(
      dense_cfg, w, dense_cache, prompt.data(), 16, mask);
  const Tensor logits_dense = model::head_logits(w, h_dense);

  struct Case {
    DType dt;
    float budget;
  };
  float err_q8 = 0.0f;
  float err_q4 = 0.0f;
  for (const Case c : {Case{DType::kQ8_0, 0.1f}, Case{DType::kQ4_0, 1.0f}}) {
    const ModelConfig cfg = quant_toy(c.dt);
    const QuantizedWeights qw = QuantizedWeights::pack(cfg, w);
    SequenceKvCache cache = SequenceKvCache::create(cfg, 16);
    const Tensor h = model::forward_prefill_chunk_q(cfg, w, qw, cache,
                                                    prompt.data(), 16, mask);
    const Tensor logits = model::head_logits_q(qw, h);
    const float err = tensor::max_abs_diff(logits, logits_dense);
    EXPECT_LT(err, c.budget) << tensor::dtype_name(c.dt);
    (c.dt == DType::kQ8_0 ? err_q8 : err_q4) = err;
  }
  // The coarser format really is coarser end to end.
  EXPECT_GT(err_q4, err_q8);
}

// Packed byte accounting orders as the formats promise.
TEST(QuantModel, PackedBytesShrinkWithFormat) {
  const ModelConfig cfg = quant_toy(DType::kQ8_0);
  const ModelWeights w = ModelWeights::init(cfg, 17);
  const auto bytes = [&](DType dt) {
    ModelConfig c = cfg;
    c.quant.weights = dt;
    return QuantizedWeights::pack(c, w).model_bytes();
  };
  const std::uint64_t f32 = bytes(DType::kF32);
  const std::uint64_t q8 = bytes(DType::kQ8_0);
  const std::uint64_t q4 = bytes(DType::kQ4_0);
  EXPECT_LT(q8, f32);
  EXPECT_LT(q4, q8);
  // 36/128 and 20/128 of fp32, within panel-padding slack on the toy dims
  // (the K edge pads short 32-blocks, inflating the ratio a little).
  EXPECT_NEAR(static_cast<double>(q8) / static_cast<double>(f32), 36.0 / 128,
              0.03);
  EXPECT_NEAR(static_cast<double>(q4) / static_cast<double>(f32), 20.0 / 128,
              0.03);
}

// The quantized fused LM head: kF32 pack must match the dense Algorithm 3
// numerically; quantized packs stay within the format budget; dw is exact
// for kF32 (W never enters dw, and dlogits agree to fp32 rounding).
TEST(QuantLmHead, MatchesDenseAlgorithm3) {
  Rng rng(41);
  const std::int64_t n = 24;
  const std::int64_t d = 32;
  const std::int64_t v = 64;
  const Tensor h = rng.gaussian(n, d, 0.8f);
  const Tensor w = rng.gaussian(v, d, 0.3f);
  std::vector<std::int64_t> targets(static_cast<std::size_t>(n));
  for (auto& t : targets) {
    t = rng.next_index(v);
  }

  const auto dense = kernels::fused_lm_head_loss(h, w, targets, 8, 64);

  const auto qf32 = kernels::QuantLmHead::pack(w, DType::kF32);
  const auto got32 = kernels::fused_lm_head_loss_q(h, qf32, targets, 8);
  EXPECT_NEAR(got32.loss, dense.loss, 1e-5);
  EXPECT_LT(tensor::max_abs_diff(got32.dh, dense.dh), 1e-5f);
  EXPECT_LT(tensor::max_abs_diff(got32.dw, dense.dw), 1e-5f);

  const auto q8 = kernels::QuantLmHead::pack(w, DType::kQ8_0);
  const auto got8 = kernels::fused_lm_head_loss_q(h, q8, targets, 8);
  EXPECT_NEAR(got8.loss, dense.loss, 0.02);
  EXPECT_LT(tensor::max_abs_diff(got8.dh, dense.dh), 0.02f);
  EXPECT_LT(tensor::max_abs_diff(got8.dw, dense.dw), 0.02f);
  EXPECT_GT(q8.model_bytes(), 0u);
  EXPECT_LT(q8.model_bytes(), qf32.model_bytes());
}

// End to end: the engine serves a Q4_0 QuantSpec to completion, reports the
// packed weight footprint, and finishes no later than the bf16 run — the
// roofline's weight-stream term shrinks 3.2x.
TEST(QuantServe, EngineServesQ4AndBeatsBf16Makespan) {
  const auto run_once = [](DType weights) {
    const ModelConfig cfg = quant_toy(weights);
    static ModelWeights w = ModelWeights::init(quant_toy(DType::kBf16), 23);
    serve::EngineConfig ecfg;
    ecfg.sched.policy = serve::BatchPolicy::kContinuous;
    ecfg.sched.token_budget = 64;
    ecfg.sched.chunk_tokens = 16;
    ecfg.hbm_bytes_per_s = 1e9;  // make the weight stream matter
    serve::Engine engine(cfg, w, ecfg);
    for (std::uint64_t s = 0; s < 3; ++s) {
      engine.add_request(prompt_of(s, 12, cfg.vocab), 4);
    }
    struct Out {
      serve::ServeReport rep;
      std::uint64_t packed_bytes;
    };
    Out out{serve::run_on_single_device(engine), engine.packed_weight_bytes()};
    return out;
  };

  const auto bf16 = run_once(DType::kBf16);
  const auto q4 = run_once(DType::kQ4_0);

  ASSERT_EQ(q4.rep.results.size(), 3u);
  for (const auto& r : q4.rep.results) {
    EXPECT_EQ(r.outcome, serve::Outcome::kCompleted);
    EXPECT_EQ(r.generated.size(), 4u);
  }
  EXPECT_EQ(bf16.packed_bytes, 0u);  // dense path: nothing packed
  EXPECT_GT(q4.packed_bytes, 0u);
  EXPECT_LT(q4.rep.metrics.makespan_s, bf16.rep.metrics.makespan_s);
}

}  // namespace
}  // namespace burst
