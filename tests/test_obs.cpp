// Unit tests for the obs/ subsystem: metric instruments (counter, gauge,
// histogram percentiles), the registry, metric-name labeling, the typed
// error hierarchy, and the RunReport JSON artifact.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/error.hpp"
#include "obs/report.hpp"

namespace burst::obs {
namespace {

TEST(Counter, AddValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add(3);
  c.add(4);
  EXPECT_EQ(c.value(), 7u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, OverflowWrapsModulo64Bits) {
  // Counters are unsigned 64-bit: overflow is defined (wraps), never UB.
  Counter c;
  c.add(std::numeric_limits<std::uint64_t>::max());
  c.add(3);
  EXPECT_EQ(c.value(), 2u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentAddsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&c] {
      for (int j = 0; j < kAdds; ++j) {
        c.add(1);
      }
    });
  }
  for (auto& t : ts) {
    t.join();
  }
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(Gauge, SetOverwrites) {
  Gauge g;
  g.set(2.5);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(Histogram, PercentilesNearestRank) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.observe(static_cast<double>(i));
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
}

TEST(Histogram, PercentilesAreOrderInsensitive) {
  Histogram h;
  for (int i = 100; i >= 1; --i) {
    h.observe(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 99.0);
}

TEST(Histogram, SingleSampleIsEveryPercentile) {
  Histogram h;
  h.observe(7.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 7.0);
}

TEST(Histogram, EmptyIsZeroAndResetClears) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  h.observe(4.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
}

TEST(Registry, InternsByName) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(1);
  EXPECT_EQ(reg.counter("x").value(), 1u);
  EXPECT_NE(&reg.counter("y"), &a);
}

TEST(Registry, HandlesStayValidAcrossInserts) {
  // Call sites cache Counter* across later registry growth; the node-based
  // map must never move an instrument.
  Registry reg;
  Counter* first = &reg.counter("stable");
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler." + std::to_string(i));
  }
  first->add(5);
  EXPECT_EQ(reg.counter("stable").value(), 5u);
}

TEST(Registry, SnapshotsAreSortedAndReset) {
  Registry reg;
  reg.counter("b").add(2);
  reg.counter("a").add(1);
  reg.gauge("g").set(1.5);
  reg.histogram("h").observe(3.0);

  const auto counters = reg.counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "a");
  EXPECT_EQ(counters[0].second, 1u);
  EXPECT_EQ(counters[1].first, "b");
  EXPECT_EQ(counters[1].second, 2u);

  const auto gauges = reg.gauges();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(gauges[0].second, 1.5);

  const auto hists = reg.histograms();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].second.count, 1u);
  EXPECT_DOUBLE_EQ(hists[0].second.p50, 3.0);

  reg.reset();
  EXPECT_EQ(reg.counters()[0].second, 0u);
  EXPECT_EQ(reg.histograms()[0].second.count, 0u);
}

TEST(Labeled, FormatsDottedNameWithLabels) {
  EXPECT_EQ(labeled("comm.bytes", {{"link", "intra"}, {"rank", "3"}}),
            "comm.bytes{link=intra,rank=3}");
  EXPECT_EQ(labeled("x", {}), "x");
}

TEST(ScopedTimer, FeedsHistogramAndSink) {
  struct Sink : TraceSink {
    std::string name;
    int rank = -1, stream = -1;
    double begin = -1.0, end = -1.0;
    int calls = 0;
    void record(int r, int s, std::string n, double begin_s,
                double end_s) override {
      ++calls;
      rank = r;
      stream = s;
      name = std::move(n);
      begin = begin_s;
      end = end_s;
    }
  };
  Sink sink;
  Registry reg;
  double now = 1.0;
  {
    ScopedTimer timer(&reg, &sink, /*rank=*/2, /*stream=*/0, "phase",
                      [&now] { return now; });
    now = 3.5;
  }
  EXPECT_EQ(sink.calls, 1);
  EXPECT_EQ(sink.name, "phase");
  EXPECT_EQ(sink.rank, 2);
  EXPECT_DOUBLE_EQ(sink.begin, 1.0);
  EXPECT_DOUBLE_EQ(sink.end, 3.5);
  EXPECT_EQ(reg.histogram("phase").count(), 1u);
  EXPECT_DOUBLE_EQ(reg.histogram("phase").percentile(0.5), 2.5);
}

TEST(ScopedTimer, InertWithNoSinks) {
  int now_calls = 0;
  {
    ScopedTimer timer(nullptr, nullptr, 0, 0, "phase", [&now_calls] {
      ++now_calls;
      return 0.0;
    });
  }
  EXPECT_EQ(now_calls, 0);
}

TEST(Error, CarriesStableCode) {
  const Error e(ErrorCode::kCommTimeout, "frame 3 lost");
  EXPECT_EQ(e.code(), ErrorCode::kCommTimeout);
  EXPECT_STREQ(e.code_name(), "comm_timeout");
  EXPECT_STREQ(e.what(), "frame 3 lost");
}

TEST(Error, CodeOfPlainExceptionIsUnknown) {
  const std::runtime_error plain("boom");
  EXPECT_STREQ(error_code_of(plain), "unknown");
  const Error typed(ErrorCode::kDeviceOom, "oom");
  EXPECT_STREQ(error_code_of(typed), "device_oom");
}

TEST(RunReport, JsonShapeIsStable) {
  RunReport rep("bench", "demo");
  rep.config("world_size", 4);
  rep.config("label", std::string("a\"b"));
  rep.measurement("tgs", 123.5, 120.0, "tok/s");
  rep.measurement("extra", 1.0);
  rep.check(true, "ordering holds");

  Registry reg;
  reg.counter("c").add(7);
  reg.gauge("g").set(0.5);
  reg.histogram("h").observe(2.0);
  rep.attach_registry(reg);

  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"schema\": \"burst.run_report\""), std::string::npos);
  EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"bench\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"demo\""), std::string::npos);
  EXPECT_NE(json.find("\"world_size\": 4"), std::string::npos);
  EXPECT_NE(json.find("a\\\"b"), std::string::npos);  // escaping
  EXPECT_NE(json.find("\"paper_value\": 120"), std::string::npos);
  EXPECT_NE(json.find("\"paper_value\": null"), std::string::npos);
  EXPECT_NE(json.find("\"c\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"self_check\": true"), std::string::npos);
}

TEST(RunReport, FailedCheckFailsSelfCheck) {
  RunReport rep("bench", "demo");
  rep.check(true, "fine");
  EXPECT_TRUE(rep.self_check());
  rep.check(false, "broken");
  EXPECT_FALSE(rep.self_check());
  EXPECT_NE(rep.to_json().find("\"self_check\": false"), std::string::npos);
}

TEST(RunReport, AddErrorFailsSelfCheck) {
  RunReport rep("training", "run");
  rep.add_error("comm_timeout", "frame lost");
  EXPECT_FALSE(rep.self_check());
  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"code\": \"comm_timeout\""), std::string::npos);
}

TEST(RunReport, AddErrorFromTypedException) {
  RunReport rep("training", "run");
  rep.add_error(Error(ErrorCode::kInjectedFault, "rank 2 crashed"));
  EXPECT_FALSE(rep.self_check());
  EXPECT_NE(rep.to_json().find("\"code\": \"injected_fault\""),
            std::string::npos);
}

}  // namespace
}  // namespace burst::obs
