// Communication-volume accounting tests: the paper's headline byte counts,
// asserted against the registry's per-rank, per-phase counters rather than
// derived formulas.
//
//   * BurstAttention's backward (Algorithm 2) circulates exactly 3Nd + 2N
//     bytes per rank (Q, dO, Lse, D immutably plus the dQ accumulator),
//     vs RingAttention's 4Nd (K, V plus the dK/dV accumulators) — the ~25%
//     backward saving of Section 3.1.
//   * Both forwards circulate 2Nd (K and V).
//   * The topology-aware double ring splits traffic so far fewer bytes cross
//     the inter-node links than a flat ring (Table 1's premise).
//   * Attaching a registry is observation-only: results and the virtual
//     clock are bitwise identical with and without one.
//
// All runs use Communicator(ctx, 1.0) so one element is one wire byte, and
// exact integer equality applies. Frame headers and bundle metadata are
// control plane and excluded from wire accounting by design.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "comm/communicator.hpp"
#include "comm/sim_transport.hpp"
#include "core/dist_attention.hpp"
#include "core/partition.hpp"
#include "obs/metrics.hpp"
#include "sim/cluster.hpp"
#include "tensor/rng.hpp"

namespace burst::core {
namespace {

using comm::Communicator;
using sim::Cluster;
using sim::DeviceContext;
using sim::Topology;
using tensor::Rng;
using tensor::Tensor;

constexpr std::int64_t kN = 128;  // global sequence length
constexpr std::int64_t kD = 16;   // head dimension

struct RunResult {
  Tensor o, dq, dk, dv;       // rank-0 shard outputs (for bitwise checks)
  double makespan = 0.0;
};

// Runs one distributed forward+backward; per-phase byte counters land in
// `reg` when non-null. `route_kind`: "flat" or "double".
RunResult run_attention(const Topology& topo, BackwardComm backward,
                        const std::string& route_kind, obs::Registry* reg) {
  const int g = topo.world_size();
  Cluster::Config cc;
  cc.topo = topo;
  cc.metrics = reg;
  Cluster cluster(cc);

  Rng rng(11);
  const Tensor q = rng.gaussian(kN, kD, 0.8f);
  const Tensor k = rng.gaussian(kN, kD, 0.8f);
  const Tensor v = rng.gaussian(kN, kD, 0.8f);
  const Tensor d_out = rng.gaussian(kN, kD, 0.8f);

  RunResult out;
  std::mutex mu;
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    Communicator comm(comm_tp, /*wire_bytes_per_element=*/1.0);
    const SweepRoute route = route_kind == "double"
                                 ? SweepRoute::double_ring(topo)
                                 : SweepRoute::flat(comm::flat_ring(g));
    DistAttnConfig cfg;
    cfg.mask = kernels::MaskSpec::causal();
    cfg.scale = 1.0f / std::sqrt(static_cast<float>(kD));
    cfg.balance = Balance::kZigzag;
    cfg.backward = backward;
    cfg.seq_len = kN;
    const auto map = route_index_map(route, cfg, ctx.rank());
    LocalQKV local{shard_rows(q, map), shard_rows(k, map),
                   shard_rows(v, map)};
    auto fwd = dist_attention_forward(comm, route, cfg, local);
    auto grads = dist_attention_backward(comm, route, cfg, local, fwd,
                                         shard_rows(d_out, map));
    if (ctx.rank() == 0) {
      std::lock_guard lock(mu);
      out.o = std::move(fwd.o);
      out.dq = std::move(grads.dq);
      out.dk = std::move(grads.dk);
      out.dv = std::move(grads.dv);
    }
  });
  out.makespan = cluster.makespan();
  return out;
}

std::uint64_t phase_bytes(obs::Registry& reg, const std::string& phase,
                          int rank) {
  return reg
      .counter(obs::labeled(phase + ".bytes",
                            {{"rank", std::to_string(rank)}}))
      .value();
}

// Bytes a rank hands to the sweep but never sends because the first visit is
// its own shard (the sweep starts locally, so each bundle takes G-1 hops).
// Adding one bundle's worth back converts "sent" into the full per-rank
// circulated volume the paper counts.
std::uint64_t one_bundle(std::uint64_t per_hop) { return per_hop; }

TEST(CommBytes, BurstBackwardIs3Nd2NPerRank) {
  const int g = 4;
  const std::int64_t n = kN / g;  // per-rank shard rows
  obs::Registry reg;
  run_attention(Topology::single_node(g), BackwardComm::kBurst, "flat", &reg);

  // Immutable bundle: Q (n*d) + dO (n*d) + Lse (n) + D (n); accumulator: dQ.
  const std::uint64_t imm = static_cast<std::uint64_t>(2 * n * kD + 2 * n);
  const std::uint64_t acc = static_cast<std::uint64_t>(n * kD);
  const std::uint64_t expect_sent = (g - 1) * imm + g * acc;
  for (int r = 0; r < g; ++r) {
    const std::uint64_t sent = phase_bytes(reg, "attn.backward", r);
    EXPECT_EQ(sent, expect_sent) << "rank " << r;
    // Sent plus the elided own-shard first hop is the paper's exact count.
    EXPECT_EQ(sent + one_bundle(imm),
              static_cast<std::uint64_t>(3 * kN * kD + 2 * kN))
        << "rank " << r;
    EXPECT_EQ(reg.counter(obs::labeled("attn.backward.calls",
                                       {{"rank", std::to_string(r)}}))
                  .value(),
              1u);
  }
}

TEST(CommBytes, RingBackwardIs4NdPerRank) {
  const int g = 4;
  const std::int64_t n = kN / g;
  obs::Registry reg;
  run_attention(Topology::single_node(g), BackwardComm::kRing, "flat", &reg);

  // Immutable bundle: K + V; accumulator: dK + dV. All n*d each.
  const std::uint64_t imm = static_cast<std::uint64_t>(2 * n * kD);
  const std::uint64_t acc = static_cast<std::uint64_t>(2 * n * kD);
  const std::uint64_t expect_sent = (g - 1) * imm + g * acc;
  for (int r = 0; r < g; ++r) {
    const std::uint64_t sent = phase_bytes(reg, "attn.backward", r);
    EXPECT_EQ(sent, expect_sent) << "rank " << r;
    EXPECT_EQ(sent + one_bundle(imm),
              static_cast<std::uint64_t>(4 * kN * kD))
        << "rank " << r;
  }
}

TEST(CommBytes, BurstBackwardBeatsRingByTheClaimedMargin) {
  // 3Nd + 2N < 4Nd whenever d > 2; at d=16 the saving is
  // 1 - (3*16+2)/(4*16) = 21.9%, approaching the paper's 25% as d grows.
  const double burst = 3.0 * kN * kD + 2.0 * kN;
  const double ring = 4.0 * kN * kD;
  EXPECT_LT(burst, ring);
  EXPECT_NEAR(1.0 - burst / ring, 0.25 - 2.0 / (4.0 * kD), 1e-12);
}

TEST(CommBytes, ForwardIs2NdPerRankForBothAlgorithms) {
  const int g = 4;
  const std::int64_t n = kN / g;
  for (BackwardComm backward : {BackwardComm::kBurst, BackwardComm::kRing}) {
    obs::Registry reg;
    run_attention(Topology::single_node(g), backward, "flat", &reg);
    const std::uint64_t imm = static_cast<std::uint64_t>(2 * n * kD);
    for (int r = 0; r < g; ++r) {
      const std::uint64_t sent = phase_bytes(reg, "attn.forward", r);
      EXPECT_EQ(sent, (g - 1) * imm) << "rank " << r;
      EXPECT_EQ(sent + one_bundle(imm),
                static_cast<std::uint64_t>(2 * kN * kD))
          << "rank " << r;
    }
  }
}

TEST(CommBytes, DoubleRingMovesTrafficOffTheInterNodeLinks) {
  const Topology topo = Topology::multi_node(2, 2);
  obs::Registry flat_reg;
  run_attention(topo, BackwardComm::kBurst, "flat", &flat_reg);
  obs::Registry dbl_reg;
  run_attention(topo, BackwardComm::kBurst, "double", &dbl_reg);

  const auto link_bytes = [](obs::Registry& reg, const char* link) {
    return reg.counter(obs::labeled("comm.bytes", {{"link", link}})).value();
  };
  const std::uint64_t flat_inter = link_bytes(flat_reg, "inter");
  const std::uint64_t dbl_inter = link_bytes(dbl_reg, "inter");
  const std::uint64_t dbl_intra = link_bytes(dbl_reg, "intra");

  // The flat ring alternates nodes, so half its hops cross the slow links;
  // the topology-aware route keeps most hops inside a node (Table 1).
  EXPECT_GT(dbl_intra, 0u);
  EXPECT_GT(dbl_inter, 0u);
  EXPECT_LT(dbl_inter, flat_inter);
  // Same total volume either way: routing changes where bytes go, not how
  // many there are.
  EXPECT_EQ(link_bytes(flat_reg, "intra") + flat_inter,
            dbl_intra + dbl_inter);
}

TEST(CommBytes, PerRankAndAggregateCountersAgree) {
  const int g = 4;
  obs::Registry reg;
  run_attention(Topology::multi_node(2, 2), BackwardComm::kBurst, "double",
                &reg);
  for (const char* link : {"intra", "inter"}) {
    std::uint64_t per_rank_sum = 0;
    for (int r = 0; r < g; ++r) {
      per_rank_sum +=
          reg.counter(obs::labeled("comm.bytes", {{"link", link},
                                                  {"rank", std::to_string(r)}}))
              .value();
    }
    EXPECT_EQ(per_rank_sum,
              reg.counter(obs::labeled("comm.bytes", {{"link", link}})).value())
        << link;
  }
}

TEST(CommBytes, RegistryIsObservationOnly) {
  // The disabled path must cost exactly zero: same results bit for bit,
  // same virtual makespan, whether or not a registry is attached.
  const Topology topo = Topology::multi_node(2, 2);
  obs::Registry reg;
  const RunResult with = run_attention(topo, BackwardComm::kBurst, "double",
                                       &reg);
  const RunResult without = run_attention(topo, BackwardComm::kBurst,
                                          "double", nullptr);

  EXPECT_DOUBLE_EQ(with.makespan, without.makespan);
  const auto bitwise_equal = [](const Tensor& a, const Tensor& b) {
    return a.numel() == b.numel() &&
           std::memcmp(a.data(), b.data(),
                       static_cast<std::size_t>(a.numel()) * sizeof(float)) ==
               0;
  };
  EXPECT_TRUE(bitwise_equal(with.o, without.o));
  EXPECT_TRUE(bitwise_equal(with.dq, without.dq));
  EXPECT_TRUE(bitwise_equal(with.dk, without.dk));
  EXPECT_TRUE(bitwise_equal(with.dv, without.dv));
}

}  // namespace
}  // namespace burst::core
