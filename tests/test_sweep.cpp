#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <vector>

#include "comm/sim_transport.hpp"
#include "sim/cluster.hpp"
#include "tensor/ops.hpp"

namespace burst::core {
namespace {

using comm::Communicator;
using comm::RingOrder;
using sim::Cluster;
using sim::DeviceContext;
using sim::Topology;
using tensor::Tensor;

// --- route structure -------------------------------------------------------

TEST(SweepRoute, FlatHopsFollowRing) {
  SweepRoute r = SweepRoute::flat(comm::flat_ring(4));
  EXPECT_EQ(r.steps(), 4);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(r.hop_target(1, s), 2);
    EXPECT_EQ(r.hop_source(1, s), 0);
  }
}

TEST(SweepRoute, DoubleRingAlternatesIntraInter) {
  Topology topo = Topology::multi_node(2, 2);
  SweepRoute r = SweepRoute::double_ring(topo);
  // L = 2: hop after even visits intra, after odd visits inter (diagonal:
  // next node, slot+1).
  EXPECT_EQ(r.hop_target(0, 0), 1);  // intra within node 0
  EXPECT_EQ(r.hop_target(0, 1), 3);  // inter diagonal: node 1, slot 1
  EXPECT_EQ(r.hop_target(1, 1), 2);  // inter diagonal: node 1, slot 0
  EXPECT_EQ(r.hop_target(2, 0), 3);  // intra within node 1
}

// Each step's hops must form a permutation of the ranks, and following the
// hop sequence for `steps` hops must return to the start (closed Hamiltonian
// walk) — the structural requirements of the double ring.
TEST(SweepRoute, DoubleRingIsPermutationAndClosed) {
  for (auto [nodes, gpus] : std::vector<std::pair<int, int>>{
           {2, 2}, {2, 4}, {4, 2}, {3, 3}, {1, 4}, {4, 1}}) {
    Topology topo = Topology::multi_node(nodes, gpus);
    SweepRoute r = SweepRoute::double_ring(topo);
    const int g = topo.world_size();
    for (int s = 0; s < r.steps(); ++s) {
      std::set<int> targets;
      for (int rank = 0; rank < g; ++rank) {
        targets.insert(r.hop_target(rank, s));
        EXPECT_EQ(r.hop_target(r.hop_source(rank, s), s), rank);
      }
      EXPECT_EQ(targets.size(), static_cast<std::size_t>(g))
          << nodes << "x" << gpus << " step " << s;
    }
    for (int start = 0; start < g; ++start) {
      std::set<int> visited{start};
      int pos = start;
      for (int s = 0; s < r.steps(); ++s) {
        pos = r.hop_target(pos, s);
        if (s < r.steps() - 1) {
          visited.insert(pos);
        }
      }
      EXPECT_EQ(pos, start) << "walk from " << start << " not closed";
      EXPECT_EQ(visited.size(), static_cast<std::size_t>(g))
          << "walk from " << start << " not Hamiltonian";
    }
  }
}

// --- activation sweep -------------------------------------------------------

void expect_activation_visits_all(Cluster& cluster, const SweepRoute& route) {
  const int g = route.size();
  std::vector<std::vector<int>> seen(static_cast<std::size_t>(g));
  std::mutex mu;
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    Communicator comm(comm_tp);
    Tensor own = Tensor::full(2, 2, static_cast<float>(ctx.rank()));
    ring_sweep_activation(
        comm, route, SweepOptions{}, {own},
        [&](const std::vector<Tensor>& ts, int origin) {
          EXPECT_FLOAT_EQ(ts[0](0, 0), static_cast<float>(origin));
          std::lock_guard lock(mu);
          seen[static_cast<std::size_t>(ctx.rank())].push_back(origin);
        });
  });
  for (int r = 0; r < g; ++r) {
    std::set<int> uniq(seen[static_cast<std::size_t>(r)].begin(),
                       seen[static_cast<std::size_t>(r)].end());
    EXPECT_EQ(uniq.size(), static_cast<std::size_t>(g)) << "rank " << r;
    EXPECT_EQ(seen[static_cast<std::size_t>(r)].front(), r)
        << "first visit must be own shard";
  }
}

TEST(ActivationSweep, FlatVisitsEveryShardOnce) {
  Cluster cluster({Topology::single_node(4)});
  expect_activation_visits_all(cluster, SweepRoute::flat(comm::flat_ring(4)));
}

TEST(ActivationSweep, DoubleRingVisitsEveryShardOnce) {
  Topology topo = Topology::multi_node(2, 4);
  Cluster cluster({topo});
  expect_activation_visits_all(cluster, SweepRoute::double_ring(topo));
}

TEST(ActivationSweep, SubgroupRing) {
  // Only ranks {1, 3} sweep; ranks 0 and 2 stay idle.
  Cluster cluster({Topology::single_node(4)});
  cluster.run([&](DeviceContext& ctx) {
    if (ctx.rank() % 2 == 0) {
      return;
    }
    comm::SimTransport comm_tp(ctx);
    Communicator comm(comm_tp);
    SweepRoute route = SweepRoute::flat(RingOrder({1, 3}));
    Tensor own = Tensor::full(1, 1, static_cast<float>(ctx.rank()));
    int visits = 0;
    ring_sweep_activation(comm, route, SweepOptions{}, {own},
                          [&](const std::vector<Tensor>&, int) { ++visits; });
    EXPECT_EQ(visits, 2);
  });
}

TEST(ActivationSweep, SingleDeviceVisitsSelfOnly) {
  Cluster cluster({Topology::single_node(1)});
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    Communicator comm(comm_tp);
    int visits = 0;
    ring_sweep_activation(comm, SweepRoute::flat(comm::flat_ring(1)),
                          SweepOptions{}, {Tensor::zeros(1, 1)},
                          [&](const std::vector<Tensor>&, int origin) {
                            EXPECT_EQ(origin, 0);
                            ++visits;
                          });
    EXPECT_EQ(visits, 1);
  });
}

// --- gradient sweep ----------------------------------------------------------

// Every device contributes f(visitor, origin) = visitor*100 + origin to each
// accumulator; the returned accumulator must hold the sum over all visitors.
void expect_gradient_accumulation(Cluster& cluster, const SweepRoute& route) {
  const int g = route.size();
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    Communicator comm(comm_tp);
    Tensor imm = Tensor::full(1, 1, static_cast<float>(ctx.rank()));
    Tensor acc = Tensor::zeros(1, 1);
    std::vector<Tensor> returned = ring_sweep_gradient(
        comm, route, SweepOptions{}, {imm}, {acc},
        [&](const std::vector<Tensor>& ts, int origin) {
          EXPECT_FLOAT_EQ(ts[0](0, 0), static_cast<float>(origin));
          Tensor c = Tensor::full(
              1, 1, static_cast<float>(ctx.rank() * 100 + origin));
          return std::vector<Tensor>{std::move(c)};
        });
    float expected = 0.0f;
    for (int visitor = 0; visitor < g; ++visitor) {
      expected += static_cast<float>(visitor * 100 + ctx.rank());
    }
    EXPECT_FLOAT_EQ(returned[0](0, 0), expected) << "rank " << ctx.rank();
  });
}

TEST(GradientSweep, FlatAccumulatesAllContributions) {
  Cluster cluster({Topology::single_node(4)});
  expect_gradient_accumulation(cluster, SweepRoute::flat(comm::flat_ring(4)));
}

TEST(GradientSweep, DoubleRingAccumulatesAllContributions) {
  Topology topo = Topology::multi_node(2, 3);
  Cluster cluster({topo});
  expect_gradient_accumulation(cluster, SweepRoute::double_ring(topo));
}

TEST(GradientSweep, SingleDevice) {
  Cluster cluster({Topology::single_node(1)});
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    Communicator comm(comm_tp);
    auto returned = ring_sweep_gradient(
        comm, SweepRoute::flat(comm::flat_ring(1)), SweepOptions{},
        {Tensor::zeros(1, 1)}, {Tensor::zeros(1, 1)},
        [&](const std::vector<Tensor>&, int) {
          return std::vector<Tensor>{Tensor::full(1, 1, 7.0f)};
        });
    EXPECT_FLOAT_EQ(returned[0](0, 0), 7.0f);
  });
}

// --- timing properties -------------------------------------------------------

// Overlapped sweeps must never be slower than serialized ones, and when
// compute dominates they should approach sum(compute) rather than
// sum(compute) + sum(comm).
TEST(SweepTiming, OverlapReducesActivationMakespan) {
  Cluster::Config cfg;
  cfg.topo = Topology::single_node(4);
  cfg.topo.intra = {1e-5, 1e9};
  cfg.flops_per_s = 1e9;
  Cluster cluster(cfg);

  const auto run_once = [&](bool overlap) {
    SweepOptions opt;
    opt.overlap = overlap;
    cluster.run([&](DeviceContext& ctx) {
      comm::SimTransport comm_tp(ctx);
      Communicator comm(comm_tp);
      Tensor own = Tensor::zeros(512, 64);  // 64 KiB wire -> 64 us per hop
      ring_sweep_activation(comm, SweepRoute::flat(comm::flat_ring(4)), opt,
                            {own}, [&](const std::vector<Tensor>&, int) {
                              ctx.compute(2e5);  // 200 us per visit
                            });
    });
    return cluster.makespan();
  };

  const double serialized = run_once(false);
  const double overlapped = run_once(true);
  EXPECT_LT(overlapped, serialized);
  // 4 visits x 200us compute dominates; overlapped should sit near 800us.
  EXPECT_LT(overlapped, 900e-6);
  EXPECT_GT(serialized, overlapped + 100e-6);
}

// On a 2-node topology with a slow inter-node link, the double ring (which
// sends only 1/L of hops over the slow link) must beat the flat ring, whose
// every step is gated by the slow boundary hop.
TEST(SweepTiming, DoubleRingBeatsFlatRingAcrossSlowLinks) {
  Cluster::Config cfg;
  cfg.topo = Topology::multi_node(2, 4);
  cfg.topo.intra = {1e-6, 100e9};
  cfg.topo.inter = {5e-6, 5e9};  // 20x slower
  cfg.flops_per_s = 1e15;        // negligible compute: isolate comm
  Cluster cluster(cfg);

  const auto run_route = [&](const SweepRoute& route) {
    cluster.run([&](DeviceContext& ctx) {
      comm::SimTransport comm_tp(ctx);
      Communicator comm(comm_tp);
      Tensor own = Tensor::zeros(4096, 64);  // 512 KiB wire
      ring_sweep_activation(comm, route, SweepOptions{}, {own},
                            [&](const std::vector<Tensor>&, int) {});
    });
    return cluster.makespan();
  };

  const double flat = run_route(SweepRoute::flat(comm::flat_ring(8)));
  const double dbl = run_route(SweepRoute::double_ring(cfg.topo));
  EXPECT_LT(dbl, flat);
}

}  // namespace
}  // namespace burst::core
