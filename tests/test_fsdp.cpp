// Functional FSDP (ZeRO-3): sharded training must produce exactly the same
// trajectory as replicated training, while each device permanently stores
// only 1/G of the parameters.
#include "model/fsdp.hpp"

#include <gtest/gtest.h>

#include <mutex>

#include "comm/communicator.hpp"
#include "comm/sim_transport.hpp"
#include "sim/cluster.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace burst::model {
namespace {

using sim::Cluster;
using sim::DeviceContext;
using sim::Topology;
using tensor::Rng;
using tensor::Tensor;

TEST(Fsdp, ShardGatherRoundTrip) {
  ModelConfig cfg = ModelConfig::toy();
  ModelWeights full = ModelWeights::init(cfg, 5);
  const int g = 4;
  Cluster cluster({Topology::single_node(g)});
  std::vector<float> err(static_cast<std::size_t>(g), 1.0f);
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    FsdpShards shards = FsdpShards::shard(cfg, full, g, ctx.rank());
    ModelWeights rebuilt = fsdp_gather_all(comm, shards);
    float e = tensor::max_abs_diff(rebuilt.layers[0].wq, full.layers[0].wq);
    e = std::max(e, tensor::max_abs_diff(rebuilt.w_head, full.w_head));
    e = std::max(e, tensor::max_abs_diff(rebuilt.layers[1].w2,
                                         full.layers[1].w2));
    err[static_cast<std::size_t>(ctx.rank())] = e;
  });
  for (int r = 0; r < g; ++r) {
    EXPECT_FLOAT_EQ(err[static_cast<std::size_t>(r)], 0.0f);
  }
}

TEST(Fsdp, ShardBytesAreOneGth) {
  ModelConfig cfg = ModelConfig::toy();
  ModelWeights full = ModelWeights::init(cfg, 7);
  const int g = 4;
  FsdpShards s0 = FsdpShards::shard(cfg, full, g, 0);
  std::uint64_t full_bytes = 0;
  for (const auto& l : full.layers) {
    full_bytes += static_cast<std::uint64_t>(
                      l.wq.numel() + l.wk.numel() + l.wv.numel() +
                      l.wo.numel() + l.w1.numel() + l.w2.numel()) *
                  2;
  }
  full_bytes +=
      static_cast<std::uint64_t>(full.w_embed.numel() + full.w_head.numel()) *
      2;
  EXPECT_EQ(s0.shard_bytes(), full_bytes / g);
}

TEST(Fsdp, IndivisibleRowsThrow) {
  ModelConfig cfg = ModelConfig::toy();
  cfg.vocab = 63;  // not divisible by 4
  ModelWeights full = ModelWeights::init(cfg, 9);
  EXPECT_THROW(FsdpShards::shard(cfg, full, 4, 0), std::invalid_argument);
}

// The flagship: multi-step FSDP training tracks replicated training exactly.
TEST(Fsdp, TrainingTrajectoryMatchesReplicated) {
  ModelConfig cfg = ModelConfig::toy();
  ModelWeights init = ModelWeights::init(cfg, 11);
  Rng rng(13);
  Tensor tokens = rng.token_ids(33, cfg.vocab);
  const int g = 4;
  const float lr = 0.05f;

  DistTrainConfig dc;
  dc.model = cfg;
  dc.impl = AttnImpl::kBurst;
  dc.balance = core::Balance::kZigzag;

  // Replicated baseline.
  ModelWeights w_rep = init;
  Cluster cluster({Topology::single_node(g)});
  std::vector<double> rep_losses;
  for (int step = 0; step < 3; ++step) {
    std::mutex mu;
    cluster.run([&](DeviceContext& ctx) {
      comm::SimTransport comm_tp(ctx);
      comm::Communicator comm(comm_tp);
      auto r = dist_train_step(comm, dc, w_rep, tokens);
      if (ctx.rank() == 0) {
        std::lock_guard lock(mu);
        rep_losses.push_back(r.loss);
        apply_sgd(w_rep, r.grads, lr);
      }
    });
  }

  // FSDP path: shards live across iterations inside one cluster run.
  std::vector<double> fsdp_losses;
  ModelWeights final_gathered;
  std::mutex mu;
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    FsdpShards shards = FsdpShards::shard(cfg, init, g, ctx.rank());
    for (int step = 0; step < 3; ++step) {
      auto r = fsdp_train_step(comm, dc, shards, tokens);
      fsdp_apply_sgd(shards, r.grad_shards, lr);
      if (ctx.rank() == 0) {
        std::lock_guard lock(mu);
        fsdp_losses.push_back(r.loss);
      }
    }
    ModelWeights gathered = fsdp_gather_all(comm, shards);
    if (ctx.rank() == 0) {
      std::lock_guard lock(mu);
      final_gathered = std::move(gathered);
    }
  });

  ASSERT_EQ(rep_losses.size(), 3u);
  ASSERT_EQ(fsdp_losses.size(), 3u);
  for (int step = 0; step < 3; ++step) {
    EXPECT_NEAR(fsdp_losses[static_cast<std::size_t>(step)],
                rep_losses[static_cast<std::size_t>(step)], 5e-4)
        << "step " << step;
  }
  EXPECT_LT(tensor::max_abs_diff(final_gathered.layers[0].wq,
                                 w_rep.layers[0].wq),
            5e-4f);
  EXPECT_LT(tensor::max_abs_diff(final_gathered.w_head, w_rep.w_head), 5e-4f);
}

TEST(Fsdp, GradShardsSumAcrossDevices) {
  // The reduce-scattered shard on rank r equals row-slice r of the summed
  // full gradients.
  ModelConfig cfg = ModelConfig::toy();
  ModelWeights w = ModelWeights::init(cfg, 17);
  Rng rng(19);
  Tensor tokens = rng.token_ids(33, cfg.vocab);
  const int g = 4;

  DistTrainConfig dc;
  dc.model = cfg;
  dc.impl = AttnImpl::kBurst;

  // Reference: replicated (all-reduced) gradients.
  Cluster cluster({Topology::single_node(g)});
  ModelGrads ref = ModelGrads::zeros(cfg);
  std::mutex mu;
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    auto r = dist_train_step(comm, dc, w, tokens);
    if (ctx.rank() == 0) {
      std::lock_guard lock(mu);
      ref = std::move(r.grads);
    }
  });

  std::vector<float> err(static_cast<std::size_t>(g), 1.0f);
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    FsdpShards shards = FsdpShards::shard(cfg, w, g, ctx.rank());
    auto r = fsdp_train_step(comm, dc, shards, tokens);
    const std::int64_t m = ref.layers[0].wq.rows() / g;
    Tensor expected = ref.layers[0].wq.copy_rows(ctx.rank() * m, m);
    err[static_cast<std::size_t>(ctx.rank())] =
        tensor::max_abs_diff(r.grad_shards.layers[0].wq, expected);
  });
  for (int r = 0; r < g; ++r) {
    EXPECT_LT(err[static_cast<std::size_t>(r)], 1e-4f) << "rank " << r;
  }
}

}  // namespace
}  // namespace burst::model
