// Failure injection: the simulator must turn resource exhaustion and
// stragglers into clean, observable outcomes — the mechanism behind the
// OOM entries of Figures 12-14 — without deadlocking the cluster.
#include <gtest/gtest.h>

#include <atomic>

#include "comm/communicator.hpp"
#include "model/dist_model.hpp"
#include "model/transformer.hpp"
#include "sim/cluster.hpp"
#include "tensor/rng.hpp"

namespace burst {
namespace {

using model::AttnImpl;
using model::DistTrainConfig;
using model::ModelConfig;
using model::ModelWeights;
using sim::Cluster;
using sim::DeviceContext;
using sim::DeviceOomError;
using sim::Topology;
using tensor::Rng;
using tensor::Tensor;

// A memory cap below the training step's working set must abort the whole
// cluster mid-step with the OOM as the root cause — peers blocked in ring
// receives must unwind, not hang.
TEST(FailureInjection, OomDuringDistributedTrainingAborts) {
  ModelConfig cfg = ModelConfig::toy();
  ModelWeights w = ModelWeights::init(cfg, 3);
  Rng rng(5);
  Tensor tokens = rng.token_ids(33, cfg.vocab);

  DistTrainConfig dc;
  dc.model = cfg;
  dc.impl = AttnImpl::kBurst;
  dc.ckpt = {core::CkptStrategy::kNone, 0.5};  // store everything: most memory

  // First find the real demand, then cap below it.
  Cluster::Config cc;
  cc.topo = Topology::single_node(4);
  std::uint64_t peak = 0;
  {
    Cluster probe(cc);
    probe.run([&](DeviceContext& ctx) {
      comm::Communicator comm(ctx);
      model::dist_train_step(comm, dc, w, tokens);
    });
    peak = probe.stats()[0].peak_mem_bytes;
  }
  ASSERT_GT(peak, 0u);

  cc.device_memory_capacity = peak / 2;
  Cluster capped(cc);
  EXPECT_THROW(capped.run([&](DeviceContext& ctx) {
    comm::Communicator comm(ctx);
    model::dist_train_step(comm, dc, w, tokens);
  }),
               DeviceOomError);
}

// With the cap just above the measured peak, the same step must succeed —
// the boundary is tight, not an artifact of slack in the accounting.
TEST(FailureInjection, CapJustAbovePeakSucceeds) {
  ModelConfig cfg = ModelConfig::toy();
  ModelWeights w = ModelWeights::init(cfg, 3);
  Rng rng(5);
  Tensor tokens = rng.token_ids(33, cfg.vocab);
  DistTrainConfig dc;
  dc.model = cfg;
  dc.impl = AttnImpl::kBurst;

  Cluster::Config cc;
  cc.topo = Topology::single_node(4);
  Cluster probe(cc);
  probe.run([&](DeviceContext& ctx) {
    comm::Communicator comm(ctx);
    model::dist_train_step(comm, dc, w, tokens);
  });
  cc.device_memory_capacity = probe.stats()[0].peak_mem_bytes;
  Cluster capped(cc);
  capped.run([&](DeviceContext& ctx) {
    comm::Communicator comm(ctx);
    model::dist_train_step(comm, dc, w, tokens);
  });
  SUCCEED();
}

// A straggler device slows the whole ring: makespan tracks the slowest
// device, and every peer's attention step is gated behind it.
TEST(FailureInjection, StragglerGatesTheRing) {
  Cluster::Config cc;
  cc.topo = Topology::single_node(4);
  cc.flops_per_s = 1e9;
  Cluster cluster(cc);

  const auto run_with_straggler = [&](double extra_s) {
    cluster.run([&](DeviceContext& ctx) {
      comm::Communicator comm(ctx);
      if (ctx.rank() == 2) {
        ctx.busy(extra_s);  // e.g. thermal throttling
      }
      // A barrier-synchronized phase (like each training step boundary).
      ctx.compute(1e6);
      ctx.barrier();
    });
    return cluster.makespan();
  };

  const double clean = run_with_straggler(0.0);
  const double slowed = run_with_straggler(0.5);
  EXPECT_NEAR(slowed - clean, 0.5, 1e-9);
}

// Exceptions raised in user SPMD code (not just OOM) also abort cleanly.
TEST(FailureInjection, UserExceptionAbortsBlockedCollective) {
  Cluster cluster({Topology::single_node(3)});
  EXPECT_THROW(cluster.run([&](DeviceContext& ctx) {
    comm::Communicator comm(ctx);
    if (ctx.rank() == 1) {
      throw std::runtime_error("injected fault");
    }
    Tensor t = Tensor::zeros(3, 3);
    comm.all_reduce_inplace(t);  // blocks on rank 1 forever otherwise
  }),
               std::runtime_error);
}

// After an aborted run the cluster is reusable: mailboxes were drained.
TEST(FailureInjection, ClusterRecoversAfterAbort) {
  Cluster cluster({Topology::single_node(2)});
  EXPECT_THROW(cluster.run([&](DeviceContext& ctx) {
    if (ctx.rank() == 0) {
      throw std::runtime_error("boom");
    }
    ctx.recv(0, 9, sim::kIntraComm);
  }),
               std::runtime_error);
  std::atomic<int> ran{0};
  cluster.run([&](DeviceContext&) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 2);
}

}  // namespace
}  // namespace burst
