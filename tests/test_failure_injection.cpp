// Failure injection: the simulator must turn resource exhaustion and
// stragglers into clean, observable outcomes — the mechanism behind the
// OOM entries of Figures 12-14 — without deadlocking the cluster.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "comm/communicator.hpp"
#include "comm/sim_transport.hpp"
#include "model/dist_model.hpp"
#include "model/transformer.hpp"
#include "sim/cluster.hpp"
#include "sim/trace.hpp"
#include "tensor/rng.hpp"

namespace burst {
namespace {

using model::AttnImpl;
using model::DistTrainConfig;
using model::ModelConfig;
using model::ModelWeights;
using sim::Cluster;
using sim::DeviceContext;
using sim::DeviceOomError;
using sim::Topology;
using tensor::Rng;
using tensor::Tensor;

// A memory cap below the training step's working set must abort the whole
// cluster mid-step with the OOM as the root cause — peers blocked in ring
// receives must unwind, not hang.
TEST(FailureInjection, OomDuringDistributedTrainingAborts) {
  ModelConfig cfg = ModelConfig::toy();
  ModelWeights w = ModelWeights::init(cfg, 3);
  Rng rng(5);
  Tensor tokens = rng.token_ids(33, cfg.vocab);

  DistTrainConfig dc;
  dc.model = cfg;
  dc.impl = AttnImpl::kBurst;
  dc.ckpt = {core::CkptStrategy::kNone, 0.5};  // store everything: most memory

  // First find the real demand, then cap below it.
  Cluster::Config cc;
  cc.topo = Topology::single_node(4);
  std::uint64_t peak = 0;
  {
    Cluster probe(cc);
    probe.run([&](DeviceContext& ctx) {
      comm::SimTransport comm_tp(ctx);
      comm::Communicator comm(comm_tp);
      model::dist_train_step(comm, dc, w, tokens);
    });
    peak = probe.stats()[0].peak_mem_bytes;
  }
  ASSERT_GT(peak, 0u);

  cc.device_memory_capacity = peak / 2;
  Cluster capped(cc);
  EXPECT_THROW(capped.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    model::dist_train_step(comm, dc, w, tokens);
  }),
               DeviceOomError);
}

// With the cap just above the measured peak, the same step must succeed —
// the boundary is tight, not an artifact of slack in the accounting.
TEST(FailureInjection, CapJustAbovePeakSucceeds) {
  ModelConfig cfg = ModelConfig::toy();
  ModelWeights w = ModelWeights::init(cfg, 3);
  Rng rng(5);
  Tensor tokens = rng.token_ids(33, cfg.vocab);
  DistTrainConfig dc;
  dc.model = cfg;
  dc.impl = AttnImpl::kBurst;

  Cluster::Config cc;
  cc.topo = Topology::single_node(4);
  Cluster probe(cc);
  probe.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    model::dist_train_step(comm, dc, w, tokens);
  });
  cc.device_memory_capacity = probe.stats()[0].peak_mem_bytes;
  Cluster capped(cc);
  capped.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    model::dist_train_step(comm, dc, w, tokens);
  });
  SUCCEED();
}

// A straggler device slows the whole ring: makespan tracks the slowest
// device, and every peer's attention step is gated behind it.
TEST(FailureInjection, StragglerGatesTheRing) {
  Cluster::Config cc;
  cc.topo = Topology::single_node(4);
  cc.flops_per_s = 1e9;
  Cluster cluster(cc);

  const auto run_with_straggler = [&](double extra_s) {
    cluster.run([&](DeviceContext& ctx) {
      comm::SimTransport comm_tp(ctx);
      comm::Communicator comm(comm_tp);
      if (ctx.rank() == 2) {
        ctx.busy(extra_s);  // e.g. thermal throttling
      }
      // A barrier-synchronized phase (like each training step boundary).
      ctx.compute(1e6);
      ctx.barrier();
    });
    return cluster.makespan();
  };

  const double clean = run_with_straggler(0.0);
  const double slowed = run_with_straggler(0.5);
  EXPECT_NEAR(slowed - clean, 0.5, 1e-9);
}

// Exceptions raised in user SPMD code (not just OOM) also abort cleanly.
TEST(FailureInjection, UserExceptionAbortsBlockedCollective) {
  Cluster cluster({Topology::single_node(3)});
  EXPECT_THROW(cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    if (ctx.rank() == 1) {
      throw std::runtime_error("injected fault");
    }
    Tensor t = Tensor::zeros(3, 3);
    comm.all_reduce_inplace(t);  // blocks on rank 1 forever otherwise
  }),
               std::runtime_error);
}

// After an aborted run the cluster is reusable: mailboxes were drained.
TEST(FailureInjection, ClusterRecoversAfterAbort) {
  Cluster cluster({Topology::single_node(2)});
  EXPECT_THROW(cluster.run([&](DeviceContext& ctx) {
    if (ctx.rank() == 0) {
      throw std::runtime_error("boom");
    }
    // burst-lint: allow(no-unchecked-recv) receive exists to block; the peer crash is the assertion
    ctx.recv(0, 9, sim::kIntraComm);
  }),
               std::runtime_error);
  std::atomic<int> ran{0};
  cluster.run([&](DeviceContext&) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 2);
}

// --- FaultPlan-driven injection ---------------------------------------------

// A planned straggler (3x slowdown on rank 2) must not deadlock a
// barrier-synchronized phase, and the slowdown must be visible in the
// per-device trace: rank 2's compute interval is 3x everyone else's.
TEST(FaultPlan, StragglerSlowsTraceWithoutDeadlock) {
  sim::TraceRecorder trace;
  Cluster::Config cc;
  cc.topo = Topology::single_node(4);
  cc.flops_per_s = 1e9;
  cc.trace = &trace;
  sim::FaultPlan::Straggler straggler;
  straggler.rank = 2;
  straggler.slowdown = 3.0;
  cc.faults.stragglers.push_back(straggler);
  Cluster cluster(cc);

  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    ctx.compute(1e6, sim::kCompute, "step-compute");
    Tensor t = Tensor::zeros(4, 4);
    comm.all_reduce_inplace(t);
    ctx.barrier();
  });

  // 1e6 FLOPs at 1e9 FLOP/s is 1 ms; the straggler takes 3 ms and gates
  // the barrier.
  EXPECT_GE(cluster.makespan(), 3e-3);

  double dur[4] = {0, 0, 0, 0};
  for (const auto& ev : trace.events()) {
    if (ev.name == "step-compute" && ev.rank >= 0 && ev.rank < 4) {
      dur[ev.rank] = ev.end_s - ev.begin_s;
    }
  }
  EXPECT_NEAR(dur[0], 1e-3, 1e-9);
  EXPECT_NEAR(dur[2], 3e-3, 1e-9);
  EXPECT_NEAR(dur[2] / dur[0], 3.0, 1e-6);
}

// A flapping link that eats two messages mid-collective: the reliable
// communicator observes the drops and retries, and the ring all-gather
// still produces the right result on every rank.
TEST(FaultPlan, LinkFlapDuringRingRecoversViaRetry) {
  Cluster::Config cc;
  cc.topo = Topology::single_node(4);
  sim::FaultPlan::DropMessages drop;
  drop.src = 1;
  drop.dst = 2;
  drop.count = 2;
  cc.faults.drops.push_back(drop);
  Cluster cluster(cc);

  std::atomic<std::uint64_t> retries{0};
  std::atomic<int> wrong{0};
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    Tensor local = Tensor::full(2, 3, static_cast<float>(ctx.rank()));
    Tensor full = comm.all_gather_rows(local);
    for (int g = 0; g < 4; ++g) {
      for (std::int64_t r = 0; r < 2; ++r) {
        for (std::int64_t c = 0; c < 3; ++c) {
          if (full(2 * g + r, c) != static_cast<float>(g)) {
            wrong.fetch_add(1);
          }
        }
      }
    }
    retries.fetch_add(comm.retries());
  });

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(cluster.fault_stats().messages_dropped, 2u);
  EXPECT_EQ(retries.load(), 2u);
}

// An injected duplicate frame is discarded by sequence-number matching;
// the second logical message still arrives intact.
TEST(FaultPlan, DuplicateFrameDiscardedBySequenceNumber) {
  Cluster::Config cc;
  cc.topo = Topology::single_node(2);
  sim::FaultPlan::DuplicateMessages dup;
  dup.src = 0;
  dup.dst = 1;
  dup.count = 1;
  cc.faults.duplicates.push_back(dup);
  Cluster cluster(cc);

  std::atomic<std::uint64_t> discarded{0};
  std::atomic<int> wrong{0};
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    if (ctx.rank() == 0) {
      comm.send(1, 5, {Tensor::full(2, 2, 7.0f)});
      comm.send(1, 5, {Tensor::full(2, 2, 9.0f)});
    } else {
      auto a = comm.recv(0, 5);
      auto b = comm.recv(0, 5);
      if (a.size() != 1 || a[0](0, 0) != 7.0f) wrong.fetch_add(1);
      if (b.size() != 1 || b[0](1, 1) != 9.0f) wrong.fetch_add(1);
      discarded.store(comm.duplicates_discarded());
    }
  });

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(discarded.load(), 1u);
  EXPECT_EQ(cluster.fault_stats().messages_duplicated, 1u);
}

// A payload bit-flipped in flight fails the frame checksum on receive.
TEST(FaultPlan, CorruptedFrameRejectedByChecksum) {
  Cluster::Config cc;
  cc.topo = Topology::single_node(2);
  sim::FaultPlan::CorruptMessages corrupt;
  corrupt.src = 0;
  corrupt.dst = 1;
  corrupt.count = 1;
  cc.faults.corruptions.push_back(corrupt);
  Cluster cluster(cc);

  EXPECT_THROW(cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    if (ctx.rank() == 0) {
      comm.send(1, 3, {Tensor::full(4, 4, 1.0f)});
    } else {
      // burst-lint: allow(no-unchecked-recv) corruption must throw before any payload exists
      comm.recv(0, 3);
    }
  }),
               comm::CommCorruptionError);
  EXPECT_EQ(cluster.fault_stats().messages_corrupted, 1u);
  EXPECT_EQ(cluster.last_failure_rank(), 1);  // detected at the receiver
}

// A degraded link (10% bandwidth) stretches the transfer and the makespan.
TEST(FaultPlan, DegradedLinkStretchesMakespan) {
  const auto run_once = [](double bandwidth_factor) {
    Cluster::Config cc;
    cc.topo = Topology::single_node(2);
    if (bandwidth_factor != 1.0) {
      sim::FaultPlan::DegradeLink deg;
      deg.src = 0;
      deg.dst = 1;
      deg.bandwidth_factor = bandwidth_factor;
      cc.faults.degradations.push_back(deg);
    }
    Cluster cluster(cc);
    cluster.run([&](DeviceContext& ctx) {
      comm::SimTransport comm_tp(ctx);
      comm::Communicator comm(comm_tp);
      if (ctx.rank() == 0) {
        comm.send(1, 2, {Tensor::zeros(2048, 2048)});
      } else {
      // burst-lint: allow(no-unchecked-recv) payload irrelevant; the test measures link-degraded makespan
        comm.recv(0, 2);
      }
    });
    return cluster.makespan();
  };

  const double clean = run_once(1.0);
  const double degraded = run_once(0.1);
  EXPECT_GT(degraded, 5.0 * clean);
}

// A receive whose message arrives past the configured virtual-clock
// deadline raises CommTimeoutError instead of silently stalling.
TEST(FaultPlan, RecvDeadlineRaisesTimeout) {
  Cluster cluster({Topology::single_node(2)});
  EXPECT_THROW(cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    if (ctx.rank() == 0) {
      // Stall the comm stream: the message leaves 1 virtual second late.
      ctx.busy(1.0, sim::kIntraComm);
      comm.send(1, 6, {Tensor::zeros(2, 2)});
    } else {
      comm::Reliability rel;
      rel.recv_timeout_s = 0.1;
      comm.set_reliability(rel);
      // burst-lint: allow(no-unchecked-recv) timeout must fire before any payload exists
      comm.recv(0, 6);
    }
  }),
               comm::CommTimeoutError);
  EXPECT_EQ(cluster.last_failure_rank(), 1);
}

// A link that eats every attempt exhausts the bounded retry budget: the
// sender gives up with CommTimeoutError after max_send_attempts tries.
TEST(FaultPlan, RetryBudgetExhaustionRaisesTimeout) {
  Cluster::Config cc;
  cc.topo = Topology::single_node(2);
  sim::FaultPlan::DropMessages drop;
  drop.src = 0;
  drop.dst = 1;
  drop.count = 100;  // more than any retry budget
  cc.faults.drops.push_back(drop);
  Cluster cluster(cc);

  EXPECT_THROW(cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    if (ctx.rank() == 0) {
      comm.send(1, 4, {Tensor::zeros(2, 2)});
    } else {
      // burst-lint: allow(no-unchecked-recv) the dropped frame means nothing ever arrives
      comm.recv(0, 4);
    }
  }),
               comm::CommTimeoutError);
  EXPECT_EQ(cluster.last_failure_rank(), 0);  // the sender gave up
  EXPECT_EQ(cluster.fault_stats().messages_dropped,
            static_cast<std::uint64_t>(comm::Reliability{}.max_send_attempts));
}

// A planned device crash surfaces as InjectedFaultError on the dead rank
// and as typed PeerFailedError in peers blocked on it; the run rethrows
// the root cause, not the secondary.
TEST(FaultPlan, CrashedPeerObservedAsPeerFailed) {
  Cluster::Config cc;
  cc.topo = Topology::single_node(2);
  sim::FaultPlan::CrashDevice crash;
  crash.rank = 1;
  crash.at_time_s = 0.0;
  cc.faults.crashes.push_back(crash);
  Cluster cluster(cc);

  std::atomic<int> observed_peer{-1};
  EXPECT_THROW(cluster.run([&](DeviceContext& ctx) {
    if (ctx.rank() == 1) {
      ctx.busy(1e-6);  // first op boundary: the crash fires here
    } else {
      try {
        // burst-lint: allow(no-unchecked-recv) PeerFailedError is the expected outcome
        ctx.recv(1, 7);
      } catch (const sim::PeerFailedError& e) {
        observed_peer.store(e.peer());
        throw;
      }
    }
  }),
               sim::InjectedFaultError);
  EXPECT_EQ(observed_peer.load(), 1);
  EXPECT_EQ(cluster.last_failure_rank(), 1);
  EXPECT_EQ(cluster.fault_stats().crashes_fired, 1u);
}

// When several ranks throw root-cause errors concurrently, attribution is
// by *virtual* failure time, not by which thread won the wall-clock race:
// rank 1 fails at virtual t=0 but reports ~50 ms of wall time late; rank 2
// fails at virtual t=1ms but reports immediately. Rank 1 must win.
TEST(FaultPlan, ConcurrentFailuresAttributeDeterministically) {
  Cluster cluster({Topology::single_node(3)});
  try {
    cluster.run([&](DeviceContext& ctx) {
      if (ctx.rank() == 1) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        throw std::runtime_error("late-wall-early-virtual");
      }
      if (ctx.rank() == 2) {
        ctx.busy(1e-3);
        throw std::runtime_error("early-wall-late-virtual");
      }
      // burst-lint: allow(no-unchecked-recv) blocks until the abort; no payload
      ctx.recv(1, 9);  // rank 0 just blocks until the abort
    });
    FAIL() << "run should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "late-wall-early-virtual");
  }
  EXPECT_EQ(cluster.last_failure_rank(), 1);
}

}  // namespace
}  // namespace burst
