#include "perfmodel/estimator.hpp"

#include <gtest/gtest.h>

#include "perfmodel/comm_model.hpp"
#include "perfmodel/flops.hpp"
#include "perfmodel/memory_model.hpp"

namespace burst::perfmodel {
namespace {

using core::CkptConfig;
using core::CkptStrategy;
using model::ModelConfig;

// --- FLOPs -----------------------------------------------------------------

TEST(Flops, AttentionShareGrowsWithSequenceLength) {
  ModelConfig c = ModelConfig::llama7b();
  const double s32k = attention_time_share(c, 32e3);
  const double s128k = attention_time_share(c, 128e3);
  const double s1m = attention_time_share(c, 1e6);
  EXPECT_LT(s32k, s128k);
  EXPECT_LT(s128k, s1m);
  // Figure 2's headline: attention dominates beyond 128K and is >90% at 1M.
  EXPECT_GT(s1m, 0.9);
  EXPECT_LT(s32k, 0.5);
}

TEST(Flops, RecomputeOrderingAcrossCheckpointStrategies) {
  ModelConfig c = ModelConfig::llama7b();
  const double n = 262144;
  const auto rec = [&](CkptStrategy s) {
    return step_flops(c, n, {s, 0.5}).recompute;
  };
  // burst-lint: allow(no-naked-float-eq) no-checkpoint recompute is exactly 0
  EXPECT_EQ(rec(CkptStrategy::kNone), 0.0);
  EXPECT_GT(rec(CkptStrategy::kFull), rec(CkptStrategy::kSeqSelective));
  EXPECT_GT(rec(CkptStrategy::kSeqSelective), rec(CkptStrategy::kSelectivePP));
}

TEST(Flops, SeqSelectiveFrontQuarterProperty) {
  // With store_fraction 0.5, attention recompute must be exactly 1/4 of the
  // full-checkpoint attention recompute (front half of the causal triangle).
  ModelConfig c = ModelConfig::llama7b();
  const double n = 1e6;
  const double full = step_flops(c, n, {CkptStrategy::kFull, 0.5}).recompute;
  const double spp =
      step_flops(c, n, {CkptStrategy::kSelectivePP, 0.5}).recompute;
  const double seq =
      step_flops(c, n, {CkptStrategy::kSeqSelective, 0.5}).recompute;
  const double attn_part_full = full - spp;   // attention-only recompute
  const double attn_part_seq = seq - spp;
  EXPECT_NEAR(attn_part_seq / attn_part_full, 0.25, 1e-9);
}

TEST(Flops, LmHeadRecomputeTogglesExtraForward) {
  ModelConfig c = ModelConfig::llama7b();
  const double n = 65536;
  const auto base = step_flops(c, n, {CkptStrategy::kNone, 0.5}, false);
  const auto rec = step_flops(c, n, {CkptStrategy::kNone, 0.5}, true);
  EXPECT_NEAR(rec.recompute - base.recompute, base.lm_head_fwd, 1.0);
}

// --- communication (Table 1) -------------------------------------------------

TEST(CommModel, BurstSavesQuarterOfBackwardVolumeTime) {
  HardwareModel hw;
  hw.nvlink_latency = 0;
  hw.ib_latency = 0;
  CommModel cm(hw);
  ClusterShape c{4, 8};
  const double shard = 64e6;
  // Flat-ring comparison with identical routes isolates the volume effect:
  // Burst (Alg. 2) moves 5 tensor passes vs Ring's 6.
  const double ring = cm.ring_attention_comm(shard, c);
  const double burst_flat = cm.burst_comm(shard, shard / 4096, c,
                                          /*backward_opt=*/true,
                                          /*topo_aware=*/false);
  EXPECT_NEAR(burst_flat / ring, 5.0 / 6.0, 0.01);
}

TEST(CommModel, TopologyAwareBeatsFlatWheneverMultiNode) {
  CommModel cm{HardwareModel{}};
  ClusterShape c{4, 8};
  const double shard = 64e6;
  const double flat =
      cm.burst_comm(shard, shard / 4096, c, true, /*topo_aware=*/false);
  const double topo =
      cm.burst_comm(shard, shard / 4096, c, true, /*topo_aware=*/true);
  EXPECT_LT(topo, flat);
  // Single node: topology awareness is a no-op.
  ClusterShape single{1, 8};
  EXPECT_NEAR(cm.burst_comm(shard, 0, single, true, true),
              cm.burst_comm(shard, 0, single, true, false), 1e-12);
}

TEST(CommModel, Table1OrderingBurstBelowDoubleRingBelowRing) {
  CommModel cm{HardwareModel{}};
  ClusterShape c{4, 8};
  const double shard = 64e6;
  const double ring = cm.ring_attention_comm(shard, c);
  const double dbl = cm.double_ring_comm(shard, c);
  const double burst = cm.burst_comm(shard, shard / 4096, c, true, true);
  EXPECT_LT(dbl, ring);
  EXPECT_LT(burst, dbl);
}

TEST(CommModel, FsdpSingleNodeUsesNvlink) {
  CommModel cm{HardwareModel{}};
  const double p = 14e9;
  const double multi = cm.fsdp_step_comm(p, {4, 8});
  const double single = cm.fsdp_step_comm(p, {1, 8});
  EXPECT_LT(single, multi);
}

// --- memory -------------------------------------------------------------------

TEST(MemoryModel, StoredActivationOrdering) {
  const double d = 4096;
  const double none =
      stored_activation_per_token({CkptStrategy::kNone, 0.5}, d, 2);
  const double spp =
      stored_activation_per_token({CkptStrategy::kSelectivePP, 0.5}, d, 2);
  const double seq =
      stored_activation_per_token({CkptStrategy::kSeqSelective, 0.5}, d, 2);
  const double full =
      stored_activation_per_token({CkptStrategy::kFull, 0.5}, d, 2);
  EXPECT_GT(none, spp);
  EXPECT_GT(spp, seq);
  EXPECT_GT(seq, full);
  // Figure 7's headline: seq-selective halves SelectivePP's *extra* storage.
  EXPECT_NEAR((seq - full) / (spp - full), 0.5, 1e-9);
}

TEST(MemoryModel, LmHeadLogitsMatchFigure8Arithmetic) {
  // LLaMA-3 vocab at 1M tokens: 1e6 * 128e3 * 2 B = 256 GB of logits.
  EXPECT_NEAR(lm_head_logits_bytes(1e6, 128e3, 2), 256e9, 1e6);
  // LLaMA-2 vocab is 4x smaller.
  EXPECT_NEAR(lm_head_logits_bytes(1e6, 32e3, 2) * 4,
              lm_head_logits_bytes(1e6, 128e3, 2), 1e3);
}

TEST(MemoryModel, MegatronReplicatedStatesDwarfFsdp) {
  HardwareModel hw;
  MemoryInputs in;
  in.model = ModelConfig::llama7b();
  in.tokens_per_gpu = 65536;
  in.world = 32;
  in.fsdp = false;
  const double replicated = peak_memory(in, hw).total();
  in.fsdp = true;
  const double sharded = peak_memory(in, hw).total();
  EXPECT_GT(replicated, 100e9);  // the Figure 12 Megatron-CP OOM
  EXPECT_LT(sharded, 80e9);
}

// --- estimator: the paper's qualitative results --------------------------------

TEST(Estimator, MegatronCpOomsAt7B32Gpu2M) {
  RunConfig cfg;
  cfg.model = ModelConfig::llama7b();
  cfg.seq_len = 2e6;
  cfg.cluster = {4, 8};
  cfg.method = Method::kMegatronCP;
  auto est = estimate_step(cfg);
  EXPECT_FALSE(est.ok);
  EXPECT_NE(est.failure.find("OOM"), std::string::npos);
}

TEST(Estimator, UlyssesDegreeLimitedByHeads) {
  RunConfig cfg;
  cfg.model = ModelConfig::llama14b();  // 40 heads
  cfg.seq_len = 1e6;
  cfg.cluster = {4, 8};
  cfg.method = Method::kUlysses;
  auto est = estimate_step(cfg);
  // Degree limited to 8 (largest divisor of both 40 and 32) -> huge
  // activations per GPU -> OOM, matching Figure 13's 14B column.
  EXPECT_EQ(est.parallel_degree, 8);
  EXPECT_FALSE(est.ok);
}

TEST(Estimator, BurstBeatsBaselinesEndToEnd7B2M) {
  RunConfig cfg;
  cfg.model = ModelConfig::llama7b();
  cfg.seq_len = 2e6;
  cfg.cluster = {4, 8};

  cfg.method = Method::kBurstEngine;
  auto burst = estimate_step(cfg);
  ASSERT_TRUE(burst.ok) << burst.failure;

  cfg.method = Method::kUSP;
  auto usp = estimate_step(cfg);
  ASSERT_TRUE(usp.ok) << usp.failure;

  cfg.method = Method::kDoubleRing;
  auto dbl = estimate_step(cfg);
  ASSERT_TRUE(dbl.ok) << dbl.failure;

  cfg.method = Method::kUlysses;
  auto uly = estimate_step(cfg);
  ASSERT_TRUE(uly.ok) << uly.failure;

  // Figure 12 ordering: Burst > USP > DoubleRing > Ulysses, with Burst
  // roughly 1.1-1.3x over USP.
  EXPECT_GT(burst.tgs, usp.tgs);
  EXPECT_GT(usp.tgs, dbl.tgs);
  EXPECT_GT(dbl.tgs, uly.tgs);
  const double speedup = burst.tgs / usp.tgs;
  EXPECT_GT(speedup, 1.05);
  EXPECT_LT(speedup, 1.6);
}

TEST(Estimator, BurstSavesMemoryVersusBestBaseline) {
  RunConfig cfg;
  cfg.model = ModelConfig::llama7b();
  cfg.seq_len = 2e6;
  cfg.cluster = {4, 8};
  cfg.method = Method::kBurstEngine;
  auto burst = estimate_step(cfg);
  cfg.method = Method::kUSP;
  auto usp = estimate_step(cfg);
  ASSERT_TRUE(burst.ok && usp.ok);
  // Figure 13: ~26% savings at 7B/32 GPUs.
  const double saving = 1.0 - burst.memory.total() / usp.memory.total();
  EXPECT_GT(saving, 0.15);
  EXPECT_LT(saving, 0.45);
}

TEST(Estimator, AblationTogglesMoveTheRightDirection) {
  RunConfig cfg;
  cfg.model = ModelConfig::llama14b();
  cfg.seq_len = 1e6;
  cfg.cluster = {4, 8};
  cfg.method = Method::kBurstEngine;

  auto full = estimate_step(cfg);
  ASSERT_TRUE(full.ok) << full.failure;

  RunConfig no_bwd = cfg;
  no_bwd.backward_comm_opt = false;
  EXPECT_LE(estimate_step(no_bwd).tgs, full.tgs);

  RunConfig no_topo = cfg;
  no_topo.topo_aware = false;
  EXPECT_LT(estimate_step(no_topo).tgs, full.tgs);

  RunConfig no_fuse = cfg;
  no_fuse.fused_lm_head = false;
  EXPECT_GT(estimate_step(no_fuse).memory.total(), full.memory.total());

  RunConfig full_ckpt = cfg;
  full_ckpt.ckpt = CkptConfig{CkptStrategy::kFull, 0.5};
  auto fc = estimate_step(full_ckpt);
  EXPECT_LT(fc.tgs, full.tgs);                          // more recompute
  EXPECT_LT(fc.memory.total(), full.memory.total());    // less storage

  RunConfig spp = cfg;
  spp.ckpt = CkptConfig{CkptStrategy::kSelectivePP, 0.5};
  auto sp = estimate_step(spp);
  EXPECT_GT(sp.tgs, full.tgs);                          // no attn recompute
  EXPECT_GT(sp.memory.total(), full.memory.total());    // more storage
}

TEST(Estimator, MfuStableAcrossNodesAtFixedTokensPerGpu) {
  // Table 4: 2/4/8 nodes with 32K tokens per GPU — MFU should stay flat.
  RunConfig cfg;
  cfg.model = ModelConfig::llama7b();
  cfg.method = Method::kBurstEngine;
  double prev_mfu = -1.0;
  for (int nodes : {2, 4, 8}) {
    cfg.cluster = {nodes, 8};
    cfg.seq_len = 32768.0 * cfg.cluster.world();
    auto est = estimate_step(cfg);
    ASSERT_TRUE(est.ok) << est.failure;
    EXPECT_GT(est.mfu, 0.35);
    EXPECT_LT(est.mfu, 0.75);
    if (prev_mfu > 0) {
      EXPECT_NEAR(est.mfu, prev_mfu, 0.08);
    }
    prev_mfu = est.mfu;
  }
}

TEST(Estimator, MfuRisesWithContextParallelSizeSingleNode) {
  // Table 5: CP 1..8 on one node, 32K tokens/GPU; MFU rises with seq length.
  RunConfig cfg;
  cfg.model = ModelConfig::llama7b();
  cfg.method = Method::kBurstEngine;
  cfg.optimizer_offload = true;
  double prev = 0.0;
  for (int cp : {1, 2, 4, 8}) {
    cfg.cluster = {1, cp};
    cfg.seq_len = 32768.0 * cp;
    auto est = estimate_step(cfg);
    ASSERT_TRUE(est.ok) << est.failure;
    EXPECT_GE(est.mfu, prev - 1e-6) << "cp " << cp;
    prev = est.mfu;
  }
}

TEST(Estimator, AttentionOnlyFigure14Ordering) {
  RunConfig cfg;
  cfg.model = ModelConfig::llama14b();
  cfg.seq_len = 1e6;
  cfg.cluster = {4, 8};

  cfg.method = Method::kBurstEngine;
  auto burst = estimate_attention_only(cfg);
  ASSERT_TRUE(burst.ok) << burst.failure;
  cfg.method = Method::kUSP;
  auto usp = estimate_attention_only(cfg);
  cfg.method = Method::kDoubleRing;
  auto dbl = estimate_attention_only(cfg);
  cfg.method = Method::kMegatronCP;
  auto meg = estimate_attention_only(cfg);
  cfg.method = Method::kUlysses;
  auto uly = estimate_attention_only(cfg);

  // 40 heads, 32 GPUs: Ulysses inapplicable (Figure 14).
  EXPECT_FALSE(uly.ok);
  // Megatron-CP OOMs beyond 256K in Figure 14.
  EXPECT_FALSE(meg.ok);
  ASSERT_TRUE(usp.ok && dbl.ok);
  EXPECT_LT(burst.time_s, usp.time_s);
  EXPECT_LT(usp.time_s, dbl.time_s);
  // Paper: ~1.05x over USP, ~1.33x over DoubleRing at 1M.
  EXPECT_LT(burst.time_s * 1.01, usp.time_s);
  EXPECT_GT(dbl.time_s / burst.time_s, 1.1);
}

}  // namespace
}  // namespace burst::perfmodel
