// Property sweeps over the performance model: invariants that must hold for
// *every* setting, not just the paper's. These guard the model against
// regressions when calibration constants move.
#include <gtest/gtest.h>

#include <tuple>

#include "perfmodel/estimator.hpp"

namespace burst::perfmodel {
namespace {

using core::CkptConfig;
using core::CkptStrategy;
using model::ModelConfig;

using Sweep = std::tuple<int, int, double>;  // nodes, gpus, seq

class EstimatorSweep : public ::testing::TestWithParam<Sweep> {};

TEST_P(EstimatorSweep, BurstNeverLosesToBaselinesWhenAllFeasible) {
  const auto [nodes, gpus, seq] = GetParam();
  RunConfig cfg;
  cfg.model = ModelConfig::llama7b();
  cfg.cluster = {nodes, gpus};
  cfg.seq_len = seq;
  cfg.method = Method::kBurstEngine;
  auto burst = estimate_step(cfg);
  if (!burst.ok) {
    GTEST_SKIP() << burst.failure;
  }
  for (Method m : {Method::kUlysses, Method::kDoubleRing, Method::kUSP}) {
    cfg.method = m;
    auto est = estimate_step(cfg);
    if (est.ok) {
      EXPECT_GT(burst.tgs, est.tgs) << method_name(m);
      // Memory comparison only against like-for-like state placement:
      // Ulysses offloads optimizer state, which can dominate at short
      // sequences (the Table 5 motivation), so it is excluded here.
      if (m != Method::kUlysses) {
        EXPECT_LT(burst.memory.total(), est.memory.total()) << method_name(m);
      }
    }
  }
}

TEST_P(EstimatorSweep, StepTimeGrowsSuperlinearlyInSequence) {
  const auto [nodes, gpus, seq] = GetParam();
  RunConfig cfg;
  cfg.model = ModelConfig::llama7b();
  cfg.cluster = {nodes, gpus};
  cfg.method = Method::kBurstEngine;
  cfg.seq_len = seq;
  auto a = estimate_step(cfg);
  cfg.seq_len = 2 * seq;
  auto b = estimate_step(cfg);
  if (!a.ok || !b.ok) {
    GTEST_SKIP();
  }
  // Quadratic attention: doubling N more than doubles the step.
  EXPECT_GT(b.step_time_s, 2.0 * a.step_time_s);
  // ... and TGS falls.
  EXPECT_LT(b.tgs, a.tgs);
}

TEST_P(EstimatorSweep, MemoryMonotoneInSequenceLength) {
  const auto [nodes, gpus, seq] = GetParam();
  RunConfig cfg;
  cfg.model = ModelConfig::llama7b();
  cfg.cluster = {nodes, gpus};
  cfg.method = Method::kBurstEngine;
  cfg.seq_len = seq;
  const double m1 = estimate_step(cfg).memory.total();
  cfg.seq_len = 2 * seq;
  const double m2 = estimate_step(cfg).memory.total();
  EXPECT_GT(m2, m1);
}

TEST_P(EstimatorSweep, BreakdownSumsToStepTime) {
  const auto [nodes, gpus, seq] = GetParam();
  RunConfig cfg;
  cfg.model = ModelConfig::llama14b();
  cfg.cluster = {nodes, gpus};
  cfg.seq_len = seq;
  cfg.method = Method::kBurstEngine;
  auto est = estimate_step(cfg);
  if (!est.ok) {
    GTEST_SKIP();
  }
  EXPECT_NEAR(est.step_time_s,
              est.compute_s + est.recompute_s + est.attn_comm_exposed_s +
                  est.a2a_s + est.fsdp_exposed_s,
              1e-9 * est.step_time_s);
  EXPECT_GT(est.mfu, 0.0);
  EXPECT_LT(est.mfu, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Grid, EstimatorSweep,
                         ::testing::Values(Sweep{1, 8, 131072.0},
                                           Sweep{2, 8, 262144.0},
                                           Sweep{4, 8, 524288.0},
                                           Sweep{4, 8, 1048576.0},
                                           Sweep{8, 8, 1048576.0}));

TEST(EstimatorProperties, OomBoundaryIsMonotone) {
  // If a sequence length OOMs, every longer one does too (same setting).
  RunConfig cfg;
  cfg.model = ModelConfig::llama14b();
  cfg.cluster = {4, 8};
  cfg.method = Method::kUlysses;
  bool failed_before = false;
  for (double n = 65536.0; n <= 8 * 1048576.0; n *= 2.0) {
    cfg.seq_len = n;
    const bool ok = estimate_step(cfg).ok;
    if (failed_before) {
      EXPECT_FALSE(ok) << "recovered at " << n << " after failing earlier";
    }
    failed_before = failed_before || !ok;
  }
  EXPECT_TRUE(failed_before);  // the sweep must eventually OOM
}

TEST(EstimatorProperties, MoreGpusNeverIncreaseStepTime) {
  RunConfig cfg;
  cfg.model = ModelConfig::llama7b();
  cfg.seq_len = 524288.0;
  cfg.method = Method::kBurstEngine;
  double prev = 1e300;
  for (int nodes : {1, 2, 4, 8}) {
    cfg.cluster = {nodes, 8};
    auto est = estimate_step(cfg);
    ASSERT_TRUE(est.ok) << est.failure;
    EXPECT_LT(est.step_time_s, prev);
    prev = est.step_time_s;
  }
}

TEST(EstimatorProperties, AttentionOnlyScalesWithCluster) {
  RunConfig cfg;
  cfg.model = ModelConfig::llama7b();  // 32 heads: Ulysses feasible too
  cfg.seq_len = 524288.0;
  cfg.method = Method::kBurstEngine;
  cfg.cluster = {2, 8};
  auto small = estimate_attention_only(cfg);
  cfg.cluster = {8, 8};
  auto big = estimate_attention_only(cfg);
  ASSERT_TRUE(small.ok && big.ok);
  EXPECT_LT(big.time_s, small.time_s);
}

}  // namespace
}  // namespace burst::perfmodel
