// Vocabulary-parallel LM head versus the serial naive/fused heads: same
// loss, same gradients, 1/G of the logits footprint.
#include "core/vocab_parallel.hpp"

#include <gtest/gtest.h>

#include <mutex>

#include "comm/communicator.hpp"
#include "comm/sim_transport.hpp"
#include "kernels/lm_head.hpp"
#include "sim/cluster.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace burst::core {
namespace {

using sim::Cluster;
using sim::DeviceContext;
using sim::Topology;
using tensor::Rng;
using tensor::Tensor;

struct Problem {
  Tensor h;                           // [N, d]
  Tensor w;                           // [v, d]
  std::vector<std::int64_t> targets;  // [N]
  std::int64_t n, d, v;
};

Problem make_problem(std::uint64_t seed, std::int64_t n, std::int64_t d,
                     std::int64_t v) {
  Rng rng(seed);
  Problem p;
  p.n = n;
  p.d = d;
  p.v = v;
  p.h = rng.gaussian(n, d, 0.7f);
  p.w = rng.gaussian(v, d, 0.7f);
  for (std::int64_t i = 0; i < n; ++i) {
    p.targets.push_back(rng.next_index(v));
  }
  return p;
}

class VocabParallel : public ::testing::TestWithParam<int> {};

TEST_P(VocabParallel, MatchesSerialNaiveHead) {
  const int g = GetParam();
  Problem p = make_problem(7, 32, 12, 8 * g);
  auto ref = kernels::naive_lm_head_loss(p.h, p.w, p.targets);

  Cluster cluster({Topology::single_node(g)});
  std::vector<double> losses(static_cast<std::size_t>(g));
  std::vector<float> dh_err(static_cast<std::size_t>(g), 1.0f);
  std::vector<float> dw_err(static_cast<std::size_t>(g), 1.0f);
  const std::int64_t n_loc = p.n / g;
  const std::int64_t vs = p.v / g;
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    const int r = ctx.rank();
    Tensor h_local = p.h.copy_rows(r * n_loc, n_loc);
    std::vector<std::int64_t> t_local(
        p.targets.begin() + r * n_loc,
        p.targets.begin() + (r + 1) * n_loc);
    Tensor w_shard = p.w.copy_rows(r * vs, vs);
    auto out =
        vocab_parallel_lm_head_loss(comm, h_local, t_local, w_shard, p.v);
    losses[static_cast<std::size_t>(r)] = out.loss;
    dh_err[static_cast<std::size_t>(r)] =
        tensor::max_abs_diff(out.dh_local, ref.dh.copy_rows(r * n_loc, n_loc));
    dw_err[static_cast<std::size_t>(r)] =
        tensor::max_abs_diff(out.dw_shard, ref.dw.copy_rows(r * vs, vs));
    // Logits footprint is exactly 1/G of the naive head's.
    EXPECT_EQ(out.logits_bytes, ref.peak_scratch_bytes /
                                    static_cast<std::uint64_t>(g));
  });
  for (int r = 0; r < g; ++r) {
    EXPECT_NEAR(losses[static_cast<std::size_t>(r)], ref.loss, 1e-5)
        << "rank " << r;
    EXPECT_LT(dh_err[static_cast<std::size_t>(r)], 1e-4f) << "rank " << r;
    EXPECT_LT(dw_err[static_cast<std::size_t>(r)], 1e-4f) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, VocabParallel,
                         ::testing::Values(1, 2, 4));

TEST(VocabParallelFixed, AgreesWithFusedHead) {
  const int g = 2;
  Problem p = make_problem(11, 16, 8, 24 * g);
  auto fused = kernels::fused_lm_head_loss(p.h, p.w, p.targets, 8, 16);

  Cluster cluster({Topology::single_node(g)});
  std::vector<double> losses(g);
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    const int r = ctx.rank();
    const std::int64_t n_loc = p.n / g;
    const std::int64_t vs = p.v / g;
    Tensor h_local = p.h.copy_rows(r * n_loc, n_loc);
    std::vector<std::int64_t> t_local(
        p.targets.begin() + r * n_loc,
        p.targets.begin() + (r + 1) * n_loc);
    auto out = vocab_parallel_lm_head_loss(comm, h_local, t_local,
                                           p.w.copy_rows(r * vs, vs), p.v);
    losses[static_cast<std::size_t>(r)] = out.loss;
  });
  EXPECT_NEAR(losses[0], fused.loss, 1e-5);
  EXPECT_NEAR(losses[1], fused.loss, 1e-5);
}

TEST(VocabParallelFixed, GradcheckThroughCollectives) {
  // Finite differences on a tiny problem, run through the full distributed
  // path: perturb one H entry and one W entry.
  const int g = 2;
  Problem p = make_problem(13, 4, 5, 6 * g);

  const auto loss_of = [&](const Problem& prob) {
    Cluster cluster({Topology::single_node(g)});
    std::vector<double> losses(g);
    cluster.run([&](DeviceContext& ctx) {
      comm::SimTransport comm_tp(ctx);
      comm::Communicator comm(comm_tp);
      const int r = ctx.rank();
      const std::int64_t n_loc = prob.n / g;
      const std::int64_t vs = prob.v / g;
      Tensor h_local = prob.h.copy_rows(r * n_loc, n_loc);
      std::vector<std::int64_t> t_local(
          prob.targets.begin() + r * n_loc,
          prob.targets.begin() + (r + 1) * n_loc);
      auto out = vocab_parallel_lm_head_loss(
          comm, h_local, t_local, prob.w.copy_rows(r * vs, vs), prob.v);
      losses[static_cast<std::size_t>(r)] = out.loss;
    });
    return losses[0];
  };

  // Analytic gradients from rank 0's outputs.
  Cluster cluster({Topology::single_node(g)});
  Tensor dh0;
  Tensor dw0;
  std::mutex mu;
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    const int r = ctx.rank();
    const std::int64_t n_loc = p.n / g;
    const std::int64_t vs = p.v / g;
    Tensor h_local = p.h.copy_rows(r * n_loc, n_loc);
    std::vector<std::int64_t> t_local(p.targets.begin() + r * n_loc,
                                      p.targets.begin() + (r + 1) * n_loc);
    auto out = vocab_parallel_lm_head_loss(comm, h_local, t_local,
                                           p.w.copy_rows(r * vs, vs), p.v);
    if (r == 0) {
      std::lock_guard lock(mu);
      dh0 = std::move(out.dh_local);
      dw0 = std::move(out.dw_shard);
    }
  });

  const float eps = 1e-3f;
  {
    Problem pp = p;
    pp.h(0, 1) += eps;
    const double lp = loss_of(pp);
    pp.h(0, 1) -= 2 * eps;
    const double lm = loss_of(pp);
    EXPECT_NEAR(dh0(0, 1), (lp - lm) / (2.0 * eps), 1e-3);
  }
  {
    Problem pp = p;
    pp.w(2, 3) += eps;  // vocab row 2 belongs to rank 0's shard
    const double lp = loss_of(pp);
    pp.w(2, 3) -= 2 * eps;
    const double lm = loss_of(pp);
    EXPECT_NEAR(dw0(2, 3), (lp - lm) / (2.0 * eps), 1e-3);
  }
}

}  // namespace
}  // namespace burst::core
