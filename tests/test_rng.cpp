#include "tensor/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace burst::tensor {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.next_u64() == b.next_u64());
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.next_uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng r(11);
  const int n = 20000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = r.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, IndexInRange) {
  Rng r(19);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = r.next_index(17);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 17);
  }
}

TEST(Rng, GaussianTensorShapeAndScale) {
  Rng r(23);
  Tensor t = r.gaussian(50, 40, 0.5f);
  EXPECT_EQ(t.rows(), 50);
  EXPECT_EQ(t.cols(), 40);
  double sum2 = 0.0;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    sum2 += static_cast<double>(t.data()[i]) * t.data()[i];
  }
  const double stddev = std::sqrt(sum2 / static_cast<double>(t.numel()));
  EXPECT_NEAR(stddev, 0.5, 0.05);
}

TEST(Rng, TokenIdsAreIntegralAndInVocab) {
  Rng r(29);
  Tensor ids = r.token_ids(256, 100);
  for (std::int64_t i = 0; i < ids.numel(); ++i) {
    const float v = ids[i];
    EXPECT_EQ(v, std::floor(v));
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 100.0f);
  }
}

}  // namespace
}  // namespace burst::tensor
