#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

namespace burst::parallel {
namespace {

TEST(ThreadPool, ExecutesAllSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(1);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, 10, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      hits[i].fetch_add(1);
    }
  });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(0, 1, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SmallRangeRunsSerially) {
  std::vector<int> hits(3, 0);
  parallel_for(3, 100, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      hits[i] += 1;
    }
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 3);
}

TEST(ParallelFor, RangeOverloadCoversExactlyOnce) {
  std::vector<std::atomic<int>> hits(30);
  parallel_for(5, 25, 7, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      hits[i].fetch_add(1);
    }
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 5 && i < 25) ? 1 : 0) << "index " << i;
  }
}

// Chunk boundaries must be fixed multiples of `grain` from `begin` for every
// pool size — the contract the kernels' bitwise determinism rests on.
TEST(ParallelFor, ChunkBoundariesIndependentOfPoolSize) {
  const auto collect = [] {
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    parallel_for(3, 50, 8, [&](std::size_t b, std::size_t e) {
      std::lock_guard lock(mu);
      chunks.emplace_back(b, e);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };

  // A single worker takes the serial fallback: one fn(begin, end) call.
  // That merges chunks but never splits one, so per-element work — and with
  // it the kernels' arithmetic order — is unchanged.
  ThreadPool::reset_global(1);
  const std::vector<std::pair<std::size_t, std::size_t>> serial = {{3, 50}};
  EXPECT_EQ(collect(), serial);

  const std::vector<std::pair<std::size_t, std::size_t>> expected = {
      {3, 11}, {11, 19}, {19, 27}, {27, 35}, {35, 43}, {43, 50}};
  for (std::size_t workers : {2u, 8u}) {
    ThreadPool::reset_global(workers);
    EXPECT_EQ(collect(), expected) << "pool size " << workers;
  }
  ThreadPool::reset_global();
}

TEST(ThreadPool, BurstThreadsEnvOverridesGlobalPoolSize) {
  ASSERT_EQ(setenv("BURST_THREADS", "3", /*overwrite=*/1), 0);
  ThreadPool::reset_global();
  EXPECT_EQ(ThreadPool::global().size(), 3u);

  // Junk values fall back to hardware concurrency (>= 1), never crash.
  ASSERT_EQ(setenv("BURST_THREADS", "nope", 1), 0);
  ThreadPool::reset_global();
  EXPECT_GE(ThreadPool::global().size(), 1u);

  ASSERT_EQ(unsetenv("BURST_THREADS"), 0);
  ThreadPool::reset_global();
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(ParallelFor, SumReductionCorrect) {
  std::atomic<long long> total{0};
  parallel_for(10000, 64, [&](std::size_t b, std::size_t e) {
    long long local = 0;
    for (std::size_t i = b; i < e; ++i) {
      local += static_cast<long long>(i);
    }
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), 10000LL * 9999 / 2);
}

}  // namespace
}  // namespace burst::parallel
