#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace burst::parallel {
namespace {

TEST(ThreadPool, ExecutesAllSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(1);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, 10, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      hits[i].fetch_add(1);
    }
  });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(0, 1, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SmallRangeRunsSerially) {
  std::vector<int> hits(3, 0);
  parallel_for(3, 100, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      hits[i] += 1;
    }
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 3);
}

TEST(ParallelFor, SumReductionCorrect) {
  std::atomic<long long> total{0};
  parallel_for(10000, 64, [&](std::size_t b, std::size_t e) {
    long long local = 0;
    for (std::size_t i = b; i < e; ++i) {
      local += static_cast<long long>(i);
    }
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), 10000LL * 9999 / 2);
}

}  // namespace
}  // namespace burst::parallel
