#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace burst::tensor {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.rank(), 0);
  EXPECT_EQ(t.numel(), 0);
}

TEST(Tensor, VectorConstruction) {
  Tensor t(5);
  EXPECT_EQ(t.rank(), 1);
  EXPECT_EQ(t.numel(), 5);
  t[3] = 2.5f;
  EXPECT_FLOAT_EQ(t[3], 2.5f);
}

TEST(Tensor, MatrixConstructionAndIndexing) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  t(2, 3) = 7.0f;
  EXPECT_FLOAT_EQ(t.data()[2 * 4 + 3], 7.0f);
}

TEST(Tensor, ZerosAndFull) {
  Tensor z = Tensor::zeros(2, 3);
  for (std::int64_t i = 0; i < z.numel(); ++i) {
    EXPECT_FLOAT_EQ(z.data()[i], 0.0f);
  }
  Tensor f = Tensor::full(2, 2, 3.5f);
  for (std::int64_t i = 0; i < f.numel(); ++i) {
    EXPECT_FLOAT_EQ(f.data()[i], 3.5f);
  }
}

TEST(Tensor, RowBlockViewsAliasStorage) {
  Tensor t = Tensor::zeros(4, 3);
  MatView block = t.row_block(1, 2);
  EXPECT_EQ(block.rows, 2);
  EXPECT_EQ(block.cols, 3);
  block(0, 0) = 9.0f;
  EXPECT_FLOAT_EQ(t(1, 0), 9.0f);
}

TEST(Tensor, ColBlockViewHasParentStride) {
  Tensor t = Tensor::zeros(2, 6);
  MatView block = t.col_block(2, 3);
  EXPECT_EQ(block.rows, 2);
  EXPECT_EQ(block.cols, 3);
  EXPECT_EQ(block.stride, 6);
  block(1, 2) = 4.0f;
  EXPECT_FLOAT_EQ(t(1, 4), 4.0f);
}

TEST(Tensor, CopyRowsIsDeep) {
  Tensor t = Tensor::full(4, 2, 1.0f);
  Tensor c = t.copy_rows(1, 2);
  c(0, 0) = 5.0f;
  EXPECT_FLOAT_EQ(t(1, 0), 1.0f);
}

TEST(Tensor, SetRowsWrites) {
  Tensor t = Tensor::zeros(4, 2);
  Tensor src = Tensor::full(2, 2, 3.0f);
  t.set_rows(2, src);
  EXPECT_FLOAT_EQ(t(2, 0), 3.0f);
  EXPECT_FLOAT_EQ(t(3, 1), 3.0f);
  EXPECT_FLOAT_EQ(t(1, 1), 0.0f);
}

TEST(Tensor, ReshapeKeepsData) {
  Tensor t(6);
  for (std::int64_t i = 0; i < 6; ++i) {
    t[i] = static_cast<float>(i);
  }
  t.reshape(2, 3);
  EXPECT_EQ(t.rank(), 2);
  EXPECT_FLOAT_EQ(t(1, 2), 5.0f);
}

TEST(Tensor, ReshapeMismatchThrows) {
  Tensor t(6);
  EXPECT_THROW(t.reshape(2, 4), std::invalid_argument);
}

TEST(Tensor, ShapeStr) {
  Tensor t(2, 3);
  EXPECT_EQ(t.shape_str(), "[2, 3]");
}

}  // namespace
}  // namespace burst::tensor
