// Document-packing masks (extension): block-diagonal x causal attention for
// packed sequences, through the kernels and the distributed ring.
#include <gtest/gtest.h>

#include <mutex>

#include "comm/communicator.hpp"
#include "comm/sim_transport.hpp"
#include "core/dist_attention.hpp"
#include "core/partition.hpp"
#include "kernels/mask.hpp"
#include "kernels/reference_attention.hpp"
#include "sim/cluster.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace burst {
namespace {

using kernels::IndexMap;
using kernels::MaskSpec;
using tensor::Rng;
using tensor::Tensor;

TEST(DocumentMask, Semantics) {
  MaskSpec m = MaskSpec::document_from_lengths({3, 2, 4});
  // doc 0: tokens 0-2; doc 1: 3-4; doc 2: 5-8.
  EXPECT_TRUE(m.allowed(2, 0));   // within doc 0, causal
  EXPECT_FALSE(m.allowed(0, 2));  // future within doc
  EXPECT_FALSE(m.allowed(3, 2));  // across documents
  EXPECT_TRUE(m.allowed(4, 3));
  EXPECT_FALSE(m.allowed(8, 4));
  EXPECT_TRUE(m.allowed(8, 5));
}

TEST(DocumentMask, CountMatchesPerDocumentTriangles) {
  MaskSpec m = MaskSpec::document_from_lengths({4, 6});
  // 4*5/2 + 6*7/2 = 10 + 21.
  EXPECT_EQ(m.count_allowed(0, 10, 0, 10), 31u);
}

TEST(DocumentMask, ClassifyConsistent) {
  MaskSpec m = MaskSpec::document_from_lengths({8, 8});
  EXPECT_EQ(m.classify(0, 4, 8, 12), MaskSpec::TileClass::kNone);  // cross-doc
  EXPECT_EQ(m.classify(4, 8, 0, 4), MaskSpec::TileClass::kAll);    // past, same doc
}

TEST(DocumentMask, FlashMatchesReference) {
  Rng rng(3);
  const std::int64_t n = 48;
  const std::int64_t d = 8;
  MaskSpec mask = MaskSpec::document_from_lengths({16, 8, 24});
  Tensor q = rng.gaussian(n, d, 0.8f);
  Tensor k = rng.gaussian(n, d, 0.8f);
  Tensor v = rng.gaussian(n, d, 0.8f);
  const IndexMap id = IndexMap::range(0, n);
  auto flash = kernels::flash_forward(q, id, k, v, id, mask, 0.35f);
  auto ref = kernels::reference_attention_forward(q, id, k, v, id, mask,
                                                  0.35f);
  EXPECT_LT(tensor::max_abs_diff(flash.o, ref.o), 2e-5f);
  // First token of every document attends only to itself.
  for (std::int64_t start : {std::int64_t{0}, std::int64_t{16},
                             std::int64_t{24}}) {
    for (std::int64_t c = 0; c < d; ++c) {
      EXPECT_NEAR(flash.o(start, c), v(start, c), 1e-5f)
          << "doc start " << start;
    }
  }
}

// Packed documents through the distributed ring with zigzag balance: the
// mask is evaluated on global positions, so document boundaries survive the
// repartitioning.
TEST(DocumentMask, DistributedMatchesReference) {
  Rng rng(7);
  const std::int64_t n = 64;
  const std::int64_t d = 8;
  const int g = 4;
  MaskSpec mask = MaskSpec::document_from_lengths({24, 8, 32});
  Tensor q = rng.gaussian(n, d, 0.8f);
  Tensor k = rng.gaussian(n, d, 0.8f);
  Tensor v = rng.gaussian(n, d, 0.8f);
  Tensor d_out = rng.gaussian(n, d, 0.8f);

  const IndexMap id = IndexMap::range(0, n);
  auto ref_fwd =
      kernels::reference_attention_forward(q, id, k, v, id, mask, 0.35f);
  auto ref_bwd =
      kernels::reference_attention_backward(q, k, v, ref_fwd, d_out, 0.35f);

  for (core::Balance b : {core::Balance::kZigzag, core::Balance::kStriped}) {
    core::DistAttnConfig cfg;
    cfg.mask = mask;
    cfg.scale = 0.35f;
    cfg.balance = b;
    cfg.backward = core::BackwardComm::kBurst;
    cfg.seq_len = n;
    sim::Cluster cluster({sim::Topology::single_node(g)});
    Tensor o_global = Tensor::zeros(n, d);
    Tensor dk_global = Tensor::zeros(n, d);
    std::mutex mu;
    cluster.run([&](sim::DeviceContext& ctx) {
      comm::SimTransport comm_tp(ctx);
      comm::Communicator comm(comm_tp);
      const auto route = core::SweepRoute::flat(comm::flat_ring(g));
      const auto map = core::route_index_map(route, cfg, ctx.rank());
      core::LocalQKV local{core::shard_rows(q, map), core::shard_rows(k, map),
                           core::shard_rows(v, map)};
      auto fwd = core::dist_attention_forward(comm, route, cfg, local);
      auto grads = core::dist_attention_backward(
          comm, route, cfg, local, fwd, core::shard_rows(d_out, map));
      std::lock_guard lock(mu);
      core::unshard_rows(o_global, map, fwd.o);
      core::unshard_rows(dk_global, map, grads.dk);
    });
    EXPECT_LT(tensor::max_abs_diff(o_global, ref_fwd.o), 3e-4f)
        << core::balance_name(b);
    EXPECT_LT(tensor::max_abs_diff(dk_global, ref_bwd.dk), 3e-4f)
        << core::balance_name(b);
  }
}

TEST(DocumentMask, BalanceFactorsForPackedDocs) {
  // Heavily skewed documents: contiguous partitioning is badly imbalanced
  // (one device owns the long document's tail rows), striped is near 1.
  MaskSpec m = MaskSpec::document_from_lengths({96, 16, 16});
  const double contiguous =
      core::balance_factor(m, core::Balance::kContiguous, 128, 4);
  const double striped =
      core::balance_factor(m, core::Balance::kStriped, 128, 4);
  EXPECT_GT(contiguous, 1.3);
  EXPECT_LT(striped, 1.1);
}

}  // namespace
}  // namespace burst
