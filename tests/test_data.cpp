#include "model/data.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace burst::model {
namespace {

using tensor::Tensor;

TEST(Data, DeterministicInSeed) {
  for (TaskKind k : {TaskKind::kMarkov, TaskKind::kCopy, TaskKind::kInduction,
                     TaskKind::kNeedle}) {
    Tensor a = make_task_sequence(k, 42, 64, 32);
    Tensor b = make_task_sequence(k, 42, 64, 32);
    Tensor c = make_task_sequence(k, 43, 64, 32);
    ASSERT_EQ(a.numel(), 65);
    bool identical = true;
    bool differs = false;
    for (std::int64_t i = 0; i < a.numel(); ++i) {
      identical = identical && a[i] == b[i];
      differs = differs || a[i] != c[i];
    }
    EXPECT_TRUE(identical) << task_name(k);
    EXPECT_TRUE(differs) << task_name(k);
  }
}

TEST(Data, TokensInVocabulary) {
  for (TaskKind k : {TaskKind::kMarkov, TaskKind::kCopy, TaskKind::kInduction,
                     TaskKind::kNeedle}) {
    Tensor t = make_task_sequence(k, 7, 128, 16);
    for (std::int64_t i = 0; i < t.numel(); ++i) {
      EXPECT_GE(t[i], 0.0f);
      EXPECT_LT(t[i], 16.0f);
    }
  }
}

TEST(Data, CopySecondHalfRepeatsFirst) {
  const std::int64_t n = 32;
  Tensor t = make_task_sequence(TaskKind::kCopy, 11, n, 24);
  for (std::int64_t i = n / 2; i <= n; ++i) {
    EXPECT_EQ(t[i], t[i - n / 2]) << "pos " << i;
  }
}

TEST(Data, CopyOddLengthThrows) {
  EXPECT_THROW(make_task_sequence(TaskKind::kCopy, 1, 33, 24),
               std::invalid_argument);
}

TEST(Data, InductionKeysAlwaysMapToSameValue) {
  const std::int64_t n = 128;
  const std::int64_t vocab = 20;
  Tensor t = make_task_sequence(TaskKind::kInduction, 13, n, vocab);
  std::map<int, int> seen;
  for (std::int64_t i = 0; i + 1 <= n; i += 2) {
    const int key = static_cast<int>(t[i]);
    const int val = static_cast<int>(t[i + 1]);
    EXPECT_LT(key, vocab / 2);
    EXPECT_GE(val, vocab / 2);
    auto [it, inserted] = seen.emplace(key, val);
    if (!inserted) {
      EXPECT_EQ(it->second, val) << "key " << key << " changed value";
    }
  }
  EXPECT_GE(seen.size(), 2u);
}

TEST(Data, NeedleQueryAndAnswer) {
  const std::int64_t n = 64;
  Tensor t = make_task_sequence(TaskKind::kNeedle, 17, n, 32);
  // burst-lint: allow(no-naked-float-eq) sentinel is written as exactly 0.0f
  EXPECT_EQ(t[n - 1], 0.0f);  // query sentinel
  // The answer equals the value following the planted sentinel.
  std::int64_t planted = -1;
  for (std::int64_t i = 0; i < n - 1; ++i) {
    if (t[i] == 0.0f) {
      planted = i;
      break;
    }
  }
  ASSERT_GE(planted, 0);
  EXPECT_EQ(t[n], t[planted + 1]);
}

TEST(Data, DeterminedRowsInRange) {
  const std::int64_t n = 64;
  for (TaskKind k : {TaskKind::kMarkov, TaskKind::kCopy, TaskKind::kInduction,
                     TaskKind::kNeedle}) {
    auto rows = task_determined_rows(k, n);
    EXPECT_FALSE(rows.empty()) << task_name(k);
    for (auto r : rows) {
      EXPECT_GE(r, 0);
      EXPECT_LT(r, n);
    }
  }
  EXPECT_EQ(task_determined_rows(TaskKind::kNeedle, n).size(), 1u);
}

TEST(Data, SmallVocabRejected) {
  EXPECT_THROW(make_task_sequence(TaskKind::kMarkov, 1, 16, 4),
               std::invalid_argument);
}

}  // namespace
}  // namespace burst::model
