#include "model/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/memory.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace burst::model {
namespace {

using kernels::MaskSpec;
using tensor::Rng;
using tensor::Tensor;

TEST(Adam, SingleParamMatchesHandComputation) {
  // One 1x1 "model": check the textbook Adam update for two steps.
  ModelWeights w;
  w.w_embed = Tensor::zeros(1, 1);
  w.w_head = Tensor::zeros(1, 1);
  ModelGrads g;
  g.w_embed = Tensor::zeros(1, 1);
  g.w_head = Tensor::zeros(1, 1);
  g.w_head(0, 0) = 0.5f;

  AdamConfig ac;
  ac.lr = 0.1f;
  AdamOptimizer opt(w, ac);
  opt.step(w, g);
  // Step 1: mhat = grad, vhat = grad^2 -> update ~= -lr * sign(grad).
  EXPECT_NEAR(w.w_head(0, 0), -0.1f * 0.5f / (0.5f + ac.eps), 1e-5);
  EXPECT_EQ(opt.steps_taken(), 1);

  const float after_one = w.w_head(0, 0);
  opt.step(w, g);
  EXPECT_LT(w.w_head(0, 0), after_one);  // same-sign grad keeps descending
}

TEST(Adam, ZeroGradLeavesWeightsUnchanged) {
  ModelConfig cfg = ModelConfig::toy();
  ModelWeights w = ModelWeights::init(cfg, 5);
  ModelWeights before = w;
  ModelGrads g = ModelGrads::zeros(cfg);
  AdamOptimizer opt(w, {});
  opt.step(w, g);
  EXPECT_FLOAT_EQ(
      tensor::max_abs_diff(w.layers[0].wq, before.layers[0].wq), 0.0f);
  EXPECT_FLOAT_EQ(tensor::max_abs_diff(w.w_head, before.w_head), 0.0f);
}

TEST(Adam, TrainsToyModelBelowSgd) {
  ModelConfig cfg = ModelConfig::toy();
  ModelWeights w_adam = ModelWeights::init(cfg, 7);
  ModelWeights w_sgd = w_adam;
  Rng rng(9);
  Tensor tokens = rng.token_ids(33, cfg.vocab);
  const MaskSpec mask = MaskSpec::causal();

  AdamConfig ac;
  ac.lr = 0.01f;
  AdamOptimizer opt(w_adam, ac);
  for (int i = 0; i < 10; ++i) {
    auto s = serial_train_step(cfg, w_adam, tokens, mask);
    opt.step(w_adam, s.grads);
  }
  const double adam_loss = serial_loss(cfg, w_adam, tokens, mask);
  const double init_loss =
      serial_loss(cfg, ModelWeights::init(cfg, 7), tokens, mask);
  EXPECT_LT(adam_loss, init_loss);
}

TEST(Adam, OnDeviceStateChargesTwelveBytesPerParam) {
  ModelConfig cfg = ModelConfig::toy();
  ModelWeights w = ModelWeights::init(cfg, 11);
  sim::MemoryTracker mem;
  {
    AdamOptimizer opt(w, {}, &mem);
    EXPECT_EQ(mem.used(),
              static_cast<std::uint64_t>(opt.num_params()) * 12);
  }
  EXPECT_EQ(mem.used(), 0u);  // RAII release
}

TEST(Adam, OffloadChargesNothing) {
  ModelConfig cfg = ModelConfig::toy();
  ModelWeights w = ModelWeights::init(cfg, 13);
  sim::MemoryTracker mem;
  AdamConfig ac;
  ac.offload = true;
  AdamOptimizer opt(w, ac, &mem);
  EXPECT_EQ(mem.used(), 0u);
  EXPECT_GT(opt.num_params(), 0);
}

TEST(Adam, ParamCountMatchesTensors) {
  ModelConfig cfg = ModelConfig::toy();
  cfg.kv_heads = 2;  // GQA shapes too
  ModelWeights w = ModelWeights::init(cfg, 15);
  AdamOptimizer opt(w, {});
  std::int64_t expect = 2 * cfg.vocab * cfg.d_model;
  expect += cfg.layers * (2 * cfg.d_model * cfg.d_model +
                          2 * cfg.d_model * cfg.d_kv() +
                          2 * cfg.d_model * cfg.d_ff);
  EXPECT_EQ(opt.num_params(), expect);
}

}  // namespace
}  // namespace burst::model
