// Rotary position embeddings: rotation algebra, the relative-position
// property, and the context-parallel global-position correctness trap.
#include "kernels/rope.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <mutex>

#include "comm/communicator.hpp"
#include "comm/sim_transport.hpp"
#include "kernels/flash_attention.hpp"
#include "model/dist_model.hpp"
#include "model/transformer.hpp"
#include "sim/cluster.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace burst {
namespace {

using kernels::IndexMap;
using kernels::MaskSpec;
using tensor::Rng;
using tensor::Tensor;

TEST(Rope, PositionZeroIsIdentity) {
  Rng rng(3);
  Tensor x = rng.gaussian(1, 8, 1.0f);
  Tensor orig = x;
  kernels::apply_rope_inplace(x, IndexMap::range(0, 1));
  EXPECT_LT(tensor::max_abs_diff(x, orig), 1e-6f);
}

TEST(Rope, InverseUndoesRotation) {
  Rng rng(5);
  Tensor x = rng.gaussian(16, 8, 1.0f);
  Tensor orig = x;
  const IndexMap map = IndexMap::range(100, 16);
  kernels::apply_rope_inplace(x, map);
  EXPECT_GT(tensor::max_abs_diff(x, orig), 1e-3f);  // actually rotated
  kernels::apply_rope_inverse_inplace(x, map);
  EXPECT_LT(tensor::max_abs_diff(x, orig), 1e-5f);
}

TEST(Rope, PreservesNorms) {
  Rng rng(7);
  Tensor x = rng.gaussian(8, 16, 1.0f);
  Tensor orig = x;
  kernels::apply_rope_inplace(x, IndexMap::range(37, 8));
  for (std::int64_t r = 0; r < 8; ++r) {
    double n_orig = 0.0;
    double n_rot = 0.0;
    for (std::int64_t c = 0; c < 16; ++c) {
      n_orig += static_cast<double>(orig(r, c)) * orig(r, c);
      n_rot += static_cast<double>(x(r, c)) * x(r, c);
    }
    EXPECT_NEAR(n_rot, n_orig, 1e-4);
  }
}

// The defining property: attention scores depend only on relative
// positions. Shifting every position by a constant leaves the (full-mask)
// attention output unchanged.
TEST(Rope, AttentionInvariantUnderGlobalShift) {
  Rng rng(11);
  const std::int64_t n = 24;
  const std::int64_t d = 8;
  Tensor q0 = rng.gaussian(n, d, 0.8f);
  Tensor k0 = rng.gaussian(n, d, 0.8f);
  Tensor v = rng.gaussian(n, d, 0.8f);

  const auto attn_with_offset = [&](std::int64_t offset) {
    Tensor q = q0;
    Tensor k = k0;
    const IndexMap pos = IndexMap::range(offset, n);
    kernels::apply_rope_inplace(q, pos);
    kernels::apply_rope_inplace(k, pos);
    const IndexMap local = IndexMap::range(0, n);
    return kernels::flash_forward(q, local, k, v, local, MaskSpec::full(),
                                  0.35f);
  };

  auto a = attn_with_offset(0);
  auto b = attn_with_offset(1000);
  EXPECT_LT(tensor::max_abs_diff(a.o, b.o), 2e-4f);
}

// RoPE through the whole serial model: finite-difference gradcheck covers
// the inverse-rotation backward path.
TEST(Rope, SerialModelGradcheck) {
  model::ModelConfig cfg = model::ModelConfig::toy();
  cfg.layers = 1;
  cfg.use_rope = true;
  model::ModelWeights w = model::ModelWeights::init(cfg, 13);
  Rng rng(17);
  Tensor tokens = rng.token_ids(11, cfg.vocab);
  const MaskSpec mask = MaskSpec::causal();
  auto step = model::serial_train_step(cfg, w, tokens, mask);

  const float eps = 2e-2f;
  const auto check = [&](Tensor& param, const Tensor& grad, std::int64_t idx) {
    const float orig = param.data()[idx];
    param.data()[idx] = orig + eps;
    const double lp = model::serial_loss(cfg, w, tokens, mask);
    param.data()[idx] = orig - eps;
    const double lm = model::serial_loss(cfg, w, tokens, mask);
    param.data()[idx] = orig;
    const double fd = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(grad.data()[idx], fd, 2e-3 + 0.1 * std::fabs(fd));
  };
  check(w.layers[0].wq, step.grads.layers[0].wq, 9);
  check(w.layers[0].wk, step.grads.layers[0].wk, 14);
}

// The trap: under zigzag balance the local row order is not the global
// order; RoPE must rotate by global positions or distributed != serial.
TEST(Rope, DistributedZigzagMatchesSerial) {
  model::ModelConfig cfg = model::ModelConfig::toy();
  cfg.use_rope = true;
  model::ModelWeights w = model::ModelWeights::init(cfg, 19);
  Rng rng(23);
  Tensor tokens = rng.token_ids(33, cfg.vocab);
  auto serial = model::serial_train_step(cfg, w, tokens, MaskSpec::causal());

  model::DistTrainConfig dc;
  dc.model = cfg;
  dc.impl = model::AttnImpl::kBurst;
  dc.balance = core::Balance::kZigzag;
  dc.ckpt = {core::CkptStrategy::kSeqSelective, 0.5};

  sim::Cluster cluster({sim::Topology::single_node(4)});
  double loss = 0.0;
  float err = 1.0f;
  std::mutex mu;
  cluster.run([&](sim::DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    auto r = model::dist_train_step(comm, dc, w, tokens);
    if (ctx.rank() == 0) {
      std::lock_guard lock(mu);
      loss = r.loss;
      err = std::max(tensor::max_abs_diff(r.grads.layers[0].wq,
                                          serial.grads.layers[0].wq),
                     tensor::max_abs_diff(r.grads.layers[1].wk,
                                          serial.grads.layers[1].wk));
    }
  });
  EXPECT_NEAR(loss, serial.loss, 1e-4);
  EXPECT_LT(err, 2e-3f);
}

// Striped balance too — every row's global position is distinct from its
// local index, so any local-index rotation would fail loudly here.
TEST(Rope, DistributedStripedMatchesSerial) {
  model::ModelConfig cfg = model::ModelConfig::toy();
  cfg.use_rope = true;
  model::ModelWeights w = model::ModelWeights::init(cfg, 29);
  Rng rng(31);
  Tensor tokens = rng.token_ids(33, cfg.vocab);
  auto serial = model::serial_train_step(cfg, w, tokens, MaskSpec::causal());

  model::DistTrainConfig dc;
  dc.model = cfg;
  dc.impl = model::AttnImpl::kRing;
  dc.balance = core::Balance::kStriped;

  sim::Cluster cluster({sim::Topology::single_node(4)});
  double loss = 0.0;
  std::mutex mu;
  cluster.run([&](sim::DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    auto r = model::dist_train_step(comm, dc, w, tokens);
    if (ctx.rank() == 0) {
      std::lock_guard lock(mu);
      loss = r.loss;
    }
  });
  EXPECT_NEAR(loss, serial.loss, 1e-4);
}

}  // namespace
}  // namespace burst
