// Serving resilience: checkpoint round-trips (serve/snapshot.hpp),
// bitwise checkpoint/resume replay, crash recovery with circuit-breaker
// fast-fails (serve/resilience.hpp), graceful degradation (timeouts, load
// shedding, TPOT cancellation), and ring-fault retry for distributed
// prefill.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "resilience/snapshot.hpp"
#include "serve/dist_prefill.hpp"
#include "serve/engine.hpp"
#include "serve/errors.hpp"
#include "serve/resilience.hpp"
#include "serve/snapshot.hpp"
#include "sim/cluster.hpp"
#include "tensor/rng.hpp"

namespace fs = std::filesystem;

namespace burst::serve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

model::ModelConfig serve_toy() {
  model::ModelConfig cfg = model::ModelConfig::toy();
  cfg.kv_heads = 2;
  cfg.use_rope = true;
  return cfg;
}

const model::ModelWeights& toy_weights() {
  static const model::ModelWeights w =
      model::ModelWeights::init(serve_toy(), 73);
  return w;
}

std::vector<std::int64_t> prompt_of(std::uint64_t seed, std::int64_t n) {
  tensor::Rng rng(seed);
  std::vector<std::int64_t> p(static_cast<std::size_t>(n));
  for (auto& t : p) {
    t = rng.next_index(serve_toy().vocab);
  }
  return p;
}

// A small mixed workload: staggered arrivals, several requests in flight at
// once, enough iterations that mid-run checkpoints land in interesting
// states (mid-prefill, mid-decode).
void add_workload(Engine& engine) {
  engine.add_request(prompt_of(901, 24), /*max_new_tokens=*/6, 0.0);
  engine.add_request(prompt_of(902, 16), 8, 0.0);
  engine.add_request(prompt_of(903, 40), 4, 1e-6);
  engine.add_request(prompt_of(904, 8), 10, 2e-6);
}

EngineConfig small_engine_config() {
  EngineConfig ec;
  ec.sched.policy = BatchPolicy::kContinuous;
  ec.sched.token_budget = 32;
  ec.sched.chunk_tokens = 16;
  ec.block_tokens = 8;
  return ec;
}

// --- checkpoint serialization ----------------------------------------------

EngineCheckpoint sample_checkpoint() {
  const model::ModelConfig cfg = serve_toy();
  EngineCheckpoint ck;
  ck.iteration = 7;
  ck.time_s = 0.125;
  ck.preempted = 3;
  ck.slots.resize(2);

  auto& a = ck.slots[0];
  a.state = 2;  // kDecode
  a.outcome = 0;
  a.admission_checked = true;
  a.prefilled = 16;
  a.blocks_held = 3;
  a.first_token_s = 0.01;
  a.generated = {5, 9, 2};
  a.token_times = {0.01, 0.02, 0.03};
  a.cache_len = 19;
  tensor::Rng rng(17);
  const auto streams = cfg.layers * cfg.num_kv_heads();
  for (std::int64_t i = 0; i < streams; ++i) {
    a.k.push_back(rng.gaussian(a.cache_len, cfg.head_dim()));
    a.v.push_back(rng.gaussian(a.cache_len, cfg.head_dim()));
  }

  auto& b = ck.slots[1];
  b.state = 4;  // kRejected
  b.outcome = 2;
  b.reject_reason = 1;
  b.admission_checked = true;
  b.finish_s = 0.0;
  return ck;
}

TEST(ServeSnapshot, PayloadRoundTripIsExact) {
  const EngineCheckpoint ck = sample_checkpoint();
  const auto payload = serialize_checkpoint(ck);
  const EngineCheckpoint back = deserialize_checkpoint(payload);

  EXPECT_EQ(back.iteration, ck.iteration);
  EXPECT_EQ(back.time_s, ck.time_s);
  EXPECT_EQ(back.preempted, ck.preempted);
  ASSERT_EQ(back.slots.size(), ck.slots.size());
  for (std::size_t i = 0; i < ck.slots.size(); ++i) {
    const auto& want = ck.slots[i];
    const auto& got = back.slots[i];
    EXPECT_EQ(got.state, want.state);
    EXPECT_EQ(got.outcome, want.outcome);
    EXPECT_EQ(got.reject_reason, want.reject_reason);
    EXPECT_EQ(got.admission_checked, want.admission_checked);
    EXPECT_EQ(got.prefilled, want.prefilled);
    EXPECT_EQ(got.blocks_held, want.blocks_held);
    EXPECT_EQ(got.first_token_s, want.first_token_s);
    EXPECT_EQ(got.finish_s, want.finish_s);
    EXPECT_EQ(got.generated, want.generated);
    EXPECT_EQ(got.token_times, want.token_times);
    EXPECT_EQ(got.cache_len, want.cache_len);
    ASSERT_EQ(got.k.size(), want.k.size());
    for (std::size_t s = 0; s < want.k.size(); ++s) {
      for (std::int64_t r = 0; r < want.cache_len; ++r) {
        for (std::int64_t c = 0; c < want.k[s].cols(); ++c) {
          ASSERT_EQ(got.k[s](r, c), want.k[s](r, c));
          ASSERT_EQ(got.v[s](r, c), want.v[s](r, c));
        }
      }
    }
  }
  // checkpoint_bytes is the container size: payload + checked-blob header.
  EXPECT_EQ(checkpoint_bytes(ck),
            payload.size() + resilience::kBlobHeaderBytes);
}

TEST(ServeSnapshot, TruncatedPayloadIsRejected) {
  auto payload = serialize_checkpoint(sample_checkpoint());
  payload.resize(payload.size() / 2);
  EXPECT_THROW(deserialize_checkpoint(payload),
               resilience::SnapshotCorruptError);
}

TEST(ServeSnapshot, ManagerRetainsPrunesAndSkipsCorrupt) {
  const fs::path dir = fs::temp_directory_path() / "burst-serve-snap-test";
  fs::remove_all(dir);
  ServeSnapshotManager mgr(dir.string(), /*keep_last=*/2);

  EngineCheckpoint ck = sample_checkpoint();
  for (const std::int64_t it : {2, 4, 6}) {
    ck.iteration = it;
    EXPECT_GT(mgr.save(ck), 0u);
  }
  // Retention: only the newest two files survive.
  const auto files = mgr.list();
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(mgr.load_latest().iteration, 6);
  EXPECT_EQ(mgr.load(files[0]).iteration, 4);

  // Corrupt the newest file: load_latest falls back to the older one.
  {
    std::fstream f(files[1],
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(resilience::kBlobHeaderBytes) + 5);
    f.put('\x5a');
  }
  EXPECT_EQ(mgr.load_latest().iteration, 4);

  // Corrupt every file: nothing validates.
  {
    std::fstream f(files[0],
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(resilience::kBlobHeaderBytes) + 5);
    f.put('\x5a');
  }
  EXPECT_THROW(mgr.load_latest(), resilience::SnapshotCorruptError);
  fs::remove_all(dir);
}

// --- checkpoint / resume ----------------------------------------------------

TEST(ServeResilience, ResumeFromCheckpointReplaysBitwise) {
  // Baseline run, capturing every checkpoint along the way.
  Engine base(serve_toy(), toy_weights(), small_engine_config());
  add_workload(base);
  std::vector<EngineCheckpoint> cks;
  Engine::RunOptions opts;
  opts.checkpoint_every = 2;
  opts.on_checkpoint = [&](const EngineCheckpoint& ck, sim::DeviceContext&) {
    cks.push_back(ck);
  };
  ServeReport want;
  sim::Cluster c1({sim::Topology::single_node(1)});
  c1.run([&](sim::DeviceContext& ctx) { want = base.run(ctx, opts); });
  ASSERT_GE(cks.size(), 2u) << "workload too small to checkpoint";

  // Resume from a mid-run checkpoint on a fresh engine + cluster: identical
  // tokens at identical virtual times (the clock is floored to the
  // checkpoint's capture time, and everything after is deterministic).
  const EngineCheckpoint& ck = cks[cks.size() / 2];
  Engine resumed(serve_toy(), toy_weights(), small_engine_config());
  add_workload(resumed);
  Engine::RunOptions ropts;
  ropts.resume = &ck;
  ServeReport got;
  sim::Cluster c2({sim::Topology::single_node(1)});
  c2.run([&](sim::DeviceContext& ctx) { got = resumed.run(ctx, ropts); });

  ASSERT_EQ(got.results.size(), want.results.size());
  for (std::size_t i = 0; i < want.results.size(); ++i) {
    EXPECT_EQ(got.results[i].generated, want.results[i].generated) << i;
    EXPECT_EQ(got.results[i].token_times_s, want.results[i].token_times_s)
        << i;
    EXPECT_EQ(got.results[i].finish_s, want.results[i].finish_s) << i;
    EXPECT_EQ(got.results[i].outcome, want.results[i].outcome) << i;
  }
}

TEST(ServeResilience, ResumeRejectsMismatchedWorkload) {
  Engine base(serve_toy(), toy_weights(), small_engine_config());
  add_workload(base);
  std::vector<EngineCheckpoint> cks;
  Engine::RunOptions opts;
  opts.checkpoint_every = 2;
  opts.on_checkpoint = [&](const EngineCheckpoint& ck, sim::DeviceContext&) {
    cks.push_back(ck);
  };
  sim::Cluster c1({sim::Topology::single_node(1)});
  c1.run([&](sim::DeviceContext& ctx) { base.run(ctx, opts); });
  ASSERT_FALSE(cks.empty());

  Engine other(serve_toy(), toy_weights(), small_engine_config());
  other.add_request(prompt_of(990, 8), 2, 0.0);  // different request set
  Engine::RunOptions ropts;
  ropts.resume = &cks.back();
  sim::Cluster c2({sim::Topology::single_node(1)});
  EXPECT_THROW(
      c2.run([&](sim::DeviceContext& ctx) { other.run(ctx, ropts); }),
      SchedulerInvariantError);
}

// --- crash recovery ---------------------------------------------------------

ServeReport fault_free_baseline() {
  Engine engine(serve_toy(), toy_weights(), small_engine_config());
  add_workload(engine);
  return run_on_single_device(engine);
}

TEST(ServeResilience, CrashRecoveryCompletesWithSameTokens) {
  const ServeReport want = fault_free_baseline();
  const double makespan = want.metrics.makespan_s;
  ASSERT_GT(makespan, 0.0);

  Engine engine(serve_toy(), toy_weights(), small_engine_config());
  add_workload(engine);
  ServeResilienceConfig rc;
  rc.checkpoint_every = 2;
  sim::FaultPlan::CrashDevice crash;
  crash.rank = 0;
  crash.at_time_s = 0.5 * makespan;
  rc.faults.crashes.push_back(crash);

  const ResilientServeReport rep = serve_with_recovery(engine, rc);
  ASSERT_EQ(rep.recoveries.size(), 1u);
  EXPECT_EQ(rep.recoveries[0].failed_rank, 0);
  EXPECT_EQ(rep.recoveries[0].cause_code, "injected_fault");
  EXPECT_GE(rep.recoveries[0].fail_time_s, 0.5 * makespan);
  EXPECT_GT(rep.recoveries[0].resumed_iteration, 0);
  EXPECT_GT(rep.recoveries[0].restore_s, 0.0);
  EXPECT_GT(rep.checkpoints, 0);

  // Same tokens come out; only the times shift by the recovery delay.
  ASSERT_EQ(rep.report.results.size(), want.results.size());
  for (std::size_t i = 0; i < want.results.size(); ++i) {
    EXPECT_EQ(rep.report.results[i].generated, want.results[i].generated)
        << i;
    EXPECT_EQ(rep.report.results[i].outcome, want.results[i].outcome) << i;
    EXPECT_GE(rep.report.results[i].finish_s, want.results[i].finish_s) << i;
  }
  EXPECT_GE(rep.report.metrics.makespan_s, makespan);
}

TEST(ServeResilience, CheckpointlessCrashRestartsFromScratch) {
  const ServeReport want = fault_free_baseline();

  Engine engine(serve_toy(), toy_weights(), small_engine_config());
  add_workload(engine);
  ServeResilienceConfig rc;
  rc.checkpoint_every = 0;  // no checkpoints: recovery replays everything
  sim::FaultPlan::CrashDevice crash;
  crash.rank = 0;
  crash.at_time_s = 0.5 * want.metrics.makespan_s;
  rc.faults.crashes.push_back(crash);

  const ResilientServeReport rep = serve_with_recovery(engine, rc);
  ASSERT_EQ(rep.recoveries.size(), 1u);
  EXPECT_EQ(rep.recoveries[0].resumed_iteration, 0);
  EXPECT_EQ(rep.checkpoints, 0);
  for (std::size_t i = 0; i < want.results.size(); ++i) {
    EXPECT_EQ(rep.report.results[i].generated, want.results[i].generated)
        << i;
  }
}

TEST(ServeResilience, DurableCheckpointsSurviveOnDisk) {
  const fs::path dir = fs::temp_directory_path() / "burst-serve-recover-test";
  fs::remove_all(dir);
  const ServeReport want = fault_free_baseline();

  Engine engine(serve_toy(), toy_weights(), small_engine_config());
  add_workload(engine);
  ServeResilienceConfig rc;
  rc.checkpoint_every = 2;
  rc.snapshot_dir = dir.string();
  sim::FaultPlan::CrashDevice crash;
  crash.rank = 0;
  crash.at_time_s = 0.5 * want.metrics.makespan_s;
  rc.faults.crashes.push_back(crash);

  const ResilientServeReport rep = serve_with_recovery(engine, rc);
  ASSERT_EQ(rep.recoveries.size(), 1u);
  EXPECT_GT(rep.recoveries[0].resumed_iteration, 0);
  EXPECT_FALSE(ServeSnapshotManager(dir.string()).list().empty());
  for (std::size_t i = 0; i < want.results.size(); ++i) {
    EXPECT_EQ(rep.report.results[i].generated, want.results[i].generated)
        << i;
  }
  fs::remove_all(dir);
}

TEST(ServeResilience, BreakerFailsFastDuringRecovery) {
  const ServeReport base = fault_free_baseline();
  const double makespan = base.metrics.makespan_s;

  Engine engine(serve_toy(), toy_weights(), small_engine_config());
  add_workload(engine);
  // A straggler request arriving long after the crash but inside the
  // breaker's cooldown window must fail fast instead of queueing. Checkpoint
  // writes charge disk time on the virtual clock, so the observed failure
  // instant lands a few makespans past the armed crash time — 10x makespan
  // is comfortably after it and far inside the 100x cooldown.
  const std::int64_t late =
      engine.add_request(prompt_of(905, 8), 4, 10.0 * makespan);
  ServeResilienceConfig rc;
  rc.checkpoint_every = 2;
  rc.breaker_cooldown_s = 100.0 * makespan;  // window swallows the arrival
  sim::FaultPlan::CrashDevice crash;
  crash.rank = 0;
  crash.at_time_s = 0.5 * makespan;
  rc.faults.crashes.push_back(crash);

  const ResilientServeReport rep = serve_with_recovery(engine, rc);
  ASSERT_EQ(rep.recoveries.size(), 1u);
  const auto& r = rep.report.results[static_cast<std::size_t>(late)];
  EXPECT_EQ(r.outcome, Outcome::kFailedFast);
  EXPECT_TRUE(r.generated.empty());
  EXPECT_EQ(r.finish_s, r.arrival_s);  // 503 is immediate
  EXPECT_EQ(outcome_http_status(r.outcome), 503);
  EXPECT_EQ(rep.report.metrics.failed_fast, 1);
  // Everyone who arrived before the crash still completes with the
  // fault-free tokens.
  for (std::size_t i = 0; i + 1 < rep.report.results.size(); ++i) {
    EXPECT_EQ(rep.report.results[i].generated, base.results[i].generated);
  }
}

TEST(ServeResilience, UnrecoverableAfterMaxRecoveries) {
  const ServeReport base = fault_free_baseline();
  Engine engine(serve_toy(), toy_weights(), small_engine_config());
  add_workload(engine);
  ServeResilienceConfig rc;
  rc.checkpoint_every = 0;
  rc.max_recoveries = 1;
  // Two crashes: the second exhausts the recovery budget. Checkpointless
  // recovery restarts from scratch, so the second crash (armed at a later
  // time) still fires inside the replay.
  for (const double frac : {0.3, 0.6}) {
    sim::FaultPlan::CrashDevice crash;
    crash.rank = 0;
    crash.at_time_s = frac * base.metrics.makespan_s;
    rc.faults.crashes.push_back(crash);
  }
  EXPECT_THROW(serve_with_recovery(engine, rc), sim::InjectedFaultError);
}

// --- graceful degradation ---------------------------------------------------

TEST(ServeDegrade, WallDeadlineCancelsWithTypedTimeout) {
  // Baseline on the exact two-request workload tells us when request 0
  // would finish unharmed; a deadline at half that must cancel it.
  const auto build = [](double timeout_s) {
    Engine engine(serve_toy(), toy_weights(), small_engine_config());
    Request r;
    r.prompt = prompt_of(901, 24);
    r.max_new_tokens = 6;
    r.timeout_s = timeout_s;
    engine.add_request(std::move(r));
    engine.add_request(prompt_of(902, 16), 8, 0.0);
    return run_on_single_device(engine);
  };
  const ServeReport base = build(kInf);
  ASSERT_EQ(base.results[0].outcome, Outcome::kCompleted);
  const double deadline = 0.5 * base.results[0].finish_s;

  const ServeReport rep = build(deadline);
  const auto& timed = rep.results[0];
  EXPECT_EQ(timed.outcome, Outcome::kTimedOut);
  EXPECT_EQ(outcome_http_status(timed.outcome), 504);
  EXPECT_LT(timed.generated.size(), 6u);  // partial stream survives
  EXPECT_GT(timed.finish_s, timed.arrival_s + deadline);
  EXPECT_EQ(rep.metrics.timeouts, 1);
  // The survivor still completes normally.
  EXPECT_EQ(rep.results[1].outcome, Outcome::kCompleted);
  EXPECT_EQ(rep.results[1].generated.size(), 8u);
}

TEST(ServeDegrade, DefaultTimeoutAppliesWhenRequestCarriesNone) {
  const ServeReport base = fault_free_baseline();
  // The workload's makespan is dominated by arrival spacing, not service
  // time, so the binding knob is the slowest request's own latency: half of
  // it guarantees at least that request overruns its config-default budget.
  double worst_latency = 0.0;
  for (const auto& r : base.results) {
    worst_latency = std::max(worst_latency, r.finish_s - r.arrival_s);
  }
  EngineConfig ec = small_engine_config();
  ec.default_timeout_s = 0.5 * worst_latency;
  Engine engine(serve_toy(), toy_weights(), ec);
  add_workload(engine);
  const ServeReport rep = run_on_single_device(engine);
  EXPECT_GT(rep.metrics.timeouts, 0);
  for (const auto& r : rep.results) {
    if (r.outcome == Outcome::kTimedOut) {
      EXPECT_GT(r.finish_s, r.arrival_s + ec.default_timeout_s);
    }
  }
}

TEST(ServeDegrade, LoadShedDropsLowestPriorityFirst) {
  EngineConfig ec = small_engine_config();
  // One long request owns the whole KV pool, so everyone else queues.
  ec.max_kv_blocks = 4;
  ec.shed_high = 2;
  ec.shed_low = 2;
  Engine engine(serve_toy(), toy_weights(), ec);
  engine.add_request(prompt_of(910, 24), 6, 0.0);  // 4 blocks: fills the pool
  // Six feasible followers queue behind it: two per priority class. One
  // generated token each — the first token falls out of the prefill logits,
  // so survivors never need a decode-growth block while the long request
  // holds the pool (the scheduler does not reserve decode growth).
  const int priorities[] = {2, 0, 1, 2, 0, 1};
  for (int i = 0; i < 6; ++i) {
    Request r;
    r.prompt = prompt_of(911 + static_cast<std::uint64_t>(i), 8);
    r.max_new_tokens = 1;
    r.arrival_s = 1e-9 * (i + 1);
    r.priority = priorities[i];
    engine.add_request(std::move(r));
  }

  const ServeReport rep = run_on_single_device(engine);
  EXPECT_EQ(rep.metrics.shed, 4);
  // Lowest priority classes are the victims; interactive (2) survives.
  for (std::size_t i = 1; i < rep.results.size(); ++i) {
    const int prio = priorities[i - 1];
    if (prio == 2) {
      EXPECT_EQ(rep.results[i].outcome, Outcome::kCompleted) << i;
    } else {
      EXPECT_EQ(rep.results[i].outcome, Outcome::kShed) << i;
      EXPECT_EQ(outcome_http_status(rep.results[i].outcome), 503);
      EXPECT_TRUE(rep.results[i].generated.empty()) << i;
    }
  }
}

TEST(ServeDegrade, HopelessTpotDeadlineDegradesToTimeout) {
  EngineConfig ec = small_engine_config();
  ec.sched.policy = BatchPolicy::kSlo;
  ec.tpot_slack_s = 1e-12;
  Engine engine(serve_toy(), toy_weights(), ec);
  Request strict;
  strict.prompt = prompt_of(920, 16);
  strict.max_new_tokens = 16;
  strict.tpot_target_s = 1e-12;  // far below any iteration floor
  engine.add_request(std::move(strict));
  engine.add_request(prompt_of(921, 16), 4, 0.0);  // no TPOT target

  const ServeReport rep = run_on_single_device(engine);
  EXPECT_EQ(rep.results[0].outcome, Outcome::kTimedOut);
  EXPECT_GE(rep.results[0].generated.size(), 1u);  // got its first token
  EXPECT_LT(rep.results[0].generated.size(), 16u);
  EXPECT_EQ(rep.results[1].outcome, Outcome::kCompleted);
  EXPECT_EQ(rep.results[1].generated.size(), 4u);
}

// --- distributed prefill retry ----------------------------------------------

TEST(ResilientPrefill, CrashShrinksRingAndMatchesFaultFree) {
  const model::ModelConfig cfg = serve_toy();
  const auto prompt = prompt_of(930, 32);

  // Fault-free makespan at world 4 tells us where mid-flight is.
  sim::Cluster probe({sim::Topology::single_node(4)});
  distributed_prefill(probe, cfg, toy_weights(), prompt, 8);
  const double makespan = probe.makespan();
  ASSERT_GT(makespan, 0.0);

  sim::Cluster::Config cc;
  cc.topo = sim::Topology::single_node(4);
  sim::FaultPlan::CrashDevice crash;
  crash.rank = 2;
  crash.at_time_s = 0.5 * makespan;
  cc.faults.crashes.push_back(crash);

  const ResilientPrefillResult out = resilient_distributed_prefill(
      cc, cfg, toy_weights(), prompt, /*block_tokens=*/8);
  EXPECT_EQ(out.attempts, 2);
  // 32 tokens shrink from 4 ranks to the largest divisor below: 2.
  EXPECT_EQ(out.final_world, 2);
  EXPECT_GT(out.wasted_s, 0.0);
  ASSERT_EQ(out.failure_codes.size(), 1u);
  EXPECT_EQ(out.failure_codes[0], "injected_fault");

  // Bit-identical to a fault-free prefill at the final world size.
  sim::Cluster clean({sim::Topology::single_node(out.final_world)});
  const DistPrefillResult want =
      distributed_prefill(clean, cfg, toy_weights(), prompt, 8);
  EXPECT_EQ(out.result.first_token, want.first_token);
  ASSERT_EQ(out.result.cache.len(), want.cache.len());
  for (std::int64_t l = 0; l < cfg.layers; ++l) {
    for (std::int64_t h = 0; h < cfg.num_kv_heads(); ++h) {
      const auto gk = out.result.cache.k_view(l, h, 32);
      const auto wk = want.cache.k_view(l, h, 32);
      const auto gv = out.result.cache.v_view(l, h, 32);
      const auto wv = want.cache.v_view(l, h, 32);
      for (std::int64_t r = 0; r < 32; ++r) {
        for (std::int64_t c = 0; c < cfg.head_dim(); ++c) {
          ASSERT_EQ(gk(r, c), wk(r, c)) << l << " " << h << " " << r;
          ASSERT_EQ(gv(r, c), wv(r, c)) << l << " " << h << " " << r;
        }
      }
    }
  }
}

TEST(ResilientPrefill, MessageLossRetriesWithoutShrinking) {
  const model::ModelConfig cfg = serve_toy();
  const auto prompt = prompt_of(931, 32);

  sim::Cluster::Config cc;
  cc.topo = sim::Topology::single_node(4);
  // Four consecutive drops on one link exhaust the communicator's send
  // attempts, surfacing CommTimeoutError; the retry consumes the budget via
  // advance_plan and succeeds at the same world size.
  sim::FaultPlan::DropMessages drop;
  drop.src = 1;
  drop.dst = 2;
  drop.count = 4;
  cc.faults.drops.push_back(drop);

  const ResilientPrefillResult out = resilient_distributed_prefill(
      cc, cfg, toy_weights(), prompt, 8);
  EXPECT_EQ(out.attempts, 2);
  EXPECT_EQ(out.final_world, 4);
  ASSERT_EQ(out.failure_codes.size(), 1u);
  EXPECT_EQ(out.failure_codes[0], "comm_timeout");

  sim::Cluster clean({sim::Topology::single_node(4)});
  const DistPrefillResult want =
      distributed_prefill(clean, cfg, toy_weights(), prompt, 8);
  EXPECT_EQ(out.result.first_token, want.first_token);
}

TEST(ResilientPrefill, RetriesExhaustedRethrows) {
  const model::ModelConfig cfg = serve_toy();
  const auto prompt = prompt_of(932, 32);

  sim::Cluster::Config cc;
  cc.topo = sim::Topology::single_node(4);
  // Rank 0 survives every shrink, so a stack of rank-0 crashes at t=0
  // fires on every attempt; the supervisor runs out and rethrows.
  for (int i = 0; i < 8; ++i) {
    sim::FaultPlan::CrashDevice crash;
    crash.rank = 0;
    crash.at_time_s = 0.0;
    cc.faults.crashes.push_back(crash);
  }
  PrefillRetryConfig retry;
  retry.max_attempts = 3;
  EXPECT_THROW(resilient_distributed_prefill(cc, cfg, toy_weights(), prompt,
                                             8, kernels::MaskSpec::causal(),
                                             retry),
               burst::Error);
}

}  // namespace
}  // namespace burst::serve
