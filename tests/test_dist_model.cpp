// End-to-end integration: a full distributed training step (embedding ->
// N transformer blocks with distributed attention -> fused LM head + loss ->
// backward with checkpoint recomputation -> gradient all-reduce) must equal
// the serial reference bit-for-bit up to fp32 reassociation, for every
// attention implementation and every checkpointing strategy.
#include "model/dist_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <mutex>
#include <tuple>

#include "comm/communicator.hpp"
#include "comm/sim_transport.hpp"
#include "model/transformer.hpp"
#include "sim/cluster.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace burst::model {
namespace {

using core::Balance;
using core::CkptConfig;
using core::CkptStrategy;
using kernels::MaskSpec;
using sim::Cluster;
using sim::DeviceContext;
using sim::Topology;
using tensor::Rng;
using tensor::Tensor;

constexpr std::int64_t kSeq = 32;  // +1 target token appended

struct Fixture {
  ModelConfig cfg = ModelConfig::toy();
  ModelWeights weights = ModelWeights::init(cfg, 41);
  Tensor tokens;

  Fixture() {
    Rng rng(43);
    tokens = rng.token_ids(kSeq + 1, cfg.vocab);
  }
};

void expect_grads_close(const ModelGrads& got, const ModelGrads& ref,
                        float tol) {
  for (std::size_t l = 0; l < ref.layers.size(); ++l) {
    EXPECT_LT(tensor::max_abs_diff(got.layers[l].wq, ref.layers[l].wq), tol)
        << "wq layer " << l;
    EXPECT_LT(tensor::max_abs_diff(got.layers[l].wk, ref.layers[l].wk), tol);
    EXPECT_LT(tensor::max_abs_diff(got.layers[l].wv, ref.layers[l].wv), tol);
    EXPECT_LT(tensor::max_abs_diff(got.layers[l].wo, ref.layers[l].wo), tol);
    EXPECT_LT(tensor::max_abs_diff(got.layers[l].w1, ref.layers[l].w1), tol);
    EXPECT_LT(tensor::max_abs_diff(got.layers[l].w2, ref.layers[l].w2), tol);
  }
  EXPECT_LT(tensor::max_abs_diff(got.w_embed, ref.w_embed), tol);
  EXPECT_LT(tensor::max_abs_diff(got.w_head, ref.w_head), tol);
}

DistStepResult run_distributed(const Fixture& fx, const DistTrainConfig& cfg,
                               const Topology& topo) {
  Cluster cluster({topo});
  DistStepResult result;
  std::mutex mu;
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    DistStepResult r = dist_train_step(comm, cfg, fx.weights, fx.tokens);
    if (ctx.rank() == 0) {
      std::lock_guard lock(mu);
      result = std::move(r);
    }
  });
  return result;
}

using ImplCase = std::tuple<AttnImpl, Balance, CkptStrategy>;

class DistModel : public ::testing::TestWithParam<ImplCase> {};

TEST_P(DistModel, MatchesSerialReference) {
  const auto [impl, balance, ckpt] = GetParam();
  Fixture fx;
  auto serial = serial_train_step(fx.cfg, fx.weights, fx.tokens,
                                  MaskSpec::causal());

  DistTrainConfig cfg;
  cfg.model = fx.cfg;
  cfg.impl = impl;
  cfg.balance = balance;
  cfg.ckpt = CkptConfig{ckpt, 0.5};
  cfg.usp_head_parallel = 2;
  DistStepResult dist = run_distributed(fx, cfg, Topology::single_node(4));

  EXPECT_NEAR(dist.loss, serial.loss, 1e-4);
  expect_grads_close(dist.grads, serial.grads, 2e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    RingFamily, DistModel,
    ::testing::Combine(::testing::Values(AttnImpl::kBurst, AttnImpl::kRing),
                       ::testing::Values(Balance::kZigzag, Balance::kStriped,
                                         Balance::kContiguous),
                       ::testing::Values(CkptStrategy::kNone,
                                         CkptStrategy::kFull,
                                         CkptStrategy::kSelectivePP,
                                         CkptStrategy::kSeqSelective)));

INSTANTIATE_TEST_SUITE_P(
    HeadFamily, DistModel,
    ::testing::Combine(::testing::Values(AttnImpl::kUlysses, AttnImpl::kUsp),
                       ::testing::Values(Balance::kContiguous),
                       ::testing::Values(CkptStrategy::kSelectivePP)));

TEST(DistModelTopo, DoubleRingMultiNodeMatchesSerial) {
  Fixture fx;
  auto serial =
      serial_train_step(fx.cfg, fx.weights, fx.tokens, MaskSpec::causal());
  DistTrainConfig cfg;
  cfg.model = fx.cfg;
  cfg.impl = AttnImpl::kBurst;
  cfg.balance = Balance::kZigzag;
  cfg.ckpt = CkptConfig{CkptStrategy::kSeqSelective, 0.5};
  cfg.topo_aware = true;
  DistStepResult dist = run_distributed(fx, cfg, Topology::multi_node(2, 2));
  EXPECT_NEAR(dist.loss, serial.loss, 1e-4);
  expect_grads_close(dist.grads, serial.grads, 2e-3f);
}

TEST(DistModelTopo, NaiveLmHeadMatchesFused) {
  Fixture fx;
  DistTrainConfig cfg;
  cfg.model = fx.cfg;
  cfg.impl = AttnImpl::kBurst;
  cfg.fused_lm_head = true;
  DistStepResult fused = run_distributed(fx, cfg, Topology::single_node(2));
  cfg.fused_lm_head = false;
  DistStepResult naive = run_distributed(fx, cfg, Topology::single_node(2));
  EXPECT_NEAR(fused.loss, naive.loss, 1e-5);
  expect_grads_close(fused.grads, naive.grads, 1e-4f);
}

// The paper's memory ordering (Figure 7): for the stored-activation share,
// none > selective++ > seq-selective > full; and the fused LM head beats the
// naive one. Verified against the simulator's real per-device peaks.
TEST(DistModelMemory, CheckpointStrategiesOrderPeakMemory) {
  Fixture fx;
  const auto peak_for = [&](CkptStrategy s, bool fused) {
    DistTrainConfig cfg;
    cfg.model = fx.cfg;
    cfg.impl = AttnImpl::kBurst;
    cfg.ckpt = CkptConfig{s, 0.5};
    cfg.fused_lm_head = fused;
    Cluster cluster({Topology::single_node(4)});
    cluster.run([&](DeviceContext& ctx) {
      comm::SimTransport comm_tp(ctx);
      comm::Communicator comm(comm_tp);
      dist_train_step(comm, cfg, fx.weights, fx.tokens);
    });
    return cluster.stats()[0].peak_mem_bytes;
  };

  const auto none = peak_for(CkptStrategy::kNone, true);
  const auto spp = peak_for(CkptStrategy::kSelectivePP, true);
  const auto seq = peak_for(CkptStrategy::kSeqSelective, true);
  const auto full = peak_for(CkptStrategy::kFull, true);
  EXPECT_GT(none, spp);
  EXPECT_GT(spp, seq);
  EXPECT_GT(seq, full);

  // The fused-vs-naive LM head contrast needs a local shard longer than the
  // fused sequence block (32 rows), so use a longer sequence on 2 devices.
  Rng rng(53);
  Tensor long_tokens = rng.token_ids(129, fx.cfg.vocab);
  const auto head_peak = [&](bool fused) {
    DistTrainConfig cfg;
    cfg.model = fx.cfg;
    cfg.impl = AttnImpl::kBurst;
    cfg.ckpt = CkptConfig{CkptStrategy::kFull, 0.5};
    cfg.fused_lm_head = fused;
    Cluster cluster({Topology::single_node(2)});
    cluster.run([&](DeviceContext& ctx) {
      comm::SimTransport comm_tp(ctx);
      comm::Communicator comm(comm_tp);
      dist_train_step(comm, cfg, fx.weights, long_tokens);
    });
    return cluster.stats()[0].peak_mem_bytes;
  };
  EXPECT_GT(head_peak(false), head_peak(true));
}

TEST(DistModelTraining, DistributedSgdConvergesLikeSerial) {
  Fixture fx;
  ModelWeights w_serial = fx.weights;
  ModelWeights w_dist = fx.weights;
  const MaskSpec mask = MaskSpec::causal();

  DistTrainConfig cfg;
  cfg.model = fx.cfg;
  cfg.impl = AttnImpl::kBurst;
  cfg.balance = Balance::kZigzag;

  Cluster cluster({Topology::single_node(2)});
  double dist_loss = 0.0;
  double serial_final = 0.0;
  for (int iter = 0; iter < 3; ++iter) {
    auto s = serial_train_step(fx.cfg, w_serial, fx.tokens, mask);
    apply_sgd(w_serial, s.grads, 0.05f);
    serial_final = s.loss;

    std::mutex mu;
    cluster.run([&](DeviceContext& ctx) {
      comm::SimTransport comm_tp(ctx);
      comm::Communicator comm(comm_tp);
      auto r = dist_train_step(comm, cfg, w_dist, fx.tokens);
      if (ctx.rank() == 0) {
        std::lock_guard lock(mu);
        dist_loss = r.loss;
        // All ranks hold identical all-reduced grads; rank 0 applies.
        apply_sgd(w_dist, r.grads, 0.05f);
      }
    });
    EXPECT_NEAR(dist_loss, serial_final, 5e-3) << "iter " << iter;
  }
}

}  // namespace
}  // namespace burst::model
