#include "kernels/lm_head.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace burst::kernels {
namespace {

using tensor::Rng;
using tensor::Tensor;

std::vector<std::int64_t> random_targets(Rng& rng, std::int64_t n,
                                         std::int64_t v) {
  std::vector<std::int64_t> t(static_cast<std::size_t>(n));
  for (auto& x : t) {
    x = rng.next_index(v);
  }
  return t;
}

TEST(NaiveLmHead, LossMatchesManualTwoTokenCase) {
  // d=1, v=2, W = [[1], [0]]; H = [[2], [3]]; logits rows: [2,0], [3,0].
  Tensor h(2, 1);
  h(0, 0) = 2.0f;
  h(1, 0) = 3.0f;
  Tensor w(2, 1);
  w(0, 0) = 1.0f;
  w(1, 0) = 0.0f;
  std::vector<std::int64_t> targets = {0, 1};
  LmHeadResult r = naive_lm_head_loss(h, w, targets);
  const double l0 = std::log(std::exp(2.0) + 1.0) - 2.0;
  const double l1 = std::log(std::exp(3.0) + 1.0) - 0.0;
  EXPECT_NEAR(r.loss, (l0 + l1) / 2.0, 1e-6);
}

TEST(NaiveLmHead, GradcheckFiniteDifferences) {
  Rng rng(71);
  const std::int64_t n = 6;
  const std::int64_t d = 5;
  const std::int64_t v = 7;
  Tensor h = rng.gaussian(n, d, 0.8f);
  Tensor w = rng.gaussian(v, d, 0.8f);
  auto targets = random_targets(rng, n, v);

  LmHeadResult r = naive_lm_head_loss(h, w, targets);
  const float eps = 1e-3f;
  for (std::int64_t idx : {std::int64_t{0}, n * d - 1, n * d / 2}) {
    const float orig = h.data()[idx];
    h.data()[idx] = orig + eps;
    const double lp = naive_lm_head_loss(h, w, targets).loss;
    h.data()[idx] = orig - eps;
    const double lm = naive_lm_head_loss(h, w, targets).loss;
    h.data()[idx] = orig;
    EXPECT_NEAR(r.dh.data()[idx], (lp - lm) / (2.0 * eps), 1e-3);
  }
  for (std::int64_t idx : {std::int64_t{0}, v * d - 1, v * d / 2}) {
    const float orig = w.data()[idx];
    w.data()[idx] = orig + eps;
    const double lp = naive_lm_head_loss(h, w, targets).loss;
    w.data()[idx] = orig - eps;
    const double lm = naive_lm_head_loss(h, w, targets).loss;
    w.data()[idx] = orig;
    EXPECT_NEAR(r.dw.data()[idx], (lp - lm) / (2.0 * eps), 1e-3);
  }
}

// Property sweep: both tiled variants must reproduce the naive results for
// block sizes that divide, straddle, and exceed the problem dimensions.
class TiledLmHead
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {
};

TEST_P(TiledLmHead, FusedMatchesNaive) {
  const auto [bs, bv] = GetParam();
  Rng rng(83);
  const std::int64_t n = 24;
  const std::int64_t d = 10;
  const std::int64_t v = 40;
  Tensor h = rng.gaussian(n, d, 0.7f);
  Tensor w = rng.gaussian(v, d, 0.7f);
  auto targets = random_targets(rng, n, v);

  LmHeadResult ref = naive_lm_head_loss(h, w, targets);
  LmHeadResult fused = fused_lm_head_loss(h, w, targets, bs, bv);
  EXPECT_NEAR(fused.loss, ref.loss, 1e-5);
  EXPECT_LT(tensor::max_abs_diff(fused.dh, ref.dh), 1e-5f);
  EXPECT_LT(tensor::max_abs_diff(fused.dw, ref.dw), 1e-5f);
}

TEST_P(TiledLmHead, RecomputeMatchesNaive) {
  const auto [bs, bv] = GetParam();
  Rng rng(89);
  const std::int64_t n = 20;
  const std::int64_t d = 8;
  const std::int64_t v = 33;
  Tensor h = rng.gaussian(n, d, 0.7f);
  Tensor w = rng.gaussian(v, d, 0.7f);
  auto targets = random_targets(rng, n, v);

  LmHeadResult ref = naive_lm_head_loss(h, w, targets);
  LmHeadResult rec = tiled_recompute_lm_head_loss(h, w, targets, bs, bv);
  EXPECT_NEAR(rec.loss, ref.loss, 1e-5);
  EXPECT_LT(tensor::max_abs_diff(rec.dh, ref.dh), 1e-5f);
  EXPECT_LT(tensor::max_abs_diff(rec.dw, ref.dw), 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(
    BlockSizes, TiledLmHead,
    ::testing::Values(std::make_tuple(4, 8), std::make_tuple(7, 9),
                      std::make_tuple(24, 40), std::make_tuple(1, 1),
                      std::make_tuple(100, 100), std::make_tuple(5, 40)));

TEST(LmHeadMemory, NaiveStoresFullLogits) {
  Rng rng(97);
  const std::int64_t n = 16;
  const std::int64_t d = 4;
  const std::int64_t v = 32;
  Tensor h = rng.gaussian(n, d, 1.0f);
  Tensor w = rng.gaussian(v, d, 1.0f);
  auto targets = random_targets(rng, n, v);
  LmHeadResult r = naive_lm_head_loss(h, w, targets);
  EXPECT_EQ(r.peak_scratch_bytes,
            static_cast<std::uint64_t>(n * v) * sizeof(float));
}

TEST(LmHeadMemory, FusedStoresOneSequenceStrip) {
  Rng rng(101);
  const std::int64_t n = 16;
  const std::int64_t d = 4;
  const std::int64_t v = 32;
  const std::int64_t bs = 4;
  Tensor h = rng.gaussian(n, d, 1.0f);
  Tensor w = rng.gaussian(v, d, 1.0f);
  auto targets = random_targets(rng, n, v);
  LmHeadResult r = fused_lm_head_loss(h, w, targets, bs, 8);
  // Strip cache: bs x v, not n x v.
  EXPECT_EQ(r.peak_scratch_bytes,
            static_cast<std::uint64_t>(bs * v) * sizeof(float));
}

TEST(LmHeadMemory, RecomputeStoresOneTile) {
  Rng rng(103);
  const std::int64_t n = 16;
  const std::int64_t d = 4;
  const std::int64_t v = 32;
  const std::int64_t bs = 4;
  const std::int64_t bv = 8;
  Tensor h = rng.gaussian(n, d, 1.0f);
  Tensor w = rng.gaussian(v, d, 1.0f);
  auto targets = random_targets(rng, n, v);
  LmHeadResult r = tiled_recompute_lm_head_loss(h, w, targets, bs, bv);
  EXPECT_EQ(r.peak_scratch_bytes,
            static_cast<std::uint64_t>(bs * bv) * sizeof(float));
}

TEST(LmHeadFlops, RecomputePaysExtraForwardAndFusedDoesNot) {
  Rng rng(107);
  const std::int64_t n = 16;
  const std::int64_t d = 4;
  const std::int64_t v = 32;
  Tensor h = rng.gaussian(n, d, 1.0f);
  Tensor w = rng.gaussian(v, d, 1.0f);
  auto targets = random_targets(rng, n, v);

  const std::uint64_t base = static_cast<std::uint64_t>(n * v * d);
  LmHeadResult naive = naive_lm_head_loss(h, w, targets);
  LmHeadResult fused = fused_lm_head_loss(h, w, targets, 4, 8);
  LmHeadResult rec = tiled_recompute_lm_head_loss(h, w, targets, 4, 8);

  EXPECT_EQ(naive.flops, 6 * base);  // 2 forward + 4 backward
  EXPECT_EQ(fused.flops, 6 * base);  // Algorithm 3: no recompute
  EXPECT_EQ(rec.flops, 8 * base);    // + 2 recompute in backward
}

TEST(LmHead, DeterministicAcrossCalls) {
  Rng rng(109);
  const std::int64_t n = 12;
  const std::int64_t d = 6;
  const std::int64_t v = 20;
  Tensor h = rng.gaussian(n, d, 1.0f);
  Tensor w = rng.gaussian(v, d, 1.0f);
  auto targets = random_targets(rng, n, v);
  LmHeadResult a = fused_lm_head_loss(h, w, targets, 4, 8);
  LmHeadResult b = fused_lm_head_loss(h, w, targets, 4, 8);
  EXPECT_EQ(a.loss, b.loss);
  EXPECT_FLOAT_EQ(tensor::max_abs_diff(a.dh, b.dh), 0.0f);
  EXPECT_FLOAT_EQ(tensor::max_abs_diff(a.dw, b.dw), 0.0f);
}

}  // namespace
}  // namespace burst::kernels
