#include "sim/cluster.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/memory.hpp"
#include "sim/topology.hpp"

namespace burst::sim {
namespace {

TEST(Topology, RankMapping) {
  Topology t = Topology::multi_node(2, 4);
  EXPECT_EQ(t.world_size(), 8);
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(3), 0);
  EXPECT_EQ(t.node_of(4), 1);
  EXPECT_EQ(t.local_rank(6), 2);
  EXPECT_TRUE(t.same_node(1, 3));
  EXPECT_FALSE(t.same_node(3, 4));
}

TEST(Topology, TransferTimeUsesCorrectLink) {
  Topology t = Topology::multi_node(2, 2);
  t.intra = {1e-6, 100e9};
  t.inter = {10e-6, 10e9};
  // 1 GB intra: 1us + 0.01 s; inter: 10us + 0.1 s.
  EXPECT_NEAR(t.transfer_time(0, 1, 1'000'000'000ull), 0.010001, 1e-9);
  EXPECT_NEAR(t.transfer_time(1, 2, 1'000'000'000ull), 0.10001, 1e-8);
}

TEST(VirtualClock, StreamsAdvanceIndependently) {
  VirtualClock c;
  c.advance(kCompute, 1.0);
  c.advance(kIntraComm, 0.5);
  EXPECT_DOUBLE_EQ(c.now(kCompute), 1.0);
  EXPECT_DOUBLE_EQ(c.now(kIntraComm), 0.5);
  EXPECT_DOUBLE_EQ(c.now(kInterComm), 0.0);
  EXPECT_DOUBLE_EQ(c.elapsed(), 1.0);
}

TEST(VirtualClock, EventsCreateCrossStreamDependencies) {
  VirtualClock c;
  c.advance(kIntraComm, 2.0);
  Event e = c.record(kIntraComm);
  c.wait(kCompute, e);
  EXPECT_DOUBLE_EQ(c.now(kCompute), 2.0);
  // Waiting on an earlier event must not move time backwards.
  c.advance(kCompute, 1.0);
  c.wait(kCompute, e);
  EXPECT_DOUBLE_EQ(c.now(kCompute), 3.0);
}

TEST(VirtualClock, SyncAllJoinsStreams) {
  VirtualClock c;
  c.advance(kInterComm, 5.0);
  c.sync_all();
  EXPECT_DOUBLE_EQ(c.now(kCompute), 5.0);
  EXPECT_DOUBLE_EQ(c.now(kIntraComm), 5.0);
}

TEST(MemoryTracker, TracksPeak) {
  MemoryTracker mem;
  mem.alloc(100, "a");
  mem.alloc(50, "b");
  mem.free(100);
  mem.alloc(20, "c");
  EXPECT_EQ(mem.used(), 70u);
  EXPECT_EQ(mem.peak(), 150u);
}

TEST(MemoryTracker, ThrowsOnOverCapacity) {
  MemoryTracker mem(0, 100);
  mem.alloc(90, "a");
  EXPECT_THROW(mem.alloc(20, "b"), DeviceOomError);
  EXPECT_EQ(mem.used(), 90u);  // failed alloc must not be charged
}

TEST(MemoryTracker, OverFreeIsInvariantError) {
  MemoryTracker mem;
  mem.alloc(10, "a");
  EXPECT_THROW(mem.free(20), burst::InvariantError);
}

TEST(ScopedAlloc, FreesOnScopeExit) {
  MemoryTracker mem;
  {
    ScopedAlloc a(mem, 40, "scoped");
    EXPECT_EQ(mem.used(), 40u);
  }
  EXPECT_EQ(mem.used(), 0u);
  EXPECT_EQ(mem.peak(), 40u);
}

TEST(Cluster, RunsOneFunctionPerRank) {
  Cluster cluster({Topology::single_node(4)});
  std::vector<int> seen(4, -1);
  cluster.run([&](DeviceContext& ctx) { seen[ctx.rank()] = ctx.rank(); });
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(seen[r], r);
  }
}

TEST(Cluster, PointToPointDeliversPayloadAndTime) {
  Cluster::Config cfg;
  cfg.topo = Topology::single_node(2);
  cfg.topo.intra = {1e-3, 1e6};  // 1ms latency, 1 MB/s: easy arithmetic
  Cluster cluster(cfg);
  double recv_time = 0.0;
  cluster.run([&](DeviceContext& ctx) {
    if (ctx.rank() == 0) {
      Message m;
      m.bytes = 1000;  // 1 ms serialization
      tensor::Tensor payload(2, 2);
      payload.fill(3.0f);
      m.tensors.push_back(payload);
      ctx.send(1, 7, std::move(m), kIntraComm);
      // Sender's stream advanced by serialization only.
      EXPECT_NEAR(ctx.clock().now(kIntraComm), 1e-3, 1e-12);
    } else {
      Message m = ctx.recv(0, 7, kIntraComm);
      EXPECT_EQ(m.tensors.size(), 1u);
      EXPECT_FLOAT_EQ(m.tensors[0](1, 1), 3.0f);
      recv_time = ctx.clock().now(kIntraComm);
    }
  });
  // Receiver time = latency + serialization = 2 ms.
  EXPECT_NEAR(recv_time, 2e-3, 1e-12);
}

TEST(Cluster, ComputeChargesAtConfiguredRate) {
  Cluster::Config cfg;
  cfg.topo = Topology::single_node(1);
  cfg.flops_per_s = 1e9;
  Cluster cluster(cfg);
  cluster.run([&](DeviceContext& ctx) {
    ctx.compute(2e9);
    EXPECT_DOUBLE_EQ(ctx.clock().now(kCompute), 2.0);
  });
}

TEST(Cluster, BarrierSyncsClocksToMax) {
  Cluster cluster({Topology::single_node(3)});
  cluster.run([&](DeviceContext& ctx) {
    ctx.busy(static_cast<double>(ctx.rank()));
    ctx.barrier();
    EXPECT_DOUBLE_EQ(ctx.clock().elapsed(), 2.0);
  });
}

TEST(Cluster, StatsCapturePeakMemoryAndTraffic) {
  Cluster cluster({Topology::single_node(2)});
  cluster.run([&](DeviceContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.mem().alloc(1234, "x");
      Message m;
      m.bytes = 10;
      ctx.send(1, 0, std::move(m), kIntraComm);
    } else {
      // burst-lint: allow(no-unchecked-recv) raw sim receive; test asserts byte accounting only
      ctx.recv(0, 0, kIntraComm);
    }
  });
  EXPECT_EQ(cluster.stats()[0].peak_mem_bytes, 1234u);
  EXPECT_EQ(cluster.stats()[0].bytes_sent, 10u);
  EXPECT_EQ(cluster.stats()[0].messages_sent, 1u);
  EXPECT_EQ(cluster.stats()[1].bytes_sent, 0u);
}

TEST(Cluster, MakespanIsMaxElapsed) {
  Cluster cluster({Topology::single_node(3)});
  cluster.run([&](DeviceContext& ctx) {
    ctx.busy(ctx.rank() == 1 ? 7.0 : 1.0);
  });
  EXPECT_DOUBLE_EQ(cluster.makespan(), 7.0);
}

// A device failure (e.g. OOM) must abort the cluster: peers blocked on
// receives wake with ClusterAbortedError, and run() rethrows the root cause.
TEST(Cluster, DeviceFailureAbortsBlockedPeers) {
  Cluster::Config cfg;
  cfg.topo = Topology::single_node(2);
  cfg.device_memory_capacity = 100;
  Cluster cluster(cfg);
  EXPECT_THROW(
      cluster.run([&](DeviceContext& ctx) {
        if (ctx.rank() == 0) {
          // burst-lint: allow(no-unchecked-recv) blocks forever; OOM abort on the peer is the assertion
          ctx.recv(1, 0, kIntraComm);  // blocks forever unless aborted
        } else {
          ctx.mem().alloc(1000, "too big");
        }
      }),
      DeviceOomError);
}

TEST(Cluster, DeviceFailureUnblocksBarrier) {
  Cluster::Config cfg;
  cfg.topo = Topology::single_node(2);
  cfg.device_memory_capacity = 100;
  Cluster cluster(cfg);
  EXPECT_THROW(
      cluster.run([&](DeviceContext& ctx) {
        if (ctx.rank() == 0) {
          ctx.barrier();
        } else {
          ctx.mem().alloc(1000, "too big");
        }
      }),
      DeviceOomError);
}

TEST(Cluster, UndeliveredMessagesAreAProtocolError) {
  Cluster cluster({Topology::single_node(2)});
  EXPECT_THROW(cluster.run([&](DeviceContext& ctx) {
    if (ctx.rank() == 0) {
      Message m;
      m.bytes = 1;
      ctx.send(1, 99, std::move(m), kIntraComm);  // nobody receives
    }
  }),
               burst::InvariantError);
}

TEST(Cluster, ReusableAcrossRuns) {
  Cluster cluster({Topology::single_node(2)});
  for (int iter = 0; iter < 3; ++iter) {
    cluster.run([&](DeviceContext& ctx) {
      if (ctx.rank() == 0) {
        Message m;
        m.bytes = 8;
        ctx.send(1, iter, std::move(m), kIntraComm);
      } else {
        // burst-lint: allow(no-unchecked-recv) raw sim receive; test asserts per-iteration clocks
        ctx.recv(0, iter, kIntraComm);
      }
    });
  }
  SUCCEED();
}

// Messages sent on different streams model the separate NVLink/IB rails:
// their serialization must not serialize against each other.
TEST(Cluster, StreamsModelIndependentRails) {
  Cluster::Config cfg;
  cfg.topo = Topology::multi_node(2, 2);
  cfg.topo.intra = {0.0, 1e6};
  cfg.topo.inter = {0.0, 1e6};
  Cluster cluster(cfg);
  cluster.run([&](DeviceContext& ctx) {
    if (ctx.rank() == 0) {
      Message a;
      a.bytes = 1000;  // 1ms on intra stream
      ctx.send(1, 1, std::move(a), kIntraComm);
      Message b;
      b.bytes = 1000;  // 1ms on inter stream
      ctx.send(2, 2, std::move(b), kInterComm);
      // Overlapped rails: elapsed is 1ms, not 2ms.
      EXPECT_NEAR(ctx.clock().elapsed(), 1e-3, 1e-12);
    } else if (ctx.rank() == 1) {
      // burst-lint: allow(no-unchecked-recv) rail-overlap timing is the assertion, not the payload
      ctx.recv(0, 1, kIntraComm);
    } else if (ctx.rank() == 2) {
      // burst-lint: allow(no-unchecked-recv) rail-overlap timing is the assertion, not the payload
      ctx.recv(0, 2, kInterComm);
    }
  });
}

}  // namespace
}  // namespace burst::sim
