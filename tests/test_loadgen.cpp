// Trace-driven load generator: determinism, arrival-process shape,
// heavy-tailed lengths, Zipf tenancy, priority mix, and the Jain index.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "api/loadgen.hpp"

namespace burst::api {
namespace {

LoadGenConfig big_config() {
  LoadGenConfig cfg;
  cfg.seed = 7;
  cfg.requests = 4000;
  cfg.rate_rps = 100.0;
  cfg.tenants = 100;
  cfg.ttft_slo_interactive_s = 0.1;
  cfg.ttft_slo_standard_s = 0.5;
  return cfg;
}

TEST(LoadGen, SameSeedSameTrace) {
  const auto a = LoadGen(big_config()).generate();
  const auto b = LoadGen(big_config()).generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_EQ(a[i].priority, b[i].priority);
    EXPECT_EQ(a[i].prompt_len, b[i].prompt_len);
    EXPECT_EQ(a[i].max_tokens, b[i].max_tokens);
    EXPECT_EQ(a[i].ttft_slo_s, b[i].ttft_slo_s);
    EXPECT_EQ(a[i].prompt_seed, b[i].prompt_seed);
  }
}

TEST(LoadGen, DifferentSeedDifferentTrace) {
  LoadGenConfig other = big_config();
  other.seed = 8;
  const auto a = LoadGen(big_config()).generate();
  const auto b = LoadGen(other).generate();
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size() && !any_diff; ++i) {
    any_diff = a[i].arrival_s != b[i].arrival_s;
  }
  EXPECT_TRUE(any_diff);
}

// Open-loop MMPP: arrivals are sorted, and the mean rate sits between the
// calm rate and the burst rate (the process mixes the two states).
TEST(LoadGen, ArrivalRateBetweenCalmAndBurst) {
  const LoadGenConfig cfg = big_config();
  const auto trace = LoadGen(cfg).generate();
  ASSERT_EQ(trace.size(), 4000u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].arrival_s, trace[i - 1].arrival_s);
  }
  const double span = trace.back().arrival_s;
  ASSERT_GT(span, 0.0);
  const double rate = static_cast<double>(trace.size()) / span;
  EXPECT_GT(rate, cfg.rate_rps);  // bursts push above the calm rate
  EXPECT_LT(rate, cfg.rate_rps * cfg.burst_rate_multiplier);
}

// Lognormal lengths: bounded by the clamps and heavy-tailed (sample mean
// well above sample median).
TEST(LoadGen, LengthsAreClampedAndHeavyTailed) {
  const LoadGenConfig cfg = big_config();
  const auto trace = LoadGen(cfg).generate();
  std::vector<std::int64_t> prompts;
  double sum = 0.0;
  for (const auto& r : trace) {
    EXPECT_GE(r.prompt_len, cfg.prompt_min);
    EXPECT_LE(r.prompt_len, cfg.prompt_max);
    EXPECT_GE(r.max_tokens, cfg.output_min);
    EXPECT_LE(r.max_tokens, cfg.output_max);
    prompts.push_back(r.prompt_len);
    sum += static_cast<double>(r.prompt_len);
  }
  std::sort(prompts.begin(), prompts.end());
  const double mean = sum / static_cast<double>(prompts.size());
  const double median = static_cast<double>(prompts[prompts.size() / 2]);
  EXPECT_GT(mean, 1.05 * median);
}

// Zipf tenancy: a few heavy hitters dominate while the tail stays long.
TEST(LoadGen, TenantsAreZipfSkewed) {
  const LoadGenConfig cfg = big_config();
  const auto trace = LoadGen(cfg).generate();
  std::map<std::int64_t, std::int64_t> counts;
  for (const auto& r : trace) {
    ASSERT_GE(r.tenant, 0);
    ASSERT_LT(r.tenant, cfg.tenants);
    counts[r.tenant] += 1;
  }
  EXPECT_GT(counts.size(), 30u);  // long tail actually shows up
  std::vector<std::int64_t> by_count;
  for (const auto& [tenant, n] : counts) {
    by_count.push_back(n);
  }
  std::sort(by_count.rbegin(), by_count.rend());
  std::int64_t top10 = 0;
  for (std::size_t i = 0; i < 10 && i < by_count.size(); ++i) {
    top10 += by_count[i];
  }
  // With s = 1.1 over 100 tenants the top decile carries most traffic.
  EXPECT_GT(static_cast<double>(top10),
            0.5 * static_cast<double>(trace.size()));
  // Heaviest tenant is (statistically certainly) tenant 0.
  EXPECT_EQ(std::max_element(counts.begin(), counts.end(),
                             [](const auto& a, const auto& b) {
                               return a.second < b.second;
                             })
                ->first,
            0);
}

TEST(LoadGen, PriorityMixAndSlosMatchConfig) {
  const LoadGenConfig cfg = big_config();
  const auto trace = LoadGen(cfg).generate();
  double n_inter = 0.0;
  double n_batch = 0.0;
  for (const auto& r : trace) {
    if (r.priority == Priority::kInteractive) {
      n_inter += 1.0;
      EXPECT_EQ(r.ttft_slo_s, cfg.ttft_slo_interactive_s);
    } else if (r.priority == Priority::kBatch) {
      n_batch += 1.0;
      EXPECT_EQ(r.ttft_slo_s, cfg.ttft_slo_batch_s);
    } else {
      EXPECT_EQ(r.ttft_slo_s, cfg.ttft_slo_standard_s);
    }
  }
  const double n = static_cast<double>(trace.size());
  EXPECT_NEAR(n_inter / n, cfg.p_interactive, 0.05);
  EXPECT_NEAR(n_batch / n, cfg.p_batch, 0.05);
}

TEST(LoadGen, MaterializedPromptsAreDeterministicAndInVocab) {
  const auto a = LoadGen::materialize_prompt(99, 64, 1000);
  const auto b = LoadGen::materialize_prompt(99, 64, 1000);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 64u);
  for (const auto tok : a) {
    EXPECT_GE(tok, 0);
    EXPECT_LT(tok, 1000);
  }
  const auto c = LoadGen::materialize_prompt(100, 64, 1000);
  EXPECT_NE(a, c);
}

TEST(LoadGen, RejectsBadConfig) {
  LoadGenConfig cfg;
  cfg.rate_rps = 0.0;
  EXPECT_THROW(LoadGen{cfg}, std::invalid_argument);
  cfg = LoadGenConfig{};
  cfg.p_interactive = 0.8;
  cfg.p_batch = 0.5;  // mix sums past 1
  EXPECT_THROW(LoadGen{cfg}, std::invalid_argument);
  cfg = LoadGenConfig{};
  cfg.prompt_min = 0;
  EXPECT_THROW(LoadGen{cfg}, std::invalid_argument);
}

TEST(JainIndex, KnownValues) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({1.0, 1.0, 1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index({1.0, 0.0, 0.0, 0.0}), 0.25);
  EXPECT_DOUBLE_EQ(jain_fairness_index({}), 0.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index({0.0, 0.0}), 0.0);
  const double mid = jain_fairness_index({2.0, 1.0});
  EXPECT_GT(mid, 0.25);
  EXPECT_LT(mid, 1.0);
}

}  // namespace
}  // namespace burst::api
