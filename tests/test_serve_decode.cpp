// Incremental decoding parity: the serving path (chunked prefill into a KV
// cache + append-one-query decode) must reproduce the one-shot full forward,
// including GQA head sharing, RoPE global positions, and the distributed
// prefill front-end.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "kernels/flash_attention.hpp"
#include "kernels/index_map.hpp"
#include "kernels/mask.hpp"
#include "model/kv_cache.hpp"
#include "model/transformer.hpp"
#include "serve/dist_prefill.hpp"
#include "sim/cluster.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace burst {
namespace {

using kernels::IndexMap;
using kernels::MaskSpec;
using model::ModelConfig;
using model::ModelWeights;
using model::SequenceKvCache;
using tensor::Rng;
using tensor::Tensor;

ModelConfig serve_toy() {
  ModelConfig cfg = ModelConfig::toy();  // 2 layers, d 32, 4 heads
  cfg.kv_heads = 2;                      // GQA: 2 query heads share a stream
  cfg.use_rope = true;
  return cfg;
}

std::vector<std::int64_t> random_prompt(std::uint64_t seed, std::int64_t n,
                                        std::int64_t vocab) {
  Rng rng(seed);
  std::vector<std::int64_t> p(static_cast<std::size_t>(n));
  for (auto& t : p) {
    t = rng.next_index(vocab);
  }
  return p;
}

// The append-one-query kernel must agree with the blocked tile kernel on the
// same (q, K, V) — it is the same math without the tile machinery.
TEST(FlashDecodeStep, MatchesBlockedKernel) {
  Rng rng(3);
  const std::int64_t nk = 37;
  const std::int64_t d = 16;
  const Tensor q = rng.gaussian(std::int64_t{1}, d);
  const Tensor k = rng.gaussian(nk, d);
  const Tensor v = rng.gaussian(nk, d);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  const MaskSpec mask = MaskSpec::causal();

  const auto ref =
      kernels::flash_forward(q, IndexMap::range(nk - 1, 1), k, v,
                             IndexMap::range(0, nk), mask, scale);

  Tensor o(std::int64_t{1}, d);
  kernels::KernelStats stats;
  const float lse = kernels::flash_decode_step(q.view(), k.view(), v.view(),
                                               nk - 1, mask, scale, o.view(),
                                               &stats);
  EXPECT_NEAR(lse, ref.lse[0], 1e-5f);
  EXPECT_LT(tensor::max_abs_diff(o, ref.o), 1e-5f);
  EXPECT_EQ(stats.flops, kernels::attention_pair_flops(
                             static_cast<std::uint64_t>(nk), d));
}

TEST(FlashDecodeStep, FullyMaskedRowIsZeroWithNegInfLse) {
  Rng rng(5);
  const std::int64_t d = 8;
  const Tensor q = rng.gaussian(std::int64_t{1}, d);
  const Tensor k = rng.gaussian(std::int64_t{4}, d);
  const Tensor v = rng.gaussian(std::int64_t{4}, d);
  Tensor o(std::int64_t{1}, d);
  // Sliding window far behind the query: every key is out of range.
  const float lse = kernels::flash_decode_step(
      q.view(), k.view(), v.view(), /*q_pos=*/10,
      MaskSpec::sliding_window(2), 1.0f, o.view());
  EXPECT_TRUE(std::isinf(lse) && lse < 0.0f);
  for (std::int64_t c = 0; c < d; ++c) {
    // burst-lint: allow(no-naked-float-eq) fully-masked row zeroes its
    // output exactly (0*inf contract)
    EXPECT_EQ(o(0, c), 0.0f);
  }
}

// Chunked prefill through the cache == one-shot forward, for any chunking.
TEST(ServeDecode, ChunkedPrefillMatchesFullForward) {
  const ModelConfig cfg = serve_toy();
  const ModelWeights w = ModelWeights::init(cfg, 41);
  const MaskSpec mask = MaskSpec::causal();
  const auto prompt = random_prompt(43, 24, cfg.vocab);
  const Tensor ref = model::serial_forward_logits(
      cfg, w, prompt.data(), static_cast<std::int64_t>(prompt.size()), mask);

  for (const std::int64_t chunk : {1, 5, 24}) {
    SequenceKvCache cache = SequenceKvCache::create(cfg, 4);
    Tensor last_hidden;
    for (std::int64_t done = 0; done < 24; done += chunk) {
      const std::int64_t n = std::min<std::int64_t>(chunk, 24 - done);
      last_hidden =
          model::forward_prefill_chunk(cfg, w, cache, prompt.data() + done,
                                       n, mask);
    }
    EXPECT_EQ(cache.len(), 24);
    const Tensor logits = model::head_logits(w, last_hidden);
    // Compare the final row (all a decoder needs) against the reference.
    float err = 0.0f;
    for (std::int64_t j = 0; j < cfg.vocab; ++j) {
      err = std::max(err, std::fabs(logits(last_hidden.rows() - 1, j) -
                                    ref(23, j)));
    }
    EXPECT_LT(err, 1e-4f) << "chunk=" << chunk;
  }
}

// The ISSUE's acceptance bar: chunked prefill + 64 autoregressive decode
// steps reproduce the full-forward argmax at every step.
TEST(ServeDecode, DecodeParity64Tokens) {
  const ModelConfig cfg = serve_toy();
  const ModelWeights w = ModelWeights::init(cfg, 47);
  const MaskSpec mask = MaskSpec::causal();
  auto tokens = random_prompt(53, 16, cfg.vocab);  // prompt, then generated

  SequenceKvCache cache = SequenceKvCache::create(cfg, 8);
  // Prefill in uneven chunks (7 + 9) to exercise position offsets.
  model::forward_prefill_chunk(cfg, w, cache, tokens.data(), 7, mask);
  const Tensor hidden =
      model::forward_prefill_chunk(cfg, w, cache, tokens.data() + 7, 9, mask);
  const Tensor prefill_logits =
      model::head_logits(w, hidden.copy_rows(hidden.rows() - 1, 1));
  Tensor row(cfg.vocab);
  for (std::int64_t j = 0; j < cfg.vocab; ++j) {
    row[j] = prefill_logits(0, j);
  }
  std::int64_t next = model::argmax(row);

  for (int step = 0; step < 64; ++step) {
    tokens.push_back(next);
    // Ground truth: full forward over everything decoded so far.
    const Tensor ref = model::serial_forward_logits(
        cfg, w, tokens.data(), static_cast<std::int64_t>(tokens.size()), mask);
    Tensor ref_row(cfg.vocab);
    for (std::int64_t j = 0; j < cfg.vocab; ++j) {
      ref_row[j] = ref(ref.rows() - 1, j);
    }
    const Tensor logits = model::forward_decode(cfg, w, cache, next, mask);
    EXPECT_LT(tensor::max_abs_diff(logits, ref_row), 1e-4f)
        << "step " << step;
    next = model::argmax(logits);
    ASSERT_EQ(next, model::argmax(ref_row)) << "step " << step;
  }
  EXPECT_EQ(cache.len(), 16 + 64);
}

// Distributed chunked prefill (ring attention across 4 devices) assembles
// the same cache and first token as the serial path.
TEST(ServeDecode, DistributedPrefillMatchesSerial) {
  const ModelConfig cfg = serve_toy();
  const ModelWeights w = ModelWeights::init(cfg, 59);
  const MaskSpec mask = MaskSpec::causal();
  const auto prompt = random_prompt(61, 32, cfg.vocab);

  SequenceKvCache serial = SequenceKvCache::create(cfg, 8);
  const Tensor hidden = model::forward_prefill_chunk(
      cfg, w, serial, prompt.data(), 32, mask);
  const Tensor logits =
      model::head_logits(w, hidden.copy_rows(31, 1));
  Tensor row(cfg.vocab);
  for (std::int64_t j = 0; j < cfg.vocab; ++j) {
    row[j] = logits(0, j);
  }

  sim::Cluster cluster({sim::Topology::single_node(4)});
  const auto dist =
      serve::distributed_prefill(cluster, cfg, w, prompt, /*block_tokens=*/8,
                                 mask);
  ASSERT_EQ(dist.cache.len(), 32);
  float kv_err = 0.0f;
  for (std::int64_t l = 0; l < cfg.layers; ++l) {
    for (std::int64_t h = 0; h < cfg.num_kv_heads(); ++h) {
      const auto dk = dist.cache.k_view(l, h, 32);
      const auto sk = serial.k_view(l, h, 32);
      const auto dv = dist.cache.v_view(l, h, 32);
      const auto sv = serial.v_view(l, h, 32);
      for (std::int64_t r = 0; r < 32; ++r) {
        for (std::int64_t c = 0; c < cfg.head_dim(); ++c) {
          kv_err = std::max(kv_err, std::fabs(dk(r, c) - sk(r, c)));
          kv_err = std::max(kv_err, std::fabs(dv(r, c) - sv(r, c)));
        }
      }
    }
  }
  // Ring merge order differs from the blocked kernel's, so layer-1 inputs
  // carry small float-associativity noise.
  EXPECT_LT(kv_err, 2e-3f);
  EXPECT_EQ(dist.first_token, model::argmax(row));

  // The assembled cache decodes: one step must match the serial cache's.
  SequenceKvCache dist_cache = dist.cache;
  SequenceKvCache serial_cache = serial;
  const Tensor a =
      model::forward_decode(cfg, w, dist_cache, dist.first_token, mask);
  const Tensor b =
      model::forward_decode(cfg, w, serial_cache, dist.first_token, mask);
  EXPECT_LT(tensor::max_abs_diff(a, b), 2e-3f);
}

TEST(ServeDecode, DistributedPrefillRejectsIndivisiblePrompt) {
  const ModelConfig cfg = serve_toy();
  const ModelWeights w = ModelWeights::init(cfg, 67);
  sim::Cluster cluster({sim::Topology::single_node(4)});
  EXPECT_THROW(serve::distributed_prefill(
                   cluster, cfg, w, random_prompt(71, 30, cfg.vocab), 8),
               std::invalid_argument);
}

}  // namespace
}  // namespace burst
