#include "kernels/mask.hpp"

#include <gtest/gtest.h>

#include "kernels/index_map.hpp"
#include "tensor/rng.hpp"

namespace burst::kernels {
namespace {

TEST(IndexMap, RangeMapsContiguously) {
  IndexMap m = IndexMap::range(10, 5);
  EXPECT_EQ(m.size(), 5);
  EXPECT_EQ(m.global(0), 10);
  EXPECT_EQ(m.global(4), 14);
  EXPECT_TRUE(m.is_contiguous());
  EXPECT_EQ(m.offset(), 10);
}

TEST(IndexMap, StridedMapsWithStride) {
  IndexMap m = IndexMap::strided(3, 4, 4);
  EXPECT_EQ(m.global(0), 3);
  EXPECT_EQ(m.global(1), 7);
  EXPECT_EQ(m.global(3), 15);
  EXPECT_FALSE(m.is_contiguous());
}

TEST(IndexMap, StrideOneIsContiguous) {
  IndexMap m = IndexMap::strided(5, 1, 3);
  EXPECT_TRUE(m.is_contiguous());
  EXPECT_EQ(m.offset(), 5);
}

TEST(IndexMap, SegmentsConcatenate) {
  IndexMap m = IndexMap::segments({{0, 2}, {10, 3}});
  EXPECT_EQ(m.size(), 5);
  EXPECT_EQ(m.global(0), 0);
  EXPECT_EQ(m.global(1), 1);
  EXPECT_EQ(m.global(2), 10);
  EXPECT_EQ(m.global(4), 12);
  EXPECT_FALSE(m.is_contiguous());
}

TEST(Mask, FullAllowsEverything) {
  MaskSpec m = MaskSpec::full();
  EXPECT_TRUE(m.allowed(0, 100));
  EXPECT_TRUE(m.allowed(100, 0));
}

TEST(Mask, CausalAllowsPastOnly) {
  MaskSpec m = MaskSpec::causal();
  EXPECT_TRUE(m.allowed(5, 5));
  EXPECT_TRUE(m.allowed(5, 0));
  EXPECT_FALSE(m.allowed(5, 6));
}

TEST(Mask, SlidingWindowBand) {
  MaskSpec m = MaskSpec::sliding_window(3);
  EXPECT_TRUE(m.allowed(10, 10));
  EXPECT_TRUE(m.allowed(10, 8));
  EXPECT_FALSE(m.allowed(10, 7));  // q - k == 3 >= window
  EXPECT_FALSE(m.allowed(10, 11));
}

TEST(Mask, DilatedStride) {
  MaskSpec m = MaskSpec::dilated(3);
  EXPECT_TRUE(m.allowed(9, 9));
  EXPECT_TRUE(m.allowed(9, 6));
  EXPECT_TRUE(m.allowed(9, 0));
  EXPECT_FALSE(m.allowed(9, 8));
  EXPECT_FALSE(m.allowed(9, 10));
}

TEST(Mask, BlockSparseUsesBlockMatrix) {
  tensor::Tensor bm = tensor::Tensor::zeros(2, 2);
  bm(0, 0) = 1.0f;
  bm(1, 1) = 1.0f;
  MaskSpec m = MaskSpec::block_sparse(std::move(bm), 4);
  EXPECT_TRUE(m.allowed(0, 3));    // both in block 0
  EXPECT_FALSE(m.allowed(0, 4));   // block 0 -> block 1 disabled
  EXPECT_TRUE(m.allowed(5, 7));    // both in block 1
  EXPECT_FALSE(m.allowed(6, 1));
}

TEST(Mask, BlockSlidingWindowShape) {
  MaskSpec m = MaskSpec::block_sliding_window(4, 2, 8);
  // Block 2 attends blocks 1 and 2 only.
  EXPECT_TRUE(m.allowed(16, 8));    // block 2 -> block 1
  EXPECT_TRUE(m.allowed(16, 23));   // within block 2
  EXPECT_FALSE(m.allowed(16, 0));   // block 0 out of window
  EXPECT_FALSE(m.allowed(16, 24));  // future block
}

// Property: count_allowed's closed forms agree with a brute-force scan for
// every mask kind over random rectangles.
class MaskCount : public ::testing::TestWithParam<int> {};

TEST_P(MaskCount, ClosedFormMatchesBruteForce) {
  tensor::Rng rng(static_cast<std::uint64_t>(GetParam()));
  tensor::Tensor bm(3, 3);
  for (std::int64_t i = 0; i < 9; ++i) {
    bm.data()[i] = rng.next_uniform() < 0.5 ? 0.0f : 1.0f;
  }
  const std::vector<MaskSpec> masks = {
      MaskSpec::full(), MaskSpec::causal(), MaskSpec::sliding_window(5),
      MaskSpec::dilated(3), MaskSpec::block_sparse(bm, 8)};
  for (const auto& mask : masks) {
    for (int trial = 0; trial < 10; ++trial) {
      const std::int64_t q0 = rng.next_index(20);
      const std::int64_t q1 = q0 + rng.next_index(5);
      const std::int64_t k0 = rng.next_index(20);
      const std::int64_t k1 = k0 + rng.next_index(5);
      std::uint64_t brute = 0;
      for (std::int64_t q = q0; q < q1; ++q) {
        for (std::int64_t k = k0; k < k1; ++k) {
          brute += mask.allowed(q, k) ? 1 : 0;
        }
      }
      EXPECT_EQ(mask.count_allowed(q0, q1, k0, k1), brute)
          << "kind=" << static_cast<int>(mask.kind()) << " rect q[" << q0
          << "," << q1 << ") k[" << k0 << "," << k1 << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskCount, ::testing::Values(1, 2, 3, 4, 5));

// Property: classify must be consistent with allowed() — kAll means every
// pair allowed, kNone means no pair allowed.
class MaskClassify : public ::testing::TestWithParam<int> {};

TEST_P(MaskClassify, ConsistentWithAllowed) {
  tensor::Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  const std::vector<MaskSpec> masks = {
      MaskSpec::full(), MaskSpec::causal(), MaskSpec::sliding_window(7),
      MaskSpec::dilated(2),
      MaskSpec::block_sliding_window(4, 2, 8)};
  for (const auto& mask : masks) {
    for (int trial = 0; trial < 20; ++trial) {
      const std::int64_t q0 = rng.next_index(30);
      const std::int64_t q1 = q0 + 1 + rng.next_index(6);
      const std::int64_t k0 = rng.next_index(30);
      const std::int64_t k1 = k0 + 1 + rng.next_index(6);
      const auto cls = mask.classify(q0, q1, k0, k1);
      const std::uint64_t cnt = mask.count_allowed(q0, q1, k0, k1);
      const std::uint64_t area =
          static_cast<std::uint64_t>(q1 - q0) * static_cast<std::uint64_t>(k1 - k0);
      if (cls == MaskSpec::TileClass::kAll) {
        EXPECT_EQ(cnt, area);
      } else if (cls == MaskSpec::TileClass::kNone) {
        EXPECT_EQ(cnt, 0u);
      }
      // kPartial may legitimately cover all/none for the conservative closed
      // forms, so no assertion in that branch.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskClassify, ::testing::Values(1, 2, 3));

TEST(Mask, CausalTotalWorkIsHalfSquare) {
  MaskSpec m = MaskSpec::causal();
  const std::int64_t n = 64;
  EXPECT_EQ(m.count_allowed(0, n, 0, n),
            static_cast<std::uint64_t>(n * (n + 1) / 2));
}

TEST(Mask, SlidingWindowTotalWork) {
  MaskSpec m = MaskSpec::sliding_window(4);
  // Row q attends min(q+1, 4) keys.
  const std::int64_t n = 10;
  std::uint64_t expected = 0;
  for (std::int64_t q = 0; q < n; ++q) {
    expected += static_cast<std::uint64_t>(std::min<std::int64_t>(q + 1, 4));
  }
  EXPECT_EQ(m.count_allowed(0, n, 0, n), expected);
}

}  // namespace
}  // namespace burst::kernels
