// Resilient training driver (src/resilience/driver.hpp): the PR's
// acceptance tests. A device crash injected at step k of a multi-step
// BurstAttention training run must be detected, recovered from the latest
// snapshot, and the completed run must match a fault-free run bit for bit,
// with the recovery visible in the trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <string>

#include "resilience/driver.hpp"
#include "resilience/snapshot.hpp"
#include "sim/cluster.hpp"
#include "sim/trace.hpp"

namespace burst {
namespace {

namespace fs = std::filesystem;

using model::ModelConfig;
using model::ModelWeights;
using resilience::ResilienceConfig;
using resilience::ResilienceReport;
using sim::Topology;

class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    base_ = (fs::temp_directory_path() /
             (std::string("burst-resil-") + info->name()))
                .string();
    fs::remove_all(base_);
  }
  void TearDown() override { fs::remove_all(base_); }

  /// 4-rank BurstAttention training config, 8 steps, snapshot every 2.
  ResilienceConfig base_config(const std::string& subdir) const {
    ResilienceConfig cfg;
    cfg.dist.model = ModelConfig::toy();
    cfg.dist.impl = model::AttnImpl::kBurst;
    cfg.cluster.topo = Topology::single_node(4);
    cfg.total_steps = 8;
    cfg.snapshot_interval = 2;
    cfg.seq_len = 32;
    cfg.snapshot_dir = base_ + "/" + subdir;
    return cfg;
  }

  std::string base_;
};

bool has_event_prefix(const sim::TraceRecorder& trace, int rank,
                      const std::string& prefix) {
  for (const auto& ev : trace.events()) {
    if (ev.rank == rank && ev.name.rfind(prefix, 0) == 0) {
      return true;
    }
  }
  return false;
}

// The headline acceptance test: rank 2 dies at step 5; the driver restores
// the step-4 snapshot, replays, and finishes all 8 steps with weights
// bitwise identical to a fault-free run. Recovery events land in the
// report and on the supervisor trace track.
TEST_F(ResilienceTest, CrashAtStepRecoversBitwiseIdentically) {
  const ModelWeights init = ModelWeights::init(ModelConfig::toy(), 21);

  ResilienceConfig clean = base_config("clean");
  const ResilienceReport ref = resilience::resilient_train_loop(clean, init);
  ASSERT_EQ(ref.steps_completed, 8);
  ASSERT_EQ(ref.recoveries, 0);
  ASSERT_EQ(ref.events.size(), 0u);

  sim::TraceRecorder trace;
  ResilienceConfig faulty = base_config("faulty");
  faulty.cluster.trace = &trace;
  sim::FaultPlan::CrashDevice crash;
  crash.rank = 2;
  crash.at_step = 5;
  faulty.cluster.faults.crashes.push_back(crash);

  const ResilienceReport rep = resilience::resilient_train_loop(faulty, init);
  EXPECT_EQ(rep.steps_completed, 8);
  EXPECT_EQ(rep.recoveries, 1);
  ASSERT_EQ(rep.events.size(), 1u);
  EXPECT_EQ(rep.events[0].failed_step, 5u);
  EXPECT_EQ(rep.events[0].resumed_from_step, 4u);
  EXPECT_EQ(rep.events[0].lost_steps, 1);
  EXPECT_EQ(rep.events[0].failed_rank, 2);
  EXPECT_GE(rep.events[0].restore_time_s, 0.0);
  EXPECT_GT(rep.wasted_virtual_time_s, 0.0);

  // Bitwise-identical final weights and loss curve.
  EXPECT_TRUE(resilience::bitwise_equal(rep.final_weights, ref.final_weights));
  ASSERT_EQ(rep.losses.size(), ref.losses.size());
  for (std::size_t i = 0; i < ref.losses.size(); ++i) {
    EXPECT_EQ(rep.losses[i], ref.losses[i]) << "step " << i;
  }

  // Recovery is visible in the trace: the crash on rank 2's track, the
  // detection/restore on the supervisor track (pid == world_size).
  const int supervisor = 4;
  EXPECT_TRUE(has_event_prefix(trace, 2, "fault:crash"));
  EXPECT_TRUE(has_event_prefix(trace, supervisor, "recovery:detect"));
  EXPECT_TRUE(has_event_prefix(trace, supervisor, "recovery:restore"));
  EXPECT_TRUE(has_event_prefix(trace, supervisor, "snapshot:save"));
}

// Time-keyed crash (mid-step, not at a step boundary) also recovers.
TEST_F(ResilienceTest, CrashAtVirtualTimeRecovers) {
  const ModelWeights init = ModelWeights::init(ModelConfig::toy(), 21);

  ResilienceConfig clean = base_config("clean");
  const ResilienceReport ref = resilience::resilient_train_loop(clean, init);

  ResilienceConfig faulty = base_config("faulty");
  sim::FaultPlan::CrashDevice crash;
  crash.rank = 1;
  crash.at_time_s = 1e-6;  // fires inside the first step's compute
  faulty.cluster.faults.crashes.push_back(crash);

  const ResilienceReport rep = resilience::resilient_train_loop(faulty, init);
  EXPECT_EQ(rep.steps_completed, 8);
  EXPECT_EQ(rep.recoveries, 1);
  ASSERT_EQ(rep.events.size(), 1u);
  EXPECT_EQ(rep.events[0].failed_rank, 1);
  EXPECT_GT(rep.events[0].detect_latency_s, 0.0);
  EXPECT_TRUE(resilience::bitwise_equal(rep.final_weights, ref.final_weights));
}

// A link that drops more frames than the retry budget: the driver recovers
// from the CommTimeoutError, heals the link, and completes. Weights still
// match a fault-free run bitwise — the failed attempt never committed.
TEST_F(ResilienceTest, PersistentLinkFaultHealedAfterRecovery) {
  const ModelWeights init = ModelWeights::init(ModelConfig::toy(), 21);

  ResilienceConfig clean = base_config("clean");
  const ResilienceReport ref = resilience::resilient_train_loop(clean, init);

  ResilienceConfig faulty = base_config("faulty");
  sim::FaultPlan::DropMessages drop;
  drop.src = 0;
  drop.dst = 1;
  drop.count = 1000;  // beyond any retry budget, and re-arms every attempt
  faulty.cluster.faults.drops.push_back(drop);

  const ResilienceReport rep = resilience::resilient_train_loop(faulty, init);
  EXPECT_EQ(rep.steps_completed, 8);
  EXPECT_EQ(rep.recoveries, 1);
  EXPECT_TRUE(resilience::bitwise_equal(rep.final_weights, ref.final_weights));
}

// With remap_on_failure, a dead rank shrinks the world: 4 ranks minus one
// casualty leaves 3 survivors, and the largest feasible zigzag world for a
// 32-token sequence is 2. Training still completes all 8 steps.
TEST_F(ResilienceTest, RemapContinuesOnSurvivors) {
  const ModelWeights init = ModelWeights::init(ModelConfig::toy(), 21);

  ResilienceConfig faulty = base_config("faulty");
  faulty.remap_on_failure = true;
  sim::FaultPlan::CrashDevice crash;
  crash.rank = 3;
  crash.at_step = 3;
  faulty.cluster.faults.crashes.push_back(crash);

  const ResilienceReport rep = resilience::resilient_train_loop(faulty, init);
  EXPECT_EQ(rep.steps_completed, 8);
  EXPECT_EQ(rep.recoveries, 1);
  EXPECT_EQ(rep.final_world_size, 2);
  for (double loss : rep.losses) {
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_GT(loss, 0.0);
  }
}

TEST_F(ResilienceTest, FeasibleWorldSizeRespectsDivisibility) {
  model::DistTrainConfig dc;
  dc.model = ModelConfig::toy();  // 4 heads
  // Zigzag needs 2g | N: for N=32 and 3 survivors, g=2.
  EXPECT_EQ(resilience::feasible_world_size(dc, 32, 3), 2);
  EXPECT_EQ(resilience::feasible_world_size(dc, 32, 4), 4);
  // Ulysses additionally needs g | heads.
  dc.impl = model::AttnImpl::kUlysses;
  dc.balance = core::Balance::kContiguous;
  EXPECT_EQ(resilience::feasible_world_size(dc, 32, 3), 2);
}

// When faults outpace the recovery budget the driver gives up and
// surfaces the root cause instead of looping forever.
TEST_F(ResilienceTest, RecoveryBudgetExhaustedRethrows) {
  const ModelWeights init = ModelWeights::init(ModelConfig::toy(), 21);

  ResilienceConfig faulty = base_config("faulty");
  faulty.max_recoveries = 2;
  for (int i = 0; i < 3; ++i) {
    sim::FaultPlan::CrashDevice crash;
    crash.rank = 1;
    crash.at_step = 1;  // one entry fires per attempt: three strikes
    faulty.cluster.faults.crashes.push_back(crash);
  }

  EXPECT_THROW(resilience::resilient_train_loop(faulty, init),
               sim::InjectedFaultError);
}

}  // namespace
}  // namespace burst
