// API front door: request parsing/validation (typed 400s), end-to-end
// streaming through the in-process server, 429 admission errors, and
// byte-identical replay determinism.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "api/loadgen.hpp"
#include "api/parser.hpp"
#include "api/server.hpp"
#include "obs/error.hpp"

namespace burst::api {
namespace {

// --- parser ----------------------------------------------------------------

TEST(ApiParser, ParsesFullRequest) {
  CompletionRequest req;
  ApiError err;
  ASSERT_TRUE(parse_completion_request(
      R"({"tenant": "acme", "priority": "interactive",
          "prompt": [1, 2, 3], "max_tokens": 7, "ttft_slo_ms": 250})",
      &req, &err));
  EXPECT_EQ(req.tenant, "acme");
  EXPECT_EQ(req.priority, Priority::kInteractive);
  EXPECT_EQ(req.prompt, (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_EQ(req.max_tokens, 7);
  EXPECT_NEAR(req.ttft_slo_s, 0.25, 1e-12);
}

TEST(ApiParser, DefaultsApplyWhenOmitted) {
  CompletionRequest req;
  ApiError err;
  ASSERT_TRUE(parse_completion_request(R"({"prompt": [5]})", &req, &err));
  EXPECT_EQ(req.tenant, "default");
  EXPECT_EQ(req.priority, Priority::kStandard);
  EXPECT_EQ(req.max_tokens, 16);
  EXPECT_LE(req.ttft_slo_s, 0.0);  // no target
}

TEST(ApiParser, RejectsMalformedBodiesWithTyped400) {
  const std::vector<std::string> bad = {
      "",                                      // not an object
      "[1, 2]",                                // wrong top-level type
      R"({"prompt": [1]} trailing)",           // trailing garbage
      R"({"prompt": []})",                     // empty prompt
      R"({"max_tokens": 4})",                  // missing prompt
      R"({"prompt": [1.5]})",                  // non-integer token
      R"({"prompt": [-3]})",                   // negative token
      R"({"prompt": [1], "max_tokens": 0})",   // out-of-range max_tokens
      R"({"prompt": [1], "priority": "vip"})", // unknown priority
      R"({"prompt": [1], "ttft_slo_ms": -1})", // non-positive SLO
      R"({"prompt": [1], "model": "gpt"})",    // unknown field
      R"({"prompt": [1)",                      // truncated
  };
  for (const auto& body : bad) {
    CompletionRequest req;
    ApiError err;
    EXPECT_FALSE(parse_completion_request(body, &req, &err)) << body;
    EXPECT_EQ(err.status, 400) << body;
    EXPECT_EQ(err.code, burst::ErrorCode::kInvalidRequest) << body;
    EXPECT_FALSE(err.message.empty()) << body;
  }
}

TEST(ApiParser, PriorityNamesRoundTrip) {
  for (const Priority p :
       {Priority::kBatch, Priority::kStandard, Priority::kInteractive}) {
    Priority back = Priority::kStandard;
    ASSERT_TRUE(priority_from_name(priority_name(p), &back));
    EXPECT_EQ(back, p);
  }
}

TEST(ApiParser, ErrorJsonCarriesStableCode) {
  ApiError err;
  err.status = 429;
  err.code = burst::ErrorCode::kAdmissionRejected;
  err.message = "queue_full";
  const std::string j = to_json(err);
  EXPECT_NE(j.find("\"status\": 429"), std::string::npos) << j;
  EXPECT_NE(j.find("admission_rejected"), std::string::npos) << j;
}

// --- server ----------------------------------------------------------------

model::ModelConfig serve_toy() {
  model::ModelConfig cfg = model::ModelConfig::toy();
  cfg.kv_heads = 2;
  cfg.use_rope = true;
  return cfg;
}

const model::ModelWeights& toy_weights() {
  static const model::ModelWeights w =
      model::ModelWeights::init(serve_toy(), 73);
  return w;
}

std::string body_for(std::uint64_t seed, std::int64_t len,
                     const std::string& extra = "") {
  const auto prompt =
      LoadGen::materialize_prompt(seed, len, serve_toy().vocab);
  std::ostringstream os;
  os << "{\"prompt\": [";
  for (std::size_t i = 0; i < prompt.size(); ++i) {
    os << (i != 0 ? ", " : "") << prompt[i];
  }
  os << "]" << extra << "}";
  return os.str();
}

TEST(ApiServer, StreamsTokensThenCompletion) {
  ApiServerConfig cfg;
  cfg.engine.block_tokens = 8;
  ApiServer server(serve_toy(), toy_weights(), cfg);
  CollectingSink a;
  CollectingSink b;
  const std::int64_t id_a =
      server.submit(0.0, body_for(11, 24, ", \"max_tokens\": 6"), &a);
  const std::int64_t id_b = server.submit(
      0.0, body_for(12, 16, ", \"max_tokens\": 4, \"tenant\": \"acme\""), &b);
  ASSERT_EQ(id_a, 0);
  ASSERT_EQ(id_b, 1);

  const auto report = server.run();
  EXPECT_EQ(report.completed, 2);
  EXPECT_EQ(report.rejected, 0);
  EXPECT_EQ(report.invalid, 0);

  ASSERT_EQ(a.tokens.size(), 6u);
  ASSERT_EQ(a.completions.size(), 1u);
  EXPECT_TRUE(a.errors.empty());
  for (std::size_t i = 0; i < a.tokens.size(); ++i) {
    EXPECT_EQ(a.tokens[i].request_id, id_a);
    EXPECT_EQ(a.tokens[i].index, static_cast<std::int64_t>(i));
    if (i > 0) {
      EXPECT_GE(a.tokens[i].time_s, a.tokens[i - 1].time_s);
    }
    EXPECT_EQ(a.tokens[i].token, a.completions[0].tokens[i]);
  }
  const auto& done = a.completions[0];
  EXPECT_EQ(done.request_id, id_a);
  EXPECT_EQ(done.tenant, "default");
  EXPECT_EQ(done.usage.prompt_tokens, 24);
  EXPECT_EQ(done.usage.completion_tokens, 6);
  EXPECT_EQ(done.usage.total_tokens(), 30);
  EXPECT_EQ(done.finish_reason, "length");
  EXPECT_GT(done.ttft_s(), 0.0);
  EXPECT_GE(done.finish_s, done.first_token_s);

  ASSERT_EQ(b.completions.size(), 1u);
  EXPECT_EQ(b.completions[0].tenant, "acme");
  EXPECT_EQ(b.completions[0].usage.completion_tokens, 4);
}

TEST(ApiServer, MalformedBodyGets400WithoutRunning) {
  ApiServerConfig cfg;
  ApiServer server(serve_toy(), toy_weights(), cfg);
  CollectingSink sink;
  EXPECT_EQ(server.submit(0.0, "{not json", &sink), -1);
  ASSERT_EQ(sink.errors.size(), 1u);
  EXPECT_EQ(sink.errors[0].first, -1);
  EXPECT_EQ(sink.errors[0].second.status, 400);
  EXPECT_EQ(sink.errors[0].second.code, burst::ErrorCode::kInvalidRequest);
  const auto report = server.run();
  EXPECT_EQ(report.invalid, 1);
  EXPECT_EQ(report.completed, 0);
}

TEST(ApiServer, OutOfVocabTokenGets400) {
  ApiServerConfig cfg;
  ApiServer server(serve_toy(), toy_weights(), cfg);
  CollectingSink sink;
  std::ostringstream os;
  os << "{\"prompt\": [" << serve_toy().vocab << "]}";
  EXPECT_EQ(server.submit(0.0, os.str(), &sink), -1);
  ASSERT_EQ(sink.errors.size(), 1u);
  EXPECT_EQ(sink.errors[0].second.status, 400);
}

TEST(ApiServer, AdmissionRejectionDeliversTyped429) {
  ApiServerConfig cfg;
  cfg.engine.block_tokens = 8;
  cfg.engine.max_kv_blocks = 2;  // 16 KV tokens: no request below can fit
  ApiServer server(serve_toy(), toy_weights(), cfg);
  CollectingSink sink;
  const std::int64_t id =
      server.submit(0.0, body_for(21, 24, ", \"max_tokens\": 6"), &sink);
  ASSERT_EQ(id, 0);
  const auto report = server.run();
  EXPECT_EQ(report.completed, 0);
  EXPECT_EQ(report.rejected, 1);
  EXPECT_TRUE(sink.tokens.empty());
  EXPECT_TRUE(sink.completions.empty());
  ASSERT_EQ(sink.errors.size(), 1u);
  EXPECT_EQ(sink.errors[0].first, id);
  EXPECT_EQ(sink.errors[0].second.status, 429);
  EXPECT_EQ(sink.errors[0].second.code,
            burst::ErrorCode::kAdmissionRejected);
  EXPECT_NE(sink.errors[0].second.message.find("kv_infeasible"),
            std::string::npos);
}

TEST(ApiServer, TenantWeightsInternedStably) {
  ApiServerConfig cfg;
  cfg.tenant_weights = {{"gold", 4.0}, {"bronze", 1.0}};
  ApiServer server(serve_toy(), toy_weights(), cfg);
  EXPECT_EQ(server.tenant_id("gold"), 0);
  EXPECT_EQ(server.tenant_id("bronze"), 1);
  EXPECT_EQ(server.tenant_id("walk-in"), 2);
  EXPECT_EQ(server.tenant_id("gold"), 0);  // stable on re-lookup
  EXPECT_EQ(server.tenant_name(2), "walk-in");
  EXPECT_EQ(server.num_tenants(), 3);
}

// Two servers fed the same submissions produce byte-identical streams —
// the determinism claim the whole front door rests on.
TEST(ApiServer, ReplayIsByteIdentical) {
  const auto play = [&] {
    ApiServerConfig cfg;
    cfg.engine.sched.policy = serve::BatchPolicy::kSlo;
    cfg.engine.block_tokens = 8;
    ApiServer server(serve_toy(), toy_weights(), cfg);
    auto sinks = std::vector<CollectingSink>(4);
    for (std::uint64_t i = 0; i < 4; ++i) {
      server.submit(0.01 * static_cast<double>(i),
                    body_for(40 + i, 16 + 8 * static_cast<std::int64_t>(i),
                             ", \"max_tokens\": 5"),
                    &sinks[i]);
    }
    server.run();
    std::ostringstream os;
    for (const auto& s : sinks) {
      for (const auto& t : s.tokens) {
        os << to_json(t) << "\n";
      }
      for (const auto& c : s.completions) {
        os << to_json(c) << "\n";
      }
      for (const auto& [id, e] : s.errors) {
        os << id << " " << to_json(e) << "\n";
      }
    }
    return os.str();
  };
  const std::string first = play();
  const std::string second = play();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace burst::api
