#include "kernels/flash_attention.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "kernels/reference_attention.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace burst::kernels {
namespace {

using tensor::Rng;
using tensor::Tensor;

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

MaskSpec mask_by_name(const std::string& name) {
  if (name == "full") {
    return MaskSpec::full();
  }
  if (name == "causal") {
    return MaskSpec::causal();
  }
  if (name == "swa") {
    return MaskSpec::sliding_window(17);
  }
  if (name == "dilated") {
    return MaskSpec::dilated(3);
  }
  return MaskSpec::block_sliding_window(/*num_blocks=*/8, /*window_blocks=*/2,
                                        /*block_size=*/12);
}

class FlashVsReference : public ::testing::TestWithParam<std::string> {};

TEST_P(FlashVsReference, ForwardMatchesReference) {
  Rng rng(11);
  const std::int64_t n = 96;
  const std::int64_t d = 16;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  const MaskSpec mask = mask_by_name(GetParam());
  Tensor q = rng.gaussian(n, d, 1.0f);
  Tensor k = rng.gaussian(n, d, 1.0f);
  Tensor v = rng.gaussian(n, d, 1.0f);
  IndexMap id = IndexMap::range(0, n);

  AttnResult flash = flash_forward(q, id, k, v, id, mask, scale);
  RefAttnForward ref = reference_attention_forward(q, id, k, v, id, mask, scale);

  EXPECT_LT(tensor::max_abs_diff(flash.o, ref.o), 2e-5f);
  for (std::int64_t i = 0; i < n; ++i) {
    if (ref.lse[i] == kNegInf) {
      EXPECT_EQ(flash.lse[i], kNegInf);
    } else {
      EXPECT_NEAR(flash.lse[i], ref.lse[i], 2e-4f) << "row " << i;
    }
  }
}

TEST_P(FlashVsReference, BackwardMatchesReference) {
  Rng rng(23);
  const std::int64_t n = 80;
  const std::int64_t d = 12;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  const MaskSpec mask = mask_by_name(GetParam());
  Tensor q = rng.gaussian(n, d, 1.0f);
  Tensor k = rng.gaussian(n, d, 1.0f);
  Tensor v = rng.gaussian(n, d, 1.0f);
  Tensor d_out = rng.gaussian(n, d, 1.0f);
  IndexMap id = IndexMap::range(0, n);

  RefAttnForward ref = reference_attention_forward(q, id, k, v, id, mask, scale);
  RefAttnGrads rg = reference_attention_backward(q, k, v, ref, d_out, scale);

  Tensor dq = Tensor::zeros(n, d);
  Tensor dk = Tensor::zeros(n, d);
  Tensor dv = Tensor::zeros(n, d);
  Tensor dvec = attention_dvec(d_out, ref.o);
  flash_backward_partial(q, id, k, v, id, mask, scale, d_out, ref.lse, dvec,
                         dq, dk, dv);

  EXPECT_LT(tensor::max_abs_diff(dq, rg.dq), 5e-5f);
  EXPECT_LT(tensor::max_abs_diff(dk, rg.dk), 5e-5f);
  EXPECT_LT(tensor::max_abs_diff(dv, rg.dv), 5e-5f);
}

// Splitting K/V into partitions and merging online must equal the monolithic
// result — the exact invariant the ring forward relies on.
TEST_P(FlashVsReference, PartitionedForwardEqualsMonolithic) {
  Rng rng(31);
  const std::int64_t n = 96;
  const std::int64_t d = 8;
  const std::int64_t parts = 4;
  const float scale = 0.3f;
  const MaskSpec mask = mask_by_name(GetParam());
  Tensor q = rng.gaussian(n, d, 1.0f);
  Tensor k = rng.gaussian(n, d, 1.0f);
  Tensor v = rng.gaussian(n, d, 1.0f);
  IndexMap id = IndexMap::range(0, n);

  AttnResult mono = flash_forward(q, id, k, v, id, mask, scale);

  Tensor o = Tensor::zeros(n, d);
  Tensor lse(n);
  lse.fill(kNegInf);
  const std::int64_t chunk = n / parts;
  // Merge partitions in a rotated order to also exercise order independence.
  for (std::int64_t step = 0; step < parts; ++step) {
    const std::int64_t p = (step + 2) % parts;
    Tensor kp = k.copy_rows(p * chunk, chunk);
    Tensor vp = v.copy_rows(p * chunk, chunk);
    IndexMap kmap = IndexMap::range(p * chunk, chunk);
    flash_forward_partial(q, id, kp, vp, kmap, mask, scale, o, lse);
  }

  EXPECT_LT(tensor::max_abs_diff(o, mono.o), 3e-5f);
  for (std::int64_t i = 0; i < n; ++i) {
    if (mono.lse[i] == kNegInf) {
      EXPECT_EQ(lse[i], kNegInf);
    } else {
      EXPECT_NEAR(lse[i], mono.lse[i], 3e-4f);
    }
  }
}

// Summing per-partition backward contributions must equal the monolithic
// gradients — the invariant behind Algorithms 1 and 2.
TEST_P(FlashVsReference, PartitionedBackwardEqualsMonolithic) {
  Rng rng(37);
  const std::int64_t n = 64;
  const std::int64_t d = 8;
  const std::int64_t parts = 4;
  const float scale = 0.25f;
  const MaskSpec mask = mask_by_name(GetParam());
  Tensor q = rng.gaussian(n, d, 1.0f);
  Tensor k = rng.gaussian(n, d, 1.0f);
  Tensor v = rng.gaussian(n, d, 1.0f);
  Tensor d_out = rng.gaussian(n, d, 1.0f);
  IndexMap id = IndexMap::range(0, n);

  RefAttnForward ref = reference_attention_forward(q, id, k, v, id, mask, scale);
  RefAttnGrads rg = reference_attention_backward(q, k, v, ref, d_out, scale);
  Tensor dvec = attention_dvec(d_out, ref.o);

  Tensor dq = Tensor::zeros(n, d);
  Tensor dk = Tensor::zeros(n, d);
  Tensor dv = Tensor::zeros(n, d);
  const std::int64_t chunk = n / parts;
  for (std::int64_t p = 0; p < parts; ++p) {
    Tensor kp = k.copy_rows(p * chunk, chunk);
    Tensor vp = v.copy_rows(p * chunk, chunk);
    IndexMap kmap = IndexMap::range(p * chunk, chunk);
    Tensor dkp = Tensor::zeros(chunk, d);
    Tensor dvp = Tensor::zeros(chunk, d);
    flash_backward_partial(q, id, kp, vp, kmap, mask, scale, d_out, ref.lse,
                           dvec, dq, dkp, dvp);
    for (std::int64_t i = 0; i < chunk; ++i) {
      for (std::int64_t c = 0; c < d; ++c) {
        dk(p * chunk + i, c) += dkp(i, c);
        dv(p * chunk + i, c) += dvp(i, c);
      }
    }
  }

  EXPECT_LT(tensor::max_abs_diff(dq, rg.dq), 5e-5f);
  EXPECT_LT(tensor::max_abs_diff(dk, rg.dk), 5e-5f);
  EXPECT_LT(tensor::max_abs_diff(dv, rg.dv), 5e-5f);
}

INSTANTIATE_TEST_SUITE_P(Masks, FlashVsReference,
                         ::testing::Values("full", "causal", "swa", "dilated",
                                           "blocksparse"));

// Finite-difference check of the full attention gradient chain on a tiny
// problem (loss = sum(O ∘ W) for a fixed random W).
TEST(FlashGradcheck, FiniteDifferences) {
  Rng rng(41);
  const std::int64_t n = 10;
  const std::int64_t d = 4;
  const float scale = 0.5f;
  const MaskSpec mask = MaskSpec::causal();
  Tensor q = rng.gaussian(n, d, 0.7f);
  Tensor k = rng.gaussian(n, d, 0.7f);
  Tensor v = rng.gaussian(n, d, 0.7f);
  Tensor wloss = rng.gaussian(n, d, 1.0f);
  IndexMap id = IndexMap::range(0, n);

  const auto loss_of = [&](const Tensor& qq, const Tensor& kk,
                           const Tensor& vv) {
    AttnResult r = flash_forward(qq, id, kk, vv, id, mask, scale);
    double s = 0.0;
    for (std::int64_t i = 0; i < r.o.numel(); ++i) {
      s += static_cast<double>(r.o.data()[i]) * wloss.data()[i];
    }
    return s;
  };

  AttnResult fwd = flash_forward(q, id, k, v, id, mask, scale);
  Tensor dvec = attention_dvec(wloss, fwd.o);
  Tensor dq = Tensor::zeros(n, d);
  Tensor dk = Tensor::zeros(n, d);
  Tensor dv = Tensor::zeros(n, d);
  flash_backward_partial(q, id, k, v, id, mask, scale, wloss, fwd.lse, dvec,
                         dq, dk, dv);

  const float eps = 1e-3f;
  auto check = [&](Tensor& param, const Tensor& grad, const char* name) {
    for (std::int64_t idx : {std::int64_t{0}, n * d / 2, n * d - 1}) {
      const float orig = param.data()[idx];
      param.data()[idx] = orig + eps;
      const double lp = loss_of(q, k, v);
      param.data()[idx] = orig - eps;
      const double lm = loss_of(q, k, v);
      param.data()[idx] = orig;
      const double fd = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(grad.data()[idx], fd, 5e-2 * std::max(1.0, std::fabs(fd)))
          << name << " idx " << idx;
    }
  };
  check(q, dq, "dq");
  check(k, dk, "dk");
  check(v, dv, "dv");
}

TEST(Flash, FullyMaskedQueryRowsProduceZeroOutput) {
  Rng rng(43);
  const std::int64_t n = 8;
  const std::int64_t d = 4;
  // Causal mask, but keys all from *later* positions: nothing allowed.
  Tensor q = rng.gaussian(n, d, 1.0f);
  Tensor k = rng.gaussian(n, d, 1.0f);
  Tensor v = rng.gaussian(n, d, 1.0f);
  AttnResult r = flash_forward(q, IndexMap::range(0, n), k, v,
                               IndexMap::range(100, n), MaskSpec::causal(),
                               1.0f);
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(r.lse[i], kNegInf);
    for (std::int64_t c = 0; c < d; ++c) {
      EXPECT_FLOAT_EQ(r.o(i, c), 0.0f);
    }
  }
}

TEST(Flash, StatsSkipFullyMaskedTiles) {
  Rng rng(47);
  const std::int64_t n = 128;
  const std::int64_t d = 8;
  Tensor q = rng.gaussian(n, d, 1.0f);
  Tensor k = rng.gaussian(n, d, 1.0f);
  Tensor v = rng.gaussian(n, d, 1.0f);
  // Queries earlier than all keys under a causal mask: everything skipped.
  KernelStats stats;
  flash_forward(q, IndexMap::range(0, n), k, v, IndexMap::range(1000, n),
                MaskSpec::causal(), 1.0f, &stats);
  EXPECT_EQ(stats.tiles_computed, 0u);
  EXPECT_GT(stats.tiles_skipped, 0u);
  EXPECT_EQ(stats.flops, 0u);

  // Queries later than all keys: nothing skipped, everything computed.
  KernelStats stats2;
  flash_forward(q, IndexMap::range(1000, n), k, v, IndexMap::range(0, n),
                MaskSpec::causal(), 1.0f, &stats2);
  EXPECT_EQ(stats2.tiles_skipped, 0u);
  EXPECT_GT(stats2.flops, 0u);
}

TEST(Flash, StridedIndexMapsMatchReference) {
  // Striped workload balance: device holds tokens {1, 5, 9, ...}. The kernel
  // must apply causal masking by *global* position.
  Rng rng(53);
  const std::int64_t n = 32;
  const std::int64_t d = 8;
  const float scale = 0.4f;
  Tensor q = rng.gaussian(n / 4, d, 1.0f);
  Tensor k = rng.gaussian(n / 4, d, 1.0f);
  Tensor v = rng.gaussian(n / 4, d, 1.0f);
  IndexMap qmap = IndexMap::strided(1, 4, n / 4);
  IndexMap kmap = IndexMap::strided(2, 4, n / 4);

  AttnResult flash =
      flash_forward(q, qmap, k, v, kmap, MaskSpec::causal(), scale);
  RefAttnForward ref = reference_attention_forward(q, qmap, k, v, kmap,
                                                   MaskSpec::causal(), scale);
  EXPECT_LT(tensor::max_abs_diff(flash.o, ref.o), 1e-5f);
}

// Odd sequence lengths exercise the tile-remainder paths of the packed
// kernels (partial q-tiles, partial k-tiles, zero-padded GEMM panels), for
// both the forward and the backward, under causal and document masks.
struct RemainderCase {
  std::int64_t n;
  bool document;
};

class FlashOddRemainders : public ::testing::TestWithParam<RemainderCase> {};

TEST_P(FlashOddRemainders, ForwardAndBackwardMatchReference) {
  const auto p = GetParam();
  const std::int64_t n = p.n;
  const std::int64_t d = 8;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  const MaskSpec mask =
      p.document ? MaskSpec::document_from_lengths(
                       {n / 2, n - n / 2 - n / 4, n / 4})
                 : MaskSpec::causal();
  Rng rng(61 + n);
  Tensor q = rng.gaussian(n, d, 1.0f);
  Tensor k = rng.gaussian(n, d, 1.0f);
  Tensor v = rng.gaussian(n, d, 1.0f);
  Tensor d_out = rng.gaussian(n, d, 1.0f);
  IndexMap id = IndexMap::range(0, n);

  AttnResult flash = flash_forward(q, id, k, v, id, mask, scale);
  RefAttnForward ref = reference_attention_forward(q, id, k, v, id, mask, scale);
  EXPECT_LT(tensor::max_abs_diff(flash.o, ref.o), 3e-5f);
  for (std::int64_t i = 0; i < n; ++i) {
    if (ref.lse[i] == kNegInf) {
      EXPECT_EQ(flash.lse[i], kNegInf) << "row " << i;
    } else {
      EXPECT_NEAR(flash.lse[i], ref.lse[i], 3e-4f) << "row " << i;
    }
  }

  RefAttnGrads rg = reference_attention_backward(q, k, v, ref, d_out, scale);
  Tensor dq = Tensor::zeros(n, d);
  Tensor dk = Tensor::zeros(n, d);
  Tensor dv = Tensor::zeros(n, d);
  Tensor dvec = attention_dvec(d_out, ref.o);
  flash_backward_partial(q, id, k, v, id, mask, scale, d_out, ref.lse, dvec,
                         dq, dk, dv);
  EXPECT_LT(tensor::max_abs_diff(dq, rg.dq), 1e-4f);
  EXPECT_LT(tensor::max_abs_diff(dk, rg.dk), 1e-4f);
  EXPECT_LT(tensor::max_abs_diff(dv, rg.dv), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    OddLengths, FlashOddRemainders,
    ::testing::Values(RemainderCase{1, false}, RemainderCase{31, false},
                      RemainderCase{33, false}, RemainderCase{95, false},
                      RemainderCase{31, true}, RemainderCase{33, true},
                      RemainderCase{95, true}));

// The view overload must read strided Q/K/V (rows embedded in a wider
// allocation, e.g. heads sliced from a fused projection) identically to
// contiguous copies of the same data.
TEST(Flash, StridedRowViewsMatchContiguous) {
  Rng rng(67);
  const std::int64_t n = 33;
  const std::int64_t d = 8;
  const std::int64_t wide = 3 * d;  // three "heads" packed per row
  const float scale = 0.35f;
  const MaskSpec mask = MaskSpec::causal();
  Tensor q_all = rng.gaussian(n, wide, 1.0f);
  Tensor k_all = rng.gaussian(n, wide, 1.0f);
  Tensor v_all = rng.gaussian(n, wide, 1.0f);
  IndexMap id = IndexMap::range(0, n);

  for (std::int64_t h = 0; h < 3; ++h) {
    Tensor o_view = Tensor::zeros(n, d);
    Tensor lse_view(n);
    lse_view.fill(kNegInf);
    flash_forward_partial(q_all.col_block(h * d, d), id,
                          k_all.col_block(h * d, d), v_all.col_block(h * d, d),
                          id, mask, scale, o_view.view(), lse_view);

    Tensor qc = tensor::copy_cols(q_all, h * d, d);
    Tensor kc = tensor::copy_cols(k_all, h * d, d);
    Tensor vc = tensor::copy_cols(v_all, h * d, d);
    AttnResult contig = flash_forward(qc, id, kc, vc, id, mask, scale);

    // burst-lint: allow-begin(no-naked-float-eq) strided-view vs contiguous
    // parity is a bitwise-determinism guarantee (DESIGN.md section 11)
    EXPECT_EQ(tensor::max_abs_diff(o_view, contig.o), 0.0f) << "head " << h;
    EXPECT_EQ(tensor::max_abs_diff(lse_view, contig.lse), 0.0f)
        << "head " << h;
    // burst-lint: allow-end(no-naked-float-eq)
  }
}

TEST(Flash, AttentionDvecMatchesDefinition) {
  Rng rng(59);
  Tensor o = rng.gaussian(4, 3, 1.0f);
  Tensor d_out = rng.gaussian(4, 3, 1.0f);
  Tensor dvec = attention_dvec(d_out, o);
  for (std::int64_t i = 0; i < 4; ++i) {
    double acc = 0.0;
    for (std::int64_t j = 0; j < 3; ++j) {
      acc += static_cast<double>(d_out(i, j)) * o(i, j);
    }
    EXPECT_NEAR(dvec[i], acc, 1e-5);
  }
}

}  // namespace
}  // namespace burst::kernels
