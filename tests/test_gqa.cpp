// Grouped-query attention (extension beyond the paper; LLaMA-2/3 use GQA).
// Validates the serial and distributed GQA paths and the head-parallel
// restriction.
#include <gtest/gtest.h>

#include <cmath>
#include <mutex>

#include "comm/communicator.hpp"
#include "comm/sim_transport.hpp"
#include "model/dist_model.hpp"
#include "model/transformer.hpp"
#include "sim/cluster.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace burst::model {
namespace {

using kernels::MaskSpec;
using sim::Cluster;
using sim::DeviceContext;
using sim::Topology;
using tensor::Rng;
using tensor::Tensor;

ModelConfig gqa_config(std::int64_t kv_heads) {
  ModelConfig cfg = ModelConfig::toy();  // 4 query heads
  cfg.kv_heads = kv_heads;
  return cfg;
}

TEST(Gqa, ConfigArithmetic) {
  ModelConfig cfg = gqa_config(2);
  EXPECT_EQ(cfg.num_kv_heads(), 2);
  EXPECT_EQ(cfg.group_size(), 2);
  EXPECT_EQ(cfg.d_kv(), 2 * cfg.head_dim());
  ModelConfig mha = gqa_config(0);
  EXPECT_EQ(mha.num_kv_heads(), mha.heads);
  EXPECT_EQ(mha.group_size(), 1);
}

TEST(Gqa, ParamCountShrinksWithKvHeads) {
  ModelConfig mha = gqa_config(4);
  ModelConfig gqa = gqa_config(1);
  EXPECT_LT(gqa.params_per_layer(), mha.params_per_layer());
}

TEST(Gqa, WeightShapesFollowKvWidth) {
  ModelConfig cfg = gqa_config(2);
  ModelWeights w = ModelWeights::init(cfg, 3);
  EXPECT_EQ(w.layers[0].wk.cols(), cfg.d_kv());
  EXPECT_EQ(w.layers[0].wv.cols(), cfg.d_kv());
  EXPECT_EQ(w.layers[0].wq.cols(), cfg.d_model);
}

// Full-model gradcheck through the GQA attention path, including the shared
// K/V head gradient accumulation.
TEST(Gqa, SerialGradcheck) {
  ModelConfig cfg = gqa_config(2);
  cfg.layers = 1;
  ModelWeights w = ModelWeights::init(cfg, 17);
  Rng rng(19);
  Tensor tokens = rng.token_ids(11, cfg.vocab);
  const MaskSpec mask = MaskSpec::causal();
  auto step = serial_train_step(cfg, w, tokens, mask);

  const float eps = 2e-2f;
  const auto check = [&](Tensor& param, const Tensor& grad, std::int64_t idx,
                         const char* name) {
    const float orig = param.data()[idx];
    param.data()[idx] = orig + eps;
    const double lp = serial_loss(cfg, w, tokens, mask);
    param.data()[idx] = orig - eps;
    const double lm = serial_loss(cfg, w, tokens, mask);
    param.data()[idx] = orig;
    const double fd = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(grad.data()[idx], fd, 2e-3 + 0.1 * std::fabs(fd)) << name;
  };
  // wk/wv receive contributions from both query heads of each group.
  check(w.layers[0].wk, step.grads.layers[0].wk, 7, "wk");
  check(w.layers[0].wv, step.grads.layers[0].wv, 21, "wv");
  check(w.layers[0].wq, step.grads.layers[0].wq, 3, "wq");
}

class GqaDist : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(GqaDist, DistributedMatchesSerial) {
  const std::int64_t kv = GetParam();
  ModelConfig cfg = gqa_config(kv);
  ModelWeights w = ModelWeights::init(cfg, 23);
  Rng rng(29);
  Tensor tokens = rng.token_ids(33, cfg.vocab);
  auto serial = serial_train_step(cfg, w, tokens, MaskSpec::causal());

  DistTrainConfig dc;
  dc.model = cfg;
  dc.impl = AttnImpl::kBurst;
  dc.balance = core::Balance::kZigzag;
  dc.ckpt = {core::CkptStrategy::kSeqSelective, 0.5};

  Cluster cluster({Topology::single_node(4)});
  double loss = 0.0;
  float wk_err = 1.0f;
  float wv_err = 1.0f;
  std::mutex mu;
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    auto r = dist_train_step(comm, dc, w, tokens);
    if (ctx.rank() == 0) {
      std::lock_guard lock(mu);
      loss = r.loss;
      wk_err = tensor::max_abs_diff(r.grads.layers[0].wk,
                                    serial.grads.layers[0].wk);
      wv_err = tensor::max_abs_diff(r.grads.layers[1].wv,
                                    serial.grads.layers[1].wv);
    }
  });
  EXPECT_NEAR(loss, serial.loss, 1e-4);
  EXPECT_LT(wk_err, 2e-3f);
  EXPECT_LT(wv_err, 2e-3f);
}

INSTANTIATE_TEST_SUITE_P(KvHeads, GqaDist, ::testing::Values(1, 2, 4));

TEST(Gqa, HeadParallelImplsRejectGqa) {
  ModelConfig cfg = gqa_config(2);
  ModelWeights w = ModelWeights::init(cfg, 31);
  Rng rng(37);
  Tensor tokens = rng.token_ids(33, cfg.vocab);
  DistTrainConfig dc;
  dc.model = cfg;
  dc.impl = AttnImpl::kUlysses;
  Cluster cluster({Topology::single_node(4)});
  EXPECT_THROW(cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    dist_train_step(comm, dc, w, tokens);
  }),
               std::invalid_argument);
}

}  // namespace
}  // namespace burst::model
