// Continuous-batching serving engine: scheduler policies, throughput vs the
// FCFS baseline, KV eviction, arrival handling, and metrics.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "serve/engine.hpp"
#include "serve/scheduler.hpp"
#include "sim/cluster.hpp"
#include "sim/trace.hpp"
#include "tensor/rng.hpp"

namespace burst::serve {
namespace {

using model::ModelConfig;
using model::ModelWeights;

ModelConfig serve_toy() {
  ModelConfig cfg = ModelConfig::toy();
  cfg.kv_heads = 2;
  cfg.use_rope = true;
  return cfg;
}

SchedEntry entry(std::int64_t id, RequestState state, double arrival,
                 std::int64_t prompt_len, std::int64_t prefilled,
                 std::int64_t generated, std::int64_t max_new) {
  SchedEntry e;
  e.id = id;
  e.state = state;
  e.arrival_s = arrival;
  e.prompt_len = prompt_len;
  e.prefilled = prefilled;
  e.cache_len = prefilled + generated;  // good enough for block arithmetic
  e.generated = generated;
  e.max_new_tokens = max_new;
  return e;
}

std::vector<std::int64_t> prompt_of(std::uint64_t seed, std::int64_t n,
                                    std::int64_t vocab) {
  tensor::Rng rng(seed);
  std::vector<std::int64_t> p(static_cast<std::size_t>(n));
  for (auto& t : p) {
    t = rng.next_index(vocab);
  }
  return p;
}

TEST(Scheduler, FcfsRunsOneRequestToCompletion) {
  Scheduler sched({BatchPolicy::kFcfs, /*token_budget=*/64,
                   /*chunk_tokens=*/16});
  // Request 0 mid-prefill, request 1 waiting: only 0 advances.
  const std::vector<SchedEntry> entries = {
      entry(0, RequestState::kPrefill, 0.0, 40, 16, 0, 4),
      entry(1, RequestState::kQueued, 0.0, 8, 0, 0, 4),
  };
  const auto plan = sched.plan(0.0, entries, /*free_blocks=*/100, 16);
  ASSERT_EQ(plan.prefills.size(), 1u);
  EXPECT_EQ(plan.prefills[0].id, 0);
  EXPECT_EQ(plan.prefills[0].tokens, 16);  // one chunk, not the rest
  EXPECT_TRUE(plan.decodes.empty());

  // Once 0 decodes, it still owns the engine: one decode token, no prefill.
  const std::vector<SchedEntry> decoding = {
      entry(0, RequestState::kDecode, 0.0, 40, 40, 1, 4),
      entry(1, RequestState::kQueued, 0.0, 8, 0, 0, 4),
  };
  const auto plan2 = sched.plan(0.0, decoding, 100, 16);
  EXPECT_TRUE(plan2.prefills.empty());
  ASSERT_EQ(plan2.decodes.size(), 1u);
  EXPECT_EQ(plan2.decodes[0], 0);
}

TEST(Scheduler, FcfsWaitsForArrival) {
  Scheduler sched({BatchPolicy::kFcfs, 64, 16});
  const std::vector<SchedEntry> entries = {
      entry(0, RequestState::kQueued, 5.0, 8, 0, 0, 4),
      entry(1, RequestState::kQueued, 9.0, 8, 0, 0, 4),
  };
  EXPECT_TRUE(sched.plan(1.0, entries, 100, 16).empty());
  const auto plan = sched.plan(6.0, entries, 100, 16);
  ASSERT_EQ(plan.prefills.size(), 1u);
  EXPECT_EQ(plan.prefills[0].id, 0);
}

TEST(Scheduler, ContinuousMixesDecodesAndPrefills) {
  Scheduler sched({BatchPolicy::kContinuous, /*token_budget=*/20,
                   /*chunk_tokens=*/8});
  const std::vector<SchedEntry> entries = {
      entry(0, RequestState::kDecode, 0.0, 16, 16, 2, 8),
      entry(1, RequestState::kDecode, 0.0, 16, 16, 1, 8),
      entry(2, RequestState::kQueued, 0.0, 30, 0, 0, 8),
  };
  const auto plan = sched.plan(0.0, entries, /*free_blocks=*/100, 16);
  EXPECT_EQ(plan.decodes.size(), 2u);  // every running request decodes
  ASSERT_EQ(plan.prefills.size(), 1u);
  EXPECT_EQ(plan.prefills[0].id, 2);
  EXPECT_EQ(plan.prefills[0].tokens, 8);  // one chunk of the new request
  EXPECT_EQ(plan.total_tokens(), 10);
}

TEST(Scheduler, ContinuousRespectsTokenBudget) {
  Scheduler sched({BatchPolicy::kContinuous, /*token_budget=*/2,
                   /*chunk_tokens=*/8});
  const std::vector<SchedEntry> entries = {
      entry(0, RequestState::kDecode, 0.0, 8, 8, 1, 8),
      entry(1, RequestState::kDecode, 0.0, 8, 8, 1, 8),
      entry(2, RequestState::kDecode, 0.0, 8, 8, 1, 8),
  };
  const auto plan = sched.plan(0.0, entries, 100, 16);
  EXPECT_EQ(plan.decodes.size(), 2u);
  EXPECT_TRUE(plan.prefills.empty());
}

TEST(Scheduler, ContinuousDefersPrefillWithoutFreeBlocks) {
  Scheduler sched({BatchPolicy::kContinuous, 64, 16});
  const std::vector<SchedEntry> entries = {
      // Decode token fits in the already-allocated block (cache_len 17 of
      // two 16-token blocks).
      entry(0, RequestState::kDecode, 0.0, 16, 16, 1, 8),
      entry(1, RequestState::kQueued, 0.0, 16, 0, 0, 8),
  };
  const auto plan = sched.plan(0.0, entries, /*free_blocks=*/0, 16);
  EXPECT_EQ(plan.decodes.size(), 1u);
  EXPECT_TRUE(plan.prefills.empty());  // needs a block it cannot get
}

// --- engine integration ----------------------------------------------------

struct RunSpec {
  BatchPolicy policy = BatchPolicy::kContinuous;
  std::int64_t max_kv_blocks = 1 << 20;
  double arrival_step = 0.0;
  sim::TraceRecorder* trace = nullptr;
};

ServeReport run_engine(const RunSpec& spec) {
  const ModelConfig cfg = serve_toy();
  static const ModelWeights w = ModelWeights::init(serve_toy(), 73);
  EngineConfig ec;
  ec.sched.policy = spec.policy;
  ec.sched.token_budget = 64;
  ec.sched.chunk_tokens = 16;
  ec.block_tokens = 8;
  ec.max_kv_blocks = spec.max_kv_blocks;
  ec.trace = spec.trace;
  Engine engine(cfg, w, ec);
  for (int i = 0; i < 6; ++i) {
    engine.add_request(prompt_of(100 + static_cast<std::uint64_t>(i), 24,
                                 cfg.vocab),
                       /*max_new_tokens=*/8,
                       /*arrival_s=*/spec.arrival_step * i);
  }
  return run_on_single_device(engine);
}

// The acceptance criterion: at an equal KV budget, continuous batching
// yields strictly higher throughput than FCFS (weight streaming amortized
// over the batch), while generating the *same* tokens.
TEST(ServeEngine, ContinuousBeatsFcfsAtEqualMemory) {
  RunSpec fcfs_spec;
  fcfs_spec.policy = BatchPolicy::kFcfs;
  fcfs_spec.max_kv_blocks = 64;
  RunSpec cont_spec = fcfs_spec;
  cont_spec.policy = BatchPolicy::kContinuous;

  const ServeReport fcfs = run_engine(fcfs_spec);
  const ServeReport cont = run_engine(cont_spec);

  EXPECT_GT(cont.metrics.tokens_per_s, fcfs.metrics.tokens_per_s);
  EXPECT_LT(cont.metrics.makespan_s, fcfs.metrics.makespan_s);
  ASSERT_EQ(fcfs.results.size(), cont.results.size());
  for (std::size_t i = 0; i < fcfs.results.size(); ++i) {
    EXPECT_EQ(fcfs.results[i].generated, cont.results[i].generated)
        << "request " << i;
  }
  // Same block budget; both peaks observed and within it.
  const std::uint64_t cap =
      64 * model::SequenceKvCache::block_bytes(serve_toy(), 8);
  EXPECT_GT(fcfs.metrics.peak_kv_bytes, 0u);
  EXPECT_LE(fcfs.metrics.peak_kv_bytes, cap);
  EXPECT_LE(cont.metrics.peak_kv_bytes, cap);
}

TEST(ServeEngine, CompletionEvictsEveryBlock) {
  const ModelConfig cfg = serve_toy();
  const ModelWeights w = ModelWeights::init(cfg, 73);
  EngineConfig ec;
  ec.block_tokens = 8;
  Engine engine(cfg, w, ec);
  engine.add_request(prompt_of(7, 24, cfg.vocab), 8);
  engine.add_request(prompt_of(8, 16, cfg.vocab), 4);

  sim::Cluster cluster({sim::Topology::single_node(1)});
  cluster.run([&](sim::DeviceContext& ctx) {
    engine.run(ctx);
    EXPECT_EQ(ctx.mem().used(), 0u);  // all KV blocks released
    EXPECT_GT(ctx.mem().peak(), 0u);
  });
}

TEST(ServeEngine, ArrivalTimesGateFirstTokens) {
  RunSpec spec;
  spec.arrival_step = 0.5;  // request i arrives at 0.5 * i virtual seconds
  const ServeReport rep = run_engine(spec);
  for (std::size_t i = 0; i < rep.results.size(); ++i) {
    const auto& r = rep.results[i];
    EXPECT_GE(r.first_token_s, r.arrival_s) << "request " << i;
    EXPECT_GE(r.finish_s, r.first_token_s);
    EXPECT_EQ(r.token_times_s.size(), 8u);
  }
}

TEST(ServeEngine, MetricsAreConsistent) {
  const ServeReport rep = run_engine(RunSpec{});
  EXPECT_EQ(rep.metrics.generated_tokens, 6 * 8);
  EXPECT_EQ(rep.metrics.prefill_tokens, 6 * 24);
  EXPECT_GT(rep.metrics.iterations, 0);
  EXPECT_GT(rep.metrics.tokens_per_s, 0.0);
  EXPECT_LE(rep.metrics.p50_token_latency_s, rep.metrics.p99_token_latency_s);
  EXPECT_GT(rep.metrics.p50_token_latency_s, 0.0);
}

TEST(ServeEngine, TraceRecordsIterationBatches) {
  sim::TraceRecorder trace;
  RunSpec spec;
  spec.trace = &trace;
  const ServeReport rep = run_engine(spec);
  std::int64_t iters = 0;
  for (const auto& e : trace.events()) {
    if (e.name.rfind("serve:iter", 0) == 0) {
      ++iters;
      EXPECT_LE(e.begin_s, e.end_s);
    }
  }
  EXPECT_EQ(iters, rep.metrics.iterations);
}

// A pool too small for even one request used to deadlock-then-throw; the
// admission layer now sheds every request at arrival with a typed reason,
// and the engine finishes cleanly having generated nothing.
TEST(ServeEngine, StarvedPoolRejectsEveryRequest) {
  RunSpec spec;
  spec.max_kv_blocks = 2;  // 16 tokens of KV; prompts are 24
  const ServeReport rep = run_engine(spec);
  EXPECT_EQ(rep.metrics.generated_tokens, 0);
  EXPECT_EQ(rep.metrics.rejected, 6);
  EXPECT_EQ(rep.metrics.admitted, 0);
  for (const auto& r : rep.results) {
    EXPECT_TRUE(r.rejected());
    EXPECT_EQ(r.reject_reason, RejectReason::kKvInfeasible);
    EXPECT_TRUE(r.generated.empty());
    EXPECT_LT(r.first_token_s, 0.0);
  }
}

}  // namespace
}  // namespace burst::serve
