// Multi-tenant SLO scheduling: weighted-fair share convergence, priority
// ordering, TTFT-deadline preemption, and admission control at the engine
// boundary.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "api/loadgen.hpp"
#include "serve/engine.hpp"
#include "serve/scheduler.hpp"
#include "tensor/rng.hpp"

namespace burst::serve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

SchedEntry entry(std::int64_t id, RequestState state, std::int64_t tenant,
                 int priority, double weight, std::int64_t generated,
                 double deadline_s) {
  SchedEntry e;
  e.id = id;
  e.state = state;
  e.arrival_s = 0.0;
  e.prompt_len = 16;
  e.prefilled = state == RequestState::kQueued ? 0 : 16;
  e.cache_len = e.prefilled + generated;
  e.generated = generated;
  e.max_new_tokens = 1 << 20;  // effectively endless decode
  e.tenant = tenant;
  e.priority = priority;
  e.weight = weight;
  e.deadline_s = deadline_s;
  return e;
}

// An urgent high-priority prefill reserves urgent_budget_frac of the token
// budget, and exactly the decodes that lost their slot are reported
// preempted.
TEST(SloScheduler, UrgentPrefillPreemptsLowestPriorityDecodes) {
  SchedulerConfig cfg;
  cfg.policy = BatchPolicy::kSlo;
  cfg.token_budget = 4;
  cfg.chunk_tokens = 8;
  cfg.urgency_window_s = 1.0;
  cfg.urgent_budget_frac = 0.5;
  Scheduler sched(cfg);

  std::vector<SchedEntry> entries;
  for (std::int64_t i = 0; i < 4; ++i) {
    entries.push_back(entry(i, RequestState::kDecode, /*tenant=*/0,
                            /*priority=*/0, 1.0, /*generated=*/4, kInf));
  }
  // Deadline 0.5s away, inside the 1s urgency window.
  entries.push_back(entry(4, RequestState::kQueued, /*tenant=*/1,
                          /*priority=*/2, 1.0, 0, /*deadline_s=*/0.5));

  const auto plan = sched.plan(0.0, entries, /*free_blocks=*/1 << 20, 16);
  ASSERT_EQ(plan.prefills.size(), 1u);
  EXPECT_EQ(plan.prefills[0].id, 4);
  EXPECT_EQ(plan.prefills[0].tokens, 2);  // ceil(4 * 0.5) budget reservation
  EXPECT_EQ(plan.decodes.size(), 2u);
  EXPECT_EQ(plan.preempted.size(), 2u);
  EXPECT_EQ(plan.total_tokens(), cfg.token_budget);

  // Same deadline but outside the window: nobody is urgent, decodes keep
  // the whole budget, prefill waits, nothing is preempted.
  entries[4].deadline_s = 5.0;
  const auto calm = sched.plan(0.0, entries, 1 << 20, 16);
  EXPECT_EQ(calm.decodes.size(), 4u);
  EXPECT_TRUE(calm.preempted.empty());
  EXPECT_TRUE(calm.prefills.empty());
}

TEST(SloScheduler, HigherPriorityClassDecodesFirst) {
  SchedulerConfig cfg;
  cfg.policy = BatchPolicy::kSlo;
  cfg.token_budget = 1;
  cfg.chunk_tokens = 8;
  Scheduler sched(cfg);
  // The interactive entry has far MORE service than the batch one; priority
  // still wins before fair-share ordering kicks in.
  const std::vector<SchedEntry> entries = {
      entry(0, RequestState::kDecode, 0, /*priority=*/0, 1.0,
            /*generated=*/1, kInf),
      entry(1, RequestState::kDecode, 1, /*priority=*/2, 1.0,
            /*generated=*/100, kInf),
  };
  const auto plan = sched.plan(0.0, entries, 1 << 20, 16);
  ASSERT_EQ(plan.decodes.size(), 1u);
  EXPECT_EQ(plan.decodes[0], 1);
}

// Two equal-weight tenants decoding forever under a budget of one token per
// iteration: weighted-fair ordering must converge to equal token counts (the
// gap never exceeds one token), regardless of the head start tenant 0 had.
TEST(SloScheduler, EqualWeightSharesConverge) {
  SchedulerConfig cfg;
  cfg.policy = BatchPolicy::kSlo;
  cfg.token_budget = 1;
  cfg.chunk_tokens = 8;
  Scheduler sched(cfg);

  std::vector<SchedEntry> entries = {
      entry(0, RequestState::kDecode, 0, 1, 1.0, /*generated=*/32, kInf),
      entry(1, RequestState::kDecode, 1, 1, 1.0, /*generated=*/0, kInf),
  };
  for (int iter = 0; iter < 200; ++iter) {
    const auto plan = sched.plan(0.0, entries, 1 << 20, 16);
    ASSERT_EQ(plan.decodes.size(), 1u);
    auto& e = entries[static_cast<std::size_t>(plan.decodes[0])];
    e.generated += 1;
    e.cache_len += 1;
  }
  // Tenant 1 must have caught up: 232 tokens total, split 116/116.
  EXPECT_LE(std::abs(entries[0].generated - entries[1].generated), 1);
  const double jain = api::jain_fairness_index(
      {static_cast<double>(entries[0].generated),
       static_cast<double>(entries[1].generated)});
  EXPECT_GT(jain, 0.999);
}

// With weights 3:1 the steady-state token ratio tracks the weights.
TEST(SloScheduler, WeightedSharesTrackWeights) {
  SchedulerConfig cfg;
  cfg.policy = BatchPolicy::kSlo;
  cfg.token_budget = 1;
  cfg.chunk_tokens = 8;
  Scheduler sched(cfg);

  std::vector<SchedEntry> entries = {
      entry(0, RequestState::kDecode, 0, 1, /*weight=*/3.0, 0, kInf),
      entry(1, RequestState::kDecode, 1, 1, /*weight=*/1.0, 0, kInf),
  };
  for (int iter = 0; iter < 400; ++iter) {
    const auto plan = sched.plan(0.0, entries, 1 << 20, 16);
    ASSERT_EQ(plan.decodes.size(), 1u);
    auto& e = entries[static_cast<std::size_t>(plan.decodes[0])];
    e.generated += 1;
    e.cache_len += 1;
  }
  const double ratio = static_cast<double>(entries[0].generated) /
                       static_cast<double>(entries[1].generated);
  EXPECT_NEAR(ratio, 3.0, 0.1);
}

// --- engine integration ----------------------------------------------------

model::ModelConfig serve_toy() {
  model::ModelConfig cfg = model::ModelConfig::toy();
  cfg.kv_heads = 2;
  cfg.use_rope = true;
  return cfg;
}

const model::ModelWeights& toy_weights() {
  static const model::ModelWeights w =
      model::ModelWeights::init(serve_toy(), 73);
  return w;
}

std::vector<std::int64_t> prompt_of(std::uint64_t seed, std::int64_t n) {
  return api::LoadGen::materialize_prompt(seed, n, serve_toy().vocab);
}

// Four batch-priority tenants decoding long outputs saturate the token
// budget; an interactive request with a TTFT target arrives mid-decode.
// kContinuous makes it wait for a budget slot (a background completion);
// kSlo preempts decode budget and rescues its TTFT.
TEST(SloEngine, PreemptionRescuesHighPriorityTtft) {
  const auto run = [&](BatchPolicy policy, double urgency_window_s,
                       bool with_interactive, double arrival_s,
                       double ttft_target_s) {
    EngineConfig ec;
    ec.sched.policy = policy;
    ec.sched.token_budget = 4;
    ec.sched.chunk_tokens = 8;
    ec.sched.urgency_window_s = urgency_window_s;
    ec.block_tokens = 8;
    Engine engine(serve_toy(), toy_weights(), ec);
    for (std::uint64_t i = 0; i < 4; ++i) {
      Request r;
      r.prompt = prompt_of(300 + i, 24);
      r.max_new_tokens = 64;
      r.tenant = 0;
      r.priority = 0;
      engine.add_request(std::move(r));
    }
    if (with_interactive) {
      Request hi;
      hi.prompt = prompt_of(999, 24);
      hi.max_new_tokens = 8;
      hi.arrival_s = arrival_s;
      hi.tenant = 1;
      hi.priority = 2;
      hi.ttft_target_s = ttft_target_s;
      engine.add_request(std::move(hi));
    }
    return run_on_single_device(engine);
  };

  // Calibrate the busy window from a background-only continuous run, then
  // land the interactive request mid-decode. All virtual time: exact on any
  // machine.
  const double makespan =
      run(BatchPolicy::kContinuous, 0.0, false, 0.0, kInf).metrics.makespan_s;
  const double arrival = 0.25 * makespan;

  const auto cont =
      run(BatchPolicy::kContinuous, 0.0, true, arrival, makespan);
  const auto slo = run(BatchPolicy::kSlo, makespan, true, arrival, makespan);

  const auto& cont_hi = cont.results[4];
  const auto& slo_hi = slo.results[4];
  ASSERT_FALSE(cont_hi.rejected());
  ASSERT_FALSE(slo_hi.rejected());
  EXPECT_EQ(cont.metrics.preempted, 0);  // kContinuous never preempts
  EXPECT_GT(slo.metrics.preempted, 0)
      << "expected the SLO run to preempt decode budget";
  // The interactive TTFT improves by at least 2x under preemption.
  EXPECT_LT(slo_hi.ttft_s() * 2.0, cont_hi.ttft_s());
  // Same tokens either way: scheduling changes when, never what.
  EXPECT_EQ(slo_hi.generated, cont_hi.generated);
}

TEST(Admission, QueueDepthBoundShedsBurst) {
  EngineConfig ec;
  ec.sched.policy = BatchPolicy::kContinuous;
  ec.sched.max_waiting = 2;
  ec.block_tokens = 8;
  Engine engine(serve_toy(), toy_weights(), ec);
  for (std::uint64_t i = 0; i < 6; ++i) {
    engine.add_request(prompt_of(500 + i, 24), /*max_new_tokens=*/4);
  }
  const auto rep = run_on_single_device(engine);
  EXPECT_EQ(rep.metrics.admitted, 2);
  EXPECT_EQ(rep.metrics.rejected, 4);
  for (std::size_t i = 0; i < rep.results.size(); ++i) {
    if (i < 2) {
      EXPECT_FALSE(rep.results[i].rejected()) << "request " << i;
      EXPECT_EQ(rep.results[i].generated.size(), 4u);
    } else {
      EXPECT_EQ(rep.results[i].reject_reason, RejectReason::kQueueFull)
          << "request " << i;
    }
  }
}

TEST(Admission, TokenBacklogBoundShedsLargePrompts) {
  EngineConfig ec;
  ec.sched.policy = BatchPolicy::kContinuous;
  ec.sched.max_waiting_tokens = 50;  // two 24-token prompts fit, not three
  ec.block_tokens = 8;
  Engine engine(serve_toy(), toy_weights(), ec);
  for (std::uint64_t i = 0; i < 3; ++i) {
    engine.add_request(prompt_of(600 + i, 24), 4);
  }
  const auto rep = run_on_single_device(engine);
  EXPECT_EQ(rep.metrics.admitted, 2);
  EXPECT_EQ(rep.metrics.rejected, 1);
  EXPECT_EQ(rep.results[2].reject_reason, RejectReason::kQueueTokens);
}

TEST(Admission, ZeroDepthBoundOptsOut) {
  EngineConfig ec;
  ec.sched.policy = BatchPolicy::kContinuous;
  ec.sched.max_waiting = 0;  // explicit opt-out: unbounded queue
  ec.block_tokens = 8;
  Engine engine(serve_toy(), toy_weights(), ec);
  for (std::uint64_t i = 0; i < 6; ++i) {
    engine.add_request(prompt_of(700 + i, 24), 4);
  }
  const auto rep = run_on_single_device(engine);
  EXPECT_EQ(rep.metrics.admitted, 6);
  EXPECT_EQ(rep.metrics.rejected, 0);
}

// Staggered arrivals drain the queue between bursts: the same depth bound
// that sheds a simultaneous burst admits everything when spread out.
TEST(Admission, SpreadArrivalsAllAdmitted) {
  EngineConfig ec;
  ec.sched.policy = BatchPolicy::kContinuous;
  ec.sched.max_waiting = 2;
  ec.block_tokens = 8;
  Engine engine(serve_toy(), toy_weights(), ec);
  for (std::uint64_t i = 0; i < 6; ++i) {
    engine.add_request(prompt_of(800 + i, 24), 4,
                       /*arrival_s=*/0.1 * static_cast<double>(i));
  }
  const auto rep = run_on_single_device(engine);
  EXPECT_EQ(rep.metrics.admitted, 6);
  EXPECT_EQ(rep.metrics.rejected, 0);
}

// --- kSlo edge cases --------------------------------------------------------

// The urgency predicate is inclusive: a deadline landing *exactly* at
// now + urgency_window_s preempts, one ulp past it does not.
TEST(SloScheduler, UrgencyWindowBoundaryIsInclusive) {
  SchedulerConfig cfg;
  cfg.policy = BatchPolicy::kSlo;
  cfg.token_budget = 4;
  cfg.chunk_tokens = 8;
  cfg.urgency_window_s = 1.0;
  cfg.urgent_budget_frac = 0.5;
  Scheduler sched(cfg);

  const double now = 2.0;
  std::vector<SchedEntry> entries;
  for (std::int64_t i = 0; i < 4; ++i) {
    entries.push_back(entry(i, RequestState::kDecode, 0, 0, 1.0, 4, kInf));
  }
  entries.push_back(entry(4, RequestState::kQueued, 1, 2, 1.0, 0,
                          /*deadline_s=*/now + cfg.urgency_window_s));

  const auto at_boundary = sched.plan(now, entries, 1 << 20, 16);
  ASSERT_EQ(at_boundary.prefills.size(), 1u);
  EXPECT_EQ(at_boundary.prefills[0].id, 4);
  EXPECT_FALSE(at_boundary.preempted.empty());

  entries[4].deadline_s =
      std::nextafter(now + cfg.urgency_window_s, kInf);
  const auto past_boundary = sched.plan(now, entries, 1 << 20, 16);
  EXPECT_TRUE(past_boundary.prefills.empty());
  EXPECT_TRUE(past_boundary.preempted.empty());
  EXPECT_EQ(past_boundary.decodes.size(), 4u);
}

// A weight table longer than the set of tenants actually present (and a
// tenant id beyond the table, which defaults to weight 1.0) must not
// perturb scheduling or crash indexing.
TEST(SloEngine, TenantWeightsLongerThanTenantTable) {
  EngineConfig ec;
  ec.sched.policy = BatchPolicy::kSlo;
  ec.sched.token_budget = 32;
  ec.block_tokens = 8;
  ec.tenant_weights = {2.0, 3.0, 5.0, 7.0, 11.0};  // only tenants 0/1 exist
  Engine engine(serve_toy(), toy_weights(), ec);
  for (std::int64_t t : {0, 1, 7}) {  // 7 is past the table: weight 1.0
    Request r;
    r.prompt = prompt_of(850 + static_cast<std::uint64_t>(t), 16);
    r.max_new_tokens = 4;
    r.tenant = t;
    engine.add_request(std::move(r));
  }
  const auto rep = run_on_single_device(engine);
  EXPECT_EQ(rep.metrics.admitted, 3);
  for (const auto& r : rep.results) {
    EXPECT_EQ(r.outcome, Outcome::kCompleted);
    EXPECT_EQ(r.generated.size(), 4u);
  }
}

// Admission races a block-pool release: B and C arrive while A owns the
// whole pool. B takes the single waiting slot; C is rejected kQueueFull at
// the same iteration boundary — even though A's completion frees the pool
// and drains B soon after. A later D sees the drained queue and is
// admitted: admission verdicts are instantaneous snapshots, never
// retroactive.
TEST(Admission, RejectionRacesBlockPoolRelease) {
  EngineConfig ec;
  ec.sched.policy = BatchPolicy::kContinuous;
  ec.sched.max_waiting = 1;
  ec.block_tokens = 8;
  ec.max_kv_blocks = 4;  // exactly A's footprint
  const auto solo_finish = [&] {
    Engine solo(serve_toy(), toy_weights(), ec);
    solo.add_request(prompt_of(860, 24), 6);  // 30 tokens -> 4 blocks
    return run_on_single_device(solo).results[0].finish_s;
  }();
  ASSERT_GT(solo_finish, 0.0);

  Engine engine(serve_toy(), toy_weights(), ec);
  engine.add_request(prompt_of(860, 24), 6);                    // A
  engine.add_request(prompt_of(861, 8), 2, /*arrival_s=*/1e-9); // B
  engine.add_request(prompt_of(862, 8), 2, /*arrival_s=*/2e-9); // C
  engine.add_request(prompt_of(863, 8), 2, 1.5 * solo_finish);  // D

  const auto rep = run_on_single_device(engine);
  EXPECT_EQ(rep.results[0].outcome, Outcome::kCompleted);
  EXPECT_EQ(rep.results[1].outcome, Outcome::kCompleted);
  EXPECT_EQ(rep.results[2].outcome, Outcome::kRejected);
  EXPECT_EQ(rep.results[2].reject_reason, RejectReason::kQueueFull);
  EXPECT_EQ(rep.results[3].outcome, Outcome::kCompleted);
  EXPECT_EQ(rep.metrics.admitted, 3);
  EXPECT_EQ(rep.metrics.rejected, 1);
}

}  // namespace
}  // namespace burst::serve
