// Deterministic chaos harness for the serving stack.
//
// Sweeps >= 32 seeded random fault plans (sim/chaos.hpp) against a loadgen
// trace driven through the API front door with recovery enabled, asserting
// the four serving-resilience invariants on every seed:
//
//   1. no hang — every run terminates (the virtual clock always advances;
//      ctest's timeout is the backstop);
//   2. exactly one terminal outcome per request — one completion or one
//      typed error, never zero, never two;
//   3. no lost or duplicated token streams — each request's TokenEvents
//      carry contiguous indices 0..n-1 exactly once and match the terminal
//      record, and requests completed under chaos produce the same token
//      values as the fault-free run;
//   4. same seed, same bytes — replaying a seed yields a byte-identical
//      serialized event stream.
//
// A second sweep aims the full fault taxonomy (crashes, stragglers, link
// degradation, drops, duplicates, corruption) at the distributed-prefill
// ring through resilient_distributed_prefill and asserts the retried result
// is bit-identical to a fault-free prefill at the final ring size.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "api/loadgen.hpp"
#include "api/parser.hpp"
#include "api/server.hpp"
#include "serve/resilience.hpp"
#include "sim/chaos.hpp"
#include "sim/cluster.hpp"

namespace burst::api {
namespace {

constexpr int kSeeds = 32;

model::ModelConfig serve_toy() {
  model::ModelConfig cfg = model::ModelConfig::toy();
  cfg.kv_heads = 2;
  cfg.use_rope = true;
  return cfg;
}

const model::ModelWeights& toy_weights() {
  static const model::ModelWeights w =
      model::ModelWeights::init(serve_toy(), 73);
  return w;
}

/// Serializes everything it sees into one byte stream (for the same-seed
/// replay check) while keeping the structured records for the per-request
/// invariants.
class RecordingSink : public ResponseSink {
 public:
  void on_token(const TokenEvent& e) override {
    stream << "T " << to_json(e) << "\n";
    tokens.push_back(e);
  }
  void on_complete(const CompletionResponse& r) override {
    stream << "C " << to_json(r) << "\n";
    completions.push_back(r);
  }
  void on_error(std::int64_t id, const ApiError& e) override {
    stream << "E " << id << " " << to_json(e) << "\n";
    errors.emplace_back(id, e);
  }

  void clear_records() {
    tokens.clear();
    completions.clear();
    errors.clear();
  }

  std::ostringstream stream;
  std::vector<TokenEvent> tokens;
  std::vector<CompletionResponse> completions;
  std::vector<std::pair<std::int64_t, ApiError>> errors;
};

/// Small bursty multi-tenant trace; deterministic in its seed.
std::vector<GeneratedRequest> chaos_trace() {
  LoadGenConfig lg;
  lg.seed = 4242;
  lg.requests = 12;
  lg.rate_rps = 2e4;  // arrivals land inside the short toy-model makespan
  lg.tenants = 3;
  lg.prompt_log_mean = 2.7;  // median ~15 tokens
  lg.prompt_min = 4;
  lg.prompt_max = 48;
  lg.output_log_mean = 1.4;
  lg.output_min = 1;
  lg.output_max = 8;
  return LoadGen(lg).generate();
}

std::int64_t submit_trace(ApiServer& server, RecordingSink* sink) {
  std::int64_t n = 0;
  for (const GeneratedRequest& g : chaos_trace()) {
    CompletionRequest req;
    req.tenant = "t" + std::to_string(g.tenant);
    req.priority = g.priority;
    req.prompt = LoadGen::materialize_prompt(g.prompt_seed, g.prompt_len,
                                             serve_toy().vocab);
    req.max_tokens = g.max_tokens;
    const std::int64_t id = server.submit(g.arrival_s, std::move(req), sink);
    EXPECT_EQ(id, n);
    ++n;
  }
  return n;
}

ApiServerConfig chaos_server_config(double default_timeout_s) {
  ApiServerConfig cfg;
  cfg.engine.block_tokens = 8;
  cfg.engine.sched.policy = serve::BatchPolicy::kSlo;
  cfg.engine.sched.token_budget = 32;
  cfg.engine.sched.chunk_tokens = 16;
  cfg.engine.default_timeout_s = default_timeout_s;
  cfg.engine.shed_high = 8;
  return cfg;
}

/// Validates invariants 2 and 3 for one run; returns the tokens of every
/// completed request by id.
std::map<std::int64_t, std::vector<std::int64_t>> check_streams(
    const RecordingSink& sink, std::int64_t n, const std::string& tag) {
  // Invariant 2: exactly one terminal event per submitted id.
  std::map<std::int64_t, int> terminals;
  for (const auto& c : sink.completions) {
    ++terminals[c.request_id];
  }
  for (const auto& [id, err] : sink.errors) {
    ++terminals[id];
  }
  for (std::int64_t id = 0; id < n; ++id) {
    EXPECT_EQ(terminals[id], 1) << tag << ": request " << id;
  }
  EXPECT_EQ(static_cast<std::int64_t>(terminals.size()), n) << tag;

  // Invariant 3: per-id token indices are contiguous and unique.
  std::map<std::int64_t, std::vector<std::int64_t>> by_id;
  for (const auto& t : sink.tokens) {
    auto& seq = by_id[t.request_id];
    EXPECT_EQ(t.index, static_cast<std::int64_t>(seq.size()))
        << tag << ": request " << t.request_id;
    seq.push_back(t.token);
  }
  std::map<std::int64_t, std::vector<std::int64_t>> completed;
  for (const auto& c : sink.completions) {
    EXPECT_EQ(by_id[c.request_id], c.tokens) << tag << ": request "
                                             << c.request_id;
    completed[c.request_id] = c.tokens;
  }
  return completed;
}

TEST(ServeChaos, SweepHoldsInvariantsAcrossSeeds) {
  // Fault-free reference: outcome stream + makespan to scale fault times.
  RecordingSink ref_sink;
  ApiServer ref(serve_toy(), toy_weights(), chaos_server_config(
                                                /*default_timeout_s=*/1e9));
  const std::int64_t n = submit_trace(ref, &ref_sink);
  const auto ref_report = ref.run();
  const auto ref_tokens = check_streams(ref_sink, n, "fault-free");
  const double makespan = ref_report.metrics.makespan_s;
  ASSERT_GT(makespan, 0.0);
  EXPECT_GT(ref_report.completed, 0);

  sim::ChaosSpec spec;
  spec.world = 1;
  spec.horizon_s = makespan;

  std::int64_t total_recoveries = 0;
  std::int64_t total_degraded = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const std::string tag = "seed " + std::to_string(seed);
    ApiServerConfig cfg = chaos_server_config(50.0 * makespan);
    cfg.resilience.faults = sim::make_chaos_plan(seed, spec);
    cfg.resilience.checkpoint_every = 3;
    cfg.resilience.breaker_cooldown_s = 0.1 * makespan;

    RecordingSink sink;
    ApiServer server(serve_toy(), toy_weights(), cfg);
    ASSERT_EQ(submit_trace(server, &sink), n);

    const auto report = server.run();  // invariant 1: this returns
    const auto completed = check_streams(sink, n, tag);
    EXPECT_EQ(report.completed + report.rejected + report.timed_out +
                  report.shed + report.failed_fast,
              n)
        << tag;
    total_recoveries += static_cast<std::int64_t>(report.recoveries.size());
    total_degraded += report.timed_out + report.shed + report.failed_fast;

    // Invariant 3b: a request completed under chaos and fault-free got the
    // exact same tokens — recovery replay never changes values.
    for (const auto& [id, toks] : completed) {
      const auto it = ref_tokens.find(id);
      if (it != ref_tokens.end()) {
        EXPECT_EQ(toks, it->second) << tag << ": request " << id;
      }
    }

    // Invariant 4: replaying the same seed is byte-identical.
    const std::string first = sink.stream.str();
    sink.clear_records();
    const auto replay_report = server.run();
    const std::string both = sink.stream.str();
    ASSERT_GE(both.size(), first.size()) << tag;
    EXPECT_EQ(both.substr(first.size()), first) << tag;
    EXPECT_EQ(replay_report.completed, report.completed) << tag;
    check_streams(sink, n, tag + " (replay)");
  }
  // The sweep actually exercised the fault machinery: across 32 seeded
  // plans at least some crashes recovered (crash_prob = 0.5).
  EXPECT_GT(total_recoveries, 0);
  (void)total_degraded;  // diagnostic; plans need not degrade every run
}

TEST(ServeChaos, DistPrefillSweepSurvivesFullTaxonomy) {
  const model::ModelConfig cfg = serve_toy();
  const auto prompt = api::LoadGen::materialize_prompt(77, 32, cfg.vocab);

  // Fault-free reference makespan at world 4 scales the fault times; the
  // reference result at each possible final world is the parity oracle.
  sim::Cluster probe({sim::Topology::single_node(4)});
  serve::distributed_prefill(probe, cfg, toy_weights(), prompt, 8);
  const double makespan = probe.makespan();

  std::map<int, std::int64_t> first_token_at_world;
  for (const int world : {1, 2, 4}) {
    sim::Cluster clean({sim::Topology::single_node(world)});
    first_token_at_world[world] =
        serve::distributed_prefill(clean, cfg, toy_weights(), prompt, 8)
            .first_token;
  }

  sim::ChaosSpec spec;
  spec.world = 4;
  spec.horizon_s = 1.2 * makespan;

  serve::PrefillRetryConfig retry;
  retry.max_attempts = 8;

  int total_retries = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const std::string tag = "seed " + std::to_string(seed);
    sim::Cluster::Config cc;
    cc.topo = sim::Topology::single_node(4);
    cc.faults = sim::make_chaos_plan(seed, spec);

    const serve::ResilientPrefillResult out =
        serve::resilient_distributed_prefill(cc, cfg, toy_weights(), prompt,
                                             8, kernels::MaskSpec::causal(),
                                             retry);
    ASSERT_EQ(out.result.cache.len(), 32) << tag;
    ASSERT_TRUE(first_token_at_world.count(out.final_world)) << tag;
    EXPECT_EQ(out.result.first_token, first_token_at_world[out.final_world])
        << tag;
    EXPECT_EQ(out.failure_codes.size(),
              static_cast<std::size_t>(out.attempts - 1))
        << tag;
    total_retries += out.attempts - 1;

    // Same seed, same behaviour: the whole retry history replays exactly.
    const serve::ResilientPrefillResult again =
        serve::resilient_distributed_prefill(cc, cfg, toy_weights(), prompt,
                                             8, kernels::MaskSpec::causal(),
                                             retry);
    EXPECT_EQ(again.attempts, out.attempts) << tag;
    EXPECT_EQ(again.final_world, out.final_world) << tag;
    EXPECT_EQ(again.wasted_s, out.wasted_s) << tag;
    EXPECT_EQ(again.failure_codes, out.failure_codes) << tag;
    EXPECT_EQ(again.result.first_token, out.result.first_token) << tag;
  }
  EXPECT_GT(total_retries, 0);  // the taxonomy actually bit
}

}  // namespace
}  // namespace burst::api
