// Head parallelism (DeepSpeed-Ulysses) and hybrid USP baselines versus the
// single-device multi-head reference.
#include "core/ulysses.hpp"
#include "core/usp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <mutex>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/sim_transport.hpp"
#include "core/partition.hpp"
#include "kernels/reference_attention.hpp"
#include "sim/cluster.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace burst::core {
namespace {

using comm::Communicator;
using kernels::IndexMap;
using kernels::MaskSpec;
using sim::Cluster;
using sim::DeviceContext;
using sim::Topology;
using tensor::Rng;
using tensor::Tensor;

struct MultiHeadProblem {
  std::vector<Tensor> q, k, v, d_out;  // per head [N, dh]
  std::int64_t n, dh;
  int heads;
  float scale;
};

MultiHeadProblem make_problem(std::uint64_t seed, std::int64_t n, int heads,
                              std::int64_t dh) {
  Rng rng(seed);
  MultiHeadProblem p;
  p.n = n;
  p.dh = dh;
  p.heads = heads;
  p.scale = 1.0f / std::sqrt(static_cast<float>(dh));
  for (int h = 0; h < heads; ++h) {
    p.q.push_back(rng.gaussian(n, dh, 0.8f));
    p.k.push_back(rng.gaussian(n, dh, 0.8f));
    p.v.push_back(rng.gaussian(n, dh, 0.8f));
    p.d_out.push_back(rng.gaussian(n, dh, 0.8f));
  }
  return p;
}

struct HeadResults {
  std::vector<Tensor> o, dq, dk, dv;
};

HeadResults reference(const MultiHeadProblem& p, const MaskSpec& mask) {
  HeadResults r;
  const IndexMap full = IndexMap::range(0, p.n);
  for (int h = 0; h < p.heads; ++h) {
    const std::size_t hi = static_cast<std::size_t>(h);
    auto fwd = kernels::reference_attention_forward(p.q[hi], full, p.k[hi],
                                                    p.v[hi], full, mask,
                                                    p.scale);
    auto bwd = kernels::reference_attention_backward(p.q[hi], p.k[hi], p.v[hi],
                                                     fwd, p.d_out[hi], p.scale);
    r.o.push_back(std::move(fwd.o));
    r.dq.push_back(std::move(bwd.dq));
    r.dk.push_back(std::move(bwd.dk));
    r.dv.push_back(std::move(bwd.dv));
  }
  return r;
}

std::vector<Tensor> shard_heads(const std::vector<Tensor>& heads,
                                const IndexMap& map) {
  std::vector<Tensor> out;
  out.reserve(heads.size());
  for (const auto& h : heads) {
    out.push_back(shard_rows(h, map));
  }
  return out;
}

TEST(Ulysses, ForwardBackwardMatchReference) {
  MultiHeadProblem p = make_problem(5, 48, 4, 8);
  const int g = 4;
  const MaskSpec mask = MaskSpec::causal();
  Cluster cluster({Topology::single_node(g)});
  HeadResults got;
  for (int h = 0; h < p.heads; ++h) {
    got.o.push_back(Tensor::zeros(p.n, p.dh));
    got.dq.push_back(Tensor::zeros(p.n, p.dh));
    got.dk.push_back(Tensor::zeros(p.n, p.dh));
    got.dv.push_back(Tensor::zeros(p.n, p.dh));
  }
  std::mutex mu;
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    Communicator comm(comm_tp);
    UlyssesConfig cfg;
    cfg.mask = mask;
    cfg.scale = p.scale;
    cfg.seq_len = p.n;
    cfg.num_heads = p.heads;
    const IndexMap map =
        device_index_map(Balance::kContiguous, p.n, g, ctx.rank());
    UlyssesSaved saved;
    auto o_local = ulysses_forward(comm, cfg, shard_heads(p.q, map),
                                   shard_heads(p.k, map),
                                   shard_heads(p.v, map), &saved);
    auto grads = ulysses_backward(comm, cfg, saved, shard_heads(p.d_out, map));
    std::lock_guard lock(mu);
    for (int h = 0; h < p.heads; ++h) {
      const std::size_t hi = static_cast<std::size_t>(h);
      unshard_rows(got.o[hi], map, o_local[hi]);
      unshard_rows(got.dq[hi], map, grads.dq[hi]);
      unshard_rows(got.dk[hi], map, grads.dk[hi]);
      unshard_rows(got.dv[hi], map, grads.dv[hi]);
    }
  });
  HeadResults ref = reference(p, mask);
  for (int h = 0; h < p.heads; ++h) {
    const std::size_t hi = static_cast<std::size_t>(h);
    EXPECT_LT(tensor::max_abs_diff(got.o[hi], ref.o[hi]), 2e-4f) << "head " << h;
    EXPECT_LT(tensor::max_abs_diff(got.dq[hi], ref.dq[hi]), 2e-4f);
    EXPECT_LT(tensor::max_abs_diff(got.dk[hi], ref.dk[hi]), 2e-4f);
    EXPECT_LT(tensor::max_abs_diff(got.dv[hi], ref.dv[hi]), 2e-4f);
  }
}

TEST(Ulysses, MultipleHeadsPerDevice) {
  MultiHeadProblem p = make_problem(6, 32, 4, 4);
  const int g = 2;  // 2 heads per device
  Cluster cluster({Topology::single_node(g)});
  HeadResults ref = reference(p, MaskSpec::full());
  std::vector<float> err(static_cast<std::size_t>(g), 1.0f);
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    Communicator comm(comm_tp);
    UlyssesConfig cfg;
    cfg.mask = MaskSpec::full();
    cfg.scale = p.scale;
    cfg.seq_len = p.n;
    cfg.num_heads = p.heads;
    const IndexMap map =
        device_index_map(Balance::kContiguous, p.n, g, ctx.rank());
    UlyssesSaved saved;
    auto o_local = ulysses_forward(comm, cfg, shard_heads(p.q, map),
                                   shard_heads(p.k, map),
                                   shard_heads(p.v, map), &saved);
    float e = 0.0f;
    for (int h = 0; h < p.heads; ++h) {
      Tensor expected = shard_rows(ref.o[static_cast<std::size_t>(h)], map);
      e = std::max(e, tensor::max_abs_diff(
                          o_local[static_cast<std::size_t>(h)], expected));
    }
    err[static_cast<std::size_t>(ctx.rank())] = e;
  });
  for (int r = 0; r < g; ++r) {
    EXPECT_LT(err[static_cast<std::size_t>(r)], 2e-4f);
  }
}

// The paper's Figure 14 point: 40 heads on 32 GPUs makes head parallelism
// inapplicable. Reproduced as a configuration error.
TEST(Ulysses, IndivisibleHeadCountThrows) {
  const int g = 4;
  Cluster cluster({Topology::single_node(g)});
  EXPECT_THROW(
      cluster.run([&](DeviceContext& ctx) {
        comm::SimTransport comm_tp(ctx);
        Communicator comm(comm_tp);
        UlyssesConfig cfg;
        cfg.seq_len = 8 * g;
        cfg.num_heads = 5;  // 5 % 4 != 0
        std::vector<Tensor> qkv(5, Tensor::zeros(8, 4));
        ulysses_forward(comm, cfg, qkv, qkv, qkv, nullptr);
      }),
      UlyssesConfigError);
}

class UspMatches
    : public ::testing::TestWithParam<std::tuple<int, Balance, BackwardComm>> {
};

TEST_P(UspMatches, ForwardBackwardMatchReference) {
  const auto [gh, balance, backward] = GetParam();
  MultiHeadProblem p = make_problem(9, 64, 4, 8);
  const int g = 4;
  const MaskSpec mask = MaskSpec::causal();
  Cluster cluster({Topology::single_node(g)});
  HeadResults got;
  for (int h = 0; h < p.heads; ++h) {
    got.o.push_back(Tensor::zeros(p.n, p.dh));
    got.dq.push_back(Tensor::zeros(p.n, p.dh));
    got.dk.push_back(Tensor::zeros(p.n, p.dh));
    got.dv.push_back(Tensor::zeros(p.n, p.dh));
  }
  std::mutex mu;
  cluster.run([&](DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    Communicator comm(comm_tp);
    UspConfig cfg;
    cfg.mask = mask;
    cfg.scale = p.scale;
    cfg.seq_len = p.n;
    cfg.num_heads = p.heads;
    cfg.head_parallel = gh;
    cfg.balance = balance;
    cfg.backward = backward;
    const IndexMap map = usp_local_index_map(cfg, g, ctx.rank());
    UspSaved saved;
    auto o_local = usp_forward(comm, cfg, shard_heads(p.q, map),
                               shard_heads(p.k, map), shard_heads(p.v, map),
                               &saved);
    auto grads = usp_backward(comm, cfg, saved, shard_heads(p.d_out, map));
    std::lock_guard lock(mu);
    for (int h = 0; h < p.heads; ++h) {
      const std::size_t hi = static_cast<std::size_t>(h);
      unshard_rows(got.o[hi], map, o_local[hi]);
      unshard_rows(got.dq[hi], map, grads.dq[hi]);
      unshard_rows(got.dk[hi], map, grads.dk[hi]);
      unshard_rows(got.dv[hi], map, grads.dv[hi]);
    }
  });
  HeadResults ref = reference(p, mask);
  for (int h = 0; h < p.heads; ++h) {
    const std::size_t hi = static_cast<std::size_t>(h);
    EXPECT_LT(tensor::max_abs_diff(got.o[hi], ref.o[hi]), 3e-4f) << "head " << h;
    EXPECT_LT(tensor::max_abs_diff(got.dq[hi], ref.dq[hi]), 3e-4f);
    EXPECT_LT(tensor::max_abs_diff(got.dk[hi], ref.dk[hi]), 3e-4f);
    EXPECT_LT(tensor::max_abs_diff(got.dv[hi], ref.dv[hi]), 3e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, UspMatches,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(Balance::kContiguous,
                                         Balance::kZigzag),
                       ::testing::Values(BackwardComm::kRing,
                                         BackwardComm::kBurst)));

TEST(Usp, InvalidHeadParallelThrows) {
  const int g = 4;
  Cluster cluster({Topology::single_node(g)});
  EXPECT_THROW(
      cluster.run([&](DeviceContext& ctx) {
        comm::SimTransport comm_tp(ctx);
        Communicator comm(comm_tp);
        UspConfig cfg;
        cfg.seq_len = 16;
        cfg.num_heads = 4;
        cfg.head_parallel = 3;  // does not divide 4
        std::vector<Tensor> qkv(4, Tensor::zeros(4, 4));
        usp_forward(comm, cfg, qkv, qkv, qkv, nullptr);
      }),
      std::invalid_argument);
}

TEST(Usp, LocalIndexMapPartitionsSequence) {
  UspConfig cfg;
  cfg.seq_len = 64;
  cfg.num_heads = 4;
  cfg.head_parallel = 2;
  cfg.balance = Balance::kZigzag;
  std::set<std::int64_t> seen;
  for (int r = 0; r < 4; ++r) {
    IndexMap m = usp_local_index_map(cfg, 4, r);
    EXPECT_EQ(m.size(), 16);
    for (std::int64_t i = 0; i < m.size(); ++i) {
      seen.insert(m.global(i));
    }
  }
  EXPECT_EQ(seen.size(), 64u);
}

}  // namespace
}  // namespace burst::core
