// Capacity planner: given a model (7b | 14b), a cluster (nodes x gpus) and a
// sequence length, print — for every parallelization method — whether the
// setting fits in 80 GB HBM and the predicted TGS / MFU / peak memory from
// the calibrated A800 performance model.
//
// Usage: capacity_planner [7b|14b] [nodes] [gpus_per_node] [seq_tokens]
// Defaults: 7b 4 8 2000000
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "perfmodel/estimator.hpp"

int main(int argc, char** argv) {
  using namespace burst;
  using perfmodel::Method;

  model::ModelConfig model = model::ModelConfig::llama7b();
  const char* model_name = "7B";
  int nodes = 4;
  int gpus = 8;
  double seq = 2e6;
  if (argc > 1 && std::strcmp(argv[1], "14b") == 0) {
    model = model::ModelConfig::llama14b();
    model_name = "14B";
  }
  if (argc > 2) {
    nodes = std::atoi(argv[2]);
  }
  if (argc > 3) {
    gpus = std::atoi(argv[3]);
  }
  if (argc > 4) {
    seq = std::atof(argv[4]);
  }

  std::printf("capacity plan: %s model, %d x %d GPUs, %.0f tokens\n\n",
              model_name, nodes, gpus, seq);
  std::printf("%-24s %-10s %-8s %-10s %-9s %s\n", "method", "TGS", "MFU%",
              "mem (GB)", "degree", "notes");

  for (Method m :
       {Method::kMegatronCP, Method::kUlysses, Method::kDoubleRing,
        Method::kUSP, Method::kBurstEngine}) {
    perfmodel::RunConfig cfg;
    cfg.model = model;
    cfg.seq_len = seq;
    cfg.cluster = {nodes, gpus};
    cfg.method = m;
    auto est = estimate_step(cfg);
    if (est.ok) {
      std::printf("%-24s %-10.1f %-8.1f %-10.1f %-9d %s\n",
                  perfmodel::method_name(m), est.tgs, 100.0 * est.mfu,
                  est.memory.total() / 1e9, est.parallel_degree, "");
    } else {
      std::printf("%-24s %-10s %-8s %-10s %-9d %s\n",
                  perfmodel::method_name(m), "-", "-", "-",
                  est.parallel_degree, est.failure.c_str());
    }
  }

  // Show the BurstEngine breakdown for tuning intuition.
  perfmodel::RunConfig cfg;
  cfg.model = model;
  cfg.seq_len = seq;
  cfg.cluster = {nodes, gpus};
  cfg.method = Method::kBurstEngine;
  auto est = estimate_step(cfg);
  if (est.ok) {
    std::printf("\nBurstEngine step breakdown (s): compute %.1f, recompute "
                "%.1f, exposed ring comm %.2f, FSDP exposed %.2f\n",
                est.compute_s, est.recompute_s, est.attn_comm_exposed_s,
                est.fsdp_exposed_s);
    const auto& mm = est.memory;
    std::printf("memory breakdown (GB): states %.1f, activations %.1f, "
                "working %.1f, LM head %.2f, buffers %.1f, reserved %.1f\n",
                (mm.param_shard + mm.grad_shard + mm.optimizer +
                 mm.gathered_layer) / 1e9,
                mm.activations / 1e9, mm.working_set / 1e9, mm.lm_head / 1e9,
                mm.comm_buffers / 1e9, mm.reserved / 1e9);
  }
  return 0;
}
