// Quickstart: run BurstAttention across a simulated 4-GPU cluster and check
// it against single-device attention.
//
//   1. build a toy attention problem (one head, 128 tokens),
//   2. shard Q/K/V with zigzag workload balance,
//   3. run the distributed forward + backward (Algorithm 2),
//   4. gather the shards and compare with the local reference,
//   5. read the per-phase byte accounting off an attached metrics registry.
#include <cmath>
#include <cstdio>
#include <mutex>

#include "comm/communicator.hpp"
#include "comm/sim_transport.hpp"
#include "core/dist_attention.hpp"
#include "core/partition.hpp"
#include "kernels/reference_attention.hpp"
#include "obs/metrics.hpp"
#include "sim/cluster.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

int main() {
  using namespace burst;

  const std::int64_t n = 128;  // global sequence length
  const std::int64_t d = 32;   // head dimension
  const int gpus = 4;

  // A toy attention problem.
  tensor::Rng rng(2024);
  tensor::Tensor q = rng.gaussian(n, d, 0.7f);
  tensor::Tensor k = rng.gaussian(n, d, 0.7f);
  tensor::Tensor v = rng.gaussian(n, d, 0.7f);
  tensor::Tensor d_out = rng.gaussian(n, d, 0.7f);

  core::DistAttnConfig cfg;
  cfg.mask = kernels::MaskSpec::causal();
  cfg.scale = 1.0f / std::sqrt(static_cast<float>(d));
  cfg.balance = core::Balance::kZigzag;       // Figure 10's balance
  cfg.backward = core::BackwardComm::kBurst;  // Algorithm 2
  cfg.seq_len = n;

  // Simulated single-node cluster; each rank runs the same SPMD function.
  // The registry is observation-only: attaching it changes no result bit.
  obs::Registry metrics;
  sim::Cluster::Config cc;
  cc.topo = sim::Topology::single_node(gpus);
  cc.metrics = &metrics;
  sim::Cluster cluster(cc);
  tensor::Tensor o_global = tensor::Tensor::zeros(n, d);
  tensor::Tensor dq_global = tensor::Tensor::zeros(n, d);
  std::mutex mu;

  cluster.run([&](sim::DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    const auto route = core::SweepRoute::flat(comm::flat_ring(gpus));
    const auto map = core::route_index_map(route, cfg, ctx.rank());

    core::LocalQKV local{core::shard_rows(q, map), core::shard_rows(k, map),
                         core::shard_rows(v, map)};
    auto fwd = core::dist_attention_forward(comm, route, cfg, local);
    auto grads = core::dist_attention_backward(comm, route, cfg, local, fwd,
                                               core::shard_rows(d_out, map));

    std::lock_guard lock(mu);
    core::unshard_rows(o_global, map, fwd.o);
    core::unshard_rows(dq_global, map, grads.dq);
  });

  // Single-device reference.
  const auto id = kernels::IndexMap::range(0, n);
  auto ref_fwd =
      kernels::reference_attention_forward(q, id, k, v, id, cfg.mask, cfg.scale);
  auto ref_bwd =
      kernels::reference_attention_backward(q, k, v, ref_fwd, d_out, cfg.scale);

  std::printf("BurstAttention on %d simulated GPUs, N=%lld, d=%lld\n", gpus,
              static_cast<long long>(n), static_cast<long long>(d));
  std::printf("  max |O_dist - O_ref|   = %.3e\n",
              tensor::max_abs_diff(o_global, ref_fwd.o));
  std::printf("  max |dQ_dist - dQ_ref| = %.3e\n",
              tensor::max_abs_diff(dq_global, ref_bwd.dq));
  std::printf("  simulated step time    = %.1f us\n",
              cluster.makespan() * 1e6);
  std::printf("  per-device wire bytes  = %llu (fwd+bwd)\n",
              static_cast<unsigned long long>(cluster.stats()[0].bytes_sent));
  // Per-phase accounting from the registry: Algorithm 2's backward
  // circulates 3Nd + 2N elements per rank (vs RingAttention's 4Nd); the
  // wire count below excludes the own-shard first hop, which stays local.
  std::printf("  rank-0 backward bytes  = %llu (Algorithm 2: 3Nd+2N)\n",
              static_cast<unsigned long long>(
                  metrics.counter("attn.backward.bytes{rank=0}").value()));
  const bool ok = tensor::max_abs_diff(o_global, ref_fwd.o) < 1e-4f &&
                  tensor::max_abs_diff(dq_global, ref_bwd.dq) < 1e-4f;
  std::printf("%s\n", ok ? "OK: distributed == reference"
                         : "FAIL: mismatch vs reference");
  return ok ? 0 : 1;
}
