// Resilient training quickstart: a BurstAttention training run that
// survives an injected device crash.
//
// Four simulated devices train the toy model for 8 steps with a durable
// snapshot every 2 steps. A FaultPlan kills rank 2 at step 5; the
// supervisor (resilience::resilient_train_loop) detects the failure,
// restores the step-4 snapshot, replays, and finishes all 8 steps. Because
// snapshots capture the complete training state (weights, Adam moments,
// data-RNG state) and the simulator is deterministic, the final weights
// are bitwise identical to a fault-free run — which this example verifies
// and fails loudly on if it ever regresses.
//
// Run:  build/examples/resilient_training
#include <cstdio>
#include <filesystem>

#include "obs/report.hpp"
#include "resilience/driver.hpp"
#include "resilience/snapshot.hpp"
#include "sim/cluster.hpp"

namespace fs = std::filesystem;

int main() {
  using namespace burst;
  using resilience::ResilienceConfig;
  using resilience::ResilienceReport;

  const fs::path base = fs::temp_directory_path() / "burst-resilient-example";
  fs::remove_all(base);

  const auto make_config = [&](const char* tag, bool crash) {
    ResilienceConfig cfg;
    cfg.dist.model = model::ModelConfig::toy();
    cfg.dist.impl = model::AttnImpl::kBurst;
    cfg.cluster.topo = sim::Topology::single_node(4);
    cfg.total_steps = 8;
    cfg.snapshot_interval = 2;
    cfg.seq_len = 32;
    cfg.snapshot_dir = (base / tag).string();
    if (crash) {
      sim::FaultPlan::CrashDevice c;
      c.rank = 2;
      c.at_step = 5;
      cfg.cluster.faults.crashes.push_back(c);
    }
    return cfg;
  };

  const model::ModelWeights init =
      model::ModelWeights::init(model::ModelConfig::toy(), 7);

  std::printf("=== Resilient BurstAttention training ===\n\n");
  std::printf("4 devices, 8 steps, snapshot every 2 steps;\n");
  std::printf("FaultPlan: rank 2 crashes at step 5.\n\n");

  const ResilienceReport ref =
      resilience::resilient_train_loop(make_config("clean", false), init);
  std::printf("fault-free run : %d steps, loss %.4f -> %.4f\n",
              ref.steps_completed, ref.losses.front(), ref.final_loss);

  const ResilienceReport rep =
      resilience::resilient_train_loop(make_config("faulty", true), init);
  std::printf("faulted run    : %d steps, loss %.4f -> %.4f\n\n",
              rep.steps_completed, rep.losses.front(), rep.final_loss);

  for (const auto& ev : rep.events) {
    std::printf(
        "recovery: rank %d failed at step %llu (%s)\n"
        "          detected after %.1f us, restored snapshot of step %llu "
        "in %.1f us, %d step(s) replayed\n",
        ev.failed_rank, static_cast<unsigned long long>(ev.failed_step),
        ev.cause.c_str(), ev.detect_latency_s * 1e6,
        static_cast<unsigned long long>(ev.resumed_from_step),
        ev.restore_time_s * 1e6, ev.lost_steps);
  }
  std::printf(
      "\nvirtual time %.2f ms (%.2f ms wasted: failed attempt + restore + "
      "replay)\n",
      rep.virtual_time_s * 1e3, rep.wasted_virtual_time_s * 1e3);

  const bool bitwise =
      resilience::bitwise_equal(rep.final_weights, ref.final_weights);
  std::printf("final weights bitwise identical to fault-free run: %s\n",
              bitwise ? "yes" : "NO");

  fs::remove_all(base);
  if (rep.steps_completed != 8 || rep.recoveries != 1 || !bitwise) {
    std::fprintf(stderr, "self-check FAILED\n");
    return 1;
  }
  std::printf("\nself-check passed.\n");

  // The structured counterpart of everything printed above: one RunReport,
  // same schema as the serve engine and every bench. A survived fault is
  // success — the recovery shows up in config/measurements, not errors.
  const obs::RunReport report =
      resilience::to_run_report(make_config("faulty", true), rep);
  std::printf("\n%s\n", report.to_json().c_str());
  return report.self_check() ? 0 : 1;
}
