// Quantized serving quickstart (DESIGN.md section 16): the same toy model
// served twice through the continuous-batching engine — dense bf16 weights
// vs a Q4_0 QuantSpec — printing the packed weight footprint and the
// roofline makespans side by side. Q4_0 weights stream 0.625 B/el instead
// of 2, so the per-iteration weight-stream charge (the decode bottleneck)
// shrinks 3.2x.
//
//   cmake -B build -S . && cmake --build build -j &&
//   ./build/examples/quant_serve_demo
#include <cstdio>
#include <vector>

#include "model/transformer.hpp"
#include "serve/engine.hpp"
#include "tensor/dtype.hpp"
#include "tensor/rng.hpp"

using namespace burst;

namespace {

std::vector<std::int64_t> make_prompt(std::uint64_t seed, std::int64_t n,
                                      std::int64_t vocab) {
  tensor::Rng rng(seed);
  std::vector<std::int64_t> p(static_cast<std::size_t>(n));
  for (auto& t : p) {
    t = rng.next_index(vocab);
  }
  return p;
}

struct RunOut {
  serve::ServeReport rep;
  std::uint64_t packed_bytes = 0;
};

RunOut serve_once(const model::ModelWeights& w, tensor::DType weights) {
  model::ModelConfig cfg = model::ModelConfig::toy();
  cfg.kv_heads = 2;  // GQA
  cfg.use_rope = true;
  cfg.quant.weights = weights;

  serve::EngineConfig ec;
  ec.sched.policy = serve::BatchPolicy::kContinuous;
  ec.block_tokens = 8;
  ec.hbm_bytes_per_s = 1e9;  // slow enough that the weight stream dominates
  serve::Engine engine(cfg, w, ec);
  for (int i = 0; i < 4; ++i) {
    engine.add_request(make_prompt(10 + static_cast<std::uint64_t>(i), 20,
                                   cfg.vocab),
                       /*max_new_tokens=*/8,
                       /*arrival_s=*/1e-5 * i);
  }
  return RunOut{serve::run_on_single_device(engine),
                engine.packed_weight_bytes()};
}

}  // namespace

int main() {
  model::ModelConfig cfg = model::ModelConfig::toy();
  cfg.kv_heads = 2;
  cfg.use_rope = true;
  const model::ModelWeights w = model::ModelWeights::init(cfg, 7);

  const double dense_bytes =
      static_cast<double>(cfg.param_count()) *
      tensor::dtype_bytes_per_el(tensor::DType::kBf16);

  const RunOut bf16 = serve_once(w, tensor::DType::kBf16);
  const RunOut q4 = serve_once(w, tensor::DType::kQ4_0);

  std::printf("dense bf16 : %5.1f KiB weights, %lld tokens, makespan %.1f us"
              " (%.0f tok/s)\n",
              dense_bytes / 1024.0,
              static_cast<long long>(bf16.rep.metrics.generated_tokens),
              bf16.rep.metrics.makespan_s * 1e6,
              bf16.rep.metrics.tokens_per_s);
  std::printf("packed q4_0: %5.1f KiB weights, %lld tokens, makespan %.1f us"
              " (%.0f tok/s)\n",
              static_cast<double>(q4.packed_bytes) / 1024.0,
              static_cast<long long>(q4.rep.metrics.generated_tokens),
              q4.rep.metrics.makespan_s * 1e6, q4.rep.metrics.tokens_per_s);
  std::printf("weight stream shrinks %.2fx, makespan %.2fx\n",
              dense_bytes / static_cast<double>(q4.packed_bytes),
              bf16.rep.metrics.makespan_s / q4.rep.metrics.makespan_s);

  // Self-check (examples double as smoke tests): the quantized run must
  // complete every request, be smaller, and be faster on the roofline.
  const bool ok = q4.packed_bytes > 0 &&
                  static_cast<double>(q4.packed_bytes) < dense_bytes &&
                  q4.rep.metrics.makespan_s < bf16.rep.metrics.makespan_s &&
                  q4.rep.metrics.generated_tokens ==
                      bf16.rep.metrics.generated_tokens;
  if (!ok) {
    std::printf("FAIL: quantized run did not beat dense bf16\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
