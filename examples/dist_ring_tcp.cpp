// Distributed ring collectives over real TCP processes.
//
// The smallest end-to-end proof of the pluggable transport layer: this
// launcher forks one OS process per rank, every rank builds a
// comm::SocketTransport mesh on loopback through the root/worker rendezvous,
// and the exact same Communicator collectives that drive the virtual-clock
// simulator — ring all-gather and pairwise all-to-all — run across real
// kernel sockets. Each rank verifies its results element-wise and the parent
// aggregates child exit codes, so the example doubles as a ctest smoke test
// (registered for 2 and 4 ranks).
//
// The rendezvous port race is avoided by binding before forking: the parent
// calls SocketTransport::bind_rendezvous_listener (port 0 -> OS-assigned),
// rank 0 inherits the listening fd across fork, and every rank gets the real
// port number. A standalone multi-host launch would instead pass a
// well-known --port to rank 0 and the same host:port to the workers.
//
//   Usage: dist_ring_tcp [world_size]   (default 4)
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/socket_transport.hpp"
#include "tensor/tensor.hpp"

namespace {

using burst::comm::Communicator;
using burst::comm::SocketTransport;
using burst::comm::SocketTransportConfig;
using burst::tensor::Tensor;

/// One rank's work: join the mesh, run the collectives, verify locally.
/// Returns a process exit code (0 = every element checked out).
int run_rank(int rank, int world, std::uint16_t port, int listen_fd) {
  try {
    SocketTransportConfig cfg;
    cfg.rank = rank;
    cfg.world_size = world;
    cfg.root.port = port;
    cfg.rendezvous_listen_fd = rank == 0 ? listen_fd : -1;
    SocketTransport tp(cfg);
    Communicator comm(tp);

    // Ring all-gather: every rank contributes a [2, 3] shard stamped with
    // its rank; the concatenation must come back rank-ordered everywhere.
    const std::int64_t m = 2, c = 3;
    Tensor local(m, c);
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < c; ++j) {
        local(i, j) = static_cast<float>(100 * rank + 10 * i + j);
      }
    }
    Tensor full = comm.all_gather_rows(local);
    bool ok = full.rows() == m * world && full.cols() == c;
    for (int src = 0; src < world && ok; ++src) {
      for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < c; ++j) {
          ok = ok && full(src * m + i, j) ==
                         static_cast<float>(100 * src + 10 * i + j);
        }
      }
    }
    if (!ok) {
      std::fprintf(stderr, "rank %d: all_gather_rows mismatch\n", rank);
      return 1;
    }

    // Pairwise all-to-all: rank r's send[j] must arrive as rank j's got[r].
    std::vector<Tensor> send;
    for (int dst = 0; dst < world; ++dst) {
      send.push_back(Tensor::full(1, 2, static_cast<float>(10 * rank + dst)));
    }
    std::vector<Tensor> got = comm.all_to_all(std::move(send));
    for (int src = 0; src < world && ok; ++src) {
      const Tensor& t = got[static_cast<std::size_t>(src)];
      ok = ok && t(0, 0) == static_cast<float>(10 * src + rank) &&
           t(0, 1) == static_cast<float>(10 * src + rank);
    }
    if (!ok) {
      std::fprintf(stderr, "rank %d: all_to_all mismatch\n", rank);
      return 1;
    }

    tp.barrier();  // nobody exits (and closes sockets) before everyone is done
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rank %d: %s\n", rank, e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  int world = 4;
  if (argc > 1) {
    world = std::atoi(argv[1]);
  }
  if (world < 1 || world > 16) {
    std::fprintf(stderr, "usage: %s [world_size in 1..16]\n", argv[0]);
    return 2;
  }

  // Bind the rendezvous before forking so no rank can dial a not-yet-bound
  // port: rank 0 inherits the fd, everyone learns the OS-assigned port.
  std::uint16_t port = 0;
  const int listen_fd = SocketTransport::bind_rendezvous_listener(&port);
  std::fflush(nullptr);  // don't duplicate buffered output into children

  std::vector<pid_t> children;
  for (int r = 0; r < world; ++r) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      return 2;
    }
    if (pid == 0) {
      if (r != 0) {
        close(listen_fd);  // only rank 0 serves the rendezvous
      }
      std::_Exit(run_rank(r, world, port, listen_fd));
    }
    children.push_back(pid);
  }
  close(listen_fd);  // the parent's copy; rank 0 owns the live one

  int failures = 0;
  for (int r = 0; r < world; ++r) {
    int status = 0;
    if (waitpid(children[static_cast<std::size_t>(r)], &status, 0) < 0 ||
        !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "rank %d exited abnormally (status 0x%x)\n", r,
                   static_cast<unsigned>(status));
      ++failures;
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "dist_ring_tcp: %d/%d ranks failed\n", failures,
                 world);
    return 1;
  }
  std::printf(
      "dist_ring_tcp: %d OS processes over TCP — ring all-gather + "
      "all-to-all verified on every rank\n",
      world);
  return 0;
}
