// Sparse attention integration demo (Section 3.4): run distributed
// attention with a block-wise sliding-window mask under each workload
// balance strategy, verify numerics against the reference, and print the
// per-device FLOP distribution that makes striped balance the right choice
// for block-sparse masks (Figure 11).
#include <cmath>
#include <cstdio>
#include <mutex>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/sim_transport.hpp"
#include "core/dist_attention.hpp"
#include "core/partition.hpp"
#include "kernels/reference_attention.hpp"
#include "sim/cluster.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

int main() {
  using namespace burst;

  const std::int64_t n = 512;
  const std::int64_t d = 16;
  const int gpus = 8;
  const std::int64_t block = 64;  // multiple of G, as Section 3.4 requires
  const auto mask =
      kernels::MaskSpec::block_sliding_window(n / block, 2, block);

  tensor::Rng rng(11);
  tensor::Tensor q = rng.gaussian(n, d, 0.6f);
  tensor::Tensor k = rng.gaussian(n, d, 0.6f);
  tensor::Tensor v = rng.gaussian(n, d, 0.6f);

  const auto id = kernels::IndexMap::range(0, n);
  auto ref = kernels::reference_attention_forward(q, id, k, v, id, mask,
                                                  1.0f / std::sqrt(16.0f));

  std::printf("block-sparse sliding window: %lld tokens, %lld-token blocks, "
              "window 2 blocks, %d devices\n\n",
              static_cast<long long>(n), static_cast<long long>(block), gpus);

  for (core::Balance b : {core::Balance::kContiguous, core::Balance::kZigzag,
                          core::Balance::kStriped}) {
    core::DistAttnConfig cfg;
    cfg.mask = mask;
    cfg.scale = 1.0f / std::sqrt(16.0f);
    cfg.balance = b;
    cfg.seq_len = n;

    sim::Cluster cluster({sim::Topology::single_node(gpus)});
    tensor::Tensor o_global = tensor::Tensor::zeros(n, d);
    std::vector<std::uint64_t> flops(gpus, 0);
    std::mutex mu;
    cluster.run([&](sim::DeviceContext& ctx) {
      comm::SimTransport comm_tp(ctx);
      comm::Communicator comm(comm_tp);
      const auto route = core::SweepRoute::flat(comm::flat_ring(gpus));
      const auto map = core::route_index_map(route, cfg, ctx.rank());
      core::LocalQKV local{core::shard_rows(q, map), core::shard_rows(k, map),
                           core::shard_rows(v, map)};
      kernels::KernelStats stats;
      auto fwd = core::dist_attention_forward(comm, route, cfg, local, &stats);
      std::lock_guard lock(mu);
      core::unshard_rows(o_global, map, fwd.o);
      flops[static_cast<std::size_t>(ctx.rank())] = stats.flops;
    });

    std::uint64_t max_f = 0;
    std::uint64_t sum_f = 0;
    for (auto f : flops) {
      max_f = std::max(max_f, f);
      sum_f += f;
    }
    const double imbalance =
        static_cast<double>(max_f) / (static_cast<double>(sum_f) / gpus);
    std::printf("%-11s max|O-ref| = %.2e   per-device FLOPs (M):",
                core::balance_name(b), tensor::max_abs_diff(o_global, ref.o));
    for (auto f : flops) {
      std::printf(" %5.1f", static_cast<double>(f) / 1e6);
    }
    std::printf("   imbalance %.2fx   virtual time %.0f us\n", imbalance,
                cluster.makespan() * 1e6);
  }
  std::printf("\nstriped balance gives every device an identical share of "
              "every block (Figure 11), so its imbalance factor is 1.00x.\n"
              "note: striped shards interleave tokens, so kernel tiles span "
              "scattered global positions and skip fewer fully-masked tiles —\n"
              "the per-device totals are higher but *equal*, which is what "
              "removes the idle time that gates the unbalanced variants.\n");
  return 0;
}
