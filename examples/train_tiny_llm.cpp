// End-to-end demo: train a tiny LLaMA-style model on a synthetic
// repeated-pattern language with the full BurstEngine pipeline — zigzag
// context parallelism, BurstAttention, sequence-level selective
// checkpointing, fused LM head — on a simulated 2-node x 2-GPU cluster, and
// watch the loss fall in lockstep with serial training.
#include <cstdio>
#include <mutex>

#include "comm/communicator.hpp"
#include "comm/sim_transport.hpp"
#include "model/dist_model.hpp"
#include "model/transformer.hpp"
#include "sim/cluster.hpp"
#include "tensor/rng.hpp"

namespace {

// Synthetic "language": token t is followed by (3t + 7) mod V with noise —
// learnable by a 2-layer model in a few dozen steps.
burst::tensor::Tensor make_sequence(std::uint64_t seed, std::int64_t len,
                                    std::int64_t vocab) {
  burst::tensor::Rng rng(seed);
  burst::tensor::Tensor t(len);
  std::int64_t cur = rng.next_index(vocab);
  for (std::int64_t i = 0; i < len; ++i) {
    t[i] = static_cast<float>(cur);
    cur = rng.next_uniform() < 0.9 ? (3 * cur + 7) % vocab
                                   : rng.next_index(vocab);
  }
  return t;
}

}  // namespace

int main() {
  using namespace burst;

  model::ModelConfig cfg = model::ModelConfig::toy();
  model::ModelWeights weights = model::ModelWeights::init(cfg, 7);
  model::ModelWeights serial_weights = weights;

  model::DistTrainConfig dist_cfg;
  dist_cfg.model = cfg;
  dist_cfg.impl = model::AttnImpl::kBurst;
  dist_cfg.balance = core::Balance::kZigzag;
  dist_cfg.ckpt = {core::CkptStrategy::kSeqSelective, 0.5};
  dist_cfg.fused_lm_head = true;
  dist_cfg.topo_aware = true;

  sim::Cluster cluster({sim::Topology::multi_node(2, 2)});
  const float lr = 0.05f;
  const int steps = 12;

  std::printf("training a %lld-layer d=%lld toy LLM on a simulated 2x2 "
              "cluster (BurstAttention, zigzag, seq-selective ckpt)\n\n",
              static_cast<long long>(cfg.layers),
              static_cast<long long>(cfg.d_model));
  std::printf("%-5s %-14s %-14s %-10s\n", "step", "dist loss", "serial loss",
              "|diff|");

  tensor::Tensor tokens = make_sequence(100, 33, cfg.vocab);
  for (int step = 0; step < steps; ++step) {
    auto serial = model::serial_train_step(cfg, serial_weights, tokens,
                                           kernels::MaskSpec::causal());
    model::apply_sgd(serial_weights, serial.grads, lr);

    double dist_loss = 0.0;
    std::mutex mu;
    model::ModelGrads dist_grads = model::ModelGrads::zeros(cfg);
    cluster.run([&](sim::DeviceContext& ctx) {
      comm::SimTransport comm_tp(ctx);
      comm::Communicator comm(comm_tp);
      auto r = model::dist_train_step(comm, dist_cfg, weights, tokens);
      if (ctx.rank() == 0) {
        std::lock_guard lock(mu);
        dist_loss = r.loss;
        dist_grads = std::move(r.grads);
      }
    });
    model::apply_sgd(weights, dist_grads, lr);

    std::printf("%-5d %-14.6f %-14.6f %-10.2e\n", step, dist_loss,
                serial.loss, std::abs(dist_loss - serial.loss));
  }

  std::printf("\nfinal virtual step time on the simulated cluster: %.2f ms\n",
              cluster.makespan() * 1e3);
  std::printf("peak simulated device memory: %.1f KiB (activations + LM-head "
              "scratch, as-if bf16)\n",
              static_cast<double>(cluster.stats()[0].peak_mem_bytes) / 1024.0);
  return 0;
}
