// Serving front door quickstart: JSON completion requests from two tenants
// flow through the ApiServer (parse -> validate -> admit -> SLO-aware
// schedule) and come back as virtual-time-ordered token streams, followed by
// an admission-control section where a same-instant burst overflows a tiny
// waiting queue and the overflow is shed as typed 429s.
//
//   cmake -B build -S . && cmake --build build -j && ./build/examples/api_demo
//
// Everything runs on the virtual clock, so the output is byte-identical on
// every machine and every run.
#include <cstdio>
#include <string>
#include <utility>

#include "api/loadgen.hpp"
#include "api/parser.hpp"
#include "api/server.hpp"
#include "model/transformer.hpp"

using namespace burst;

namespace {

model::ModelConfig demo_model() {
  model::ModelConfig cfg = model::ModelConfig::toy();
  cfg.kv_heads = 2;  // GQA
  cfg.use_rope = true;
  return cfg;
}

std::string prompt_json(std::uint64_t seed, std::int64_t len,
                        std::int64_t vocab) {
  const auto toks = api::LoadGen::materialize_prompt(seed, len, vocab);
  std::string out = "[";
  for (std::size_t i = 0; i < toks.size(); ++i) {
    out += (i ? "," : "") + std::to_string(toks[i]);
  }
  return out + "]";
}

}  // namespace

int main() {
  const model::ModelConfig cfg = demo_model();
  const model::ModelWeights w = model::ModelWeights::init(cfg, 7);

  // --- the front door: JSON in, SLO-scheduled token streams out -----------
  api::ApiServerConfig sc;
  sc.engine.sched.policy = serve::BatchPolicy::kSlo;
  sc.engine.sched.token_budget = 32;
  sc.engine.sched.chunk_tokens = 16;
  sc.engine.block_tokens = 8;
  sc.tenant_weights = {{"acme", 3.0}, {"widgets", 1.0}};
  api::ApiServer server(cfg, w, sc);

  api::CollectingSink sink;
  server.submit(0.0,
                R"({"tenant": "widgets", "priority": "batch", "prompt": )" +
                    prompt_json(1, 24, cfg.vocab) + R"(, "max_tokens": 8})",
                &sink);
  server.submit(0.0,
                R"({"tenant": "acme", "priority": "standard", "prompt": )" +
                    prompt_json(2, 24, cfg.vocab) + R"(, "max_tokens": 8})",
                &sink);
  server.submit(2e-4,
                R"({"tenant": "acme", "priority": "interactive", "prompt": )" +
                    prompt_json(3, 16, cfg.vocab) +
                    R"(, "max_tokens": 6, "ttft_slo_ms": 1.0})",
                &sink);
  // A malformed body never reaches the engine: typed 400, delivered now.
  server.submit(0.0, R"({"prompt": "not token ids"})", &sink);

  const api::ApiServer::Report rep = server.run();
  std::printf("front door: %lld completed, %lld rejected, %lld invalid "
              "(%lld tokens in %.1f us of virtual time, %lld preemption(s))\n",
              static_cast<long long>(rep.completed),
              static_cast<long long>(rep.rejected),
              static_cast<long long>(rep.invalid),
              static_cast<long long>(rep.metrics.generated_tokens),
              rep.metrics.makespan_s * 1e6,
              static_cast<long long>(rep.metrics.preempted));
  for (const auto& [id, err] : sink.errors) {
    std::printf("  error (request %lld): %s\n", static_cast<long long>(id),
                api::to_json(err).c_str());
  }
  for (const auto& c : sink.completions) {
    std::printf("  request %lld %s/%s: ttft %.0f ns, %lld+%lld tokens:",
                static_cast<long long>(c.request_id), c.tenant.c_str(),
                c.finish_reason.c_str(), c.ttft_s() * 1e9,
                static_cast<long long>(c.usage.prompt_tokens),
                static_cast<long long>(c.usage.completion_tokens));
    for (const auto t : c.tokens) {
      std::printf(" %lld", static_cast<long long>(t));
    }
    std::printf("\n");
  }

  // --- admission control: a burst overflows a bounded waiting queue -------
  api::ApiServerConfig ac = sc;
  ac.engine.sched.max_waiting = 2;
  api::ApiServer bursty(cfg, w, ac);
  api::CollectingSink burst_sink;
  for (std::uint64_t i = 0; i < 6; ++i) {
    api::CompletionRequest req;
    req.tenant = "acme";
    req.prompt = api::LoadGen::materialize_prompt(10 + i, 16, cfg.vocab);
    req.max_tokens = 4;
    bursty.submit(/*arrival_s=*/0.0, std::move(req), &burst_sink);
  }
  const api::ApiServer::Report brep = bursty.run();
  std::printf("\nadmission: 6 requests at t=0 against max_waiting=2 -> "
              "%lld served, %lld shed\n",
              static_cast<long long>(brep.completed),
              static_cast<long long>(brep.rejected));
  if (!burst_sink.errors.empty()) {
    const auto& [id, err] = burst_sink.errors.front();
    std::printf("  first 429 (request %lld): %s\n",
                static_cast<long long>(id), err.message.c_str());
  }
  return 0;
}
