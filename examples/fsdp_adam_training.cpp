// The paper's full training stack, end to end on the simulator:
//   FSDP parameter sharding (ZeRO-3) + Adam with optimizer offload
//   + BurstAttention with zigzag balance + sequence-level selective
//   checkpointing + fused LM head.
//
// Each device permanently stores 1/G of the weights; full layers are
// gathered on the fly; gradients are reduce-scattered; Adam updates the
// local shard only. Compare the printed per-device memory to what the
// replicated setup would hold.
#include <cmath>
#include <cstdio>
#include <mutex>

#include "comm/communicator.hpp"
#include "comm/sim_transport.hpp"
#include "model/fsdp.hpp"
#include "model/optimizer.hpp"
#include "model/transformer.hpp"
#include "obs/metrics.hpp"
#include "sim/cluster.hpp"
#include "tensor/rng.hpp"

namespace {

// Shard-only Adam: moments sized to the local shard tensors.
class ShardAdam {
 public:
  ShardAdam(const burst::model::FsdpShards& shards, float lr) : lr_(lr) {
    visit(shards, [this](const burst::tensor::Tensor& t) {
      m_.emplace_back(static_cast<std::size_t>(t.numel()), 0.0f);
      v_.emplace_back(static_cast<std::size_t>(t.numel()), 0.0f);
    });
  }

  void step(burst::model::FsdpShards& w,
            const burst::model::FsdpShards& g) {
    ++t_;
    std::size_t idx = 0;
    std::vector<burst::tensor::Tensor*> wt;
    std::vector<const burst::tensor::Tensor*> gt;
    visit(w, [&](burst::tensor::Tensor& t) { wt.push_back(&t); });
    visit(g, [&](const burst::tensor::Tensor& t) { gt.push_back(&t); });
    const float bc1 = 1.0f - std::pow(0.9f, static_cast<float>(t_));
    const float bc2 = 1.0f - std::pow(0.999f, static_cast<float>(t_));
    for (; idx < wt.size(); ++idx) {
      auto& m = m_[idx];
      auto& v = v_[idx];
      for (std::int64_t i = 0; i < wt[idx]->numel(); ++i) {
        const float grad = gt[idx]->data()[i];
        const std::size_t si = static_cast<std::size_t>(i);
        m[si] = 0.9f * m[si] + 0.1f * grad;
        v[si] = 0.999f * v[si] + 0.001f * grad * grad;
        wt[idx]->data()[i] -=
            lr_ * (m[si] / bc1) / (std::sqrt(v[si] / bc2) + 1e-8f);
      }
    }
  }

 private:
  template <typename W, typename Fn>
  static void visit(W& shards, Fn&& fn) {
    for (auto& l : shards.layers) {
      fn(l.wq);
      fn(l.wk);
      fn(l.wv);
      fn(l.wo);
      fn(l.w1);
      fn(l.w2);
    }
    fn(shards.w_embed);
    fn(shards.w_head);
  }

  float lr_;
  int t_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

}  // namespace

int main() {
  using namespace burst;

  model::ModelConfig cfg = model::ModelConfig::toy();
  model::ModelWeights init = model::ModelWeights::init(cfg, 42);

  model::DistTrainConfig dc;
  dc.model = cfg;
  dc.impl = model::AttnImpl::kBurst;
  dc.balance = core::Balance::kZigzag;
  dc.ckpt = {core::CkptStrategy::kSeqSelective, 0.5};
  dc.fused_lm_head = true;

  const int g = 4;
  // Metrics registry: the FSDP loop reports per-phase bytes and timings
  // (fsdp.gather / fsdp.reduce_scatter / fsdp.step) through it.
  obs::Registry metrics;
  sim::Cluster::Config cc;
  cc.topo = sim::Topology::single_node(g);
  cc.metrics = &metrics;
  sim::Cluster cluster(cc);
  tensor::Rng rng(7);
  tensor::Tensor tokens = rng.token_ids(33, cfg.vocab);

  std::printf("FSDP + Adam (offloaded) + BurstAttention on %d simulated "
              "GPUs\n\n", g);
  std::printf("%-5s %-12s\n", "step", "loss");

  std::mutex mu;
  std::uint64_t shard_bytes = 0;
  cluster.run([&](sim::DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    model::FsdpShards shards =
        model::FsdpShards::shard(cfg, init, g, ctx.rank());
    ShardAdam adam(shards, 0.02f);
    for (int step = 0; step < 10; ++step) {
      auto r = model::fsdp_train_step(comm, dc, shards, tokens);
      adam.step(shards, r.grad_shards);
      if (ctx.rank() == 0) {
        std::lock_guard lock(mu);
        std::printf("%-5d %-12.6f\n", step, r.loss);
      }
    }
    if (ctx.rank() == 0) {
      std::lock_guard lock(mu);
      shard_bytes = shards.shard_bytes();
    }
  });

  std::printf("\nper-device parameter shard: %.1f KiB (1/%d of the model; "
              "replicated would hold %.1f KiB)\n",
              static_cast<double>(shard_bytes) / 1024.0, g,
              static_cast<double>(shard_bytes) * g / 1024.0);
  std::printf("Adam moments live host-side (ZeRO-Offload), so no 12x "
              "parameter bytes on device.\n");
  std::printf("\nper-phase comm accounting (rank 0, from the registry):\n");
  std::printf("  fsdp.gather         %llu bytes over %llu calls\n",
              static_cast<unsigned long long>(
                  metrics.counter("fsdp.gather.bytes{rank=0}").value()),
              static_cast<unsigned long long>(
                  metrics.counter("fsdp.gather.calls{rank=0}").value()));
  std::printf("  fsdp.reduce_scatter %llu bytes over %llu calls\n",
              static_cast<unsigned long long>(
                  metrics.counter("fsdp.reduce_scatter.bytes{rank=0}")
                      .value()),
              static_cast<unsigned long long>(
                  metrics.counter("fsdp.reduce_scatter.calls{rank=0}")
                      .value()));
  return 0;
}
