// Long-context task suite: train the toy model on synthetic tasks whose
// targets require attention at different ranges (model/data.hpp) and report
// cross-entropy on exactly the rows each task determines. The copy and
// induction tasks are unlearnable without long-range attention — they are
// the miniature version of why the paper cares about 1M-token training.
#include <cstdio>
#include <numeric>

#include "model/data.hpp"
#include "model/optimizer.hpp"
#include "model/transformer.hpp"
#include "tensor/rng.hpp"

namespace {

using namespace burst;

double determined_loss(const model::ModelConfig& cfg,
                       const model::ModelWeights& w,
                       const tensor::Tensor& tokens, model::TaskKind kind) {
  auto per_row = model::serial_per_row_loss(cfg, w, tokens,
                                            kernels::MaskSpec::causal());
  auto rows = model::task_determined_rows(
      kind, static_cast<std::int64_t>(per_row.size()));
  double total = 0.0;
  for (auto r : rows) {
    total += per_row[static_cast<std::size_t>(r)];
  }
  return total / static_cast<double>(rows.size());
}

}  // namespace

int main() {
  model::ModelConfig cfg = model::ModelConfig::toy();
  cfg.layers = 2;
  const std::int64_t n = 32;
  const int steps = 60;

  std::printf("long-context task suite: %lld tokens, %d training steps per "
              "task (Adam)\n\n", static_cast<long long>(n), steps);
  std::printf("%-11s %-16s %-16s %-10s\n", "task", "CE before", "CE after",
              "learned?");

  for (model::TaskKind kind :
       {model::TaskKind::kMarkov, model::TaskKind::kCopy,
        model::TaskKind::kInduction, model::TaskKind::kNeedle}) {
    model::ModelWeights w = model::ModelWeights::init(cfg, 99);
    model::AdamConfig ac;
    ac.lr = 0.02f;
    model::AdamOptimizer opt(w, ac);

    // Fixed small task pool so the model can actually fit it at toy scale.
    std::vector<tensor::Tensor> pool;
    for (std::uint64_t s = 0; s < 4; ++s) {
      pool.push_back(model::make_task_sequence(kind, 1000 + s, n, cfg.vocab));
    }

    double before = 0.0;
    for (const auto& t : pool) {
      before += determined_loss(cfg, w, t, kind);
    }
    before /= static_cast<double>(pool.size());

    for (int step = 0; step < steps; ++step) {
      const auto& t = pool[static_cast<std::size_t>(step) % pool.size()];
      auto r = model::serial_train_step(cfg, w, t, kernels::MaskSpec::causal());
      opt.step(w, r.grads);
    }

    double after = 0.0;
    for (const auto& t : pool) {
      after += determined_loss(cfg, w, t, kind);
    }
    after /= static_cast<double>(pool.size());

    std::printf("%-11s %-16.4f %-16.4f %-10s\n", model::task_name(kind),
                before, after, after < 0.5 * before ? "yes" : "partly");
  }

  std::printf("\ncopy/induction/needle targets sit far from their evidence —"
              " exactly the dependency ranges context parallelism exists to "
              "train.\n");
  return 0;
}
