// Serving quickstart: a tiny seeded model answering a handful of requests
// through the continuous-batching engine, plus the distributed-prefill
// front-end sharding one long prompt across a simulated 4-GPU node.
//
//   cmake -B build -S . && cmake --build build -j && ./build/examples/serve_demo
#include <cstdio>
#include <vector>

#include "model/transformer.hpp"
#include "serve/dist_prefill.hpp"
#include "serve/engine.hpp"
#include "sim/cluster.hpp"
#include "tensor/rng.hpp"

using namespace burst;

namespace {

std::vector<std::int64_t> make_prompt(std::uint64_t seed, std::int64_t n,
                                      std::int64_t vocab) {
  tensor::Rng rng(seed);
  std::vector<std::int64_t> p(static_cast<std::size_t>(n));
  for (auto& t : p) {
    t = rng.next_index(vocab);
  }
  return p;
}

}  // namespace

int main() {
  model::ModelConfig cfg = model::ModelConfig::toy();
  cfg.kv_heads = 2;  // GQA
  cfg.use_rope = true;
  const model::ModelWeights w = model::ModelWeights::init(cfg, 7);

  // --- continuous-batching engine -----------------------------------------
  serve::EngineConfig ec;
  ec.sched.policy = serve::BatchPolicy::kContinuous;
  ec.block_tokens = 8;
  serve::Engine engine(cfg, w, ec);
  for (int i = 0; i < 4; ++i) {
    engine.add_request(make_prompt(10 + static_cast<std::uint64_t>(i), 20,
                                   cfg.vocab),
                       /*max_new_tokens=*/8,
                       /*arrival_s=*/1e-5 * i);
  }
  const serve::ServeReport rep = serve::run_on_single_device(engine);

  std::printf("continuous batching: %lld tokens in %.1f us of virtual time "
              "(%.0f tok/s, %lld iterations, peak KV %.1f KiB)\n",
              static_cast<long long>(rep.metrics.generated_tokens),
              rep.metrics.makespan_s * 1e6, rep.metrics.tokens_per_s,
              static_cast<long long>(rep.metrics.iterations),
              static_cast<double>(rep.metrics.peak_kv_bytes) / 1024.0);
  for (const auto& r : rep.results) {
    std::printf("  request %lld (arrived %.1f us, first token %.1f us):",
                static_cast<long long>(r.id), r.arrival_s * 1e6,
                r.first_token_s * 1e6);
    for (const auto t : r.generated) {
      std::printf(" %lld", static_cast<long long>(t));
    }
    std::printf("\n");
  }

  // --- distributed prefill of one long prompt -----------------------------
  const auto prompt = make_prompt(99, 64, cfg.vocab);
  sim::Cluster cluster({sim::Topology::single_node(4)});
  auto pre = serve::distributed_prefill(cluster, cfg, w, prompt,
                                        /*block_tokens=*/8);
  std::printf("\ndistributed prefill: %lld prompt tokens sharded over 4 "
              "devices -> cache len %lld, first token %lld\n",
              static_cast<long long>(prompt.size()),
              static_cast<long long>(pre.cache.len()),
              static_cast<long long>(pre.first_token));

  // Hand the assembled cache to the single-device decode loop.
  std::int64_t next = pre.first_token;
  std::printf("decode continues:");
  for (int step = 0; step < 8; ++step) {
    std::printf(" %lld", static_cast<long long>(next));
    const auto logits =
        model::forward_decode(cfg, w, pre.cache, next,
                              kernels::MaskSpec::causal());
    next = model::argmax(logits);
  }
  std::printf("\n");
  return 0;
}
