# Empty compiler generated dependencies file for test_comm_rings.
# This may be replaced when dependencies are built.
