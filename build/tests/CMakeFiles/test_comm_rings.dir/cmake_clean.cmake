file(REMOVE_RECURSE
  "CMakeFiles/test_comm_rings.dir/test_comm_rings.cpp.o"
  "CMakeFiles/test_comm_rings.dir/test_comm_rings.cpp.o.d"
  "test_comm_rings"
  "test_comm_rings.pdb"
  "test_comm_rings[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_rings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
