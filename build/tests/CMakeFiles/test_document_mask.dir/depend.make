# Empty dependencies file for test_document_mask.
# This may be replaced when dependencies are built.
