file(REMOVE_RECURSE
  "CMakeFiles/test_document_mask.dir/test_document_mask.cpp.o"
  "CMakeFiles/test_document_mask.dir/test_document_mask.cpp.o.d"
  "test_document_mask"
  "test_document_mask.pdb"
  "test_document_mask[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_document_mask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
