file(REMOVE_RECURSE
  "CMakeFiles/test_dist_model.dir/test_dist_model.cpp.o"
  "CMakeFiles/test_dist_model.dir/test_dist_model.cpp.o.d"
  "test_dist_model"
  "test_dist_model.pdb"
  "test_dist_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
