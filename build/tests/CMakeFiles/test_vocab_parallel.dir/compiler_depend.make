# Empty compiler generated dependencies file for test_vocab_parallel.
# This may be replaced when dependencies are built.
