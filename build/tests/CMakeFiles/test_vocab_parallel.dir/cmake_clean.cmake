file(REMOVE_RECURSE
  "CMakeFiles/test_vocab_parallel.dir/test_vocab_parallel.cpp.o"
  "CMakeFiles/test_vocab_parallel.dir/test_vocab_parallel.cpp.o.d"
  "test_vocab_parallel"
  "test_vocab_parallel.pdb"
  "test_vocab_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vocab_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
