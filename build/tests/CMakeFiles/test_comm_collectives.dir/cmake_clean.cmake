file(REMOVE_RECURSE
  "CMakeFiles/test_comm_collectives.dir/test_comm_collectives.cpp.o"
  "CMakeFiles/test_comm_collectives.dir/test_comm_collectives.cpp.o.d"
  "test_comm_collectives"
  "test_comm_collectives.pdb"
  "test_comm_collectives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
