# Empty dependencies file for test_comm_collectives.
# This may be replaced when dependencies are built.
