file(REMOVE_RECURSE
  "CMakeFiles/test_gqa.dir/test_gqa.cpp.o"
  "CMakeFiles/test_gqa.dir/test_gqa.cpp.o.d"
  "test_gqa"
  "test_gqa.pdb"
  "test_gqa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gqa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
