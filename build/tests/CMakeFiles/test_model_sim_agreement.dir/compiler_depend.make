# Empty compiler generated dependencies file for test_model_sim_agreement.
# This may be replaced when dependencies are built.
