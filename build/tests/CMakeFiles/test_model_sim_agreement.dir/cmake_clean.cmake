file(REMOVE_RECURSE
  "CMakeFiles/test_model_sim_agreement.dir/test_model_sim_agreement.cpp.o"
  "CMakeFiles/test_model_sim_agreement.dir/test_model_sim_agreement.cpp.o.d"
  "test_model_sim_agreement"
  "test_model_sim_agreement.pdb"
  "test_model_sim_agreement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_sim_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
