file(REMOVE_RECURSE
  "CMakeFiles/test_estimator_properties.dir/test_estimator_properties.cpp.o"
  "CMakeFiles/test_estimator_properties.dir/test_estimator_properties.cpp.o.d"
  "test_estimator_properties"
  "test_estimator_properties.pdb"
  "test_estimator_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_estimator_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
