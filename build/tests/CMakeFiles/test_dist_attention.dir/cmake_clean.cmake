file(REMOVE_RECURSE
  "CMakeFiles/test_dist_attention.dir/test_dist_attention.cpp.o"
  "CMakeFiles/test_dist_attention.dir/test_dist_attention.cpp.o.d"
  "test_dist_attention"
  "test_dist_attention.pdb"
  "test_dist_attention[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
