# Empty compiler generated dependencies file for test_dist_attention.
# This may be replaced when dependencies are built.
