# Empty dependencies file for test_masks.
# This may be replaced when dependencies are built.
