file(REMOVE_RECURSE
  "CMakeFiles/test_masks.dir/test_masks.cpp.o"
  "CMakeFiles/test_masks.dir/test_masks.cpp.o.d"
  "test_masks"
  "test_masks.pdb"
  "test_masks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_masks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
