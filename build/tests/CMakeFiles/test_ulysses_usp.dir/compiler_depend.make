# Empty compiler generated dependencies file for test_ulysses_usp.
# This may be replaced when dependencies are built.
