file(REMOVE_RECURSE
  "CMakeFiles/test_ulysses_usp.dir/test_ulysses_usp.cpp.o"
  "CMakeFiles/test_ulysses_usp.dir/test_ulysses_usp.cpp.o.d"
  "test_ulysses_usp"
  "test_ulysses_usp.pdb"
  "test_ulysses_usp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ulysses_usp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
