file(REMOVE_RECURSE
  "CMakeFiles/test_comm_multinode.dir/test_comm_multinode.cpp.o"
  "CMakeFiles/test_comm_multinode.dir/test_comm_multinode.cpp.o.d"
  "test_comm_multinode"
  "test_comm_multinode.pdb"
  "test_comm_multinode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_multinode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
