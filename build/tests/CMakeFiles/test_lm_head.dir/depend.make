# Empty dependencies file for test_lm_head.
# This may be replaced when dependencies are built.
