file(REMOVE_RECURSE
  "CMakeFiles/test_lm_head.dir/test_lm_head.cpp.o"
  "CMakeFiles/test_lm_head.dir/test_lm_head.cpp.o.d"
  "test_lm_head"
  "test_lm_head.pdb"
  "test_lm_head[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lm_head.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
