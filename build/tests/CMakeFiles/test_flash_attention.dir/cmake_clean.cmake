file(REMOVE_RECURSE
  "CMakeFiles/test_flash_attention.dir/test_flash_attention.cpp.o"
  "CMakeFiles/test_flash_attention.dir/test_flash_attention.cpp.o.d"
  "test_flash_attention"
  "test_flash_attention.pdb"
  "test_flash_attention[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flash_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
