# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_train_tiny_llm "/root/repo/build/examples/train_tiny_llm")
set_tests_properties(example_train_tiny_llm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sparse_attention_demo "/root/repo/build/examples/sparse_attention_demo")
set_tests_properties(example_sparse_attention_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fsdp_adam_training "/root/repo/build/examples/fsdp_adam_training")
set_tests_properties(example_fsdp_adam_training PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_long_context_tasks "/root/repo/build/examples/long_context_tasks")
set_tests_properties(example_long_context_tasks PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_planner "/root/repo/build/examples/capacity_planner")
set_tests_properties(example_capacity_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
