file(REMOVE_RECURSE
  "CMakeFiles/long_context_tasks.dir/long_context_tasks.cpp.o"
  "CMakeFiles/long_context_tasks.dir/long_context_tasks.cpp.o.d"
  "long_context_tasks"
  "long_context_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/long_context_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
