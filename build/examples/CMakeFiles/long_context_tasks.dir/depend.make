# Empty dependencies file for long_context_tasks.
# This may be replaced when dependencies are built.
