# Empty compiler generated dependencies file for train_tiny_llm.
# This may be replaced when dependencies are built.
