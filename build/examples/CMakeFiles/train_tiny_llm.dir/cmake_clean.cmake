file(REMOVE_RECURSE
  "CMakeFiles/train_tiny_llm.dir/train_tiny_llm.cpp.o"
  "CMakeFiles/train_tiny_llm.dir/train_tiny_llm.cpp.o.d"
  "train_tiny_llm"
  "train_tiny_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_tiny_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
