file(REMOVE_RECURSE
  "CMakeFiles/sparse_attention_demo.dir/sparse_attention_demo.cpp.o"
  "CMakeFiles/sparse_attention_demo.dir/sparse_attention_demo.cpp.o.d"
  "sparse_attention_demo"
  "sparse_attention_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_attention_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
