# Empty compiler generated dependencies file for sparse_attention_demo.
# This may be replaced when dependencies are built.
