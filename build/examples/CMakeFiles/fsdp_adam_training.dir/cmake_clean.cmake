file(REMOVE_RECURSE
  "CMakeFiles/fsdp_adam_training.dir/fsdp_adam_training.cpp.o"
  "CMakeFiles/fsdp_adam_training.dir/fsdp_adam_training.cpp.o.d"
  "fsdp_adam_training"
  "fsdp_adam_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdp_adam_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
