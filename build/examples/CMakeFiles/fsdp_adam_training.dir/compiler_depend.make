# Empty compiler generated dependencies file for fsdp_adam_training.
# This may be replaced when dependencies are built.
