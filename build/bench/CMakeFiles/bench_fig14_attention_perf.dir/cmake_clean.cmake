file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_attention_perf.dir/bench_fig14_attention_perf.cpp.o"
  "CMakeFiles/bench_fig14_attention_perf.dir/bench_fig14_attention_perf.cpp.o.d"
  "bench_fig14_attention_perf"
  "bench_fig14_attention_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_attention_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
