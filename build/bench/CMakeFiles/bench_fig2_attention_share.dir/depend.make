# Empty dependencies file for bench_fig2_attention_share.
# This may be replaced when dependencies are built.
