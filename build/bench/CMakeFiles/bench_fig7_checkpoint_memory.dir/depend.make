# Empty dependencies file for bench_fig7_checkpoint_memory.
# This may be replaced when dependencies are built.
