# Empty dependencies file for bench_ablation_ckpt_fraction.
# This may be replaced when dependencies are built.
