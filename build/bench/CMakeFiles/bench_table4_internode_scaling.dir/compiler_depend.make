# Empty compiler generated dependencies file for bench_table4_internode_scaling.
# This may be replaced when dependencies are built.
