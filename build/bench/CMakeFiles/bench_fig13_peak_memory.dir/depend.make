# Empty dependencies file for bench_fig13_peak_memory.
# This may be replaced when dependencies are built.
