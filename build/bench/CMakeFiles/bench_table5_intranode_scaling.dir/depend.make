# Empty dependencies file for bench_table5_intranode_scaling.
# This may be replaced when dependencies are built.
