
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_lmhead_memory.cpp" "bench/CMakeFiles/bench_fig8_lmhead_memory.dir/bench_fig8_lmhead_memory.cpp.o" "gcc" "bench/CMakeFiles/bench_fig8_lmhead_memory.dir/bench_fig8_lmhead_memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perfmodel/CMakeFiles/burst_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/burst_core.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/burst_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/burst_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/burst_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/burst_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/burst_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
