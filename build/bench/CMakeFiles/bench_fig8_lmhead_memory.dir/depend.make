# Empty dependencies file for bench_fig8_lmhead_memory.
# This may be replaced when dependencies are built.
