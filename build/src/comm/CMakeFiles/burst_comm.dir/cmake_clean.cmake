file(REMOVE_RECURSE
  "CMakeFiles/burst_comm.dir/communicator.cpp.o"
  "CMakeFiles/burst_comm.dir/communicator.cpp.o.d"
  "CMakeFiles/burst_comm.dir/ring.cpp.o"
  "CMakeFiles/burst_comm.dir/ring.cpp.o.d"
  "libburst_comm.a"
  "libburst_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
