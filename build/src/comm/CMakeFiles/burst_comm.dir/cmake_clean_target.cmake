file(REMOVE_RECURSE
  "libburst_comm.a"
)
