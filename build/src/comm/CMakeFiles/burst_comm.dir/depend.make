# Empty dependencies file for burst_comm.
# This may be replaced when dependencies are built.
