# Empty dependencies file for burst_kernels.
# This may be replaced when dependencies are built.
