file(REMOVE_RECURSE
  "libburst_kernels.a"
)
