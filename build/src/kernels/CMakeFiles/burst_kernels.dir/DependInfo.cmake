
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/flash_attention.cpp" "src/kernels/CMakeFiles/burst_kernels.dir/flash_attention.cpp.o" "gcc" "src/kernels/CMakeFiles/burst_kernels.dir/flash_attention.cpp.o.d"
  "/root/repo/src/kernels/lm_head.cpp" "src/kernels/CMakeFiles/burst_kernels.dir/lm_head.cpp.o" "gcc" "src/kernels/CMakeFiles/burst_kernels.dir/lm_head.cpp.o.d"
  "/root/repo/src/kernels/mask.cpp" "src/kernels/CMakeFiles/burst_kernels.dir/mask.cpp.o" "gcc" "src/kernels/CMakeFiles/burst_kernels.dir/mask.cpp.o.d"
  "/root/repo/src/kernels/reference_attention.cpp" "src/kernels/CMakeFiles/burst_kernels.dir/reference_attention.cpp.o" "gcc" "src/kernels/CMakeFiles/burst_kernels.dir/reference_attention.cpp.o.d"
  "/root/repo/src/kernels/rope.cpp" "src/kernels/CMakeFiles/burst_kernels.dir/rope.cpp.o" "gcc" "src/kernels/CMakeFiles/burst_kernels.dir/rope.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/burst_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/burst_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
