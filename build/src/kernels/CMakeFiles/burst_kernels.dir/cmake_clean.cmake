file(REMOVE_RECURSE
  "CMakeFiles/burst_kernels.dir/flash_attention.cpp.o"
  "CMakeFiles/burst_kernels.dir/flash_attention.cpp.o.d"
  "CMakeFiles/burst_kernels.dir/lm_head.cpp.o"
  "CMakeFiles/burst_kernels.dir/lm_head.cpp.o.d"
  "CMakeFiles/burst_kernels.dir/mask.cpp.o"
  "CMakeFiles/burst_kernels.dir/mask.cpp.o.d"
  "CMakeFiles/burst_kernels.dir/reference_attention.cpp.o"
  "CMakeFiles/burst_kernels.dir/reference_attention.cpp.o.d"
  "CMakeFiles/burst_kernels.dir/rope.cpp.o"
  "CMakeFiles/burst_kernels.dir/rope.cpp.o.d"
  "libburst_kernels.a"
  "libburst_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
