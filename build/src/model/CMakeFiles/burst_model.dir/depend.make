# Empty dependencies file for burst_model.
# This may be replaced when dependencies are built.
