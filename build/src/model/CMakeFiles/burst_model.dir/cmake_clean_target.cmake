file(REMOVE_RECURSE
  "libburst_model.a"
)
