file(REMOVE_RECURSE
  "CMakeFiles/burst_model.dir/data.cpp.o"
  "CMakeFiles/burst_model.dir/data.cpp.o.d"
  "CMakeFiles/burst_model.dir/dist_model.cpp.o"
  "CMakeFiles/burst_model.dir/dist_model.cpp.o.d"
  "CMakeFiles/burst_model.dir/fsdp.cpp.o"
  "CMakeFiles/burst_model.dir/fsdp.cpp.o.d"
  "CMakeFiles/burst_model.dir/optimizer.cpp.o"
  "CMakeFiles/burst_model.dir/optimizer.cpp.o.d"
  "CMakeFiles/burst_model.dir/transformer.cpp.o"
  "CMakeFiles/burst_model.dir/transformer.cpp.o.d"
  "libburst_model.a"
  "libburst_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
