file(REMOVE_RECURSE
  "libburst_sim.a"
)
