# Empty dependencies file for burst_sim.
# This may be replaced when dependencies are built.
