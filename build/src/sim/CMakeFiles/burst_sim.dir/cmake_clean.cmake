file(REMOVE_RECURSE
  "CMakeFiles/burst_sim.dir/cluster.cpp.o"
  "CMakeFiles/burst_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/burst_sim.dir/trace.cpp.o"
  "CMakeFiles/burst_sim.dir/trace.cpp.o.d"
  "libburst_sim.a"
  "libburst_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
