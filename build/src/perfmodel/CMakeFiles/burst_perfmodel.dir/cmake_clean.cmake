file(REMOVE_RECURSE
  "CMakeFiles/burst_perfmodel.dir/comm_model.cpp.o"
  "CMakeFiles/burst_perfmodel.dir/comm_model.cpp.o.d"
  "CMakeFiles/burst_perfmodel.dir/estimator.cpp.o"
  "CMakeFiles/burst_perfmodel.dir/estimator.cpp.o.d"
  "CMakeFiles/burst_perfmodel.dir/flops.cpp.o"
  "CMakeFiles/burst_perfmodel.dir/flops.cpp.o.d"
  "CMakeFiles/burst_perfmodel.dir/memory_model.cpp.o"
  "CMakeFiles/burst_perfmodel.dir/memory_model.cpp.o.d"
  "libburst_perfmodel.a"
  "libburst_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
