file(REMOVE_RECURSE
  "libburst_perfmodel.a"
)
