# Empty dependencies file for burst_perfmodel.
# This may be replaced when dependencies are built.
