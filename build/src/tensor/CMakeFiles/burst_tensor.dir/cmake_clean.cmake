file(REMOVE_RECURSE
  "CMakeFiles/burst_tensor.dir/gemm.cpp.o"
  "CMakeFiles/burst_tensor.dir/gemm.cpp.o.d"
  "CMakeFiles/burst_tensor.dir/ops.cpp.o"
  "CMakeFiles/burst_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/burst_tensor.dir/rng.cpp.o"
  "CMakeFiles/burst_tensor.dir/rng.cpp.o.d"
  "CMakeFiles/burst_tensor.dir/tensor.cpp.o"
  "CMakeFiles/burst_tensor.dir/tensor.cpp.o.d"
  "libburst_tensor.a"
  "libburst_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
