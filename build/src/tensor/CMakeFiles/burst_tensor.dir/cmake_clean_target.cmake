file(REMOVE_RECURSE
  "libburst_tensor.a"
)
