# Empty compiler generated dependencies file for burst_tensor.
# This may be replaced when dependencies are built.
