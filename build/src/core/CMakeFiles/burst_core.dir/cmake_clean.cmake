file(REMOVE_RECURSE
  "CMakeFiles/burst_core.dir/checkpoint.cpp.o"
  "CMakeFiles/burst_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/burst_core.dir/dist_attention.cpp.o"
  "CMakeFiles/burst_core.dir/dist_attention.cpp.o.d"
  "CMakeFiles/burst_core.dir/head_exchange.cpp.o"
  "CMakeFiles/burst_core.dir/head_exchange.cpp.o.d"
  "CMakeFiles/burst_core.dir/partition.cpp.o"
  "CMakeFiles/burst_core.dir/partition.cpp.o.d"
  "CMakeFiles/burst_core.dir/sweep.cpp.o"
  "CMakeFiles/burst_core.dir/sweep.cpp.o.d"
  "CMakeFiles/burst_core.dir/ulysses.cpp.o"
  "CMakeFiles/burst_core.dir/ulysses.cpp.o.d"
  "CMakeFiles/burst_core.dir/usp.cpp.o"
  "CMakeFiles/burst_core.dir/usp.cpp.o.d"
  "CMakeFiles/burst_core.dir/vocab_parallel.cpp.o"
  "CMakeFiles/burst_core.dir/vocab_parallel.cpp.o.d"
  "libburst_core.a"
  "libburst_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
