
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checkpoint.cpp" "src/core/CMakeFiles/burst_core.dir/checkpoint.cpp.o" "gcc" "src/core/CMakeFiles/burst_core.dir/checkpoint.cpp.o.d"
  "/root/repo/src/core/dist_attention.cpp" "src/core/CMakeFiles/burst_core.dir/dist_attention.cpp.o" "gcc" "src/core/CMakeFiles/burst_core.dir/dist_attention.cpp.o.d"
  "/root/repo/src/core/head_exchange.cpp" "src/core/CMakeFiles/burst_core.dir/head_exchange.cpp.o" "gcc" "src/core/CMakeFiles/burst_core.dir/head_exchange.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/core/CMakeFiles/burst_core.dir/partition.cpp.o" "gcc" "src/core/CMakeFiles/burst_core.dir/partition.cpp.o.d"
  "/root/repo/src/core/sweep.cpp" "src/core/CMakeFiles/burst_core.dir/sweep.cpp.o" "gcc" "src/core/CMakeFiles/burst_core.dir/sweep.cpp.o.d"
  "/root/repo/src/core/ulysses.cpp" "src/core/CMakeFiles/burst_core.dir/ulysses.cpp.o" "gcc" "src/core/CMakeFiles/burst_core.dir/ulysses.cpp.o.d"
  "/root/repo/src/core/usp.cpp" "src/core/CMakeFiles/burst_core.dir/usp.cpp.o" "gcc" "src/core/CMakeFiles/burst_core.dir/usp.cpp.o.d"
  "/root/repo/src/core/vocab_parallel.cpp" "src/core/CMakeFiles/burst_core.dir/vocab_parallel.cpp.o" "gcc" "src/core/CMakeFiles/burst_core.dir/vocab_parallel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comm/CMakeFiles/burst_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/burst_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/burst_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/burst_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/burst_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
