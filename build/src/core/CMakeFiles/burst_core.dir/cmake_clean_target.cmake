file(REMOVE_RECURSE
  "libburst_core.a"
)
