# Empty compiler generated dependencies file for burst_core.
# This may be replaced when dependencies are built.
