file(REMOVE_RECURSE
  "CMakeFiles/burst_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/burst_parallel.dir/thread_pool.cpp.o.d"
  "libburst_parallel.a"
  "libburst_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
