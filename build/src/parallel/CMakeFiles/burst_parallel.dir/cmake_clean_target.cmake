file(REMOVE_RECURSE
  "libburst_parallel.a"
)
