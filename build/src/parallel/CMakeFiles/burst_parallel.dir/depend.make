# Empty dependencies file for burst_parallel.
# This may be replaced when dependencies are built.
