// Figure 8: LM-head logits memory versus sequence length for the
// LLaMA-1/2 vocabulary (32K) and the LLaMA-3 vocabulary (128K), plus the
// paper's 14B config (120K) and the fused alternative (Algorithm 3).
#include "bench_util.hpp"
#include "perfmodel/memory_model.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  title("Figure 8 — LM head logits memory (bf16), naive vs fused");
  Table t({"seq len", "32K vocab (GB)", "120K vocab (GB)", "128K vocab (GB)",
           "fused, any vocab<=128K (GB)"});
  for (double n : {32e3, 128e3, 512e3, 1e6, 2e6, 4e6}) {
    t.row({seq_label(n),
           fmt_gb(perfmodel::lm_head_logits_bytes(n, 32e3, 2)),
           fmt_gb(perfmodel::lm_head_logits_bytes(n, 120e3, 2)),
           fmt_gb(perfmodel::lm_head_logits_bytes(n, 128e3, 2)),
           fmt_gb(perfmodel::lm_head_logits_bytes(1024, 128e3, 2))});
  }
  t.print();
  std::printf(
      "\npaper: logits memory grows linearly in N and 4x with the LLaMA-3\n"
      "vocabulary; the sequence-level fusion caps it at one Bs x v strip.\n");
  return 0;
}
