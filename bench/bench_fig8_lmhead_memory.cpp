// Figure 8: LM-head logits memory versus sequence length for the
// LLaMA-1/2 vocabulary (32K) and the LLaMA-3 vocabulary (128K), plus the
// paper's 14B config (120K) and the fused alternative (Algorithm 3).
#include "bench_util.hpp"
#include "perfmodel/memory_model.hpp"
#include "reporter.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  Reporter rep("fig8_lmhead_memory");
  title("Figure 8 — LM head logits memory (bf16), naive vs fused");
  Table t({"seq len", "32K vocab (GB)", "120K vocab (GB)", "128K vocab (GB)",
           "fused, any vocab<=128K (GB)"});
  const double fused = perfmodel::lm_head_logits_bytes(1024, 128e3, 2);
  for (double n : {32e3, 128e3, 512e3, 1e6, 2e6, 4e6}) {
    const double v32 = perfmodel::lm_head_logits_bytes(n, 32e3, 2);
    const double v128 = perfmodel::lm_head_logits_bytes(n, 128e3, 2);
    t.row({seq_label(n), fmt_gb(v32),
           fmt_gb(perfmodel::lm_head_logits_bytes(n, 120e3, 2)),
           fmt_gb(v128), fmt_gb(fused)});
    rep.measurement("naive_128k_vocab_gb_" + seq_label(n), v128 / 1e9,
                    obs::RunReport::kNoPaperValue, "GB");
    // Paper: 4x memory from the 32K -> 128K vocabulary jump, linear in N.
    rep.check(v128 == 4.0 * v32,
              "128K vocab costs 4x the 32K vocab at " + seq_label(n));
    rep.check(fused <= v128,
              "fused strip never exceeds naive logits at " + seq_label(n));
  }
  rep.measurement("fused_strip_gb", fused / 1e9,
                  obs::RunReport::kNoPaperValue, "GB");
  t.print();
  std::printf(
      "\npaper: logits memory grows linearly in N and 4x with the LLaMA-3\n"
      "vocabulary; the sequence-level fusion caps it at one Bs x v strip.\n");
  return rep.finish();
}
