// Serving goodput under injected failure: the chaos analogue of
// bench_serving_slo. One loadgen trace is served three ways — fault-free,
// through a mid-trace device crash with checkpoint recovery, and across a
// seeded random chaos sweep — and the bench reports how much completed-token
// goodput survives the crash-plus-recovery path. The committed floor in
// BENCH_baseline.json gates `chaos_goodput_retention`: a regression that
// makes recovery slower (bigger checkpoints, longer restore, lost replay)
// shows up as retention dropping below the baseline.
//
// Self-checking: every request must resolve to exactly one typed outcome in
// every run, requests completed under chaos must produce the fault-free
// token values, and the crash run must replay bit-identically when repeated
// (same virtual-time event stream, same goodput).
#include <cstdint>
#include <map>
#include <vector>

#include "api/loadgen.hpp"
#include "api/server.hpp"
#include "reporter.hpp"
#include "sim/chaos.hpp"

namespace {

using namespace burst;

model::ModelConfig bench_model() {
  model::ModelConfig cfg = model::ModelConfig::toy();
  cfg.kv_heads = 2;
  cfg.use_rope = true;
  return cfg;
}

std::vector<api::GeneratedRequest> bench_trace() {
  api::LoadGenConfig lg;
  lg.seed = 7331;
  lg.requests = 16;
  lg.rate_rps = 2e4;
  lg.tenants = 3;
  lg.prompt_log_mean = 2.7;
  lg.prompt_min = 4;
  lg.prompt_max = 48;
  lg.output_log_mean = 1.4;
  lg.output_min = 1;
  lg.output_max = 8;
  return api::LoadGen(lg).generate();
}

api::ApiServerConfig server_config(double default_timeout_s) {
  api::ApiServerConfig cfg;
  cfg.engine.block_tokens = 8;
  cfg.engine.sched.policy = serve::BatchPolicy::kSlo;
  cfg.engine.sched.token_budget = 32;
  cfg.engine.sched.chunk_tokens = 16;
  cfg.engine.default_timeout_s = default_timeout_s;
  cfg.engine.shed_high = 8;
  return cfg;
}

struct RunResult {
  api::ApiServer::Report report;
  std::int64_t n = 0;
  std::int64_t completed_tokens = 0;
  std::map<std::int64_t, std::vector<std::int64_t>> tokens_by_id;
};

RunResult run_trace(const api::ApiServerConfig& cfg) {
  const model::ModelConfig model = bench_model();
  static const model::ModelWeights weights =
      model::ModelWeights::init(bench_model(), 73);
  api::ApiServer server(model, weights, cfg);
  RunResult out;
  for (const api::GeneratedRequest& g : bench_trace()) {
    api::CompletionRequest req;
    req.tenant = "t" + std::to_string(g.tenant);
    req.priority = g.priority;
    req.prompt =
        api::LoadGen::materialize_prompt(g.prompt_seed, g.prompt_len,
                                         model.vocab);
    req.max_tokens = g.max_tokens;
    server.submit(g.arrival_s, std::move(req), nullptr);
    ++out.n;
  }
  out.report = server.run();
  for (const auto& r : out.report.results) {
    if (r.outcome == serve::Outcome::kCompleted) {
      out.completed_tokens += static_cast<std::int64_t>(r.generated.size());
      out.tokens_by_id[r.id] = r.generated;
    }
  }
  return out;
}

bool one_outcome_each(const RunResult& run) {
  const auto& rep = run.report;
  return rep.completed + rep.rejected + rep.timed_out + rep.shed +
             rep.failed_fast ==
         run.n;
}

}  // namespace

int main() {
  bench::Reporter out("serving_chaos");

  // Fault-free reference: goodput floor and the token oracle.
  const RunResult clean = run_trace(server_config(/*default_timeout_s=*/1e9));
  const double clean_makespan = clean.report.metrics.makespan_s;
  const double clean_goodput =
      static_cast<double>(clean.completed_tokens) / clean_makespan;
  out.config("requests", clean.n);
  out.check(clean_makespan > 0.0 && clean.report.completed == clean.n,
            "fault-free run completes every request");
  out.measurement("fault_free_goodput_tok_per_s", clean_goodput,
                  obs::RunReport::kNoPaperValue, "tok/s");

  // Crash + recovery: rank 0 dies mid-trace, the engine restores from the
  // latest checkpoint and replays. Generous deadlines keep degradation out
  // of this leg so retention isolates pure recovery cost.
  api::ApiServerConfig chaos_cfg = server_config(100.0 * clean_makespan);
  sim::FaultPlan::CrashDevice crash;
  crash.rank = 0;
  crash.at_time_s = 0.5 * clean_makespan;
  chaos_cfg.resilience.faults.crashes.push_back(crash);
  chaos_cfg.resilience.checkpoint_every = 4;
  chaos_cfg.resilience.breaker_cooldown_s = 0.05 * clean_makespan;

  const RunResult crashed = run_trace(chaos_cfg);
  const double crash_makespan = crashed.report.metrics.makespan_s;
  const double crash_goodput =
      static_cast<double>(crashed.completed_tokens) / crash_makespan;
  const double retention = crash_goodput / clean_goodput;

  out.check(crashed.report.recoveries.size() == 1,
            "crash run recovers exactly once");
  out.check(one_outcome_each(crashed),
            "crash run: every request has exactly one typed outcome");
  bool tokens_match = true;
  for (const auto& [id, toks] : crashed.tokens_by_id) {
    const auto it = clean.tokens_by_id.find(id);
    tokens_match = tokens_match && it != clean.tokens_by_id.end() &&
                   it->second == toks;
  }
  out.check(tokens_match,
            "requests completed under crash produce fault-free tokens");

  // Determinism: the same faulted config replays bit-identically.
  const RunResult replay = run_trace(chaos_cfg);
  out.check(replay.completed_tokens == crashed.completed_tokens &&
                replay.report.metrics.makespan_s == crash_makespan &&
                replay.tokens_by_id == crashed.tokens_by_id,
            "crash run replays bit-identically");

  out.measurement("chaos_goodput_tok_per_s", crash_goodput,
                  obs::RunReport::kNoPaperValue, "tok/s");
  out.measurement("chaos_goodput_retention", retention,
                  obs::RunReport::kNoPaperValue, "x");
  out.measurement("recovery_restore_s",
                  crashed.report.recoveries.empty()
                      ? 0.0
                      : crashed.report.recoveries[0].restore_s,
                  obs::RunReport::kNoPaperValue, "s");

  // Seeded chaos sweep: random plans from the full single-device taxonomy.
  // Every run must keep the outcome invariant; goodput varies per plan, so
  // the sweep reports the worst retention as an informational metric.
  sim::ChaosSpec spec;
  spec.world = 1;
  spec.horizon_s = clean_makespan;
  double worst_retention = 1.0;
  std::int64_t sweep_recoveries = 0;
  bool sweep_ok = true;
  constexpr int kSweepSeeds = 8;
  for (std::uint64_t seed = 1; seed <= kSweepSeeds; ++seed) {
    api::ApiServerConfig cfg = server_config(50.0 * clean_makespan);
    cfg.resilience.faults = sim::make_chaos_plan(seed, spec);
    cfg.resilience.checkpoint_every = 3;
    cfg.resilience.breaker_cooldown_s = 0.1 * clean_makespan;
    const RunResult run = run_trace(cfg);
    sweep_ok = sweep_ok && one_outcome_each(run);
    sweep_recoveries += static_cast<std::int64_t>(run.report.recoveries.size());
    const double g = static_cast<double>(run.completed_tokens) /
                     run.report.metrics.makespan_s;
    worst_retention = std::min(worst_retention, g / clean_goodput);
  }
  out.config("sweep_seeds", kSweepSeeds);
  out.check(sweep_ok, "chaos sweep: outcome invariant holds on every seed");
  out.check(sweep_recoveries > 0, "chaos sweep exercised recovery");
  out.measurement("sweep_worst_retention", worst_retention,
                  obs::RunReport::kNoPaperValue, "x");
  out.measurement("sweep_recoveries",
                  static_cast<double>(sweep_recoveries));
  return out.finish();
}
