// Figure 7: total stored-activation memory of gradient-checkpointing
// strategies as sequence length grows (whole model, per GPU at CP=32).
//
// Paper shape: selective-checkpointing++ stores the most (layer input +
// full attention output), sequence-level selective checkpointing halves the
// attention-output storage, full checkpointing stores the least.
#include <cmath>

#include "bench_util.hpp"
#include "model/config.hpp"
#include "perfmodel/memory_model.hpp"
#include "reporter.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;
  using core::CkptStrategy;

  Reporter rep("fig7_checkpoint_memory");
  perfmodel::HardwareModel hw;
  for (const char* name : {"7B", "14B"}) {
    model::ModelConfig cfg = std::string(name) == "7B"
                                 ? model::ModelConfig::llama7b()
                                 : model::ModelConfig::llama14b();
    title(std::string("Figure 7 — checkpoint storage per GPU, ") + name +
          " model, 32-way context parallel");
    Table t({"seq len", "full ckpt (GB)", "seq-selective (GB)",
             "selective++ (GB)", "no ckpt (GB)", "seq-sel/sel++"});
    for (double n : {128e3, 256e3, 512e3, 1e6, 2e6}) {
      const double n_loc = n / 32.0;
      const auto bytes = [&](CkptStrategy s) {
        return perfmodel::stored_activation_per_token(
                   {s, 0.5}, static_cast<double>(cfg.d_model),
                   cfg.bytes_per_el()) *
               n_loc * static_cast<double>(cfg.layers);
      };
      const double full = bytes(CkptStrategy::kFull);
      const double seq = bytes(CkptStrategy::kSeqSelective);
      const double spp = bytes(CkptStrategy::kSelectivePP);
      const double none = bytes(CkptStrategy::kNone);
      t.row({seq_label(n), fmt_gb(full), fmt_gb(seq), fmt_gb(spp),
             fmt_gb(none), fmt((seq - full) / (spp - full), "%.2f")});
      const std::string tag = std::string(name) + "_" + seq_label(n);
      rep.measurement("seq_selective_gb_" + tag, seq / 1e9,
                      obs::RunReport::kNoPaperValue, "GB");
      // Paper: seq-selective stores exactly half of selective++'s extra
      // activation memory over the full-checkpoint floor.
      rep.measurement("seq_sel_extra_ratio_" + tag, (seq - full) / (spp - full),
                      0.5);
      rep.check(std::abs((seq - full) / (spp - full) - 0.5) < 1e-9,
                "seq-selective extra storage is half of selective++ at " + tag);
      rep.check(full < seq && seq < spp && spp < none,
                "strategy ordering full < seq-sel < sel++ < none at " + tag);
    }
    t.print();
  }
  std::printf(
      "\npaper: sequence-level selective checkpointing stores 50%% of\n"
      "selective++'s extra activation memory at ~1/4 of full checkpointing's\n"
      "attention recompute.\n");
  return rep.finish();
}
