// Extension ablation (beyond the paper): grouped-query attention changes the
// Ring-vs-Burst backward communication trade-off.
//
// BurstAttention's backward (Algorithm 2) circulates *query-side* tensors
// (Q, ∇Q, ∇O: 3Nd + 2N), which GQA does not shrink; RingAttention's backward
// circulates K/V-side tensors (4·N·d_kv), which GQA shrinks by the group
// factor. With d_kv < 3/4 · d_model + ..., Algorithm 1's volume drops below
// Algorithm 2's — e.g. LLaMA-3-style 8x GQA flips the paper's 25% saving
// into a ~6x deficit. BurstEngine integrations on GQA models should
// therefore pick the backward algorithm per kv-head ratio (the topology-
// aware ring and overlap apply to both).
#include "bench_util.hpp"
#include "model/config.hpp"
#include "reporter.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  Reporter rep("ablation_gqa");
  title("GQA ablation — backward ring volume per device (7B-like, d=4096, "
        "32 query heads, N tokens)");
  Table t({"kv heads", "d_kv", "Ring bwd (x Nd)", "Burst bwd (x Nd)",
           "Burst/Ring", "better backward"});
  for (std::int64_t kv : {32, 16, 8, 4, 2, 1}) {
    model::ModelConfig cfg = model::ModelConfig::llama7b();
    cfg.kv_heads = kv;
    const double d = static_cast<double>(cfg.d_model);
    const double dkv = static_cast<double>(cfg.d_kv());
    // Volumes in units of N * d_model (per device, full backward).
    const double ring = 4.0 * dkv / d;
    const double burst = 3.0 + 2.0 / d;
    t.row({std::to_string(kv), std::to_string(cfg.d_kv()),
           fmt(ring, "%.3f"), fmt(burst, "%.3f"), fmt(burst / ring, "%.2f"),
           burst < ring ? "Burst (Alg. 2)" : "Ring (Alg. 1)"});
    rep.measurement("burst_over_ring_kv" + std::to_string(kv), burst / ring);
    // The paper's MHA setting (kv == query heads) must show Burst's ~25%
    // saving; 8x GQA must flip the trade-off toward Ring.
    if (kv == 32) {
      rep.check(burst < ring, "MHA: Burst backward beats Ring (paper)");
    }
    if (kv == 4) {
      rep.check(burst > ring, "8x GQA: Ring backward beats Burst");
    }
  }
  t.print();
  std::printf(
      "\ncrossover at d_kv/d = (3 + 2/d)/4 ≈ 0.75: below ~24 kv heads (of\n"
      "32), circulating K/V gradients (Algorithm 1) is cheaper than\n"
      "circulating query-side tensors (Algorithm 2). Forward volume is\n"
      "2·N·d_kv for both. Not evaluated in the paper (MHA models only);\n"
      "see tests/test_gqa.cpp for the functional GQA validation.\n");
  return rep.finish();
}
