// Table 4: BurstEngine inter-node scaling — 2/4/8 nodes of 8x A800, 32K
// tokens per GPU (sequence grows with the cluster), optimizer offload off.
//
// The paper does not state the model; the reported TGS and memory both match
// the 14B configuration within a few percent (see EXPERIMENTS.md), so the
// bench uses 14B.
#include "bench_util.hpp"
#include "perfmodel/estimator.hpp"
#include "reporter.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  Reporter rep("table4_internode_scaling");
  title("Table 4 — BurstEngine inter-node scaling (14B, 32K tokens/GPU)");
  struct PaperRow {
    int nodes;
    double mfu, tgs, mem;
  };
  const PaperRow paper[] = {{2, 53.1, 223.25, 63.13},
                            {4, 53.2, 118.36, 53.96},
                            {8, 52.7, 60.49, 50.96}};

  Table t({"nodes", "seq len", "MFU (%)", "TGS", "mem (GB)", "paper MFU",
           "paper TGS", "paper mem"});
  for (const auto& p : paper) {
    perfmodel::RunConfig cfg;
    cfg.model = model::ModelConfig::llama14b();
    cfg.cluster = {p.nodes, 8};
    cfg.seq_len = 32768.0 * cfg.cluster.world();
    cfg.method = perfmodel::Method::kBurstEngine;
    auto est = estimate_step(cfg);
    t.row({std::to_string(p.nodes), seq_label(cfg.seq_len),
           est.ok ? fmt(100.0 * est.mfu) : "-", est.ok ? fmt(est.tgs) : "-",
           est.ok ? fmt_gb(est.memory.total()) : est.failure, fmt(p.mfu),
           fmt(p.tgs), fmt(p.mem)});
    const std::string tag = std::to_string(p.nodes) + "nodes";
    rep.check(est.ok, tag + " fits in memory");
    if (est.ok) {
      rep.measurement("mfu_pct_" + tag, 100.0 * est.mfu, p.mfu, "%");
      rep.measurement("tgs_" + tag, est.tgs, p.tgs, "tok/s/GPU");
      rep.measurement("mem_gb_" + tag, est.memory.total() / 1e9, p.mem, "GB");
    }
  }
  t.print();
  std::printf("\npaper shape: MFU stays ~53%% from 2 to 8 nodes; TGS halves\n"
              "as the sequence doubles (quadratic attention); memory stays\n"
              "roughly flat.\n");
  return rep.finish();
}
