// Table 1: per-layer attention communication time of RingAttention,
// DoubleRingAttention and BurstAttention, from the closed-form model AND
// cross-validated against the functional cluster simulator (time-only
// sweeps at the same shard sizes).
#include <cmath>
#include <mutex>

#include "bench_util.hpp"
#include "reporter.hpp"
#include "comm/communicator.hpp"
#include "comm/sim_transport.hpp"
#include "core/dist_attention.hpp"
#include "core/sweep.hpp"
#include "perfmodel/comm_model.hpp"
#include "sim/cluster.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace burst;
using namespace burst::bench;

// Simulated makespan of one activation pass + comparable gradient passes is
// complex to map 1:1 onto Table 1's coefficients; instead we validate the
// *forward* comparison: flat-ring K/V sweep vs double-ring K/V sweep over
// identical shard bytes, no compute.
double simulate_forward_sweep(int nodes, int gpus, double shard_bytes,
                              bool topo_aware) {
  sim::Cluster::Config cc;
  cc.topo = sim::Topology::multi_node(nodes, gpus);
  sim::Cluster cluster(cc);
  cluster.run([&](sim::DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp, 1.0);
    const core::SweepRoute route =
        topo_aware ? core::SweepRoute::double_ring(cc.topo)
                   : core::SweepRoute::flat(comm::flat_ring(nodes * gpus));
    // One tensor of shard_bytes elements at 1 B/element.
    tensor::Tensor own(static_cast<std::int64_t>(shard_bytes / 8), 8);
    core::ring_sweep_activation(comm, route, core::SweepOptions{}, {own},
                                [](const std::vector<tensor::Tensor>&, int) {});
  });
  return cluster.makespan();
}

}  // namespace

int main() {
  Reporter rep("table1_comm_time");
  title("Table 1 — attention communication time per layer (closed form)");
  perfmodel::CommModel cm{perfmodel::HardwareModel{}};

  for (int nodes : {2, 4, 8}) {
    perfmodel::ClusterShape shape{nodes, 8};
    subtitle("cluster " + std::to_string(nodes) + " nodes x 8 GPUs");
    Table t({"shard size (MB)", "RingAttention (ms)", "DoubleRing (ms)",
             "BurstAttention (ms)", "Burst/Ring"});
    for (double mb : {8.0, 32.0, 128.0, 512.0}) {
      const double bytes = mb * 1e6;
      const double ring = cm.ring_attention_comm(bytes, shape);
      const double dbl = cm.double_ring_comm(bytes, shape);
      const double burst =
          cm.burst_comm(bytes, bytes / 4096.0, shape, true, true);
      t.row({fmt(mb, "%.0f"), fmt(ring * 1e3), fmt(dbl * 1e3),
             fmt(burst * 1e3), fmt(burst / ring, "%.3f")});
      const std::string tag = std::to_string(nodes) + "x8_" +
                              fmt(mb, "%.0f") + "mb";
      rep.measurement("ring_ms_" + tag, ring * 1e3);
      rep.measurement("double_ring_ms_" + tag, dbl * 1e3);
      rep.measurement("burst_ms_" + tag, burst * 1e3);
      rep.check(burst < ring,
                "Burst beats flat Ring at " + tag + " (Table 1 ordering)");
      rep.check(dbl < ring,
                "DoubleRing beats flat Ring at " + tag + " (Table 1 ordering)");
    }
    t.print();
  }

  title("Cross-validation — simulator vs closed form (forward K/V sweep)");
  Table v({"cluster", "shard (MB)", "sim flat (ms)", "model flat (ms)",
           "sim double (ms)", "model double (ms)"});
  for (int nodes : {2, 4}) {
    for (double mb : {8.0, 64.0}) {
      const double bytes = mb * 1e6;
      perfmodel::ClusterShape shape{nodes, 4};
      sim::Topology topo = sim::Topology::multi_node(nodes, 4);
      perfmodel::HardwareModel hw;
      hw.nvlink_bw = topo.intra.bandwidth_bytes_per_s;
      hw.nvlink_latency = topo.intra.latency_s;
      hw.ib_bw = topo.inter.bandwidth_bytes_per_s;
      hw.ib_latency = topo.inter.latency_s;
      perfmodel::CommModel cmv{hw};
      // Forward sweep = (G-1)/G of one 2-tensor pass; compare single-tensor
      // pass scaled accordingly.
      const int g = shape.world();
      const double scale = static_cast<double>(g - 1) / g;
      const double sim_flat = simulate_forward_sweep(nodes, 4, bytes, false);
      const double model_flat = cmv.pass_flat(bytes, shape) * scale;
      const double sim_dbl = simulate_forward_sweep(nodes, 4, bytes, true);
      const double model_dbl =
          std::max(cmv.pass_intra_part(bytes, shape),
                   cmv.pass_inter_part(bytes, shape)) *
          scale;
      v.row({std::to_string(nodes) + "x4", fmt(mb, "%.0f"),
             fmt(sim_flat * 1e3), fmt(model_flat * 1e3), fmt(sim_dbl * 1e3),
             fmt(model_dbl * 1e3)});
      const std::string tag =
          std::to_string(nodes) + "x4_" + fmt(mb, "%.0f") + "mb";
      rep.measurement("sim_flat_ms_" + tag, sim_flat * 1e3);
      rep.measurement("sim_double_ms_" + tag, sim_dbl * 1e3);
      // Simulator and closed form must agree to ~30%: the model takes the
      // max of the intra/inter rails while the simulator resolves their
      // per-hop interleaving exactly, a gap that grows with node count
      // (20% at 4 nodes).
      rep.check(std::abs(sim_flat - model_flat) <= 0.3 * model_flat,
                "simulator matches closed-form flat ring at " + tag);
      rep.check(std::abs(sim_dbl - model_dbl) <= 0.3 * model_dbl,
                "simulator matches closed-form double ring at " + tag);
    }
  }
  v.print();
  std::printf(
      "\npaper: Burst < DoubleRing < Ring whenever B_intra > B_inter; the\n"
      "backward volume drop is ~25%% (3Nd+2N vs 4Nd).\n");
  return rep.finish();
}
