// Serving throughput: continuous batching vs run-to-completion FCFS at an
// equal KV-cache memory budget, on one simulated device.
//
// The roofline iteration model in serve/engine.hpp makes the mechanism
// visible: FCFS streams the full weight set from HBM for every single decode
// token, while continuous batching amortizes the same stream over one token
// from *each* running request, so generated tokens/s rises with concurrency
// until the KV block budget caps the batch. Emits a single JSON object so
// the results are machine-readable (no table from the paper corresponds to
// this bench; serving is an extension on top of the training stack).
#include <cstdio>
#include <string>
#include <vector>

#include "model/transformer.hpp"
#include "serve/engine.hpp"
#include "tensor/rng.hpp"

namespace {

using burst::model::ModelConfig;
using burst::model::ModelWeights;
using burst::serve::BatchPolicy;
using burst::serve::Engine;
using burst::serve::EngineConfig;
using burst::serve::ServeReport;

ModelConfig bench_model() {
  ModelConfig cfg;
  cfg.layers = 4;
  cfg.d_model = 64;
  cfg.heads = 8;
  cfg.kv_heads = 4;
  cfg.vocab = 256;
  cfg.d_ff = 172;
  cfg.use_rope = true;
  return cfg;
}

struct Workload {
  std::int64_t requests = 16;
  std::int64_t prompt_tokens = 48;
  std::int64_t max_new_tokens = 16;
  // Bursty arrivals: short against the service time, so throughput is
  // engine-limited (the regime where batching policy matters), not
  // arrival-limited.
  double mean_interarrival_s = 5e-7;
};

ServeReport run_policy(BatchPolicy policy, const ModelConfig& cfg,
                       const ModelWeights& w, const Workload& wl,
                       std::int64_t max_kv_blocks) {
  EngineConfig ec;
  ec.sched.policy = policy;
  ec.sched.token_budget = 128;
  ec.sched.chunk_tokens = 32;
  ec.block_tokens = 16;
  ec.max_kv_blocks = max_kv_blocks;
  Engine engine(cfg, w, ec);
  burst::tensor::Rng rng(2024);
  double arrival = 0.0;
  for (std::int64_t i = 0; i < wl.requests; ++i) {
    std::vector<std::int64_t> prompt(
        static_cast<std::size_t>(wl.prompt_tokens));
    for (auto& t : prompt) {
      t = rng.next_index(cfg.vocab);
    }
    engine.add_request(std::move(prompt), wl.max_new_tokens, arrival);
    arrival += rng.next_uniform() * 2.0 * wl.mean_interarrival_s;
  }
  return run_on_single_device(engine);
}

std::string policy_json(const char* name, const ServeReport& rep) {
  char buf[512];
  const auto& m = rep.metrics;
  std::snprintf(
      buf, sizeof(buf),
      "    {\"policy\": \"%s\", \"tokens_per_s\": %.1f, "
      "\"p50_token_latency_ms\": %.4f, \"p99_token_latency_ms\": %.4f, "
      "\"peak_kv_bytes\": %llu, \"makespan_s\": %.6f, \"iterations\": %lld, "
      "\"generated_tokens\": %lld}",
      name, m.tokens_per_s, m.p50_token_latency_s * 1e3,
      m.p99_token_latency_s * 1e3,
      static_cast<unsigned long long>(m.peak_kv_bytes), m.makespan_s,
      static_cast<long long>(m.iterations),
      static_cast<long long>(m.generated_tokens));
  return buf;
}

}  // namespace

int main() {
  const ModelConfig cfg = bench_model();
  const ModelWeights w = ModelWeights::init(cfg, 91);
  const Workload wl;
  // Enough blocks for ~half the fleet's full sequences: continuous batching
  // runs a deep batch, FCFS cannot benefit either way.
  const std::int64_t max_kv_blocks =
      wl.requests * (wl.prompt_tokens + wl.max_new_tokens) / 16 / 2;

  const ServeReport fcfs =
      run_policy(BatchPolicy::kFcfs, cfg, w, wl, max_kv_blocks);
  const ServeReport cont =
      run_policy(BatchPolicy::kContinuous, cfg, w, wl, max_kv_blocks);

  std::printf("{\n");
  std::printf("  \"bench\": \"serving_throughput\",\n");
  std::printf(
      "  \"model\": {\"layers\": %lld, \"d_model\": %lld, \"heads\": %lld, "
      "\"kv_heads\": %lld, \"vocab\": %lld, \"rope\": true},\n",
      static_cast<long long>(cfg.layers), static_cast<long long>(cfg.d_model),
      static_cast<long long>(cfg.heads),
      static_cast<long long>(cfg.num_kv_heads()),
      static_cast<long long>(cfg.vocab));
  std::printf(
      "  \"workload\": {\"requests\": %lld, \"prompt_tokens\": %lld, "
      "\"max_new_tokens\": %lld, \"max_kv_blocks\": %lld, "
      "\"block_tokens\": 16},\n",
      static_cast<long long>(wl.requests),
      static_cast<long long>(wl.prompt_tokens),
      static_cast<long long>(wl.max_new_tokens),
      static_cast<long long>(max_kv_blocks));
  std::printf("  \"policies\": [\n%s,\n%s\n  ],\n",
              policy_json("fcfs", fcfs).c_str(),
              policy_json("continuous", cont).c_str());
  std::printf("  \"continuous_speedup\": %.2f\n",
              cont.metrics.tokens_per_s / fcfs.metrics.tokens_per_s);
  std::printf("}\n");

  // The bench doubles as a smoke check of the acceptance criterion.
  if (cont.metrics.tokens_per_s <= fcfs.metrics.tokens_per_s) {
    std::fprintf(stderr,
                 "FAIL: continuous batching not faster than FCFS\n");
    return 1;
  }
  return 0;
}
