// Serving throughput: continuous batching vs run-to-completion FCFS at an
// equal KV-cache memory budget, on one simulated device.
//
// The roofline iteration model in serve/engine.hpp makes the mechanism
// visible: FCFS streams the full weight set from HBM for every single decode
// token, while continuous batching amortizes the same stream over one token
// from *each* running request, so generated tokens/s rises with concurrency
// until the KV block budget caps the batch. Results land in the shared
// RunReport artifact (no table from the paper corresponds to this bench;
// serving is an extension on top of the training stack).
#include <string>
#include <vector>

#include "api/loadgen.hpp"
#include "model/transformer.hpp"
#include "obs/metrics.hpp"
#include "reporter.hpp"
#include "serve/engine.hpp"

namespace {

using burst::api::GeneratedRequest;
using burst::api::LoadGen;
using burst::api::LoadGenConfig;
using burst::model::ModelConfig;
using burst::model::ModelWeights;
using burst::serve::BatchPolicy;
using burst::serve::Engine;
using burst::serve::EngineConfig;
using burst::serve::ServeReport;

ModelConfig bench_model() {
  ModelConfig cfg;
  cfg.layers = 4;
  cfg.d_model = 64;
  cfg.heads = 8;
  cfg.kv_heads = 4;
  cfg.vocab = 256;
  cfg.d_ff = 172;
  cfg.use_rope = true;
  return cfg;
}

// Workload via the shared trace generator (api/loadgen.hpp). Length clamps
// are pinned (min == max) to keep the classic fixed-size comparison; the
// arrival rate is far above service capacity, so throughput is
// engine-limited (the regime where batching policy matters), not
// arrival-limited.
LoadGenConfig workload_config() {
  LoadGenConfig cfg;
  cfg.seed = 2024;
  cfg.requests = 16;
  cfg.rate_rps = 2e6;
  cfg.burst_rate_multiplier = 1.0;  // plain Poisson: bursts add nothing here
  cfg.burst_start_prob = 0.0;
  cfg.tenants = 1;
  cfg.prompt_min = 48;
  cfg.prompt_max = 48;
  cfg.output_min = 16;
  cfg.output_max = 16;
  cfg.p_interactive = 0.0;
  cfg.p_batch = 0.0;
  return cfg;
}

ServeReport run_policy(BatchPolicy policy, const ModelConfig& cfg,
                       const ModelWeights& w,
                       const std::vector<GeneratedRequest>& trace,
                       std::int64_t max_kv_blocks,
                       burst::obs::Registry* metrics) {
  EngineConfig ec;
  ec.sched.policy = policy;
  ec.sched.token_budget = 128;
  ec.sched.chunk_tokens = 32;
  ec.block_tokens = 16;
  ec.max_kv_blocks = max_kv_blocks;
  ec.metrics = metrics;
  Engine engine(cfg, w, ec);
  for (const auto& g : trace) {
    engine.add_request(
        LoadGen::materialize_prompt(g.prompt_seed, g.prompt_len, cfg.vocab),
        g.max_tokens, g.arrival_s);
  }
  return run_on_single_device(engine);
}

void report_policy(burst::bench::Reporter& rep, const std::string& name,
                   const ServeReport& r) {
  const auto& m = r.metrics;
  rep.measurement(name + "_tokens_per_s", m.tokens_per_s,
                  burst::obs::RunReport::kNoPaperValue, "tok/s");
  rep.measurement(name + "_p50_token_latency_ms", m.p50_token_latency_s * 1e3,
                  burst::obs::RunReport::kNoPaperValue, "ms");
  rep.measurement(name + "_p99_token_latency_ms", m.p99_token_latency_s * 1e3,
                  burst::obs::RunReport::kNoPaperValue, "ms");
  rep.measurement(name + "_peak_kv_bytes",
                  static_cast<double>(m.peak_kv_bytes),
                  burst::obs::RunReport::kNoPaperValue, "B");
  rep.measurement(name + "_makespan_s", m.makespan_s,
                  burst::obs::RunReport::kNoPaperValue, "s");
  rep.measurement(name + "_iterations", static_cast<double>(m.iterations));
  rep.measurement(name + "_generated_tokens",
                  static_cast<double>(m.generated_tokens));
}

}  // namespace

int main() {
  using burst::bench::Reporter;

  const ModelConfig cfg = bench_model();
  const ModelWeights w = ModelWeights::init(cfg, 91);
  const LoadGenConfig wl = workload_config();
  const auto trace = LoadGen(wl).generate();
  // Enough blocks for ~half the fleet's full sequences: continuous batching
  // runs a deep batch, FCFS cannot benefit either way.
  const std::int64_t max_kv_blocks =
      wl.requests * (wl.prompt_min + wl.output_min) / 16 / 2;

  Reporter rep("serving_throughput");
  rep.config("layers", cfg.layers);
  rep.config("d_model", cfg.d_model);
  rep.config("heads", cfg.heads);
  rep.config("kv_heads", cfg.num_kv_heads());
  rep.config("vocab", cfg.vocab);
  rep.config("requests", wl.requests);
  rep.config("prompt_tokens", wl.prompt_min);
  rep.config("max_new_tokens", wl.output_min);
  rep.config("max_kv_blocks", max_kv_blocks);
  rep.config("block_tokens", 16);

  // Each policy gets its own registry so the raw serve.* instruments of the
  // continuous-batching run land in the report unmixed.
  burst::obs::Registry fcfs_reg;
  burst::obs::Registry cont_reg;
  const ServeReport fcfs = run_policy(BatchPolicy::kFcfs, cfg, w, trace,
                                      max_kv_blocks, &fcfs_reg);
  const ServeReport cont = run_policy(BatchPolicy::kContinuous, cfg, w, trace,
                                      max_kv_blocks, &cont_reg);
  rep.attach_registry(cont_reg);

  report_policy(rep, "fcfs", fcfs);
  report_policy(rep, "continuous", cont);
  rep.measurement("continuous_speedup",
                  cont.metrics.tokens_per_s / fcfs.metrics.tokens_per_s,
                  burst::obs::RunReport::kNoPaperValue, "x");

  // The bench doubles as a smoke check of the acceptance criterion.
  rep.check(cont.metrics.tokens_per_s > fcfs.metrics.tokens_per_s,
            "continuous batching beats FCFS throughput");
  rep.check(cont.metrics.generated_tokens == fcfs.metrics.generated_tokens,
            "both policies generate the same token count");
  return rep.finish();
}
