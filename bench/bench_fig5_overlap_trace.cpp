// Figure 5: fine-grained communication-computation overlap. Runs the
// BurstAttention forward + backward on a simulated 2x4 cluster with overlap
// on and off, prints per-device overlap fractions, and writes Chrome
// trace-event JSON files (open in chrome://tracing or ui.perfetto.dev) that
// show the compute / NVLink / InfiniBand tracks of Figure 5 directly.
#include <cmath>
#include <fstream>

#include "bench_util.hpp"
#include "comm/communicator.hpp"
#include "comm/sim_transport.hpp"
#include "reporter.hpp"
#include "core/dist_attention.hpp"
#include "core/partition.hpp"
#include "sim/cluster.hpp"
#include "sim/trace.hpp"
#include "tensor/rng.hpp"

namespace {

using namespace burst;

double run_traced(bool overlap, sim::TraceRecorder& trace, double* makespan) {
  const std::int64_t n = 1024;
  const std::int64_t d = 32;
  sim::Cluster::Config cc;
  cc.topo = sim::Topology::multi_node(2, 4);
  // Slow the links so communication is visible next to compute.
  cc.topo.intra.bandwidth_bytes_per_s = 1e9;
  cc.topo.inter.bandwidth_bytes_per_s = 0.25e9;
  cc.flops_per_s = 8e9;
  cc.trace = &trace;
  sim::Cluster cluster(cc);

  tensor::Rng rng(3);
  tensor::Tensor q = rng.gaussian(n, d, 0.5f);
  tensor::Tensor k = rng.gaussian(n, d, 0.5f);
  tensor::Tensor v = rng.gaussian(n, d, 0.5f);
  tensor::Tensor d_out = rng.gaussian(n, d, 0.5f);

  trace.clear();
  cluster.run([&](sim::DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    const auto route = core::SweepRoute::double_ring(cc.topo);
    core::DistAttnConfig cfg;
    cfg.mask = kernels::MaskSpec::causal();
    cfg.scale = 1.0f / std::sqrt(static_cast<float>(d));
    cfg.balance = core::Balance::kZigzag;
    cfg.backward = core::BackwardComm::kBurst;
    cfg.overlap = overlap;
    cfg.seq_len = n;
    const auto map = core::route_index_map(route, cfg, ctx.rank());
    core::LocalQKV local{core::shard_rows(q, map), core::shard_rows(k, map),
                         core::shard_rows(v, map)};
    auto fwd = core::dist_attention_forward(comm, route, cfg, local);
    core::dist_attention_backward(comm, route, cfg, local, fwd,
                                  core::shard_rows(d_out, map));
  });
  *makespan = cluster.makespan();
  double avg = 0.0;
  for (int r = 0; r < cc.topo.world_size(); ++r) {
    avg += trace.overlap_fraction(r);
  }
  return avg / cc.topo.world_size();
}

}  // namespace

int main() {
  using namespace burst::bench;
  Reporter rep("fig5_overlap_trace");
  title("Figure 5 — fine-grained comm/compute overlap (BurstAttention "
        "fwd+bwd, 2x4 cluster, topology-aware ring)");

  burst::sim::TraceRecorder trace;
  Table t({"schedule", "virtual step (ms)", "avg comm hidden (%)", "trace"});
  double serialized_ms = 0.0;
  double overlapped_ms = 0.0;
  for (bool overlap : {false, true}) {
    double makespan = 0.0;
    const double frac = run_traced(overlap, trace, &makespan);
    const std::string path = overlap ? "fig5_trace_overlapped.json"
                                     : "fig5_trace_serialized.json";
    std::ofstream os(path);
    trace.write_chrome_trace(os);
    t.row({overlap ? "fine-grained overlap (Burst)" : "no overlap",
           fmt(makespan * 1e3, "%.2f"), fmt(100.0 * frac, "%.1f"), path});
    (overlap ? overlapped_ms : serialized_ms) = makespan * 1e3;
    rep.measurement(overlap ? "overlapped_step_ms" : "serialized_step_ms",
                    makespan * 1e3, burst::obs::RunReport::kNoPaperValue, "ms");
    rep.measurement(overlap ? "overlapped_hidden_pct" : "serialized_hidden_pct",
                    100.0 * frac, burst::obs::RunReport::kNoPaperValue, "%");
  }
  rep.check(overlapped_ms < serialized_ms,
            "fine-grained overlap shortens the step (Figure 5)");
  t.print();
  std::printf("\nopen the JSON files in chrome://tracing — the overlapped\n"
              "schedule shows communication tracks running concurrently with\n"
              "the compute track (the paper's Figure 5), the serialized one\n"
              "alternates.\n");
  return rep.finish();
}
