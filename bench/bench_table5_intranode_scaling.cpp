// Table 5: BurstEngine intra-node scaling — context-parallel size 1..8 on
// one 8x A800 node, 32K tokens per GPU, optimizer offload enabled.
#include "bench_util.hpp"
#include "perfmodel/estimator.hpp"
#include "reporter.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  Reporter rep("table5_intranode_scaling");
  title("Table 5 — BurstEngine intra-node scaling (7B, 32K tokens/GPU, "
        "optimizer offload)");
  struct PaperRow {
    int cp;
    double mfu, tgs, mem;
  };
  const PaperRow paper[] = {{1, 47.34, 1201.14, 57.71},
                            {2, 48.85, 928.24, 55.18},
                            {4, 50.55, 639.43, 55.58},
                            {8, 51.90, 393.44, 53.56}};

  Table t({"CP", "seq len", "MFU (%)", "TGS", "mem (GB)", "paper MFU",
           "paper TGS", "paper mem"});
  for (const auto& p : paper) {
    perfmodel::RunConfig cfg;
    cfg.model = model::ModelConfig::llama7b();
    cfg.cluster = {1, p.cp};
    cfg.seq_len = 32768.0 * p.cp;
    cfg.method = perfmodel::Method::kBurstEngine;
    cfg.optimizer_offload = true;
    auto est = estimate_step(cfg);
    t.row({std::to_string(p.cp), seq_label(cfg.seq_len),
           est.ok ? fmt(100.0 * est.mfu) : "-", est.ok ? fmt(est.tgs) : "-",
           est.ok ? fmt_gb(est.memory.total()) : est.failure, fmt(p.mfu),
           fmt(p.tgs), fmt(p.mem)});
    const std::string tag = "cp" + std::to_string(p.cp);
    rep.check(est.ok, tag + " fits in memory");
    if (est.ok) {
      rep.measurement("mfu_pct_" + tag, 100.0 * est.mfu, p.mfu, "%");
      rep.measurement("tgs_" + tag, est.tgs, p.tgs, "tok/s/GPU");
      rep.measurement("mem_gb_" + tag, est.memory.total() / 1e9, p.mem, "GB");
    }
  }
  t.print();
  std::printf("\npaper shape: MFU rises with CP size (attention share grows\n"
              "with sequence length); memory stays roughly flat.\n");
  return rep.finish();
}
