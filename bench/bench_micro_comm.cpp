// Microbenchmarks of the simulated collectives (google-benchmark): wall
// time of the thread-per-device simulator itself (not virtual time), to
// document simulator overheads, plus the virtual-time readings.
#include <benchmark/benchmark.h>

#include "reporter.hpp"

#include "comm/communicator.hpp"
#include "comm/sim_transport.hpp"
#include "sim/cluster.hpp"
#include "tensor/rng.hpp"

namespace {

using namespace burst;
using sim::Cluster;
using sim::DeviceContext;
using sim::Topology;
using tensor::Tensor;

void BM_AllGather(benchmark::State& state) {
  const int g = static_cast<int>(state.range(0));
  Cluster cluster({Topology::single_node(g)});
  double virtual_time = 0.0;
  for (auto _ : state) {
    cluster.run([&](DeviceContext& ctx) {
      comm::SimTransport comm_tp(ctx);
      comm::Communicator comm(comm_tp);
      Tensor local = Tensor::zeros(64, 64);
      auto full = comm.all_gather_rows(local);
      benchmark::DoNotOptimize(full.data());
    });
    virtual_time = cluster.makespan();
  }
  state.counters["virtual_us"] = virtual_time * 1e6;
}
BENCHMARK(BM_AllGather)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_ReduceScatter(benchmark::State& state) {
  const int g = static_cast<int>(state.range(0));
  Cluster cluster({Topology::single_node(g)});
  for (auto _ : state) {
    cluster.run([&](DeviceContext& ctx) {
      comm::SimTransport comm_tp(ctx);
      comm::Communicator comm(comm_tp);
      Tensor full = Tensor::zeros(64 * g, 64);
      auto shard = comm.reduce_scatter_rows(full);
      benchmark::DoNotOptimize(shard.data());
    });
  }
}
BENCHMARK(BM_ReduceScatter)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_AllToAll(benchmark::State& state) {
  const int g = static_cast<int>(state.range(0));
  Cluster cluster({Topology::single_node(g)});
  for (auto _ : state) {
    cluster.run([&](DeviceContext& ctx) {
      comm::SimTransport comm_tp(ctx);
      comm::Communicator comm(comm_tp);
      std::vector<Tensor> send;
      for (int i = 0; i < g; ++i) {
        send.push_back(Tensor::zeros(32, 64));
      }
      auto got = comm.all_to_all(std::move(send));
      benchmark::DoNotOptimize(got.data());
    });
  }
}
BENCHMARK(BM_AllToAll)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the timing tables still come
// from google-benchmark, but the run also emits the shared RunReport so
// scripts/verify.sh can gate on it like every other bench.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  burst::bench::Reporter rep("micro_comm");
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  rep.measurement("benchmarks_run", static_cast<double>(ran));
  rep.check(ran > 0, "at least one benchmark ran");
  return rep.finish();
}
