// GEMM microbenchmark (google-benchmark): throughput of the packed
// microkernel behind every matmul in the functional path, plus the
// regression gate for the bench-compare script: single-thread 512^3 GFLOP/s
// for the packed kernel and for the pre-packing scalar implementation it
// replaced, and their ratio (the `gate: true` metric in BENCH_baseline.json).
#include <benchmark/benchmark.h>

#include "reporter.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/gemm.hpp"
#include "tensor/rng.hpp"

namespace {

using namespace burst::tensor;

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = rng.gaussian(n, n, 1.0f);
  Tensor b = rng.gaussian(n, n, 1.0f);
  Tensor c(n, n);
  for (auto _ : state) {
    gemm(a.view(), Trans::No, b.view(), Trans::No, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * static_cast<double>(n) *
          static_cast<double>(n) *
          static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_GemmTransposed(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(2);
  Tensor a = rng.gaussian(n, n, 1.0f);
  Tensor b = rng.gaussian(n, n, 1.0f);
  Tensor c(n, n);
  for (auto _ : state) {
    gemm(a.view(), Trans::No, b.view(), Trans::Yes, c.view());
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmTransposed)->Arg(128)->Unit(benchmark::kMicrosecond);

// The scalar tiled GEMM this PR's packed kernel replaced, kept verbatim as
// the speedup baseline (including the `av == 0` skip it used to take).
// Compiled with the bench's portable flags, serial — the "seed scalar,
// single thread" denominator of the gate metric.
void scalar_seed_gemm(ConstMatView a, ConstMatView b, MatView c) {
  constexpr std::int64_t kTileM = 32;
  constexpr std::int64_t kTileN = 64;
  constexpr std::int64_t kTileK = 64;
  const std::int64_t m = a.rows;
  const std::int64_t k = a.cols;
  const std::int64_t n = b.cols;
  for (std::int64_t i = 0; i < m; ++i) {
    std::fill(c.data + i * c.stride, c.data + i * c.stride + n, 0.0f);
  }
  for (std::int64_t ib = 0; ib < m; ib += kTileM) {
    const std::int64_t ie = std::min(m, ib + kTileM);
    for (std::int64_t kb = 0; kb < k; kb += kTileK) {
      const std::int64_t ke = std::min(k, kb + kTileK);
      for (std::int64_t jb = 0; jb < n; jb += kTileN) {
        const std::int64_t je = std::min(n, jb + kTileN);
        for (std::int64_t i = ib; i < ie; ++i) {
          float* crow = c.data + i * c.stride;
          for (std::int64_t kk = kb; kk < ke; ++kk) {
            const float av = a(i, kk);
            if (av == 0.0f) {
              continue;
            }
            const float* brow = b.data + kk * b.stride;
            for (std::int64_t j = jb; j < je; ++j) {
              crow[j] += av * brow[j];
            }
          }
        }
      }
    }
  }
}

// Best-of-`reps` seconds for one fn() call.
template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the timing tables still come
// from google-benchmark, but the run also emits the shared RunReport so
// scripts/verify.sh can gate on it like every other bench.
int main(int argc, char** argv) {
  using namespace burst::tensor;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  burst::bench::Reporter rep("micro_gemm");
  burst::obs::Registry registry;
  attach_gemm_metrics(&registry);
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  rep.measurement("benchmarks_run", static_cast<double>(ran));
  rep.check(ran > 0, "at least one benchmark ran");

  // ---- regression-gate section: single-thread 512^3 packed vs scalar ----
  {
    burst::parallel::ThreadPool::reset_global(1);
    const std::int64_t n = 512;
    const double flop = 2.0 * static_cast<double>(n) * n * n;
    Rng rng(3);
    Tensor a = rng.gaussian(n, n, 1.0f);
    Tensor b = rng.gaussian(n, n, 1.0f);
    Tensor c(n, n);
    // Warm-up grows the workspace and faults the pages before timing.
    gemm(a.view(), Trans::No, b.view(), Trans::No, c.view());
    const double packed_s = best_seconds(3, [&] {
      gemm(a.view(), Trans::No, b.view(), Trans::No, c.view());
      benchmark::DoNotOptimize(c.data());
    });
    scalar_seed_gemm(a.view(), b.view(), c.view());
    const double scalar_s = best_seconds(3, [&] {
      scalar_seed_gemm(a.view(), b.view(), c.view());
      benchmark::DoNotOptimize(c.data());
    });
    const double packed_gflops = flop / packed_s / 1e9;
    const double scalar_gflops = flop / scalar_s / 1e9;
    const double speedup = packed_gflops / scalar_gflops;
    rep.measurement("gemm_512_st_gflops", packed_gflops,
                    burst::obs::RunReport::kNoPaperValue, "GFLOP/s");
    rep.measurement("gemm_512_st_scalar_gflops", scalar_gflops,
                    burst::obs::RunReport::kNoPaperValue, "GFLOP/s");
    rep.measurement("gemm_512_st_speedup", speedup);
    rep.check(speedup >= 3.0,
              "packed GEMM >= 3x seed scalar at 512^3 single-thread");
    burst::parallel::ThreadPool::reset_global();
  }

  // ---- quantized gate: 512-wide streaming (bandwidth-bound) regime -------
  // Where quantization pays on CPU: decode-like GEMMs (a few query rows
  // against a 512x512 weight tile) cycling over a weight working set far
  // beyond the LLC, so every pass re-streams the packed panels from DRAM.
  // The fp32 panels stream 4 B/el; Q8_0 1.125 B/el; Q4_0 0.625 B/el — the
  // dequantize-in-microkernel variants convert that byte saving into
  // wall-clock speedup. (At hot-cache 512^3 the fp32 FMA kernel is
  // compute-bound and quantization cannot win; that regime is covered by
  // the gate above.)
  {
    burst::parallel::ThreadPool::reset_global(1);
    const std::int64_t m = 4;    // decode-like batch: one microkernel row block
    const std::int64_t n = 512;  // one cache-block-wide weight tile
    const std::int64_t k = 512;
    const std::int64_t count = 96;  // 96 MB of fp32 panels >> LLC
    Rng rng(4);
    Tensor a = rng.gaussian(m, k, 1.0f);
    Tensor b = rng.gaussian(k, n, 1.0f);
    Tensor c(m, n);
    struct Run {
      double seconds = 0.0;
      double bytes = 0.0;  // packed panel bytes streamed per pass
    };
    const auto run_set = [&](DType dt) {
      std::vector<PackedB> set;
      set.reserve(static_cast<std::size_t>(count));
      double bytes = 0.0;
      for (std::int64_t i = 0; i < count; ++i) {
        set.push_back(PackedB::pack(b.view(), Trans::No, dt));
        bytes += static_cast<double>(set.back().storage_bytes());
      }
      for (const PackedB& p : set) {  // warm-up pass faults every panel
        gemm_packed(a.view(), Trans::No, p, c.view());
      }
      const double s = best_seconds(5, [&] {
        for (const PackedB& p : set) {
          gemm_packed(a.view(), Trans::No, p, c.view());
        }
        benchmark::DoNotOptimize(c.data());
      });
      return Run{s, bytes};
    };
    const Run f32 = run_set(DType::kF32);
    const Run q8 = run_set(DType::kQ8_0);
    const Run q4 = run_set(DType::kQ4_0);
    const double q8_speedup = f32.seconds / q8.seconds;
    const double q4_speedup = f32.seconds / q4.seconds;
    rep.measurement("gemm_512_q8_speedup", q8_speedup);
    rep.measurement("gemm_512_q4_speedup", q4_speedup);
    rep.measurement("gemm_512_f32_stream_gbps", f32.bytes / f32.seconds / 1e9,
                    burst::obs::RunReport::kNoPaperValue, "GB/s");
    rep.measurement("gemm_512_q8_stream_gbps", q8.bytes / q8.seconds / 1e9,
                    burst::obs::RunReport::kNoPaperValue, "GB/s");
    rep.measurement("gemm_512_q4_stream_gbps", q4.bytes / q4.seconds / 1e9,
                    burst::obs::RunReport::kNoPaperValue, "GB/s");
    rep.check(q8_speedup >= 1.5,
              "Q8_0 >= 1.5x fp32 packed GEMM in the streaming regime");
    rep.check(q4_speedup >= 1.5,
              "Q4_0 >= 1.5x fp32 packed GEMM in the streaming regime");
    burst::parallel::ThreadPool::reset_global();
  }

  rep.attach_registry(registry);
  attach_gemm_metrics(nullptr);
  return rep.finish();
}
