// GEMM microbenchmark (google-benchmark): throughput of the blocked kernel
// behind every matmul in the functional path.
#include <benchmark/benchmark.h>

#include "reporter.hpp"

#include "tensor/gemm.hpp"
#include "tensor/rng.hpp"

namespace {

using namespace burst::tensor;

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = rng.gaussian(n, n, 1.0f);
  Tensor b = rng.gaussian(n, n, 1.0f);
  Tensor c(n, n);
  for (auto _ : state) {
    gemm(a.view(), Trans::No, b.view(), Trans::No, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_GemmTransposed(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(2);
  Tensor a = rng.gaussian(n, n, 1.0f);
  Tensor b = rng.gaussian(n, n, 1.0f);
  Tensor c(n, n);
  for (auto _ : state) {
    gemm(a.view(), Trans::No, b.view(), Trans::Yes, c.view());
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmTransposed)->Arg(128)->Unit(benchmark::kMicrosecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the timing tables still come
// from google-benchmark, but the run also emits the shared RunReport so
// scripts/verify.sh can gate on it like every other bench.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  burst::bench::Reporter rep("micro_gemm");
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  rep.measurement("benchmarks_run", static_cast<double>(ran));
  rep.check(ran > 0, "at least one benchmark ran");
  return rep.finish();
}
