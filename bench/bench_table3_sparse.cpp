// Table 3: throughput of BurstEngine with different sparse-attention
// handling — measured on the functional cluster simulator (8 devices,
// toy-scale tensors, virtual time driven by the kernels' actual post-skip
// FLOP counts):
//
//   * "Attention Masking": causal semantics but no workload balance and no
//     tile skipping (full-rectangle compute) — the paper's baseline;
//   * "Causal Attention": zigzag balance + tile skipping;
//   * "SWA": block-wise sliding window + striped balance.
//
// The paper measures 1.72x (causal) and 3.68x (SWA, 32K window at 1M) over
// the baseline; the unbalanced/unskipped baseline's *ideal* ceiling is 2x
// for causal and N/window for SWA, with real systems landing lower due to
// communication, which the simulator reproduces in virtual time.
#include <cstdio>
#include <mutex>

#include "bench_util.hpp"
#include "comm/communicator.hpp"
#include "comm/sim_transport.hpp"
#include "core/dist_attention.hpp"
#include "core/partition.hpp"
#include "reporter.hpp"
#include "sim/cluster.hpp"
#include "tensor/rng.hpp"

namespace {

using namespace burst;
using namespace burst::bench;
using core::Balance;
using kernels::MaskSpec;

struct Config {
  const char* name;
  MaskSpec mask;
  Balance balance;
  double paper_tgs;
  double paper_speedup;
};

double run_config(const MaskSpec& mask, Balance balance, std::int64_t n,
                  std::int64_t d, int g) {
  sim::Cluster::Config cc;
  cc.topo = sim::Topology::single_node(g);
  cc.flops_per_s = 1e9;  // virtual device speed; only ratios matter
  sim::Cluster cluster(cc);
  tensor::Rng rng(7);
  tensor::Tensor q = rng.gaussian(n, d, 0.5f);
  tensor::Tensor k = rng.gaussian(n, d, 0.5f);
  tensor::Tensor v = rng.gaussian(n, d, 0.5f);
  tensor::Tensor d_out = rng.gaussian(n, d, 0.5f);
  cluster.run([&](sim::DeviceContext& ctx) {
    comm::SimTransport comm_tp(ctx);
    comm::Communicator comm(comm_tp);
    const auto route = core::SweepRoute::flat(comm::flat_ring(g));
    core::DistAttnConfig cfg;
    cfg.mask = mask;
    cfg.scale = 0.125f;
    cfg.balance = balance;
    cfg.backward = core::BackwardComm::kBurst;
    cfg.seq_len = n;
    const auto map = core::route_index_map(route, cfg, ctx.rank());
    core::LocalQKV local{core::shard_rows(q, map), core::shard_rows(k, map),
                         core::shard_rows(v, map)};
    auto fwd = core::dist_attention_forward(comm, route, cfg, local);
    core::dist_attention_backward(comm, route, cfg, local, fwd,
                                  core::shard_rows(d_out, map));
  });
  return cluster.makespan();
}

}  // namespace

int main() {
  const std::int64_t n = 2048;
  const std::int64_t d = 32;
  const int g = 8;
  const std::int64_t window_blocks = 2;
  const std::int64_t block = 128;  // SWA window = 256 tokens

  Reporter rep("table3_sparse");
  title("Table 3 — sparse attention workload balance (simulated, 8 devices)");

  const Config configs[] = {
      // The baseline computes the full rectangle: full mask timing with
      // causal-result semantics. We time the full mask (identical cost).
      {"Attention Masking (no balance)", MaskSpec::full(), Balance::kContiguous,
       227.58, 1.00},
      // Extra diagnostic row (not in the paper's table): causal with tile
      // skipping but *no* balance — the last device's 1.75x overload gates
      // the step, halving the benefit of skipping.
      {"Causal (contiguous, unbalanced)", MaskSpec::causal(),
       Balance::kContiguous, 0.0, 0.0},
      {"Causal Attention (zigzag)", MaskSpec::causal(), Balance::kZigzag,
       393.44, 1.72},
      {"SWA (block-wise, striped)",
       MaskSpec::block_sliding_window(n / block, window_blocks, block),
       Balance::kStriped, 837.79, 3.68},
  };

  Table t({"implementation", "virtual step (ms)", "speedup", "balance factor",
           "paper TGS", "paper speedup"});
  double base = 0.0;
  for (const auto& c : configs) {
    const double time = run_config(c.mask, c.balance, n, d, g);
    if (base == 0.0) {
      base = time;
    }
    const double bf = core::balance_factor(c.mask, c.balance, n, g);
    t.row({c.name, fmt(time * 1e3, "%.1f"), fmt(base / time, "%.2fx"),
           fmt(bf, "%.3f"), fmt(c.paper_tgs), fmt(c.paper_speedup, "%.2fx")});
    if (c.paper_speedup > 0.0) {
      rep.measurement(std::string("speedup_") + c.name, base / time,
                      c.paper_speedup, "x");
      // Simulated speedups must land at or above the paper's measured ones
      // (toy scale is compute-dominated, so they approach the ceilings).
      rep.check(base / time >= c.paper_speedup * 0.99,
                std::string(c.name) + " reaches the paper's speedup");
    }
  }
  t.print();
  std::printf(
      "\nnote: the simulator is compute-dominated at toy scale, so speedups\n"
      "approach the workload ceilings (2x causal, N/window for SWA); the\n"
      "paper's measured 1.72x / 3.68x sit below them due to communication\n"
      "and per-device kernel overheads.\n");
  return rep.finish();
}
