// Recovery overhead: goodput versus snapshot interval when a device
// crashes mid-run. Frequent snapshots pay steady-state I/O time but lose
// little work on a crash; sparse snapshots are cheap until the crash
// throws away every step since the last one. The bench trains 12 steps of
// the toy model on 4 simulated devices with rank 2 crashing at step 7,
// sweeps the snapshot interval, and reports through the shared RunReport so
// the trade-off can be plotted directly.
//
// Self-checking: every faulted run must complete all steps with final
// weights bitwise identical to the fault-free baseline; any mismatch
// exits non-zero.
#include <filesystem>
#include <string>

#include "obs/metrics.hpp"
#include "reporter.hpp"
#include "resilience/driver.hpp"
#include "resilience/snapshot.hpp"
#include "sim/cluster.hpp"

namespace fs = std::filesystem;

int main() {
  using namespace burst;
  using resilience::ResilienceConfig;
  using resilience::ResilienceReport;

  constexpr int kTotalSteps = 12;
  constexpr int kCrashStep = 7;
  const fs::path base = fs::temp_directory_path() / "burst-bench-recovery";
  fs::remove_all(base);

  const auto make_config = [&](const std::string& tag, int interval,
                               bool crash) {
    ResilienceConfig cfg;
    cfg.dist.model = model::ModelConfig::toy();
    cfg.dist.impl = model::AttnImpl::kBurst;
    cfg.cluster.topo = sim::Topology::single_node(4);
    cfg.total_steps = kTotalSteps;
    cfg.snapshot_interval = interval;
    cfg.seq_len = 32;
    cfg.snapshot_dir = (base / tag).string();
    if (crash) {
      sim::FaultPlan::CrashDevice c;
      c.rank = 2;
      c.at_step = kCrashStep;
      cfg.cluster.faults.crashes.push_back(c);
    }
    return cfg;
  };

  const model::ModelWeights init =
      model::ModelWeights::init(model::ModelConfig::toy(), 2024);

  bench::Reporter out("recovery_overhead");
  out.config("total_steps", kTotalSteps);
  out.config("crash_step", kCrashStep);

  // Fault-free ideal: no crash, no snapshots beyond the step-0 floor.
  const ResilienceReport ideal = resilience::resilient_train_loop(
      make_config("ideal", /*interval=*/0, /*crash=*/false), init);
  const double ideal_goodput = kTotalSteps / ideal.virtual_time_s;
  out.measurement("ideal_virtual_time_s", ideal.virtual_time_s,
                  obs::RunReport::kNoPaperValue, "s");
  out.measurement("ideal_goodput_steps_per_s", ideal_goodput,
                  obs::RunReport::kNoPaperValue, "steps/s");
  out.check(ideal.steps_completed == kTotalSteps && ideal.recoveries == 0,
            "fault-free baseline completes without recoveries");

  // The faulted runs feed one registry, so the report carries the
  // resilience.* instruments (recoveries by error code, detect/restore
  // latency histograms) across the whole sweep.
  obs::Registry reg;
  for (int interval : {1, 2, 4, 8}) {
    ResilienceConfig cfg = make_config("int" + std::to_string(interval),
                                       interval, /*crash=*/true);
    cfg.cluster.metrics = &reg;
    const ResilienceReport rep = resilience::resilient_train_loop(cfg, init);

    const std::string tag = "int" + std::to_string(interval);
    out.check(rep.steps_completed == kTotalSteps && rep.recoveries == 1 &&
                  !rep.events.empty(),
              tag + ": all steps committed through one recovery");
    out.check(resilience::bitwise_equal(rep.final_weights,
                                        ideal.final_weights),
              tag + ": final weights bitwise equal to fault-free run");

    const double goodput = kTotalSteps / rep.virtual_time_s;
    out.measurement(tag + "_virtual_time_s", rep.virtual_time_s,
                    obs::RunReport::kNoPaperValue, "s");
    out.measurement(tag + "_snapshot_io_time_s", rep.snapshot_io_time_s,
                    obs::RunReport::kNoPaperValue, "s");
    out.measurement(tag + "_wasted_virtual_time_s", rep.wasted_virtual_time_s,
                    obs::RunReport::kNoPaperValue, "s");
    out.measurement(tag + "_lost_steps",
                    rep.events.empty() ? 0 : rep.events[0].lost_steps);
    out.measurement(tag + "_snapshots_taken", rep.snapshots_taken);
    out.measurement(tag + "_goodput_vs_ideal", goodput / ideal_goodput);
  }
  out.attach_registry(reg);

  fs::remove_all(base);
  return out.finish();
}
