// Recovery overhead: goodput versus snapshot interval when a device
// crashes mid-run. Frequent snapshots pay steady-state I/O time but lose
// little work on a crash; sparse snapshots are cheap until the crash
// throws away every step since the last one. The bench trains 12 steps of
// the toy model on 4 simulated devices with rank 2 crashing at step 7,
// sweeps the snapshot interval, and reports a single JSON object so the
// trade-off can be plotted directly.
//
// Self-checking: every faulted run must complete all steps with final
// weights bitwise identical to the fault-free baseline; any mismatch
// exits non-zero.
#include <cstdio>
#include <filesystem>
#include <string>

#include "resilience/driver.hpp"
#include "resilience/snapshot.hpp"
#include "sim/cluster.hpp"

namespace fs = std::filesystem;

int main() {
  using namespace burst;
  using resilience::ResilienceConfig;
  using resilience::ResilienceReport;

  constexpr int kTotalSteps = 12;
  constexpr int kCrashStep = 7;
  const fs::path base = fs::temp_directory_path() / "burst-bench-recovery";
  fs::remove_all(base);

  const auto make_config = [&](const std::string& tag, int interval,
                               bool crash) {
    ResilienceConfig cfg;
    cfg.dist.model = model::ModelConfig::toy();
    cfg.dist.impl = model::AttnImpl::kBurst;
    cfg.cluster.topo = sim::Topology::single_node(4);
    cfg.total_steps = kTotalSteps;
    cfg.snapshot_interval = interval;
    cfg.seq_len = 32;
    cfg.snapshot_dir = (base / tag).string();
    if (crash) {
      sim::FaultPlan::CrashDevice c;
      c.rank = 2;
      c.at_step = kCrashStep;
      cfg.cluster.faults.crashes.push_back(c);
    }
    return cfg;
  };

  const model::ModelWeights init =
      model::ModelWeights::init(model::ModelConfig::toy(), 2024);

  // Fault-free ideal: no crash, no snapshots beyond the step-0 floor.
  const ResilienceReport ideal = resilience::resilient_train_loop(
      make_config("ideal", /*interval=*/0, /*crash=*/false), init);
  const double ideal_goodput = kTotalSteps / ideal.virtual_time_s;

  bool ok = ideal.steps_completed == kTotalSteps && ideal.recoveries == 0;

  std::printf("{\n  \"bench\": \"recovery_overhead\",\n");
  std::printf("  \"total_steps\": %d,\n  \"crash_step\": %d,\n", kTotalSteps,
              kCrashStep);
  std::printf(
      "  \"ideal\": {\"virtual_time_s\": %.6e, \"goodput_steps_per_s\": "
      "%.6e},\n",
      ideal.virtual_time_s, ideal_goodput);
  std::printf("  \"intervals\": [\n");

  const int intervals[] = {1, 2, 4, 8};
  const int n = static_cast<int>(sizeof(intervals) / sizeof(intervals[0]));
  for (int i = 0; i < n; ++i) {
    const int interval = intervals[i];
    const ResilienceReport rep = resilience::resilient_train_loop(
        make_config("int" + std::to_string(interval), interval,
                    /*crash=*/true),
        init);

    const bool run_ok =
        rep.steps_completed == kTotalSteps && rep.recoveries == 1 &&
        !rep.events.empty() &&
        resilience::bitwise_equal(rep.final_weights, ideal.final_weights);
    if (!run_ok) {
      std::fprintf(stderr,
                   "self-check failed for interval %d: steps=%d recoveries=%d "
                   "bitwise=%d\n",
                   interval, rep.steps_completed, rep.recoveries,
                   static_cast<int>(resilience::bitwise_equal(
                       rep.final_weights, ideal.final_weights)));
      ok = false;
    }

    const double goodput = kTotalSteps / rep.virtual_time_s;
    std::printf(
        "    {\"snapshot_interval\": %d, \"virtual_time_s\": %.6e, "
        "\"snapshot_io_time_s\": %.6e, \"wasted_virtual_time_s\": %.6e, "
        "\"lost_steps\": %d, \"snapshots_taken\": %d, "
        "\"goodput_steps_per_s\": %.6e, \"goodput_vs_ideal\": %.4f}%s\n",
        interval, rep.virtual_time_s, rep.snapshot_io_time_s,
        rep.wasted_virtual_time_s,
        rep.events.empty() ? 0 : rep.events[0].lost_steps, rep.snapshots_taken,
        goodput, goodput / ideal_goodput, i + 1 < n ? "," : "");
  }
  std::printf("  ],\n  \"self_check\": \"%s\"\n}\n", ok ? "pass" : "FAIL");

  fs::remove_all(base);
  return ok ? 0 : 1;
}
