// Figure 13: peak memory per GPU of every method on the Figure 12
// settings, with the component breakdown that explains the paper's
// findings: Megatron-CP dies on replicated optimizer states, the LoongTrain
// family and Ulysses pay for unfused LM-head logits, and BurstEngine's
// fused LM head + sequence-level selective checkpointing save 24-26%.
#include "bench_util.hpp"
#include "perfmodel/estimator.hpp"
#include "reporter.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;
  using perfmodel::Method;

  struct Setting {
    const char* name;
    model::ModelConfig model;
    double seq;
    perfmodel::ClusterShape cluster;
  };
  const Setting settings[] = {
      {"7B, 2M tokens, 32 GPUs", model::ModelConfig::llama7b(), 2e6, {4, 8}},
      {"14B, 1M tokens, 32 GPUs", model::ModelConfig::llama14b(), 1e6, {4, 8}},
      {"7B, 4M tokens, 64 GPUs", model::ModelConfig::llama7b(), 4e6, {8, 8}},
      {"14B, 2M tokens, 64 GPUs", model::ModelConfig::llama14b(), 2e6, {8, 8}},
  };
  const Method methods[] = {Method::kMegatronCP, Method::kUlysses,
                            Method::kDoubleRing, Method::kUSP,
                            Method::kBurstEngine};

  Reporter rep("fig13_peak_memory");
  int setting_idx = 0;
  for (const auto& s : settings) {
    title(std::string("Figure 13 — peak memory per GPU, ") + s.name);
    Table t({"method", "total (GB)", "states (GB)", "activations (GB)",
             "LM head (GB)", "fits 80GB?"});
    double best_baseline = 1e30;
    double burst_total = 0.0;
    for (Method m : methods) {
      perfmodel::RunConfig cfg;
      cfg.model = s.model;
      cfg.seq_len = s.seq;
      cfg.cluster = s.cluster;
      cfg.method = m;
      auto est = estimate_step(cfg);
      const auto& mem = est.memory;
      const double states =
          mem.param_shard + mem.grad_shard + mem.optimizer + mem.gathered_layer;
      t.row({perfmodel::method_name(m), fmt_gb(mem.total()), fmt_gb(states),
             fmt_gb(mem.activations + mem.working_set), fmt_gb(mem.lm_head),
             est.ok ? "yes" : ("NO — " + est.failure)});
      if (m == Method::kBurstEngine) {
        burst_total = mem.total();
      } else if (est.ok) {
        best_baseline = std::min(best_baseline, mem.total());
      }
    }
    t.print();
    const std::string tag = "setting" + std::to_string(setting_idx);
    rep.config(tag, s.name);
    rep.measurement(tag + "_burst_total_gb", burst_total / 1e9,
                    obs::RunReport::kNoPaperValue, "GB");
    rep.check(burst_total > 0 && burst_total < 80e9,
              std::string("BurstEngine fits in 80 GB: ") + s.name);
    if (burst_total > 0 && best_baseline < 1e29) {
      // Paper savings over the best feasible baseline at 32 GPUs.
      const double paper = setting_idx == 0 ? 26.4 : 24.2;
      const double saved = 100.0 * (1.0 - burst_total / best_baseline);
      rep.measurement(tag + "_savings_pct", saved, paper, "%");
      rep.check(burst_total < best_baseline,
                std::string("BurstEngine uses less memory than every "
                            "baseline: ") +
                    s.name);
      std::printf("BurstEngine saves %.1f%% vs the best feasible baseline "
                  "(paper: 26.4%% on 7B / 24.2%% on 14B at 32 GPUs)\n",
                  saved);
    } else if (burst_total > 0) {
      std::printf("no baseline fits this setting; BurstEngine uses %.2f GB "
                  "(matches the paper's 64-GPU finding)\n",
                  burst_total / 1e9);
    }
    ++setting_idx;
  }
  return rep.finish();
}
