// Design-choice ablation: the sequence-level selective checkpointing knob
// (Figure 6). Sweeping store_fraction from 0 (== full checkpointing) to 1
// (== selective++) traces the memory/recompute trade-off curve the paper's
// fixed 0.5 sits on. Because causal recompute cost is (1-f)^2 while storage
// is linear in f, the curve is strongly convex: the first stored half buys
// back 75% of the attention recompute.
#include "bench_util.hpp"
#include "perfmodel/estimator.hpp"
#include "reporter.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;
  using core::CkptConfig;
  using core::CkptStrategy;

  Reporter rep("ablation_ckpt_fraction");
  title("sequence-level selective checkpointing sweep (14B, 1M tokens, "
        "32x A800)");
  Table t({"store fraction", "MFU (%)", "TGS", "memory (GB)",
           "attn recompute share"});
  double prev_tgs = -1.0;
  double prev_mem = -1.0;
  for (double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    perfmodel::RunConfig cfg;
    cfg.model = model::ModelConfig::llama14b();
    cfg.seq_len = 1e6;
    cfg.cluster = {4, 8};
    cfg.method = perfmodel::Method::kBurstEngine;
    cfg.ckpt = CkptConfig{CkptStrategy::kSeqSelective, f};
    auto est = estimate_step(cfg);
    if (!est.ok) {
      t.row({fmt(f, "%.2f"), "-", "-", "-", est.failure});
      continue;
    }
    t.row({fmt(f, "%.2f"), fmt(100.0 * est.mfu), fmt(est.tgs),
           fmt_gb(est.memory.total()),
           fmt(100.0 * (1.0 - f) * (1.0 - f), "%.0f%%")});
    const std::string tag = "f" + fmt(100.0 * f, "%.0f");
    rep.measurement("tgs_" + tag, est.tgs);
    rep.measurement("mem_gb_" + tag, est.memory.total() / 1e9);
    // The trade-off curve is monotone: storing more activations always
    // costs memory and always saves recompute.
    if (prev_tgs >= 0.0) {
      rep.check(est.tgs >= prev_tgs, "TGS monotone in store fraction at " +
                                         tag);
      rep.check(est.memory.total() / 1e9 >= prev_mem,
                "memory monotone in store fraction at " + tag);
    }
    prev_tgs = est.tgs;
    prev_mem = est.memory.total() / 1e9;
  }
  t.print();
  std::printf(
      "\nf=0 equals full checkpointing, f=1 equals selective++; the paper\n"
      "picks f=0.5 (Table 2): half the extra memory of selective++ for only\n"
      "a quarter of full checkpointing's attention recompute.\n");
  return rep.finish();
}
