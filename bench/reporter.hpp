// Shared result reporting for the reproduction benches.
//
// Every bench keeps its human-readable tables (bench_util.hpp) and finishes
// through one Reporter, which wraps an obs::RunReport (kind "bench") and
// prints the stable JSON artifact as the last thing on stdout. Measurements
// carry the paper's reported value alongside the measured one where the
// paper states a number; check() records the bench's self-validation
// invariants, and finish() turns their AND into the process exit code —
// which is what scripts/verify.sh gates on.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>

#include "obs/report.hpp"

namespace burst::bench {

class Reporter {
 public:
  explicit Reporter(std::string name) : report_("bench", std::move(name)) {}

  /// Full access for callers that need attach_registry / add_error.
  obs::RunReport& report() { return report_; }

  template <typename T>
  void config(const std::string& key, T value) {
    report_.config(key, value);
  }

  /// `paper_value` defaults to "paper states no number" (serialized null).
  void measurement(const std::string& name, double measured,
                   double paper_value = obs::RunReport::kNoPaperValue,
                   const std::string& unit = "") {
    report_.measurement(name, measured, paper_value, unit);
  }

  /// Records a self-validation invariant; failures also print to stderr so
  /// an interactive run shows what went wrong without parsing JSON.
  void check(bool ok, const std::string& what) {
    if (!ok) {
      std::fprintf(stderr, "FAIL: %s\n", what.c_str());
    }
    report_.check(ok, what);
  }

  void attach_registry(const obs::Registry& reg) {
    report_.attach_registry(reg);
  }

  /// Emits the RunReport JSON (last object on stdout; also to the file named
  /// by $BURST_RUN_REPORT when set) and returns the process exit code:
  /// 0 iff every check passed.
  int finish() {
    const std::string json = report_.to_json();
    std::printf("\n%s\n", json.c_str());
    if (const char* path = std::getenv("BURST_RUN_REPORT")) {
      std::ofstream f(path);
      f << json << "\n";
    }
    return report_.self_check() ? 0 : 1;
  }

 private:
  obs::RunReport report_;
};

}  // namespace burst::bench
