// Shared table-printing helpers for the reproduction benches. Every bench
// prints the rows/series of one table or figure from the paper, with the
// paper's reported value alongside where it is stated numerically.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace burst::bench {

inline void title(const std::string& s) {
  std::printf("\n=== %s ===\n", s.c_str());
}

inline void subtitle(const std::string& s) {
  std::printf("--- %s ---\n", s.c_str());
}

/// Prints a simple aligned table. Rows are vectors of preformatted cells.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) {
      width[c] = header_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    const auto line = [&](const std::vector<std::string>& cells) {
      std::printf("|");
      for (std::size_t c = 0; c < header_.size(); ++c) {
        const std::string& v = c < cells.size() ? cells[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(width[c]), v.c_str());
      }
      std::printf("\n");
    };
    line(header_);
    std::printf("|");
    for (std::size_t c = 0; c < header_.size(); ++c) {
      std::printf("%s|", std::string(width[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& r : rows_) {
      line(r);
    }
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, const char* f = "%.2f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

inline std::string fmt_gb(double bytes) { return fmt(bytes / 1e9, "%.2f"); }

inline std::string seq_label(double n) {
  if (n >= 1e6) {
    return fmt(n / 1e6, "%.0fM");
  }
  return fmt(n / 1e3, "%.0fK");
}

}  // namespace burst::bench
