// Figure 14: distributed attention microbenchmark — per-layer attention
// forward+backward time on the 14B attention configuration (40 heads,
// d=5120) across 32 A800s, for sequence lengths 128K .. 1M.
//
// Paper findings reproduced: DeepSpeed-Ulysses is inapplicable (40 heads not
// divisible by 32 GPUs); Megatron-CP OOMs beyond 256K and is slow before
// that; BurstAttention beats USP by ~1.05x and DoubleRing by ~1.33x at 1M.
#include "bench_util.hpp"
#include "perfmodel/estimator.hpp"
#include "reporter.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;
  using perfmodel::Method;

  Reporter rep("fig14_attention_perf");
  title("Figure 14 — attention fwd+bwd time, 14B attention config, 32 GPUs");
  const Method methods[] = {Method::kMegatronCP, Method::kUlysses,
                            Method::kDoubleRing, Method::kUSP,
                            Method::kBurstEngine};
  Table t({"seq len", "Megatron-CP (ms)", "Ulysses (ms)", "DoubleRing (ms)",
           "USP (ms)", "BurstAttention (ms)", "Burst vs USP", "vs DoubleRing"});
  for (double n : {128e3, 256e3, 512e3, 1e6}) {
    std::vector<std::string> row{seq_label(n)};
    double usp = 0.0;
    double dbl = 0.0;
    double burst = 0.0;
    for (Method m : methods) {
      perfmodel::RunConfig cfg;
      cfg.model = model::ModelConfig::llama14b();
      cfg.seq_len = n;
      cfg.cluster = {4, 8};
      cfg.method = m;
      auto est = estimate_attention_only(cfg);
      if (!est.ok) {
        row.push_back(est.failure.substr(0, 14));
        continue;
      }
      row.push_back(fmt(est.time_s * 1e3, "%.1f"));
      if (m == Method::kUSP) {
        usp = est.time_s;
      } else if (m == Method::kDoubleRing) {
        dbl = est.time_s;
      } else if (m == Method::kBurstEngine) {
        burst = est.time_s;
      }
    }
    row.push_back(burst > 0 && usp > 0 ? fmt(usp / burst, "%.2fx") : "-");
    row.push_back(burst > 0 && dbl > 0 ? fmt(dbl / burst, "%.2fx") : "-");
    t.row(std::move(row));
    rep.measurement("burst_ms_" + seq_label(n), burst * 1e3,
                    obs::RunReport::kNoPaperValue, "ms");
    if (burst > 0 && usp > 0) {
      rep.measurement("burst_vs_usp_" + seq_label(n), usp / burst,
                      n == 1e6 ? 1.05 : obs::RunReport::kNoPaperValue);
      rep.check(burst < usp, "Burst beats USP at " + seq_label(n));
    }
    if (burst > 0 && dbl > 0) {
      rep.measurement("burst_vs_double_ring_" + seq_label(n), dbl / burst,
                      n == 1e6 ? 1.33 : obs::RunReport::kNoPaperValue);
      rep.check(burst < dbl, "Burst beats DoubleRing at " + seq_label(n));
    }
  }
  t.print();
  std::printf("\npaper at 1M: Burst 1.05x over USP, 1.33x over DoubleRing;\n"
              "Ulysses inapplicable (heads %% GPUs != 0); Megatron-CP OOM "
              "beyond 256K.\n");
  return rep.finish();
}
