// Figure 12: end-to-end training throughput (TGS and MFU) of BurstEngine
// versus Megatron-CP, DeepSpeed-Ulysses, LoongTrain-DoubleRing and
// LoongTrain-USP on the paper's four settings:
//   7B @ 2M and 14B @ 1M on 32x A800; 7B @ 4M and 14B @ 2M on 64x A800.
//
// Paper headline: BurstEngine achieves up to 1.19x (7B) / 1.15x (14B) over
// LoongTrain-USP on 32 GPUs; Megatron-CP OOMs everywhere shown; on 64 GPUs
// only BurstEngine trains the 4M/2M settings.
#include "bench_util.hpp"
#include "perfmodel/estimator.hpp"
#include "reporter.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;
  using perfmodel::Method;

  struct Setting {
    const char* name;
    model::ModelConfig model;
    double seq;
    perfmodel::ClusterShape cluster;
  };
  const Setting settings[] = {
      {"7B, 2M tokens, 32 GPUs", model::ModelConfig::llama7b(), 2e6, {4, 8}},
      {"14B, 1M tokens, 32 GPUs", model::ModelConfig::llama14b(), 1e6, {4, 8}},
      {"7B, 4M tokens, 64 GPUs", model::ModelConfig::llama7b(), 4e6, {8, 8}},
      {"14B, 2M tokens, 64 GPUs", model::ModelConfig::llama14b(), 2e6, {8, 8}},
  };
  const Method methods[] = {Method::kMegatronCP, Method::kUlysses,
                            Method::kDoubleRing, Method::kUSP,
                            Method::kBurstEngine};

  Reporter rep("fig12_end_to_end");
  int setting_idx = 0;
  for (const auto& s : settings) {
    title(std::string("Figure 12 — ") + s.name);
    Table t({"method", "TGS (tok/s/GPU)", "MFU (%)", "step (s)", "status"});
    double usp_tgs = 0.0;
    double burst_tgs = 0.0;
    for (Method m : methods) {
      perfmodel::RunConfig cfg;
      cfg.model = s.model;
      cfg.seq_len = s.seq;
      cfg.cluster = s.cluster;
      cfg.method = m;
      auto est = estimate_step(cfg);
      if (!est.ok) {
        t.row({perfmodel::method_name(m), "-", "-", "-", est.failure});
        continue;
      }
      t.row({perfmodel::method_name(m), fmt(est.tgs), fmt(100.0 * est.mfu),
             fmt(est.step_time_s, "%.1f"), "ok"});
      if (m == Method::kUSP) {
        usp_tgs = est.tgs;
      }
      if (m == Method::kBurstEngine) {
        burst_tgs = est.tgs;
      }
    }
    t.print();
    const std::string tag = "setting" + std::to_string(setting_idx);
    rep.config(tag, s.name);
    rep.measurement(tag + "_burst_tgs", burst_tgs,
                    obs::RunReport::kNoPaperValue, "tok/s/GPU");
    rep.check(burst_tgs > 0,
              std::string("BurstEngine completes: ") + s.name);
    if (usp_tgs > 0 && burst_tgs > 0) {
      // Paper headline speedups over LoongTrain-USP at 32 GPUs.
      const double paper = setting_idx == 0 ? 1.19 : 1.15;
      rep.measurement(tag + "_speedup_vs_usp", burst_tgs / usp_tgs, paper);
      rep.check(burst_tgs > usp_tgs,
                std::string("BurstEngine beats LoongTrain-USP: ") + s.name);
      std::printf("BurstEngine / LoongTrain-USP speedup: %.2fx (paper: "
                  "1.19x on 7B / 1.15x on 14B at 32 GPUs)\n",
                  burst_tgs / usp_tgs);
    } else if (burst_tgs > 0) {
      std::printf("only BurstEngine completes this setting (matches the "
                  "paper's 64-GPU result)\n");
    }
    ++setting_idx;
  }
  return rep.finish();
}
