// Microbenchmarks of the single-device kernels (google-benchmark):
// flash-style attention forward/backward across mask types, tile-skip
// effectiveness, and the three LM-head implementations. These document the
// substrate the functional simulator charges time against.
#include <benchmark/benchmark.h>

#include "reporter.hpp"

#include <cmath>

#include "kernels/flash_attention.hpp"
#include "kernels/lm_head.hpp"
#include "kernels/reference_attention.hpp"
#include "obs/metrics.hpp"
#include "tensor/rng.hpp"
#include "tensor/workspace.hpp"

namespace {

using namespace burst;
using kernels::IndexMap;
using kernels::MaskSpec;
using tensor::Rng;
using tensor::Tensor;

MaskSpec mask_for(int kind, std::int64_t n) {
  switch (kind) {
    case 0:
      return MaskSpec::full();
    case 1:
      return MaskSpec::causal();
    case 2:
      return MaskSpec::sliding_window(n / 8);
    default:
      return MaskSpec::block_sliding_window(n / 64, 2, 64);
  }
}

void BM_FlashForward(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const std::int64_t d = 32;
  Rng rng(1);
  Tensor q = rng.gaussian(n, d, 1.0f);
  Tensor k = rng.gaussian(n, d, 1.0f);
  Tensor v = rng.gaussian(n, d, 1.0f);
  const MaskSpec mask = mask_for(static_cast<int>(state.range(1)), n);
  const IndexMap id = IndexMap::range(0, n);
  kernels::KernelStats stats;
  for (auto _ : state) {
    auto r = kernels::flash_forward(q, id, k, v, id, mask, 0.2f, &stats);
    benchmark::DoNotOptimize(r.o.data());
  }
  // `flops` counts only unmasked pairs (post tile-skip), so this rate is
  // effective GFLOP/s of useful attention work.
  state.counters["GFLOP/s"] =
      benchmark::Counter(static_cast<double>(stats.flops) / 1e9,
                         benchmark::Counter::kIsRate);
  state.counters["tiles_skipped"] = static_cast<double>(stats.tiles_skipped) /
                                    static_cast<double>(state.iterations());
}
BENCHMARK(BM_FlashForward)
    ->ArgsProduct({{256, 512}, {0, 1, 2, 3}})
    ->Unit(benchmark::kMicrosecond);

void BM_FlashBackward(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const std::int64_t d = 32;
  Rng rng(2);
  Tensor q = rng.gaussian(n, d, 1.0f);
  Tensor k = rng.gaussian(n, d, 1.0f);
  Tensor v = rng.gaussian(n, d, 1.0f);
  Tensor d_out = rng.gaussian(n, d, 1.0f);
  const MaskSpec mask = MaskSpec::causal();
  const IndexMap id = IndexMap::range(0, n);
  auto fwd = kernels::flash_forward(q, id, k, v, id, mask, 0.2f);
  Tensor dvec = kernels::attention_dvec(d_out, fwd.o);
  kernels::KernelStats stats;
  for (auto _ : state) {
    Tensor dq = Tensor::zeros(n, d);
    Tensor dk = Tensor::zeros(n, d);
    Tensor dv = Tensor::zeros(n, d);
    kernels::flash_backward_partial(q, id, k, v, id, mask, 0.2f, d_out,
                                    fwd.lse, dvec, dq, dk, dv, &stats);
    benchmark::DoNotOptimize(dq.data());
  }
  state.counters["GFLOP/s"] =
      benchmark::Counter(static_cast<double>(stats.flops) / 1e9,
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FlashBackward)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_ReferenceAttention(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const std::int64_t d = 32;
  Rng rng(3);
  Tensor q = rng.gaussian(n, d, 1.0f);
  Tensor k = rng.gaussian(n, d, 1.0f);
  Tensor v = rng.gaussian(n, d, 1.0f);
  const IndexMap id = IndexMap::range(0, n);
  for (auto _ : state) {
    auto r = kernels::reference_attention_forward(q, id, k, v, id,
                                                  MaskSpec::causal(), 0.2f);
    benchmark::DoNotOptimize(r.o.data());
  }
}
BENCHMARK(BM_ReferenceAttention)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_LmHead(benchmark::State& state) {
  const std::int64_t n = 128;
  const std::int64_t d = 64;
  const std::int64_t v = 512;
  Rng rng(4);
  Tensor h = rng.gaussian(n, d, 0.7f);
  Tensor w = rng.gaussian(v, d, 0.7f);
  std::vector<std::int64_t> targets;
  for (std::int64_t i = 0; i < n; ++i) {
    targets.push_back(rng.next_index(v));
  }
  const int variant = static_cast<int>(state.range(0));
  std::uint64_t scratch = 0;
  for (auto _ : state) {
    kernels::LmHeadResult r;
    switch (variant) {
      case 0:
        r = kernels::naive_lm_head_loss(h, w, targets);
        break;
      case 1:
        r = kernels::tiled_recompute_lm_head_loss(h, w, targets, 32, 64);
        break;
      default:
        r = kernels::fused_lm_head_loss(h, w, targets, 32, 64);
        break;
    }
    scratch = r.peak_scratch_bytes;
    benchmark::DoNotOptimize(r.loss);
  }
  state.counters["scratch_bytes"] = static_cast<double>(scratch);
  state.SetLabel(variant == 0   ? "naive"
                 : variant == 1 ? "tiled-recompute"
                                : "fused(Alg3)");
}
BENCHMARK(BM_LmHead)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the timing tables still come
// from google-benchmark, but the run also emits the shared RunReport so
// scripts/verify.sh can gate on it like every other bench.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  burst::bench::Reporter rep("micro_kernels");
  // Observation-only kernel counters (tiles computed/skipped, workspace
  // high-water) ride along in the RunReport's metrics block.
  burst::obs::Registry registry;
  burst::kernels::attach_attention_metrics(&registry);
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  rep.measurement("benchmarks_run", static_cast<double>(ran));
  rep.check(ran > 0, "at least one benchmark ran");
  rep.measurement(
      "attn_workspace_high_water_bytes",
      static_cast<double>(burst::tensor::Workspace::tls().high_water_bytes()),
      burst::obs::RunReport::kNoPaperValue, "bytes");
  rep.check(registry.counter("kernels.attn.tiles_computed").value() > 0,
            "attention kernels reported tile counters");
  rep.attach_registry(registry);
  burst::kernels::attach_attention_metrics(nullptr);
  return rep.finish();
}
