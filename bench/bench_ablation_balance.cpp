// Design-choice ablation (Figures 10-11 quantified): exact workload-balance
// factors (max device load / ideal) for every partitioner x mask pair, at
// the paper's device counts. The step time of a synchronized context-
// parallel step scales with this factor, so it is the single number that
// decides between zigzag, striped and contiguous partitioning.
//
// The paper's remark "integrating BurstEngine and striped-way workload
// balance achieves better performance" shows up here: striped matches
// zigzag on causal masks and is the only strategy that also balances
// block-sparse masks (any block size divisible by G).
#include "bench_util.hpp"
#include "core/partition.hpp"
#include "reporter.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;
  using core::Balance;
  using kernels::MaskSpec;

  const std::int64_t n = 8192;  // balance factors are scale-free beyond ~G^2
  Reporter rep("ablation_balance");

  for (int g : {8, 32}) {
    title("workload balance factor (max device / ideal), N=8192, G=" +
          std::to_string(g));
    struct Row {
      const char* name;
      MaskSpec mask;
    };
    const Row rows[] = {
        {"causal", MaskSpec::causal()},
        {"sliding window (N/8)", MaskSpec::sliding_window(n / 8)},
        {"dilated (stride 4)", MaskSpec::dilated(4)},
        {"block-SWA (blocks of 256)",
         MaskSpec::block_sliding_window(n / 256, 2, 256)},
    };
    Table t({"mask", "contiguous", "zigzag", "striped"});
    for (const auto& r : rows) {
      const double contiguous =
          core::balance_factor(r.mask, Balance::kContiguous, n, g);
      const double zigzag =
          core::balance_factor(r.mask, Balance::kZigzag, n, g);
      const double striped =
          core::balance_factor(r.mask, Balance::kStriped, n, g);
      t.row({r.name, fmt(contiguous, "%.3f"), fmt(zigzag, "%.3f"),
             fmt(striped, "%.3f")});
      const std::string tag =
          std::string(r.name).substr(0, std::string(r.name).find(' ')) +
          "_g" + std::to_string(g);
      rep.measurement("striped_" + tag, striped);
      rep.check(striped <= contiguous + 1e-9,
                "striped never worse than contiguous (" + tag + ")");
    }
    // Zigzag and striped both balance causal exactly; striped is the only
    // one that also balances the block-SWA mask (Figure 11).
    rep.check(core::balance_factor(MaskSpec::causal(), Balance::kStriped, n,
                                   g) < 1.05,
              "striped balances causal, G=" + std::to_string(g));
    rep.check(
        core::balance_factor(MaskSpec::block_sliding_window(n / 256, 2, 256),
                             Balance::kStriped, n, g) <
            core::balance_factor(
                MaskSpec::block_sliding_window(n / 256, 2, 256),
                Balance::kZigzag, n, g),
        "striped beats zigzag on block-SWA, G=" + std::to_string(g));
    t.print();
  }
  std::printf(
      "\n1.000 = perfect balance. Contiguous causal degrades toward 2x as G\n"
      "grows (the last device owns the heaviest rows); zigzag fixes causal\n"
      "exactly; striped fixes causal *and* block-wise sparse masks, which is\n"
      "why BurstEngine integrates the striped strategy for sparse patterns\n"
      "(Figure 11).\n");
  return rep.finish();
}
