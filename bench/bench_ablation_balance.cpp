// Design-choice ablation (Figures 10-11 quantified): exact workload-balance
// factors (max device load / ideal) for every partitioner x mask pair, at
// the paper's device counts. The step time of a synchronized context-
// parallel step scales with this factor, so it is the single number that
// decides between zigzag, striped and contiguous partitioning.
//
// The paper's remark "integrating BurstEngine and striped-way workload
// balance achieves better performance" shows up here: striped matches
// zigzag on causal masks and is the only strategy that also balances
// block-sparse masks (any block size divisible by G).
#include "bench_util.hpp"
#include "core/partition.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;
  using core::Balance;
  using kernels::MaskSpec;

  const std::int64_t n = 8192;  // balance factors are scale-free beyond ~G^2

  for (int g : {8, 32}) {
    title("workload balance factor (max device / ideal), N=8192, G=" +
          std::to_string(g));
    struct Row {
      const char* name;
      MaskSpec mask;
    };
    const Row rows[] = {
        {"causal", MaskSpec::causal()},
        {"sliding window (N/8)", MaskSpec::sliding_window(n / 8)},
        {"dilated (stride 4)", MaskSpec::dilated(4)},
        {"block-SWA (blocks of 256)",
         MaskSpec::block_sliding_window(n / 256, 2, 256)},
    };
    Table t({"mask", "contiguous", "zigzag", "striped"});
    for (const auto& r : rows) {
      t.row({r.name,
             fmt(core::balance_factor(r.mask, Balance::kContiguous, n, g),
                 "%.3f"),
             fmt(core::balance_factor(r.mask, Balance::kZigzag, n, g),
                 "%.3f"),
             fmt(core::balance_factor(r.mask, Balance::kStriped, n, g),
                 "%.3f")});
    }
    t.print();
  }
  std::printf(
      "\n1.000 = perfect balance. Contiguous causal degrades toward 2x as G\n"
      "grows (the last device owns the heaviest rows); zigzag fixes causal\n"
      "exactly; striped fixes causal *and* block-wise sparse masks, which is\n"
      "why BurstEngine integrates the striped strategy for sparse patterns\n"
      "(Figure 11).\n");
  return 0;
}
