// Figure 2: proportion of end-to-end training time spent in attention
// modules for a 7B transformer as sequence length grows.
//
// Paper shape: attention becomes the dominant cost beyond 128K and is the
// overwhelming majority at 1M+.
#include "bench_util.hpp"
#include "model/config.hpp"
#include "perfmodel/flops.hpp"
#include "reporter.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  Reporter rep("fig2_attention_share");
  title("Figure 2 — attention share of end-to-end step time (7B model)");
  model::ModelConfig cfg = model::ModelConfig::llama7b();
  Table t({"seq len", "attention share (%)", "linear share (%)",
           "LM head share (%)"});
  for (double n : {32e3, 64e3, 128e3, 256e3, 512e3, 1e6, 2e6, 4e6}) {
    auto f = perfmodel::step_flops(cfg, n,
                                   {core::CkptStrategy::kNone, 0.5});
    const double total = f.model_total();
    const double attn = 100.0 * (f.attn_fwd + f.attn_bwd) / total;
    t.row({seq_label(n), fmt(attn),
           fmt(100.0 * (f.linear_fwd + f.linear_bwd) / total),
           fmt(100.0 * (f.lm_head_fwd + f.lm_head_bwd) / total)});
    rep.measurement("attn_share_pct_" + seq_label(n), attn,
                    obs::RunReport::kNoPaperValue, "%");
    if (n >= 1e6) {
      rep.check(attn > 90.0, "attention share >90% at " + seq_label(n) +
                                 " (Figure 2 shape)");
    }
  }
  t.print();
  std::printf(
      "\npaper: attention dominates beyond 128K tokens; >90%% at 1M+.\n");
  return rep.finish();
}
