// Table 2: ablation of BurstEngine's optimizations — 14B model, 1M tokens,
// 32x A800. Rows toggle, cumulatively: backward communication optimization
// (Algorithm 2), topology-aware ring + fine-grained overlap, sequence-level
// LM-head/loss fusion, then either sequence-level selective checkpointing or
// selective checkpointing++ on top.
#include "bench_util.hpp"
#include "perfmodel/estimator.hpp"
#include "reporter.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;
  using core::CkptConfig;
  using core::CkptStrategy;

  Reporter rep("table2_ablation");
  title("Table 2 — BurstEngine ablation (14B, 1M tokens, 32x A800)");

  struct Row {
    const char* label;
    bool bwd_opt, topo, fuse;
    CkptStrategy ckpt;
    double paper_mfu, paper_tgs, paper_mem;
  };
  const Row rows[] = {
      {"baseline (all off)", false, false, false, CkptStrategy::kFull, 36.75,
       83.79, 48.47},
      {"+ backward comm opt", true, false, false, CkptStrategy::kFull, 38.37,
       87.48, 49.31},
      {"+ topology-aware ring", true, true, false, CkptStrategy::kFull, 41.69,
       95.06, 48.97},
      {"+ LM head/loss fusion", true, true, true, CkptStrategy::kFull, 41.58,
       94.81, 41.45},
      {"+ seq-selective ckpt", true, true, true, CkptStrategy::kSeqSelective,
       47.72, 108.82, 45.93},
      {"(alt) selective ckpt++", true, true, true, CkptStrategy::kSelectivePP,
       51.68, 117.83, 53.91},
  };

  Table t({"configuration", "MFU (%)", "TGS", "mem (GB)", "paper MFU",
           "paper TGS", "paper mem"});
  int row_idx = 0;
  double prev_tgs = 0.0;
  for (const auto& r : rows) {
    perfmodel::RunConfig cfg;
    cfg.model = model::ModelConfig::llama14b();
    cfg.seq_len = 1e6;
    cfg.cluster = {4, 8};
    cfg.method = perfmodel::Method::kBurstEngine;
    cfg.backward_comm_opt = r.bwd_opt;
    cfg.topo_aware = r.topo;
    cfg.fused_lm_head = r.fuse;
    cfg.ckpt = CkptConfig{r.ckpt, 0.5};
    auto est = estimate_step(cfg);
    if (!est.ok) {
      t.row({r.label, "-", "-", "-", fmt(r.paper_mfu), fmt(r.paper_tgs),
             fmt(r.paper_mem)});
      continue;
    }
    t.row({r.label, fmt(100.0 * est.mfu), fmt(est.tgs),
           fmt_gb(est.memory.total()), fmt(r.paper_mfu), fmt(r.paper_tgs),
           fmt(r.paper_mem)});
    const std::string tag = "row" + std::to_string(row_idx);
    rep.config(tag, r.label);
    rep.measurement(tag + "_tgs", est.tgs, r.paper_tgs, "tok/s/GPU");
    rep.measurement(tag + "_mfu_pct", 100.0 * est.mfu, r.paper_mfu, "%");
    rep.measurement(tag + "_mem_gb", est.memory.total() / 1e9, r.paper_mem,
                    "GB");
    // Cumulative speed ablations must not regress throughput (the fusion
    // row trades no speed for memory; checkpointing rows may differ).
    if (row_idx >= 1 && row_idx <= 2) {
      rep.check(est.tgs >= prev_tgs,
                std::string(r.label) + " does not slow the previous row");
    }
    prev_tgs = est.tgs;
    ++row_idx;
  }
  t.print();
  std::printf(
      "\npaper deltas: backward opt ~1.05x; topo ring+overlap ~1.08x; LM\n"
      "fusion saves 15.3%% memory at equal speed; seq-selective ckpt saves\n"
      "another 14.8%% memory and is 1.14x over full checkpointing.\n");
  return rep.finish();
}
