// Serving under SLOs: multi-tenant SLO-aware scheduling vs plain continuous
// batching at 2x saturation, plus admission control at 4x, on the shared
// trace-driven load generator (api/loadgen.hpp).
//
// Protocol — all virtual-clock time, so every number is exact and
// machine-portable:
//
//   1. Calibrate: a closed run (every request present at t=0) under
//      kContinuous measures engine capacity in requests per virtual second.
//   2. Saturate: an open-loop MMPP trace with Zipf tenancy and lognormal
//      lengths is scaled to offer 2x capacity, and replayed — identically —
//      under kContinuous (single queue, the baseline) and kSlo (per-tenant
//      weighted-fair queues + priority classes + TTFT-deadline preemption).
//      Goodput counts SLO-carrying requests that completed within the fixed
//      TTFT target; the acceptance bar is kSlo >= 1.2x the baseline.
//   3. Shed: the same trace at 4x capacity, with and without the bounded
//      waiting queue, shows admission control holding p99 TTFT down while
//      the unbounded queue lets it grow with the backlog.
//   4. Replay step 2's kSlo run and require bit-identical results.
//
// Latency metrics are reported as ratios/headroom (higher = better) so the
// bench_compare regression gate can gate them.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "api/loadgen.hpp"
#include "api/server.hpp"
#include "model/transformer.hpp"
#include "obs/metrics.hpp"
#include "reporter.hpp"

namespace {

using burst::api::ApiServer;
using burst::api::ApiServerConfig;
using burst::api::CompletionRequest;
using burst::api::GeneratedRequest;
using burst::api::LoadGen;
using burst::api::LoadGenConfig;
using burst::api::Priority;
using burst::model::ModelConfig;
using burst::model::ModelWeights;
using burst::serve::BatchPolicy;

ModelConfig bench_model() {
  ModelConfig cfg;
  cfg.layers = 4;
  cfg.d_model = 64;
  cfg.heads = 8;
  cfg.kv_heads = 4;
  cfg.vocab = 256;
  cfg.d_ff = 172;
  cfg.use_rope = true;
  return cfg;
}

LoadGenConfig trace_config() {
  LoadGenConfig cfg;
  cfg.seed = 4242;
  cfg.requests = 64;
  // Generated at unit rate; arrivals are rescaled to the calibrated
  // saturation multiple afterwards.
  cfg.rate_rps = 1.0;
  cfg.tenants = 1000;  // Zipf-skewed: a handful dominate, long tail appears
  // Decode-heavy mix (short prompts, long outputs): the batch is dominated
  // by decode steps, which is where per-iteration budget contention — and
  // thus TTFT preemption — lives.
  cfg.prompt_log_mean = 2.8;  // median ~16 tokens, heavy upper tail
  cfg.prompt_log_sigma = 0.5;
  cfg.prompt_min = 4;
  cfg.prompt_max = 64;
  cfg.output_log_mean = 3.4;  // median ~30 tokens
  cfg.output_log_sigma = 0.5;
  cfg.output_min = 8;
  cfg.output_max = 64;
  cfg.p_interactive = 0.3;
  cfg.p_batch = 0.3;
  return cfg;
}

struct Outcome {
  ApiServer::Report report;
  double makespan_s = 0.0;
  double p50_ttft_s = 0.0;
  double p99_ttft_s = 0.0;
  double mean_tpot_s = 0.0;
  std::int64_t goodput = 0;  // SLO-carrying requests finishing within target
  std::int64_t slo_requests = 0;
  double jain = 0.0;  // fairness of per-tenant generated tokens
  std::int64_t generated_tokens = 0;
};

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) {
    return 0.0;
  }
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

// Replays `trace` with arrivals scaled by `arrival_scale` under `policy`.
// SLO-carrying classes (interactive, standard) get `ttft_target_s`; batch
// requests ride without a deadline.
Outcome run_policy(const ModelConfig& cfg, const ModelWeights& w,
                   const std::vector<GeneratedRequest>& trace,
                   double arrival_scale, BatchPolicy policy,
                   double ttft_target_s, std::int64_t max_waiting,
                   std::int64_t max_kv_blocks) {
  ApiServerConfig sc;
  sc.engine.sched.policy = policy;
  sc.engine.sched.token_budget = 16;
  sc.engine.sched.chunk_tokens = 8;
  sc.engine.sched.max_waiting = max_waiting;
  sc.engine.sched.urgency_window_s = 0.5 * ttft_target_s;
  sc.engine.block_tokens = 16;
  sc.engine.max_kv_blocks = max_kv_blocks;
  ApiServer server(cfg, w, sc);
  for (const auto& g : trace) {
    CompletionRequest req;
    req.tenant = "t" + std::to_string(g.tenant);
    req.priority = g.priority;
    req.prompt = LoadGen::materialize_prompt(g.prompt_seed, g.prompt_len,
                                             cfg.vocab);
    req.max_tokens = g.max_tokens;
    req.ttft_slo_s =
        g.priority == Priority::kBatch ? 0.0 : ttft_target_s;
    server.submit(g.arrival_s * arrival_scale, std::move(req), nullptr);
  }

  Outcome out;
  out.report = server.run();
  out.makespan_s = out.report.metrics.makespan_s;
  out.generated_tokens = out.report.metrics.generated_tokens;

  std::vector<double> ttfts;
  std::vector<double> tpots;
  std::vector<double> per_tenant;
  std::vector<std::int64_t> tenant_tokens(
      static_cast<std::size_t>(server.num_tenants()), 0);
  double tpot_sum = 0.0;
  for (std::size_t i = 0; i < out.report.results.size(); ++i) {
    const auto& r = out.report.results[i];
    const bool has_slo = trace[i].priority != Priority::kBatch;
    if (r.rejected()) {
      if (has_slo) {
        ++out.slo_requests;  // a shed request is a missed SLO, not excluded
      }
      continue;
    }
    ttfts.push_back(r.ttft_s());
    if (r.tpot_s() > 0.0) {
      tpots.push_back(r.tpot_s());
      tpot_sum += r.tpot_s();
    }
    tenant_tokens[static_cast<std::size_t>(r.tenant)] +=
        static_cast<std::int64_t>(r.generated.size());
    if (has_slo) {
      ++out.slo_requests;
      if (r.ttft_s() <= ttft_target_s) {
        ++out.goodput;
      }
    }
  }
  out.p50_ttft_s = percentile(ttfts, 0.50);
  out.p99_ttft_s = percentile(ttfts, 0.99);
  out.mean_tpot_s =
      tpots.empty() ? 0.0 : tpot_sum / static_cast<double>(tpots.size());
  for (const auto t : tenant_tokens) {
    if (t > 0) {
      per_tenant.push_back(static_cast<double>(t));
    }
  }
  out.jain = burst::api::jain_fairness_index(per_tenant);
  return out;
}

}  // namespace

int main() {
  using burst::bench::Reporter;

  const ModelConfig cfg = bench_model();
  const ModelWeights w = ModelWeights::init(cfg, 91);
  const LoadGenConfig lg_cfg = trace_config();
  const auto trace = LoadGen(lg_cfg).generate();

  std::int64_t total_tokens = 0;
  for (const auto& g : trace) {
    total_tokens += g.prompt_len + g.max_tokens;
  }
  // KV pool sized to roughly half the fleet's peak demand: scheduling under
  // memory pressure, but nothing infeasible.
  const std::int64_t max_kv_blocks = total_tokens / 16 / 2;

  Reporter rep("serving_slo");
  rep.config("layers", cfg.layers);
  rep.config("d_model", cfg.d_model);
  rep.config("vocab", cfg.vocab);
  rep.config("requests", lg_cfg.requests);
  rep.config("tenants", lg_cfg.tenants);
  rep.config("seed", static_cast<std::int64_t>(lg_cfg.seed));
  rep.config("max_kv_blocks", max_kv_blocks);
  rep.config("token_budget", 16);

  // --- 1. capacity calibration (closed load, continuous batching) ---------
  const Outcome closed =
      run_policy(cfg, w, trace, /*arrival_scale=*/0.0,
                 BatchPolicy::kContinuous, /*ttft_target_s=*/1e9,
                 /*max_waiting=*/0, max_kv_blocks);
  const double capacity_rps =
      static_cast<double>(lg_cfg.requests) / closed.makespan_s;
  // TTFT target: a quarter of the closed-load makespan — tight enough that
  // a saturated single queue misses it for late arrivals, loose enough that
  // a well-scheduled prefill makes it comfortably.
  const double ttft_target_s = 0.25 * closed.makespan_s;
  rep.measurement("capacity_rps", capacity_rps,
                  burst::obs::RunReport::kNoPaperValue, "req/s");
  rep.measurement("ttft_target_ms", ttft_target_s * 1e3,
                  burst::obs::RunReport::kNoPaperValue, "ms");

  // Trace arrivals were generated at 1 req/s; scaling maps them to the
  // desired saturation multiple.
  const double span = trace.back().arrival_s;
  const double gen_rate = static_cast<double>(trace.size()) / span;
  const double scale_2x = gen_rate / (2.0 * capacity_rps);
  const double scale_4x = gen_rate / (4.0 * capacity_rps);

  // --- 2. 2x saturation: single queue vs SLO scheduler ---------------------
  const Outcome cont =
      run_policy(cfg, w, trace, scale_2x, BatchPolicy::kContinuous,
                 ttft_target_s, /*max_waiting=*/1024, max_kv_blocks);
  const Outcome slo =
      run_policy(cfg, w, trace, scale_2x, BatchPolicy::kSlo, ttft_target_s,
                 /*max_waiting=*/1024, max_kv_blocks);

  const auto frac = [](std::int64_t num, std::int64_t den) {
    return den > 0 ? static_cast<double>(num) / static_cast<double>(den)
                   : 0.0;
  };
  rep.measurement("continuous_goodput_frac",
                  frac(cont.goodput, cont.slo_requests));
  rep.measurement("slo_goodput_frac", frac(slo.goodput, slo.slo_requests));
  rep.measurement("continuous_p50_ttft_ms", cont.p50_ttft_s * 1e3,
                  burst::obs::RunReport::kNoPaperValue, "ms");
  rep.measurement("continuous_p99_ttft_ms", cont.p99_ttft_s * 1e3,
                  burst::obs::RunReport::kNoPaperValue, "ms");
  rep.measurement("slo_p50_ttft_ms", slo.p50_ttft_s * 1e3,
                  burst::obs::RunReport::kNoPaperValue, "ms");
  rep.measurement("slo_p99_ttft_ms", slo.p99_ttft_s * 1e3,
                  burst::obs::RunReport::kNoPaperValue, "ms");
  rep.measurement("continuous_mean_tpot_ms", cont.mean_tpot_s * 1e3,
                  burst::obs::RunReport::kNoPaperValue, "ms");
  rep.measurement("slo_mean_tpot_ms", slo.mean_tpot_s * 1e3,
                  burst::obs::RunReport::kNoPaperValue, "ms");
  rep.measurement("continuous_jain_fairness", cont.jain);
  rep.measurement("slo_jain_fairness", slo.jain);
  rep.measurement("slo_preemptions",
                  static_cast<double>(slo.report.metrics.preempted));

  // The headline (gated): goodput-under-SLO ratio at 2x saturation, and the
  // TTFT-target headroom of the SLO run's p99 (target / p99, higher =
  // better — bench_compare gates are higher-is-better only, so latency is
  // gated as headroom, never as raw milliseconds).
  const double goodput_ratio =
      frac(slo.goodput, std::max<std::int64_t>(cont.goodput, 1));
  rep.measurement("slo_goodput_ratio", goodput_ratio,
                  burst::obs::RunReport::kNoPaperValue, "x");
  rep.measurement("ttft_p99_headroom",
                  slo.p99_ttft_s > 0.0 ? ttft_target_s / slo.p99_ttft_s : 0.0,
                  burst::obs::RunReport::kNoPaperValue, "x");
  rep.check(goodput_ratio >= 1.2,
            "SLO scheduler completes >= 1.2x the requests within the TTFT "
            "target vs the single-queue baseline at 2x saturation");
  rep.check(slo.report.metrics.preempted > 0,
            "SLO scheduler exercised TTFT-deadline preemption");
  rep.check(slo.generated_tokens == cont.generated_tokens,
            "scheduling changes when tokens are made, never which tokens");

  // --- 3. 4x overload: bounded vs unbounded admission ----------------------
  const Outcome shed = run_policy(cfg, w, trace, scale_4x, BatchPolicy::kSlo,
                                  ttft_target_s, /*max_waiting=*/4,
                                  max_kv_blocks);
  const Outcome unbounded =
      run_policy(cfg, w, trace, scale_4x, BatchPolicy::kSlo, ttft_target_s,
                 /*max_waiting=*/0, max_kv_blocks);
  rep.measurement("overload_rejected",
                  static_cast<double>(shed.report.rejected));
  rep.measurement("overload_bounded_p99_ttft_ms", shed.p99_ttft_s * 1e3,
                  burst::obs::RunReport::kNoPaperValue, "ms");
  rep.measurement("overload_unbounded_p99_ttft_ms",
                  unbounded.p99_ttft_s * 1e3,
                  burst::obs::RunReport::kNoPaperValue, "ms");
  // Gated as a ratio (higher = better): how much p99 TTFT the bounded queue
  // saves over the unbounded one at 4x overload.
  const double admission_gain =
      shed.p99_ttft_s > 0.0 ? unbounded.p99_ttft_s / shed.p99_ttft_s : 0.0;
  rep.measurement("admission_p99_ttft_gain", admission_gain,
                  burst::obs::RunReport::kNoPaperValue, "x");
  rep.check(shed.report.rejected > 0,
            "4x overload with a bounded queue sheds requests");
  rep.check(shed.p99_ttft_s <= unbounded.p99_ttft_s,
            "admission control keeps p99 TTFT at or below the unbounded "
            "queue's");

  // --- 4. determinism: bit-identical replay --------------------------------
  const Outcome replay =
      run_policy(cfg, w, trace, scale_2x, BatchPolicy::kSlo, ttft_target_s,
                 /*max_waiting=*/1024, max_kv_blocks);
  rep.check(replay.makespan_s == slo.makespan_s &&
                replay.goodput == slo.goodput &&
                replay.p99_ttft_s == slo.p99_ttft_s &&
                replay.generated_tokens == slo.generated_tokens,
            "same-seed replay reproduces the SLO run bit-for-bit");

  return rep.finish();
}
