#!/usr/bin/env bash
# clang-tidy driver: runs the checked-in .clang-tidy (a pinned, explicit
# bugprone/performance/concurrency check list) over every TU in
# compile_commands.json.
#
# Degrades gracefully: when clang-tidy is not installed (the default CI
# image ships only gcc) the script prints a notice and exits 0, so
# scripts/verify.sh can invoke it unconditionally without making the gate
# depend on an optional tool. When the compilation database is missing the
# script configures BUILD_DIR itself (CMAKE_EXPORT_COMPILE_COMMANDS is ON
# in the top-level CMakeLists). When clang-tidy IS present, findings
# promoted by WarningsAsErrors fail the script.
#
# Usage: scripts/run_clang_tidy.sh [BUILD_DIR]   (default: build)
# Env:   CLANG_TIDY (override the binary), JOBS (default nproc).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
CLANG_TIDY=${CLANG_TIDY:-clang-tidy}
JOBS=${JOBS:-$(nproc)}

if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy: '$CLANG_TIDY' not found; skipping (install clang-tidy" \
       "to enable the bugprone/performance/concurrency checks)"
  exit 0
fi

db="$BUILD_DIR/compile_commands.json"
if [[ ! -f "$db" ]]; then
  echo "run_clang_tidy: $db missing; configuring $BUILD_DIR"
  cmake -B "$BUILD_DIR" -S . >/dev/null
fi
if [[ ! -f "$db" ]]; then
  echo "run_clang_tidy: configure did not produce $db" >&2
  exit 2
fi

# Our own sources only — the database also holds generated header-hygiene
# TUs and third-party benchmark harness files.
mapfile -t sources < <(python3 - "$db" <<'EOF'
import json, os, sys
seen = set()
for entry in json.load(open(sys.argv[1])):
    f = os.path.abspath(os.path.join(entry["directory"], entry["file"]))
    for top in ("src", "tests", "bench", "examples"):
        if f"/{top}/" in f and "header_hygiene" not in f and f not in seen:
            seen.add(f)
            print(f)
EOF
)

echo "run_clang_tidy: ${#sources[@]} TUs, $JOBS jobs"
fail=0
printf '%s\n' "${sources[@]}" |
  xargs -P "$JOBS" -n 8 "$CLANG_TIDY" -p "$BUILD_DIR" --quiet || fail=1

if [[ $fail -ne 0 ]]; then
  echo "run_clang_tidy: FAIL (errors above)" >&2
  exit 1
fi
echo "run_clang_tidy: clean"
