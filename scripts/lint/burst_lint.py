#!/usr/bin/env python3
"""burst-lint: repo-specific static analysis for the BurstEngine tree.

Two tiers (DESIGN.md sections 12 and 17 have the full invariant tables):

  1. Per-file rules. The engine walks the C++ sources, strips comments and
     string literals so rules only see code, and checks line-level
     invariants one translation unit at a time.
  2. Whole-program analyses. Every scanned file is tokenized once into a
     ProgramModel (resolved include graph, per-file identifier and
     public-symbol sets, per-function lock acquisitions and call sites, the
     burst::Error class hierarchy, every catch site); registered analyses
     run over the model: ``layer-dag`` (architecture layering against
     scripts/lint/layers.json, include cycles, IWYU-lite unused includes),
     ``lock-order`` (global lock-acquisition-order cycles = potential
     deadlock, cv.wait without predicate), and ``error-flow`` (catch
     clauses that silently swallow a burst::Error).

Violations are reported as human-readable diagnostics and a versioned JSON
report in the same ``burst.run_report`` shape the benches emit, so
scripts/verify.sh gates on ``self_check`` uniformly.

Usage:
    burst_lint.py [--root DIR] [--json REPORT.json] [--list-rules]
                  [--baseline FILE] [--write-baseline] [--no-analyses]
                  [PATH ...]

With no PATH arguments the default scan set is src/, tests/, bench/ and
examples/ under --root (default: the repo root containing this script).
Exit code 0 iff no violations.

Whole-program findings can additionally be grandfathered in a committed
baseline file (default: scripts/lint/baseline.json under --root, when it
exists). Baseline entries match by stable (rule, path, key) — no line
numbers — and stale entries are themselves violations.

Suppressions (all require a rule name; a reason is strongly encouraged):

    code();  // burst-lint: allow(rule-name) reason why this is fine
    // burst-lint: allow(rule-name) reason        <- covers the NEXT line
    // burst-lint: allow-begin(rule-name) reason
    ...block...
    // burst-lint: allow-end(rule-name)
    // burst-lint: allow-file(rule-name) reason   <- whole file

File tags:

    // burst-lint: hotpath   <- marks a kernel hot-path file; enables the
                                no-hotpath-alloc rule for that file.

Unknown rule names inside any burst-lint comment are themselves violations
(rule ``lint-directive``), so suppressions cannot rot silently.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field


# --------------------------------------------------------------------------
# Source model
# --------------------------------------------------------------------------

_DIRECTIVE_RE = re.compile(
    r"//\s*burst-lint:\s*"
    r"(?P<verb>allow-begin|allow-end|allow-file|allow|hotpath)"
    r"(?:\s*\(\s*(?P<rules>[A-Za-z0-9_,\s-]+)\s*\))?"
    r"(?P<reason>[^\n]*)"
)


@dataclass
class Directive:
    verb: str  # allow | allow-begin | allow-end | allow-file | hotpath
    rules: list[str]
    line: int  # 1-based
    reason: str


@dataclass
class SourceFile:
    """A parsed source file: raw lines, code-only lines, directives."""

    path: str  # path as reported (relative to root when possible)
    raw: str
    abs_path: str = ""
    lines: list[str] = field(default_factory=list)  # raw, 0-based
    code_lines: list[str] = field(default_factory=list)  # comments/strings blanked
    directives: list[Directive] = field(default_factory=list)
    hotpath: bool = False
    # rule -> set of 1-based line numbers covered by an allow
    allowed: dict = field(default_factory=dict)
    file_allowed: set = field(default_factory=set)  # rules allowed file-wide

    def is_allowed(self, rule: str, line: int) -> bool:
        if rule in self.file_allowed:
            return True
        return line in self.allowed.get(rule, ())


def _is_digit_separator(text: str, i: int) -> bool:
    """True when the ' at text[i] is a C++14 digit separator.

    A ' directly following an identifier/number character is a separator
    unless that token is one of the char-literal prefixes (u, U, L, u8) —
    the only spellings where a letter legally abuts a char literal.
    """
    j = i - 1
    if j < 0 or not (text[j].isalnum() or text[j] == "_"):
        return False
    start = j
    while start > 0 and (text[start - 1].isalnum() or text[start - 1] in "_."):
        start -= 1
    return text[start:i] not in ("u", "U", "L", "u8")


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure.

    Every non-newline character inside a comment or literal becomes a space
    so byte offsets and line numbers in the result match the original.
    """
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == "'" and _is_digit_separator(text, i):
            # C++14 digit separator (0x50414E'53u, 1'000'000): part of a
            # numeric literal, not a char-literal open.
            out.append(c)
            i += 1
        elif c == '"' or c == "'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                    continue
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def parse_file(path: str, display: str) -> SourceFile:
    with open(path, encoding="utf-8", errors="replace") as f:
        raw = f.read()
    sf = SourceFile(path=display, raw=raw)
    sf.lines = raw.split("\n")
    sf.code_lines = strip_comments_and_strings(raw).split("\n")
    for m in _DIRECTIVE_RE.finditer(raw):
        line = raw.count("\n", 0, m.start()) + 1
        rules = []
        if m.group("rules"):
            rules = [r.strip() for r in m.group("rules").split(",") if r.strip()]
        sf.directives.append(
            Directive(
                verb=m.group("verb"),
                rules=rules,
                line=line,
                reason=(m.group("reason") or "").strip(),
            )
        )
    return sf


@dataclass
class Finding:
    rule: str
    path: str
    line: int  # 1-based
    message: str
    # Stable identity for whole-program findings, independent of line
    # numbers, so the committed baseline survives unrelated edits. Empty for
    # per-file rule findings (those are fixed, never baselined).
    key: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Rule registry
# --------------------------------------------------------------------------

RULES = {}


class Rule:
    def __init__(self, name, invariant, check, applies):
        self.name = name
        self.invariant = invariant
        self.check = check
        self.applies = applies


def rule(name, invariant, applies=lambda path: True):
    """Registers ``fn(sf) -> iterable[(line, message)]`` as a lint rule."""

    def deco(fn):
        RULES[name] = Rule(name, invariant, fn, applies)
        return fn

    return deco


def _in_dir(path, *dirs):
    parts = path.replace("\\", "/").split("/")
    return any(d in parts for d in dirs)


def _code_matches(sf, pattern):
    rx = re.compile(pattern)
    for idx, line in enumerate(sf.code_lines):
        for m in rx.finditer(line):
            yield idx + 1, m


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------


@rule(
    "no-wallclock",
    "virtual-clock determinism: sim/, serve/, resilience/ schedule on "
    "sim::VirtualClock only; wall-clock reads live in src/obs/",
    applies=lambda p: (_in_dir(p, "src", "tests") and not _in_dir(p, "obs")),
)
def no_wallclock(sf):
    pat = (
        r"std\s*::\s*chrono\s*::\s*(system_clock|steady_clock|"
        r"high_resolution_clock)"
        r"|\bgettimeofday\s*\("
        r"|\bclock_gettime\s*\("
        r"|(?<![\w:])time\s*\(\s*(nullptr|NULL|0)?\s*\)"
        r"|(?<![\w:])std\s*::\s*time\s*\("
    )
    for line, m in _code_matches(sf, pat):
        yield line, (
            f"wall-clock read `{m.group(0).strip()}` outside src/obs/; "
            "use sim::VirtualClock (ctx.clock()) so replays stay bitwise "
            "deterministic"
        )


@rule(
    "no-serving-wallclock",
    "serving determinism (DESIGN.md section 13): src/api/ and src/serve/ run "
    "entirely on sim::VirtualClock; no <chrono>, std::this_thread, or sleep "
    "calls of any kind, so replays and SLO decisions stay bitwise identical",
    applies=lambda p: _in_dir(p, "src") and _in_dir(p, "api", "serve"),
)
def no_serving_wallclock(sf):
    # Stricter than no-wallclock: the serving stack may not even *name*
    # std::chrono types (durations included) — every timestamp is a double of
    # virtual seconds — and may never sleep, because blocking on real time
    # would desynchronize the simulated event stream from the virtual clock.
    pat = (
        r"#\s*include\s*<\s*chrono\s*>"
        r"|std\s*::\s*chrono\b"
        r"|std\s*::\s*this_thread\b"
        r"|(?<![\w:.])(?:sleep_for|sleep_until|usleep|nanosleep|sleep)\s*\("
    )
    seen = set()
    for line, m in _code_matches(sf, pat):
        if line in seen:
            continue  # one finding per line even when e.g. this_thread::sleep_for
        seen.add(line)
        yield line, (
            f"wall-clock construct `{m.group(0).strip()}` in serving code; "
            "src/api/ and src/serve/ schedule on sim::VirtualClock virtual "
            "seconds only (no chrono types, no sleeping)"
        )


@rule(
    "typed-errors-only",
    "typed errors everywhere (DESIGN.md sections 14 and 17): all of src/ "
    "throws burst::Error subclasses, never raw std::runtime_error or "
    "std::logic_error — supervisors, the API layer, and RunReport all "
    "dispatch on burst::ErrorCode, and an untyped throw degrades to "
    "code \"unknown\" (a 500 at the serving boundary)",
    applies=lambda p: _in_dir(p, "src"),
)
def typed_errors_only(sf):
    pat = r"\bthrow\s+std\s*::\s*(runtime_error|logic_error)\b"
    for line, m in _code_matches(sf, pat):
        yield line, (
            f"raw `throw std::{m.group(1)}`; throw a burst::Error subclass "
            "(obs/error.hpp, serve/errors.hpp, comm/errors.hpp) so the "
            "failure carries a typed ErrorCode supervisors and reports "
            "can dispatch on"
        )


@rule(
    "no-raw-rand",
    "bitwise replay: all randomness flows through tensor::Rng with an "
    "explicit recorded seed",
)
def no_raw_rand(sf):
    pat = (
        r"(?<![\w:])s?rand\s*\("
        r"|std\s*::\s*random_device"
        r"|(?<![\w:])random_device\b"
    )
    for line, m in _code_matches(sf, pat):
        yield line, (
            f"raw randomness `{m.group(0).strip()}`; use tensor::Rng with an "
            "explicit seed so training runs replay bitwise identically"
        )


_ALLOC_PAT = (
    r"(?P<new>(?<![\w:])new\b(?!\s*\()\s*[\w:<]|(?<![\w:])new\s*\()"
    r"|(?P<cfn>(?<![\w:])(?:malloc|calloc|realloc)\s*\()"
    r"|(?P<tensor>(?<![\w:])Tensor\s*(?:\(|\{(?!\s*\})))"
    r"|(?P<vec>std\s*::\s*vector\s*<)"
    r"|(?P<grow>\.\s*(?:push_back|emplace_back|resize|reserve)\s*\()"
)


def _is_vector_ref(line, open_pos):
    """True when the ``std::vector<`` starting before ``open_pos`` names a
    reference or pointer type (``const std::vector<T>&`` parameters), which
    allocates nothing. ``open_pos`` indexes just past the ``<``."""
    depth = 1
    i = open_pos
    while i < len(line) and depth:
        if line[i] == "<":
            depth += 1
        elif line[i] == ">":
            depth -= 1
        i += 1
    if depth:  # template args continue on the next line; assume allocation
        return False
    while i < len(line) and line[i].isspace():
        i += 1
    return i < len(line) and line[i] in "&*"


@rule(
    "no-hotpath-alloc",
    "workspace arena discipline (DESIGN.md section 11): kernel hot paths "
    "borrow scratch from tensor::Workspace; zero steady-state heap "
    "allocations",
    applies=lambda p: True,  # gated per-file by the hotpath tag
)
def no_hotpath_alloc(sf):
    if not sf.hotpath:
        return
    for line, m in _code_matches(sf, _ALLOC_PAT):
        if m.group("vec") and _is_vector_ref(sf.code_lines[line - 1], m.end()):
            continue  # `std::vector<T>&` / `*`: a type mention, no allocation
        what = m.group(0).strip()
        yield line, (
            f"allocation `{what}` in a hot-path file; borrow from "
            "Workspace::tls() (or move the allocation to setup and suppress "
            "with a reason)"
        )


_RECV_STMT = re.compile(
    r"^\s*"
    r"(?:[A-Za-z_]\w*(?:\[[^\]]*\])?\s*(?:\.|->|::)\s*)*"
    r"(?P<fn>recv|recv_on|recv_bundle|recv_frame)\s*\("
)


@rule(
    "no-unchecked-recv",
    "hardened-comm contract (DESIGN.md section 9): every recv-family result "
    "is consumed so checksum/sequence verification cannot be skipped",
    applies=lambda p: p.endswith((".cpp", ".hpp")),
)
def no_unchecked_recv(sf):
    # A recv-family call whose result is discarded is a statement that
    # *starts* with the call expression (possibly behind an obj./obj->/ns::
    # chain) and ends it: nothing to the left consumes the returned
    # vector/bundle, so the caller never observes what arrived. Declarations
    # and uses (assignment, return, argument position, member access on the
    # result) all place other tokens before the call or after the closing
    # paren.
    for idx, line in enumerate(sf.code_lines):
        m = _RECV_STMT.match(line)
        if not m:
            continue
        # Continuation of a binding/return/argument broken across lines
        # (`Bundle home =` on the previous line) is a consuming use.
        prev = ""
        for back in range(idx - 1, -1, -1):
            prev = sf.code_lines[back].strip()
            if prev:
                break
        if prev and (prev[-1] in "=(,<>?:+-*/%!&|" or
                     prev.endswith("return")):
            continue
        # Find the end of the call on this line (best-effort for one-liners;
        # a multi-line discard still starts the statement, handled below).
        rest = line[m.end():]
        depth = 1
        pos = 0
        for pos, ch in enumerate(rest):
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    break
        if depth != 0:
            tail = ""  # call continues on later lines; statement-start suffices
        else:
            tail = rest[pos + 1:].strip()
        if tail not in ("", ";"):
            continue  # consumed or a definition, e.g. `recv(...)[0];`, `... {`
        fn = m.group("fn")
        yield idx + 1, (
            f"result of `{fn}(...)` is discarded; bind it (or drain via a "
            "checked wrapper) so the hardened-comm checks are observed"
        )


@rule(
    "include-hygiene",
    "own header first; no transitive-only includes of workspace.hpp / "
    "metrics.hpp",
    applies=lambda p: _in_dir(p, "src") and p.endswith((".cpp", ".hpp")),
)
def include_hygiene(sf):
    path = sf.path.replace("\\", "/")
    includes = []  # (line, target)
    inc_rx = re.compile(r'^\s*#\s*include\s+["<]([^">]+)[">]')
    for idx, line in enumerate(sf.lines):
        m = inc_rx.match(line)
        if m:
            includes.append((idx + 1, m.group(1)))

    # (a) a .cpp with a sibling header includes it first.
    if path.endswith(".cpp"):
        stem = os.path.splitext(os.path.basename(path))[0]
        parent = os.path.basename(os.path.dirname(path))
        own = f"{parent}/{stem}.hpp"
        sibling = os.path.join(os.path.dirname(sf.abs_path), stem + ".hpp")
        if os.path.exists(sibling):
            if not includes:
                yield 1, f"missing include of own header \"{own}\""
            elif includes[0][1] != own:
                yield includes[0][0], (
                    f"first include must be the file's own header \"{own}\" "
                    f"(got \"{includes[0][1]}\") so the header is proven "
                    "self-contained"
                )

    # (b) direct-include discipline for arena / metrics types. Applies to
    # .cpp files only: a header that passes an opaque pointer may forward-
    # declare instead (kernels/flash_attention.hpp does exactly that).
    if not path.endswith(".cpp"):
        return
    included = {t for _, t in includes}
    code = "\n".join(sf.code_lines)
    wants = [
        (
            "tensor/workspace.hpp",
            r"\bWorkspace\b",
            "uses tensor::Workspace",
        ),
        (
            "obs/metrics.hpp",
            r"\bobs\s*::\s*(Registry|Counter|Gauge|Histogram|global_registry)\b"
            r"|\bScopedTimer\b",
            "uses obs metrics types",
        ),
    ]
    for header, pat, why in wants:
        if path.endswith(header):
            continue
        m = re.search(pat, code)
        if m and header not in included:
            line = code.count("\n", 0, m.start()) + 1
            yield line, (
                f"{why} but does not include \"{header}\" directly "
                "(transitive include only)"
            )


def _is_sim_backend_file(path):
    p = path.replace("\\", "/")
    return p.endswith(("comm/sim_transport.hpp", "comm/sim_transport.cpp"))


@rule(
    "no-direct-cluster",
    "transport abstraction (DESIGN.md section 15): outside src/sim/ and the "
    "simulator transport backend, src/ code reaches the device only through "
    "comm::Transport; direct sim::Cluster / sim::DeviceContext use couples "
    "protocol or model code to one backend",
    applies=lambda p: (
        _in_dir(p, "src") and not _in_dir(p, "sim")
        and not _is_sim_backend_file(p)
    ),
)
def no_direct_cluster(sf):
    # Includes are detected from raw lines (the string stripper blanks the
    # path), code references from the stripped lines.
    inc_rx = re.compile(r'^\s*#\s*include\s+"sim/cluster\.hpp"')
    for idx, line in enumerate(sf.lines):
        if inc_rx.match(line):
            yield idx + 1, (
                'direct include of "sim/cluster.hpp"; construct a '
                "comm::SimTransport at the cluster-hosting boundary and pass "
                "comm::Transport& down (or suppress with a reason at a "
                "legitimate hosting site)"
            )
    pat = r"\bsim\s*::\s*(Cluster|DeviceContext)\b|(?<![\w:])DeviceContext\b"
    seen = set()
    for line, m in _code_matches(sf, pat):
        if line in seen:
            continue  # one finding per line, like no-serving-wallclock
        seen.add(line)
        yield line, (
            f"direct simulator type `{m.group(0).strip()}`; depend on "
            "comm::Transport instead so the code also runs on the socket "
            "backend"
        )


_FLOAT_LIT = re.compile(r"^[-+]?(\d+\.\d*|\.\d+)(e[-+]?\d+)?f?$|^[-+]?\d+\.?\d*f$")


def _split_top_level_args(s):
    """Splits a macro argument list at top-level commas. Returns None when
    the parenthesization is unbalanced (multi-line call)."""
    args = []
    depth = 0
    cur = []
    for ch in s:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            if depth == 0:
                args.append("".join(cur).strip())
                return args
            depth -= 1
        elif ch == "," and depth == 0:
            args.append("".join(cur).strip())
            cur = []
            continue
        cur.append(ch)
    return None


@rule(
    "no-naked-float-eq",
    "numerical honesty in tests: exact float comparison must be a deliberate "
    "bitwise-determinism assertion (suppressed with a reason) or use "
    "EXPECT_NEAR / EXPECT_FLOAT_EQ",
    applies=lambda p: _in_dir(p, "tests"),
)
def no_naked_float_eq(sf):
    rx = re.compile(r"\b(EXPECT_EQ|ASSERT_EQ|EXPECT_NE|ASSERT_NE)\s*\(")
    for idx, line in enumerate(sf.code_lines):
        for m in rx.finditer(line):
            args = _split_top_level_args(line[m.end() :])
            if not args or len(args) < 2:
                continue
            if any(_FLOAT_LIT.match(a) for a in args[:2]):
                yield idx + 1, (
                    f"{m.group(1)} against a float literal; use EXPECT_NEAR/"
                    "EXPECT_FLOAT_EQ, or suppress with a reason when asserting "
                    "bitwise determinism"
                )


@rule(
    "quantized-hotpath",
    "quantized-storage encapsulation (DESIGN.md section 16): only src/tensor/ "
    "may touch the quantized block layout — the per-block codecs "
    "(quantize_block_q*/dequantize_q*), the panel-layout helpers "
    "(b_chunk_bytes/b_panel_stride_bytes/pack_b_dt), and PackedB's raw "
    "cache_block() stream. Everything else consumes quantized weights "
    "through PackedB / gemm_packed* / gemm_dt, so the block format can "
    "change without a treewide audit",
    applies=lambda p: _in_dir(p, "src") and not _in_dir(p, "tensor"),
)
def quantized_hotpath(sf):
    pat = (
        r"(?<![\w:])(?:quantize_block_q8_0|quantize_block_q4_0"
        r"|dequantize_q8_0|dequantize_q4_0"
        r"|b_chunk_bytes|b_panel_stride_bytes|b_panel_bytes|pack_b_dt)\s*\("
        r"|[.\->]\s*cache_block\s*\("
    )
    for line, m in _code_matches(sf, pat):
        yield line, (
            f"quantized block-layout access `{m.group(0).strip()}` outside "
            "src/tensor/; go through PackedB / gemm_packed* / gemm_dt "
            "(tensor/gemm.hpp) instead of reinterpreting the packed stream"
        )


# ==========================================================================
# Tier 2: whole-program analyses over a ProgramModel
# ==========================================================================
#
# The per-file rules above see one translation unit at a time. The
# ProgramModel pass tokenizes every scanned file once and builds the global
# structures the cross-file analyses need: the resolved include graph, the
# identifier sets per file, the public-symbol ("provides") sets per header,
# the function table with per-function lock acquisitions and call sites, the
# burst::Error class hierarchy, and every catch site. Registered analyses
# (ANALYSES) then run over the model and emit Findings through the same
# suppression machinery as the per-file rules, plus an optional committed
# baseline (scripts/lint/baseline.json) for grandfathered findings.

_CPP_KEYWORDS = frozenset(
    """alignas alignof and and_eq asm auto bitand bitor bool break case catch
    char char8_t char16_t char32_t class co_await co_return co_yield compl
    concept const const_cast consteval constexpr constinit continue decltype
    default delete do double dynamic_cast else enum explicit export extern
    false final float for friend goto if inline int long mutable namespace
    new noexcept not not_eq nullptr operator or or_eq override private
    protected public register reinterpret_cast requires return short signed
    sizeof static static_assert static_cast struct switch template this
    thread_local throw true try typedef typeid typename union unsigned using
    virtual void volatile wchar_t while""".split()
)

_IDENT_RE = re.compile(r"[A-Za-z_]\w*")
_CALLISH_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")


def _line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def _match_balanced(text, open_pos, pairs="()"):
    """Returns the index just past the delimiter matching text[open_pos]
    (which must be pairs[0]), or -1 when unbalanced."""
    o, c = pairs[0], pairs[1]
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == o:
            depth += 1
        elif text[i] == c:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


@dataclass
class IncludeEdge:
    line: int
    target: str  # as written inside the quotes/brackets
    resolved: str  # display path of the included file, or "" when external


@dataclass
class LockAcq:
    lock: str  # normalized lock id
    line: int
    depth: int  # brace depth inside the body at the acquisition
    var: str  # guard variable name ("" for direct .lock())


@dataclass
class CallSite:
    callee: str  # last-component name
    line: int
    held: tuple  # lock ids held at the call


@dataclass
class Function:
    name: str  # as written, possibly qualified (Cluster::take)
    short: str  # last component
    path: str
    line: int
    acquisitions: list = field(default_factory=list)  # [LockAcq]
    lock_edges: list = field(default_factory=list)  # [(l1, l2, line)]
    calls: list = field(default_factory=list)  # [CallSite]
    locks: set = field(default_factory=set)  # ids acquired directly


@dataclass
class CatchSite:
    path: str
    line: int
    type_name: str  # "..." or last component of the caught type
    var: str  # bound variable name, "" when anonymous
    body: str  # stripped body text (between the braces)


# -- function extraction ----------------------------------------------------

_FUNC_HEAD_RE = re.compile(
    r"(~?[A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*)\s*\("
)
_QUALIFIERS = frozenset(["const", "noexcept", "override", "final", "mutable"])


def _skip_initializer_list(text, i):
    """Consumes a constructor member-initializer list starting at the ':' at
    text[i]. Returns the index of the body '{', or -1 when this is not an
    initializer list (e.g. a ternary or a label)."""
    i += 1
    n = len(text)
    while True:
        while i < n and text[i].isspace():
            i += 1
        m = _IDENT_RE.match(text, i)
        if not m:
            return -1
        i = m.end()
        while i < n and text[i].isspace():
            i += 1
        # Optional template args on a base-class initializer.
        if i < n and text[i] == "<":
            close = text.find(">", i)
            if close < 0:
                return -1
            i = close + 1
            while i < n and text[i].isspace():
                i += 1
        if i >= n or text[i] not in "({":
            return -1
        end = _match_balanced(text, i, "()" if text[i] == "(" else "{}")
        if end < 0:
            return -1
        i = end
        while i < n and text[i].isspace():
            i += 1
        if i < n and text[i] == ",":
            i += 1
            continue
        if i < n and text[i] == "{":
            return i
        return -1


def _find_body(text, params_end):
    """Given the index just past a parameter list's ')', returns the index of
    the function body's '{' or -1 when the construct is not a definition."""
    i = params_end
    n = len(text)
    while i < n:
        while i < n and text[i].isspace():
            i += 1
        if i >= n:
            return -1
        c = text[i]
        if c == "{":
            return i
        if c == ":":
            return _skip_initializer_list(text, i)
        if c == "-" and i + 1 < n and text[i + 1] == ">":
            # Trailing return type: consume tokens until '{' or ';'.
            j = i + 2
            while j < n and text[j] not in "{;":
                j += 1
            return j if j < n and text[j] == "{" else -1
        m = _IDENT_RE.match(text, i)
        if m and m.group(0) in _QUALIFIERS:
            i = m.end()
            # noexcept(...) / final(...) arguments
            while i < n and text[i].isspace():
                i += 1
            if i < n and text[i] == "(":
                end = _match_balanced(text, i)
                if end < 0:
                    return -1
                i = end
            continue
        return -1
    return -1


def extract_functions(sf):
    """Yields (name, body_start, body_end, line) for every function
    definition in sf's stripped code. body_start/end delimit the text inside
    the outer braces."""
    text = "\n".join(sf.code_lines)
    pos = 0
    n = len(text)
    while pos < n:
        m = _FUNC_HEAD_RE.search(text, pos)
        if not m:
            return
        name = re.sub(r"\s+", "", m.group(1))
        first = name.split("::")[0].lstrip("~")
        if first in _CPP_KEYWORDS:
            pos = m.end()
            continue
        params_end = _match_balanced(text, m.end() - 1)
        if params_end < 0:
            pos = m.end()
            continue
        body_open = _find_body(text, params_end)
        if body_open < 0:
            pos = m.end()
            continue
        body_close = _match_balanced(text, body_open, "{}")
        if body_close < 0:
            pos = m.end()
            continue
        yield name, body_open + 1, body_close - 1, _line_of(text, m.start())
        pos = body_close


# -- lock extraction --------------------------------------------------------

_ACQ_PREFIX_RE = re.compile(
    r"std\s*::\s*(?P<kind>lock_guard|unique_lock|scoped_lock)\b"
    r"(?:\s*<[^<>;]*>)?\s+(?P<var>[A-Za-z_]\w*)\s*(?P<open>[({])"
)
_MUTEX_DECL_RE = re.compile(
    r"std\s*::\s*(?:recursive_|timed_|shared_)?mutex\s*&?\s+"
    r"([A-Za-z_]\w*)\s*[;({=]"
)
_CV_DECL_RE = re.compile(
    r"std\s*::\s*condition_variable(?:_any)?\s+([A-Za-z_]\w*)\s*[;{]"
)
# Only class/struct scopes own member mutexes; a namespace-level or local
# mutex stays file-qualified so same-named locals in two files never merge.
_SCOPE_OPEN_RE = re.compile(
    r"\b(?:class|struct)\s+([A-Za-z_]\w*)[^;{()]*\{"
)


def _lock_id_of(expr, owners, path):
    """Normalizes a mutex expression to a stable lock id. The last
    identifier names the mutex; when exactly one class in the model declares
    a member of that name the id is Class::name, otherwise name@file."""
    idents = [t for t in _IDENT_RE.findall(expr)
              if t not in ("std", "adopt_lock", "defer_lock", "try_to_lock")]
    if not idents:
        return ""
    name = idents[-1]
    owner = owners.get(name)
    if owner and len(owner) == 1:
        return f"{next(iter(owner))}::{name}"
    return f"{name}@{path}"


def _scan_mutex_owners(sources):
    """Maps mutex/cv member names to the set of classes declaring them, by
    walking each file's brace structure with a named-scope stack."""
    owners = {}
    cv_names = set()
    for sf in sources:
        text = "\n".join(sf.code_lines)
        scopes = []  # (name_or_None, depth_at_open)
        depth = 0
        events = []
        for m in _SCOPE_OPEN_RE.finditer(text):
            events.append((m.end() - 1, "scope", m.group(1)))
        for m in _MUTEX_DECL_RE.finditer(text):
            events.append((m.start(), "mutex", m.group(1)))
        for m in _CV_DECL_RE.finditer(text):
            events.append((m.start(), "cv", m.group(1)))
            cv_names.add(m.group(1))
        for i, ch in enumerate(text):
            if ch in "{}":
                events.append((i, ch, None))
        events.sort(key=lambda e: e[0])
        pending_scope = None
        for _, kind, val in events:
            if kind == "scope":
                pending_scope = val
            elif kind == "{":
                scopes.append((pending_scope, depth))
                pending_scope = None
                depth += 1
            elif kind == "}":
                depth -= 1
                while scopes and scopes[-1][1] >= depth:
                    scopes.pop()
            elif kind in ("mutex", "cv"):
                cls = next(
                    (s for s, _ in reversed(scopes) if s is not None), None)
                if cls is not None:
                    owners.setdefault(val, set()).add(cls)
    return owners, cv_names


def _scan_function_locks(fn, body, body_line0, owners, path):
    """Fills fn.acquisitions / lock_edges / calls / locks from one body.

    Brace depth is tracked so a guard dies when its enclosing block closes;
    `held` is therefore a faithful lockset at every acquisition and call
    site, and `lock_edges` records only genuine nesting (lock A held while
    acquiring lock B), not sequential scopes.
    """
    events = []  # (pos, kind, payload)
    for i, ch in enumerate(body):
        if ch in "{}":
            events.append((i, ch, None))
    consumed_until = 0
    for m in _ACQ_PREFIX_RE.finditer(body):
        end = _match_balanced(
            body, m.end() - 1, "()" if m.group("open") == "(" else "{}")
        if end < 0:
            continue
        args = _split_top_level_args(body[m.end():end])
        if args is None:
            args = [body[m.end():end - 1]]
        locks = []
        for a in args:
            lid = _lock_id_of(a, owners, path)
            if lid:
                locks.append(lid)
        if locks:
            events.append((m.start(), "acq", (locks, m.group("var"))))
    for m in re.finditer(r"\b([A-Za-z_]\w*)\s*\.\s*(lock|unlock)\s*\(", body):
        events.append((m.start(), m.group(2), m.group(1)))
    for m in _CALLISH_RE.finditer(body):
        name = m.group(1)
        if name in _CPP_KEYWORDS or name in ("lock", "unlock"):
            continue
        events.append((m.start(), "call", name))
    events.sort(key=lambda e: (e[0], e[1] != "}"))

    depth = 0
    held = []  # [LockAcq]
    var_lock = {}  # guard var -> lock id (for .lock()/.unlock())
    for pos, kind, payload in events:
        if kind == "{":
            depth += 1
        elif kind == "}":
            depth -= 1
            held = [a for a in held if a.depth <= depth]
        elif kind == "acq":
            locks, var = payload
            line = body_line0 + _line_of(body, pos) - 1
            for lid in locks:
                for prev in held:
                    if prev.lock != lid:
                        fn.lock_edges.append((prev.lock, lid, line))
                acq = LockAcq(lock=lid, line=line, depth=depth, var=var)
                held.append(acq)
                fn.acquisitions.append(acq)
                fn.locks.add(lid)
                var_lock[var] = lid
        elif kind == "unlock":
            lid = var_lock.get(payload)
            if lid is not None:
                held = [a for a in held if not (a.lock == lid
                                                and a.var == payload)]
        elif kind == "lock":
            lid = var_lock.get(payload)
            if lid is not None and all(a.lock != lid for a in held):
                line = body_line0 + _line_of(body, pos) - 1
                for prev in held:
                    fn.lock_edges.append((prev.lock, lid, line))
                acq = LockAcq(lock=lid, line=line, depth=depth, var=payload)
                held.append(acq)
                fn.acquisitions.append(acq)
                fn.locks.add(lid)
        elif kind == "call":
            if held:
                line = body_line0 + _line_of(body, pos) - 1
                fn.calls.append(CallSite(
                    callee=payload, line=line,
                    held=tuple(a.lock for a in held)))


# -- catch-site extraction --------------------------------------------------

_CATCH_RE = re.compile(r"\bcatch\s*\(")


def _extract_catches(sf):
    text = "\n".join(sf.code_lines)
    out = []
    for m in _CATCH_RE.finditer(text):
        clause_end = _match_balanced(text, m.end() - 1)
        if clause_end < 0:
            continue
        clause = text[m.end():clause_end - 1].strip()
        i = clause_end
        while i < len(text) and text[i].isspace():
            i += 1
        if i >= len(text) or text[i] != "{":
            continue
        body_end = _match_balanced(text, i, "{}")
        if body_end < 0:
            continue
        body = text[i + 1:body_end - 1]
        if clause == "...":
            type_name, var = "...", ""
        else:
            idents = [t for t in _IDENT_RE.findall(clause)
                      if t not in _CPP_KEYWORDS and t != "std"]
            if not idents:
                continue
            # `const ns::Type& name` -> type is the last ident before any
            # declarator name; a trailing ident after the type chain is the
            # binding. Heuristic: '&'/'*' splits type from binding.
            amp = max(clause.rfind("&"), clause.rfind("*"))
            if amp >= 0:
                type_part = clause[:amp]
                var_part = clause[amp + 1:]
            else:
                type_part, var_part = clause, ""
            tids = [t for t in _IDENT_RE.findall(type_part)
                    if t not in _CPP_KEYWORDS and t != "std"]
            vids = _IDENT_RE.findall(var_part)
            if not tids:
                tids = idents
            type_name = tids[-1]
            var = vids[0] if vids else ""
        out.append(CatchSite(path=sf.path, line=_line_of(text, m.start()),
                             type_name=type_name, var=var, body=body))
    return out


# -- the model --------------------------------------------------------------

# Directories whose code may hold OS-thread locks; the lockset analysis
# extracts every function in these.
LOCK_SCOPE_DIRS = ("parallel", "comm", "sim", "serve", "resilience")

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

# Names constants follow the k-prefix convention; used for header provides.
_KCONST_RE = re.compile(r"\bk[A-Z]\w*\b")
_PROVIDE_RES = (
    re.compile(r"\b(?:class|struct|union|concept)\s+([A-Za-z_]\w*)"),
    re.compile(r"\benum\s+(?:class\s+|struct\s+)?([A-Za-z_]\w*)"),
    re.compile(r"\busing\s+([A-Za-z_]\w*)\s*="),
    re.compile(r"^\s*#\s*define\s+([A-Za-z_]\w*)", re.M),
)


def _top_dir(path):
    parts = path.replace("\\", "/").split("/")
    if len(parts) >= 2 and parts[0] == "src":
        return parts[1]
    return ""


class ProgramModel:
    """Whole-program view: include graph, symbols, locks, errors, catches."""

    def __init__(self, root, sources):
        self.root = root
        self.files = {sf.path: sf for sf in sources}
        self.includes = {}  # path -> [IncludeEdge]
        self.idents = {}  # path -> set of identifier tokens in code
        self.provides = {}  # path -> public-symbol set (headers)
        self.functions = []  # [Function]
        self.by_short = {}  # short name -> [Function]
        self.lock_edges = {}  # (l1, l2) -> [(path, line, via)]
        self.cv_names = set()
        self.mutex_owners = {}
        self.error_family = set()
        self.catches = []  # [CatchSite] (src/ files)
        self._build(sources)

    # include resolution: repo includes are quoted src-rooted paths.
    def _resolve(self, includer, target):
        cand = "src/" + target
        if cand in self.files:
            return cand
        rel = os.path.normpath(
            os.path.join(os.path.dirname(includer), target))
        rel = rel.replace("\\", "/")
        return rel if rel in self.files else ""

    def _build(self, sources):
        for sf in sources:
            code = "\n".join(sf.code_lines)
            self.idents[sf.path] = set(_IDENT_RE.findall(code))
            edges = []
            for idx, line in enumerate(sf.lines):
                m = _INCLUDE_RE.match(line)
                if m:
                    edges.append(IncludeEdge(
                        line=idx + 1, target=m.group(1),
                        resolved=self._resolve(sf.path, m.group(1))))
            self.includes[sf.path] = edges
            provides = set()
            for rx in _PROVIDE_RES:
                provides.update(rx.findall(code))
            provides.update(
                m.group(1) for m in _CALLISH_RE.finditer(code)
                if m.group(1) not in _CPP_KEYWORDS)
            provides.update(_KCONST_RE.findall(code))
            self.provides[sf.path] = provides - _CPP_KEYWORDS

        # Error hierarchy: transitive closure of classes deriving from Error.
        derived = {}  # base -> {derived}
        base_rx = re.compile(
            r"\b(?:class|struct)\s+([A-Za-z_]\w*)(?:\s+final)?\s*:"
            r"([^{;]*)\{")
        for sf in sources:
            code = "\n".join(sf.code_lines)
            for m in base_rx.finditer(code):
                name, bases = m.group(1), m.group(2)
                for b in _IDENT_RE.findall(bases):
                    if b in ("public", "private", "protected", "virtual",
                             "std"):
                        continue
                    derived.setdefault(b, set()).add(name)
        family = {"Error"}
        frontier = ["Error"]
        while frontier:
            for d in derived.get(frontier.pop(), ()):
                if d not in family:
                    family.add(d)
                    frontier.append(d)
        self.error_family = family

        # Locks: scan member declarations first, then every function in the
        # lock-scope dirs.
        scoped = [sf for sf in sources
                  if _top_dir(sf.path) in LOCK_SCOPE_DIRS]
        self.mutex_owners, self.cv_names = _scan_mutex_owners(scoped)
        for sf in scoped:
            text = "\n".join(sf.code_lines)
            for name, b0, b1, line in extract_functions(sf):
                fn = Function(name=name, short=name.split("::")[-1],
                              path=sf.path, line=line)
                body = text[b0:b1]
                _scan_function_locks(fn, body, _line_of(text, b0),
                                     self.mutex_owners, sf.path)
                self.functions.append(fn)
                self.by_short.setdefault(fn.short, []).append(fn)

        # Interprocedural lock closure: locks a function may acquire,
        # directly or through calls into other analyzed functions.
        closure = {id(f): set(f.locks) for f in self.functions}
        changed = True
        while changed:
            changed = False
            for f in self.functions:
                mine = closure[id(f)]
                before = len(mine)
                for c in f.calls:
                    for g in self.by_short.get(c.callee, ()):
                        if g is not f:
                            mine |= closure[id(g)]
                if len(mine) != before:
                    changed = True
        self.lock_closure = closure

        # Global acquisition-order graph: intraprocedural nesting edges plus
        # edges through calls made while holding a lock.
        for f in self.functions:
            for l1, l2, line in f.lock_edges:
                self.lock_edges.setdefault((l1, l2), []).append(
                    (f.path, line, f.name))
            for c in f.calls:
                callee_locks = set()
                for g in self.by_short.get(c.callee, ()):
                    callee_locks |= closure[id(g)]
                for h in c.held:
                    for l2 in callee_locks:
                        if l2 != h:
                            self.lock_edges.setdefault((h, l2), []).append(
                                (f.path, c.line,
                                 f"{f.name} -> {c.callee}()"))

        # Catch sites (src/ only; tests assert on exceptions freely).
        for sf in sources:
            if sf.path.replace("\\", "/").startswith("src/"):
                self.catches.extend(_extract_catches(sf))

    def function(self, qualified):
        for f in self.functions:
            if f.name == qualified:
                return f
        return None


def _strongly_connected(nodes, edges_of):
    """Iterative Tarjan; returns the list of SCCs (each a list of nodes)."""
    index = {}
    low = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]
    for start in nodes:
        if start in index:
            continue
        work = [(start, iter(edges_of(start)))]
        index[start] = low[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(edges_of(nxt))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    top = stack.pop()
                    on_stack.discard(top)
                    scc.append(top)
                    if top == node:
                        break
                sccs.append(scc)
    return sccs


# -- analysis registry ------------------------------------------------------

ANALYSES = {}


class Analysis:
    def __init__(self, name, invariant, check):
        self.name = name
        self.invariant = invariant
        self.check = check


def analysis(name, invariant):
    """Registers ``fn(model) -> iterable[Finding]`` as a whole-program
    analysis. Finding.key must be stable across line-number drift so the
    baseline file can grandfather it."""

    def deco(fn):
        ANALYSES[name] = Analysis(name, invariant, fn)
        return fn

    return deco


def load_layer_manifest(root):
    """Loads scripts/lint/layers.json under root. Returns the list of layers
    (each a list of src/ top-level dirs) or None when absent — the layer-DAG
    analysis is manifest-driven and silently inactive without one (fixture
    roots opt in by committing their own manifest)."""
    path = os.path.join(root, "scripts", "lint", "layers.json")
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    return data["layers"]


@analysis(
    "layer-dag",
    "architecture layering (DESIGN.md section 17): the committed layer "
    "manifest (scripts/lint/layers.json) is the allowed dependency order of "
    "src/ subsystems; the real include graph may not include upward or "
    "laterally across layers, may not form cycles, and every repo include "
    "must be used (IWYU-lite: the includer references at least one symbol "
    "the header provides)",
)
def layer_dag(model):
    layers = load_layer_manifest(model.root)
    if layers is None:
        return
    layer_of = {}
    for i, layer in enumerate(layers):
        for d in layer:
            layer_of[d] = i

    src_files = sorted(p for p in model.files
                       if p.replace("\\", "/").startswith("src/"))

    # (a) every src/ directory with sources is a manifest citizen.
    seen_dirs = set()
    for path in src_files:
        d = _top_dir(path)
        if d and d not in layer_of and d not in seen_dirs:
            seen_dirs.add(d)
            yield Finding(
                "layer-dag", path, 1,
                f"src/{d}/ is not listed in scripts/lint/layers.json; add "
                "it to the layer manifest so its dependencies are checked",
                key=f"unlisted:{d}")

    # (b) includes must point strictly down the layer stack.
    for path in src_files:
        src_dir = _top_dir(path)
        if src_dir not in layer_of:
            continue
        for e in model.includes[path]:
            if not e.resolved or not e.resolved.startswith("src/"):
                continue
            dst_dir = _top_dir(e.resolved)
            if dst_dir == src_dir or dst_dir not in layer_of:
                continue
            if layer_of[dst_dir] >= layer_of[src_dir]:
                how = ("upward" if layer_of[dst_dir] > layer_of[src_dir]
                       else "lateral")
                yield Finding(
                    "layer-dag", path, e.line,
                    f"{how} include: src/{src_dir}/ (layer "
                    f"{layer_of[src_dir]}) may not include "
                    f"\"{e.target}\" from src/{dst_dir}/ (layer "
                    f"{layer_of[dst_dir]}); the manifest orders "
                    f"{dst_dir} at or above {src_dir}",
                    key=f"{how}:{path}->{dst_dir}")

    # (c) no include cycles anywhere in src/.
    def edges_of(p):
        return sorted({e.resolved for e in model.includes.get(p, ())
                       if e.resolved and e.resolved.startswith("src/")})

    for scc in _strongly_connected(src_files, edges_of):
        self_loop = len(scc) == 1 and scc[0] in edges_of(scc[0])
        if len(scc) < 2 and not self_loop:
            continue
        members = sorted(scc)
        anchor = members[0]
        anchor_line = 1
        for e in model.includes[anchor]:
            if e.resolved in scc:
                anchor_line = e.line
                break
        yield Finding(
            "layer-dag", anchor, anchor_line,
            "include cycle: " + " -> ".join(members + [members[0]]) +
            "; break the cycle with a forward declaration or by moving the "
            "shared piece down a layer",
            key="cycle:" + "|".join(members))

    # (d) IWYU-lite: a repo include whose provided symbols the includer
    # never references is a phantom dependency that widens rebuilds and
    # hides the real layering.
    for path in src_files:
        stem = os.path.splitext(os.path.basename(path))[0]
        own = os.path.dirname(path).replace("\\", "/") + f"/{stem}.hpp"
        used = model.idents[path]
        for e in model.includes[path]:
            if not e.resolved or not e.resolved.startswith("src/"):
                continue
            if path.endswith(".cpp") and e.resolved == own:
                continue  # own header: always included, proves completeness
            provided = model.provides.get(e.resolved, set())
            if provided and not (provided & used):
                yield Finding(
                    "layer-dag", path, e.line,
                    f"unused include \"{e.target}\": nothing this file "
                    "references is provided by that header; drop it (or "
                    "suppress with a reason when re-exporting "
                    "deliberately)",
                    key=f"unused:{path}->{e.resolved}")


@analysis(
    "lock-order",
    "deadlock freedom (DESIGN.md section 17): across src/parallel, "
    "src/comm, src/sim, src/serve, and src/resilience, the global "
    "lock-acquisition-order graph (lock A held while acquiring lock B, "
    "directly or through calls) must be acyclic, and every "
    "condition_variable::wait must pass a predicate so spurious wakeups "
    "cannot break the invariant the wait guards",
)
def lock_order(model):
    nodes = sorted({l for pair in model.lock_edges for l in pair})
    adj = {}
    for (a, b) in model.lock_edges:
        adj.setdefault(a, set()).add(b)

    def edges_of(n):
        return sorted(adj.get(n, ()))

    for scc in _strongly_connected(nodes, edges_of):
        self_loop = len(scc) == 1 and scc[0] in adj.get(scc[0], ())
        if len(scc) < 2 and not self_loop:
            continue
        members = sorted(scc)
        witnesses = []
        for (a, b), sites in sorted(model.lock_edges.items()):
            if a in scc and b in scc:
                p, line, via = sites[0]
                witnesses.append(f"{a} -> {b} at {p}:{line} ({via})")
        p, line, _ = next(
            sites[0] for (a, b), sites in sorted(model.lock_edges.items())
            if a in scc and b in scc)
        yield Finding(
            "lock-order", p, line,
            "potential deadlock: lock-order cycle between "
            + ", ".join(members) + "; " + "; ".join(witnesses)
            + " — pick one global order (or suppress with a reason if the "
            "locks can provably never contend)",
            key="lock-cycle:" + "|".join(members))

    # cv.wait without a predicate: scan lock-scope files for waits on a
    # declared condition_variable whose argument list has no predicate.
    wait_rx = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*wait\s*\(")
    for path in sorted(model.files):
        if _top_dir(path) not in LOCK_SCOPE_DIRS:
            continue
        sf = model.files[path]
        text = "\n".join(sf.code_lines)
        for m in wait_rx.finditer(text):
            if m.group(1) not in model.cv_names:
                continue
            args = _split_top_level_args(text[m.end():])
            if args is not None and len(args) == 1:
                yield Finding(
                    "lock-order", path, _line_of(text, m.start()),
                    f"{m.group(1)}.wait(lock) without a predicate: a "
                    "spurious wakeup returns with the condition false; "
                    "pass the predicate lambda so the wait re-checks it",
                    key=f"cv-wait:{path}:{m.group(1)}")


@analysis(
    "error-flow",
    "typed-error flow (DESIGN.md section 17): a catch clause that can bind "
    "a burst::Error (a subclass, std::exception, or ...) may not silently "
    "swallow it — the handler must rethrow, convert to a typed error, or "
    "visibly consume the exception; an empty handler erases the failure "
    "from every supervisor and report downstream",
)
def error_flow(model):
    swallowable = model.error_family | {
        "exception", "runtime_error", "logic_error", "..."}
    for c in model.catches:
        if c.type_name not in swallowable:
            continue
        body = c.body
        if re.search(r"\bthrow\b", body):
            continue  # rethrow or typed conversion
        if c.var and re.search(rf"\b{re.escape(c.var)}\b", body):
            continue  # the handler reads the error: consumed visibly
        if _CALLISH_RE.search(body):
            continue  # delegates somewhere (logging, conversion helper)
        if re.search(r"[^=!<>+\-*/&|^]=[^=]", body):
            continue  # records the failure in state: classification, not loss
        yield Finding(
            "error-flow", c.path, c.line,
            f"catch ({c.type_name}) swallows the error: the body neither "
            "rethrows, converts to a typed burst::Error, nor consumes the "
            "exception; handle it or suppress with a reason explaining "
            "why dropping is correct",
            key=f"swallow:{c.path}:{c.type_name}")


# -- baseline ---------------------------------------------------------------


def default_baseline_path(root):
    return os.path.join(root, "scripts", "lint", "baseline.json")


def load_baseline(path):
    """Returns the set of (rule, path, key) triples grandfathered in the
    committed baseline, or an empty set when the file does not exist."""
    if not path or not os.path.exists(path):
        return set()
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    return {(e["rule"], e["path"], e["key"]) for e in data.get("findings", ())}


def write_baseline_file(path, findings):
    entries = sorted(
        {(f.rule, f.path, f.key) for f in findings if f.key})
    data = {
        "schema": "burst.lint_baseline",
        "version": 1,
        "comment": (
            "Grandfathered whole-program findings. Entries are matched by "
            "(rule, path, key) so line drift does not invalidate them; "
            "regenerate with burst_lint.py --write-baseline. Stale entries "
            "(matching nothing) are themselves lint violations."),
        "findings": [
            {"rule": r, "path": p, "key": k} for r, p, k in entries],
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(data, f, indent=2)
        f.write("\n")


def run_analyses(model, baseline):
    """Runs every registered analysis, applying inline suppressions and the
    baseline. Returns (reported, baselined_count, stale_entries)."""
    reported = []
    matched = set()
    baselined = 0
    for a in ANALYSES.values():
        for f in a.check(model) or ():
            sf = model.files.get(f.path)
            if sf is not None and sf.is_allowed(a.name, f.line):
                continue
            triple = (f.rule, f.path, f.key)
            if f.key and triple in baseline:
                matched.add(triple)
                baselined += 1
                continue
            reported.append(f)
    stale = sorted(baseline - matched)
    return reported, baselined, stale


# --------------------------------------------------------------------------
# Directive resolution (needs RULES populated, hence defined last)
# --------------------------------------------------------------------------


def resolve_directives(sf):
    """Fills sf.allowed / sf.file_allowed / sf.hotpath.

    Returns findings for malformed directives (unknown rule names, unmatched
    allow-begin/allow-end) under the synthetic rule name ``lint-directive``.
    """
    bad = []
    open_blocks = {}  # rule -> start line
    for d in sf.directives:
        if d.verb == "hotpath":
            sf.hotpath = True
            continue
        if not d.rules:
            bad.append(
                Finding(
                    "lint-directive",
                    sf.path,
                    d.line,
                    f"burst-lint: {d.verb} needs a (rule-name) argument",
                )
            )
            continue
        for r in d.rules:
            if r not in RULES and r not in ANALYSES:
                known = sorted(RULES) + sorted(ANALYSES)
                bad.append(
                    Finding(
                        "lint-directive",
                        sf.path,
                        d.line,
                        f"unknown rule '{r}' in burst-lint: {d.verb} "
                        f"(known: {', '.join(known)})",
                    )
                )
                continue
            lines = sf.allowed.setdefault(r, set())
            if d.verb == "allow":
                lines.add(d.line)
                # Directive-on-its-own-line form: cover the next *code* line,
                # skipping the rest of a multi-line justification comment.
                nxt = d.line + 1
                while (nxt <= len(sf.lines)
                       and sf.lines[nxt - 1].strip()
                       and not sf.code_lines[nxt - 1].strip()):
                    nxt += 1
                lines.add(nxt)
            elif d.verb == "allow-file":
                sf.file_allowed.add(r)
            elif d.verb == "allow-begin":
                open_blocks[r] = d.line
            elif d.verb == "allow-end":
                start = open_blocks.pop(r, None)
                if start is None:
                    bad.append(
                        Finding(
                            "lint-directive",
                            sf.path,
                            d.line,
                            f"allow-end({r}) without a matching allow-begin",
                        )
                    )
                else:
                    lines.update(range(start, d.line + 1))
    for r, start in open_blocks.items():
        bad.append(
            Finding(
                "lint-directive",
                sf.path,
                start,
                f"allow-begin({r}) never closed with allow-end({r})",
            )
        )
    return bad


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

SCAN_DIRS = ("src", "tests", "bench", "examples")
CXX_EXT = (".cpp", ".hpp", ".cc", ".h")


def collect_files(root, paths):
    files = []
    if paths:
        for p in paths:
            ap = os.path.abspath(p)
            if os.path.isdir(ap):
                for dirpath, _, names in sorted(os.walk(ap)):
                    for name in sorted(names):
                        if name.endswith(CXX_EXT):
                            files.append(os.path.join(dirpath, name))
            else:
                files.append(ap)
    else:
        for d in SCAN_DIRS:
            base = os.path.join(root, d)
            if not os.path.isdir(base):
                continue
            for dirpath, _, names in sorted(os.walk(base)):
                for name in sorted(names):
                    if name.endswith(CXX_EXT):
                        files.append(os.path.join(dirpath, name))
    return files


def parse_source(abs_path, root):
    display = os.path.relpath(abs_path, root).replace("\\", "/")
    if display.startswith(".."):
        display = abs_path
    sf = parse_file(abs_path, display)
    sf.abs_path = abs_path
    return sf


def check_rules(sf):
    findings = resolve_directives(sf)
    for r in RULES.values():
        if not r.applies(sf.path):
            continue
        for line, message in r.check(sf) or ():
            if sf.is_allowed(r.name, line):
                continue
            findings.append(Finding(r.name, sf.path, line, message))
    return findings


def lint_file(abs_path, root):
    """Per-file rules only (tier 1); kept for one-file spot checks."""
    return check_rules(parse_source(abs_path, root))


def write_report(path, files_scanned, findings, baselined=0):
    per_rule = {name: 0 for name in sorted(RULES)}
    per_rule.update({name: 0 for name in sorted(ANALYSES)})
    per_rule["lint-directive"] = 0
    for f in findings:
        per_rule[f.rule] = per_rule.get(f.rule, 0) + 1
    checks = [
        {"ok": count == 0, "what": f"lint rule {name}: {count} violation(s)"}
        for name, count in sorted(per_rule.items())
    ]
    report = {
        "schema": "burst.run_report",
        "version": 1,
        "kind": "lint",
        "name": "burst_lint",
        "config": {
            "rules": ", ".join(sorted(RULES)),
            "analyses": ", ".join(sorted(ANALYSES)),
            "files_scanned": files_scanned,
        },
        "measurements": [
            {
                "name": "files_scanned",
                "measured": files_scanned,
                "paper_value": None,
                "unit": "files",
            },
            {
                "name": "violations",
                "measured": len(findings),
                "paper_value": None,
                "unit": "findings",
            },
        ],
        "metrics": {
            "counters": dict(
                {f"lint.{k}": v for k, v in sorted(per_rule.items())},
                **{"lint.baselined": baselined},
            ),
            "gauges": {},
            "histograms": {},
        },
        "checks": checks,
        "errors": [
            {"code": f"lint.{f.rule}", "message": f.render()} for f in findings
        ],
        "self_check": not findings,
    }
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(report, fp, indent=2)
        fp.write("\n")


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="BurstEngine repo lint", usage=__doc__
    )
    default_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    ap.add_argument("--root", default=default_root)
    ap.add_argument("--json", dest="json_out", default=None)
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument(
        "--baseline", default=None,
        help="baseline file for whole-program findings (default: "
        "scripts/lint/baseline.json under --root, when present)")
    ap.add_argument(
        "--write-baseline", action="store_true",
        help="write the surviving whole-program findings to the baseline "
        "file and exit 0; subsequent runs treat them as grandfathered")
    ap.add_argument(
        "--no-analyses", action="store_true",
        help="run only the per-file rules (tier 1), skipping the "
        "ProgramModel analyses")
    ap.add_argument("paths", nargs="*")
    args = ap.parse_args(argv)

    if args.list_rules:
        for name in sorted(RULES):
            print(f"{name}: {RULES[name].invariant}")
        for name in sorted(ANALYSES):
            print(f"{name} [whole-program]: {ANALYSES[name].invariant}")
        return 0

    root = os.path.abspath(args.root)
    files = collect_files(root, args.paths)
    sources = [parse_source(p, root) for p in files]

    findings = []
    for sf in sources:
        findings.extend(check_rules(sf))

    baselined = 0
    if not args.no_analyses:
        model = ProgramModel(root, sources)
        baseline_path = args.baseline or default_baseline_path(root)
        # Regeneration captures every current finding, so it runs against an
        # empty baseline; normal runs grandfather via the committed one.
        baseline = set() if args.write_baseline else load_baseline(
            baseline_path)
        analysis_findings, baselined, stale = run_analyses(model, baseline)
        if args.write_baseline:
            write_baseline_file(baseline_path, analysis_findings)
            print(f"burst-lint: wrote {len(analysis_findings)} "
                  f"grandfathered finding(s) to {baseline_path}")
            return 0
        findings.extend(analysis_findings)
        for rule_name, path, key in stale:
            findings.append(Finding(
                "lint-directive", path, 1,
                f"stale baseline entry ({rule_name}: {key}) matches no "
                "current finding; remove it from the baseline file"))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    for f in findings:
        print(f.render(), file=sys.stderr)
    if args.json_out:
        write_report(args.json_out, len(files), findings, baselined)
    status = "clean" if not findings else f"{len(findings)} violation(s)"
    extra = f", {baselined} baselined" if baselined else ""
    print(f"burst-lint: {len(files)} file(s) scanned, {status}{extra}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
