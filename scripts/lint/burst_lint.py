#!/usr/bin/env python3
"""burst-lint: repo-specific static analysis for the BurstEngine tree.

Each rule guards a machine-checked invariant of the codebase (DESIGN.md
section 12 has the full table). The engine walks the C++ sources, strips
comments and string literals so rules only see code, and reports violations
as both human-readable diagnostics and a versioned JSON report in the same
``burst.run_report`` shape the benches emit, so scripts/verify.sh gates on
``self_check`` uniformly.

Usage:
    burst_lint.py [--root DIR] [--json REPORT.json] [--list-rules] [PATH ...]

With no PATH arguments the default scan set is src/, tests/, bench/ and
examples/ under --root (default: the repo root containing this script).
Exit code 0 iff no violations.

Suppressions (all require a rule name; a reason is strongly encouraged):

    code();  // burst-lint: allow(rule-name) reason why this is fine
    // burst-lint: allow(rule-name) reason        <- covers the NEXT line
    // burst-lint: allow-begin(rule-name) reason
    ...block...
    // burst-lint: allow-end(rule-name)
    // burst-lint: allow-file(rule-name) reason   <- whole file

File tags:

    // burst-lint: hotpath   <- marks a kernel hot-path file; enables the
                                no-hotpath-alloc rule for that file.

Unknown rule names inside any burst-lint comment are themselves violations
(rule ``lint-directive``), so suppressions cannot rot silently.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field


# --------------------------------------------------------------------------
# Source model
# --------------------------------------------------------------------------

_DIRECTIVE_RE = re.compile(
    r"//\s*burst-lint:\s*"
    r"(?P<verb>allow-begin|allow-end|allow-file|allow|hotpath)"
    r"(?:\s*\(\s*(?P<rules>[A-Za-z0-9_,\s-]+)\s*\))?"
    r"(?P<reason>[^\n]*)"
)


@dataclass
class Directive:
    verb: str  # allow | allow-begin | allow-end | allow-file | hotpath
    rules: list[str]
    line: int  # 1-based
    reason: str


@dataclass
class SourceFile:
    """A parsed source file: raw lines, code-only lines, directives."""

    path: str  # path as reported (relative to root when possible)
    raw: str
    abs_path: str = ""
    lines: list[str] = field(default_factory=list)  # raw, 0-based
    code_lines: list[str] = field(default_factory=list)  # comments/strings blanked
    directives: list[Directive] = field(default_factory=list)
    hotpath: bool = False
    # rule -> set of 1-based line numbers covered by an allow
    allowed: dict = field(default_factory=dict)
    file_allowed: set = field(default_factory=set)  # rules allowed file-wide

    def is_allowed(self, rule: str, line: int) -> bool:
        if rule in self.file_allowed:
            return True
        return line in self.allowed.get(rule, ())


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure.

    Every non-newline character inside a comment or literal becomes a space
    so byte offsets and line numbers in the result match the original.
    """
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == '"' or c == "'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                    continue
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def parse_file(path: str, display: str) -> SourceFile:
    with open(path, encoding="utf-8", errors="replace") as f:
        raw = f.read()
    sf = SourceFile(path=display, raw=raw)
    sf.lines = raw.split("\n")
    sf.code_lines = strip_comments_and_strings(raw).split("\n")
    for m in _DIRECTIVE_RE.finditer(raw):
        line = raw.count("\n", 0, m.start()) + 1
        rules = []
        if m.group("rules"):
            rules = [r.strip() for r in m.group("rules").split(",") if r.strip()]
        sf.directives.append(
            Directive(
                verb=m.group("verb"),
                rules=rules,
                line=line,
                reason=(m.group("reason") or "").strip(),
            )
        )
    return sf


@dataclass
class Finding:
    rule: str
    path: str
    line: int  # 1-based
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Rule registry
# --------------------------------------------------------------------------

RULES = {}


class Rule:
    def __init__(self, name, invariant, check, applies):
        self.name = name
        self.invariant = invariant
        self.check = check
        self.applies = applies


def rule(name, invariant, applies=lambda path: True):
    """Registers ``fn(sf) -> iterable[(line, message)]`` as a lint rule."""

    def deco(fn):
        RULES[name] = Rule(name, invariant, fn, applies)
        return fn

    return deco


def _in_dir(path, *dirs):
    parts = path.replace("\\", "/").split("/")
    return any(d in parts for d in dirs)


def _code_matches(sf, pattern):
    rx = re.compile(pattern)
    for idx, line in enumerate(sf.code_lines):
        for m in rx.finditer(line):
            yield idx + 1, m


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------


@rule(
    "no-wallclock",
    "virtual-clock determinism: sim/, serve/, resilience/ schedule on "
    "sim::VirtualClock only; wall-clock reads live in src/obs/",
    applies=lambda p: (_in_dir(p, "src", "tests") and not _in_dir(p, "obs")),
)
def no_wallclock(sf):
    pat = (
        r"std\s*::\s*chrono\s*::\s*(system_clock|steady_clock|"
        r"high_resolution_clock)"
        r"|\bgettimeofday\s*\("
        r"|\bclock_gettime\s*\("
        r"|(?<![\w:])time\s*\(\s*(nullptr|NULL|0)?\s*\)"
        r"|(?<![\w:])std\s*::\s*time\s*\("
    )
    for line, m in _code_matches(sf, pat):
        yield line, (
            f"wall-clock read `{m.group(0).strip()}` outside src/obs/; "
            "use sim::VirtualClock (ctx.clock()) so replays stay bitwise "
            "deterministic"
        )


@rule(
    "no-serving-wallclock",
    "serving determinism (DESIGN.md section 13): src/api/ and src/serve/ run "
    "entirely on sim::VirtualClock; no <chrono>, std::this_thread, or sleep "
    "calls of any kind, so replays and SLO decisions stay bitwise identical",
    applies=lambda p: _in_dir(p, "src") and _in_dir(p, "api", "serve"),
)
def no_serving_wallclock(sf):
    # Stricter than no-wallclock: the serving stack may not even *name*
    # std::chrono types (durations included) — every timestamp is a double of
    # virtual seconds — and may never sleep, because blocking on real time
    # would desynchronize the simulated event stream from the virtual clock.
    pat = (
        r"#\s*include\s*<\s*chrono\s*>"
        r"|std\s*::\s*chrono\b"
        r"|std\s*::\s*this_thread\b"
        r"|(?<![\w:.])(?:sleep_for|sleep_until|usleep|nanosleep|sleep)\s*\("
    )
    seen = set()
    for line, m in _code_matches(sf, pat):
        if line in seen:
            continue  # one finding per line even when e.g. this_thread::sleep_for
        seen.add(line)
        yield line, (
            f"wall-clock construct `{m.group(0).strip()}` in serving code; "
            "src/api/ and src/serve/ schedule on sim::VirtualClock virtual "
            "seconds only (no chrono types, no sleeping)"
        )


@rule(
    "typed-errors-only",
    "typed serving errors (DESIGN.md section 14): src/api/ and src/serve/ "
    "throw burst::Error subclasses, never raw std::runtime_error or "
    "std::logic_error — the API layer and the recovery supervisor dispatch "
    "on burst::ErrorCode, and an untyped throw silently degrades to a 500",
    applies=lambda p: _in_dir(p, "src") and _in_dir(p, "api", "serve"),
)
def typed_errors_only(sf):
    pat = r"\bthrow\s+std\s*::\s*(runtime_error|logic_error)\b"
    for line, m in _code_matches(sf, pat):
        yield line, (
            f"raw `throw std::{m.group(1)}` in serving code; throw a "
            "burst::Error subclass (serve/errors.hpp) so the outcome "
            "carries a typed ErrorCode the API layer and recovery "
            "supervisor can dispatch on"
        )


@rule(
    "no-raw-rand",
    "bitwise replay: all randomness flows through tensor::Rng with an "
    "explicit recorded seed",
)
def no_raw_rand(sf):
    pat = (
        r"(?<![\w:])s?rand\s*\("
        r"|std\s*::\s*random_device"
        r"|(?<![\w:])random_device\b"
    )
    for line, m in _code_matches(sf, pat):
        yield line, (
            f"raw randomness `{m.group(0).strip()}`; use tensor::Rng with an "
            "explicit seed so training runs replay bitwise identically"
        )


_ALLOC_PAT = (
    r"(?P<new>(?<![\w:])new\b(?!\s*\()\s*[\w:<]|(?<![\w:])new\s*\()"
    r"|(?P<cfn>(?<![\w:])(?:malloc|calloc|realloc)\s*\()"
    r"|(?P<tensor>(?<![\w:])Tensor\s*(?:\(|\{(?!\s*\})))"
    r"|(?P<vec>std\s*::\s*vector\s*<)"
    r"|(?P<grow>\.\s*(?:push_back|emplace_back|resize|reserve)\s*\()"
)


def _is_vector_ref(line, open_pos):
    """True when the ``std::vector<`` starting before ``open_pos`` names a
    reference or pointer type (``const std::vector<T>&`` parameters), which
    allocates nothing. ``open_pos`` indexes just past the ``<``."""
    depth = 1
    i = open_pos
    while i < len(line) and depth:
        if line[i] == "<":
            depth += 1
        elif line[i] == ">":
            depth -= 1
        i += 1
    if depth:  # template args continue on the next line; assume allocation
        return False
    while i < len(line) and line[i].isspace():
        i += 1
    return i < len(line) and line[i] in "&*"


@rule(
    "no-hotpath-alloc",
    "workspace arena discipline (DESIGN.md section 11): kernel hot paths "
    "borrow scratch from tensor::Workspace; zero steady-state heap "
    "allocations",
    applies=lambda p: True,  # gated per-file by the hotpath tag
)
def no_hotpath_alloc(sf):
    if not sf.hotpath:
        return
    for line, m in _code_matches(sf, _ALLOC_PAT):
        if m.group("vec") and _is_vector_ref(sf.code_lines[line - 1], m.end()):
            continue  # `std::vector<T>&` / `*`: a type mention, no allocation
        what = m.group(0).strip()
        yield line, (
            f"allocation `{what}` in a hot-path file; borrow from "
            "Workspace::tls() (or move the allocation to setup and suppress "
            "with a reason)"
        )


_RECV_STMT = re.compile(
    r"^\s*"
    r"(?:[A-Za-z_]\w*(?:\[[^\]]*\])?\s*(?:\.|->|::)\s*)*"
    r"(?P<fn>recv|recv_on|recv_bundle|recv_frame)\s*\("
)


@rule(
    "no-unchecked-recv",
    "hardened-comm contract (DESIGN.md section 9): every recv-family result "
    "is consumed so checksum/sequence verification cannot be skipped",
    applies=lambda p: p.endswith((".cpp", ".hpp")),
)
def no_unchecked_recv(sf):
    # A recv-family call whose result is discarded is a statement that
    # *starts* with the call expression (possibly behind an obj./obj->/ns::
    # chain) and ends it: nothing to the left consumes the returned
    # vector/bundle, so the caller never observes what arrived. Declarations
    # and uses (assignment, return, argument position, member access on the
    # result) all place other tokens before the call or after the closing
    # paren.
    for idx, line in enumerate(sf.code_lines):
        m = _RECV_STMT.match(line)
        if not m:
            continue
        # Continuation of a binding/return/argument broken across lines
        # (`Bundle home =` on the previous line) is a consuming use.
        prev = ""
        for back in range(idx - 1, -1, -1):
            prev = sf.code_lines[back].strip()
            if prev:
                break
        if prev and (prev[-1] in "=(,<>?:+-*/%!&|" or
                     prev.endswith("return")):
            continue
        # Find the end of the call on this line (best-effort for one-liners;
        # a multi-line discard still starts the statement, handled below).
        rest = line[m.end():]
        depth = 1
        pos = 0
        for pos, ch in enumerate(rest):
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    break
        if depth != 0:
            tail = ""  # call continues on later lines; statement-start suffices
        else:
            tail = rest[pos + 1:].strip()
        if tail not in ("", ";"):
            continue  # consumed or a definition, e.g. `recv(...)[0];`, `... {`
        fn = m.group("fn")
        yield idx + 1, (
            f"result of `{fn}(...)` is discarded; bind it (or drain via a "
            "checked wrapper) so the hardened-comm checks are observed"
        )


@rule(
    "include-hygiene",
    "own header first; no transitive-only includes of workspace.hpp / "
    "metrics.hpp",
    applies=lambda p: _in_dir(p, "src") and p.endswith((".cpp", ".hpp")),
)
def include_hygiene(sf):
    path = sf.path.replace("\\", "/")
    includes = []  # (line, target)
    inc_rx = re.compile(r'^\s*#\s*include\s+["<]([^">]+)[">]')
    for idx, line in enumerate(sf.lines):
        m = inc_rx.match(line)
        if m:
            includes.append((idx + 1, m.group(1)))

    # (a) a .cpp with a sibling header includes it first.
    if path.endswith(".cpp"):
        stem = os.path.splitext(os.path.basename(path))[0]
        parent = os.path.basename(os.path.dirname(path))
        own = f"{parent}/{stem}.hpp"
        sibling = os.path.join(os.path.dirname(sf.abs_path), stem + ".hpp")
        if os.path.exists(sibling):
            if not includes:
                yield 1, f"missing include of own header \"{own}\""
            elif includes[0][1] != own:
                yield includes[0][0], (
                    f"first include must be the file's own header \"{own}\" "
                    f"(got \"{includes[0][1]}\") so the header is proven "
                    "self-contained"
                )

    # (b) direct-include discipline for arena / metrics types. Applies to
    # .cpp files only: a header that passes an opaque pointer may forward-
    # declare instead (kernels/flash_attention.hpp does exactly that).
    if not path.endswith(".cpp"):
        return
    included = {t for _, t in includes}
    code = "\n".join(sf.code_lines)
    wants = [
        (
            "tensor/workspace.hpp",
            r"\bWorkspace\b",
            "uses tensor::Workspace",
        ),
        (
            "obs/metrics.hpp",
            r"\bobs\s*::\s*(Registry|Counter|Gauge|Histogram|global_registry)\b"
            r"|\bScopedTimer\b",
            "uses obs metrics types",
        ),
    ]
    for header, pat, why in wants:
        if path.endswith(header):
            continue
        m = re.search(pat, code)
        if m and header not in included:
            line = code.count("\n", 0, m.start()) + 1
            yield line, (
                f"{why} but does not include \"{header}\" directly "
                "(transitive include only)"
            )


def _is_sim_backend_file(path):
    p = path.replace("\\", "/")
    return p.endswith(("comm/sim_transport.hpp", "comm/sim_transport.cpp"))


@rule(
    "no-direct-cluster",
    "transport abstraction (DESIGN.md section 15): outside src/sim/ and the "
    "simulator transport backend, src/ code reaches the device only through "
    "comm::Transport; direct sim::Cluster / sim::DeviceContext use couples "
    "protocol or model code to one backend",
    applies=lambda p: (
        _in_dir(p, "src") and not _in_dir(p, "sim")
        and not _is_sim_backend_file(p)
    ),
)
def no_direct_cluster(sf):
    # Includes are detected from raw lines (the string stripper blanks the
    # path), code references from the stripped lines.
    inc_rx = re.compile(r'^\s*#\s*include\s+"sim/cluster\.hpp"')
    for idx, line in enumerate(sf.lines):
        if inc_rx.match(line):
            yield idx + 1, (
                'direct include of "sim/cluster.hpp"; construct a '
                "comm::SimTransport at the cluster-hosting boundary and pass "
                "comm::Transport& down (or suppress with a reason at a "
                "legitimate hosting site)"
            )
    pat = r"\bsim\s*::\s*(Cluster|DeviceContext)\b|(?<![\w:])DeviceContext\b"
    seen = set()
    for line, m in _code_matches(sf, pat):
        if line in seen:
            continue  # one finding per line, like no-serving-wallclock
        seen.add(line)
        yield line, (
            f"direct simulator type `{m.group(0).strip()}`; depend on "
            "comm::Transport instead so the code also runs on the socket "
            "backend"
        )


_FLOAT_LIT = re.compile(r"^[-+]?(\d+\.\d*|\.\d+)(e[-+]?\d+)?f?$|^[-+]?\d+\.?\d*f$")


def _split_top_level_args(s):
    """Splits a macro argument list at top-level commas. Returns None when
    the parenthesization is unbalanced (multi-line call)."""
    args = []
    depth = 0
    cur = []
    for ch in s:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            if depth == 0:
                args.append("".join(cur).strip())
                return args
            depth -= 1
        elif ch == "," and depth == 0:
            args.append("".join(cur).strip())
            cur = []
            continue
        cur.append(ch)
    return None


@rule(
    "no-naked-float-eq",
    "numerical honesty in tests: exact float comparison must be a deliberate "
    "bitwise-determinism assertion (suppressed with a reason) or use "
    "EXPECT_NEAR / EXPECT_FLOAT_EQ",
    applies=lambda p: _in_dir(p, "tests"),
)
def no_naked_float_eq(sf):
    rx = re.compile(r"\b(EXPECT_EQ|ASSERT_EQ|EXPECT_NE|ASSERT_NE)\s*\(")
    for idx, line in enumerate(sf.code_lines):
        for m in rx.finditer(line):
            args = _split_top_level_args(line[m.end() :])
            if not args or len(args) < 2:
                continue
            if any(_FLOAT_LIT.match(a) for a in args[:2]):
                yield idx + 1, (
                    f"{m.group(1)} against a float literal; use EXPECT_NEAR/"
                    "EXPECT_FLOAT_EQ, or suppress with a reason when asserting "
                    "bitwise determinism"
                )


@rule(
    "quantized-hotpath",
    "quantized-storage encapsulation (DESIGN.md section 16): only src/tensor/ "
    "may touch the quantized block layout — the per-block codecs "
    "(quantize_block_q*/dequantize_q*), the panel-layout helpers "
    "(b_chunk_bytes/b_panel_stride_bytes/pack_b_dt), and PackedB's raw "
    "cache_block() stream. Everything else consumes quantized weights "
    "through PackedB / gemm_packed* / gemm_dt, so the block format can "
    "change without a treewide audit",
    applies=lambda p: _in_dir(p, "src") and not _in_dir(p, "tensor"),
)
def quantized_hotpath(sf):
    pat = (
        r"(?<![\w:])(?:quantize_block_q8_0|quantize_block_q4_0"
        r"|dequantize_q8_0|dequantize_q4_0"
        r"|b_chunk_bytes|b_panel_stride_bytes|b_panel_bytes|pack_b_dt)\s*\("
        r"|[.\->]\s*cache_block\s*\("
    )
    for line, m in _code_matches(sf, pat):
        yield line, (
            f"quantized block-layout access `{m.group(0).strip()}` outside "
            "src/tensor/; go through PackedB / gemm_packed* / gemm_dt "
            "(tensor/gemm.hpp) instead of reinterpreting the packed stream"
        )


# --------------------------------------------------------------------------
# Directive resolution (needs RULES populated, hence defined last)
# --------------------------------------------------------------------------


def resolve_directives(sf):
    """Fills sf.allowed / sf.file_allowed / sf.hotpath.

    Returns findings for malformed directives (unknown rule names, unmatched
    allow-begin/allow-end) under the synthetic rule name ``lint-directive``.
    """
    bad = []
    open_blocks = {}  # rule -> start line
    for d in sf.directives:
        if d.verb == "hotpath":
            sf.hotpath = True
            continue
        if not d.rules:
            bad.append(
                Finding(
                    "lint-directive",
                    sf.path,
                    d.line,
                    f"burst-lint: {d.verb} needs a (rule-name) argument",
                )
            )
            continue
        for r in d.rules:
            if r not in RULES:
                bad.append(
                    Finding(
                        "lint-directive",
                        sf.path,
                        d.line,
                        f"unknown rule '{r}' in burst-lint: {d.verb} "
                        f"(known: {', '.join(sorted(RULES))})",
                    )
                )
                continue
            lines = sf.allowed.setdefault(r, set())
            if d.verb == "allow":
                lines.add(d.line)
                # Directive-on-its-own-line form: cover the next *code* line,
                # skipping the rest of a multi-line justification comment.
                nxt = d.line + 1
                while (nxt <= len(sf.lines)
                       and sf.lines[nxt - 1].strip()
                       and not sf.code_lines[nxt - 1].strip()):
                    nxt += 1
                lines.add(nxt)
            elif d.verb == "allow-file":
                sf.file_allowed.add(r)
            elif d.verb == "allow-begin":
                open_blocks[r] = d.line
            elif d.verb == "allow-end":
                start = open_blocks.pop(r, None)
                if start is None:
                    bad.append(
                        Finding(
                            "lint-directive",
                            sf.path,
                            d.line,
                            f"allow-end({r}) without a matching allow-begin",
                        )
                    )
                else:
                    lines.update(range(start, d.line + 1))
    for r, start in open_blocks.items():
        bad.append(
            Finding(
                "lint-directive",
                sf.path,
                start,
                f"allow-begin({r}) never closed with allow-end({r})",
            )
        )
    return bad


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

SCAN_DIRS = ("src", "tests", "bench", "examples")
CXX_EXT = (".cpp", ".hpp", ".cc", ".h")


def collect_files(root, paths):
    files = []
    if paths:
        for p in paths:
            ap = os.path.abspath(p)
            if os.path.isdir(ap):
                for dirpath, _, names in sorted(os.walk(ap)):
                    for name in sorted(names):
                        if name.endswith(CXX_EXT):
                            files.append(os.path.join(dirpath, name))
            else:
                files.append(ap)
    else:
        for d in SCAN_DIRS:
            base = os.path.join(root, d)
            if not os.path.isdir(base):
                continue
            for dirpath, _, names in sorted(os.walk(base)):
                for name in sorted(names):
                    if name.endswith(CXX_EXT):
                        files.append(os.path.join(dirpath, name))
    return files


def lint_file(abs_path, root):
    display = os.path.relpath(abs_path, root)
    if display.startswith(".."):
        display = abs_path
    sf = parse_file(abs_path, display)
    sf.abs_path = abs_path
    findings = resolve_directives(sf)
    for r in RULES.values():
        if not r.applies(display):
            continue
        for line, message in r.check(sf) or ():
            if sf.is_allowed(r.name, line):
                continue
            findings.append(Finding(r.name, display, line, message))
    return findings


def write_report(path, files_scanned, findings):
    per_rule = {name: 0 for name in sorted(RULES)}
    per_rule["lint-directive"] = 0
    for f in findings:
        per_rule[f.rule] = per_rule.get(f.rule, 0) + 1
    checks = [
        {"ok": count == 0, "what": f"lint rule {name}: {count} violation(s)"}
        for name, count in sorted(per_rule.items())
    ]
    report = {
        "schema": "burst.run_report",
        "version": 1,
        "kind": "lint",
        "name": "burst_lint",
        "config": {
            "rules": ", ".join(sorted(RULES)),
            "files_scanned": files_scanned,
        },
        "measurements": [
            {
                "name": "files_scanned",
                "measured": files_scanned,
                "paper_value": None,
                "unit": "files",
            },
            {
                "name": "violations",
                "measured": len(findings),
                "paper_value": None,
                "unit": "findings",
            },
        ],
        "metrics": {
            "counters": {f"lint.{k}": v for k, v in sorted(per_rule.items())},
            "gauges": {},
            "histograms": {},
        },
        "checks": checks,
        "errors": [
            {"code": f"lint.{f.rule}", "message": f.render()} for f in findings
        ],
        "self_check": not findings,
    }
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(report, fp, indent=2)
        fp.write("\n")


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="BurstEngine repo lint", usage=__doc__
    )
    default_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    ap.add_argument("--root", default=default_root)
    ap.add_argument("--json", dest="json_out", default=None)
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("paths", nargs="*")
    args = ap.parse_args(argv)

    if args.list_rules:
        for name in sorted(RULES):
            print(f"{name}: {RULES[name].invariant}")
        return 0

    root = os.path.abspath(args.root)
    files = collect_files(root, args.paths)
    findings = []
    for path in files:
        findings.extend(lint_file(path, root))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    for f in findings:
        print(f.render(), file=sys.stderr)
    if args.json_out:
        write_report(args.json_out, len(files), findings)
    status = "clean" if not findings else f"{len(findings)} violation(s)"
    print(f"burst-lint: {len(files)} file(s) scanned, {status}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
