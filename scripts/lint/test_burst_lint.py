#!/usr/bin/env python3
"""Self-tests for burst_lint.py (stdlib unittest; the CI image has no pytest).

Each lint rule is proven twice: a fixture file seeded with violations makes
the linter exit non-zero and name the rule, and the suppression fixtures
prove every allow form silences it. The JSON report is validated against the
``burst.run_report`` contract scripts/verify.sh gates on. Finally the real
repo tree must lint clean — the acceptance bar for the whole PR.

Run directly (``python3 scripts/lint/test_burst_lint.py``) or via ctest
(test name ``lint_selftest``).
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "tests", "fixtures")
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))

sys.path.insert(0, HERE)
import burst_lint  # noqa: E402


def run_lint(args):
    """Runs burst_lint.main, returning (exit_code, stdout, stderr)."""
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        rc = burst_lint.main(args)
    return rc, out.getvalue(), err.getvalue()


def lint_fixture(rel):
    path = os.path.join(FIXTURES, rel)
    return run_lint(["--root", FIXTURES, path])


class TestRuleDetection(unittest.TestCase):
    """Every rule exits non-zero on its seeded fixture and names itself."""

    def assert_rule_fires(self, rel, rule, expect_count):
        rc, _, err = lint_fixture(rel)
        self.assertEqual(rc, 1, f"{rel} should fail lint\nstderr: {err}")
        hits = [l for l in err.splitlines() if f"[{rule}]" in l]
        self.assertEqual(
            len(hits), expect_count,
            f"expected {expect_count} {rule} finding(s) in {rel}, got "
            f"{len(hits)}:\n{err}")

    def test_no_wallclock(self):
        self.assert_rule_fires("src/sim/bad_wallclock.cpp", "no-wallclock", 3)

    def test_no_raw_rand(self):
        self.assert_rule_fires("src/sim/bad_rand.cpp", "no-raw-rand", 2)

    def test_no_serving_wallclock(self):
        self.assert_rule_fires(
            "src/api/bad_chrono.cpp", "no-serving-wallclock", 4)

    def test_typed_errors_only(self):
        self.assert_rule_fires(
            "src/serve/bad_throw.cpp", "typed-errors-only", 2)

    def test_no_hotpath_alloc(self):
        self.assert_rule_fires(
            "src/kernels/bad_hotpath.cpp", "no-hotpath-alloc", 3)

    def test_no_unchecked_recv(self):
        self.assert_rule_fires("src/comm/bad_recv.cpp", "no-unchecked-recv", 2)

    def test_include_hygiene(self):
        self.assert_rule_fires("src/core/bad_include.cpp", "include-hygiene", 2)

    def test_no_direct_cluster(self):
        self.assert_rule_fires(
            "src/serve/bad_cluster.cpp", "no-direct-cluster", 3)

    def test_no_naked_float_eq(self):
        self.assert_rule_fires(
            "tests/bad_float_eq.cpp", "no-naked-float-eq", 2)

    def test_quantized_hotpath(self):
        self.assert_rule_fires(
            "src/model/bad_quant.cpp", "quantized-hotpath", 3)

    def test_malformed_directives(self):
        self.assert_rule_fires("src/sim/bad_directive.cpp", "lint-directive", 2)


class TestSuppressionAndNoise(unittest.TestCase):
    def test_all_allow_forms_silence(self):
        rc, _, err = lint_fixture("src/sim/suppressed.cpp")
        self.assertEqual(rc, 0, f"suppressed fixture should be clean:\n{err}")

    def test_comments_and_strings_ignored(self):
        rc, _, err = lint_fixture("src/sim/clean.cpp")
        self.assertEqual(rc, 0, f"clean fixture should be clean:\n{err}")

    def test_serving_wallclock_rule_scoped_to_serving_dirs(self):
        # The same chrono duration in src/sim/ is outside the rule's scope
        # (and names no clock, so no-wallclock stays quiet too).
        with tempfile.TemporaryDirectory() as tmp:
            src = os.path.join(tmp, "src", "sim")
            os.makedirs(src)
            path = os.path.join(src, "durations.cpp")
            with open(path, "w") as f:
                f.write("#include <chrono>\n"
                        "auto d() { return std::chrono::milliseconds(5); }\n")
            rc, _, err = run_lint(["--root", tmp, path])
            self.assertEqual(rc, 0, err)

    def test_typed_errors_rule_covers_all_of_src(self):
        # Since the whole-program tier landed, the typed-error invariant
        # covers every src/ directory — a raw throw in src/sim/ is flagged —
        # while tests/ (which throw freely to exercise handlers) stay out.
        body = ("#include <stdexcept>\n"
                "void f() { throw std::logic_error(\"x\"); }\n")
        for rel, expect_rc in ((("src", "sim", "raw_throw.cpp"), 1),
                               (("tests", "raw_throw.cpp"), 0)):
            with tempfile.TemporaryDirectory() as tmp:
                d = os.path.join(tmp, *rel[:-1])
                os.makedirs(d)
                path = os.path.join(d, rel[-1])
                with open(path, "w") as f:
                    f.write(body)
                rc, _, err = run_lint(["--root", tmp, path])
                self.assertEqual(rc, expect_rc, f"{'/'.join(rel)}:\n{err}")
                if expect_rc:
                    self.assertIn("[typed-errors-only]", err)

    def test_direct_cluster_rule_exempts_sim_and_backend(self):
        # src/sim/ itself and the simulator transport backend are the two
        # places allowed to name cluster types without a suppression.
        body = ("#include \"sim/cluster.hpp\"\n"
                "int r(burst::sim::DeviceContext& ctx);\n")
        for rel in (("src", "sim", "inner.cpp"),
                    ("src", "comm", "sim_transport.cpp")):
            with tempfile.TemporaryDirectory() as tmp:
                d = os.path.join(tmp, *rel[:-1])
                os.makedirs(d)
                path = os.path.join(d, rel[-1])
                with open(path, "w") as f:
                    f.write(body)
                rc, _, err = run_lint(["--root", tmp, path])
                self.assertEqual(rc, 0, f"{'/'.join(rel)} flagged:\n{err}")

    def test_direct_cluster_rule_off_outside_src(self):
        # Tests, benches and examples legitimately host clusters everywhere.
        with tempfile.TemporaryDirectory() as tmp:
            d = os.path.join(tmp, "tests")
            os.makedirs(d)
            path = os.path.join(d, "test_host.cpp")
            with open(path, "w") as f:
                f.write("#include \"sim/cluster.hpp\"\n"
                        "int r(burst::sim::DeviceContext& ctx);\n")
            rc, _, err = run_lint(["--root", tmp, path])
            self.assertEqual(rc, 0, err)

    def test_quantized_hotpath_scoped_to_src_outside_tensor(self):
        # src/tensor/ owns the block layout; tests (the conformance suite)
        # exercise the codecs directly and are outside the rule's scope.
        body = ("namespace burst::tensor { float dequantize_q8_0(float, "
                "signed char); }\n"
                "float f() { return burst::tensor::dequantize_q8_0(1.0f, 3); "
                "}\n")
        for rel in (("src", "tensor", "codec_use.cpp"),
                    ("tests", "test_codec.cpp")):
            with tempfile.TemporaryDirectory() as tmp:
                d = os.path.join(tmp, *rel[:-1])
                os.makedirs(d)
                path = os.path.join(d, rel[-1])
                with open(path, "w") as f:
                    f.write(body)
                rc, _, err = run_lint(["--root", tmp, path])
                self.assertEqual(rc, 0, f"{'/'.join(rel)} flagged:\n{err}")

    def test_hotpath_rule_off_without_tag(self):
        # The same allocations in an untagged file are fine.
        with tempfile.TemporaryDirectory() as tmp:
            src = os.path.join(tmp, "src", "kernels")
            os.makedirs(src)
            path = os.path.join(src, "untagged.cpp")
            with open(path, "w") as f:
                f.write("#include <vector>\n"
                        "void f() { std::vector<int> v; v.push_back(1); }\n")
            rc, _, err = run_lint(["--root", tmp, path])
            self.assertEqual(rc, 0, err)


class TestJsonReport(unittest.TestCase):
    def test_report_shape_on_failure(self):
        with tempfile.TemporaryDirectory() as tmp:
            report_path = os.path.join(tmp, "lint.json")
            path = os.path.join(FIXTURES, "src", "sim", "bad_rand.cpp")
            rc, _, _ = run_lint(
                ["--root", FIXTURES, "--json", report_path, path])
            self.assertEqual(rc, 1)
            with open(report_path) as f:
                rep = json.load(f)
            self.assertEqual(rep["schema"], "burst.run_report")
            self.assertEqual(rep["version"], 1)
            self.assertEqual(rep["kind"], "lint")
            self.assertIs(rep["self_check"], False)
            self.assertTrue(
                any(e["code"] == "lint.no-raw-rand" for e in rep["errors"]))
            failed = [c for c in rep["checks"] if not c["ok"]]
            self.assertTrue(
                any("no-raw-rand" in c["what"] for c in failed))
            counters = rep["metrics"]["counters"]
            self.assertEqual(counters["lint.no-raw-rand"], 2)

    def test_report_self_check_true_when_clean(self):
        with tempfile.TemporaryDirectory() as tmp:
            report_path = os.path.join(tmp, "lint.json")
            path = os.path.join(FIXTURES, "src", "sim", "clean.cpp")
            rc, _, _ = run_lint(
                ["--root", FIXTURES, "--json", report_path, path])
            self.assertEqual(rc, 0)
            with open(report_path) as f:
                rep = json.load(f)
            self.assertIs(rep["self_check"], True)
            self.assertEqual(rep["errors"], [])
            self.assertTrue(all(c["ok"] for c in rep["checks"]))


class TestRepoTreeClean(unittest.TestCase):
    """The real tree lints clean — the PR's acceptance criterion."""

    def test_repo_lints_clean(self):
        rc, _, err = run_lint(["--root", REPO_ROOT])
        self.assertEqual(rc, 0, f"repo tree has lint violations:\n{err}")


if __name__ == "__main__":
    unittest.main(verbosity=2)
