#include <mutex>
class Pair {
 public:
  void ab() {
    std::lock_guard<std::mutex> a(m1_);
    std::lock_guard<std::mutex> b(m2_);
    ++v_;
  }
  void ba() {
    std::lock_guard<std::mutex> b(m2_);
    std::lock_guard<std::mutex> a(m1_);
    --v_;
  }
 private:
  std::mutex m1_;
  std::mutex m2_;
  int v_ = 0;
};
