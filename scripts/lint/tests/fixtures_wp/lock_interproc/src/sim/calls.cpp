#include <mutex>
class Deep {
 public:
  void lock_second() {
    std::lock_guard<std::mutex> b(m2_);
    ++v_;
  }
  void outer() {
    std::lock_guard<std::mutex> a(m1_);
    lock_second();
  }
  void reversed() {
    std::lock_guard<std::mutex> b(m2_);
    std::lock_guard<std::mutex> a(m1_);
    --v_;
  }
 private:
  std::mutex m1_;
  std::mutex m2_;
  int v_ = 0;
};
