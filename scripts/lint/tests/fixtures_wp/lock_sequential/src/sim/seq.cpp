#include <mutex>
class Seq {
 public:
  void nested() {
    std::lock_guard<std::mutex> a(m1_);
    std::lock_guard<std::mutex> b(m2_);
    ++v_;
  }
  void sequential() {
    {
      std::lock_guard<std::mutex> b(m2_);
      ++v_;
    }
    {
      std::lock_guard<std::mutex> a(m1_);
      --v_;
    }
  }
 private:
  std::mutex m1_;
  std::mutex m2_;
  int v_ = 0;
};
