#include <condition_variable>
#include <mutex>
class Waiter {
 public:
  void good() {
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [this] { return ready_; });
  }
  void bad() {
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk);
    ready_ = false;
  }
 private:
  std::mutex m_;
  std::condition_variable cv_;
  bool ready_ = false;
};
