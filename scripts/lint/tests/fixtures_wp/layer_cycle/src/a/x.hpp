#pragma once
#include "a/y.hpp"
struct XThing {
  int use() { return y_helper(); }
};
inline int x_helper() { return 1; }
