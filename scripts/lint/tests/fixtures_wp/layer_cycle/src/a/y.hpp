#pragma once
#include "a/x.hpp"
inline int y_helper() { return x_helper(); }
