#include "a/base.hpp"
int standalone() { return 4; }
