#pragma once
inline int base_helper() { return 3; }
