#include <exception>
int work();
int swallowing() {
  try {
    return work();
  } catch (...) {
  }
  return 0;
}
int rethrowing() {
  try {
    return work();
  } catch (const std::exception&) {
    throw;
  }
}
int reading(int* out) {
  try {
    return work();
  } catch (const std::exception& e) {
    *out = static_cast<int>(sizeof(e));
  }
  return 0;
}
int recording(bool* failed) {
  try {
    return work();
  } catch (...) {
    *failed = true;
  }
  return 0;
}
