#pragma once
#include "b/high.hpp"
inline int low_uses_high() { return high_helper(); }
