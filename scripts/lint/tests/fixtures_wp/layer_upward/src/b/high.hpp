#pragma once
inline int high_helper() { return 2; }
