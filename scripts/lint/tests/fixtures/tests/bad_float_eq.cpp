// Fixture: seeded no-naked-float-eq violations.
#define EXPECT_EQ(a, b) ((void)((a) == (b)))
#define ASSERT_NE(a, b) ((void)((a) != (b)))

namespace fixture {

void checks(float x, int n) {
  EXPECT_EQ(x, 0.25f);     // VIOLATION: no-naked-float-eq
  ASSERT_NE(1.5, x);       // VIOLATION: no-naked-float-eq
  EXPECT_EQ(n, 3);         // ok: integer comparison
  EXPECT_EQ(helper({n, 0.5}), 7);  // ok: literal nested inside a call
}

int helper(...);

}  // namespace fixture
