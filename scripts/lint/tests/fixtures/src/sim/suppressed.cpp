// Fixture: every suppression form silences its seeded violation, so this
// file must lint clean.
#include <chrono>
#include <cstdlib>

namespace fixture {

double same_line() {
  // burst-lint: allow(no-wallclock) fixture exercises the same/next-line form
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

int next_line() {
  return rand();  // burst-lint: allow(no-raw-rand) trailing-comment form
}

// burst-lint: allow-begin(no-raw-rand) block form covers everything between
int block_a() { return rand(); }
int block_b() { return rand(); }
// burst-lint: allow-end(no-raw-rand)

}  // namespace fixture
