// Fixture sibling header for clean.cpp.
#pragma once

#include <string>

namespace fixture {
std::string describe();
int file_wide_allowed();
}  // namespace fixture
