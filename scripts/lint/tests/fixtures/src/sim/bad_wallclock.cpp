// Fixture: seeded no-wallclock violations (one per line flagged).
#include <chrono>
#include <ctime>

namespace fixture {

double bad_steady() {
  auto t = std::chrono::steady_clock::now();  // VIOLATION: no-wallclock
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

long bad_time() {
  return time(nullptr);  // VIOLATION: no-wallclock
}

long bad_std_time() {
  return std::time(nullptr);  // VIOLATION: no-wallclock
}

}  // namespace fixture
