// Fixture: a clean file — comments and strings mentioning rand(), time(0),
// or std::chrono::steady_clock must NOT trip any rule, and an allow-file
// directive covers the one real use.
// burst-lint: allow-file(no-raw-rand) fixture proves file-wide suppression
#include "sim/clean.hpp"

#include <cstdlib>
#include <string>

namespace fixture {

std::string describe() {
  // rand() and time(nullptr) in a comment are fine.
  return "calls std::chrono::steady_clock::now() -- only in a string";
}

int file_wide_allowed() { return rand(); }

}  // namespace fixture
