// Fixture: malformed burst-lint directives are violations themselves.
namespace fixture {

// burst-lint: allow(not-a-real-rule) VIOLATION: lint-directive (unknown rule)
int f() { return 1; }

// burst-lint: allow-begin(no-raw-rand) VIOLATION: lint-directive (never closed)
int g() { return 2; }

}  // namespace fixture
