// Fixture: seeded no-raw-rand violations.
#include <cstdlib>
#include <random>

namespace fixture {

int bad_rand() {
  return rand();  // VIOLATION: no-raw-rand
}

unsigned bad_device() {
  std::random_device rd;  // VIOLATION: no-raw-rand
  return rd();
}

}  // namespace fixture
