// Fixture: direct simulator coupling outside src/sim/ — the no-direct-cluster
// rule must flag the include and both type references (3 findings).
#include "sim/cluster.hpp"

namespace burst::serve {

int bad_world(sim::Cluster& cluster) { return cluster.world_size(); }

int bad_rank(sim::DeviceContext& ctx) { return ctx.rank(); }

}  // namespace burst::serve
