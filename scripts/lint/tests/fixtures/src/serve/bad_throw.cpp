// Fixture: seeded typed-errors-only violations (one per line flagged).
#include <stdexcept>

namespace fixture {

void bad_runtime_error() {
  throw std::runtime_error("scheduler wedged");  // VIOLATION: typed-errors-only
}

void bad_logic_error() {
  throw std::logic_error("invariant broken");  // VIOLATION: typed-errors-only
}

void fine_invalid_argument(int n) {
  // invalid_argument marks a caller-contract bug, not a serving outcome —
  // it is out of the rule's scope on purpose.
  if (n < 0) {
    throw std::invalid_argument("n must be >= 0");
  }
}

// A string mentioning throw std::runtime_error must not fire the rule.
const char* kDoc = "never throw std::runtime_error from serving code";

}  // namespace fixture
