// Fixture: seeded no-serving-wallclock violations (one per line flagged).
#include <chrono>  // VIOLATION: no-serving-wallclock

namespace fixture {

void bad_duration() {
  auto d = std::chrono::milliseconds(5);  // VIOLATION: no-serving-wallclock
  std::this_thread::sleep_for(d);         // VIOLATION: no-serving-wallclock
}

void bad_posix_sleep() {
  usleep(100);  // VIOLATION: no-serving-wallclock
}

}  // namespace fixture
