// Fixture: quantized block-layout access outside src/tensor/ — the codecs,
// the panel-layout helpers, and PackedB's raw stream are tensor-internal.
#include <cstdint>

namespace burst::tensor {
float dequantize_q8_0(float, std::int8_t);
std::int64_t b_chunk_bytes(int);
struct PackedB {
  const std::uint8_t* cache_block(std::int64_t, std::int64_t) const;
};
}  // namespace burst::tensor

float peek(const burst::tensor::PackedB& b) {
  const std::uint8_t* raw = b.cache_block(0, 0);  // violation: raw stream
  const std::int64_t n = burst::tensor::b_chunk_bytes(2);  // violation: layout
  return burst::tensor::dequantize_q8_0(  // violation: codec call
      static_cast<float>(n), static_cast<std::int8_t>(raw[0]));
}
