// Fixture sibling header for bad_include.cpp.
#pragma once

namespace fixture {
int answer();
}  // namespace fixture
