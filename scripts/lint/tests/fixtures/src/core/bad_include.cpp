// Fixture: seeded include-hygiene violations — own header is not first, and
// tensor::Workspace is used without a direct include of tensor/workspace.hpp.
#include <vector>

#include "core/bad_include.hpp"

namespace fixture {

int answer() {
  auto& ws = Workspace::tls();  // VIOLATION: include-hygiene (no direct include)
  (void)ws;
  return 42;
}

}  // namespace fixture
