// Fixture: seeded no-unchecked-recv violation.
namespace fixture {

struct Comm {
  int recv(int src, int tag);
  int recv_bundle(int src, int tag, int stream);
};

void drain(Comm& comm) {
  comm.recv(0, 1);  // VIOLATION: no-unchecked-recv (result discarded)
  comm.recv_bundle(0, 1, 2);  // VIOLATION: no-unchecked-recv
  int ok = comm.recv(0, 2);  // ok: bound
  (void)ok;
}

}  // namespace fixture
