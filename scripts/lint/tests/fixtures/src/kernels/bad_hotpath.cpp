// Fixture: seeded no-hotpath-alloc violations in a tagged hot-path file.
// burst-lint: hotpath
#include <vector>

namespace fixture {

// ok: reference/pointer parameters name the type without allocating
void consume(const std::vector<float>& in, std::vector<int>* out);

void bad_allocs(int n) {
  std::vector<float> tile;  // VIOLATION: no-hotpath-alloc (vector)
  tile.push_back(1.0f);     // VIOLATION: no-hotpath-alloc (growth)
  float* p = new float[8];  // VIOLATION: no-hotpath-alloc (new)
  delete[] p;
  (void)n;
  (void)tile;
}

}  // namespace fixture
