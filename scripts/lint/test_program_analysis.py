#!/usr/bin/env python3
"""Self-tests for the whole-program tier of burst_lint.py.

Each analysis is proven on a fixture mini-root under tests/fixtures_wp/
(each root triggers exactly its own analysis, exactly once), the RAII
scope-tracking regression (sequential lock scopes are not a cycle) is
pinned, the baseline file round-trips, and the ProgramModel built over the
real repo tree is checked for the coverage the PR promises: the lock graph
sees parallel/thread_pool, the socket transport, and the serve engine.

Run directly (``python3 scripts/lint/test_program_analysis.py``) or via
ctest (test name ``lint_program_selftest``).
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES_WP = os.path.join(HERE, "tests", "fixtures_wp")
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))

sys.path.insert(0, HERE)
import burst_lint  # noqa: E402


def run_lint(args):
    """Runs burst_lint.main, returning (exit_code, stdout, stderr)."""
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        rc = burst_lint.main(args)
    return rc, out.getvalue(), err.getvalue()


def lint_fixture_root(name, extra=()):
    root = os.path.join(FIXTURES_WP, name)
    return run_lint(["--root", root, *extra, root])


def build_repo_model():
    files = burst_lint.collect_files(REPO_ROOT, [])
    sources = [burst_lint.parse_source(p, REPO_ROOT) for p in files]
    return burst_lint.ProgramModel(REPO_ROOT, sources)


class TestAnalysisFixtures(unittest.TestCase):
    """Each fixture root triggers exactly its own analysis, exactly once."""

    def assert_fires(self, fixture, rule, expect_count=1):
        rc, _, err = lint_fixture_root(fixture)
        self.assertEqual(rc, 1, f"{fixture} should fail lint\nstderr: {err}")
        lines = [l for l in err.splitlines() if l.strip()]
        hits = [l for l in lines if f"[{rule}]" in l]
        self.assertEqual(
            len(hits), expect_count,
            f"expected {expect_count} {rule} finding(s) in {fixture}:\n{err}")
        # ...and nothing else fires: the fixture isolates one analysis.
        self.assertEqual(
            len(lines), expect_count,
            f"{fixture} triggered findings beyond {rule}:\n{err}")

    def test_include_cycle(self):
        self.assert_fires("layer_cycle", "layer-dag")

    def test_upward_layer_include(self):
        self.assert_fires("layer_upward", "layer-dag")

    def test_unused_include(self):
        self.assert_fires("layer_unused", "layer-dag")

    def test_lock_order_inversion(self):
        self.assert_fires("lock_inversion", "lock-order")

    def test_lock_order_inversion_through_call(self):
        self.assert_fires("lock_interproc", "lock-order")

    def test_cv_wait_without_predicate(self):
        self.assert_fires("cv_nopredicate", "lock-order")

    def test_catch_swallow(self):
        self.assert_fires("catch_swallow", "error-flow")

    def test_sequential_lock_scopes_are_not_a_cycle(self):
        # Two locks taken back-to-back in *sequential* scopes, plus the same
        # pair genuinely nested elsewhere, is a valid order — the analysis
        # must model RAII release at end of block, or Cluster::abort vs
        # Cluster::barrier_and_sync would be a false deadlock.
        rc, _, err = lint_fixture_root("lock_sequential")
        self.assertEqual(rc, 0, f"sequential scopes misread as nesting:\n{err}")

    def test_layer_analysis_inactive_without_manifest(self):
        # lock/catch fixtures carry no layers.json: the layer-dag analysis
        # is manifest-driven and must stay silent there (their include graphs
        # are not layered worlds, just single files).
        rc, _, err = lint_fixture_root("lock_sequential")
        self.assertNotIn("[layer-dag]", err)
        self.assertEqual(rc, 0, err)

    def test_list_rules_shows_whole_program_tier(self):
        rc, out, _ = run_lint(["--list-rules"])
        self.assertEqual(rc, 0)
        for name in ("layer-dag", "lock-order", "error-flow"):
            self.assertIn(f"{name} [whole-program]:", out)


class TestSuppression(unittest.TestCase):
    def test_inline_allow_silences_analysis_finding(self):
        with tempfile.TemporaryDirectory() as tmp:
            d = os.path.join(tmp, "src", "sim")
            os.makedirs(d)
            with open(os.path.join(d, "ok.cpp"), "w") as f:
                f.write(
                    "int work();\n"
                    "int f() {\n"
                    "  try {\n"
                    "    return work();\n"
                    "    // burst-lint: allow(error-flow) failure here means\n"
                    "    // the optional cache is cold; cold-start is fine\n"
                    "  } catch (...) {\n"
                    "  }\n"
                    "  return 0;\n"
                    "}\n")
            rc, _, err = run_lint(["--root", tmp, tmp])
            self.assertEqual(rc, 0, err)

    def test_analysis_names_are_known_to_directives(self):
        # A suppression naming an analysis must not be an unknown-rule
        # violation (the lint-directive rule covers both tiers).
        with tempfile.TemporaryDirectory() as tmp:
            d = os.path.join(tmp, "src", "sim")
            os.makedirs(d)
            with open(os.path.join(d, "tagged.cpp"), "w") as f:
                f.write("// burst-lint: allow-file(lock-order) single-lock\n"
                        "int x = 1;\n")
            rc, _, err = run_lint(["--root", tmp, tmp])
            self.assertEqual(rc, 0, err)


class TestBaseline(unittest.TestCase):
    def test_baseline_round_trip(self):
        # --write-baseline grandfathers the lock inversion; the next run is
        # clean and reports the finding as baselined.
        root = os.path.join(FIXTURES_WP, "lock_inversion")
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "baseline.json")
            rc, out, _ = run_lint(
                ["--root", root, "--baseline", baseline,
                 "--write-baseline", root])
            self.assertEqual(rc, 0, out)
            with open(baseline) as f:
                data = json.load(f)
            self.assertEqual(data["schema"], "burst.lint_baseline")
            self.assertEqual(len(data["findings"]), 1)
            entry = data["findings"][0]
            self.assertEqual(entry["rule"], "lock-order")
            self.assertNotIn("line", entry)  # stable key, no line numbers

            rc, out, err = run_lint(
                ["--root", root, "--baseline", baseline, root])
            self.assertEqual(rc, 0, err)
            self.assertIn("1 baselined", out)

    def test_stale_baseline_entry_is_a_violation(self):
        # A baseline entry matching nothing must fail the run, so the file
        # cannot rot after the underlying finding is fixed.
        root = os.path.join(FIXTURES_WP, "lock_sequential")  # clean root
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "baseline.json")
            with open(baseline, "w") as f:
                json.dump({
                    "schema": "burst.lint_baseline", "version": 1,
                    "findings": [{"rule": "lock-order",
                                  "path": "src/sim/gone.cpp",
                                  "key": "lock-cycle:a|b"}],
                }, f)
            rc, _, err = run_lint(
                ["--root", root, "--baseline", baseline, root])
            self.assertEqual(rc, 1, err)
            self.assertIn("stale baseline entry", err)
            self.assertIn("[lint-directive]", err)

    def test_repo_baseline_is_empty(self):
        # The acceptance bar: the real tree carries no grandfathered
        # whole-program findings — everything was fixed or suppressed with a
        # reason at the site.
        path = burst_lint.default_baseline_path(REPO_ROOT)
        with open(path) as f:
            data = json.load(f)
        self.assertEqual(data["findings"], [])


class TestRepoModelCoverage(unittest.TestCase):
    """The ProgramModel over the real tree sees what the PR promises."""

    @classmethod
    def setUpClass(cls):
        cls.model = build_repo_model()

    def test_lock_scope_covers_thread_pool(self):
        fns = {f.name for f in self.model.functions
               if f.path == "src/parallel/thread_pool.cpp"}
        for want in ("ThreadPool::submit", "ThreadPool::wait_idle",
                     "ThreadPool::worker_loop"):
            self.assertIn(want, fns)
        locks = set()
        for f in self.model.functions:
            if f.path == "src/parallel/thread_pool.cpp":
                locks |= f.locks
        self.assertIn("ThreadPool::mutex_", locks)

    def test_lock_scope_covers_socket_transport(self):
        fns = {f.short for f in self.model.functions
               if f.path.startswith("src/comm/socket_transport")}
        # The acceptor/deadline machinery is in view even though the
        # transport synchronizes by thread-join, not mutexes — if someone
        # adds locking there, the analysis picks it up with no config change.
        for want in ("accept_with_deadline", "dial", "recv_bytes"):
            self.assertIn(want, fns)

    def test_lock_scope_covers_serve_engine(self):
        fns = {f.name for f in self.model.functions
               if f.path == "src/serve/engine.cpp"}
        self.assertIn("Engine::run", fns)

    def test_cluster_lock_order_edge_is_modeled(self):
        # barrier_and_sync holds barrier_mutex_ while taking mail_mutex_ —
        # the one genuine nesting in the simulator; it must be in the graph
        # (and, with no reverse edge, must NOT be reported as a cycle).
        edge = ("Cluster::barrier_mutex_", "Cluster::mail_mutex_")
        self.assertIn(edge, self.model.lock_edges)
        self.assertNotIn(
            ("Cluster::mail_mutex_", "Cluster::barrier_mutex_"),
            self.model.lock_edges,
            "reverse edge would be a deadlock report; Cluster::abort's "
            "sequential scopes must not be misread as nesting")

    def test_every_cv_wait_in_tree_has_predicate(self):
        self.assertEqual(
            {"barrier_cv_", "cv_idle_", "cv_work_", "mail_cv_"},
            self.model.cv_names & {"barrier_cv_", "cv_idle_", "cv_work_",
                                   "mail_cv_"})
        findings = [f for f in burst_lint.ANALYSES["lock-order"].check(
            self.model) if "wait" in f.message]
        self.assertEqual(findings, [])

    def test_error_family_is_discovered(self):
        for want in ("Error", "InvariantError", "SnapshotCorruptError",
                     "CommTimeoutError", "DeviceOomError"):
            self.assertIn(want, self.model.error_family)

    def test_include_graph_resolves_repo_includes(self):
        edges = self.model.includes.get("src/serve/engine.cpp", [])
        resolved = {e.resolved for e in edges if e.resolved}
        self.assertIn("src/serve/engine.hpp", resolved)


class TestStripperRegression(unittest.TestCase):
    def test_digit_separator_is_not_a_char_literal(self):
        # 0x50414E53'54525542ull once swallowed the rest of the file as an
        # unterminated char literal, hiding every rule after it.
        code = ("constexpr unsigned long long kMagic = 0x5041'5542ull;\n"
                "void f() { throw 1; }\n")
        stripped = burst_lint.strip_comments_and_strings(code)
        self.assertIn("throw 1", stripped)
        self.assertIn("0x5041'5542ull", stripped)

    def test_char_literals_still_stripped(self):
        stripped = burst_lint.strip_comments_and_strings(
            "char c = 'x'; char nl = '\\n'; wchar_t w = L'y';")
        self.assertNotIn("x", stripped.split("=")[1])
        self.assertNotIn("y", stripped)


if __name__ == "__main__":
    unittest.main(verbosity=2)
