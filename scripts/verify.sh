#!/usr/bin/env bash
# Full verification gate, in order:
#
#   lint      burst-lint over the tree — both tiers: the per-file rules and
#             the whole-program analyses (layer-dag against
#             scripts/lint/layers.json, lock-order, error-flow) — with the
#             JSON RunReport written next to the bench reports and gated on
#             self_check, like every bench; then both lint self-test suites
#             (per-file rules + program analyses).
#   tidy      clang-tidy with the pinned .clang-tidy check list over
#             compile_commands.json (scripts/run_clang_tidy.sh configures
#             the build tree when the database is missing; the gate shows
#             "skip" when clang-tidy is not installed).
#   build     configure + build everything Release with -DBURST_WERROR=ON:
#             the tree must compile warning-clean under
#             -Wall -Wextra -Wshadow -Wconversion -Werror.
#   test      full ctest suite (includes the header-hygiene target and the
#             python gate self-tests), plus an explicit perf-labeled leg.
#   chaos     chaos-labeled tests (ctest -L chaos): the 32-seed injected-
#             failure sweeps over serving and distributed prefill, asserting
#             one typed outcome per request and byte-identical replay.
#   transport transport-labeled tests (ctest -L transport): the conformance
#             suite run over both comm backends (sim + TCP sockets) and the
#             dist_ring_tcp multi-process smoke at 2 and 4 ranks, plus an
#             explicit 4-process example run from this script.
#   asan      ASan+UBSan build (-DBURST_SANITIZE=address,undefined) running
#             the full suite minus slow-labeled tests.
#   quant     quantized-parity leg (ctest -L quant): the dtype conformance
#             suite and the quantized model/serve tests, run explicitly in
#             the Release build and again under ASan+UBSan — the block
#             codecs and dequantizing microkernels do raw byte-stream
#             walks, so parity must also hold with the sanitizers watching.
#   tsan      TSan build (-DBURST_SANITIZE=thread) running the threaded
#             suites: test_thread_pool, test_kernel_determinism,
#             test_serve_engine, test_api_server, test_api_scheduler, and
#             test_transport_conformance (SocketTransport's mesh build runs
#             accept/connect threads; the socket-backed cases put them under
#             TSan).
#   bench     bench fleet with the RunReport self_check gate, then the
#             regression gate against the committed BENCH_baseline.json
#             (gated metrics may not fall more than 10% below baseline).
#
# Usage: scripts/verify.sh [--skip-lint] [--skip-tidy] [--skip-asan]
#                          [--skip-tsan] [--skip-bench] [--skip-perf]
#                          [--skip-chaos] [--skip-transport] [--skip-quant]
# Env:   BUILD_DIR (default build-verify), ASAN_BUILD_DIR (default
#        build-asan), TSAN_BUILD_DIR (default build-tsan), JOBS (default
#        nproc), BURST_REPORT_DIR (default: fresh mktemp -d, removed on exit;
#        set it to keep the lint/bench RunReports).
set -uo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-verify}
ASAN_BUILD_DIR=${ASAN_BUILD_DIR:-build-asan}
TSAN_BUILD_DIR=${TSAN_BUILD_DIR:-build-tsan}
JOBS=${JOBS:-$(nproc)}
RUN_LINT=1
RUN_TIDY=1
RUN_ASAN=1
RUN_TSAN=1
RUN_BENCH=1
RUN_PERF=1
RUN_CHAOS=1
RUN_TRANSPORT=1
RUN_QUANT=1
for arg in "$@"; do
  case "$arg" in
    --skip-lint) RUN_LINT=0 ;;
    --skip-tidy) RUN_TIDY=0 ;;
    --skip-asan) RUN_ASAN=0 ;;
    --skip-tsan) RUN_TSAN=0 ;;
    --skip-bench) RUN_BENCH=0 ;;
    --skip-perf) RUN_PERF=0 ;;
    --skip-chaos) RUN_CHAOS=0 ;;
    --skip-transport) RUN_TRANSPORT=0 ;;
    --skip-quant) RUN_QUANT=0 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

if [[ -n ${BURST_REPORT_DIR:-} ]]; then
  report_dir=$BURST_REPORT_DIR
  mkdir -p "$report_dir"
else
  report_dir=$(mktemp -d)
  trap 'rm -rf "$report_dir"' EXIT
fi

# Per-gate results for the summary table: "pass" / "FAIL" / "skip".
declare -A gate_status
for g in lint tidy build test perf chaos transport asan quant tsan bench; do
  gate_status[$g]=skip
done
overall=0

# run_gate NAME CMD... — record pass/FAIL, keep going so the summary shows
# every gate's outcome, but remember any failure for the final exit code.
run_gate() {
  local name=$1
  shift
  if "$@"; then
    gate_status[$name]=pass
  else
    gate_status[$name]=FAIL
    overall=1
  fi
}

check_run_report() {
  python3 - "$1" "$2" <<'EOF'
import json, sys
path, name = sys.argv[1], sys.argv[2]
try:
    with open(path) as f:
        rep = json.load(f)
except (OSError, json.JSONDecodeError) as e:
    sys.exit(f"FAIL: {name} wrote no parseable RunReport: {e}")
if rep.get("schema") != "burst.run_report" or rep.get("version") != 1:
    sys.exit(f"FAIL: {name} RunReport has wrong schema/version")
if rep.get("self_check") is not True:
    bad = [c["what"] for c in rep.get("checks", []) if not c.get("ok")]
    sys.exit(f"FAIL: {name} self_check is false: {bad}")
EOF
}

# ---- lint ------------------------------------------------------------------
lint_gate() {
  local report="$report_dir/burst_lint.json"
  python3 scripts/lint/burst_lint.py --json "$report" || return 1
  check_run_report "$report" burst_lint || return 1
  python3 scripts/lint/test_burst_lint.py || return 1
  python3 scripts/lint/test_program_analysis.py || return 1
}
if [[ $RUN_LINT -eq 1 ]]; then
  echo "== lint (burst-lint rules + whole-program analyses + self-tests)"
  run_gate lint lint_gate
fi

# ---- clang-tidy (own gate row; "skip" when the tool is not installed) ------
if [[ $RUN_TIDY -eq 1 ]]; then
  if command -v "${CLANG_TIDY:-clang-tidy}" >/dev/null 2>&1; then
    echo "== clang-tidy (pinned check list over compile_commands.json)"
    run_gate tidy scripts/run_clang_tidy.sh "$BUILD_DIR"
  else
    echo "== clang-tidy not installed; tidy gate skipped"
  fi
fi

# ---- build (warning-clean under -Werror) -----------------------------------
build_gate() {
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
        -DBURST_WERROR=ON >/dev/null &&
  cmake --build "$BUILD_DIR" -j "$JOBS"
}
echo "== configure + build (${BUILD_DIR}, Release, -Werror)"
run_gate build build_gate
if [[ ${gate_status[build]} == FAIL ]]; then
  echo "verify: build failed; skipping test/bench gates" >&2
  RUN_BENCH=0
  RUN_PERF=0
else
  echo "== ctest"
  run_gate test ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
  if [[ $RUN_PERF -eq 1 ]]; then
    echo "== perf-labeled tests (ctest -L perf)"
    run_gate perf ctest --test-dir "$BUILD_DIR" --output-on-failure -L perf
  fi
  if [[ $RUN_CHAOS -eq 1 ]]; then
    echo "== chaos-labeled tests (ctest -L chaos)"
    run_gate chaos ctest --test-dir "$BUILD_DIR" --output-on-failure -L chaos
  fi
  if [[ $RUN_TRANSPORT -eq 1 ]]; then
    echo "== transport gate (ctest -L transport + 4-process TCP example)"
    transport_gate() {
      ctest --test-dir "$BUILD_DIR" --output-on-failure -L transport &&
      "$BUILD_DIR"/examples/dist_ring_tcp 4
    }
    run_gate transport transport_gate
  fi
fi

# ---- sanitizers ------------------------------------------------------------
asan_gate() {
  cmake -B "$ASAN_BUILD_DIR" -S . -DBURST_SANITIZE=address,undefined \
        >/dev/null &&
  cmake --build "$ASAN_BUILD_DIR" -j "$JOBS" &&
  ctest --test-dir "$ASAN_BUILD_DIR" --output-on-failure -j "$JOBS" -LE slow
}
if [[ $RUN_ASAN -eq 1 ]]; then
  echo "== ASan+UBSan build + full suite minus slow (${ASAN_BUILD_DIR})"
  run_gate asan asan_gate
fi

# ---- quantized parity (dtype suite, Release + ASan) ------------------------
quant_gate() {
  ctest --test-dir "$BUILD_DIR" --output-on-failure -L quant || return 1
  if [[ $RUN_ASAN -eq 1 && -d $ASAN_BUILD_DIR ]]; then
    ctest --test-dir "$ASAN_BUILD_DIR" --output-on-failure -L quant || return 1
  fi
}
if [[ $RUN_QUANT -eq 1 && ${gate_status[build]} == pass ]]; then
  echo "== quantized-parity leg (ctest -L quant, Release + ASan)"
  run_gate quant quant_gate
fi

tsan_gate() {
  cmake -B "$TSAN_BUILD_DIR" -S . -DBURST_SANITIZE=thread >/dev/null &&
  cmake --build "$TSAN_BUILD_DIR" -j "$JOBS" \
        --target test_thread_pool test_kernel_determinism test_serve_engine \
                 test_api_server test_api_scheduler \
                 test_transport_conformance &&
  ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure -j "$JOBS" \
        -R 'ThreadPool|ParallelFor|Scheduler|KernelDeterminism|ServeEngine|ApiServer|SloEngine|Admission|TransportConformance|SocketTransportSmoke'
}
if [[ $RUN_TSAN -eq 1 ]]; then
  echo "== TSan build + threaded suites (${TSAN_BUILD_DIR})"
  run_gate tsan tsan_gate
fi

# ---- bench fleet + regression gate -----------------------------------------
bench_gate() {
  local fail=0 bench name args report
  for bench in "$BUILD_DIR"/bench/*; do
    [[ -f $bench && -x $bench ]] || continue
    name=$(basename "$bench")
    args=()
    case "$name" in
      # Microbenchmarks: one tiny repetition each; the RunReport gate is
      # what we verify here, not the timings (the regression gate below
      # uses the benches' own best-of-N sections, which ignore min_time).
      bench_micro_*) args=(--benchmark_min_time=0.01) ;;
    esac
    echo "-- $name"
    report="$report_dir/$name.json"
    if ! BURST_RUN_REPORT="$report" "$bench" "${args[@]}" >/dev/null; then
      echo "FAIL: $name exited non-zero" >&2
      fail=1
      continue
    fi
    check_run_report "$report" "$name" || fail=1
  done
  if [[ $RUN_PERF -eq 1 ]]; then
    echo "== bench-regression gate (BENCH_baseline.json)"
    python3 scripts/bench_compare.py BENCH_baseline.json \
      micro_gemm="$report_dir/bench_micro_gemm.json" \
      micro_kernels="$report_dir/bench_micro_kernels.json" \
      serving_slo="$report_dir/bench_serving_slo.json" \
      serving_chaos="$report_dir/bench_serving_chaos.json" || fail=1
  fi
  return $fail
}
if [[ $RUN_BENCH -eq 1 ]]; then
  echo "== bench fleet (RunReport self_check gate)"
  run_gate bench bench_gate
fi

# ---- summary ---------------------------------------------------------------
echo
echo "== verify summary"
printf '   %-9s %s\n' gate result
for g in lint tidy build test perf chaos transport asan quant tsan bench; do
  printf '   %-9s %s\n' "$g" "${gate_status[$g]}"
done
if [[ $overall -ne 0 ]]; then
  echo "verify: FAILED (see table above)" >&2
  exit 1
fi
echo "== verify: all gates passed"
