#!/usr/bin/env bash
# Full verification gate: configure + build (Release, -O3, host ISA), run the
# test suite plus an explicit perf-labeled leg (workspace zero-allocation and
# kernel-determinism suites), run the obs-labeled tests again under
# AddressSanitizer, then run every bench and fail on any RunReport whose
# self_check is false (each bench also exits non-zero on its own failed
# checks, so either signal stops the script). Finally the micro-bench
# RunReports are compared against the committed BENCH_baseline.json: any
# gated metric more than 10% below its baseline value fails the script.
#
# Usage: scripts/verify.sh [--skip-asan] [--skip-bench] [--skip-perf]
# Env:   BUILD_DIR (default build), ASAN_BUILD_DIR (default build-asan),
#        JOBS (default nproc).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
ASAN_BUILD_DIR=${ASAN_BUILD_DIR:-build-asan}
JOBS=${JOBS:-$(nproc)}
RUN_ASAN=1
RUN_BENCH=1
RUN_PERF=1
for arg in "$@"; do
  case "$arg" in
    --skip-asan) RUN_ASAN=0 ;;
    --skip-bench) RUN_BENCH=0 ;;
    --skip-perf) RUN_PERF=0 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== configure + build (${BUILD_DIR}, Release)"
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== ctest"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

if [[ $RUN_PERF -eq 1 ]]; then
  echo "== perf-labeled tests (ctest -L perf)"
  ctest --test-dir "$BUILD_DIR" --output-on-failure -L perf
fi

if [[ $RUN_ASAN -eq 1 ]]; then
  echo "== ASan build + obs-labeled tests (${ASAN_BUILD_DIR})"
  cmake -B "$ASAN_BUILD_DIR" -S . -DBURST_SANITIZE=address >/dev/null
  cmake --build "$ASAN_BUILD_DIR" -j "$JOBS" --target test_obs test_comm_bytes
  ctest --test-dir "$ASAN_BUILD_DIR" --output-on-failure -j "$JOBS" -L obs
fi

if [[ $RUN_BENCH -eq 1 ]]; then
  echo "== bench fleet (RunReport self_check gate)"
  report_dir=$(mktemp -d)
  trap 'rm -rf "$report_dir"' EXIT
  fail=0
  for bench in "$BUILD_DIR"/bench/*; do
    [[ -f $bench && -x $bench ]] || continue
    name=$(basename "$bench")
    args=()
    case "$name" in
      # Microbenchmarks: one tiny repetition each; the RunReport gate is
      # what we verify here, not the timings (the regression gate below
      # uses the benches' own best-of-N sections, which ignore min_time).
      bench_micro_*) args=(--benchmark_min_time=0.01) ;;
    esac
    echo "-- $name"
    report="$report_dir/$name.json"
    if ! BURST_RUN_REPORT="$report" "$bench" "${args[@]}" >/dev/null; then
      echo "FAIL: $name exited non-zero" >&2
      fail=1
      continue
    fi
    python3 - "$report" "$name" <<'EOF' || fail=1
import json, sys
path, name = sys.argv[1], sys.argv[2]
try:
    with open(path) as f:
        rep = json.load(f)
except (OSError, json.JSONDecodeError) as e:
    sys.exit(f"FAIL: {name} wrote no parseable RunReport: {e}")
if rep.get("schema") != "burst.run_report" or rep.get("version") != 1:
    sys.exit(f"FAIL: {name} RunReport has wrong schema/version")
if rep.get("self_check") is not True:
    bad = [c["what"] for c in rep.get("checks", []) if not c.get("ok")]
    sys.exit(f"FAIL: {name} self_check is false: {bad}")
EOF
  done

  if [[ $RUN_PERF -eq 1 ]]; then
    echo "== bench-regression gate (BENCH_baseline.json)"
    python3 scripts/bench_compare.py BENCH_baseline.json \
      micro_gemm="$report_dir/bench_micro_gemm.json" \
      micro_kernels="$report_dir/bench_micro_kernels.json" || fail=1
  fi

  [[ $fail -eq 0 ]] || exit 1
fi

echo "== verify: all gates passed"
