#!/usr/bin/env python3
"""Bench-regression gate: compare RunReport JSONs against BENCH_baseline.json.

Usage:
    bench_compare.py BASELINE.json NAME=REPORT.json [NAME=REPORT.json ...]

Each NAME must appear under "benches" in the baseline. Every baseline metric
with gate=true fails the run when the measured value is more than
tolerance_frac below the committed value (metrics are higher-is-better);
gate=false metrics are printed for information only. Missing gated metrics
fail; entire missing reports fail.

Exit code 0 iff every gated metric passes.
"""

import json
import sys


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    return 1


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2

    try:
        with open(argv[1]) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot load baseline {argv[1]}: {e}")
    if baseline.get("schema") != "burst.bench_baseline" or baseline.get("version") != 1:
        return fail(f"{argv[1]}: wrong baseline schema/version")
    tol = float(baseline.get("tolerance_frac", 0.10))
    benches = baseline.get("benches", {})

    rc = 0
    for pair in argv[2:]:
        name, _, path = pair.partition("=")
        if not path:
            return fail(f"argument '{pair}' is not NAME=REPORT.json")
        spec = benches.get(name)
        if spec is None:
            rc |= fail(f"bench '{name}' not present in baseline")
            continue
        try:
            with open(path) as f:
                report = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            rc |= fail(f"{name}: cannot load report {path}: {e}")
            continue
        measured = {
            m["name"]: m["measured"] for m in report.get("measurements", [])
        }
        for metric, entry in spec.get("metrics", {}).items():
            value = float(entry["value"])
            gated = bool(entry.get("gate", False))
            unit = entry.get("unit", "")
            if metric not in measured:
                if gated:
                    rc |= fail(f"{name}: gated metric '{metric}' missing from report")
                else:
                    print(f"info: {name}.{metric}: not reported")
                continue
            got = float(measured[metric])
            floor = value * (1.0 - tol)
            status = "ok" if got >= floor else "REGRESSION"
            line = (
                f"{name}.{metric}: measured {got:.4g} {unit} "
                f"(baseline {value:.4g}, floor {floor:.4g})"
            )
            if not gated:
                print(f"info: {line}")
            elif got >= floor:
                print(f"pass: {line}")
            else:
                rc |= fail(f"{line} [{status}]")
    if rc == 0:
        print("bench_compare: all gated metrics within tolerance")
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
