#!/usr/bin/env python3
"""Tests for scripts/bench_compare.py — the bench-regression gate.

Covers the contract scripts/verify.sh relies on: exit 0 when every gated
metric is within tolerance, non-zero on a >tolerance regression, a missing
gated metric, a missing report, and a baseline with the wrong schema.
Fixtures are built in a temp dir; registered with CTest as
``bench_compare_selftest``.
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)
import bench_compare  # noqa: E402


def make_baseline(path, value=100.0, gate=True, tolerance=0.10):
    baseline = {
        "schema": "burst.bench_baseline",
        "version": 1,
        "tolerance_frac": tolerance,
        "benches": {
            "micro_gemm": {
                "metrics": {
                    "gflops": {"value": value, "gate": gate, "unit": "GFLOP/s"},
                    "speedup": {"value": 3.0, "gate": False, "unit": "x"},
                }
            }
        },
    }
    with open(path, "w") as f:
        json.dump(baseline, f)


def make_report(path, gflops, include_metric=True):
    measurements = [{"name": "speedup", "measured": 3.2, "unit": "x"}]
    if include_metric:
        measurements.append(
            {"name": "gflops", "measured": gflops, "unit": "GFLOP/s"})
    report = {
        "schema": "burst.run_report",
        "version": 1,
        "kind": "bench",
        "name": "bench_micro_gemm",
        "measurements": measurements,
        "self_check": True,
    }
    with open(path, "w") as f:
        json.dump(report, f)


def run_compare(argv):
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        rc = bench_compare.main(["bench_compare.py"] + argv)
    return rc, out.getvalue(), err.getvalue()


class TestBenchCompare(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.baseline = os.path.join(self.tmp.name, "baseline.json")
        self.report = os.path.join(self.tmp.name, "report.json")

    def tearDown(self):
        self.tmp.cleanup()

    def test_pass_within_tolerance(self):
        make_baseline(self.baseline, value=100.0)
        make_report(self.report, gflops=95.0)  # -5% > the -10% floor
        rc, out, _ = run_compare([self.baseline, f"micro_gemm={self.report}"])
        self.assertEqual(rc, 0, out)
        self.assertIn("pass: micro_gemm.gflops", out)
        self.assertIn("all gated metrics within tolerance", out)

    def test_pass_exactly_at_floor(self):
        make_baseline(self.baseline, value=100.0)
        make_report(self.report, gflops=90.0)  # exactly the floor passes
        rc, _, _ = run_compare([self.baseline, f"micro_gemm={self.report}"])
        self.assertEqual(rc, 0)

    def test_fail_on_regression_beyond_tolerance(self):
        make_baseline(self.baseline, value=100.0)
        make_report(self.report, gflops=85.0)  # -15% < the -10% floor
        rc, _, err = run_compare([self.baseline, f"micro_gemm={self.report}"])
        self.assertNotEqual(rc, 0)
        self.assertIn("REGRESSION", err)

    def test_ungated_metric_never_fails(self):
        make_baseline(self.baseline, value=100.0, gate=False)
        make_report(self.report, gflops=1.0)  # catastrophic but informational
        rc, out, _ = run_compare([self.baseline, f"micro_gemm={self.report}"])
        self.assertEqual(rc, 0)
        self.assertIn("info: micro_gemm.gflops", out)

    def test_fail_on_missing_gated_metric(self):
        make_baseline(self.baseline, value=100.0)
        make_report(self.report, gflops=0.0, include_metric=False)
        rc, _, err = run_compare([self.baseline, f"micro_gemm={self.report}"])
        self.assertNotEqual(rc, 0)
        self.assertIn("missing from report", err)

    def test_fail_on_missing_report_file(self):
        make_baseline(self.baseline, value=100.0)
        rc, _, err = run_compare(
            [self.baseline, f"micro_gemm={self.tmp.name}/nonexistent.json"])
        self.assertNotEqual(rc, 0)
        self.assertIn("cannot load report", err)

    def test_fail_on_unknown_bench_name(self):
        make_baseline(self.baseline, value=100.0)
        make_report(self.report, gflops=100.0)
        rc, _, err = run_compare([self.baseline, f"who_dis={self.report}"])
        self.assertNotEqual(rc, 0)
        self.assertIn("not present in baseline", err)

    def test_fail_on_wrong_baseline_schema(self):
        with open(self.baseline, "w") as f:
            json.dump({"schema": "something.else", "version": 7}, f)
        make_report(self.report, gflops=100.0)
        rc, _, err = run_compare([self.baseline, f"micro_gemm={self.report}"])
        self.assertNotEqual(rc, 0)
        self.assertIn("schema", err)

    def test_custom_tolerance_respected(self):
        make_baseline(self.baseline, value=100.0, tolerance=0.25)
        make_report(self.report, gflops=80.0)  # -20%, inside the wider band
        rc, _, _ = run_compare([self.baseline, f"micro_gemm={self.report}"])
        self.assertEqual(rc, 0)

    def test_committed_baseline_parses(self):
        """The repo's own BENCH_baseline.json satisfies the schema."""
        committed = os.path.join(os.path.dirname(HERE), "BENCH_baseline.json")
        with open(committed) as f:
            baseline = json.load(f)
        self.assertEqual(baseline["schema"], "burst.bench_baseline")
        self.assertEqual(baseline["version"], 1)
        self.assertTrue(baseline["benches"])


if __name__ == "__main__":
    unittest.main(verbosity=2)
