#include "api/server.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

#include "api/parser.hpp"

namespace burst::api {

ApiServer::ApiServer(const model::ModelConfig& model,
                     const model::ModelWeights& weights, ApiServerConfig cfg)
    : model_(model), weights_(weights), cfg_(std::move(cfg)) {
  // Intern configured tenants first so their ids are stable regardless of
  // which tenant's request happens to arrive first.
  for (const auto& [name, weight] : cfg_.tenant_weights) {
    const std::int64_t id = tenant_id(name);
    tenant_weight_table_[static_cast<std::size_t>(id)] = weight;
  }
}

std::int64_t ApiServer::tenant_id(const std::string& name) {
  const auto it = tenant_ids_.find(name);
  if (it != tenant_ids_.end()) {
    return it->second;
  }
  const auto id = static_cast<std::int64_t>(tenant_names_.size());
  tenant_ids_.emplace(name, id);
  tenant_names_.push_back(name);
  tenant_weight_table_.push_back(1.0);
  return id;
}

std::int64_t ApiServer::submit(double arrival_s, const std::string& body,
                               ResponseSink* sink) {
  CompletionRequest request;
  ApiError err;
  if (!parse_completion_request(body, &request, &err)) {
    ++invalid_;
    if (sink != nullptr) {
      sink->on_error(-1, err);
    }
    return -1;
  }
  return submit(arrival_s, std::move(request), sink);
}

std::int64_t ApiServer::submit(double arrival_s, CompletionRequest request,
                               ResponseSink* sink) {
  // Model-dependent validation the parser cannot do: token ids vs vocab.
  const auto reject = [&](const std::string& message) {
    ++invalid_;
    if (sink != nullptr) {
      ApiError err;
      err.status = 400;
      err.code = burst::ErrorCode::kInvalidRequest;
      err.message = message;
      sink->on_error(-1, err);
    }
    return std::int64_t{-1};
  };
  if (arrival_s < 0.0) {
    return reject("arrival time must be >= 0");
  }
  if (request.prompt.empty()) {
    return reject("\"prompt\" must not be empty");
  }
  if (request.max_tokens < 1) {
    return reject("\"max_tokens\" must be >= 1");
  }
  if (request.tenant.empty() || request.tenant.size() > 64) {
    return reject("\"tenant\" must be 1..64 characters");
  }
  for (const std::int64_t tok : request.prompt) {
    if (tok < 0 || tok >= model_.vocab) {
      std::ostringstream os;
      os << "prompt token " << tok << " outside vocab [0, " << model_.vocab
         << ")";
      return reject(os.str());
    }
  }

  Accepted a;
  a.request.prompt = std::move(request.prompt);
  a.request.max_new_tokens = request.max_tokens;
  a.request.arrival_s = arrival_s;
  a.request.tenant = tenant_id(request.tenant);
  a.request.priority = static_cast<int>(request.priority);
  a.request.ttft_target_s = request.ttft_slo_s > 0.0
                                ? request.ttft_slo_s
                                : std::numeric_limits<double>::infinity();
  a.request.timeout_s = request.timeout_s > 0.0
                            ? request.timeout_s
                            : std::numeric_limits<double>::infinity();
  a.request.tpot_target_s = request.tpot_slo_s > 0.0
                                ? request.tpot_slo_s
                                : std::numeric_limits<double>::infinity();
  // Engine ids are assignment-order-sequential, so the id is known now and
  // the caller can correlate streamed events before run() happens.
  a.request.id = static_cast<std::int64_t>(accepted_.size());
  a.sink = sink;
  accepted_.push_back(std::move(a));
  return accepted_.back().request.id;
}

ApiServer::Report ApiServer::run() {
  serve::EngineConfig ec = cfg_.engine;
  ec.tenant_weights = tenant_weight_table_;
  serve::Engine engine(model_, weights_, ec);
  for (const auto& a : accepted_) {
    serve::Request r = a.request;
    r.id = -1;  // the engine re-assigns; assignment order preserves our ids
    engine.add_request(std::move(r));
  }

  Report report;
  report.invalid = invalid_;
  if (accepted_.empty()) {
    return report;
  }
  serve::ServeReport serve_report;
  const bool resilient = !cfg_.resilience.faults.empty() ||
                         cfg_.resilience.checkpoint_every > 0;
  if (resilient) {
    serve::ServeResilienceConfig rc = cfg_.resilience;
    rc.flops_per_s = cfg_.flops_per_s;
    if (rc.trace == nullptr) {
      rc.trace = cfg_.engine.trace;
    }
    serve::ResilientServeReport rrep = serve::serve_with_recovery(engine, rc);
    serve_report = std::move(rrep.report);
    report.recoveries = std::move(rrep.recoveries);
  } else {
    serve_report =
        run_on_single_device(engine, cfg_.flops_per_s, cfg_.engine.trace);
  }
  report.metrics = serve_report.metrics;
  report.results = std::move(serve_report.results);

  // Replay outcomes as one virtual-time-ordered stream. kind breaks ties so
  // a request's final response lands after its last token at the same
  // instant (0 = token, 1 = completion/error).
  struct Event {
    double time_s = 0.0;
    int kind = 0;
    std::int64_t request_id = -1;
    std::int64_t index = 0;
  };
  std::vector<Event> events;
  for (const auto& r : report.results) {
    switch (r.outcome) {
      case serve::Outcome::kRejected:
        events.push_back({std::max(r.arrival_s, 0.0), 1, r.id, 0});
        ++report.rejected;
        continue;
      case serve::Outcome::kFailedFast:
        // finish_s is the arrival instant: a breaker 503 is immediate.
        events.push_back({std::max(r.finish_s, 0.0), 1, r.id, 0});
        ++report.failed_fast;
        continue;
      case serve::Outcome::kTimedOut:
        ++report.timed_out;
        break;
      case serve::Outcome::kShed:
        ++report.shed;
        break;
      case serve::Outcome::kCompleted:
        ++report.completed;
        break;
      case serve::Outcome::kPending:
        break;
    }
    // Streamed outcomes: any tokens generated before the terminal event are
    // replayed first (a timed-out request delivers its partial stream, then
    // the 504), the terminal response lands at finish_s.
    for (std::size_t j = 0; j < r.token_times_s.size(); ++j) {
      events.push_back(
          {r.token_times_s[j], 0, r.id, static_cast<std::int64_t>(j)});
    }
    events.push_back({r.finish_s, 1, r.id, 0});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time_s != b.time_s) {
      return a.time_s < b.time_s;
    }
    if (a.kind != b.kind) {
      return a.kind < b.kind;
    }
    if (a.request_id != b.request_id) {
      return a.request_id < b.request_id;
    }
    return a.index < b.index;
  });

  for (const Event& ev : events) {
    const auto slot = static_cast<std::size_t>(ev.request_id);
    ResponseSink* sink = accepted_[slot].sink;
    if (sink == nullptr) {
      continue;
    }
    const serve::RequestResult& r = report.results[slot];
    if (ev.kind == 0) {
      TokenEvent te;
      te.request_id = r.id;
      te.index = ev.index;
      te.token = r.generated[static_cast<std::size_t>(ev.index)];
      te.time_s = ev.time_s;
      sink->on_token(te);
      continue;
    }
    if (r.outcome != serve::Outcome::kCompleted) {
      ApiError err;
      err.status = serve::outcome_http_status(r.outcome);
      std::ostringstream os;
      switch (r.outcome) {
        case serve::Outcome::kRejected:
          err.code = burst::ErrorCode::kAdmissionRejected;
          os << "admission control rejected request " << r.id << ": "
             << serve::reject_reason_name(r.reject_reason);
          break;
        case serve::Outcome::kTimedOut:
          err.code = burst::ErrorCode::kDeadlineExceeded;
          os << "request " << r.id << " exceeded its deadline after "
             << r.generated.size() << " tokens";
          break;
        case serve::Outcome::kShed:
          err.code = burst::ErrorCode::kOverloaded;
          os << "request " << r.id << " shed under overload";
          break;
        case serve::Outcome::kFailedFast:
          err.code = burst::ErrorCode::kRecoveryInProgress;
          os << "request " << r.id
             << " failed fast: engine recovery in progress";
          break;
        default:
          err.code = burst::ErrorCode::kUnknown;
          os << "request " << r.id << " resolved to "
             << serve::outcome_name(r.outcome);
          break;
      }
      err.message = os.str();
      sink->on_error(r.id, err);
      continue;
    }
    CompletionResponse resp;
    resp.request_id = r.id;
    resp.tenant = tenant_name(r.tenant);
    resp.tokens = r.generated;
    resp.usage.prompt_tokens =
        static_cast<std::int64_t>(accepted_[slot].request.prompt.size());
    resp.usage.completion_tokens = static_cast<std::int64_t>(r.generated.size());
    resp.arrival_s = r.arrival_s;
    resp.first_token_s = r.first_token_s;
    resp.finish_s = r.finish_s;
    sink->on_complete(resp);
  }
  return report;
}

}  // namespace burst::api
