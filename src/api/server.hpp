// In-process API server: the production front door over serve::Engine.
//
// Requests come in through submit() — either a raw JSON body (what a socket
// backend would hand over after framing) or an already-typed
// CompletionRequest — stamped with a virtual-clock arrival time and bound to
// a ResponseSink, the connection abstraction: a real HTTP/socket transport
// later only has to implement the three sink callbacks and feed bodies in
// arrival order (ROADMAP item 4's Transport work slots in exactly there).
//
// run() drives every accepted request through the engine on one simulated
// device and then replays the outcome to the sinks as a single virtual-time-
// ordered stream: TokenEvents as each token completes, one
// CompletionResponse per finished request, and ApiErrors (HTTP-style 429
// with burst::ErrorCode::kAdmissionRejected) for requests the admission
// layer shed. Everything is deterministic in (workload, config): two runs
// of the same server produce byte-identical streams.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "api/types.hpp"
#include "model/config.hpp"
#include "model/transformer.hpp"
#include "serve/engine.hpp"
#include "serve/resilience.hpp"

namespace burst::api {

/// Connection-side half of the server: where responses get delivered. A
/// transport backend implements this against its wire; tests and the demo
/// use CollectingSink. Callbacks run during ApiServer::run(), already
/// ordered by virtual event time.
class ResponseSink {
 public:
  virtual ~ResponseSink() = default;
  virtual void on_token(const TokenEvent& event) = 0;
  virtual void on_complete(const CompletionResponse& response) = 0;
  /// `request_id` is -1 for parse/validation errors (no request existed).
  virtual void on_error(std::int64_t request_id, const ApiError& error) = 0;
};

/// Records everything it sees, in delivery order.
class CollectingSink : public ResponseSink {
 public:
  void on_token(const TokenEvent& event) override {
    tokens.push_back(event);
  }
  void on_complete(const CompletionResponse& response) override {
    completions.push_back(response);
  }
  void on_error(std::int64_t request_id, const ApiError& error) override {
    errors.emplace_back(request_id, error);
  }

  std::vector<TokenEvent> tokens;
  std::vector<CompletionResponse> completions;
  std::vector<std::pair<std::int64_t, ApiError>> errors;
};

struct ApiServerConfig {
  /// Engine + scheduler policy. tenant_weights inside is overwritten by the
  /// server from `tenant_weights` below (names, not dense ids).
  serve::EngineConfig engine;
  /// Simulated device compute rate for run().
  double flops_per_s = 100e12;
  /// Weighted-fair share per tenant name; unlisted tenants weigh 1.0.
  std::vector<std::pair<std::string, double>> tenant_weights;
  /// Fault tolerance: when the fault plan is non-empty or checkpointing is
  /// on, run() routes through serve::serve_with_recovery — crash faults are
  /// recovered from the newest checkpoint and surfaced in Report::recoveries
  /// (flops_per_s and trace are taken from this server config). A default
  /// ServeResilienceConfig keeps the exact fault-free single-device path.
  serve::ServeResilienceConfig resilience;
};

class ApiServer {
 public:
  ApiServer(const model::ModelConfig& model, const model::ModelWeights& weights,
            ApiServerConfig cfg);

  /// Raw-body ingress: parse + validate, then accept. Parse/validation
  /// failures are delivered to `sink->on_error(-1, ...)` immediately and
  /// return -1; accepted requests return their id. `sink` may be null
  /// (fire-and-forget).
  std::int64_t submit(double arrival_s, const std::string& body,
                      ResponseSink* sink);

  /// Typed ingress (the load generator's path — no JSON round trip).
  std::int64_t submit(double arrival_s, CompletionRequest request,
                      ResponseSink* sink);

  struct Report {
    serve::ServeMetrics metrics;
    /// Engine-level per-request records, sorted by id.
    std::vector<serve::RequestResult> results;
    std::int64_t completed = 0;
    std::int64_t rejected = 0;  // admission control (429s delivered)
    std::int64_t invalid = 0;   // parse/validation failures (400s delivered)
    std::int64_t timed_out = 0;    // deadline cancellations (504s delivered)
    std::int64_t shed = 0;         // load-shed drops (503s delivered)
    std::int64_t failed_fast = 0;  // breaker fast-fails (503s delivered)
    /// Crash-recovery episodes when resilience was on (empty otherwise).
    std::vector<serve::ServeRecoveryEvent> recoveries;
  };

  /// Runs every accepted request to completion on one simulated device and
  /// streams the outcome to the sinks in virtual-time order. Repeatable:
  /// each call replays the same accepted workload from scratch (fresh
  /// engine, fresh clock), so two runs are byte-identical.
  Report run();

  /// Interns a tenant name to the dense id the scheduler sees.
  std::int64_t tenant_id(const std::string& name);
  const std::string& tenant_name(std::int64_t id) const {
    return tenant_names_.at(static_cast<std::size_t>(id));
  }
  std::int64_t num_tenants() const {
    return static_cast<std::int64_t>(tenant_names_.size());
  }

 private:
  struct Accepted {
    serve::Request request;  // id assigned at run() admission into the engine
    ResponseSink* sink = nullptr;
  };

  const model::ModelConfig model_;
  const model::ModelWeights& weights_;
  ApiServerConfig cfg_;
  std::map<std::string, std::int64_t> tenant_ids_;
  std::vector<std::string> tenant_names_;
  std::vector<double> tenant_weight_table_;
  std::vector<Accepted> accepted_;
  std::int64_t invalid_ = 0;
};

}  // namespace burst::api
