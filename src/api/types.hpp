// OpenAI-style typed request/response surface for the serving front door.
//
// The wire shapes mirror a completions API: a CompletionRequest carries the
// tenant, a priority class, the prompt (token ids — tokenization is outside
// this repo's scope), max_tokens, and an optional TTFT SLO; the server
// answers with streamed TokenEvents followed by one CompletionResponse with
// usage accounting, or an ApiError carrying an HTTP-style status plus the
// stable burst::ErrorCode the RunReport schema serializes.
//
// Everything is timestamped on the simulated device's virtual clock
// (sim/clock.hpp), never the host's, so an API trace is a deterministic
// function of the workload — the same property the engine's latency
// percentiles are built on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/error.hpp"

namespace burst::api {

/// Priority classes, ordered: higher values are served first by the
/// SLO-aware scheduler (serve::BatchPolicy::kSlo).
enum class Priority : int {
  kBatch = 0,        // throughput-oriented background work
  kStandard = 1,     // default
  kInteractive = 2,  // latency-sensitive, tightest TTFT targets
};

const char* priority_name(Priority p);

/// Parses "batch" / "standard" / "interactive"; returns false on anything
/// else (the caller turns that into a 400).
bool priority_from_name(const std::string& name, Priority* out);

struct CompletionRequest {
  /// Tenant name; the server interns it to a dense id for the scheduler's
  /// per-tenant weighted-fair queues.
  std::string tenant = "default";
  Priority priority = Priority::kStandard;
  /// Prompt as token ids (must be non-empty and < model vocab).
  std::vector<std::int64_t> prompt;
  std::int64_t max_tokens = 16;
  /// Time-to-first-token SLO in seconds; <= 0 means no target.
  double ttft_slo_s = 0.0;
  /// Wall deadline in seconds from arrival; <= 0 defers to the engine's
  /// default. Past it the request resolves as a typed 504.
  double timeout_s = 0.0;
  /// Per-output-token SLO in seconds (decode TPOT); <= 0 means no target.
  /// Hopelessly missed TPOT deadlines degrade the request to a 504.
  double tpot_slo_s = 0.0;
};

/// One streamed generation token (server-sent-event equivalent).
struct TokenEvent {
  std::int64_t request_id = -1;
  std::int64_t index = 0;  // 0-based position in the generated sequence
  std::int64_t token = -1;
  double time_s = 0.0;  // virtual-clock completion time of this token
};

struct Usage {
  std::int64_t prompt_tokens = 0;
  std::int64_t completion_tokens = 0;
  std::int64_t total_tokens() const { return prompt_tokens + completion_tokens; }
};

struct CompletionResponse {
  std::int64_t request_id = -1;
  std::string tenant;
  std::vector<std::int64_t> tokens;
  /// "length" is the only finish reason today (no stop-token support yet).
  std::string finish_reason = "length";
  Usage usage;
  double arrival_s = 0.0;
  double first_token_s = 0.0;
  double finish_s = 0.0;
  double ttft_s() const { return first_token_s - arrival_s; }
};

/// HTTP-style error: status + the stable burst::ErrorCode + human message.
/// 400 = parse/validation failure, 429 = admission control shed the
/// request, 503 = overloaded (load shed) or recovering (circuit breaker),
/// 504 = virtual-time deadline exceeded.
struct ApiError {
  int status = 500;
  burst::ErrorCode code = burst::ErrorCode::kUnknown;
  std::string message;
};

}  // namespace burst::api
