#include "api/loadgen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/rng.hpp"

namespace burst::api {

namespace {

std::int64_t clamped_lognormal(tensor::Rng& rng, double log_mean,
                               double log_sigma, std::int64_t lo,
                               std::int64_t hi) {
  const double v = std::exp(log_mean + log_sigma * rng.next_gaussian());
  const auto n = static_cast<std::int64_t>(std::llround(v));
  return std::clamp(n, lo, hi);
}

}  // namespace

LoadGen::LoadGen(LoadGenConfig cfg) : cfg_(cfg) {
  if (cfg_.requests < 0 || cfg_.tenants < 1 || cfg_.rate_rps <= 0.0) {
    throw std::invalid_argument(
        "LoadGenConfig: need requests >= 0, tenants >= 1, rate_rps > 0");
  }
  if (cfg_.prompt_min < 1 || cfg_.prompt_max < cfg_.prompt_min ||
      cfg_.output_min < 1 || cfg_.output_max < cfg_.output_min) {
    throw std::invalid_argument("LoadGenConfig: bad length bounds");
  }
  if (cfg_.p_interactive < 0.0 || cfg_.p_batch < 0.0 ||
      cfg_.p_interactive + cfg_.p_batch > 1.0) {
    throw std::invalid_argument("LoadGenConfig: bad priority mix");
  }
  // Zipf CDF over tenant ids: p(k) ~ 1 / (k+1)^s.
  tenant_cdf_.resize(static_cast<std::size_t>(cfg_.tenants));
  double total = 0.0;
  for (std::size_t k = 0; k < tenant_cdf_.size(); ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), cfg_.tenant_zipf_s);
    tenant_cdf_[k] = total;
  }
  for (auto& c : tenant_cdf_) {
    c /= total;
  }
}

std::vector<GeneratedRequest> LoadGen::generate() const {
  tensor::Rng rng(cfg_.seed);
  std::vector<GeneratedRequest> trace;
  trace.reserve(static_cast<std::size_t>(cfg_.requests));
  double now = 0.0;
  bool bursting = false;
  for (std::int64_t i = 0; i < cfg_.requests; ++i) {
    // MMPP arrival: exponential gap at the current state's rate, then a
    // chance to flip state. Draw order is fixed — never reorder these calls,
    // the stream layout is part of the trace format.
    const double rate = bursting ? cfg_.rate_rps * cfg_.burst_rate_multiplier
                                 : cfg_.rate_rps;
    // Inverse-CDF exponential; 1 - u keeps the argument in (0, 1].
    now += -std::log(1.0 - rng.next_uniform()) / rate;
    const double flip = rng.next_uniform();
    bursting = bursting ? (flip >= cfg_.burst_exit_prob)
                        : (flip < cfg_.burst_start_prob);

    GeneratedRequest r;
    r.arrival_s = now;
    const double tu = rng.next_uniform();
    r.tenant = static_cast<std::int64_t>(
        std::lower_bound(tenant_cdf_.begin(), tenant_cdf_.end(), tu) -
        tenant_cdf_.begin());
    r.tenant = std::min(r.tenant, cfg_.tenants - 1);
    r.prompt_len = clamped_lognormal(rng, cfg_.prompt_log_mean,
                                     cfg_.prompt_log_sigma, cfg_.prompt_min,
                                     cfg_.prompt_max);
    r.max_tokens = clamped_lognormal(rng, cfg_.output_log_mean,
                                     cfg_.output_log_sigma, cfg_.output_min,
                                     cfg_.output_max);
    const double pu = rng.next_uniform();
    if (pu < cfg_.p_interactive) {
      r.priority = Priority::kInteractive;
      r.ttft_slo_s = cfg_.ttft_slo_interactive_s;
    } else if (pu < cfg_.p_interactive + cfg_.p_batch) {
      r.priority = Priority::kBatch;
      r.ttft_slo_s = cfg_.ttft_slo_batch_s;
    } else {
      r.priority = Priority::kStandard;
      r.ttft_slo_s = cfg_.ttft_slo_standard_s;
    }
    r.prompt_seed = rng.next_u64();
    trace.push_back(r);
  }
  return trace;
}

std::vector<std::int64_t> LoadGen::materialize_prompt(std::uint64_t seed,
                                                      std::int64_t len,
                                                      std::int64_t vocab) {
  tensor::Rng rng(seed);
  std::vector<std::int64_t> prompt(static_cast<std::size_t>(len));
  for (auto& tok : prompt) {
    tok = rng.next_index(vocab);
  }
  return prompt;
}

double jain_fairness_index(const std::vector<double>& xs) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (xs.empty() || sum_sq <= 0.0) {
    return 0.0;
  }
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

}  // namespace burst::api
