// Request parsing and validation for the API front door.
//
// The wire format is a strict subset of JSON — one object with the typed
// fields of CompletionRequest ("tenant", "priority", "prompt", "max_tokens",
// "ttft_slo_ms"). Anything else (unknown keys, wrong value types, trailing
// garbage) is a typed 400 carrying burst::ErrorCode::kInvalidRequest, so a
// client sees the same stable code in the HTTP-style error as a RunReport
// records. Parsing never throws: malformed input is data, not an exception.
#pragma once

#include <string>

#include "api/types.hpp"

namespace burst::api {

/// Parses and validates a completion-request body. On success fills `out`
/// and returns true. On failure returns false and fills `err` with a
/// 400/kInvalidRequest ApiError whose message names the offending field.
/// Validation only covers the request shape; model-dependent checks (token
/// ids vs vocab) happen at submission, where the server knows the model.
bool parse_completion_request(const std::string& body, CompletionRequest* out,
                              ApiError* err);

/// JSON renderings of the response types (what a socket backend would put
/// on the wire; the demo and tests use them for golden output).
std::string to_json(const CompletionResponse& r);
std::string to_json(const ApiError& e);
std::string to_json(const TokenEvent& e);

}  // namespace burst::api
