// Trace-driven load generator for the serving front door.
//
// Models the statistics production API traffic actually has, not the
// uniform workloads toy benches use:
//
//   * Open-loop arrivals — requests arrive on a schedule independent of the
//     server's progress (a closed loop hides overload, because a slow server
//     throttles its own offered load). The arrival process is a two-state
//     MMPP: a calm Poisson process that occasionally jumps to a burst state
//     with `burst_rate_multiplier`× the rate, giving the bursty arrivals the
//     admission-control and SLO machinery exist for.
//   * Heavy-tailed sizes — prompt and output lengths are lognormal (clamped
//     to [min, max]), matching the long-tail length distributions reported
//     for production LLM traces; mean >> median, so a token-budget scheduler
//     sees rare huge requests among many small ones.
//   * Skewed tenancy — tenant identity is Zipf-distributed over `tenants`
//     simulated tenants (a few heavy hitters, a long tail of occasional
//     users), which is what makes weighted-fair queueing measurable.
//
// Everything derives from one tensor::Rng stream: the same LoadGenConfig
// always generates byte-identical workloads, on any machine.
#pragma once

#include <cstdint>
#include <vector>

#include "api/types.hpp"

namespace burst::api {

struct LoadGenConfig {
  std::uint64_t seed = 2025;
  std::int64_t requests = 256;
  /// Mean arrival rate in the calm state, requests per virtual second.
  double rate_rps = 100.0;
  /// Burst state arrival rate = rate_rps * burst_rate_multiplier.
  double burst_rate_multiplier = 8.0;
  /// Per-arrival probability of entering / leaving the burst state.
  double burst_start_prob = 0.05;
  double burst_exit_prob = 0.25;
  /// Number of simulated tenants; identity ~ Zipf(tenant_zipf_s).
  std::int64_t tenants = 1000;
  double tenant_zipf_s = 1.1;
  /// Lognormal prompt length: exp(N(log_mean, log_sigma^2)), clamped.
  double prompt_log_mean = 3.7;  // median ~40 tokens
  double prompt_log_sigma = 0.6;
  std::int64_t prompt_min = 4;
  std::int64_t prompt_max = 512;
  /// Lognormal output length, clamped.
  double output_log_mean = 2.3;  // median ~10 tokens
  double output_log_sigma = 0.7;
  std::int64_t output_min = 1;
  std::int64_t output_max = 256;
  /// Priority mix; the remainder is kStandard.
  double p_interactive = 0.2;
  double p_batch = 0.3;
  /// TTFT SLO attached per priority class; <= 0 means no target.
  double ttft_slo_interactive_s = 0.0;
  double ttft_slo_standard_s = 0.0;
  double ttft_slo_batch_s = 0.0;
};

/// One generated request, pre-tokenization: the prompt is materialized
/// lazily from `prompt_seed` so traces stay cheap to generate and compare.
struct GeneratedRequest {
  double arrival_s = 0.0;
  std::int64_t tenant = 0;  // in [0, cfg.tenants)
  Priority priority = Priority::kStandard;
  std::int64_t prompt_len = 0;
  std::int64_t max_tokens = 0;
  double ttft_slo_s = 0.0;  // <= 0 means no target
  std::uint64_t prompt_seed = 0;
};

class LoadGen {
 public:
  explicit LoadGen(LoadGenConfig cfg);

  /// The full trace, sorted by arrival time. Deterministic in cfg.seed.
  std::vector<GeneratedRequest> generate() const;

  /// Expands a GeneratedRequest's prompt into concrete token ids.
  static std::vector<std::int64_t> materialize_prompt(std::uint64_t seed,
                                                      std::int64_t len,
                                                      std::int64_t vocab);

  const LoadGenConfig& config() const { return cfg_; }

 private:
  LoadGenConfig cfg_;
  std::vector<double> tenant_cdf_;  // Zipf CDF over tenant ids
};

/// Jain's fairness index over per-entity allocations:
/// (sum x)^2 / (n * sum x^2). 1.0 = perfectly equal, 1/n = one entity owns
/// everything. Empty or all-zero input returns 0.
double jain_fairness_index(const std::vector<double>& xs);

}  // namespace burst::api
