#include "api/parser.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "obs/report.hpp"

namespace burst::api {

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kBatch:
      return "batch";
    case Priority::kStandard:
      return "standard";
    case Priority::kInteractive:
      return "interactive";
  }
  return "?";
}

bool priority_from_name(const std::string& name, Priority* out) {
  if (name == "batch") {
    *out = Priority::kBatch;
  } else if (name == "standard") {
    *out = Priority::kStandard;
  } else if (name == "interactive") {
    *out = Priority::kInteractive;
  } else {
    return false;
  }
  return true;
}

namespace {

// Hand-rolled scanner for the strict JSON subset the API accepts: one
// object of string keys mapping to strings, numbers, or arrays of numbers.
// Tracks position for error messages; never throws.
class Scanner {
 public:
  explicit Scanner(const std::string& s) : s_(s) {}

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool eof() {
    skip_ws();
    return pos_ >= s_.size();
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  std::size_t pos() const { return pos_; }

  /// JSON string with the common escapes; no \uXXXX (token-id payloads
  /// never need it, and rejecting it keeps the parser honest about scope).
  bool string(std::string* out) {
    if (!consume('"')) {
      return false;
    }
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= s_.size()) {
          return false;
        }
        const char e = s_[pos_++];
        switch (e) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          default:
            return false;
        }
        continue;
      }
      out->push_back(c);
    }
    return false;  // unterminated
  }

  bool number(double* out) {
    skip_ws();
    const char* begin = s_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin || !std::isfinite(v)) {
      return false;
    }
    pos_ += static_cast<std::size_t>(end - begin);
    *out = v;
    return true;
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
};

bool fail(ApiError* err, const std::string& message) {
  err->status = 400;
  err->code = burst::ErrorCode::kInvalidRequest;
  err->message = message;
  return false;
}

bool as_int(double v, std::int64_t* out) {
  if (v != std::floor(v) || std::abs(v) > 9e15) {
    return false;
  }
  *out = static_cast<std::int64_t>(v);
  return true;
}

}  // namespace

bool parse_completion_request(const std::string& body, CompletionRequest* out,
                              ApiError* err) {
  *out = CompletionRequest{};
  Scanner sc(body);
  if (!sc.consume('{')) {
    return fail(err, "request body must be a JSON object");
  }
  bool saw_prompt = false;
  bool first = true;
  while (true) {
    if (sc.consume('}')) {
      break;
    }
    if (!first && !sc.consume(',')) {
      return fail(err, "expected ',' or '}' in request object");
    }
    first = false;
    std::string key;
    if (!sc.string(&key)) {
      return fail(err, "expected a string key in request object");
    }
    if (!sc.consume(':')) {
      return fail(err, "expected ':' after key \"" + key + "\"");
    }
    if (key == "tenant") {
      std::string v;
      if (!sc.string(&v)) {
        return fail(err, "\"tenant\" must be a string");
      }
      if (v.empty() || v.size() > 64) {
        return fail(err, "\"tenant\" must be 1..64 characters");
      }
      out->tenant = v;
    } else if (key == "priority") {
      std::string v;
      if (!sc.string(&v)) {
        return fail(err, "\"priority\" must be a string");
      }
      if (!priority_from_name(v, &out->priority)) {
        return fail(err, "\"priority\" must be one of batch|standard|"
                         "interactive, got \"" + v + "\"");
      }
    } else if (key == "prompt") {
      if (!sc.consume('[')) {
        return fail(err, "\"prompt\" must be an array of token ids");
      }
      out->prompt.clear();
      if (!sc.consume(']')) {
        while (true) {
          double v = 0.0;
          std::int64_t tok = 0;
          if (!sc.number(&v) || !as_int(v, &tok) || tok < 0) {
            return fail(err, "\"prompt\" entries must be non-negative "
                             "integer token ids");
          }
          out->prompt.push_back(tok);
          if (sc.consume(']')) {
            break;
          }
          if (!sc.consume(',')) {
            return fail(err, "expected ',' or ']' in \"prompt\"");
          }
        }
      }
      saw_prompt = true;
    } else if (key == "max_tokens") {
      double v = 0.0;
      std::int64_t n = 0;
      if (!sc.number(&v) || !as_int(v, &n)) {
        return fail(err, "\"max_tokens\" must be an integer");
      }
      if (n < 1 || n > 1 << 20) {
        return fail(err, "\"max_tokens\" must be in [1, 2^20]");
      }
      out->max_tokens = n;
    } else if (key == "ttft_slo_ms") {
      double v = 0.0;
      if (!sc.number(&v) || v <= 0.0) {
        return fail(err, "\"ttft_slo_ms\" must be a positive number");
      }
      out->ttft_slo_s = v * 1e-3;
    } else if (key == "timeout_ms") {
      double v = 0.0;
      if (!sc.number(&v) || v <= 0.0) {
        return fail(err, "\"timeout_ms\" must be a positive number");
      }
      out->timeout_s = v * 1e-3;
    } else if (key == "tpot_slo_ms") {
      double v = 0.0;
      if (!sc.number(&v) || v <= 0.0) {
        return fail(err, "\"tpot_slo_ms\" must be a positive number");
      }
      out->tpot_slo_s = v * 1e-3;
    } else {
      return fail(err, "unknown field \"" + key + "\"");
    }
  }
  if (!sc.eof()) {
    return fail(err, "trailing characters after request object");
  }
  if (!saw_prompt) {
    return fail(err, "missing required field \"prompt\"");
  }
  if (out->prompt.empty()) {
    return fail(err, "\"prompt\" must not be empty");
  }
  return true;
}

std::string to_json(const CompletionResponse& r) {
  std::ostringstream os;
  os << "{\"id\": " << r.request_id << ", \"tenant\": \""
     << obs::json_escape(r.tenant) << "\", \"finish_reason\": \""
     << obs::json_escape(r.finish_reason) << "\", \"tokens\": [";
  for (std::size_t i = 0; i < r.tokens.size(); ++i) {
    os << (i != 0 ? ", " : "") << r.tokens[i];
  }
  os << "], \"usage\": {\"prompt_tokens\": " << r.usage.prompt_tokens
     << ", \"completion_tokens\": " << r.usage.completion_tokens
     << ", \"total_tokens\": " << r.usage.total_tokens()
     << "}, \"arrival_s\": " << obs::json_number(r.arrival_s)
     << ", \"ttft_s\": " << obs::json_number(r.ttft_s())
     << ", \"finish_s\": " << obs::json_number(r.finish_s) << "}";
  return os.str();
}

std::string to_json(const ApiError& e) {
  std::ostringstream os;
  os << "{\"error\": {\"status\": " << e.status << ", \"code\": \""
     << burst::error_code_name(e.code) << "\", \"message\": \""
     << obs::json_escape(e.message) << "\"}}";
  return os.str();
}

std::string to_json(const TokenEvent& e) {
  std::ostringstream os;
  os << "{\"id\": " << e.request_id << ", \"index\": " << e.index
     << ", \"token\": " << e.token
     << ", \"time_s\": " << obs::json_number(e.time_s) << "}";
  return os.str();
}

}  // namespace burst::api
