#include "obs/report.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace burst::obs {

namespace {

std::string quoted(const std::string& s) {
  // Built up with += rather than `"\"" + json_escape(s) + "\""`: the
  // operator+ form trips a -Wrestrict false positive in GCC 12 at -O3
  // (GCC bug 105651), and the tree builds with -Werror.
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  out += json_escape(s);
  out += '"';
  return out;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) {
    return "null";
  }
  char buf[64];
  // %.17g round-trips every double; trim to %g-style readability where exact.
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

void RunReport::config(const std::string& key, const std::string& value) {
  config_.emplace_back(key, quoted(value));
}

void RunReport::config(const std::string& key, const char* value) {
  config(key, std::string(value));
}

void RunReport::config(const std::string& key, double value) {
  config_.emplace_back(key, json_number(value));
}

void RunReport::config(const std::string& key, std::int64_t value) {
  config_.emplace_back(key, std::to_string(value));
}

void RunReport::config(const std::string& key, int value) {
  config(key, static_cast<std::int64_t>(value));
}

void RunReport::config(const std::string& key, bool value) {
  config_.emplace_back(key, value ? "true" : "false");
}

void RunReport::measurement(const std::string& name, double measured,
                            double paper_value, const std::string& unit) {
  measurements_.push_back({name, measured, paper_value, unit});
}

void RunReport::attach_registry(const Registry& reg) {
  counters_ = reg.counters();
  gauges_ = reg.gauges();
  histograms_ = reg.histograms();
}

void RunReport::check(bool ok, const std::string& what) {
  checks_.push_back({ok, what});
  self_check_ = self_check_ && ok;
}

void RunReport::add_error(const std::string& code, const std::string& message) {
  errors_.push_back({code, message});
  self_check_ = false;
}

void RunReport::add_error(const std::exception& e) {
  add_error(error_code_of(e), e.what());
}

void RunReport::write_json(std::ostream& os) const {
  os << "{\n";
  os << "  \"schema\": " << quoted(kSchema) << ",\n";
  os << "  \"version\": " << kVersion << ",\n";
  os << "  \"kind\": " << quoted(kind_) << ",\n";
  os << "  \"name\": " << quoted(name_) << ",\n";

  os << "  \"config\": {";
  for (std::size_t i = 0; i < config_.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    " << quoted(config_[i].first) << ": "
       << config_[i].second;
  }
  os << (config_.empty() ? "" : "\n  ") << "},\n";

  os << "  \"measurements\": [";
  for (std::size_t i = 0; i < measurements_.size(); ++i) {
    const auto& m = measurements_[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"name\": " << quoted(m.name)
       << ", \"measured\": " << json_number(m.measured)
       << ", \"paper_value\": " << json_number(m.paper_value)
       << ", \"unit\": " << quoted(m.unit) << "}";
  }
  os << (measurements_.empty() ? "" : "\n  ") << "],\n";

  os << "  \"metrics\": {\n";
  os << "    \"counters\": {";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "      " << quoted(counters_[i].first)
       << ": " << counters_[i].second;
  }
  os << (counters_.empty() ? "" : "\n    ") << "},\n";
  os << "    \"gauges\": {";
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "      " << quoted(gauges_[i].first)
       << ": " << json_number(gauges_[i].second);
  }
  os << (gauges_.empty() ? "" : "\n    ") << "},\n";
  os << "    \"histograms\": {";
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    const auto& [name, h] = histograms_[i];
    os << (i == 0 ? "\n" : ",\n") << "      " << quoted(name)
       << ": {\"count\": " << h.count << ", \"sum\": " << json_number(h.sum)
       << ", \"min\": " << json_number(h.min)
       << ", \"max\": " << json_number(h.max)
       << ", \"p50\": " << json_number(h.p50)
       << ", \"p99\": " << json_number(h.p99) << "}";
  }
  os << (histograms_.empty() ? "" : "\n    ") << "}\n";
  os << "  },\n";

  os << "  \"checks\": [";
  for (std::size_t i = 0; i < checks_.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    {\"ok\": "
       << (checks_[i].ok ? "true" : "false")
       << ", \"what\": " << quoted(checks_[i].what) << "}";
  }
  os << (checks_.empty() ? "" : "\n  ") << "],\n";

  os << "  \"errors\": [";
  for (std::size_t i = 0; i < errors_.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    {\"code\": " << quoted(errors_[i].code)
       << ", \"message\": " << quoted(errors_[i].message) << "}";
  }
  os << (errors_.empty() ? "" : "\n  ") << "],\n";

  os << "  \"self_check\": " << (self_check_ ? "true" : "false") << "\n";
  os << "}\n";
}

std::string RunReport::to_json() const {
  std::ostringstream ss;
  write_json(ss);
  return ss.str();
}

}  // namespace burst::obs
