// Unified error hierarchy for the whole engine.
//
// Every typed failure the stack can raise — comm-layer timeouts and
// corruption, cluster aborts, injected faults, device OOM — derives from
// burst::Error, which carries a stable machine-readable ErrorCode next to
// the human-readable what(). The stable code is what RunReport serializes
// (obs/report.hpp), so failure causes look identical whether they came out
// of training, serving, or a bench, and supervisors can switch on code()
// instead of dynamic_cast chains.
//
// Code names are part of the RunReport schema: never rename one, only add.
#pragma once

#include <stdexcept>
#include <string>

namespace burst {

enum class ErrorCode {
  kUnknown = 0,
  kCommTimeout,      // reliable send exhausted retries / recv deadline passed
  kCommCorruption,   // frame checksum mismatch
  kClusterAborted,   // a peer brought the cluster down (secondary)
  kPeerFailed,       // the specific peer this rank was blocked on failed
  kInjectedFault,    // a CrashDevice fault fired on this rank (root cause)
  kDeviceOom,        // allocation exceeded the device memory capacity
  kInvalidRequest,   // API request failed parsing or validation (HTTP 400)
  kAdmissionRejected,  // serving admission control shed the request (HTTP 429)
  kEngineStalled,      // serving engine wedged: no runnable work, no arrivals
  kSchedulerInvariant,  // scheduler planned work violating engine invariants
  kDeadlineExceeded,    // request missed its virtual-time deadline (HTTP 504)
  kOverloaded,          // load shedding dropped the request (HTTP 503)
  kRecoveryInProgress,  // circuit breaker open during recovery (HTTP 503)
  kInvariantViolation,  // internal consistency check failed (a bug, not input)
  kSnapshotCorrupt,     // snapshot failed magic/version/checksum validation
  kSnapshotIo,          // snapshot file could not be written/read
};

/// Stable serialization name of a code ("comm_timeout", "device_oom", ...).
inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kCommTimeout:
      return "comm_timeout";
    case ErrorCode::kCommCorruption:
      return "comm_corruption";
    case ErrorCode::kClusterAborted:
      return "cluster_aborted";
    case ErrorCode::kPeerFailed:
      return "peer_failed";
    case ErrorCode::kInjectedFault:
      return "injected_fault";
    case ErrorCode::kDeviceOom:
      return "device_oom";
    case ErrorCode::kInvalidRequest:
      return "invalid_request";
    case ErrorCode::kAdmissionRejected:
      return "admission_rejected";
    case ErrorCode::kEngineStalled:
      return "engine_stalled";
    case ErrorCode::kSchedulerInvariant:
      return "scheduler_invariant";
    case ErrorCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kRecoveryInProgress:
      return "recovery_in_progress";
    case ErrorCode::kInvariantViolation:
      return "invariant_violation";
    case ErrorCode::kSnapshotCorrupt:
      return "snapshot_corrupt";
    case ErrorCode::kSnapshotIo:
      return "snapshot_io";
    case ErrorCode::kUnknown:
      break;
  }
  return "unknown";
}

class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  ErrorCode code() const { return code_; }
  const char* code_name() const { return error_code_name(code_); }

 private:
  ErrorCode code_;
};

/// An internal consistency check failed: the program reached a state its
/// own invariants forbid. Unlike the other codes this is always a bug in
/// the engine, never bad input — supervisors must not retry it.
class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& what)
      : Error(ErrorCode::kInvariantViolation, what) {}
};

/// Stable code name for an arbitrary in-flight exception: the burst::Error
/// code when it is one, "unknown" otherwise. What RecoveryEvent / RunReport
/// use to attribute failures uniformly.
inline const char* error_code_of(const std::exception& e) {
  if (const auto* be = dynamic_cast<const Error*>(&e)) {
    return be->code_name();
  }
  return "unknown";
}

}  // namespace burst
