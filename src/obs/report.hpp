// RunReport: the one structured result artifact every entry point emits —
// training loops, the serve engine, and all reproduction benches.
//
// Stable, versioned JSON schema (`burst.run_report`, version 1):
//
//   {
//     "schema": "burst.run_report",
//     "version": 1,
//     "kind": "bench" | "training" | "serving",
//     "name": "table1_comm_time",
//     "config": { "<key>": <scalar>, ... },
//     "measurements": [
//       {"name": "...", "measured": <num>, "paper_value": <num>|null,
//        "unit": "..."},
//       ...
//     ],
//     "metrics": {
//       "counters":   { "<name>": <u64>, ... },
//       "gauges":     { "<name>": <num>, ... },
//       "histograms": { "<name>": {"count": .., "sum": .., "min": ..,
//                                  "max": .., "p50": .., "p99": ..}, ... }
//     },
//     "checks": [ {"ok": true|false, "what": "..."}, ... ],
//     "errors": [ {"code": "<stable-code>", "message": "..."}, ... ],
//     "self_check": true|false
//   }
//
// Versioning contract: additive changes (new optional keys) keep version 1;
// renames/removals bump it. `self_check` is the machine gate — it is the
// AND of every check() recorded, scripts/verify.sh fails on false.
#pragma once

#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/error.hpp"
#include "obs/metrics.hpp"

namespace burst::obs {

class RunReport {
 public:
  static constexpr const char* kSchema = "burst.run_report";
  static constexpr int kVersion = 1;

  /// `kind` is the producing surface: "bench", "training" or "serving".
  RunReport(std::string kind, std::string name)
      : kind_(std::move(kind)), name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // --- config ---------------------------------------------------------------
  void config(const std::string& key, const std::string& value);
  void config(const std::string& key, const char* value);
  void config(const std::string& key, double value);
  void config(const std::string& key, std::int64_t value);
  void config(const std::string& key, int value);
  void config(const std::string& key, bool value);

  // --- measurements ---------------------------------------------------------
  /// A named measured quantity, optionally paired with the paper's reported
  /// value for side-by-side comparison. Pass NaN (the default) for
  /// `paper_value` when the paper states no number — serialized as null.
  void measurement(const std::string& name, double measured,
                   double paper_value = kNoPaperValue,
                   const std::string& unit = "");
  static constexpr double kNoPaperValue =
      std::numeric_limits<double>::quiet_NaN();

  // --- registry dump --------------------------------------------------------
  /// Snapshots every instrument of `reg` into the metrics section
  /// (overwrites a previous snapshot).
  void attach_registry(const Registry& reg);

  // --- checks & errors ------------------------------------------------------
  /// Records a named invariant; self_check() is the AND of all of them.
  void check(bool ok, const std::string& what);
  bool self_check() const { return self_check_; }

  void add_error(const std::string& code, const std::string& message);
  /// Uniform failure serialization: stable burst::Error code when the
  /// exception carries one, "unknown" otherwise. Also fails self_check.
  void add_error(const std::exception& e);

  // --- output ---------------------------------------------------------------
  void write_json(std::ostream& os) const;
  std::string to_json() const;

 private:
  struct Measurement {
    std::string name;
    double measured = 0.0;
    double paper_value = kNoPaperValue;
    std::string unit;
  };
  struct Check {
    bool ok = true;
    std::string what;
  };
  struct ErrorEntry {
    std::string code;
    std::string message;
  };

  std::string kind_;
  std::string name_;
  std::vector<std::pair<std::string, std::string>> config_;  // pre-rendered
  std::vector<Measurement> measurements_;
  std::vector<std::pair<std::string, std::uint64_t>> counters_;
  std::vector<std::pair<std::string, double>> gauges_;
  std::vector<std::pair<std::string, HistogramSummary>> histograms_;
  std::vector<Check> checks_;
  std::vector<ErrorEntry> errors_;
  bool self_check_ = true;
};

/// JSON string escaping shared with everything that renders report text.
std::string json_escape(const std::string& s);

/// Renders a finite double as a JSON number, NaN/inf as null.
std::string json_number(double v);

}  // namespace burst::obs
