// Thread-safe metrics registry: the one reporting surface every subsystem
// feeds (comm layer, attention sweeps, FSDP loop, serve engine, resilience
// supervisor, benches).
//
// Three instrument kinds, interned by name:
//   * Counter   — monotonically increasing u64 (wraps modulo 2^64; reset()
//                 rewinds to zero). Lock-free increments.
//   * Gauge     — a last-written double (peak memory, makespan, world size).
//   * Histogram — raw samples with nearest-rank percentiles (p50/p99 token
//                 latency, per-phase durations on the virtual clock).
//
// Zero-cost when disabled: call sites hold a `Registry*` that is null unless
// the user attached one (sim::Cluster::Config::metrics and friends), and hot
// paths pre-resolve Counter handles once so the per-event cost with a
// registry attached is a single relaxed atomic add — and exactly nothing
// without one. Metrics never touch the virtual clock, so a run with a
// registry is bitwise identical to a run without (asserted by
// tests/test_obs.cpp).
//
// Naming convention: dotted subsystem path plus `{key=value,...}` labels,
// e.g. `comm.bytes{link=intra,rank=3}`. The label block is part of the
// interned name — callers format it with obs::labeled().
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace burst::obs {

class Counter {
 public:
  /// Wraps modulo 2^64 on overflow, like every hardware event counter.
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  void observe(double v);

  std::uint64_t count() const;
  double sum() const;
  double min() const;
  double max() const;
  /// Nearest-rank percentile, q in [0, 1]. 0 when empty. q=0.5 over
  /// {1..100} is 50 (same definition the serve engine always used).
  double percentile(double q) const;
  void reset();

 private:
  mutable std::mutex mu_;
  std::vector<double> samples_;
};

/// Point-in-time percentile summary used for serialization.
struct HistogramSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

/// Abstract interval sink. sim::TraceRecorder implements it, so scoped
/// timers (and anything else in layers below sim) can feed the existing
/// Chrome-trace machinery without a dependency cycle.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(int rank, int stream, std::string name, double begin_s,
                      double end_s) = 0;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Interns (creating on first use) the named instrument. The returned
  /// reference stays valid for the registry's lifetime; hot paths should
  /// resolve it once and keep the pointer.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Snapshot views for serialization (sorted by name).
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::pair<std::string, HistogramSummary>> histograms() const;

  /// Zeroes every instrument (names stay interned).
  void reset();

 private:
  mutable std::mutex mu_;
  // Node-based maps: rehashing never moves an instrument, so handed-out
  // references survive concurrent interning.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Label set of a metric name, in emission order.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// `labeled("comm.bytes", {{"link", "intra"}, {"rank", "3"}})` →
/// `comm.bytes{link=intra,rank=3}`. Pairs are emitted in argument order.
std::string labeled(const std::string& name, const Labels& labels);

/// Scoped virtual-clock timer: captures begin at construction, and on
/// destruction observes the elapsed virtual seconds into
/// `registry.histogram(name)` and records the interval on the trace sink.
/// Both sinks are optional; with neither attached the timer is inert.
/// `now` is any callable returning the current virtual time (e.g.
/// `[&] { return ctx.clock().elapsed(); }`) — obs sits below sim, so the
/// clock is reached through the closure, not an include.
template <typename NowFn>
class ScopedTimer {
 public:
  ScopedTimer(Registry* registry, TraceSink* trace, int rank, int stream,
              std::string name, NowFn now)
      : registry_(registry),
        trace_(trace),
        rank_(rank),
        stream_(stream),
        name_(std::move(name)),
        now_(std::move(now)),
        begin_s_((registry_ != nullptr || trace_ != nullptr) ? now_() : 0.0) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (registry_ == nullptr && trace_ == nullptr) {
      return;
    }
    const double end_s = now_();
    if (registry_ != nullptr) {
      registry_->histogram(name_).observe(end_s - begin_s_);
    }
    if (trace_ != nullptr) {
      trace_->record(rank_, stream_, name_, begin_s_, end_s);
    }
  }

 private:
  Registry* registry_;
  TraceSink* trace_;
  int rank_;
  int stream_;
  std::string name_;
  NowFn now_;
  double begin_s_;
};

}  // namespace burst::obs
