#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace burst::obs {

void Histogram::observe(double v) {
  std::lock_guard lock(mu_);
  samples_.push_back(v);
}

std::uint64_t Histogram::count() const {
  std::lock_guard lock(mu_);
  return samples_.size();
}

double Histogram::sum() const {
  std::lock_guard lock(mu_);
  double s = 0.0;
  for (const double v : samples_) {
    s += v;
  }
  return s;
}

double Histogram::min() const {
  std::lock_guard lock(mu_);
  return samples_.empty() ? 0.0
                          : *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
  std::lock_guard lock(mu_);
  return samples_.empty() ? 0.0
                          : *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::percentile(double q) const {
  std::lock_guard lock(mu_);
  if (samples_.empty()) {
    return 0.0;
  }
  std::vector<double> xs = samples_;
  std::sort(xs.begin(), xs.end());
  const auto n = static_cast<double>(xs.size());
  const auto i = static_cast<std::size_t>(
      std::min(n - 1.0, std::max(0.0, std::ceil(q * n) - 1.0)));
  return xs[i];
}

void Histogram::reset() {
  std::lock_guard lock(mu_);
  samples_.clear();
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  return counters_[name];
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  return gauges_[name];
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  return histograms_[name];
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.emplace_back(name, c.value());
  }
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    out.emplace_back(name, g.value());
  }
  return out;
}

std::vector<std::pair<std::string, HistogramSummary>> Registry::histograms()
    const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, HistogramSummary>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSummary s;
    s.count = h.count();
    s.sum = h.sum();
    s.min = h.min();
    s.max = h.max();
    s.p50 = h.percentile(0.50);
    s.p99 = h.percentile(0.99);
    out.emplace_back(name, s);
  }
  return out;
}

void Registry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) {
    c.reset();
  }
  for (auto& [name, g] : gauges_) {
    g.set(0.0);
  }
  for (auto& [name, h] : histograms_) {
    h.reset();
  }
}

std::string labeled(const std::string& name, const Labels& labels) {
  if (labels.empty()) {
    return name;
  }
  std::string out = name + "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += labels[i].first + "=" + labels[i].second;
  }
  out += "}";
  return out;
}

}  // namespace burst::obs
