#include "model/quant_weights.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "kernels/rope.hpp"
#include "tensor/ops.hpp"

namespace burst::model {

using kernels::IndexMap;
using kernels::MaskSpec;
using tensor::PackedB;
using tensor::Tensor;
using tensor::Trans;

QuantizedWeights QuantizedWeights::pack(const ModelConfig& cfg,
                                        const ModelWeights& w) {
  QuantizedWeights q;
  q.dtype = cfg.quant.weights;
  q.layers.reserve(w.layers.size());
  for (const LayerWeights& lw : w.layers) {
    Layer l;
    // Every projection is consumed as x @ W, so op(B) = W (no transpose).
    l.wq = PackedB::pack(lw.wq.view(), Trans::No, q.dtype);
    l.wk = PackedB::pack(lw.wk.view(), Trans::No, q.dtype);
    l.wv = PackedB::pack(lw.wv.view(), Trans::No, q.dtype);
    l.wo = PackedB::pack(lw.wo.view(), Trans::No, q.dtype);
    l.w1 = PackedB::pack(lw.w1.view(), Trans::No, q.dtype);
    l.w2 = PackedB::pack(lw.w2.view(), Trans::No, q.dtype);
    q.layers.push_back(std::move(l));
  }
  // The head is consumed as h @ W_head^T: resolving the transpose at pack
  // time also groups quantization blocks along d per vocab word.
  q.w_head_t = PackedB::pack(w.w_head.view(), Trans::Yes, q.dtype);
  assert(q.w_head_t.n() == cfg.vocab && q.w_head_t.k() == cfg.d_model);
  (void)cfg;
  return q;
}

std::uint64_t QuantizedWeights::model_bytes() const {
  std::uint64_t total = w_head_t.model_bytes();
  for (const Layer& l : layers) {
    total += l.wq.model_bytes() + l.wk.model_bytes() + l.wv.model_bytes() +
             l.wo.model_bytes() + l.w1.model_bytes() + l.w2.model_bytes();
  }
  return total;
}

namespace {

Tensor embed_ids(const ModelConfig& cfg, const ModelWeights& w,
                 const std::int64_t* tokens, std::int64_t count) {
  Tensor x(count, cfg.d_model);
  for (std::int64_t i = 0; i < count; ++i) {
    assert(tokens[i] >= 0 && tokens[i] < cfg.vocab);
    for (std::int64_t c = 0; c < cfg.d_model; ++c) {
      x(i, c) = w.w_embed(tokens[i], c);
    }
  }
  return x;
}

constexpr float kNegInfF = -std::numeric_limits<float>::infinity();

}  // namespace

Tensor head_logits_q(const QuantizedWeights& qw, const Tensor& h) {
  return tensor::packed_matmul(h, qw.w_head_t);
}

Tensor forward_prefill_chunk_q(const ModelConfig& cfg, const ModelWeights& w,
                               const QuantizedWeights& qw,
                               SequenceKvCache& cache,
                               const std::int64_t* tokens, std::int64_t count,
                               const MaskSpec& mask,
                               kernels::KernelStats* stats) {
  assert(count > 0);
  assert(qw.layers.size() == static_cast<std::size_t>(cfg.layers));
  cache.reserve(count);
  const std::int64_t pos0 = cache.len();
  const std::int64_t total = pos0 + count;
  const std::int64_t dh = cfg.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  const IndexMap qmap = IndexMap::range(pos0, count);
  const IndexMap kmap = IndexMap::range(0, total);
  const std::int64_t group = cfg.group_size();
  Tensor x = embed_ids(cfg, w, tokens, count);
  // bf16 at the activation boundary: what a real bf16 serving stack feeds
  // the first block.
  tensor::round_bf16_inplace(x);
  Tensor qh(count, dh);
  Tensor o(count, dh);
  Tensor lse(count);
  Tensor attn(count, cfg.d_model);
  for (std::int64_t l = 0; l < cfg.layers; ++l) {
    const QuantizedWeights::Layer& lw =
        qw.layers[static_cast<std::size_t>(l)];
    Tensor q_all = tensor::packed_matmul(x, lw.wq);
    Tensor k_all = tensor::packed_matmul(x, lw.wk);
    Tensor v_all = tensor::packed_matmul(x, lw.wv);
    for (std::int64_t kvh = 0; kvh < cfg.num_kv_heads(); ++kvh) {
      Tensor kh = tensor::copy_cols(k_all, kvh * dh, dh);
      if (cfg.use_rope) {
        kernels::apply_rope_inplace(kh, qmap);
      }
      cache.put(l, kvh, kh, tensor::copy_cols(v_all, kvh * dh, dh));
    }
    attn.fill(0.0f);
    for (std::int64_t h = 0; h < cfg.heads; ++h) {
      tensor::copy_cols_into(q_all, h * dh, qh);
      if (cfg.use_rope) {
        kernels::apply_rope_inplace(qh, qmap);
      }
      const std::int64_t kvh = h / group;
      o.fill(0.0f);
      lse.fill(kNegInfF);
      kernels::flash_forward_partial(qh.view(), qmap,
                                     cache.k_view(l, kvh, total),
                                     cache.v_view(l, kvh, total), kmap, mask,
                                     scale, o.view(), lse, stats);
      tensor::set_cols(attn, h * dh, o);
    }
    Tensor a = tensor::packed_matmul(attn, lw.wo);
    Tensor hres = tensor::add(a, x);
    Tensor u = tensor::relu(tensor::packed_matmul(hres, lw.w1));
    x = tensor::packed_matmul(u, lw.w2);
    tensor::add_inplace(x, hres);
    // Layer boundary: round the block output like the wire/bf16 store.
    tensor::round_bf16_inplace(x);
  }
  cache.commit(count);
  return x;
}

Tensor forward_decode_q(const ModelConfig& cfg, const ModelWeights& w,
                        const QuantizedWeights& qw, SequenceKvCache& cache,
                        std::int64_t token, const MaskSpec& mask,
                        kernels::KernelStats* stats) {
  assert(qw.layers.size() == static_cast<std::size_t>(cfg.layers));
  cache.reserve(1);
  const std::int64_t pos = cache.len();
  const IndexMap posmap = IndexMap::range(pos, 1);
  const std::int64_t dh = cfg.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  const std::int64_t group = cfg.group_size();
  Tensor x = embed_ids(cfg, w, &token, 1);
  tensor::round_bf16_inplace(x);
  Tensor qh(1, dh);
  Tensor attn(1, cfg.d_model);
  for (std::int64_t l = 0; l < cfg.layers; ++l) {
    const QuantizedWeights::Layer& lw =
        qw.layers[static_cast<std::size_t>(l)];
    Tensor q_all = tensor::packed_matmul(x, lw.wq);
    Tensor k_all = tensor::packed_matmul(x, lw.wk);
    Tensor v_all = tensor::packed_matmul(x, lw.wv);
    for (std::int64_t kvh = 0; kvh < cfg.num_kv_heads(); ++kvh) {
      Tensor kh = tensor::copy_cols(k_all, kvh * dh, dh);
      if (cfg.use_rope) {
        kernels::apply_rope_inplace(kh, posmap);
      }
      cache.put(l, kvh, kh, tensor::copy_cols(v_all, kvh * dh, dh));
    }
    for (std::int64_t h = 0; h < cfg.heads; ++h) {
      tensor::copy_cols_into(q_all, h * dh, qh);
      if (cfg.use_rope) {
        kernels::apply_rope_inplace(qh, posmap);
      }
      const std::int64_t kvh = h / group;
      kernels::flash_decode_step(qh.view(), cache.k_view(l, kvh, pos + 1),
                                 cache.v_view(l, kvh, pos + 1), pos, mask,
                                 scale, attn.col_block(h * dh, dh), stats);
    }
    Tensor a = tensor::packed_matmul(attn, lw.wo);
    Tensor hres = tensor::add(a, x);
    Tensor u = tensor::relu(tensor::packed_matmul(hres, lw.w1));
    x = tensor::packed_matmul(u, lw.w2);
    tensor::add_inplace(x, hres);
    tensor::round_bf16_inplace(x);
  }
  cache.commit(1);
  Tensor logits = head_logits_q(qw, x);  // [1, vocab]
  Tensor out(cfg.vocab);
  for (std::int64_t j = 0; j < cfg.vocab; ++j) {
    out[j] = logits(0, j);
  }
  return out;
}

}  // namespace burst::model
