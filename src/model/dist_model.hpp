// Distributed (context/head-parallel) training step over the simulated
// cluster — the functional end-to-end integration of BurstEngine:
//
//   * sequence sharding with any workload balance (zigzag/striped/...);
//   * distributed attention per layer via BurstAttention, RingAttention,
//     DeepSpeed-Ulysses, or LoongTrain-USP;
//   * gradient checkpointing (none / full / selective++ / sequence-level
//     selective, Section 3.2) with *real* recomputation — including the
//     distributed ring re-execution sequence-level checkpointing needs for
//     its non-stored front rows;
//   * fused or naive LM head + loss (Section 3.3);
//   * data-parallel weight-gradient all-reduce.
//
// Weights are replicated (the paper's FSDP is a memory-sharding optimization
// modeled analytically in perfmodel; replication keeps the functional math
// identical). Stored activations and LM-head scratch are charged to the
// device MemoryTracker at 2 bytes/element ("as-if bf16") so strategies are
// comparable with the paper's units.
#pragma once

#include "comm/communicator.hpp"
#include "core/checkpoint.hpp"
#include "core/dist_attention.hpp"
#include "core/partition.hpp"
#include "kernels/mask.hpp"
#include "model/config.hpp"
#include "model/transformer.hpp"

namespace burst::model {

enum class AttnImpl {
  kBurst,    // BurstAttention (Algorithm 2 backward)
  kRing,     // RingAttention baseline (Algorithm 1 backward)
  kUlysses,  // head parallelism
  kUsp,      // hybrid head+context
};

const char* attn_impl_name(AttnImpl impl);

struct DistTrainConfig {
  ModelConfig model;
  kernels::MaskSpec mask = kernels::MaskSpec::causal();
  AttnImpl impl = AttnImpl::kBurst;
  core::Balance balance = core::Balance::kZigzag;
  /// Use the topology-aware double ring when the cluster spans nodes.
  bool topo_aware = true;
  bool overlap = true;
  core::CkptConfig ckpt{core::CkptStrategy::kSelectivePP, 0.5};
  bool fused_lm_head = true;
  int usp_head_parallel = 1;
  /// All-reduce weight gradients at the end (replicated data parallel).
  /// FSDP training sets this false and reduce-scatters instead
  /// (model/fsdp.hpp).
  bool sync_grads = true;
};

struct DistStepResult {
  double loss = 0.0;   // global mean next-token CE (identical on all ranks)
  ModelGrads grads;    // all-reduced: identical on all ranks
};

/// One SPMD training step; call from within a Cluster::run functor. `tokens`
/// holds the full global sequence (N+1 ids) — each device shards it locally
/// by its index map.
DistStepResult dist_train_step(comm::Communicator& comm,
                               const DistTrainConfig& cfg,
                               const ModelWeights& weights,
                               const tensor::Tensor& tokens);

/// The sequence shard (global positions) owned by `rank` under `cfg` for a
/// global sequence of `seq_len` tokens.
kernels::IndexMap dist_index_map(const DistTrainConfig& cfg,
                                 std::int64_t seq_len, int world_size,
                                 int rank);

}  // namespace burst::model
