// LLaMA-style model configurations (Section 4.1 of the paper).
#pragma once

#include <cstdint>

#include "tensor/dtype.hpp"

namespace burst::model {

/// Storage dtypes for the quantized / mixed-precision path (DESIGN.md
/// section 16). Byte accounting always follows these enums — a config can
/// no longer claim bf16 KV while charging fp32 bytes.
struct QuantSpec {
  /// Weight storage for serving/inference. kBf16 (the default) keeps the
  /// dense fp32 functional path with bf16 byte accounting — the pre-quant
  /// behavior. kF32/kQ8_0/kQ4_0 route the projection weights and the
  /// vocab-tiled W_head through prepacked tensor::PackedB operands
  /// (dequantize-inside-the-microkernel), with bf16 rounding at layer
  /// activation boundaries.
  tensor::DType weights = tensor::DType::kBf16;
  /// KV-cache storage dtype (drives paged-KV byte accounting; bf16 matches
  /// the paper's setup).
  tensor::DType kv = tensor::DType::kBf16;
};

struct ModelConfig {
  std::int64_t layers = 2;
  std::int64_t d_model = 64;
  std::int64_t heads = 4;
  /// Grouped-query attention: number of K/V heads (0 -> == heads, i.e.
  /// vanilla MHA). Must divide `heads`. GQA is an *extension* beyond the
  /// paper: LLaMA-2/3 use it, and it changes the Ring-vs-Burst backward
  /// communication trade-off because only K/V shrink (see
  /// bench_ablation_gqa).
  std::int64_t kv_heads = 0;
  std::int64_t vocab = 256;
  std::int64_t d_ff = 172;  // LLaMA uses ~2.7x d_model
  /// Training dtype on device (bf16 in the paper).
  tensor::DType train_dtype = tensor::DType::kBf16;
  /// Weight / KV storage dtypes for serving (see QuantSpec).
  QuantSpec quant;
  /// Apply rotary position embeddings to Q/K (LLaMA-style). Under context
  /// parallelism the rotation uses *global* token positions from the
  /// shard's IndexMap.
  bool use_rope = false;

  /// Storage bytes per element of the training dtype (what activations,
  /// gradients, and wire transfers charge).
  double bytes_per_el() const {
    return tensor::dtype_bytes_per_el(train_dtype);
  }
  /// Storage bytes per element of the KV-cache dtype.
  double kv_bytes_per_el() const {
    return tensor::dtype_bytes_per_el(quant.kv);
  }
  /// Average storage bytes per weight element at the serving dtype
  /// (quantized dtypes amortize per-block scales).
  double weight_bytes_per_el() const {
    return tensor::dtype_bytes_per_el(quant.weights);
  }

  std::int64_t head_dim() const { return d_model / heads; }
  std::int64_t num_kv_heads() const { return kv_heads > 0 ? kv_heads : heads; }
  /// Width of the K/V projections: kv_heads * head_dim.
  std::int64_t d_kv() const { return num_kv_heads() * head_dim(); }
  /// Query heads sharing one K/V head.
  std::int64_t group_size() const { return heads / num_kv_heads(); }

  /// Attention projections (Q, O: d^2 each; K, V: d*d_kv each) + gated FFN.
  std::int64_t params_per_layer() const {
    return 2 * d_model * d_model + 2 * d_model * d_kv() +
           3 * d_model * d_ff;
  }

  /// Embedding + transformer stack + LM head (untied, like LLaMA).
  std::int64_t param_count() const {
    return layers * params_per_layer() + 2 * vocab * d_model;
  }

  /// The paper's 7B setting: 32 layers, 32 heads, 4096 d, 32K vocab.
  static ModelConfig llama7b() {
    ModelConfig c;
    c.layers = 32;
    c.d_model = 4096;
    c.heads = 32;
    c.vocab = 32000;
    c.d_ff = 11008;
    return c;
  }

  /// The paper's 14B setting: 40 layers, 40 heads, 5120 d, 120K vocab.
  static ModelConfig llama14b() {
    ModelConfig c;
    c.layers = 40;
    c.d_model = 5120;
    c.heads = 40;
    c.vocab = 120000;
    c.d_ff = 13824;
    return c;
  }

  /// Toy configuration for functional end-to-end tests.
  static ModelConfig toy() {
    ModelConfig c;
    c.layers = 2;
    c.d_model = 32;
    c.heads = 4;
    c.vocab = 64;
    c.d_ff = 48;
    return c;
  }
};

}  // namespace burst::model
