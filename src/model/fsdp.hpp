// Functional FSDP (ZeRO-3 style, BMTrain-like block granularity) over the
// simulated cluster.
//
// Each device permanently stores a 1/G row-shard of every parameter tensor.
// Before a layer is used its full parameters are materialized with a ring
// all-gather (charged to communication time and, transiently, to device
// memory); after backward, gradients are reduce-scattered so each device
// keeps only its shard's gradient. The optimizer then updates shards
// locally — no gradient all-reduce, exactly the paper's training setup
// ("we adopt the FSDP implementation from BMTrain").
//
// Requirements: every parameter tensor's row count divisible by the world
// size (true for the toy configs used in tests/examples).
#pragma once

#include "comm/communicator.hpp"
#include "model/config.hpp"
#include "model/dist_model.hpp"
#include "model/transformer.hpp"

namespace burst::model {

/// This device's row-shards of every parameter tensor.
struct FsdpShards {
  std::vector<LayerWeights> layers;  // row-sharded tensors
  tensor::Tensor w_embed;
  tensor::Tensor w_head;

  /// Slices `full` into this rank's shards (every rank calls with identical
  /// `full`, e.g. from a shared initialization seed).
  static FsdpShards shard(const ModelConfig& cfg, const ModelWeights& full,
                          int world, int rank);

  /// Bytes this device holds permanently (as-if bf16).
  std::uint64_t shard_bytes() const;
};

/// Materializes one layer's full weights via all-gather (block-level FSDP).
LayerWeights fsdp_gather_layer(comm::Communicator& comm,
                               const FsdpShards& shards, std::int64_t layer);

/// Materializes the embedding / LM-head weights.
tensor::Tensor fsdp_gather_embed(comm::Communicator& comm,
                                 const FsdpShards& shards);
tensor::Tensor fsdp_gather_head(comm::Communicator& comm,
                                const FsdpShards& shards);

/// Reduce-scatters full gradients; returns this rank's gradient shards
/// (summed over devices, same layout as FsdpShards).
FsdpShards fsdp_reduce_scatter_grads(comm::Communicator& comm,
                                     const ModelConfig& cfg,
                                     const ModelGrads& full);

/// SGD on the local shards: shard -= lr * grad_shard.
void fsdp_apply_sgd(FsdpShards& shards, const FsdpShards& grad_shards,
                    float lr);

/// Rebuilds the full replicated weights (for evaluation / tests).
ModelWeights fsdp_gather_all(comm::Communicator& comm,
                             const FsdpShards& shards);

struct FsdpStepResult {
  double loss = 0.0;
  FsdpShards grad_shards;  // this rank's reduce-scattered gradient shards
};

/// One FSDP training step: gather parameters, run the distributed step with
/// gradient synchronization disabled, reduce-scatter the gradients. Combine
/// with fsdp_apply_sgd (or a sharded optimizer) to update the local shards.
FsdpStepResult fsdp_train_step(comm::Communicator& comm,
                               DistTrainConfig cfg, const FsdpShards& shards,
                               const tensor::Tensor& tokens);

}  // namespace burst::model
