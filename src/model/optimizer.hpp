// Adam optimizer with optional host "offload" semantics (ZeRO-Offload [32]).
//
// The optimizer holds fp32 master weights and the two Adam moments — the
// 12 bytes/parameter that dominate small-world-size memory (Table 5's
// motivation for offloading). In offload mode the state lives in a host
// arena that is *not* charged to the device MemoryTracker, mirroring how
// ZeRO-Offload moves it to CPU DRAM; on-device mode charges it, so the
// functional simulator reproduces the optimizer-memory trade-off.
#pragma once

#include <cstdint>
#include <vector>

#include "model/transformer.hpp"
#include "sim/memory.hpp"

namespace burst::model {

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  /// Keep state off-device (not charged to the MemoryTracker).
  bool offload = false;
};

/// Complete serializable optimizer state: the step counter and both moment
/// vectors in the fixed for-each-tensor layout. Snapshot/restore support
/// for fault-tolerant training (src/resilience/snapshot.hpp) — restoring
/// makes subsequent steps bitwise identical to an uninterrupted run.
struct AdamState {
  int t = 0;
  std::vector<float> m;
  std::vector<float> v;
};

class AdamOptimizer {
 public:
  /// Sizes the moment buffers from the actual weight tensors. `mem` may be
  /// null (pure-host training); with a tracker and !cfg.offload, state bytes
  /// (12 per parameter, fp32 moments + master) are charged for the
  /// optimizer's lifetime.
  AdamOptimizer(const ModelWeights& weights, const AdamConfig& cfg,
                sim::MemoryTracker* mem = nullptr);
  ~AdamOptimizer();

  AdamOptimizer(const AdamOptimizer&) = delete;
  AdamOptimizer& operator=(const AdamOptimizer&) = delete;

  /// One Adam step over every parameter tensor.
  void step(ModelWeights& w, const ModelGrads& g);

  /// Copies out the full optimizer state (for durable snapshots).
  AdamState export_state() const;

  /// Restores a previously exported state. The moment-vector sizes must
  /// match this optimizer's parameter count (throws std::invalid_argument
  /// otherwise — a snapshot from a different model shape).
  void restore_state(const AdamState& s);

  std::int64_t num_params() const { return num_params_; }
  int steps_taken() const { return t_; }

 private:
  void update_tensor(tensor::Tensor& w, const tensor::Tensor& g,
                     std::size_t state_offset);

  AdamConfig cfg_;
  std::int64_t num_params_ = 0;
  std::vector<float> m_;
  std::vector<float> v_;
  int t_ = 0;
  sim::MemoryTracker* mem_ = nullptr;
  std::uint64_t charged_ = 0;
};

}  // namespace burst::model
