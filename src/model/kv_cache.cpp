#include "model/kv_cache.hpp"

#include <cassert>
#include <cstring>

namespace burst::model {

using tensor::ConstMatView;
using tensor::Tensor;

SequenceKvCache SequenceKvCache::create(const ModelConfig& cfg,
                                        std::int64_t block_tokens) {
  assert(block_tokens > 0);
  SequenceKvCache c;
  c.layers_ = cfg.layers;
  c.kv_heads_ = cfg.num_kv_heads();
  c.head_dim_ = cfg.head_dim();
  c.block_tokens_ = block_tokens;
  c.k_.resize(static_cast<std::size_t>(c.layers_ * c.kv_heads_));
  c.v_.resize(static_cast<std::size_t>(c.layers_ * c.kv_heads_));
  return c;
}

std::uint64_t SequenceKvCache::block_bytes(const ModelConfig& cfg,
                                           std::int64_t block_tokens) {
  const std::uint64_t els = static_cast<std::uint64_t>(block_tokens) *
                            static_cast<std::uint64_t>(cfg.layers) *
                            static_cast<std::uint64_t>(cfg.num_kv_heads()) *
                            static_cast<std::uint64_t>(cfg.head_dim()) * 2;
  // Charged at the KV dtype from QuantSpec, so the accounting can never
  // disagree with the configured storage format.
  return static_cast<std::uint64_t>(static_cast<double>(els) *
                                    cfg.kv_bytes_per_el());
}

std::int64_t SequenceKvCache::blocks_for(std::int64_t tokens,
                                         std::int64_t block_tokens) {
  assert(block_tokens > 0 && tokens >= 0);
  return (tokens + block_tokens - 1) / block_tokens;
}

std::int64_t SequenceKvCache::idx(std::int64_t layer, std::int64_t kvh) const {
  assert(layer >= 0 && layer < layers_ && kvh >= 0 && kvh < kv_heads_);
  return layer * kv_heads_ + kvh;
}

void SequenceKvCache::grow(Tensor& t, std::int64_t new_capacity) const {
  Tensor bigger = Tensor::zeros(new_capacity, head_dim_);
  if (!t.empty()) {
    std::memcpy(bigger.data(), t.data(),
                static_cast<std::size_t>(t.numel()) * sizeof(float));
  }
  t = std::move(bigger);
}

std::int64_t SequenceKvCache::reserve(std::int64_t extra_tokens) {
  assert(extra_tokens >= 0);
  const std::int64_t needed = len_ + extra_tokens;
  if (needed <= capacity_) {
    return 0;
  }
  const std::int64_t new_blocks =
      blocks_for(needed, block_tokens_) - blocks_allocated();
  const std::int64_t new_capacity =
      blocks_for(needed, block_tokens_) * block_tokens_;
  for (auto& t : k_) {
    grow(t, new_capacity);
  }
  for (auto& t : v_) {
    grow(t, new_capacity);
  }
  capacity_ = new_capacity;
  return new_blocks;
}

void SequenceKvCache::put(std::int64_t layer, std::int64_t kvh,
                          const Tensor& k_rows, const Tensor& v_rows) {
  put_at(layer, kvh, len_, k_rows, v_rows);
}

void SequenceKvCache::put_at(std::int64_t layer, std::int64_t kvh,
                             std::int64_t row0, const Tensor& k_rows,
                             const Tensor& v_rows) {
  assert(k_rows.cols() == head_dim_ && v_rows.cols() == head_dim_);
  assert(k_rows.rows() == v_rows.rows());
  assert(row0 >= 0 && row0 + k_rows.rows() <= capacity_);
  const std::int64_t i = idx(layer, kvh);
  k_[static_cast<std::size_t>(i)].set_rows(row0, k_rows);
  v_[static_cast<std::size_t>(i)].set_rows(row0, v_rows);
}

void SequenceKvCache::commit(std::int64_t tokens) {
  assert(tokens >= 0 && len_ + tokens <= capacity_);
  len_ += tokens;
}

ConstMatView SequenceKvCache::k_view(std::int64_t layer, std::int64_t kvh,
                                     std::int64_t rows) const {
  assert(rows <= capacity_);
  const auto& t = k_[static_cast<std::size_t>(idx(layer, kvh))];
  return ConstMatView(t.data(), rows, head_dim_, head_dim_);
}

ConstMatView SequenceKvCache::v_view(std::int64_t layer, std::int64_t kvh,
                                     std::int64_t rows) const {
  assert(rows <= capacity_);
  const auto& t = v_[static_cast<std::size_t>(idx(layer, kvh))];
  return ConstMatView(t.data(), rows, head_dim_, head_dim_);
}

}  // namespace burst::model
