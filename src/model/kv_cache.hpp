// Per-sequence K/V cache for incremental decoding (the serving path).
//
// Functional storage: one [capacity, head_dim] matrix per (layer, kv head)
// for K and for V, grown in whole blocks of `block_tokens` rows — the paged
// allocation unit the serving engine charges to a device MemoryTracker
// (serve/kv_cache.hpp owns that accounting; this class only reports its
// block arithmetic). Keys are stored *post-RoPE* at their global positions,
// so chunked prefill and single-token decode append rows without ever
// re-rotating the prefix. GQA models store num_kv_heads() streams; query
// heads of one group read the same stream, exactly as in training.
//
// Write protocol: `reserve` capacity, `put` each layer's rows for the chunk
// (all layers write the same row range [len, len+chunk)), then `commit`
// advances `len`. Attention during the chunk reads views of [0, len+chunk).
#pragma once

#include <cstdint>
#include <vector>

#include "model/config.hpp"
#include "tensor/tensor.hpp"

namespace burst::model {

class SequenceKvCache {
 public:
  SequenceKvCache() = default;

  static SequenceKvCache create(const ModelConfig& cfg,
                                std::int64_t block_tokens);

  /// Simulated bytes of one block: K + V rows for every layer and kv head at
  /// the `cfg.quant.kv` dtype (bf16 in the paper's setup).
  static std::uint64_t block_bytes(const ModelConfig& cfg,
                                   std::int64_t block_tokens);

  /// Blocks needed to hold `tokens` rows: ceil(tokens / block_tokens).
  static std::int64_t blocks_for(std::int64_t tokens,
                                 std::int64_t block_tokens);

  std::int64_t len() const { return len_; }
  std::int64_t capacity_tokens() const { return capacity_; }
  std::int64_t block_tokens() const { return block_tokens_; }
  std::int64_t blocks_allocated() const {
    return block_tokens_ > 0 ? capacity_ / block_tokens_ : 0;
  }

  /// Grows capacity (in whole blocks) so `extra_tokens` more rows fit after
  /// `len()`. Returns the number of newly allocated blocks — the quantity a
  /// serving block pool charges. Idempotent when capacity already suffices.
  std::int64_t reserve(std::int64_t extra_tokens);

  /// Writes K/V rows for `layer` / kv head `kvh` at token rows
  /// [len(), len()+rows). Capacity must already be reserved.
  void put(std::int64_t layer, std::int64_t kvh, const tensor::Tensor& k_rows,
           const tensor::Tensor& v_rows);

  /// Writes rows at an explicit token offset (used when gathering the shards
  /// of a distributed prefill into one cache).
  void put_at(std::int64_t layer, std::int64_t kvh, std::int64_t row0,
              const tensor::Tensor& k_rows, const tensor::Tensor& v_rows);

  /// Advances `len` after every layer has `put` its rows for the chunk.
  void commit(std::int64_t tokens);

  /// The first `rows` cached K (resp. V) rows of (layer, kvh), in place.
  tensor::ConstMatView k_view(std::int64_t layer, std::int64_t kvh,
                              std::int64_t rows) const;
  tensor::ConstMatView v_view(std::int64_t layer, std::int64_t kvh,
                              std::int64_t rows) const;

 private:
  std::int64_t idx(std::int64_t layer, std::int64_t kvh) const;
  void grow(tensor::Tensor& t, std::int64_t new_capacity) const;

  std::int64_t layers_ = 0;
  std::int64_t kv_heads_ = 0;
  std::int64_t head_dim_ = 0;
  std::int64_t block_tokens_ = 0;
  std::int64_t len_ = 0;
  std::int64_t capacity_ = 0;
  std::vector<tensor::Tensor> k_;  // [layer * kv_heads + kvh]
  std::vector<tensor::Tensor> v_;
};

}  // namespace burst::model
