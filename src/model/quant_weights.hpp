// Quantized serving weights (DESIGN.md section 16).
//
// QuantizedWeights is the serving-side mirror of ModelWeights: every
// projection matrix and the LM head packed once into tensor::PackedB
// operands at `cfg.quant.weights` (kF32, kQ8_0, or kQ4_0), so steady-state
// prefill/decode GEMMs stream the 4-8x smaller panels straight through the
// dequantize-in-microkernel path with zero per-call packing or heap
// traffic. The embedding stays an fp32 lookup table (it is a gather, not a
// GEMM).
//
// Mixed-precision policy: the quantized forward rounds activations to bf16
// at layer boundaries (after the embedding and after each block's residual
// output) — the paper's communication-boundary precision — while attention
// and GEMM accumulation stay fp32. Training is untouched: gradients and the
// training-path weights remain fp32; cfg.quant.weights == kBf16 (the
// default) means "serve the dense functional path" and nothing here is
// built.
//
// Determinism: the packed GEMMs inherit gemm()'s deterministic row-block
// partitioning, so quantized prefill/decode is bitwise reproducible across
// thread-pool sizes, and chunked prefill matches one-shot prefill exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/flash_attention.hpp"
#include "kernels/mask.hpp"
#include "model/config.hpp"
#include "model/kv_cache.hpp"
#include "model/transformer.hpp"
#include "tensor/gemm.hpp"

namespace burst::model {

struct QuantizedWeights {
  struct Layer {
    tensor::PackedB wq, wk, wv, wo, w1, w2;
  };
  std::vector<Layer> layers;
  /// op(B) = W_head^T [d, vocab]: logits = h @ W_head^T in one packed GEMM
  /// (or one aligned column window per vocab tile).
  tensor::PackedB w_head_t;
  tensor::DType dtype = tensor::DType::kF32;

  /// Packs every projection and the LM head at cfg.quant.weights.
  static QuantizedWeights pack(const ModelConfig& cfg, const ModelWeights& w);

  /// Total packed weight bytes at the serving dtype (scales + payload for
  /// quantized formats; the fp32 embedding table is excluded). Compare with
  /// the same weights at bf16/fp32 for the serving memory delta.
  std::uint64_t model_bytes() const;
};

/// LM-head logits over the packed head: [n, d] -> [n, vocab].
tensor::Tensor head_logits_q(const QuantizedWeights& qw,
                             const tensor::Tensor& h);

/// Quantized mirror of forward_prefill_chunk: same cache/mask contract,
/// projections run over the packed weights, activations rounded to bf16 at
/// layer boundaries.
tensor::Tensor forward_prefill_chunk_q(const ModelConfig& cfg,
                                       const ModelWeights& w,
                                       const QuantizedWeights& qw,
                                       SequenceKvCache& cache,
                                       const std::int64_t* tokens,
                                       std::int64_t count,
                                       const kernels::MaskSpec& mask,
                                       kernels::KernelStats* stats = nullptr);

/// Quantized mirror of forward_decode: returns next-token logits [vocab].
tensor::Tensor forward_decode_q(const ModelConfig& cfg, const ModelWeights& w,
                                const QuantizedWeights& qw,
                                SequenceKvCache& cache, std::int64_t token,
                                const kernels::MaskSpec& mask,
                                kernels::KernelStats* stats = nullptr);

}  // namespace burst::model
