// Functional LLaMA-style toy transformer (Eq. 2-3 of the paper):
//   H = ATTN(X) + X,  Y = FFN(H) + H  per block, stacked `layers` times,
// followed by the LM head + cross-entropy loss. Multi-head attention splits
// d_model into `heads` column slices. FFN is a two-matrix ReLU MLP (the
// paper's Eq. 2 does not prescribe gating; FLOP formulas in perfmodel use
// the gated LLaMA counts).
//
// The serial train step here is the ground truth that the distributed step
// in dist_model.hpp is validated against, and the workhorse of the toy
// training example.
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/flash_attention.hpp"
#include "kernels/mask.hpp"
#include "model/config.hpp"
#include "model/kv_cache.hpp"
#include "tensor/tensor.hpp"

namespace burst::model {

struct LayerWeights {
  tensor::Tensor wq, wk, wv, wo;  // [d, d]
  tensor::Tensor w1;              // [d, d_ff]
  tensor::Tensor w2;              // [d_ff, d]
};

struct ModelWeights {
  std::vector<LayerWeights> layers;
  tensor::Tensor w_embed;  // [vocab, d]
  tensor::Tensor w_head;   // [vocab, d]

  static ModelWeights init(const ModelConfig& cfg, std::uint64_t seed);
};

struct LayerGrads {
  tensor::Tensor wq, wk, wv, wo, w1, w2;
  static LayerGrads zeros(const ModelConfig& cfg);
};

struct ModelGrads {
  std::vector<LayerGrads> layers;
  tensor::Tensor w_embed;
  tensor::Tensor w_head;

  static ModelGrads zeros(const ModelConfig& cfg);
  void add(const ModelGrads& other);
  /// Largest |g| across all parameters (for comparisons / step sanity).
  float max_abs() const;
};

/// SGD update: w -= lr * g.
void apply_sgd(ModelWeights& w, const ModelGrads& g, float lr);

struct TrainStepResult {
  double loss = 0.0;  // mean next-token cross-entropy
  ModelGrads grads;
};

/// Full serial forward+backward for next-token prediction. `tokens` holds
/// N+1 token ids (float-encoded); rows 0..N-1 are inputs, 1..N targets.
TrainStepResult serial_train_step(const ModelConfig& cfg,
                                  const ModelWeights& w,
                                  const tensor::Tensor& tokens,
                                  const kernels::MaskSpec& mask);

/// Forward-only mean loss (for quick evaluation in examples).
double serial_loss(const ModelConfig& cfg, const ModelWeights& w,
                   const tensor::Tensor& tokens,
                   const kernels::MaskSpec& mask);

/// Forward-only per-prediction-row cross-entropy (row i predicts token
/// i+1). Used to score synthetic long-context tasks on exactly the rows the
/// task determines (model/data.hpp).
std::vector<double> serial_per_row_loss(const ModelConfig& cfg,
                                        const ModelWeights& w,
                                        const tensor::Tensor& tokens,
                                        const kernels::MaskSpec& mask);

// --- incremental decoding (serving path) ----------------------------------

/// LM-head logits for final-layer hidden states: [n, d] -> [n, vocab].
tensor::Tensor head_logits(const ModelWeights& w, const tensor::Tensor& h);

/// Index of the largest entry of a rank-1 tensor (greedy decoding).
std::int64_t argmax(const tensor::Tensor& logits);

/// One-shot full forward over `count` token ids: [count, vocab] logits.
/// The serving-path ground truth: chunked prefill + decode must reproduce
/// its rows (tests/test_serve_decode.cpp).
tensor::Tensor serial_forward_logits(const ModelConfig& cfg,
                                     const ModelWeights& w,
                                     const std::int64_t* tokens,
                                     std::int64_t count,
                                     const kernels::MaskSpec& mask);

/// Runs `count` prompt tokens at global positions [cache.len(),
/// cache.len()+count) through the stack, appending every layer's K/V rows to
/// `cache`, and returns the final-layer hidden states [count, d]. Each row
/// attends to the whole cached prefix under `mask`. Capacity is reserved
/// internally if the caller has not already done so (the serving engine
/// reserves first to charge its block pool). `stats`, when given,
/// accumulates attention-kernel FLOPs after mask skipping.
tensor::Tensor forward_prefill_chunk(const ModelConfig& cfg,
                                     const ModelWeights& w,
                                     SequenceKvCache& cache,
                                     const std::int64_t* tokens,
                                     std::int64_t count,
                                     const kernels::MaskSpec& mask,
                                     kernels::KernelStats* stats = nullptr);

/// Single-token decode step: appends `token`'s K/V at position cache.len()
/// and returns the next-token logits [vocab], using the append-one-query
/// attention path (kernels::flash_decode_step).
tensor::Tensor forward_decode(const ModelConfig& cfg, const ModelWeights& w,
                              SequenceKvCache& cache, std::int64_t token,
                              const kernels::MaskSpec& mask,
                              kernels::KernelStats* stats = nullptr);

}  // namespace burst::model
