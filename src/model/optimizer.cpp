#include "model/optimizer.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace burst::model {

namespace {

// Visits every parameter tensor of the model in a fixed order so the
// optimizer state layout is stable.
template <typename W, typename Fn>
void for_each_tensor(W& weights, Fn&& fn) {
  for (auto& l : weights.layers) {
    fn(l.wq);
    fn(l.wk);
    fn(l.wv);
    fn(l.wo);
    fn(l.w1);
    fn(l.w2);
  }
  fn(weights.w_embed);
  fn(weights.w_head);
}

}  // namespace

AdamOptimizer::AdamOptimizer(const ModelWeights& weights,
                             const AdamConfig& cfg, sim::MemoryTracker* mem)
    : cfg_(cfg), mem_(mem) {
  num_params_ = 0;
  for_each_tensor(weights, [this](const tensor::Tensor& t) {
    num_params_ += t.numel();
  });
  m_.assign(static_cast<std::size_t>(num_params_), 0.0f);
  v_.assign(static_cast<std::size_t>(num_params_), 0.0f);
  if (mem_ != nullptr && !cfg_.offload) {
    // fp32 master + m + v = 12 bytes per parameter on device.
    charged_ = static_cast<std::uint64_t>(num_params_) * 12;
    mem_->alloc(charged_, "adam state");
  }
}

AdamOptimizer::~AdamOptimizer() {
  if (charged_ > 0) {
    mem_->free(charged_);
  }
}

void AdamOptimizer::update_tensor(tensor::Tensor& w, const tensor::Tensor& g,
                                  std::size_t state_offset) {
  assert(w.numel() == g.numel());
  const float bc1 = 1.0f - std::pow(cfg_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(cfg_.beta2, static_cast<float>(t_));
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    const std::size_t s = state_offset + static_cast<std::size_t>(i);
    const float grad = g.data()[i];
    m_[s] = cfg_.beta1 * m_[s] + (1.0f - cfg_.beta1) * grad;
    v_[s] = cfg_.beta2 * v_[s] + (1.0f - cfg_.beta2) * grad * grad;
    const float mhat = m_[s] / bc1;
    const float vhat = v_[s] / bc2;
    w.data()[i] -= cfg_.lr * mhat / (std::sqrt(vhat) + cfg_.eps);
  }
}

AdamState AdamOptimizer::export_state() const { return {t_, m_, v_}; }

void AdamOptimizer::restore_state(const AdamState& s) {
  if (s.m.size() != m_.size() || s.v.size() != v_.size()) {
    throw std::invalid_argument(
        "AdamOptimizer::restore_state: state size mismatch (snapshot from a "
        "different model?)");
  }
  t_ = s.t;
  m_ = s.m;
  v_ = s.v;
}

void AdamOptimizer::step(ModelWeights& w, const ModelGrads& g) {
  ++t_;
  std::size_t offset = 0;
  std::size_t gi = 0;
  std::vector<tensor::Tensor*> wt;
  std::vector<const tensor::Tensor*> gt;
  for_each_tensor(w, [&](tensor::Tensor& t) { wt.push_back(&t); });
  for_each_tensor(g, [&](const tensor::Tensor& t) { gt.push_back(&t); });
  assert(wt.size() == gt.size());
  for (; gi < wt.size(); ++gi) {
    update_tensor(*wt[gi], *gt[gi], offset);
    offset += static_cast<std::size_t>(wt[gi]->numel());
  }
  assert(offset == static_cast<std::size_t>(num_params_));
}

}  // namespace burst::model
