#include "model/dist_model.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/sweep.hpp"
#include "core/ulysses.hpp"
#include "core/usp.hpp"
#include "kernels/flash_attention.hpp"
#include "kernels/lm_head.hpp"
#include "kernels/rope.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace burst::model {

using core::Balance;
using core::CkptStrategy;
using core::DistAttnConfig;
using core::SweepRoute;
using kernels::IndexMap;
using kernels::MaskSpec;
using tensor::Tensor;

const char* attn_impl_name(AttnImpl impl) {
  switch (impl) {
    case AttnImpl::kBurst:
      return "BurstAttention";
    case AttnImpl::kRing:
      return "RingAttention";
    case AttnImpl::kUlysses:
      return "Ulysses";
    case AttnImpl::kUsp:
      return "USP";
  }
  return "?";
}

namespace {

// Model dimensions enter the simulated-FLOP arithmetic as doubles.
inline double fd(std::int64_t v) { return static_cast<double>(v); }

IndexMap index_map_for(const DistTrainConfig& cfg, std::int64_t n,
                       int world_size, int rank) {
  switch (cfg.impl) {
    case AttnImpl::kUlysses:
      return core::device_index_map(Balance::kContiguous, n, world_size, rank);
    case AttnImpl::kUsp: {
      core::UspConfig uc;
      uc.seq_len = n;
      uc.num_heads = static_cast<int>(cfg.model.heads);
      uc.head_parallel = cfg.usp_head_parallel;
      uc.balance = cfg.balance;
      return core::usp_local_index_map(uc, world_size, rank);
    }
    default:
      return core::device_index_map(cfg.balance, n, world_size, rank);
  }
}

// Approximate "as-if bf16" byte count for memory accounting.
std::uint64_t bf16_bytes(const Tensor& t) {
  return static_cast<std::uint64_t>(t.numel()) * 2;
}

// Everything a layer may keep between forward and backward. Which fields are
// populated depends on the checkpoint strategy / attention impl.
struct LayerCache {
  Tensor x_in;  // always stored (the gradient-checkpoint boundary)
  // kNone: full serial-style cache.
  bool full = false;
  std::vector<Tensor> q, k, v;
  Tensor attn_concat, h, u_pre, u;
  // Attention outputs (per head): all rows (SelectivePP / kNone), the stored
  // tail (SeqSelective), or nothing (Full).
  std::vector<Tensor> o_stored, lse_stored;
  std::vector<std::int64_t> stored_rows;  // local row indices kept
  // Ulysses / USP saved state (these impls manage their own full cache).
  core::UlyssesSaved ulysses;
  core::UspSaved usp;
  std::uint64_t charged_bytes = 0;  // what we alloc'd on the MemoryTracker
};

struct DeviceState {
  const DistTrainConfig* cfg = nullptr;
  comm::Communicator* comm = nullptr;
  std::int64_t n_global = 0;
  IndexMap map = IndexMap::range(0, 0);
  SweepRoute route = SweepRoute::flat(comm::flat_ring(1));
  float scale = 1.0f;

  DistAttnConfig attn_cfg() const {
    DistAttnConfig ac;
    ac.mask = cfg->mask;
    ac.scale = scale;
    ac.balance = cfg->balance;
    ac.backward = cfg->impl == AttnImpl::kRing ? core::BackwardComm::kRing
                                               : core::BackwardComm::kBurst;
    ac.overlap = cfg->overlap;
    ac.seq_len = n_global;
    return ac;
  }

  core::UlyssesConfig ulysses_cfg() const {
    core::UlyssesConfig uc;
    uc.mask = cfg->mask;
    uc.scale = scale;
    uc.seq_len = n_global;
    uc.num_heads = static_cast<int>(cfg->model.heads);
    return uc;
  }

  core::UspConfig usp_cfg() const {
    core::UspConfig uc;
    uc.mask = cfg->mask;
    uc.scale = scale;
    uc.seq_len = n_global;
    uc.num_heads = static_cast<int>(cfg->model.heads);
    uc.head_parallel = cfg->usp_head_parallel;
    uc.balance = cfg->balance;
    uc.backward = core::BackwardComm::kRing;
    uc.overlap = cfg->overlap;
    return uc;
  }
};

std::vector<Tensor> split_heads(const Tensor& all, std::int64_t heads,
                                std::int64_t dh) {
  std::vector<Tensor> out;
  out.reserve(static_cast<std::size_t>(heads));
  for (std::int64_t h = 0; h < heads; ++h) {
    out.push_back(tensor::copy_cols(all, h * dh, dh));
  }
  return out;
}

// RoPE over the device's *global* positions (the CP correctness trap the
// kernels/rope.hpp header documents).
void maybe_rope(const DeviceState& st, std::vector<Tensor>* heads) {
  if (!st.cfg->model.use_rope) {
    return;
  }
  for (auto& h : *heads) {
    kernels::apply_rope_inplace(h, st.map);
  }
}

void maybe_rope_inverse(const DeviceState& st, Tensor* grad_head) {
  if (st.cfg->model.use_rope) {
    kernels::apply_rope_inverse_inplace(*grad_head, st.map);
  }
}

// Multi-head distributed attention forward; returns per-head (O, Lse).
void attention_forward(DeviceState& st, const std::vector<Tensor>& q,
                       const std::vector<Tensor>& k,
                       const std::vector<Tensor>& v, LayerCache& cache,
                       std::vector<Tensor>* o_out,
                       std::vector<Tensor>* lse_out) {
  const auto& cfg = *st.cfg;
  if (cfg.model.num_kv_heads() != cfg.model.heads &&
      (cfg.impl == AttnImpl::kUlysses || cfg.impl == AttnImpl::kUsp)) {
    // Head parallelism would have to replicate shared K/V heads across the
    // query-head owners; unsupported here (the same constraint limits
    // DeepSpeed-Ulysses degrees to the KV head count on real GQA models).
    throw std::invalid_argument(
        "GQA (kv_heads != heads) requires a context-parallel attention impl");
  }
  switch (cfg.impl) {
    case AttnImpl::kBurst:
    case AttnImpl::kRing: {
      const std::size_t group = static_cast<std::size_t>(cfg.model.group_size());
      for (std::size_t h = 0; h < q.size(); ++h) {
        core::LocalQKV local{q[h], k[h / group], v[h / group]};
        auto r = core::dist_attention_forward(*st.comm, st.route,
                                              st.attn_cfg(), local);
        o_out->push_back(std::move(r.o));
        lse_out->push_back(std::move(r.lse));
      }
      break;
    }
    case AttnImpl::kUlysses: {
      auto o_local =
          ulysses_forward(*st.comm, st.ulysses_cfg(), q, k, v, &cache.ulysses);
      *o_out = std::move(o_local);
      lse_out->clear();  // lse lives inside cache.ulysses
      break;
    }
    case AttnImpl::kUsp: {
      auto o_local = usp_forward(*st.comm, st.usp_cfg(), q, k, v, &cache.usp);
      *o_out = std::move(o_local);
      lse_out->clear();
      break;
    }
  }
}

// Local row indices whose attention output is stored under the strategy.
std::vector<std::int64_t> stored_local_rows(const DistTrainConfig& cfg,
                                            const IndexMap& map,
                                            std::int64_t n_global) {
  std::vector<std::int64_t> rows;
  for (std::int64_t i = 0; i < map.size(); ++i) {
    if (core::stores_position(cfg.ckpt, map.global(i), n_global)) {
      rows.push_back(i);
    }
  }
  return rows;
}

Tensor gather_rows(const Tensor& t, const std::vector<std::int64_t>& rows) {
  Tensor out(static_cast<std::int64_t>(rows.size()), t.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::int64_t c = 0; c < t.cols(); ++c) {
      out(static_cast<std::int64_t>(i), c) = t(rows[i], c);
    }
  }
  return out;
}

Tensor gather_vec(const Tensor& t, const std::vector<std::int64_t>& rows) {
  Tensor out(static_cast<std::int64_t>(rows.size()));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out[static_cast<std::int64_t>(i)] = t[rows[i]];
  }
  return out;
}

// Charges `t` to the device memory tracker and records it in the cache.
void charge(DeviceState& st, LayerCache& cache, const Tensor& t,
            const char* tag) {
  const std::uint64_t bytes = bf16_bytes(t);
  st.comm->transport().mem().alloc(bytes, tag);
  cache.charged_bytes += bytes;
}

struct LayerForwardOut {
  Tensor y;
};

LayerForwardOut dist_layer_forward(DeviceState& st, const LayerWeights& w,
                                   const Tensor& x, LayerCache& cache) {
  const auto& m = st.cfg->model;
  const std::int64_t dh = m.head_dim();
  cache.x_in = x;
  charge(st, cache, x, "ckpt input");

  Tensor q_all = tensor::matmul(x, w.wq);
  Tensor k_all = tensor::matmul(x, w.wk);
  Tensor v_all = tensor::matmul(x, w.wv);
  st.comm->transport().compute(
      2.0 * static_cast<double>(x.rows()) *
      (fd(m.d_model) * fd(m.d_model) +
         2.0 * fd(m.d_model) * fd(m.d_kv())));
  std::vector<Tensor> q = split_heads(q_all, m.heads, dh);
  std::vector<Tensor> k = split_heads(k_all, m.num_kv_heads(), dh);
  std::vector<Tensor> v = split_heads(v_all, m.num_kv_heads(), dh);
  maybe_rope(st, &q);
  maybe_rope(st, &k);

  std::vector<Tensor> o, lse;
  attention_forward(st, q, k, v, cache, &o, &lse);

  Tensor attn_concat(x.rows(), m.d_model);
  for (std::int64_t h = 0; h < m.heads; ++h) {
    tensor::set_cols(attn_concat, h * dh, o[static_cast<std::size_t>(h)]);
  }
  Tensor a = tensor::matmul(attn_concat, w.wo);
  Tensor hres = tensor::add(a, x);
  Tensor u_pre = tensor::matmul(hres, w.w1);
  Tensor u = tensor::relu(u_pre);
  Tensor y = tensor::matmul(u, w.w2);
  tensor::add_inplace(y, hres);
  st.comm->transport().compute(2.0 * static_cast<double>(x.rows()) *
                         (fd(m.d_model) * fd(m.d_model) +
                          2.0 * fd(m.d_model) * fd(m.d_ff)));

  // --- what survives until backward ----------------------------------------
  const bool external_cache = st.cfg->impl == AttnImpl::kUlysses ||
                              st.cfg->impl == AttnImpl::kUsp;
  if (external_cache) {
    // Ulysses/USP keep their own full-sequence per-head state; account it.
    const auto& saved_o =
        st.cfg->impl == AttnImpl::kUlysses ? cache.ulysses.o : cache.usp.o;
    for (const auto& t : saved_o) {
      charge(st, cache, t, "ulysses saved");
    }
    cache.full = false;
    return {y};
  }
  if (st.cfg->ckpt.strategy == CkptStrategy::kNone) {
    cache.full = true;
    cache.q = std::move(q);
    cache.k = std::move(k);
    cache.v = std::move(v);
    cache.o_stored = std::move(o);
    cache.lse_stored = std::move(lse);
    cache.attn_concat = std::move(attn_concat);
    cache.h = std::move(hres);
    cache.u_pre = std::move(u_pre);
    cache.u = std::move(u);
    for (const auto& t : cache.q) {
      charge(st, cache, t, "acts q");
    }
    for (const auto& t : cache.k) {
      charge(st, cache, t, "acts k");
    }
    for (const auto& t : cache.v) {
      charge(st, cache, t, "acts v");
    }
    for (const auto& t : cache.o_stored) {
      charge(st, cache, t, "acts o");
    }
    charge(st, cache, cache.attn_concat, "acts attn");
    charge(st, cache, cache.h, "acts h");
    charge(st, cache, cache.u_pre, "acts u_pre");
    charge(st, cache, cache.u, "acts u");
    return {y};
  }

  // Checkpointed path: keep only the attention outputs the strategy stores.
  cache.stored_rows = stored_local_rows(*st.cfg, st.map, st.n_global);
  if (!cache.stored_rows.empty()) {
    for (std::int64_t h = 0; h < m.heads; ++h) {
      const std::size_t hi = static_cast<std::size_t>(h);
      cache.o_stored.push_back(gather_rows(o[hi], cache.stored_rows));
      cache.lse_stored.push_back(gather_vec(lse[hi], cache.stored_rows));
      charge(st, cache, cache.o_stored.back(), "stored attn out");
    }
  }
  return {y};
}

// Rebuilds the full per-head (O, Lse) for backward: stored rows are
// restored, missing rows recomputed with a distributed subset forward.
void rebuild_attention_outputs(DeviceState& st,
                               const std::vector<Tensor>& q,
                               const std::vector<Tensor>& k,
                               const std::vector<Tensor>& v,
                               const LayerCache& cache, std::vector<Tensor>* o,
                               std::vector<Tensor>* lse) {
  const auto& m = st.cfg->model;
  const std::int64_t n_loc = st.map.size();
  std::vector<bool> is_stored(static_cast<std::size_t>(n_loc), false);
  for (std::int64_t r : cache.stored_rows) {
    is_stored[static_cast<std::size_t>(r)] = true;
  }
  std::vector<std::int64_t> missing;
  for (std::int64_t i = 0; i < n_loc; ++i) {
    if (!is_stored[static_cast<std::size_t>(i)]) {
      missing.push_back(i);
    }
  }
  // Global positions of the missing rows (merged into segments).
  std::vector<std::pair<std::int64_t, std::int64_t>> segs;
  for (std::int64_t r : missing) {
    const std::int64_t g = st.map.global(r);
    if (!segs.empty() && segs.back().first + segs.back().second == g) {
      ++segs.back().second;
    } else {
      segs.push_back({g, 1});
    }
  }
  const IndexMap missing_map = IndexMap::segments(segs);

  const std::int64_t group = st.cfg->model.group_size();
  for (std::int64_t h = 0; h < m.heads; ++h) {
    const std::size_t hi = static_cast<std::size_t>(h);
    const std::size_t kvh = static_cast<std::size_t>(h / group);
    Tensor o_full = Tensor::zeros(n_loc, m.head_dim());
    Tensor lse_full(n_loc);
    // Every rank participates in the recompute sweep even with nothing
    // missing locally (its K/V shard feeds the ring).
    Tensor q_sub = gather_rows(q[hi], missing);
    auto rec = core::dist_attention_forward_subset(
        *st.comm, st.route, st.attn_cfg(), q_sub, missing_map, k[kvh],
        v[kvh]);
    for (std::size_t i = 0; i < missing.size(); ++i) {
      const std::int64_t row = missing[i];
      for (std::int64_t c = 0; c < m.head_dim(); ++c) {
        o_full(row, c) = rec.o(static_cast<std::int64_t>(i), c);
      }
      lse_full[row] = rec.lse[static_cast<std::int64_t>(i)];
    }
    for (std::size_t i = 0; i < cache.stored_rows.size(); ++i) {
      const std::int64_t row = cache.stored_rows[i];
      for (std::int64_t c = 0; c < m.head_dim(); ++c) {
        o_full(row, c) = cache.o_stored[hi](static_cast<std::int64_t>(i), c);
      }
      lse_full[row] = cache.lse_stored[hi][static_cast<std::int64_t>(i)];
    }
    o->push_back(std::move(o_full));
    lse->push_back(std::move(lse_full));
  }
}

Tensor dist_layer_backward(DeviceState& st, const LayerWeights& w,
                           LayerCache& cache, const Tensor& d_y,
                           LayerGrads& g) {
  const auto& m = st.cfg->model;
  const std::int64_t dh = m.head_dim();
  const Tensor& x = cache.x_in;
  const bool external_cache = st.cfg->impl == AttnImpl::kUlysses ||
                              st.cfg->impl == AttnImpl::kUsp;

  // ---- recompute (or restore) the forward intermediates --------------------
  std::vector<Tensor> q, k, v, o, lse;
  Tensor attn_concat, hres, u_pre, u;
  if (cache.full) {
    q = std::move(cache.q);
    k = std::move(cache.k);
    v = std::move(cache.v);
    o = std::move(cache.o_stored);
    lse = std::move(cache.lse_stored);
    attn_concat = std::move(cache.attn_concat);
    hres = std::move(cache.h);
    u_pre = std::move(cache.u_pre);
    u = std::move(cache.u);
  } else {
    Tensor q_all = tensor::matmul(x, w.wq);
    Tensor k_all = tensor::matmul(x, w.wk);
    Tensor v_all = tensor::matmul(x, w.wv);
    st.comm->transport().compute(
        2.0 * static_cast<double>(x.rows()) *
        (fd(m.d_model) * fd(m.d_model) +
         2.0 * fd(m.d_model) * fd(m.d_kv())));
    q = split_heads(q_all, m.heads, dh);
    k = split_heads(k_all, m.num_kv_heads(), dh);
    v = split_heads(v_all, m.num_kv_heads(), dh);
    maybe_rope(st, &q);
    maybe_rope(st, &k);
    if (external_cache) {
      // Local O comes back out of the saved head-sharded state lazily in the
      // backward call; for the concat we recompute via a fresh forward on
      // the saved state (outputs equal the stored ones).
      o.clear();
      if (st.cfg->impl == AttnImpl::kUlysses) {
        core::UlyssesSaved scratch;
        o = ulysses_forward(*st.comm, st.ulysses_cfg(), q, k, v, &scratch);
      } else {
        core::UspSaved scratch;
        o = usp_forward(*st.comm, st.usp_cfg(), q, k, v, &scratch);
      }
    } else {
      rebuild_attention_outputs(st, q, k, v, cache, &o, &lse);
    }
    attn_concat = Tensor(x.rows(), m.d_model);
    for (std::int64_t h = 0; h < m.heads; ++h) {
      tensor::set_cols(attn_concat, h * dh, o[static_cast<std::size_t>(h)]);
    }
    Tensor a = tensor::matmul(attn_concat, w.wo);
    hres = tensor::add(a, x);
    u_pre = tensor::matmul(hres, w.w1);
    u = tensor::relu(u_pre);
    st.comm->transport().compute(2.0 * static_cast<double>(x.rows()) *
                           (fd(m.d_model) * fd(m.d_model) +
                            fd(m.d_model) * fd(m.d_ff)));
  }

  // ---- backward math (mirrors the serial layer) ----------------------------
  Tensor du = tensor::matmul_nt(d_y, w.w2);
  tensor::add_inplace(g.w2, tensor::matmul_tn(u, d_y));
  du = tensor::relu_backward(du, u_pre);
  Tensor dh_total = tensor::matmul_nt(du, w.w1);
  tensor::add_inplace(g.w1, tensor::matmul_tn(hres, du));
  tensor::add_inplace(dh_total, d_y);

  Tensor d_attn = tensor::matmul_nt(dh_total, w.wo);
  tensor::add_inplace(g.wo, tensor::matmul_tn(attn_concat, dh_total));
  st.comm->transport().compute(4.0 * static_cast<double>(x.rows()) *
                         (fd(m.d_model) * fd(m.d_model) +
                          2.0 * fd(m.d_model) * fd(m.d_ff)));

  std::vector<Tensor> d_o_heads = split_heads(d_attn, m.heads, dh);
  Tensor dq_all(x.rows(), m.d_model);
  Tensor dk_all(x.rows(), m.d_kv());
  Tensor dv_all(x.rows(), m.d_kv());
  if (st.cfg->impl == AttnImpl::kUlysses) {
    auto grads =
        ulysses_backward(*st.comm, st.ulysses_cfg(), cache.ulysses, d_o_heads);
    for (std::int64_t h = 0; h < m.heads; ++h) {
      const std::size_t hi = static_cast<std::size_t>(h);
      tensor::set_cols(dq_all, h * dh, grads.dq[hi]);
      tensor::set_cols(dk_all, h * dh, grads.dk[hi]);
      tensor::set_cols(dv_all, h * dh, grads.dv[hi]);
    }
  } else if (st.cfg->impl == AttnImpl::kUsp) {
    auto grads = usp_backward(*st.comm, st.usp_cfg(), cache.usp, d_o_heads);
    for (std::int64_t h = 0; h < m.heads; ++h) {
      const std::size_t hi = static_cast<std::size_t>(h);
      tensor::set_cols(dq_all, h * dh, grads.dq[hi]);
      tensor::set_cols(dk_all, h * dh, grads.dk[hi]);
      tensor::set_cols(dv_all, h * dh, grads.dv[hi]);
    }
  } else {
    const std::int64_t group = m.group_size();
    dk_all.fill(0.0f);
    dv_all.fill(0.0f);
    for (std::int64_t h = 0; h < m.heads; ++h) {
      const std::size_t hi = static_cast<std::size_t>(h);
      const std::size_t kvh = static_cast<std::size_t>(h / group);
      core::LocalQKV local{q[hi], k[kvh], v[kvh]};
      kernels::AttnResult fwd;
      fwd.o = o[hi];
      fwd.lse = lse[hi];
      auto grads = core::dist_attention_backward(
          *st.comm, st.route, st.attn_cfg(), local, fwd, d_o_heads[hi]);
      maybe_rope_inverse(st, &grads.dq);
      maybe_rope_inverse(st, &grads.dk);
      tensor::set_cols(dq_all, h * dh, grads.dq);
      // Query heads of one group accumulate into their shared K/V head.
      tensor::add_cols_inplace(dk_all,
                               static_cast<std::int64_t>(kvh) * dh, grads.dk);
      tensor::add_cols_inplace(dv_all,
                               static_cast<std::int64_t>(kvh) * dh, grads.dv);
    }
  }

  Tensor dx = dh_total;
  tensor::add_inplace(dx, tensor::matmul_nt(dq_all, w.wq));
  tensor::add_inplace(dx, tensor::matmul_nt(dk_all, w.wk));
  tensor::add_inplace(dx, tensor::matmul_nt(dv_all, w.wv));
  tensor::add_inplace(g.wq, tensor::matmul_tn(x, dq_all));
  tensor::add_inplace(g.wk, tensor::matmul_tn(x, dk_all));
  tensor::add_inplace(g.wv, tensor::matmul_tn(x, dv_all));
  st.comm->transport().compute(12.0 * static_cast<double>(x.rows()) * fd(m.d_model) *
                         fd(m.d_model));

  // Release everything this layer had charged.
  st.comm->transport().mem().free(cache.charged_bytes);
  cache.charged_bytes = 0;
  return dx;
}

}  // namespace

IndexMap dist_index_map(const DistTrainConfig& cfg, std::int64_t seq_len,
                        int world_size, int rank) {
  return index_map_for(cfg, seq_len, world_size, rank);
}

DistStepResult dist_train_step(comm::Communicator& comm,
                               const DistTrainConfig& cfg,
                               const ModelWeights& weights,
                               const Tensor& tokens) {
  const auto& m = cfg.model;
  const int g = comm.world_size();
  const std::int64_t n = tokens.numel() - 1;

  DeviceState st;
  st.cfg = &cfg;
  st.comm = &comm;
  st.n_global = n;
  st.map = index_map_for(cfg, n, g, comm.rank());
  st.scale = 1.0f / std::sqrt(static_cast<float>(m.head_dim()));
  const bool multi = comm.transport().topo().num_nodes > 1;
  st.route = (cfg.topo_aware && multi)
                 ? SweepRoute::double_ring(comm.transport().topo())
                 : SweepRoute::flat(comm::flat_ring(g));

  // ---- embedding -------------------------------------------------------------
  const std::int64_t n_loc = st.map.size();
  Tensor x(n_loc, m.d_model);
  for (std::int64_t i = 0; i < n_loc; ++i) {
    const auto tok = static_cast<std::int64_t>(tokens[st.map.global(i)]);
    for (std::int64_t c = 0; c < m.d_model; ++c) {
      x(i, c) = weights.w_embed(tok, c);
    }
  }

  // ---- forward ----------------------------------------------------------------
  std::vector<LayerCache> caches(static_cast<std::size_t>(m.layers));
  for (std::int64_t l = 0; l < m.layers; ++l) {
    auto out = dist_layer_forward(st, weights.layers[static_cast<std::size_t>(l)],
                                  x, caches[static_cast<std::size_t>(l)]);
    x = std::move(out.y);
  }

  // ---- LM head + loss (sequence-parallel: local rows, full vocabulary) -------
  std::vector<std::int64_t> targets(static_cast<std::size_t>(n_loc));
  for (std::int64_t i = 0; i < n_loc; ++i) {
    targets[static_cast<std::size_t>(i)] =
        static_cast<std::int64_t>(tokens[st.map.global(i) + 1]);
  }
  kernels::LmHeadResult lm;
  if (cfg.fused_lm_head) {
    lm = kernels::fused_lm_head_loss(x, weights.w_head, targets, 32, 64);
  } else {
    lm = kernels::naive_lm_head_loss(x, weights.w_head, targets);
  }
  // Charge the LM-head scratch high-water mark (fp32 actual -> as-if bf16).
  comm.transport().mem().alloc(lm.peak_scratch_bytes / 2, "lm head scratch");
  comm.transport().compute(static_cast<double>(lm.flops));

  // Global mean loss: every shard has N/G rows, so the global mean is the
  // average of local means; gradient scale follows.
  DistStepResult out;
  out.grads = ModelGrads::zeros(m);
  const float inv_g = 1.0f / static_cast<float>(g);
  Tensor loss_t(1, 1);
  loss_t(0, 0) = static_cast<float>(lm.loss) * inv_g;
  comm.all_reduce_group_inplace(
      [&] {
        std::vector<int> world(static_cast<std::size_t>(g));
        for (int r = 0; r < g; ++r) {
          world[static_cast<std::size_t>(r)] = r;
        }
        return world;
      }(),
      loss_t);
  out.loss = loss_t(0, 0);

  out.grads.w_head = std::move(lm.dw);
  tensor::scale_inplace(out.grads.w_head, inv_g);
  Tensor dx = std::move(lm.dh);
  tensor::scale_inplace(dx, inv_g);
  comm.transport().mem().free(lm.peak_scratch_bytes / 2);

  // ---- backward ------------------------------------------------------------
  for (std::int64_t l = m.layers - 1; l >= 0; --l) {
    dx = dist_layer_backward(st, weights.layers[static_cast<std::size_t>(l)],
                             caches[static_cast<std::size_t>(l)], dx,
                             out.grads.layers[static_cast<std::size_t>(l)]);
  }
  for (std::int64_t i = 0; i < n_loc; ++i) {
    const auto tok = static_cast<std::int64_t>(tokens[st.map.global(i)]);
    for (std::int64_t c = 0; c < m.d_model; ++c) {
      out.grads.w_embed(tok, c) += dx(i, c);
    }
  }

  // ---- data-parallel gradient synchronization --------------------------------
  if (!cfg.sync_grads) {
    return out;  // caller reduce-scatters (FSDP)
  }
  std::vector<int> world(static_cast<std::size_t>(g));
  for (int r = 0; r < g; ++r) {
    world[static_cast<std::size_t>(r)] = r;
  }
  for (auto& lg : out.grads.layers) {
    comm.all_reduce_group_inplace(world, lg.wq);
    comm.all_reduce_group_inplace(world, lg.wk);
    comm.all_reduce_group_inplace(world, lg.wv);
    comm.all_reduce_group_inplace(world, lg.wo);
    comm.all_reduce_group_inplace(world, lg.w1);
    comm.all_reduce_group_inplace(world, lg.w2);
  }
  comm.all_reduce_group_inplace(world, out.grads.w_embed);
  comm.all_reduce_group_inplace(world, out.grads.w_head);
  return out;
}

}  // namespace burst::model
