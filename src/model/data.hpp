// Synthetic long-context task generators.
//
// The paper motivates 1M-token training with documents/code/video; to
// exercise long-range behaviour at toy scale the examples and tests use
// tasks with *controllable* dependency ranges:
//
//   * kMarkov    — token t+1 = f(token t) with noise: learnable from local
//                  context only (baseline task);
//   * kCopy      — the second half of the sequence repeats the first half:
//                  position i must attend exactly N/2 tokens back;
//   * kInduction — random [key value ... key ?] pairs: predicting `?`
//                  requires finding the earlier occurrence of `key`
//                  (induction-head behaviour, arbitrary-range attention);
//   * kNeedle    — a sentinel key/value pair is planted at a random early
//                  position and queried at the end (needle in a haystack).
//
// All generators emit N+1 token ids (inputs + next-token targets) and are
// fully deterministic in the seed.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace burst::model {

enum class TaskKind {
  kMarkov,
  kCopy,
  kInduction,
  kNeedle,
};

const char* task_name(TaskKind kind);

/// Generates N+1 token ids for the task, in [0, vocab).
/// Requirements: vocab >= 8; for kCopy, N even.
tensor::Tensor make_task_sequence(TaskKind kind, std::uint64_t seed,
                                  std::int64_t n, std::int64_t vocab);

/// Positions (0-based prediction indices, i.e. row i predicts token i+1)
/// whose targets are *determined* by the task structure — the ones a model
/// must learn long-range attention to get right. Loss restricted to these
/// rows measures task success rather than noise modeling.
std::vector<std::int64_t> task_determined_rows(TaskKind kind, std::int64_t n);

}  // namespace burst::model
