#include "model/data.hpp"

#include <cassert>
#include <stdexcept>

#include "tensor/rng.hpp"

namespace burst::model {

using tensor::Tensor;

const char* task_name(TaskKind kind) {
  switch (kind) {
    case TaskKind::kMarkov:
      return "markov";
    case TaskKind::kCopy:
      return "copy";
    case TaskKind::kInduction:
      return "induction";
    case TaskKind::kNeedle:
      return "needle";
  }
  return "?";
}

Tensor make_task_sequence(TaskKind kind, std::uint64_t seed, std::int64_t n,
                          std::int64_t vocab) {
  if (vocab < 8) {
    throw std::invalid_argument("task generators need vocab >= 8");
  }
  tensor::Rng rng(seed);
  Tensor t(n + 1);
  switch (kind) {
    case TaskKind::kMarkov: {
      std::int64_t cur = rng.next_index(vocab);
      for (std::int64_t i = 0; i <= n; ++i) {
        t[i] = static_cast<float>(cur);
        cur = rng.next_uniform() < 0.9 ? (3 * cur + 7) % vocab
                                       : rng.next_index(vocab);
      }
      break;
    }
    case TaskKind::kCopy: {
      if (n % 2 != 0) {
        throw std::invalid_argument("copy task needs even N");
      }
      const std::int64_t half = n / 2;
      for (std::int64_t i = 0; i < half; ++i) {
        t[i] = static_cast<float>(rng.next_index(vocab));
      }
      for (std::int64_t i = half; i <= n; ++i) {
        t[i] = t[i - half];
      }
      break;
    }
    case TaskKind::kInduction: {
      // Pairs (key, value) drawn from disjoint vocabulary halves; keys
      // repeat so later occurrences are predictable from earlier ones.
      const std::int64_t keys = vocab / 2;
      std::vector<std::int64_t> value_of(static_cast<std::size_t>(keys), -1);
      std::int64_t i = 0;
      while (i <= n) {
        const std::int64_t key = rng.next_index(keys);
        auto& val = value_of[static_cast<std::size_t>(key)];
        if (val < 0) {
          val = keys + rng.next_index(vocab - keys);
        }
        t[i] = static_cast<float>(key);
        if (i + 1 <= n) {
          t[i + 1] = static_cast<float>(val);
        }
        i += 2;
      }
      break;
    }
    case TaskKind::kNeedle: {
      // Haystack of filler tokens from [2, vocab); needle "0 v" planted
      // early; query "0" as the second-to-last token, answer v last.
      for (std::int64_t i = 0; i <= n; ++i) {
        t[i] = static_cast<float>(2 + rng.next_index(vocab - 2));
      }
      const std::int64_t needle_val = 2 + rng.next_index(vocab - 2);
      const std::int64_t pos = 1 + rng.next_index(std::max<std::int64_t>(
                                       1, n / 4));
      t[pos] = 0.0f;  // key sentinel
      t[pos + 1] = static_cast<float>(needle_val);
      t[n - 1] = 0.0f;  // query
      t[n] = static_cast<float>(needle_val);
      break;
    }
  }
  return t;
}

std::vector<std::int64_t> task_determined_rows(TaskKind kind, std::int64_t n) {
  std::vector<std::int64_t> rows;
  switch (kind) {
    case TaskKind::kMarkov:
      for (std::int64_t i = 0; i < n; ++i) {
        rows.push_back(i);
      }
      break;
    case TaskKind::kCopy:
      // Rows predicting the repeated half: i >= N/2 - 1 predicts token
      // i+1 which equals token i+1-N/2 (known once the first half is seen).
      for (std::int64_t i = n / 2 - 1; i < n; ++i) {
        rows.push_back(i);
      }
      break;
    case TaskKind::kInduction:
      // Value positions: odd indices predict a value determined by their
      // key, learnable once the (key, value) pair occurred before.
      for (std::int64_t i = 0; i < n; i += 2) {
        rows.push_back(i);  // row i predicts token i+1 (the value)
      }
      break;
    case TaskKind::kNeedle:
      rows.push_back(n - 1);  // the final answer
      break;
  }
  return rows;
}

}  // namespace burst::model
