#include "model/fsdp.hpp"

#include <cassert>
#include <stdexcept>

#include "sim/phase_metrics.hpp"
#include "tensor/ops.hpp"

namespace burst::model {

using tensor::Tensor;

namespace {

Tensor shard_of(const Tensor& full, int world, int rank) {
  if (full.rows() % world != 0) {
    throw std::invalid_argument("FSDP: rows " + std::to_string(full.rows()) +
                                " not divisible by world " +
                                std::to_string(world));
  }
  const std::int64_t m = full.rows() / world;
  return full.copy_rows(rank * m, m);
}

}  // namespace

FsdpShards FsdpShards::shard(const ModelConfig& cfg, const ModelWeights& full,
                             int world, int rank) {
  (void)cfg;
  FsdpShards s;
  for (const auto& l : full.layers) {
    LayerWeights lw;
    lw.wq = shard_of(l.wq, world, rank);
    lw.wk = shard_of(l.wk, world, rank);
    lw.wv = shard_of(l.wv, world, rank);
    lw.wo = shard_of(l.wo, world, rank);
    lw.w1 = shard_of(l.w1, world, rank);
    lw.w2 = shard_of(l.w2, world, rank);
    s.layers.push_back(std::move(lw));
  }
  s.w_embed = shard_of(full.w_embed, world, rank);
  s.w_head = shard_of(full.w_head, world, rank);
  return s;
}

std::uint64_t FsdpShards::shard_bytes() const {
  std::uint64_t total = 0;
  const auto add = [&total](const Tensor& t) {
    total += static_cast<std::uint64_t>(t.numel()) * 2;
  };
  for (const auto& l : layers) {
    add(l.wq);
    add(l.wk);
    add(l.wv);
    add(l.wo);
    add(l.w1);
    add(l.w2);
  }
  add(w_embed);
  add(w_head);
  return total;
}

LayerWeights fsdp_gather_layer(comm::Communicator& comm,
                               const FsdpShards& shards, std::int64_t layer) {
  sim::ScopedPhaseMetrics phase(comm.transport(), "fsdp.gather");
  const auto& l = shards.layers[static_cast<std::size_t>(layer)];
  LayerWeights full;
  full.wq = comm.all_gather_rows(l.wq);
  full.wk = comm.all_gather_rows(l.wk);
  full.wv = comm.all_gather_rows(l.wv);
  full.wo = comm.all_gather_rows(l.wo);
  full.w1 = comm.all_gather_rows(l.w1);
  full.w2 = comm.all_gather_rows(l.w2);
  return full;
}

Tensor fsdp_gather_embed(comm::Communicator& comm, const FsdpShards& shards) {
  sim::ScopedPhaseMetrics phase(comm.transport(), "fsdp.gather");
  return comm.all_gather_rows(shards.w_embed);
}

Tensor fsdp_gather_head(comm::Communicator& comm, const FsdpShards& shards) {
  sim::ScopedPhaseMetrics phase(comm.transport(), "fsdp.gather");
  return comm.all_gather_rows(shards.w_head);
}

FsdpShards fsdp_reduce_scatter_grads(comm::Communicator& comm,
                                     const ModelConfig& cfg,
                                     const ModelGrads& full) {
  (void)cfg;
  sim::ScopedPhaseMetrics phase(comm.transport(), "fsdp.reduce_scatter");
  FsdpShards out;
  for (const auto& l : full.layers) {
    LayerWeights lw;
    lw.wq = comm.reduce_scatter_rows(l.wq);
    lw.wk = comm.reduce_scatter_rows(l.wk);
    lw.wv = comm.reduce_scatter_rows(l.wv);
    lw.wo = comm.reduce_scatter_rows(l.wo);
    lw.w1 = comm.reduce_scatter_rows(l.w1);
    lw.w2 = comm.reduce_scatter_rows(l.w2);
    out.layers.push_back(std::move(lw));
  }
  out.w_embed = comm.reduce_scatter_rows(full.w_embed);
  out.w_head = comm.reduce_scatter_rows(full.w_head);
  return out;
}

void fsdp_apply_sgd(FsdpShards& shards, const FsdpShards& grad_shards,
                    float lr) {
  const auto step = [lr](Tensor& w, const Tensor& g) {
    tensor::axpy(-lr, g, w);
  };
  for (std::size_t l = 0; l < shards.layers.size(); ++l) {
    step(shards.layers[l].wq, grad_shards.layers[l].wq);
    step(shards.layers[l].wk, grad_shards.layers[l].wk);
    step(shards.layers[l].wv, grad_shards.layers[l].wv);
    step(shards.layers[l].wo, grad_shards.layers[l].wo);
    step(shards.layers[l].w1, grad_shards.layers[l].w1);
    step(shards.layers[l].w2, grad_shards.layers[l].w2);
  }
  step(shards.w_embed, grad_shards.w_embed);
  step(shards.w_head, grad_shards.w_head);
}

FsdpStepResult fsdp_train_step(comm::Communicator& comm, DistTrainConfig cfg,
                               const FsdpShards& shards,
                               const tensor::Tensor& tokens) {
  sim::ScopedPhaseMetrics phase(comm.transport(), "fsdp.step");
  // Functional simplification: gather everything up front. Real BMTrain
  // gathers block by block to bound transient memory; the communication
  // volume is identical and the perfmodel charges the block-level overlap.
  ModelWeights gathered = fsdp_gather_all(comm, shards);
  cfg.sync_grads = false;
  DistStepResult r = dist_train_step(comm, cfg, gathered, tokens);
  FsdpStepResult out;
  out.loss = r.loss;
  out.grad_shards = fsdp_reduce_scatter_grads(comm, cfg.model, r.grads);
  return out;
}

ModelWeights fsdp_gather_all(comm::Communicator& comm,
                             const FsdpShards& shards) {
  ModelWeights full;
  for (std::size_t l = 0; l < shards.layers.size(); ++l) {
    full.layers.push_back(
        fsdp_gather_layer(comm, shards, static_cast<std::int64_t>(l)));
  }
  full.w_embed = fsdp_gather_embed(comm, shards);
  full.w_head = fsdp_gather_head(comm, shards);
  return full;
}

}  // namespace burst::model
