#include "model/transformer.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "kernels/flash_attention.hpp"
#include "kernels/lm_head.hpp"
#include "kernels/rope.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace burst::model {

using kernels::IndexMap;
using kernels::MaskSpec;
using tensor::Tensor;

ModelWeights ModelWeights::init(const ModelConfig& cfg, std::uint64_t seed) {
  tensor::Rng rng(seed);
  const float ws = 1.0f / std::sqrt(static_cast<float>(cfg.d_model));
  ModelWeights w;
  for (std::int64_t l = 0; l < cfg.layers; ++l) {
    LayerWeights lw;
    lw.wq = rng.gaussian(cfg.d_model, cfg.d_model, ws);
    lw.wk = rng.gaussian(cfg.d_model, cfg.d_kv(), ws);
    lw.wv = rng.gaussian(cfg.d_model, cfg.d_kv(), ws);
    lw.wo = rng.gaussian(cfg.d_model, cfg.d_model, ws);
    lw.w1 = rng.gaussian(cfg.d_model, cfg.d_ff, ws);
    lw.w2 = rng.gaussian(cfg.d_ff, cfg.d_model,
                         1.0f / std::sqrt(static_cast<float>(cfg.d_ff)));
    w.layers.push_back(std::move(lw));
  }
  w.w_embed = rng.gaussian(cfg.vocab, cfg.d_model, 0.5f);
  w.w_head = rng.gaussian(cfg.vocab, cfg.d_model, ws);
  return w;
}

LayerGrads LayerGrads::zeros(const ModelConfig& cfg) {
  LayerGrads g;
  g.wq = Tensor::zeros(cfg.d_model, cfg.d_model);
  g.wk = Tensor::zeros(cfg.d_model, cfg.d_kv());
  g.wv = Tensor::zeros(cfg.d_model, cfg.d_kv());
  g.wo = Tensor::zeros(cfg.d_model, cfg.d_model);
  g.w1 = Tensor::zeros(cfg.d_model, cfg.d_ff);
  g.w2 = Tensor::zeros(cfg.d_ff, cfg.d_model);
  return g;
}

ModelGrads ModelGrads::zeros(const ModelConfig& cfg) {
  ModelGrads g;
  for (std::int64_t l = 0; l < cfg.layers; ++l) {
    g.layers.push_back(LayerGrads::zeros(cfg));
  }
  g.w_embed = Tensor::zeros(cfg.vocab, cfg.d_model);
  g.w_head = Tensor::zeros(cfg.vocab, cfg.d_model);
  return g;
}

void ModelGrads::add(const ModelGrads& other) {
  assert(layers.size() == other.layers.size());
  for (std::size_t l = 0; l < layers.size(); ++l) {
    tensor::add_inplace(layers[l].wq, other.layers[l].wq);
    tensor::add_inplace(layers[l].wk, other.layers[l].wk);
    tensor::add_inplace(layers[l].wv, other.layers[l].wv);
    tensor::add_inplace(layers[l].wo, other.layers[l].wo);
    tensor::add_inplace(layers[l].w1, other.layers[l].w1);
    tensor::add_inplace(layers[l].w2, other.layers[l].w2);
  }
  tensor::add_inplace(w_embed, other.w_embed);
  tensor::add_inplace(w_head, other.w_head);
}

float ModelGrads::max_abs() const {
  float mx = 0.0f;
  const auto upd = [&mx](const Tensor& t) {
    for (std::int64_t i = 0; i < t.numel(); ++i) {
      mx = std::max(mx, std::fabs(t.data()[i]));
    }
  };
  for (const auto& l : layers) {
    upd(l.wq);
    upd(l.wk);
    upd(l.wv);
    upd(l.wo);
    upd(l.w1);
    upd(l.w2);
  }
  upd(w_embed);
  upd(w_head);
  return mx;
}

void apply_sgd(ModelWeights& w, const ModelGrads& g, float lr) {
  const auto step = [lr](Tensor& t, const Tensor& grad) {
    tensor::axpy(-lr, grad, t);
  };
  for (std::size_t l = 0; l < w.layers.size(); ++l) {
    step(w.layers[l].wq, g.layers[l].wq);
    step(w.layers[l].wk, g.layers[l].wk);
    step(w.layers[l].wv, g.layers[l].wv);
    step(w.layers[l].wo, g.layers[l].wo);
    step(w.layers[l].w1, g.layers[l].w1);
    step(w.layers[l].w2, g.layers[l].w2);
  }
  step(w.w_embed, g.w_embed);
  step(w.w_head, g.w_head);
}

namespace {

struct LayerForwardCache {
  Tensor x_in;               // block input
  std::vector<Tensor> q, k, v, o, lse;  // per head
  Tensor attn_concat;        // concatenated head outputs
  Tensor h;                  // attention residual output
  Tensor u;                  // FFN hidden (pre-W2, post-ReLU)
  Tensor u_pre;              // FFN hidden pre-activation
};

LayerForwardCache layer_forward(const ModelConfig& cfg, const LayerWeights& w,
                                const Tensor& x, const MaskSpec& mask) {
  LayerForwardCache c;
  c.x_in = x;
  const std::int64_t dh = cfg.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  Tensor q_all = tensor::matmul(x, w.wq);
  Tensor k_all = tensor::matmul(x, w.wk);
  Tensor v_all = tensor::matmul(x, w.wv);
  const IndexMap map = IndexMap::range(0, x.rows());
  c.attn_concat = Tensor::zeros(x.rows(), cfg.d_model);
  const std::int64_t group = cfg.group_size();
  for (std::int64_t kvh = 0; kvh < cfg.num_kv_heads(); ++kvh) {
    Tensor kh = tensor::copy_cols(k_all, kvh * dh, dh);
    if (cfg.use_rope) {
      kernels::apply_rope_inplace(kh, map);
    }
    c.k.push_back(std::move(kh));
    c.v.push_back(tensor::copy_cols(v_all, kvh * dh, dh));
  }
  for (std::int64_t h = 0; h < cfg.heads; ++h) {
    Tensor qh = tensor::copy_cols(q_all, h * dh, dh);
    if (cfg.use_rope) {
      kernels::apply_rope_inplace(qh, map);
    }
    const std::size_t kvh = static_cast<std::size_t>(h / group);
    auto r = kernels::flash_forward(qh, map, c.k[kvh], c.v[kvh], map, mask,
                                    scale);
    tensor::set_cols(c.attn_concat, h * dh, r.o);
    c.q.push_back(std::move(qh));
    c.o.push_back(std::move(r.o));
    c.lse.push_back(std::move(r.lse));
  }
  Tensor a = tensor::matmul(c.attn_concat, w.wo);
  c.h = tensor::add(a, x);
  c.u_pre = tensor::matmul(c.h, w.w1);
  c.u = tensor::relu(c.u_pre);
  return c;
}

Tensor layer_output(const LayerForwardCache& c, const LayerWeights& w) {
  Tensor f = tensor::matmul(c.u, w.w2);
  tensor::add_inplace(f, c.h);
  return f;
}

// Returns dX given dY; accumulates weight grads.
Tensor layer_backward(const ModelConfig& cfg, const LayerWeights& w,
                      const LayerForwardCache& c, const Tensor& d_y,
                      const MaskSpec& mask, LayerGrads& g) {
  const std::int64_t dh = cfg.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  // Y = U W2 + H.
  Tensor du = tensor::matmul_nt(d_y, w.w2);
  tensor::add_inplace(g.w2, tensor::matmul_tn(c.u, d_y));
  du = tensor::relu_backward(du, c.u_pre);
  Tensor dh_total = tensor::matmul_nt(du, w.w1);
  tensor::add_inplace(g.w1, tensor::matmul_tn(c.h, du));
  tensor::add_inplace(dh_total, d_y);  // residual

  // H = attn_concat Wo + X.
  Tensor d_attn = tensor::matmul_nt(dh_total, w.wo);
  tensor::add_inplace(g.wo, tensor::matmul_tn(c.attn_concat, dh_total));

  // Per-head attention backward.
  const IndexMap map = IndexMap::range(0, c.x_in.rows());
  Tensor dq_all = Tensor::zeros(c.x_in.rows(), cfg.d_model);
  Tensor dk_all = Tensor::zeros(c.x_in.rows(), cfg.d_kv());
  Tensor dv_all = Tensor::zeros(c.x_in.rows(), cfg.d_kv());
  const std::int64_t group = cfg.group_size();
  for (std::int64_t h = 0; h < cfg.heads; ++h) {
    const std::size_t hi = static_cast<std::size_t>(h);
    const std::size_t kvh = static_cast<std::size_t>(h / group);
    Tensor d_oh = tensor::copy_cols(d_attn, h * dh, dh);
    Tensor dvec = kernels::attention_dvec(d_oh, c.o[hi]);
    Tensor dq = Tensor::zeros(c.x_in.rows(), dh);
    Tensor dk = Tensor::zeros(c.x_in.rows(), dh);
    Tensor dv = Tensor::zeros(c.x_in.rows(), dh);
    kernels::flash_backward_partial(c.q[hi], map, c.k[kvh], c.v[kvh], map,
                                    mask, scale, d_oh, c.lse[hi], dvec, dq,
                                    dk, dv);
    if (cfg.use_rope) {
      // Gradients w.r.t. pre-rotation Q/K: apply the inverse rotation.
      kernels::apply_rope_inverse_inplace(dq, map);
      kernels::apply_rope_inverse_inplace(dk, map);
    }
    tensor::set_cols(dq_all, h * dh, dq);
    // Query heads of one group accumulate into their shared K/V head.
    tensor::add_cols_inplace(dk_all, static_cast<std::int64_t>(kvh) * dh, dk);
    tensor::add_cols_inplace(dv_all, static_cast<std::int64_t>(kvh) * dh, dv);
  }

  // Q = X Wq etc.
  Tensor dx = dh_total;  // residual path
  tensor::add_inplace(dx, tensor::matmul_nt(dq_all, w.wq));
  tensor::add_inplace(dx, tensor::matmul_nt(dk_all, w.wk));
  tensor::add_inplace(dx, tensor::matmul_nt(dv_all, w.wv));
  tensor::add_inplace(g.wq, tensor::matmul_tn(c.x_in, dq_all));
  tensor::add_inplace(g.wk, tensor::matmul_tn(c.x_in, dk_all));
  tensor::add_inplace(g.wv, tensor::matmul_tn(c.x_in, dv_all));
  return dx;
}

}  // namespace

TrainStepResult serial_train_step(const ModelConfig& cfg,
                                  const ModelWeights& w, const Tensor& tokens,
                                  const MaskSpec& mask) {
  const std::int64_t n = tokens.numel() - 1;
  assert(n > 0);

  // Embedding lookup.
  Tensor x(n, cfg.d_model);
  for (std::int64_t i = 0; i < n; ++i) {
    const auto tok = static_cast<std::int64_t>(tokens[i]);
    for (std::int64_t c = 0; c < cfg.d_model; ++c) {
      x(i, c) = w.w_embed(tok, c);
    }
  }

  std::vector<LayerForwardCache> caches;
  caches.reserve(static_cast<std::size_t>(cfg.layers));
  for (std::int64_t l = 0; l < cfg.layers; ++l) {
    caches.push_back(layer_forward(cfg, w.layers[static_cast<std::size_t>(l)],
                                   x, mask));
    x = layer_output(caches.back(), w.layers[static_cast<std::size_t>(l)]);
  }

  std::vector<std::int64_t> targets(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    targets[static_cast<std::size_t>(i)] =
        static_cast<std::int64_t>(tokens[i + 1]);
  }
  auto lm =
      kernels::fused_lm_head_loss(x, w.w_head, targets, /*block_s=*/32,
                                  /*block_v=*/64);

  TrainStepResult out;
  out.loss = lm.loss;
  out.grads = ModelGrads::zeros(cfg);
  out.grads.w_head = std::move(lm.dw);

  Tensor dx = std::move(lm.dh);
  for (std::int64_t l = cfg.layers - 1; l >= 0; --l) {
    dx = layer_backward(cfg, w.layers[static_cast<std::size_t>(l)],
                        caches[static_cast<std::size_t>(l)], dx, mask,
                        out.grads.layers[static_cast<std::size_t>(l)]);
  }
  // Embedding gradient: scatter-add rows by token id.
  for (std::int64_t i = 0; i < n; ++i) {
    const auto tok = static_cast<std::int64_t>(tokens[i]);
    for (std::int64_t c = 0; c < cfg.d_model; ++c) {
      out.grads.w_embed(tok, c) += dx(i, c);
    }
  }
  return out;
}

std::vector<double> serial_per_row_loss(const ModelConfig& cfg,
                                        const ModelWeights& w,
                                        const Tensor& tokens,
                                        const MaskSpec& mask) {
  const std::int64_t n = tokens.numel() - 1;
  Tensor x(n, cfg.d_model);
  for (std::int64_t i = 0; i < n; ++i) {
    const auto tok = static_cast<std::int64_t>(tokens[i]);
    for (std::int64_t c = 0; c < cfg.d_model; ++c) {
      x(i, c) = w.w_embed(tok, c);
    }
  }
  for (std::int64_t l = 0; l < cfg.layers; ++l) {
    LayerForwardCache c =
        layer_forward(cfg, w.layers[static_cast<std::size_t>(l)], x, mask);
    x = layer_output(c, w.layers[static_cast<std::size_t>(l)]);
  }
  // Per-row CE: lse(logits_i) - logit_i[target_i].
  Tensor logits = tensor::matmul_nt(x, w.w_head);
  Tensor lse = tensor::row_lse(logits);
  std::vector<double> out(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const auto t = static_cast<std::int64_t>(tokens[i + 1]);
    out[static_cast<std::size_t>(i)] =
        static_cast<double>(lse[i]) - logits(i, t);
  }
  return out;
}

namespace {

Tensor embed_ids(const ModelConfig& cfg, const ModelWeights& w,
                 const std::int64_t* tokens, std::int64_t count) {
  Tensor x(count, cfg.d_model);
  for (std::int64_t i = 0; i < count; ++i) {
    assert(tokens[i] >= 0 && tokens[i] < cfg.vocab);
    for (std::int64_t c = 0; c < cfg.d_model; ++c) {
      x(i, c) = w.w_embed(tokens[i], c);
    }
  }
  return x;
}

constexpr float kNegInfF = -std::numeric_limits<float>::infinity();

}  // namespace

Tensor head_logits(const ModelWeights& w, const Tensor& h) {
  return tensor::matmul_nt(h, w.w_head);
}

std::int64_t argmax(const Tensor& logits) {
  assert(logits.numel() > 0);
  std::int64_t best = 0;
  for (std::int64_t i = 1; i < logits.numel(); ++i) {
    if (logits.data()[i] > logits.data()[best]) {
      best = i;
    }
  }
  return best;
}

Tensor serial_forward_logits(const ModelConfig& cfg, const ModelWeights& w,
                             const std::int64_t* tokens, std::int64_t count,
                             const MaskSpec& mask) {
  Tensor x = embed_ids(cfg, w, tokens, count);
  for (std::int64_t l = 0; l < cfg.layers; ++l) {
    LayerForwardCache c =
        layer_forward(cfg, w.layers[static_cast<std::size_t>(l)], x, mask);
    x = layer_output(c, w.layers[static_cast<std::size_t>(l)]);
  }
  return head_logits(w, x);
}

Tensor forward_prefill_chunk(const ModelConfig& cfg, const ModelWeights& w,
                             SequenceKvCache& cache, const std::int64_t* tokens,
                             std::int64_t count, const MaskSpec& mask,
                             kernels::KernelStats* stats) {
  assert(count > 0);
  cache.reserve(count);
  const std::int64_t pos0 = cache.len();
  const std::int64_t total = pos0 + count;
  const std::int64_t dh = cfg.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  const IndexMap qmap = IndexMap::range(pos0, count);
  const IndexMap kmap = IndexMap::range(0, total);
  const std::int64_t group = cfg.group_size();
  Tensor x = embed_ids(cfg, w, tokens, count);
  // Head-sized scratch reused across heads *and* layers (identical shapes
  // every iteration) so the prefill hot loop allocates nothing per head.
  Tensor qh(count, dh);
  Tensor o(count, dh);
  Tensor lse(count);
  Tensor attn(count, cfg.d_model);
  for (std::int64_t l = 0; l < cfg.layers; ++l) {
    const LayerWeights& lw = w.layers[static_cast<std::size_t>(l)];
    Tensor q_all = tensor::matmul(x, lw.wq);
    Tensor k_all = tensor::matmul(x, lw.wk);
    Tensor v_all = tensor::matmul(x, lw.wv);
    // The chunk's K/V rows must land in the cache before attention so every
    // query row can read keys up to its own position.
    for (std::int64_t kvh = 0; kvh < cfg.num_kv_heads(); ++kvh) {
      Tensor kh = tensor::copy_cols(k_all, kvh * dh, dh);
      if (cfg.use_rope) {
        kernels::apply_rope_inplace(kh, qmap);
      }
      cache.put(l, kvh, kh, tensor::copy_cols(v_all, kvh * dh, dh));
    }
    attn.fill(0.0f);
    for (std::int64_t h = 0; h < cfg.heads; ++h) {
      tensor::copy_cols_into(q_all, h * dh, qh);
      if (cfg.use_rope) {
        kernels::apply_rope_inplace(qh, qmap);
      }
      const std::int64_t kvh = h / group;
      o.fill(0.0f);
      lse.fill(kNegInfF);
      kernels::flash_forward_partial(qh.view(), qmap,
                                     cache.k_view(l, kvh, total),
                                     cache.v_view(l, kvh, total), kmap, mask,
                                     scale, o.view(), lse, stats);
      tensor::set_cols(attn, h * dh, o);
    }
    Tensor a = tensor::matmul(attn, lw.wo);
    Tensor hres = tensor::add(a, x);
    Tensor u = tensor::relu(tensor::matmul(hres, lw.w1));
    x = tensor::matmul(u, lw.w2);
    tensor::add_inplace(x, hres);
  }
  cache.commit(count);
  return x;
}

Tensor forward_decode(const ModelConfig& cfg, const ModelWeights& w,
                      SequenceKvCache& cache, std::int64_t token,
                      const MaskSpec& mask, kernels::KernelStats* stats) {
  cache.reserve(1);
  const std::int64_t pos = cache.len();
  const IndexMap posmap = IndexMap::range(pos, 1);
  const std::int64_t dh = cfg.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  const std::int64_t group = cfg.group_size();
  Tensor x = embed_ids(cfg, w, &token, 1);
  // Reused across heads and layers — the per-token decode loop is the
  // latency-critical serving path, so it allocates nothing per head.
  Tensor qh(1, dh);
  Tensor attn(1, cfg.d_model);
  for (std::int64_t l = 0; l < cfg.layers; ++l) {
    const LayerWeights& lw = w.layers[static_cast<std::size_t>(l)];
    Tensor q_all = tensor::matmul(x, lw.wq);
    Tensor k_all = tensor::matmul(x, lw.wk);
    Tensor v_all = tensor::matmul(x, lw.wv);
    for (std::int64_t kvh = 0; kvh < cfg.num_kv_heads(); ++kvh) {
      Tensor kh = tensor::copy_cols(k_all, kvh * dh, dh);
      if (cfg.use_rope) {
        kernels::apply_rope_inplace(kh, posmap);
      }
      cache.put(l, kvh, kh, tensor::copy_cols(v_all, kvh * dh, dh));
    }
    for (std::int64_t h = 0; h < cfg.heads; ++h) {
      tensor::copy_cols_into(q_all, h * dh, qh);
      if (cfg.use_rope) {
        kernels::apply_rope_inplace(qh, posmap);
      }
      const std::int64_t kvh = h / group;
      kernels::flash_decode_step(qh.view(), cache.k_view(l, kvh, pos + 1),
                                 cache.v_view(l, kvh, pos + 1), pos, mask,
                                 scale, attn.col_block(h * dh, dh), stats);
    }
    Tensor a = tensor::matmul(attn, lw.wo);
    Tensor hres = tensor::add(a, x);
    Tensor u = tensor::relu(tensor::matmul(hres, lw.w1));
    x = tensor::matmul(u, lw.w2);
    tensor::add_inplace(x, hres);
  }
  cache.commit(1);
  Tensor logits = head_logits(w, x);  // [1, vocab]
  Tensor out(cfg.vocab);
  for (std::int64_t j = 0; j < cfg.vocab; ++j) {
    out[j] = logits(0, j);
  }
  return out;
}

double serial_loss(const ModelConfig& cfg, const ModelWeights& w,
                   const Tensor& tokens, const MaskSpec& mask) {
  const std::int64_t n = tokens.numel() - 1;
  Tensor x(n, cfg.d_model);
  for (std::int64_t i = 0; i < n; ++i) {
    const auto tok = static_cast<std::int64_t>(tokens[i]);
    for (std::int64_t c = 0; c < cfg.d_model; ++c) {
      x(i, c) = w.w_embed(tok, c);
    }
  }
  for (std::int64_t l = 0; l < cfg.layers; ++l) {
    LayerForwardCache c =
        layer_forward(cfg, w.layers[static_cast<std::size_t>(l)], x, mask);
    x = layer_output(c, w.layers[static_cast<std::size_t>(l)]);
  }
  std::vector<std::int64_t> targets(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    targets[static_cast<std::size_t>(i)] =
        static_cast<std::int64_t>(tokens[i + 1]);
  }
  return kernels::fused_lm_head_loss(x, w.w_head, targets, 32, 64).loss;
}

}  // namespace burst::model
