#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>

namespace burst::parallel {

namespace {

// BURST_THREADS env override: positive integer -> worker count; anything
// else (unset, junk, <= 0) falls through to hardware concurrency.
std::size_t env_threads() {
  const char* s = std::getenv("BURST_THREADS");
  if (s == nullptr) {
    return 0;
  }
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v <= 0) {
    return 0;
  }
  return static_cast<std::size_t>(v);
}

std::mutex& global_mutex() {
  static std::mutex mu;
  return mu;
}

std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = env_threads();
  }
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(task));
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

ThreadPool& ThreadPool::global() {
  std::lock_guard lock(global_mutex());
  auto& slot = global_slot();
  if (!slot) {
    slot = std::make_unique<ThreadPool>();
  }
  return *slot;
}

void ThreadPool::reset_global(std::size_t num_threads) {
  std::lock_guard lock(global_mutex());
  auto& slot = global_slot();
  slot.reset();  // join old workers before the new pool starts
  slot = std::make_unique<ThreadPool>(num_threads);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ && drained
      }
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        cv_idle_.notify_all();
      }
    }
  }
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) {
    return;
  }
  grain = std::max<std::size_t>(1, grain);
  const std::size_t n = end - begin;
  const std::size_t chunks = (n + grain - 1) / grain;
  ThreadPool& pool = ThreadPool::global();
  if (chunks == 1 || pool.size() == 1) {
    fn(begin, end);
    return;
  }
  // Chunk boundaries are fixed multiples of `grain` from `begin`, regardless
  // of pool size. Chunk 0 runs on the caller to keep one chunk off the queue.
  for (std::size_t ci = 1; ci < chunks; ++ci) {
    const std::size_t b = begin + ci * grain;
    const std::size_t e = std::min(end, b + grain);
    pool.submit([&fn, b, e] { fn(b, e); });
  }
  fn(begin, begin + grain);
  pool.wait_idle();
}

void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  parallel_for(0, n, grain, fn);
}

}  // namespace burst::parallel
