#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace burst::parallel {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(task));
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ && drained
      }
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        cv_idle_.notify_all();
      }
    }
  }
}

void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  grain = std::max<std::size_t>(1, grain);
  ThreadPool& pool = ThreadPool::global();
  const std::size_t max_chunks = pool.size() * 4;
  const std::size_t chunks =
      std::max<std::size_t>(1, std::min(max_chunks, (n + grain - 1) / grain));
  if (chunks == 1 || pool.size() == 1) {
    fn(0, n);
    return;
  }
  const std::size_t step = (n + chunks - 1) / chunks;
  // Run chunk 0 on the caller to keep one chunk off the queue; the pool
  // executes the rest.
  std::size_t submitted = 0;
  for (std::size_t begin = step; begin < n; begin += step) {
    const std::size_t end = std::min(n, begin + step);
    pool.submit([&fn, begin, end] { fn(begin, end); });
    ++submitted;
  }
  fn(0, std::min(n, step));
  if (submitted > 0) {
    pool.wait_idle();
  }
}

}  // namespace burst::parallel
