// Minimal fixed-size thread pool used for intra-op parallelism (blocked GEMM,
// attention tiles). Follows C++ Core Guidelines CP.*: threads are joined in the
// destructor (RAII), work is expressed as tasks, and all shared state is
// guarded by a single mutex + condition variable pair.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace burst::parallel {

/// A fixed pool of worker threads executing `std::function<void()>` tasks.
///
/// The pool is intentionally simple: a single locked queue. Intra-op tasks in
/// this codebase are coarse (whole GEMM panels / attention tile rows), so
/// queue contention is negligible compared to task cost.
class ThreadPool {
 public:
  /// Creates `num_threads` workers. `num_threads == 0` selects the
  /// `BURST_THREADS` environment variable if set to a positive integer,
  /// otherwise `std::thread::hardware_concurrency()` (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers. Pending tasks are drained before shutdown.
  ~ThreadPool();

  /// Enqueues a task. Never blocks (unbounded queue).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

  /// Process-wide shared pool (lazily constructed; sized from BURST_THREADS
  /// or the hardware).
  static ThreadPool& global();

  /// Destroys and rebuilds the global pool with `num_threads` workers
  /// (0 = re-read BURST_THREADS / hardware). For tests and process startup;
  /// callers must ensure no parallel_for is in flight.
  static void reset_global(std::size_t num_threads = 0);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Splits `[begin, end)` into chunks of exactly `grain` elements (last chunk
/// may be short) at fixed boundaries `begin + i*grain`, and runs
/// `fn(chunk_begin, chunk_end)` for each chunk on the global pool. Blocks
/// until all chunks complete.
///
/// The partition depends only on (begin, end, grain) — never on the pool
/// size — so a kernel whose chunks touch disjoint state computes bitwise
/// identical results for any pool size (including `BURST_THREADS`
/// overrides). Falls back to one serial `fn(begin, end)` call when there is
/// a single chunk or a single worker; per-element arithmetic is unchanged
/// because chunk boundaries never split `fn`'s per-index work.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn);

/// Back-compat overload over `[0, n)`.
void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace burst::parallel
