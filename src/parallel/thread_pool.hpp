// Minimal fixed-size thread pool used for intra-op parallelism (blocked GEMM,
// attention tiles). Follows C++ Core Guidelines CP.*: threads are joined in the
// destructor (RAII), work is expressed as tasks, and all shared state is
// guarded by a single mutex + condition variable pair.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace burst::parallel {

/// A fixed pool of worker threads executing `std::function<void()>` tasks.
///
/// The pool is intentionally simple: a single locked queue. Intra-op tasks in
/// this codebase are coarse (whole GEMM panels / attention tile rows), so
/// queue contention is negligible compared to task cost.
class ThreadPool {
 public:
  /// Creates `num_threads` workers. `num_threads == 0` selects
  /// `std::thread::hardware_concurrency()` (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers. Pending tasks are drained before shutdown.
  ~ThreadPool();

  /// Enqueues a task. Never blocks (unbounded queue).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

  /// Process-wide shared pool (lazily constructed, sized to hardware).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Splits `[0, n)` into roughly equal chunks of at least `grain` elements and
/// runs `fn(begin, end)` for each chunk on the global pool. Blocks until all
/// chunks complete. Falls back to a serial call when the range is small or the
/// pool has a single worker.
void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace burst::parallel
