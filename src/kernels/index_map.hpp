// Mapping from a device-local row index to a global token position.
//
// Context parallelism assigns each device a subset of the sequence; *which*
// subset depends on the workload-balance strategy (Section 3.4):
//   - contiguous range        (naive partition),
//   - two ranges              (zigzag balance: one front chunk + one back),
//   - strided positions       (striped balance: token i, i+G, i+2G, ...).
// Attention masks are defined on global positions, so kernels consult an
// IndexMap to decide masking for local tiles regardless of the partitioner.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace burst::kernels {

class IndexMap {
 public:
  /// Contiguous [offset, offset+len).
  static IndexMap range(std::int64_t offset, std::int64_t len) {
    IndexMap m;
    m.kind_ = Kind::kRange;
    m.start_ = offset;
    m.len_ = len;
    return m;
  }

  /// start, start+stride, start+2*stride, ... (len entries).
  static IndexMap strided(std::int64_t start, std::int64_t stride,
                          std::int64_t len) {
    IndexMap m;
    m.kind_ = Kind::kStrided;
    m.start_ = start;
    m.stride_ = stride;
    m.len_ = len;
    return m;
  }

  /// Concatenation of contiguous (offset, len) segments, in local order.
  static IndexMap segments(std::vector<std::pair<std::int64_t, std::int64_t>> segs) {
    IndexMap m;
    m.kind_ = Kind::kSegments;
    m.segs_ = std::move(segs);
    m.len_ = 0;
    for (const auto& [off, len] : m.segs_) {
      (void)off;
      m.len_ += len;
    }
    return m;
  }

  std::int64_t size() const { return len_; }

  std::int64_t global(std::int64_t local) const {
    assert(local >= 0 && local < len_);
    switch (kind_) {
      case Kind::kRange:
        return start_ + local;
      case Kind::kStrided:
        return start_ + local * stride_;
      case Kind::kSegments: {
        for (const auto& [off, len] : segs_) {
          if (local < len) {
            return off + local;
          }
          local -= len;
        }
        assert(false);
        return -1;
      }
    }
    return -1;
  }

  bool is_contiguous() const {
    return kind_ == Kind::kRange ||
           (kind_ == Kind::kStrided && stride_ == 1) ||
           (kind_ == Kind::kSegments && segs_.size() == 1);
  }

  /// For contiguous maps: the global offset of local row 0.
  std::int64_t offset() const {
    assert(is_contiguous());
    return kind_ == Kind::kSegments ? segs_.front().first : start_;
  }

 private:
  enum class Kind { kRange, kStrided, kSegments };

  Kind kind_ = Kind::kRange;
  std::int64_t start_ = 0;
  std::int64_t stride_ = 1;
  std::int64_t len_ = 0;
  std::vector<std::pair<std::int64_t, std::int64_t>> segs_;
};

}  // namespace burst::kernels
