// Single-device blocked attention with online softmax — the CPU stand-in for
// FlashAttention (substitution documented in DESIGN.md).
//
// The kernel operates on one attention head: Q in R^{Nq x d}, K/V in
// R^{Nk x d}. It is "partial" in the RingAttention sense: the K/V block may
// be any slice of the global sequence, and results merge into a running
// (O, LSE) accumulator with the online-softmax rule — exactly the
// aggregation loop of Eq. (5) in the paper. The backward pass consumes the
// *global* LSE and D = rowsum(dO ∘ O) computed after the full forward, as in
// Algorithms 1 and 2; masked positions contribute nothing because their
// probability is exactly zero.
//
// Positions are global: `qmap`/`kmap` translate local rows to global token
// indices so causal/sliding-window/block-sparse masks work for any
// workload-balance partitioning (contiguous, zigzag, striped).
#pragma once

#include <cstdint>

#include "kernels/index_map.hpp"
#include "kernels/mask.hpp"
#include "tensor/tensor.hpp"

namespace burst::obs {
class Registry;
}  // namespace burst::obs

namespace burst::kernels {

/// Forward output of an attention call: O and the per-row LogSumExp.
struct AttnResult {
  tensor::Tensor o;
  tensor::Tensor lse;
};

/// Optional instrumentation: the cost actually incurred after tile skipping.
/// Used by workload-balance tests and the simulated compute charges.
struct KernelStats {
  std::uint64_t flops = 0;
  std::uint64_t tiles_computed = 0;
  std::uint64_t tiles_skipped = 0;
};

/// Attention FLOPs for `pairs` unmasked (q, k) pairs at head dim `d`:
/// QK^T and PV each cost 2*d FLOPs per pair.
inline std::uint64_t attention_pair_flops(std::uint64_t pairs, std::int64_t d) {
  return pairs * static_cast<std::uint64_t>(4 * d);
}

/// Computes attention of `q` against one K/V partition and merges the result
/// into (`o_acc`, `lse_acc`) with online softmax. `o_acc` must be zeros and
/// `lse_acc` filled with -inf before the first partition.
void flash_forward_partial(const tensor::Tensor& q, const IndexMap& qmap,
                           const tensor::Tensor& k, const tensor::Tensor& v,
                           const IndexMap& kmap, const MaskSpec& mask,
                           float scale, tensor::Tensor& o_acc,
                           tensor::Tensor& lse_acc,
                           KernelStats* stats = nullptr);

/// View-based variant for callers whose Q/K/V live inside larger
/// allocations — chunked prefill attending to a KV-cache prefix reads the
/// cache rows in place instead of copying them out. Identical math and
/// accumulator contract as the Tensor overload.
void flash_forward_partial(tensor::ConstMatView q, const IndexMap& qmap,
                           tensor::ConstMatView k, tensor::ConstMatView v,
                           const IndexMap& kmap, const MaskSpec& mask,
                           float scale, tensor::MatView o_acc,
                           tensor::Tensor& lse_acc,
                           KernelStats* stats = nullptr);

/// Append-one-query decode path: attention of a single query row at global
/// position `q_pos` against keys/values covering global positions
/// [0, k.rows). One sequential online-softmax pass with no tile machinery —
/// the per-token hot loop of KV-cache decoding. Writes the output into
/// `o_row` ([1, d]) and returns the row's LogSumExp (-inf if every key is
/// masked, in which case `o_row` is zeroed).
float flash_decode_step(tensor::ConstMatView q, tensor::ConstMatView k,
                        tensor::ConstMatView v, std::int64_t q_pos,
                        const MaskSpec& mask, float scale,
                        tensor::MatView o_row, KernelStats* stats = nullptr);

/// Single-partition convenience wrapper: fresh accumulators, one call.
AttnResult flash_forward(const tensor::Tensor& q, const IndexMap& qmap,
                         const tensor::Tensor& k, const tensor::Tensor& v,
                         const IndexMap& kmap, const MaskSpec& mask,
                         float scale, KernelStats* stats = nullptr);

/// D = rowsum(dO ∘ O) (Algorithm 1 line 10 / Algorithm 2 line 2).
tensor::Tensor attention_dvec(const tensor::Tensor& d_out,
                              const tensor::Tensor& o);

/// Accumulates gradients for one (Q partition, K/V partition) pair:
///   dV += P^T dO,  dK += dS^T Q * scale,  dQ += dS K * scale,
/// with P rebuilt from the stored global `lse` and dS = P ∘ (dP − D).
/// `d_out`, `lse`, `dvec` are aligned with `q` rows. Accumulators must be
/// pre-sized (dq: like q, dk/dv: like k/v).
void flash_backward_partial(const tensor::Tensor& q, const IndexMap& qmap,
                            const tensor::Tensor& k, const tensor::Tensor& v,
                            const IndexMap& kmap, const MaskSpec& mask,
                            float scale, const tensor::Tensor& d_out,
                            const tensor::Tensor& lse,
                            const tensor::Tensor& dvec, tensor::Tensor& dq_acc,
                            tensor::Tensor& dk_acc, tensor::Tensor& dv_acc,
                            KernelStats* stats = nullptr);

/// Observation-only counters mirroring KernelStats into the obs registry:
/// `kernels.attn.tiles_computed`, `kernels.attn.tiles_skipped` counters and
/// the `kernels.workspace.high_water_bytes` gauge. Pass nullptr to detach.
/// Attach/detach from a single thread while no kernel runs concurrently;
/// attached metrics never change results (PR 3 discipline).
void attach_attention_metrics(obs::Registry* registry);

}  // namespace burst::kernels
