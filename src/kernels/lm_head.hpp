// Language-modeling head + cross-entropy loss kernels (Section 3.3).
//
// Three implementations with identical math and different memory/compute
// trade-offs:
//
//  * naive_lm_head_loss           — materializes the full N x v logits
//                                   matrix (the baseline whose memory blows
//                                   up in Figure 8);
//  * tiled_recompute_lm_head_loss — the prior fused-tile approach of
//                                   [25, 39]: never stores logits, but
//                                   recomputes every tile during backward
//                                   (extra 2*N*v*d FLOPs);
//  * fused_lm_head_loss           — the paper's Algorithm 3: runs backward
//                                   immediately after forward per sequence
//                                   strip, caching one Bs x v logits strip,
//                                   so nothing is recomputed and memory
//                                   stays at Bs x v.
//
// Loss is mean cross-entropy over tokens; gradients are with respect to that
// mean. Scratch bytes report the logits storage high-water mark in fp32 (the
// functional dtype); the perfmodel rescales to bf16 for paper-scale numbers.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/gemm.hpp"
#include "tensor/tensor.hpp"

namespace burst::kernels {

struct LmHeadResult {
  double loss = 0.0;                 // mean CE over the N tokens
  tensor::Tensor dh;                 // [N, d] gradient of hidden states
  tensor::Tensor dw;                 // [v, d] gradient of vocabulary weights
  std::uint64_t peak_scratch_bytes = 0;  // logits storage high-water mark
  std::uint64_t flops = 0;           // matmul FLOPs actually executed
};

/// Baseline: logits = H W^T in full, softmax + CE, full backward.
LmHeadResult naive_lm_head_loss(const tensor::Tensor& h,
                                const tensor::Tensor& w,
                                const std::vector<std::int64_t>& targets);

/// Tile-level fusion with backward recomputation ([25, 39]-style).
LmHeadResult tiled_recompute_lm_head_loss(
    const tensor::Tensor& h, const tensor::Tensor& w,
    const std::vector<std::int64_t>& targets, std::int64_t block_s,
    std::int64_t block_v);

/// The paper's Algorithm 3: per-strip fused forward+backward, no recompute.
LmHeadResult fused_lm_head_loss(const tensor::Tensor& h,
                                const tensor::Tensor& w,
                                const std::vector<std::int64_t>& targets,
                                std::int64_t block_s, std::int64_t block_v);

/// W_head [v, d] prepacked at a serving dtype for the vocab-tiled fused
/// head (DESIGN.md section 16). Two packs because the head consumes W both
/// ways: forward walks column windows of W^T for the logits tiles; backward
/// walks row windows of W to form dh. The two packs quantize W with
/// different block groupings (along d vs along v), so dh is the gradient of
/// a slightly different dequantized W than the one that produced the loss —
/// within one format quantization step, and documented as part of the
/// error budget (quantized training stays an experiment; fp32 is the
/// training path). dw never touches W and stays exact fp32.
struct QuantLmHead {
  tensor::PackedB w_t;     // op(B) = W^T [d, v]
  tensor::PackedB w_rows;  // op(B) = W   [v, d]
  tensor::DType dtype = tensor::DType::kF32;

  static QuantLmHead pack(const tensor::Tensor& w, tensor::DType dt);
  /// Packed bytes at the dtype, counting both packs (the price of walking
  /// W in both orientations without repacking).
  std::uint64_t model_bytes() const {
    return w_t.model_bytes() + w_rows.model_bytes();
  }
};

/// Algorithm 3 over a prepacked quantized head. Vocab tiles are fixed at
/// tensor::kGemmNC columns so every tile is an aligned PackedB window (a
/// vocab smaller than one tile is the single edge window). The target
/// logit is read from the cached quantized strip — loss, lse, and gradients
/// are all consistent with the *quantized* logits.
LmHeadResult fused_lm_head_loss_q(const tensor::Tensor& h,
                                  const QuantLmHead& w,
                                  const std::vector<std::int64_t>& targets,
                                  std::int64_t block_s);

}  // namespace burst::kernels
