// Naive O(N^2)-memory attention: materializes S and P. The ground truth that
// every flash-style and distributed implementation is validated against.
#pragma once

#include "kernels/index_map.hpp"
#include "kernels/mask.hpp"
#include "tensor/tensor.hpp"

namespace burst::kernels {

struct RefAttnForward {
  tensor::Tensor o;
  tensor::Tensor lse;
  tensor::Tensor p;  // kept for the backward pass
};

struct RefAttnGrads {
  tensor::Tensor dq;
  tensor::Tensor dk;
  tensor::Tensor dv;
};

/// O = softmax(mask(Q K^T * scale)) V over global positions given by the
/// index maps. Fully-masked rows produce O = 0 and lse = -inf.
RefAttnForward reference_attention_forward(const tensor::Tensor& q,
                                           const IndexMap& qmap,
                                           const tensor::Tensor& k,
                                           const tensor::Tensor& v,
                                           const IndexMap& kmap,
                                           const MaskSpec& mask, float scale);

/// Exact gradients through the reference forward.
RefAttnGrads reference_attention_backward(const tensor::Tensor& q,
                                          const tensor::Tensor& k,
                                          const tensor::Tensor& v,
                                          const RefAttnForward& fwd,
                                          const tensor::Tensor& d_out,
                                          float scale);

}  // namespace burst::kernels
