#include "kernels/flash_attention.hpp"
// burst-lint: hotpath

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/workspace.hpp"

namespace burst::kernels {

using tensor::ConstMatView;
using tensor::MatView;
using tensor::Tensor;
using tensor::Trans;
using tensor::Workspace;

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();
// Tile sizes chosen so toy-scale tests exercise full tiles, remainders, and
// the skip logic.
constexpr std::int64_t kTileQ = 32;
constexpr std::int64_t kTileK = 32;

// Observation-only metric handles (see attach_attention_metrics).
struct AttnMetrics {
  obs::Counter* tiles_computed = nullptr;
  obs::Counter* tiles_skipped = nullptr;
  obs::Gauge* ws_high_water = nullptr;
};
AttnMetrics g_metrics;

inline void note_tile_computed(KernelStats* stats, std::uint64_t flops) {
  if (stats != nullptr) {
    ++stats->tiles_computed;
    stats->flops += flops;
  }
  if (g_metrics.tiles_computed != nullptr) {
    g_metrics.tiles_computed->add(1);
  }
}

inline void note_tile_skipped(KernelStats* stats) {
  if (stats != nullptr) {
    ++stats->tiles_skipped;
  }
  if (g_metrics.tiles_skipped != nullptr) {
    g_metrics.tiles_skipped->add(1);
  }
}

inline void note_workspace_high_water(const Workspace& ws) {
  if (g_metrics.ws_high_water != nullptr) {
    const auto hw = static_cast<double>(ws.high_water_bytes());
    if (hw > g_metrics.ws_high_water->value()) {
      g_metrics.ws_high_water->set(hw);
    }
  }
}

// Tile classification in *local* coordinates: exact closed forms only apply
// to contiguous maps, otherwise fall back to a per-element scan (toy scale).
// Runs before any packing/GEMM so kNone tiles cost only this scan.
MaskSpec::TileClass classify_tile(const MaskSpec& mask, const IndexMap& qmap,
                                  const IndexMap& kmap, std::int64_t q0,
                                  std::int64_t q1, std::int64_t k0,
                                  std::int64_t k1) {
  if (mask.kind() == MaskKind::kFull) {
    return MaskSpec::TileClass::kAll;
  }
  if (qmap.is_contiguous() && kmap.is_contiguous()) {
    return mask.classify(qmap.offset() + q0, qmap.offset() + q1,
                         kmap.offset() + k0, kmap.offset() + k1);
  }
  bool any = false;
  bool all = true;
  for (std::int64_t i = q0; i < q1; ++i) {
    const std::int64_t qg = qmap.global(i);
    for (std::int64_t j = k0; j < k1; ++j) {
      const bool a = mask.allowed(qg, kmap.global(j));
      any = any || a;
      all = all && a;
      if (any && !all) {
        return MaskSpec::TileClass::kPartial;
      }
    }
  }
  if (!any) {
    return MaskSpec::TileClass::kNone;
  }
  return all ? MaskSpec::TileClass::kAll : MaskSpec::TileClass::kPartial;
}

// Rows [r0, r0+n) of a view, sharing storage.
ConstMatView sub_rows(ConstMatView m, std::int64_t r0, std::int64_t n) {
  assert(r0 >= 0 && r0 + n <= m.rows);
  return ConstMatView(m.data + r0 * m.stride, n, m.cols, m.stride);
}

}  // namespace

void flash_forward_partial(const Tensor& q, const IndexMap& qmap,
                           const Tensor& k, const Tensor& v,
                           const IndexMap& kmap, const MaskSpec& mask,
                           float scale, Tensor& o_acc, Tensor& lse_acc,
                           KernelStats* stats) {
  flash_forward_partial(q.view(), qmap, k.view(), v.view(), kmap, mask, scale,
                        o_acc.view(), lse_acc, stats);
}

void flash_forward_partial(ConstMatView q, const IndexMap& qmap,
                           ConstMatView k, ConstMatView v,
                           const IndexMap& kmap, const MaskSpec& mask,
                           float scale, tensor::MatView o_acc, Tensor& lse_acc,
                           KernelStats* stats) {
  const std::int64_t nq = q.rows;
  const std::int64_t nk = k.rows;
  const std::int64_t d = q.cols;
  assert(k.cols == d && v.cols == d && v.rows == nk);
  assert(qmap.size() == nq && kmap.size() == nk);
  assert(o_acc.rows == nq && o_acc.cols == d && lse_acc.numel() == nq);

  Workspace& ws = Workspace::tls();
  for (std::int64_t q0 = 0; q0 < nq; q0 += kTileQ) {
    const std::int64_t q1 = std::min(nq, q0 + kTileQ);
    const std::int64_t bq = q1 - q0;

    // All per-tile scratch is borrowed from the thread-local arena: zero
    // heap allocations in steady state (asserted by test_workspace.cpp).
    Workspace::Scope scope(ws);
    float* m = ws.alloc_f32(static_cast<std::size_t>(bq));
    double* l = ws.alloc_f64(static_cast<std::size_t>(bq));
    float* o_tile = ws.alloc_f32(static_cast<std::size_t>(bq * d));
    float* s = ws.alloc_f32(static_cast<std::size_t>(bq * kTileK));
    std::int64_t* qg = ws.alloc_i64(static_cast<std::size_t>(bq));
    std::int64_t* kg = ws.alloc_i64(static_cast<std::size_t>(kTileK));
    std::fill(m, m + bq, kNegInf);
    std::fill(l, l + bq, 0.0);
    std::fill(o_tile, o_tile + bq * d, 0.0f);
    for (std::int64_t i = 0; i < bq; ++i) {
      qg[i] = qmap.global(q0 + i);
    }

    for (std::int64_t k0 = 0; k0 < nk; k0 += kTileK) {
      const std::int64_t k1 = std::min(nk, k0 + kTileK);
      const std::int64_t bk = k1 - k0;
      const auto cls = classify_tile(mask, qmap, kmap, q0, q1, k0, k1);
      if (cls == MaskSpec::TileClass::kNone) {
        note_tile_skipped(stats);
        continue;
      }

      MatView sview{s, bq, bk, bk};
      tensor::gemm(sub_rows(q, q0, bq), Trans::No, sub_rows(k, k0, bk),
                   Trans::Yes, sview, scale, 0.0f);
      const bool partial = cls == MaskSpec::TileClass::kPartial;
      if (partial) {
        for (std::int64_t j = 0; j < bk; ++j) {
          kg[j] = kmap.global(k0 + j);
        }
      }

      // One fused pass per row: mask-apply + running max, then a batched
      // exp over the row, then rescale + PV accumulation.
      for (std::int64_t i = 0; i < bq; ++i) {
        float* srow = s + i * bk;
        float mt = kNegInf;
        if (partial) {
          const std::int64_t qgi = qg[i];
          for (std::int64_t j = 0; j < bk; ++j) {
            if (!mask.allowed(qgi, kg[j])) {
              srow[j] = kNegInf;
            } else {
              mt = std::max(mt, srow[j]);
            }
          }
        } else {
          for (std::int64_t j = 0; j < bk; ++j) {
            mt = std::max(mt, srow[j]);
          }
        }
        if (mt == kNegInf) {
          continue;  // every key in this tile masked for this row
        }
        const float m_new = std::max(m[i], mt);
        const float corr = m[i] == kNegInf ? 0.0f : std::exp(m[i] - m_new);
        // Batched row-wise exp: masked entries are exactly -inf, and
        // exp(-inf - m_new) == 0, so no per-element branch is needed.
        double row_l = 0.0;
        for (std::int64_t j = 0; j < bk; ++j) {
          const float p = std::exp(srow[j] - m_new);
          srow[j] = p;
          row_l += p;
        }
        l[i] = l[i] * corr + row_l;
        m[i] = m_new;
        float* orow = o_tile + i * d;
        for (std::int64_t c = 0; c < d; ++c) {
          orow[c] *= corr;
        }
        for (std::int64_t j = 0; j < bk; ++j) {
          const float p = srow[j];
          if (p == 0.0f) {
            continue;
          }
          const float* vrow = v.data + (k0 + j) * v.stride;
          for (std::int64_t c = 0; c < d; ++c) {
            orow[c] += p * vrow[c];
          }
        }
      }

      note_tile_computed(
          stats, attention_pair_flops(static_cast<std::uint64_t>(bq) *
                                          static_cast<std::uint64_t>(bk),
                                      d));
    }

    // Normalize the tile and merge into the global accumulator in place
    // (same arithmetic as tensor::merge_online_softmax, row by row).
    for (std::int64_t i = 0; i < bq; ++i) {
      const double li = l[i];
      if (li <= 0.0) {
        continue;  // partition fully masked for this row
      }
      const float lse_part = m[i] + static_cast<float>(std::log(li));
      const float inv = static_cast<float>(1.0 / li);
      float* orow = o_tile + i * d;
      for (std::int64_t c = 0; c < d; ++c) {
        orow[c] *= inv;
      }
      float* arow = o_acc.data + (q0 + i) * o_acc.stride;
      const float la = lse_acc[q0 + i];
      if (la == kNegInf) {
        lse_acc[q0 + i] = lse_part;
        for (std::int64_t c = 0; c < d; ++c) {
          arow[c] = orow[c];
        }
        continue;
      }
      const float lmax = std::max(la, lse_part);
      const float wa = std::exp(la - lmax);
      const float wp = std::exp(lse_part - lmax);
      const float lnew = lmax + std::log(wa + wp);
      const float ca = std::exp(la - lnew);
      const float cp = std::exp(lse_part - lnew);
      lse_acc[q0 + i] = lnew;
      for (std::int64_t c = 0; c < d; ++c) {
        arow[c] = ca * arow[c] + cp * orow[c];
      }
    }
  }
  note_workspace_high_water(ws);
}

float flash_decode_step(ConstMatView q, ConstMatView k, ConstMatView v,
                        std::int64_t q_pos, const MaskSpec& mask, float scale,
                        tensor::MatView o_row, KernelStats* stats) {
  assert(q.rows == 1 && o_row.rows == 1);
  const std::int64_t d = q.cols;
  const std::int64_t nk = k.rows;
  assert(k.cols == d && v.cols == d && v.rows == nk && o_row.cols == d);
  for (std::int64_t c = 0; c < d; ++c) {
    o_row(0, c) = 0.0f;
  }
  float m = kNegInf;
  double l = 0.0;
  std::uint64_t pairs = 0;
  for (std::int64_t j = 0; j < nk; ++j) {
    if (!mask.allowed(q_pos, j)) {
      continue;
    }
    float s = 0.0f;
    for (std::int64_t c = 0; c < d; ++c) {
      s += q(0, c) * k(j, c);
    }
    s *= scale;
    ++pairs;
    if (s > m) {
      // New running max: rescale the accumulator before adding this key.
      const float corr = m == kNegInf ? 0.0f : std::exp(m - s);
      l *= corr;
      for (std::int64_t c = 0; c < d; ++c) {
        o_row(0, c) *= corr;
      }
      m = s;
    }
    const float p = std::exp(s - m);
    l += p;
    for (std::int64_t c = 0; c < d; ++c) {
      o_row(0, c) += p * v(j, c);
    }
  }
  note_tile_computed(stats, attention_pair_flops(pairs, d));
  if (l <= 0.0) {
    return kNegInf;  // fully masked row; o_row stays zero
  }
  const float inv = static_cast<float>(1.0 / l);
  for (std::int64_t c = 0; c < d; ++c) {
    o_row(0, c) *= inv;
  }
  return m + static_cast<float>(std::log(l));
}

AttnResult flash_forward(const Tensor& q, const IndexMap& qmap,
                         const Tensor& k, const Tensor& v,
                         const IndexMap& kmap, const MaskSpec& mask,
                         float scale, KernelStats* stats) {
  AttnResult r;
  r.o = Tensor::zeros(q.rows(), q.cols());
  // burst-lint: allow(no-hotpath-alloc) output tensors are owned by the caller; only scratch borrows from the Workspace arena (DESIGN.md section 11)
  r.lse = Tensor(q.rows());
  r.lse.fill(kNegInf);
  flash_forward_partial(q, qmap, k, v, kmap, mask, scale, r.o, r.lse, stats);
  return r;
}

Tensor attention_dvec(const Tensor& d_out, const Tensor& o) {
  return tensor::rowsum_product(d_out, o);
}

void flash_backward_partial(const Tensor& q, const IndexMap& qmap,
                            const Tensor& k, const Tensor& v,
                            const IndexMap& kmap, const MaskSpec& mask,
                            float scale, const Tensor& d_out,
                            const Tensor& lse, const Tensor& dvec,
                            Tensor& dq_acc, Tensor& dk_acc, Tensor& dv_acc,
                            KernelStats* stats) {
  const std::int64_t nq = q.rows();
  const std::int64_t nk = k.rows();
  const std::int64_t d = q.cols();
  assert(k.cols() == d && v.cols() == d && v.rows() == nk);
  assert(d_out.rows() == nq && d_out.cols() == d);
  assert(lse.numel() == nq && dvec.numel() == nq);
  assert(dq_acc.rows() == nq && dk_acc.rows() == nk && dv_acc.rows() == nk);

  Workspace& ws = Workspace::tls();
  for (std::int64_t q0 = 0; q0 < nq; q0 += kTileQ) {
    const std::int64_t q1 = std::min(nq, q0 + kTileQ);
    const std::int64_t bq = q1 - q0;

    Workspace::Scope scope(ws);
    float* p = ws.alloc_f32(static_cast<std::size_t>(bq * kTileK));
    float* ds = ws.alloc_f32(static_cast<std::size_t>(bq * kTileK));
    std::int64_t* qg = ws.alloc_i64(static_cast<std::size_t>(bq));
    std::int64_t* kg = ws.alloc_i64(static_cast<std::size_t>(kTileK));
    for (std::int64_t i = 0; i < bq; ++i) {
      qg[i] = qmap.global(q0 + i);
    }

    for (std::int64_t k0 = 0; k0 < nk; k0 += kTileK) {
      const std::int64_t k1 = std::min(nk, k0 + kTileK);
      const std::int64_t bk = k1 - k0;
      const auto cls = classify_tile(mask, qmap, kmap, q0, q1, k0, k1);
      if (cls == MaskSpec::TileClass::kNone) {
        note_tile_skipped(stats);
        continue;
      }

      // P = exp(S - lse): rows with lse == -inf are fully masked globally.
      MatView pview{p, bq, bk, bk};
      tensor::gemm(q.row_block(q0, bq), Trans::No, k.row_block(k0, bk),
                   Trans::Yes, pview, scale, 0.0f);
      const bool partial = cls == MaskSpec::TileClass::kPartial;
      if (partial) {
        for (std::int64_t j = 0; j < bk; ++j) {
          kg[j] = kmap.global(k0 + j);
        }
      }
      // Fused mask-apply + exp in a single pass over the tile.
      for (std::int64_t i = 0; i < bq; ++i) {
        float* prow = p + i * bk;
        const float li = lse[q0 + i];
        if (li == kNegInf) {
          std::fill(prow, prow + bk, 0.0f);
          continue;
        }
        if (partial) {
          const std::int64_t qgi = qg[i];
          for (std::int64_t j = 0; j < bk; ++j) {
            prow[j] = mask.allowed(qgi, kg[j]) ? std::exp(prow[j] - li) : 0.0f;
          }
        } else {
          for (std::int64_t j = 0; j < bk; ++j) {
            prow[j] = std::exp(prow[j] - li);
          }
        }
      }

      // dV[k0:k1] += P^T dO.
      tensor::gemm(pview, Trans::Yes, d_out.row_block(q0, bq), Trans::No,
                   dv_acc.row_block(k0, bk), 1.0f, 1.0f);

      // dP = dO V^T; dS = P ∘ (dP - D).
      MatView dsview{ds, bq, bk, bk};
      tensor::gemm(d_out.row_block(q0, bq), Trans::No, v.row_block(k0, bk),
                   Trans::Yes, dsview, 1.0f, 0.0f);
      for (std::int64_t i = 0; i < bq; ++i) {
        const float di = dvec[q0 + i];
        const float* prow = p + i * bk;
        float* dsrow = ds + i * bk;
        for (std::int64_t j = 0; j < bk; ++j) {
          dsrow[j] = prow[j] * (dsrow[j] - di);
        }
      }

      // dK[k0:k1] += dS^T Q * scale; dQ[q0:q1] += dS K * scale.
      tensor::gemm(dsview, Trans::Yes, q.row_block(q0, bq), Trans::No,
                   dk_acc.row_block(k0, bk), scale, 1.0f);
      tensor::gemm(dsview, Trans::No, k.row_block(k0, bk), Trans::No,
                   dq_acc.row_block(q0, bq), scale, 1.0f);

      // Backward does ~2.5x the forward tile work (5 GEMMs vs 2).
      note_tile_computed(
          stats, attention_pair_flops(static_cast<std::uint64_t>(bq) *
                                          static_cast<std::uint64_t>(bk),
                                      d) *
                     5 / 2);
    }
  }
  note_workspace_high_water(ws);
}

void attach_attention_metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    g_metrics = AttnMetrics{};
    return;
  }
  g_metrics.tiles_computed = &registry->counter("kernels.attn.tiles_computed");
  g_metrics.tiles_skipped = &registry->counter("kernels.attn.tiles_skipped");
  g_metrics.ws_high_water =
      &registry->gauge("kernels.workspace.high_water_bytes");
}

}  // namespace burst::kernels
