#include "kernels/flash_attention.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace burst::kernels {

using tensor::ConstMatView;
using tensor::Tensor;
using tensor::Trans;

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();
// Tile sizes chosen so toy-scale tests exercise full tiles, remainders, and
// the skip logic.
constexpr std::int64_t kTileQ = 32;
constexpr std::int64_t kTileK = 32;

// Applies the mask to a score tile in place (masked entries -> -inf).
void apply_mask(Tensor& s, const MaskSpec& mask, const IndexMap& qmap,
                const IndexMap& kmap, std::int64_t q0, std::int64_t k0) {
  for (std::int64_t i = 0; i < s.rows(); ++i) {
    const std::int64_t qg = qmap.global(q0 + i);
    for (std::int64_t j = 0; j < s.cols(); ++j) {
      if (!mask.allowed(qg, kmap.global(k0 + j))) {
        s(i, j) = kNegInf;
      }
    }
  }
}

// Tile classification in *local* coordinates: exact closed forms only apply
// to contiguous maps, otherwise fall back to a per-element scan (toy scale).
MaskSpec::TileClass classify_tile(const MaskSpec& mask, const IndexMap& qmap,
                                  const IndexMap& kmap, std::int64_t q0,
                                  std::int64_t q1, std::int64_t k0,
                                  std::int64_t k1) {
  if (mask.kind() == MaskKind::kFull) {
    return MaskSpec::TileClass::kAll;
  }
  if (qmap.is_contiguous() && kmap.is_contiguous()) {
    return mask.classify(qmap.offset() + q0, qmap.offset() + q1,
                         kmap.offset() + k0, kmap.offset() + k1);
  }
  bool any = false;
  bool all = true;
  for (std::int64_t i = q0; i < q1; ++i) {
    const std::int64_t qg = qmap.global(i);
    for (std::int64_t j = k0; j < k1; ++j) {
      const bool a = mask.allowed(qg, kmap.global(j));
      any = any || a;
      all = all && a;
      if (any && !all) {
        return MaskSpec::TileClass::kPartial;
      }
    }
  }
  if (!any) {
    return MaskSpec::TileClass::kNone;
  }
  return all ? MaskSpec::TileClass::kAll : MaskSpec::TileClass::kPartial;
}

// Rows [r0, r0+n) of a view, sharing storage.
ConstMatView sub_rows(ConstMatView m, std::int64_t r0, std::int64_t n) {
  assert(r0 >= 0 && r0 + n <= m.rows);
  return ConstMatView(m.data + r0 * m.stride, n, m.cols, m.stride);
}

}  // namespace

void flash_forward_partial(const Tensor& q, const IndexMap& qmap,
                           const Tensor& k, const Tensor& v,
                           const IndexMap& kmap, const MaskSpec& mask,
                           float scale, Tensor& o_acc, Tensor& lse_acc,
                           KernelStats* stats) {
  flash_forward_partial(q.view(), qmap, k.view(), v.view(), kmap, mask, scale,
                        o_acc.view(), lse_acc, stats);
}

void flash_forward_partial(ConstMatView q, const IndexMap& qmap,
                           ConstMatView k, ConstMatView v,
                           const IndexMap& kmap, const MaskSpec& mask,
                           float scale, tensor::MatView o_acc, Tensor& lse_acc,
                           KernelStats* stats) {
  const std::int64_t nq = q.rows;
  const std::int64_t nk = k.rows;
  const std::int64_t d = q.cols;
  assert(k.cols == d && v.cols == d && v.rows == nk);
  assert(qmap.size() == nq && kmap.size() == nk);
  assert(o_acc.rows == nq && o_acc.cols == d && lse_acc.numel() == nq);

  for (std::int64_t q0 = 0; q0 < nq; q0 += kTileQ) {
    const std::int64_t q1 = std::min(nq, q0 + kTileQ);
    const std::int64_t bq = q1 - q0;

    // Running online-softmax state for this q tile over all k tiles.
    std::vector<float> m(static_cast<std::size_t>(bq), kNegInf);
    std::vector<double> l(static_cast<std::size_t>(bq), 0.0);
    Tensor o_tile = Tensor::zeros(bq, d);

    for (std::int64_t k0 = 0; k0 < nk; k0 += kTileK) {
      const std::int64_t k1 = std::min(nk, k0 + kTileK);
      const std::int64_t bk = k1 - k0;
      const auto cls = classify_tile(mask, qmap, kmap, q0, q1, k0, k1);
      if (cls == MaskSpec::TileClass::kNone) {
        if (stats != nullptr) {
          ++stats->tiles_skipped;
        }
        continue;
      }

      Tensor s(bq, bk);
      tensor::gemm(sub_rows(q, q0, bq), Trans::No, sub_rows(k, k0, bk),
                   Trans::Yes, s.view(), scale, 0.0f);
      if (cls == MaskSpec::TileClass::kPartial) {
        apply_mask(s, mask, qmap, kmap, q0, k0);
      }

      for (std::int64_t i = 0; i < bq; ++i) {
        float mt = kNegInf;
        for (std::int64_t j = 0; j < bk; ++j) {
          mt = std::max(mt, s(i, j));
        }
        if (mt == kNegInf) {
          continue;  // every key in this tile masked for this row
        }
        const float m_new = std::max(m[static_cast<std::size_t>(i)], mt);
        const float corr =
            m[static_cast<std::size_t>(i)] == kNegInf
                ? 0.0f
                : std::exp(m[static_cast<std::size_t>(i)] - m_new);
        double row_l = 0.0;
        for (std::int64_t j = 0; j < bk; ++j) {
          const float p =
              s(i, j) == kNegInf ? 0.0f : std::exp(s(i, j) - m_new);
          s(i, j) = p;
          row_l += p;
        }
        l[static_cast<std::size_t>(i)] =
            l[static_cast<std::size_t>(i)] * corr + row_l;
        m[static_cast<std::size_t>(i)] = m_new;
        for (std::int64_t c = 0; c < d; ++c) {
          o_tile(i, c) *= corr;
        }
        for (std::int64_t j = 0; j < bk; ++j) {
          const float p = s(i, j);
          if (p == 0.0f) {
            continue;
          }
          for (std::int64_t c = 0; c < d; ++c) {
            o_tile(i, c) += p * v(k0 + j, c);
          }
        }
      }

      if (stats != nullptr) {
        ++stats->tiles_computed;
        stats->flops += attention_pair_flops(
            static_cast<std::uint64_t>(bq) * static_cast<std::uint64_t>(bk),
            d);
      }
    }

    // Normalize the tile and merge into the global accumulator.
    Tensor lse_part(bq);
    for (std::int64_t i = 0; i < bq; ++i) {
      const double li = l[static_cast<std::size_t>(i)];
      if (li <= 0.0) {
        lse_part[i] = kNegInf;
        continue;
      }
      lse_part[i] =
          m[static_cast<std::size_t>(i)] + static_cast<float>(std::log(li));
      const float inv = static_cast<float>(1.0 / li);
      for (std::int64_t c = 0; c < d; ++c) {
        o_tile(i, c) *= inv;
      }
    }
    Tensor o_view(bq, d);
    Tensor lse_view(bq);
    for (std::int64_t i = 0; i < bq; ++i) {
      lse_view[i] = lse_acc[q0 + i];
      for (std::int64_t c = 0; c < d; ++c) {
        o_view(i, c) = o_acc(q0 + i, c);
      }
    }
    tensor::merge_online_softmax(o_view, lse_view, o_tile, lse_part);
    for (std::int64_t i = 0; i < bq; ++i) {
      lse_acc[q0 + i] = lse_view[i];
      for (std::int64_t c = 0; c < d; ++c) {
        o_acc(q0 + i, c) = o_view(i, c);
      }
    }
  }
}

float flash_decode_step(ConstMatView q, ConstMatView k, ConstMatView v,
                        std::int64_t q_pos, const MaskSpec& mask, float scale,
                        tensor::MatView o_row, KernelStats* stats) {
  assert(q.rows == 1 && o_row.rows == 1);
  const std::int64_t d = q.cols;
  const std::int64_t nk = k.rows;
  assert(k.cols == d && v.cols == d && v.rows == nk && o_row.cols == d);
  for (std::int64_t c = 0; c < d; ++c) {
    o_row(0, c) = 0.0f;
  }
  float m = kNegInf;
  double l = 0.0;
  std::uint64_t pairs = 0;
  for (std::int64_t j = 0; j < nk; ++j) {
    if (!mask.allowed(q_pos, j)) {
      continue;
    }
    float s = 0.0f;
    for (std::int64_t c = 0; c < d; ++c) {
      s += q(0, c) * k(j, c);
    }
    s *= scale;
    ++pairs;
    if (s > m) {
      // New running max: rescale the accumulator before adding this key.
      const float corr = m == kNegInf ? 0.0f : std::exp(m - s);
      l *= corr;
      for (std::int64_t c = 0; c < d; ++c) {
        o_row(0, c) *= corr;
      }
      m = s;
    }
    const float p = std::exp(s - m);
    l += p;
    for (std::int64_t c = 0; c < d; ++c) {
      o_row(0, c) += p * v(j, c);
    }
  }
  if (stats != nullptr) {
    ++stats->tiles_computed;
    stats->flops += attention_pair_flops(pairs, d);
  }
  if (l <= 0.0) {
    return kNegInf;  // fully masked row; o_row stays zero
  }
  const float inv = static_cast<float>(1.0 / l);
  for (std::int64_t c = 0; c < d; ++c) {
    o_row(0, c) *= inv;
  }
  return m + static_cast<float>(std::log(l));
}

AttnResult flash_forward(const Tensor& q, const IndexMap& qmap,
                         const Tensor& k, const Tensor& v,
                         const IndexMap& kmap, const MaskSpec& mask,
                         float scale, KernelStats* stats) {
  AttnResult r;
  r.o = Tensor::zeros(q.rows(), q.cols());
  r.lse = Tensor(q.rows());
  r.lse.fill(kNegInf);
  flash_forward_partial(q, qmap, k, v, kmap, mask, scale, r.o, r.lse, stats);
  return r;
}

Tensor attention_dvec(const Tensor& d_out, const Tensor& o) {
  return tensor::rowsum_product(d_out, o);
}

void flash_backward_partial(const Tensor& q, const IndexMap& qmap,
                            const Tensor& k, const Tensor& v,
                            const IndexMap& kmap, const MaskSpec& mask,
                            float scale, const Tensor& d_out,
                            const Tensor& lse, const Tensor& dvec,
                            Tensor& dq_acc, Tensor& dk_acc, Tensor& dv_acc,
                            KernelStats* stats) {
  const std::int64_t nq = q.rows();
  const std::int64_t nk = k.rows();
  const std::int64_t d = q.cols();
  assert(k.cols() == d && v.cols() == d && v.rows() == nk);
  assert(d_out.rows() == nq && d_out.cols() == d);
  assert(lse.numel() == nq && dvec.numel() == nq);
  assert(dq_acc.rows() == nq && dk_acc.rows() == nk && dv_acc.rows() == nk);

  for (std::int64_t q0 = 0; q0 < nq; q0 += kTileQ) {
    const std::int64_t q1 = std::min(nq, q0 + kTileQ);
    const std::int64_t bq = q1 - q0;
    for (std::int64_t k0 = 0; k0 < nk; k0 += kTileK) {
      const std::int64_t k1 = std::min(nk, k0 + kTileK);
      const std::int64_t bk = k1 - k0;
      const auto cls = classify_tile(mask, qmap, kmap, q0, q1, k0, k1);
      if (cls == MaskSpec::TileClass::kNone) {
        if (stats != nullptr) {
          ++stats->tiles_skipped;
        }
        continue;
      }

      // P = exp(S - lse): rows with lse == -inf are fully masked globally.
      Tensor p(bq, bk);
      tensor::gemm(q.row_block(q0, bq), Trans::No, k.row_block(k0, bk),
                   Trans::Yes, p.view(), scale, 0.0f);
      if (cls == MaskSpec::TileClass::kPartial) {
        apply_mask(p, mask, qmap, kmap, q0, k0);
      }
      for (std::int64_t i = 0; i < bq; ++i) {
        const float l = lse[q0 + i];
        for (std::int64_t j = 0; j < bk; ++j) {
          p(i, j) = (l == kNegInf || p(i, j) == kNegInf)
                        ? 0.0f
                        : std::exp(p(i, j) - l);
        }
      }

      // dV[k0:k1] += P^T dO.
      tensor::gemm(p.view(), Trans::Yes, d_out.row_block(q0, bq), Trans::No,
                   dv_acc.row_block(k0, bk), 1.0f, 1.0f);

      // dP = dO V^T; dS = P ∘ (dP - D).
      Tensor ds(bq, bk);
      tensor::gemm(d_out.row_block(q0, bq), Trans::No, v.row_block(k0, bk),
                   Trans::Yes, ds.view(), 1.0f, 0.0f);
      for (std::int64_t i = 0; i < bq; ++i) {
        const float di = dvec[q0 + i];
        for (std::int64_t j = 0; j < bk; ++j) {
          ds(i, j) = p(i, j) * (ds(i, j) - di);
        }
      }

      // dK[k0:k1] += dS^T Q * scale; dQ[q0:q1] += dS K * scale.
      tensor::gemm(ds.view(), Trans::Yes, q.row_block(q0, bq), Trans::No,
                   dk_acc.row_block(k0, bk), scale, 1.0f);
      tensor::gemm(ds.view(), Trans::No, k.row_block(k0, bk), Trans::No,
                   dq_acc.row_block(q0, bq), scale, 1.0f);

      if (stats != nullptr) {
        ++stats->tiles_computed;
        // Backward does ~2.5x the forward tile work (5 GEMMs vs 2).
        stats->flops += attention_pair_flops(
                            static_cast<std::uint64_t>(bq) *
                                static_cast<std::uint64_t>(bk),
                            d) * 5 / 2;
      }
    }
  }
}

}  // namespace burst::kernels
