// Attention mask programs (Section 3.4 of the paper).
//
// A MaskSpec answers, for a pair of *global* token positions (q, k), whether
// the query may attend to the key. Supported patterns:
//   Full           — dense attention (no masking)
//   Causal         — k <= q (standard LLM training)
//   SlidingWindow  — causal within a trailing window: 0 <= q - k < w
//   Dilated        — causal, attending every `stride`-th predecessor
//   BlockSparse    — sequence cut into fixed-size blocks; a block-level 0/1
//                    matrix M_blk decides block-to-block visibility
//   Document       — packed-sequence training (extension): each token has a
//                    document id; attention is causal *within* a document
//                    and blocked across documents (block-diagonal x causal)
// MaskSpecs are cheap to copy (block masks / doc tables are shared) so
// kernels take them by value.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.hpp"

namespace burst::kernels {

enum class MaskKind {
  kFull,
  kCausal,
  kSlidingWindow,
  kDilated,
  kBlockSparse,
  kDocument,
};

class MaskSpec {
 public:
  static MaskSpec full() { return MaskSpec(MaskKind::kFull); }

  static MaskSpec causal() { return MaskSpec(MaskKind::kCausal); }

  /// Causal attention restricted to the last `window` positions
  /// (window >= 1; window == 1 attends only to self).
  static MaskSpec sliding_window(std::int64_t window) {
    MaskSpec m(MaskKind::kSlidingWindow);
    m.window_ = window;
    return m;
  }

  /// Causal attention to predecessors at multiples of `stride`.
  static MaskSpec dilated(std::int64_t stride) {
    MaskSpec m(MaskKind::kDilated);
    m.stride_ = stride;
    return m;
  }

  /// Block-wise sparse: token q in block q/bs may attend token k in block
  /// k/bs iff block_mask(q/bs, k/bs) != 0.
  static MaskSpec block_sparse(tensor::Tensor block_mask,
                               std::int64_t block_size) {
    MaskSpec m(MaskKind::kBlockSparse);
    m.block_mask_ =
        std::make_shared<const tensor::Tensor>(std::move(block_mask));
    m.block_size_ = block_size;
    return m;
  }

  /// Block-sparse equivalent of sliding-window attention over `num_blocks`
  /// blocks: block i attends to blocks [i - window_blocks + 1, i]. This is
  /// the SWA configuration of Table 3.
  static MaskSpec block_sliding_window(std::int64_t num_blocks,
                                       std::int64_t window_blocks,
                                       std::int64_t block_size);

  /// Document packing: token q attends to token k iff they belong to the
  /// same document and k <= q. `doc_of[i]` is token i's document id.
  static MaskSpec document(std::vector<std::int64_t> doc_of);

  /// Convenience: consecutive documents with the given lengths.
  static MaskSpec document_from_lengths(
      const std::vector<std::int64_t>& lengths);

  MaskKind kind() const { return kind_; }
  std::int64_t window() const { return window_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t block_size() const { return block_size_; }
  const tensor::Tensor& block_mask() const { return *block_mask_; }

  bool allowed(std::int64_t q, std::int64_t k) const {
    switch (kind_) {
      case MaskKind::kFull:
        return true;
      case MaskKind::kCausal:
        return k <= q;
      case MaskKind::kSlidingWindow:
        return k <= q && q - k < window_;
      case MaskKind::kDilated:
        return k <= q && (q - k) % stride_ == 0;
      case MaskKind::kBlockSparse: {
        // Positions past the block grid are outside the mask's domain and
        // therefore not allowed (classify() may probe arbitrary tiles).
        const std::int64_t qb = q / block_size_;
        const std::int64_t kb = k / block_size_;
        if (qb >= block_mask_->rows() || kb >= block_mask_->cols()) {
          return false;
        }
        return (*block_mask_)(qb, kb) != 0.0f;
      }
      case MaskKind::kDocument: {
        const auto n = static_cast<std::int64_t>(doc_of_->size());
        if (q >= n || k >= n) {
          return false;  // outside the packed documents
        }
        return k <= q && (*doc_of_)[static_cast<std::size_t>(q)] ==
                             (*doc_of_)[static_cast<std::size_t>(k)];
      }
    }
    return false;
  }

  /// Number of allowed (q, k) pairs with q in [q0, q1) and k in [k0, k1),
  /// both in global coordinates. Closed form for Full/Causal/SlidingWindow;
  /// exact loop otherwise. This drives the workload-balance metrics and the
  /// per-round compute charges in the simulated schedules.
  std::uint64_t count_allowed(std::int64_t q0, std::int64_t q1,
                              std::int64_t k0, std::int64_t k1) const;

  /// Tile classification used by the kernels to skip fully-masked tiles and
  /// run unmasked fast paths.
  enum class TileClass { kNone, kPartial, kAll };
  TileClass classify(std::int64_t q0, std::int64_t q1, std::int64_t k0,
                     std::int64_t k1) const;

 private:
  explicit MaskSpec(MaskKind kind) : kind_(kind) {}

  MaskKind kind_;
  std::int64_t window_ = 0;
  std::int64_t stride_ = 1;
  std::int64_t block_size_ = 1;
  std::shared_ptr<const tensor::Tensor> block_mask_;
  std::shared_ptr<const std::vector<std::int64_t>> doc_of_;
};

}  // namespace burst::kernels
