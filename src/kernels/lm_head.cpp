#include "kernels/lm_head.hpp"
// burst-lint: hotpath

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/workspace.hpp"

namespace burst::kernels {

using tensor::MatView;
using tensor::Tensor;
using tensor::Trans;
using tensor::Workspace;

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

double dot_row(const Tensor& a, std::int64_t ra, const Tensor& b,
               std::int64_t rb) {
  double acc = 0.0;
  for (std::int64_t c = 0; c < a.cols(); ++c) {
    acc += static_cast<double>(a(ra, c)) * b(rb, c);
  }
  return acc;
}

// Row LogSumExp over a raw row (same math as tensor::row_lse: float max,
// double accumulation of exp).
float row_lse_raw(const float* row, std::int64_t n) {
  float mx = kNegInf;
  for (std::int64_t j = 0; j < n; ++j) {
    mx = std::max(mx, row[j]);
  }
  if (mx == kNegInf) {
    return kNegInf;
  }
  double acc = 0.0;
  for (std::int64_t j = 0; j < n; ++j) {
    acc += std::exp(static_cast<double>(row[j]) - mx);
  }
  return mx + static_cast<float>(std::log(acc));
}

}  // namespace

LmHeadResult naive_lm_head_loss(const Tensor& h, const Tensor& w,
                                const std::vector<std::int64_t>& targets) {
  const std::int64_t n = h.rows();
  const std::int64_t d = h.cols();
  const std::int64_t v = w.rows();
  assert(w.cols() == d);
  assert(static_cast<std::int64_t>(targets.size()) == n);

  LmHeadResult out;
  // Logits = H W^T, the N x v matrix whose storage is the Figure 8 problem.
  Tensor logits = tensor::matmul_nt(h, w);
  out.peak_scratch_bytes =
      static_cast<std::uint64_t>(logits.numel()) * sizeof(float);
  out.flops += static_cast<std::uint64_t>(2) * n * v * d;

  Tensor lse = tensor::row_lse(logits);
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    loss += static_cast<double>(lse[i]) - logits(i, targets[static_cast<std::size_t>(i)]);
  }
  out.loss = loss / static_cast<double>(n);

  // dLogits = (softmax(logits) - onehot) / N, reusing the logits storage.
  tensor::exp_sub_row_inplace(logits, lse);
  const float inv_n = 1.0f / static_cast<float>(n);
  tensor::scale_inplace(logits, inv_n);
  for (std::int64_t i = 0; i < n; ++i) {
    logits(i, targets[static_cast<std::size_t>(i)]) -= inv_n;
  }

  out.dh = tensor::matmul(logits, w);
  out.dw = tensor::matmul_tn(logits, h);
  out.flops += static_cast<std::uint64_t>(4) * n * v * d;
  return out;
}

namespace {

// Shared implementation for the two tiled variants. `cache_strip` selects
// Algorithm 3 (true: keep the Bs x v strip from the forward loop, reuse it in
// backward) versus the recompute baseline (false: recompute each tile).
//
// All logits scratch is borrowed from the thread-local Workspace arena, so
// the strip loop performs zero heap allocations in steady state. The cached
// strip is one contiguous Bs x v buffer; vocab tile vt lives at column
// offset j = vt * block_v, i.e. float offset bs * j.
LmHeadResult tiled_lm_head_impl(const Tensor& h, const Tensor& w,
                                const std::vector<std::int64_t>& targets,
                                std::int64_t block_s, std::int64_t block_v,
                                bool cache_strip) {
  const std::int64_t n = h.rows();
  const std::int64_t d = h.cols();
  const std::int64_t v = w.rows();
  assert(w.cols() == d);
  assert(static_cast<std::int64_t>(targets.size()) == n);
  block_s = std::min(block_s, n);
  block_v = std::min(block_v, v);

  LmHeadResult out;
  out.dh = Tensor::zeros(n, d);
  out.dw = Tensor::zeros(v, d);
  const float inv_n = 1.0f / static_cast<float>(n);
  double loss = 0.0;

  Workspace& ws = Workspace::tls();
  for (std::int64_t s0 = 0; s0 < n; s0 += block_s) {
    const std::int64_t s1 = std::min(n, s0 + block_s);
    const std::int64_t bs = s1 - s0;

    Workspace::Scope scope(ws);
    float* lse = ws.alloc_f32(static_cast<std::size_t>(bs));
    std::fill(lse, lse + bs, kNegInf);
    // Cached variant holds the whole strip; recompute variant reuses one
    // tile-sized buffer for both the forward probe and the backward rebuild.
    float* strip =
        ws.alloc_f32(static_cast<std::size_t>(cache_strip ? bs * v
                                                          : bs * block_v));
    std::uint64_t strip_bytes = 0;

    // ---- forward over vocab tiles: online LSE per strip row --------------
    for (std::int64_t j = 0; j < v; j += block_v) {
      const std::int64_t j1 = std::min(v, j + block_v);
      const std::int64_t bv = j1 - j;
      float* tile = cache_strip ? strip + bs * j : strip;
      MatView logits{tile, bs, bv, bv};
      tensor::gemm(h.row_block(s0, bs), Trans::No, w.row_block(j, bv),
                   Trans::Yes, logits, 1.0f, 0.0f);
      out.flops += static_cast<std::uint64_t>(2) * bs * bv * d;
      for (std::int64_t r = 0; r < bs; ++r) {
        // lse <- logaddexp(lse, tile_lse), numerically stable.
        const float a = lse[r];
        const float b = row_lse_raw(tile + r * bv, bv);
        if (b == kNegInf) {
          continue;
        }
        if (a == kNegInf) {
          lse[r] = b;
        } else {
          const float mx = std::max(a, b);
          lse[r] = mx + std::log(std::exp(a - mx) + std::exp(b - mx));
        }
      }
      if (cache_strip) {
        strip_bytes += static_cast<std::uint64_t>(bs) * bv * sizeof(float);
      } else {
        strip_bytes = std::max<std::uint64_t>(
            strip_bytes, static_cast<std::uint64_t>(bs) * bv * sizeof(float));
      }
    }
    out.peak_scratch_bytes = std::max(out.peak_scratch_bytes, strip_bytes);

    // ---- loss: -logit[target] + lse (Algorithm 3 line 7) -----------------
    for (std::int64_t r = 0; r < bs; ++r) {
      const std::int64_t t = targets[static_cast<std::size_t>(s0 + r)];
      loss += static_cast<double>(lse[r]) - dot_row(h, s0 + r, w, t);
    }

    // ---- backward immediately, per vocab tile -----------------------------
    for (std::int64_t j = 0; j < v; j += block_v) {
      const std::int64_t j1 = std::min(v, j + block_v);
      const std::int64_t bv = j1 - j;
      float* tile = cache_strip ? strip + bs * j : strip;
      MatView dlogits{tile, bs, bv, bv};
      if (!cache_strip) {
        tensor::gemm(h.row_block(s0, bs), Trans::No, w.row_block(j, bv),
                     Trans::Yes, dlogits, 1.0f, 0.0f);
        out.flops += static_cast<std::uint64_t>(2) * bs * bv * d;
      }
      // dLogits = (exp(logits - lse) - onehot) / N. (The paper's Algorithm 3
      // writes "+E"; the CE gradient is softmax minus the one-hot indicator —
      // see EXPERIMENTS.md, "paper typos".)
      for (std::int64_t r = 0; r < bs; ++r) {
        const float l = lse[r];
        float* drow = tile + r * bv;
        for (std::int64_t c = 0; c < bv; ++c) {
          drow[c] = std::exp(drow[c] - l) * inv_n;
        }
        const std::int64_t t = targets[static_cast<std::size_t>(s0 + r)];
        if (t >= j && t < j1) {
          drow[t - j] -= inv_n;
        }
      }
      tensor::gemm(dlogits, Trans::No, w.row_block(j, bv), Trans::No,
                   out.dh.row_block(s0, bs), 1.0f, 1.0f);
      tensor::gemm(dlogits, Trans::Yes, h.row_block(s0, bs), Trans::No,
                   out.dw.row_block(j, bv), 1.0f, 1.0f);
      out.flops += static_cast<std::uint64_t>(4) * bs * bv * d;
    }
  }

  out.loss = loss / static_cast<double>(n);
  return out;
}

}  // namespace

LmHeadResult tiled_recompute_lm_head_loss(
    const Tensor& h, const Tensor& w,
    const std::vector<std::int64_t>& targets, std::int64_t block_s,
    std::int64_t block_v) {
  return tiled_lm_head_impl(h, w, targets, block_s, block_v,
                            /*cache_strip=*/false);
}

LmHeadResult fused_lm_head_loss(const Tensor& h, const Tensor& w,
                                const std::vector<std::int64_t>& targets,
                                std::int64_t block_s, std::int64_t block_v) {
  return tiled_lm_head_impl(h, w, targets, block_s, block_v,
                            /*cache_strip=*/true);
}

QuantLmHead QuantLmHead::pack(const Tensor& w, tensor::DType dt) {
  QuantLmHead q;
  q.dtype = dt;
  q.w_t = tensor::PackedB::pack(w.view(), Trans::Yes, dt);
  q.w_rows = tensor::PackedB::pack(w.view(), Trans::No, dt);
  return q;
}

LmHeadResult fused_lm_head_loss_q(const Tensor& h, const QuantLmHead& w,
                                  const std::vector<std::int64_t>& targets,
                                  std::int64_t block_s) {
  const std::int64_t n = h.rows();
  const std::int64_t d = h.cols();
  const std::int64_t v = w.w_t.n();
  assert(w.w_t.k() == d && w.w_rows.k() == v && w.w_rows.n() == d);
  assert(static_cast<std::int64_t>(targets.size()) == n);
  block_s = std::min(block_s, n);
  // Vocab tiles ride the PackedB cache blocks: kGemmNC columns per forward
  // window (of W^T) and an aligned K window (of W) in backward.
  const std::int64_t block_v = tensor::kGemmNC;

  LmHeadResult out;
  out.dh = Tensor::zeros(n, d);
  out.dw = Tensor::zeros(v, d);
  const float inv_n = 1.0f / static_cast<float>(n);
  double loss = 0.0;

  Workspace& ws = Workspace::tls();
  for (std::int64_t s0 = 0; s0 < n; s0 += block_s) {
    const std::int64_t s1 = std::min(n, s0 + block_s);
    const std::int64_t bs = s1 - s0;

    Workspace::Scope scope(ws);
    float* lse = ws.alloc_f32(static_cast<std::size_t>(bs));
    std::fill(lse, lse + bs, kNegInf);
    float* strip = ws.alloc_f32(static_cast<std::size_t>(bs * v));
    std::uint64_t strip_bytes = 0;

    // ---- forward over vocab tiles: online LSE per strip row --------------
    for (std::int64_t j = 0; j < v; j += block_v) {
      const std::int64_t j1 = std::min(v, j + block_v);
      const std::int64_t bv = j1 - j;
      float* tile = strip + bs * j;
      MatView logits{tile, bs, bv, bv};
      tensor::gemm_packed_window(h.row_block(s0, bs), Trans::No, w.w_t, j, bv,
                                 0, d, logits);
      out.flops += static_cast<std::uint64_t>(2) * bs * bv * d;
      for (std::int64_t r = 0; r < bs; ++r) {
        const float a = lse[r];
        const float b = row_lse_raw(tile + r * bv, bv);
        if (b == kNegInf) {
          continue;
        }
        if (a == kNegInf) {
          lse[r] = b;
        } else {
          const float mx = std::max(a, b);
          lse[r] = mx + std::log(std::exp(a - mx) + std::exp(b - mx));
        }
      }
      strip_bytes += static_cast<std::uint64_t>(bs) * bv * sizeof(float);
    }
    out.peak_scratch_bytes = std::max(out.peak_scratch_bytes, strip_bytes);

    // ---- loss: -logit[target] + lse, target read from the cached strip so
    // the loss is consistent with the quantized logits -----------------------
    for (std::int64_t r = 0; r < bs; ++r) {
      const std::int64_t t = targets[static_cast<std::size_t>(s0 + r)];
      const std::int64_t j = (t / block_v) * block_v;
      const std::int64_t bv = std::min(v, j + block_v) - j;
      const float logit_t = strip[bs * j + r * bv + (t - j)];
      loss += static_cast<double>(lse[r]) - static_cast<double>(logit_t);
    }

    // ---- backward immediately, per vocab tile -----------------------------
    for (std::int64_t j = 0; j < v; j += block_v) {
      const std::int64_t j1 = std::min(v, j + block_v);
      const std::int64_t bv = j1 - j;
      float* tile = strip + bs * j;
      MatView dlogits{tile, bs, bv, bv};
      for (std::int64_t r = 0; r < bs; ++r) {
        const float l = lse[r];
        float* drow = tile + r * bv;
        for (std::int64_t c = 0; c < bv; ++c) {
          drow[c] = std::exp(drow[c] - l) * inv_n;
        }
        const std::int64_t t = targets[static_cast<std::size_t>(s0 + r)];
        if (t >= j && t < j1) {
          drow[t - j] -= inv_n;
        }
      }
      // dh += dlogits @ W[j:j1, :] — an aligned K window of the row pack.
      tensor::gemm_packed_window(dlogits, Trans::No, w.w_rows, 0, d, j, bv,
                                 out.dh.row_block(s0, bs), 1.0f, 1.0f);
      // dw is exact fp32: W is not involved.
      tensor::gemm(dlogits, Trans::Yes, h.row_block(s0, bs), Trans::No,
                   out.dw.row_block(j, bv), 1.0f, 1.0f);
      out.flops += static_cast<std::uint64_t>(4) * bs * bv * d;
    }
  }

  out.loss = loss / static_cast<double>(n);
  return out;
}

}  // namespace burst::kernels
