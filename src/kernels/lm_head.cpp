#include "kernels/lm_head.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace burst::kernels {

using tensor::Tensor;
using tensor::Trans;

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

double dot_row(const Tensor& a, std::int64_t ra, const Tensor& b,
               std::int64_t rb) {
  double acc = 0.0;
  for (std::int64_t c = 0; c < a.cols(); ++c) {
    acc += static_cast<double>(a(ra, c)) * b(rb, c);
  }
  return acc;
}

}  // namespace

LmHeadResult naive_lm_head_loss(const Tensor& h, const Tensor& w,
                                const std::vector<std::int64_t>& targets) {
  const std::int64_t n = h.rows();
  const std::int64_t d = h.cols();
  const std::int64_t v = w.rows();
  assert(w.cols() == d);
  assert(static_cast<std::int64_t>(targets.size()) == n);

  LmHeadResult out;
  // Logits = H W^T, the N x v matrix whose storage is the Figure 8 problem.
  Tensor logits = tensor::matmul_nt(h, w);
  out.peak_scratch_bytes =
      static_cast<std::uint64_t>(logits.numel()) * sizeof(float);
  out.flops += static_cast<std::uint64_t>(2) * n * v * d;

  Tensor lse = tensor::row_lse(logits);
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    loss += static_cast<double>(lse[i]) - logits(i, targets[static_cast<std::size_t>(i)]);
  }
  out.loss = loss / static_cast<double>(n);

  // dLogits = (softmax(logits) - onehot) / N, reusing the logits storage.
  tensor::exp_sub_row_inplace(logits, lse);
  const float inv_n = 1.0f / static_cast<float>(n);
  tensor::scale_inplace(logits, inv_n);
  for (std::int64_t i = 0; i < n; ++i) {
    logits(i, targets[static_cast<std::size_t>(i)]) -= inv_n;
  }

  out.dh = tensor::matmul(logits, w);
  out.dw = tensor::matmul_tn(logits, h);
  out.flops += static_cast<std::uint64_t>(4) * n * v * d;
  return out;
}

namespace {

// Shared implementation for the two tiled variants. `cache_strip` selects
// Algorithm 3 (true: keep the Bs x v strip from the forward loop, reuse it in
// backward) versus the recompute baseline (false: recompute each tile).
LmHeadResult tiled_lm_head_impl(const Tensor& h, const Tensor& w,
                                const std::vector<std::int64_t>& targets,
                                std::int64_t block_s, std::int64_t block_v,
                                bool cache_strip) {
  const std::int64_t n = h.rows();
  const std::int64_t d = h.cols();
  const std::int64_t v = w.rows();
  assert(w.cols() == d);
  assert(static_cast<std::int64_t>(targets.size()) == n);
  block_s = std::min(block_s, n);
  block_v = std::min(block_v, v);

  LmHeadResult out;
  out.dh = Tensor::zeros(n, d);
  out.dw = Tensor::zeros(v, d);
  const float inv_n = 1.0f / static_cast<float>(n);
  double loss = 0.0;

  const std::int64_t num_vtiles = (v + block_v - 1) / block_v;
  std::vector<Tensor> strip;  // cached logits tiles for the current strip
  if (cache_strip) {
    strip.resize(static_cast<std::size_t>(num_vtiles));
  }

  for (std::int64_t s0 = 0; s0 < n; s0 += block_s) {
    const std::int64_t s1 = std::min(n, s0 + block_s);
    const std::int64_t bs = s1 - s0;

    // ---- forward over vocab tiles: online LSE per strip row --------------
    Tensor lse(bs);
    lse.fill(kNegInf);
    std::uint64_t strip_bytes = 0;
    for (std::int64_t j = 0, vt = 0; j < v; j += block_v, ++vt) {
      const std::int64_t j1 = std::min(v, j + block_v);
      const std::int64_t bv = j1 - j;
      Tensor logits(bs, bv);
      tensor::gemm(h.row_block(s0, bs), Trans::No, w.row_block(j, bv),
                   Trans::Yes, logits.view(), 1.0f, 0.0f);
      out.flops += static_cast<std::uint64_t>(2) * bs * bv * d;
      Tensor tile_lse = tensor::row_lse(logits);
      for (std::int64_t r = 0; r < bs; ++r) {
        // lse <- logaddexp(lse, tile_lse), numerically stable.
        const float a = lse[r];
        const float b = tile_lse[r];
        if (b == kNegInf) {
          continue;
        }
        if (a == kNegInf) {
          lse[r] = b;
        } else {
          const float mx = std::max(a, b);
          lse[r] = mx + std::log(std::exp(a - mx) + std::exp(b - mx));
        }
      }
      if (cache_strip) {
        strip[static_cast<std::size_t>(vt)] = std::move(logits);
        strip_bytes += static_cast<std::uint64_t>(bs) * bv * sizeof(float);
      } else {
        strip_bytes = std::max<std::uint64_t>(
            strip_bytes, static_cast<std::uint64_t>(bs) * bv * sizeof(float));
      }
    }
    out.peak_scratch_bytes = std::max(out.peak_scratch_bytes, strip_bytes);

    // ---- loss: -logit[target] + lse (Algorithm 3 line 7) -----------------
    for (std::int64_t r = 0; r < bs; ++r) {
      const std::int64_t t = targets[static_cast<std::size_t>(s0 + r)];
      loss += static_cast<double>(lse[r]) - dot_row(h, s0 + r, w, t);
    }

    // ---- backward immediately, per vocab tile -----------------------------
    for (std::int64_t j = 0, vt = 0; j < v; j += block_v, ++vt) {
      const std::int64_t j1 = std::min(v, j + block_v);
      const std::int64_t bv = j1 - j;
      Tensor dlogits;
      if (cache_strip) {
        dlogits = std::move(strip[static_cast<std::size_t>(vt)]);
      } else {
        dlogits = Tensor(bs, bv);
        tensor::gemm(h.row_block(s0, bs), Trans::No, w.row_block(j, bv),
                     Trans::Yes, dlogits.view(), 1.0f, 0.0f);
        out.flops += static_cast<std::uint64_t>(2) * bs * bv * d;
      }
      // dLogits = (exp(logits - lse) - onehot) / N. (The paper's Algorithm 3
      // writes "+E"; the CE gradient is softmax minus the one-hot indicator —
      // see EXPERIMENTS.md, "paper typos".)
      for (std::int64_t r = 0; r < bs; ++r) {
        const float l = lse[r];
        for (std::int64_t c = 0; c < bv; ++c) {
          dlogits(r, c) = std::exp(dlogits(r, c) - l) * inv_n;
        }
        const std::int64_t t = targets[static_cast<std::size_t>(s0 + r)];
        if (t >= j && t < j1) {
          dlogits(r, t - j) -= inv_n;
        }
      }
      tensor::gemm(dlogits.view(), Trans::No, w.row_block(j, bv), Trans::No,
                   out.dh.row_block(s0, bs), 1.0f, 1.0f);
      tensor::gemm(dlogits.view(), Trans::Yes, h.row_block(s0, bs), Trans::No,
                   out.dw.row_block(j, bv), 1.0f, 1.0f);
      out.flops += static_cast<std::uint64_t>(4) * bs * bv * d;
    }
  }

  out.loss = loss / static_cast<double>(n);
  return out;
}

}  // namespace

LmHeadResult tiled_recompute_lm_head_loss(
    const Tensor& h, const Tensor& w,
    const std::vector<std::int64_t>& targets, std::int64_t block_s,
    std::int64_t block_v) {
  return tiled_lm_head_impl(h, w, targets, block_s, block_v,
                            /*cache_strip=*/false);
}

LmHeadResult fused_lm_head_loss(const Tensor& h, const Tensor& w,
                                const std::vector<std::int64_t>& targets,
                                std::int64_t block_s, std::int64_t block_v) {
  return tiled_lm_head_impl(h, w, targets, block_s, block_v,
                            /*cache_strip=*/true);
}

}  // namespace burst::kernels
