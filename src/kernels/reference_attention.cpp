#include "kernels/reference_attention.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace burst::kernels {

using tensor::Tensor;
using tensor::Trans;

namespace {
constexpr float kNegInf = -std::numeric_limits<float>::infinity();
}

RefAttnForward reference_attention_forward(const Tensor& q,
                                           const IndexMap& qmap,
                                           const Tensor& k, const Tensor& v,
                                           const IndexMap& kmap,
                                           const MaskSpec& mask, float scale) {
  const std::int64_t nq = q.rows();
  const std::int64_t nk = k.rows();
  assert(qmap.size() == nq && kmap.size() == nk);

  Tensor s(nq, nk);
  tensor::gemm(q.view(), Trans::No, k.view(), Trans::Yes, s.view(), scale,
               0.0f);
  for (std::int64_t i = 0; i < nq; ++i) {
    const std::int64_t qg = qmap.global(i);
    for (std::int64_t j = 0; j < nk; ++j) {
      if (!mask.allowed(qg, kmap.global(j))) {
        s(i, j) = kNegInf;
      }
    }
  }

  RefAttnForward out;
  out.lse = tensor::row_lse(s);
  tensor::exp_sub_row_inplace(s, out.lse);
  out.p = s;
  out.o = tensor::matmul(out.p, v);
  return out;
}

RefAttnGrads reference_attention_backward(const Tensor& q, const Tensor& k,
                                          const Tensor& v,
                                          const RefAttnForward& fwd,
                                          const Tensor& d_out, float scale) {
  const std::int64_t nq = q.rows();
  const std::int64_t nk = k.rows();

  RefAttnGrads g;
  // dV = P^T dO.
  g.dv = tensor::matmul_tn(fwd.p, d_out);
  // dP = dO V^T.
  Tensor dp = tensor::matmul_nt(d_out, v);
  // dS = P ∘ (dP - D), D = rowsum(dO ∘ O)  (softmax Jacobian applied rowwise).
  Tensor d = tensor::rowsum_product(d_out, fwd.o);
  Tensor ds(nq, nk);
  for (std::int64_t i = 0; i < nq; ++i) {
    for (std::int64_t j = 0; j < nk; ++j) {
      ds(i, j) = fwd.p(i, j) * (dp(i, j) - d[i]);
    }
  }
  // dQ = dS K * scale; dK = dS^T Q * scale.
  g.dq = tensor::matmul(ds, k);
  tensor::scale_inplace(g.dq, scale);
  g.dk = tensor::matmul_tn(ds, q);
  tensor::scale_inplace(g.dk, scale);
  return g;
}

}  // namespace burst::kernels
