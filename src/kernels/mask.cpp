#include "kernels/mask.hpp"

#include <algorithm>

namespace burst::kernels {

MaskSpec MaskSpec::block_sliding_window(std::int64_t num_blocks,
                                        std::int64_t window_blocks,
                                        std::int64_t block_size) {
  tensor::Tensor m = tensor::Tensor::zeros(num_blocks, num_blocks);
  for (std::int64_t i = 0; i < num_blocks; ++i) {
    const std::int64_t lo = std::max<std::int64_t>(0, i - window_blocks + 1);
    for (std::int64_t j = lo; j <= i; ++j) {
      m(i, j) = 1.0f;
    }
  }
  return block_sparse(std::move(m), block_size);
}

MaskSpec MaskSpec::document(std::vector<std::int64_t> doc_of) {
  MaskSpec m(MaskKind::kDocument);
  m.doc_of_ =
      std::make_shared<const std::vector<std::int64_t>>(std::move(doc_of));
  return m;
}

MaskSpec MaskSpec::document_from_lengths(
    const std::vector<std::int64_t>& lengths) {
  std::vector<std::int64_t> doc_of;
  for (std::size_t d = 0; d < lengths.size(); ++d) {
    for (std::int64_t i = 0; i < lengths[d]; ++i) {
      doc_of.push_back(static_cast<std::int64_t>(d));
    }
  }
  return document(std::move(doc_of));
}

namespace {

// Allowed pairs for a causal band mask `0 <= q - k < w` intersected with the
// rectangle [q0,q1) x [k0,k1). w = +inf expresses plain causal.
std::uint64_t count_band(std::int64_t q0, std::int64_t q1, std::int64_t k0,
                         std::int64_t k1, std::int64_t w) {
  std::uint64_t total = 0;
  for (std::int64_t q = q0; q < q1; ++q) {
    // k range: max(k0, q - w + 1) .. min(k1 - 1, q)
    const std::int64_t lo = std::max(k0, w == 0 ? k0 : q - w + 1);
    const std::int64_t hi = std::min(k1 - 1, q);
    if (hi >= lo) {
      total += static_cast<std::uint64_t>(hi - lo + 1);
    }
  }
  return total;
}

}  // namespace

std::uint64_t MaskSpec::count_allowed(std::int64_t q0, std::int64_t q1,
                                      std::int64_t k0, std::int64_t k1) const {
  if (q1 <= q0 || k1 <= k0) {
    return 0;
  }
  const std::uint64_t qn = static_cast<std::uint64_t>(q1 - q0);
  const std::uint64_t kn = static_cast<std::uint64_t>(k1 - k0);
  switch (kind_) {
    case MaskKind::kFull:
      return qn * kn;
    case MaskKind::kCausal:
      // Band with effectively infinite window.
      return count_band(q0, q1, k0, k1, q1 + 1);
    case MaskKind::kSlidingWindow:
      return count_band(q0, q1, k0, k1, window_);
    case MaskKind::kDilated:
    case MaskKind::kBlockSparse:
    case MaskKind::kDocument: {
      std::uint64_t total = 0;
      for (std::int64_t q = q0; q < q1; ++q) {
        for (std::int64_t k = k0; k < k1; ++k) {
          total += allowed(q, k) ? 1 : 0;
        }
      }
      return total;
    }
  }
  return 0;
}

MaskSpec::TileClass MaskSpec::classify(std::int64_t q0, std::int64_t q1,
                                       std::int64_t k0,
                                       std::int64_t k1) const {
  switch (kind_) {
    case MaskKind::kFull:
      return TileClass::kAll;
    case MaskKind::kCausal:
      if (k1 - 1 <= q0) {
        return TileClass::kAll;  // entire tile below the diagonal
      }
      if (k0 > q1 - 1) {
        return TileClass::kNone;  // entire tile above the diagonal
      }
      return TileClass::kPartial;
    case MaskKind::kSlidingWindow: {
      if (k0 > q1 - 1 || k1 - 1 < q0 - window_ + 1) {
        return TileClass::kNone;  // beyond diagonal or behind the window
      }
      if (k1 - 1 <= q0 && k0 >= q1 - window_) {
        return TileClass::kAll;  // tile fits inside the band for every row
      }
      return TileClass::kPartial;
    }
    case MaskKind::kDilated:
    case MaskKind::kBlockSparse:
    case MaskKind::kDocument: {
      // Exact scan; tiles are small. Early-out as soon as the tile is mixed.
      bool any = false;
      bool all = true;
      for (std::int64_t q = q0; q < q1; ++q) {
        for (std::int64_t k = k0; k < k1; ++k) {
          const bool a = allowed(q, k);
          any = any || a;
          all = all && a;
          if (any && !all) {
            return TileClass::kPartial;
          }
        }
      }
      if (!any) {
        return TileClass::kNone;
      }
      return all ? TileClass::kAll : TileClass::kPartial;
    }
  }
  return TileClass::kPartial;
}

}  // namespace burst::kernels
