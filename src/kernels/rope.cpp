#include "kernels/rope.hpp"

#include <cassert>
#include <cmath>

namespace burst::kernels {

namespace {

void rotate(tensor::Tensor& x, const IndexMap& positions, float theta_base,
            float sign) {
  assert(x.rank() == 2 && x.cols() % 2 == 0);
  assert(positions.size() == x.rows());
  const std::int64_t d = x.cols();
  for (std::int64_t r = 0; r < x.rows(); ++r) {
    const double pos = static_cast<double>(positions.global(r));
    for (std::int64_t i = 0; i < d / 2; ++i) {
      const double freq =
          std::pow(static_cast<double>(theta_base),
                   -2.0 * static_cast<double>(i) / static_cast<double>(d));
      const double angle = sign * pos * freq;
      const float c = static_cast<float>(std::cos(angle));
      const float s = static_cast<float>(std::sin(angle));
      const float a = x(r, 2 * i);
      const float b = x(r, 2 * i + 1);
      x(r, 2 * i) = a * c - b * s;
      x(r, 2 * i + 1) = a * s + b * c;
    }
  }
}

}  // namespace

void apply_rope_inplace(tensor::Tensor& x, const IndexMap& positions,
                        float theta_base) {
  rotate(x, positions, theta_base, 1.0f);
}

void apply_rope_inverse_inplace(tensor::Tensor& x, const IndexMap& positions,
                                float theta_base) {
  rotate(x, positions, theta_base, -1.0f);
}

}  // namespace burst::kernels
