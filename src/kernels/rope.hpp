// Rotary position embeddings (RoPE), as used by LLaMA.
//
// RoPE rotates each (2i, 2i+1) feature pair of Q and K by an angle
// proportional to the token's *global* position. Under context parallelism
// this is a classic correctness trap: a device's local row index is not its
// token position once zigzag/striped balance reorders the sequence, so the
// rotation must consult the shard's IndexMap — exactly what these helpers
// take. The rotation is orthogonal, so the backward pass is the inverse
// rotation applied to the gradients.
#pragma once

#include "kernels/index_map.hpp"
#include "tensor/tensor.hpp"

namespace burst::kernels {

/// Rotates rows of `x` ([n, d], d even) by their global positions.
void apply_rope_inplace(tensor::Tensor& x, const IndexMap& positions,
                        float theta_base = 10000.0f);

/// Inverse rotation (backward pass for gradients w.r.t. pre-RoPE values).
void apply_rope_inverse_inplace(tensor::Tensor& x, const IndexMap& positions,
                                float theta_base = 10000.0f);

}  // namespace burst::kernels
