// Resilient training driver: a supervisor around dist_train_step.
//
// The loop runs one distributed training step per Cluster::run, keeps the
// optimizer on the host (gradients are identical on all ranks after the
// data-parallel all-reduce, so rank 0's copy is authoritative), and
// persists durable snapshots every `snapshot_interval` steps. When a step
// fails — an injected device crash, a corrupted frame, an exhausted retry
// budget, an OOM — the supervisor:
//
//   1. detects the failure (Cluster::run rethrows the temporally-first
//      root cause; surviving ranks have already unwound via
//      PeerFailedError/ClusterAbortedError);
//   2. restores the latest valid snapshot (weights, Adam moments, data-RNG
//      state, data cursor), charging the modeled disk-read time;
//   3. optionally remaps onto a smaller topology when ranks are dead and
//      remap_on_failure is set (weights are replicated, so no state
//      migration is needed — the survivors just re-shard the sequence);
//   4. resumes from the snapshot step, replaying lost steps.
//
// Because snapshots capture the *complete* training state and the step is
// deterministic, a recovered run on the same world size finishes with
// weights bitwise identical to a fault-free run — the acceptance check of
// tests/test_resilience.cpp. Recovery events (detection latency, restore
// time, lost steps) land both in the returned report and, when a
// TraceRecorder is attached, in the trace on a synthetic supervisor track
// (pid == world_size).
// burst-lint: allow-file(no-direct-cluster) the training-resilience supervisor owns the cluster lifecycle (build, crash, rebuild), which is inherently a simulator-hosting concern
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "model/dist_model.hpp"
#include "model/optimizer.hpp"
#include "obs/report.hpp"
#include "resilience/snapshot.hpp"
#include "sim/cluster.hpp"
#include "tensor/rng.hpp"

namespace burst::resilience {

struct ResilienceConfig {
  model::DistTrainConfig dist;
  model::AdamConfig adam;
  /// Cluster to train on, including the FaultPlan under test and an
  /// optional trace sink.
  sim::Cluster::Config cluster;
  /// Reliability knobs applied to every rank's communicator.
  comm::Reliability reliability;

  int total_steps = 8;
  /// Snapshot after every `snapshot_interval` committed steps (plus one at
  /// step 0 so recovery always has a floor). <= 0 means step-0 only.
  int snapshot_interval = 2;
  /// Snapshots retained on disk (older ones are pruned).
  int keep_last = 3;
  std::string snapshot_dir;

  /// Tokens per training step (the sequence is seq_len + 1 ids). Must
  /// satisfy the balance divisibility rules for the cluster's world size.
  std::int64_t seq_len = 32;
  std::uint64_t data_seed = 1234;

  /// Give up (rethrow the last failure) after this many recoveries.
  int max_recoveries = 8;
  /// After a device crash, continue on the surviving ranks with the
  /// largest feasible smaller world size instead of restarting the full
  /// one. Changes gradient summation order, so recovered weights are no
  /// longer bitwise comparable to the fault-free run.
  bool remap_on_failure = false;
  /// Models snapshot save/restore I/O time on the virtual clock.
  double disk_bandwidth_bytes_per_s = 2e9;
};

struct RecoveryEvent {
  std::uint64_t failed_step = 0;       // step being executed when it failed
  std::uint64_t resumed_from_step = 0; // snapshot step restored
  int lost_steps = 0;                  // committed work thrown away
  int failed_rank = -1;                // root-cause rank, -1 if unknown
  std::string cause;                   // what() of the root-cause exception
  /// Stable burst::Error code of the root cause ("injected_fault",
  /// "comm_corruption", ...; "unknown" for untyped exceptions).
  std::string cause_code = "unknown";
  double detect_latency_s = 0.0;       // failure -> all ranks unwound
  double restore_time_s = 0.0;         // modeled snapshot read time
};

struct ResilienceReport {
  int steps_completed = 0;
  int recoveries = 0;
  int snapshots_taken = 0;
  /// World size training ended on (smaller than it started if remapped).
  int final_world_size = 0;
  std::vector<RecoveryEvent> events;
  /// Total virtual time: committed steps + failed attempts + snapshot I/O.
  double virtual_time_s = 0.0;
  /// Failed attempts, replayed steps, and restore I/O.
  double wasted_virtual_time_s = 0.0;
  /// Snapshot save time (the steady-state overhead of the interval knob).
  double snapshot_io_time_s = 0.0;
  double final_loss = 0.0;
  std::vector<double> losses;  // per committed step
  model::ModelWeights final_weights;
};

/// Deterministic synthetic training stream: token t+1 = (3t + 7) mod vocab
/// with 10% noise, drawn from `rng` (whose state is what snapshots
/// capture). Returns n + 1 token ids.
tensor::Tensor make_markov_sequence(tensor::Rng& rng, std::int64_t n,
                                    std::int64_t vocab);

/// Largest world size g <= max_g that satisfies the divisibility rules of
/// `cfg` for sequences of `seq_len` tokens (zigzag needs 2g | N, the other
/// balances g | N; Ulysses/USP additionally need g | heads).
int feasible_world_size(const model::DistTrainConfig& cfg,
                        std::int64_t seq_len, int max_g);

/// Runs `cfg.total_steps` training steps from `init` under the supervisor,
/// surviving the injected faults in cfg.cluster.faults. Rethrows the last
/// failure if recovery is exhausted or impossible. When cfg.cluster.metrics
/// is attached, the supervisor additionally feeds it:
///   resilience.recoveries{code=<cause_code>}  counter
///   resilience.snapshots_taken                counter
///   resilience.detect_latency_s               histogram
///   resilience.restore_time_s                 histogram
ResilienceReport resilient_train_loop(const ResilienceConfig& cfg,
                                      const model::ModelWeights& init);

/// Packages a finished run as the uniform structured artifact
/// (kind "training", schema burst.run_report). Recovery events become
/// measurements/config entries — a survived fault is success, not an error —
/// and self_check asserts every configured step committed.
obs::RunReport to_run_report(const ResilienceConfig& cfg,
                             const ResilienceReport& rep);

}  // namespace burst::resilience
