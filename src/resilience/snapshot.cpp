#include "resilience/snapshot.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace burst::resilience {

namespace fs = std::filesystem;

namespace {

// Container layout (shared via write_checked_blob / read_checked_blob):
// [magic u64][version u32][payload_size u64][checksum u64][payload bytes].
// Checksum is FNV-1a 64 over the payload only.
constexpr std::uint64_t kMagic = 0x50414E53'54525542ull;  // "BURSTSNAP"-ish
constexpr std::uint32_t kVersion = 1;

std::vector<unsigned char> serialize_payload(const TrainSnapshot& snap) {
  PayloadWriter w;
  w.u64(snap.step);
  w.u64(snap.data_cursor);
  w.u64(snap.data_rng.state);
  w.u32(snap.data_rng.has_spare ? 1 : 0);
  w.f64(snap.data_rng.spare);
  w.i64(snap.adam.t);
  w.u64(snap.adam.m.size());
  w.f32s(snap.adam.m.data(), snap.adam.m.size());
  w.f32s(snap.adam.v.data(), snap.adam.v.size());
  w.u64(snap.weights.layers.size());
  for (const auto& l : snap.weights.layers) {
    w.tensor(l.wq);
    w.tensor(l.wk);
    w.tensor(l.wv);
    w.tensor(l.wo);
    w.tensor(l.w1);
    w.tensor(l.w2);
  }
  w.tensor(snap.weights.w_embed);
  w.tensor(snap.weights.w_head);
  return w.bytes();
}

TrainSnapshot deserialize_payload(const std::vector<unsigned char>& payload) {
  PayloadReader r(payload.data(), payload.size());
  TrainSnapshot snap;
  snap.step = r.u64();
  snap.data_cursor = r.u64();
  snap.data_rng.state = r.u64();
  snap.data_rng.has_spare = r.u32() != 0;
  snap.data_rng.spare = r.f64();
  snap.adam.t = static_cast<int>(r.i64());
  const std::uint64_t n = r.u64();
  snap.adam.m.resize(n);
  snap.adam.v.resize(n);
  r.f32s(snap.adam.m.data(), n);
  r.f32s(snap.adam.v.data(), n);
  const std::uint64_t layers = r.u64();
  snap.weights.layers.resize(layers);
  for (auto& l : snap.weights.layers) {
    l.wq = r.tensor();
    l.wk = r.tensor();
    l.wv = r.tensor();
    l.wo = r.tensor();
    l.w1 = r.tensor();
    l.w2 = r.tensor();
  }
  snap.weights.w_embed = r.tensor();
  snap.weights.w_head = r.tensor();
  if (!r.done()) {
    throw SnapshotCorruptError("trailing bytes after payload");
  }
  return snap;
}

/// Step number encoded in a snapshot filename, or -1 if it is not one.
std::int64_t step_of(const fs::path& p) {
  const std::string name = p.filename().string();
  if (name.rfind("snap-", 0) != 0 || p.extension() != ".bin") {
    return -1;
  }
  try {
    return std::stoll(name.substr(5));
  } catch (const std::invalid_argument&) {
    return -1;  // not a number: some other file in the snapshot dir
  } catch (const std::out_of_range&) {
    return -1;  // absurdly long digit string: not one of our files
  }
}

}  // namespace

std::uint64_t fnv1a64(const unsigned char* data, std::size_t n) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < n; ++i) {
    h = (h ^ data[i]) * 1099511628211ull;
  }
  return h;
}

std::uint64_t write_checked_blob(const std::string& final_path,
                                 const std::vector<unsigned char>& payload) {
  const std::uint64_t checksum = fnv1a64(payload.data(), payload.size());
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream os(tmp_path, std::ios::binary | std::ios::trunc);
    if (!os) {
      throw SnapshotIoError("cannot open " + tmp_path);
    }
    const std::uint64_t size = payload.size();
    os.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
    os.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
    os.write(reinterpret_cast<const char*>(&size), sizeof(size));
    os.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
    os.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size()));
    if (!os) {
      throw SnapshotIoError("short write to " + tmp_path);
    }
  }
  // Atomic commit: the final name either holds the complete old file or the
  // complete new one, never a partial write.
  fs::rename(tmp_path, final_path);
  return payload.size() + kBlobHeaderBytes;
}

std::vector<unsigned char> read_checked_blob(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw SnapshotCorruptError("cannot open " + path);
  }
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  is.read(reinterpret_cast<char*>(&version), sizeof(version));
  is.read(reinterpret_cast<char*>(&size), sizeof(size));
  is.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
  if (!is || magic != kMagic) {
    throw SnapshotCorruptError("bad magic in " + path);
  }
  if (version != kVersion) {
    throw SnapshotCorruptError("unsupported version " +
                               std::to_string(version) + " in " + path);
  }
  std::vector<unsigned char> payload(size);
  is.read(reinterpret_cast<char*>(payload.data()),
          static_cast<std::streamsize>(size));
  if (static_cast<std::uint64_t>(is.gcount()) != size) {
    throw SnapshotCorruptError("truncated payload in " + path);
  }
  if (fnv1a64(payload.data(), payload.size()) != checksum) {
    throw SnapshotCorruptError("checksum mismatch in " + path);
  }
  return payload;
}

bool bitwise_equal(const model::ModelWeights& a,
                   const model::ModelWeights& b) {
  const auto tensor_eq = [](const tensor::Tensor& x, const tensor::Tensor& y) {
    return x.shape() == y.shape() &&
           std::memcmp(x.data(), y.data(),
                       static_cast<std::size_t>(x.numel()) * sizeof(float)) ==
               0;
  };
  if (a.layers.size() != b.layers.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    const auto& la = a.layers[i];
    const auto& lb = b.layers[i];
    if (!tensor_eq(la.wq, lb.wq) || !tensor_eq(la.wk, lb.wk) ||
        !tensor_eq(la.wv, lb.wv) || !tensor_eq(la.wo, lb.wo) ||
        !tensor_eq(la.w1, lb.w1) || !tensor_eq(la.w2, lb.w2)) {
      return false;
    }
  }
  return tensor_eq(a.w_embed, b.w_embed) && tensor_eq(a.w_head, b.w_head);
}

std::uint64_t snapshot_bytes(const TrainSnapshot& snap) {
  return serialize_payload(snap).size() + kBlobHeaderBytes;
}

SnapshotManager::SnapshotManager(std::string dir, int keep_last)
    : dir_(std::move(dir)), keep_last_(std::max(1, keep_last)) {
  fs::create_directories(dir_);
}

std::uint64_t SnapshotManager::save(const TrainSnapshot& snap) {
  const fs::path final_path =
      fs::path(dir_) / ("snap-" + std::to_string(snap.step) + ".bin");
  const std::uint64_t written =
      write_checked_blob(final_path.string(), serialize_payload(snap));

  // Retention: drop the oldest snapshots beyond keep_last.
  std::vector<std::string> all = list();
  while (static_cast<int>(all.size()) > keep_last_) {
    fs::remove(all.front());
    all.erase(all.begin());
  }
  return written;
}

TrainSnapshot SnapshotManager::load(const std::string& path) const {
  return deserialize_payload(read_checked_blob(path));
}

TrainSnapshot SnapshotManager::load_latest() const {
  std::vector<std::string> all = list();
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    try {
      return load(*it);
      // burst-lint: allow(error-flow) load_latest's contract is exactly
      // this fallback: skip each corrupt snapshot and try the next-newest;
      // if none validates, the typed throw below reports it.
    } catch (const SnapshotCorruptError&) {
    }
  }
  throw SnapshotCorruptError("no valid snapshot in " + dir_);
}

std::vector<std::string> SnapshotManager::list() const {
  std::vector<std::pair<std::int64_t, std::string>> found;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::int64_t step = step_of(entry.path());
    if (step >= 0) {
      found.emplace_back(step, entry.path().string());
    }
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [step, path] : found) {
    paths.push_back(std::move(path));
  }
  return paths;
}

}  // namespace burst::resilience
