// Durable, checksummed training snapshots.
//
// A TrainSnapshot captures everything needed to resume training bitwise
// identically after a crash: the model weights, the Adam moments and step
// counter, the data-stream RNG state, and the data cursor. Snapshots are
// serialized to a single binary file with a magic/version header and an
// FNV-1a 64-bit checksum over the payload; SnapshotManager::save writes to
// a temporary file and commits with an atomic rename, so a crash during
// save can never leave a half-written file under the snapshot name.
// Loading validates magic, version, size, and checksum, and rejects corrupt
// or truncated files with SnapshotCorruptError; load_latest skips invalid
// files and falls back to the newest valid one.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "model/config.hpp"
#include "model/optimizer.hpp"
#include "model/transformer.hpp"
#include "tensor/rng.hpp"

namespace burst::resilience {

/// Raised when a snapshot file fails validation (bad magic, wrong version,
/// truncated payload, or checksum mismatch).
class SnapshotCorruptError : public std::runtime_error {
 public:
  explicit SnapshotCorruptError(const std::string& what)
      : std::runtime_error("corrupt snapshot: " + what) {}
};

/// Everything the resilient training loop needs to resume a run.
struct TrainSnapshot {
  /// Next step to execute when resuming (steps [0, step) are committed).
  std::uint64_t step = 0;
  /// Position in the data stream (== step for one sequence per step).
  std::uint64_t data_cursor = 0;
  /// Data-stream generator state *before* producing step `step`'s sequence.
  tensor::RngState data_rng;
  model::ModelWeights weights;
  model::AdamState adam;
};

/// Bitwise equality of two weight sets (shape and every byte of every
/// parameter tensor). The acceptance check for crash-recovery runs.
bool bitwise_equal(const model::ModelWeights& a, const model::ModelWeights& b);

/// Serialized size of `snap` in bytes (header included) — what save() will
/// write, used to model snapshot I/O time against a disk bandwidth.
std::uint64_t snapshot_bytes(const TrainSnapshot& snap);

class SnapshotManager {
 public:
  /// Snapshots live in `dir` (created if missing) as snap-<step>.bin.
  /// After each save, only the newest `keep_last` snapshots are retained.
  explicit SnapshotManager(std::string dir, int keep_last = 2);

  const std::string& dir() const { return dir_; }

  /// Atomically persists `snap`; returns the bytes written.
  std::uint64_t save(const TrainSnapshot& snap);

  /// Loads and validates one snapshot file.
  TrainSnapshot load(const std::string& path) const;

  /// Loads the newest snapshot that validates, silently skipping corrupt
  /// files. Throws SnapshotCorruptError if no valid snapshot exists.
  TrainSnapshot load_latest() const;

  /// Snapshot file paths in the directory, oldest step first.
  std::vector<std::string> list() const;

 private:
  std::string dir_;
  int keep_last_;
};

}  // namespace burst::resilience
