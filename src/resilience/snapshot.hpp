// Durable, checksummed training snapshots.
//
// A TrainSnapshot captures everything needed to resume training bitwise
// identically after a crash: the model weights, the Adam moments and step
// counter, the data-stream RNG state, and the data cursor. Snapshots are
// serialized to a single binary file with a magic/version header and an
// FNV-1a 64-bit checksum over the payload; SnapshotManager::save writes to
// a temporary file and commits with an atomic rename, so a crash during
// save can never leave a half-written file under the snapshot name.
// Loading validates magic, version, size, and checksum, and rejects corrupt
// or truncated files with SnapshotCorruptError; load_latest skips invalid
// files and falls back to the newest valid one.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "model/optimizer.hpp"
#include "model/transformer.hpp"
#include "obs/error.hpp"
#include "tensor/rng.hpp"

namespace burst::resilience {

/// Raised when a snapshot file fails validation (bad magic, wrong version,
/// truncated payload, or checksum mismatch). burst::Error code:
/// snapshot_corrupt.
class SnapshotCorruptError : public burst::Error {
 public:
  explicit SnapshotCorruptError(const std::string& what)
      : burst::Error(ErrorCode::kSnapshotCorrupt, "corrupt snapshot: " + what) {
  }
};

/// Raised when a snapshot file cannot be written or read at the I/O level
/// (open/write failure, not validation). burst::Error code: snapshot_io.
class SnapshotIoError : public burst::Error {
 public:
  explicit SnapshotIoError(const std::string& what)
      : burst::Error(ErrorCode::kSnapshotIo, "snapshot io: " + what) {}
};

// ---- generic checked-blob container ---------------------------------------
// The on-disk format every snapshot family shares (training snapshots here,
// serving checkpoints in serve/snapshot.hpp): [magic u64][version u32]
// [payload_size u64][checksum u64][payload], checksum = FNV-1a 64 over the
// payload, written to a .tmp file and committed with an atomic rename.

/// Container header overhead in bytes (magic + version + size + checksum).
constexpr std::uint64_t kBlobHeaderBytes = 8 + 4 + 8 + 8;

/// Atomically writes `payload` in the checked-blob container to
/// `final_path` (a crash mid-save never leaves a partial file under that
/// name). Returns the total bytes written, header included.
std::uint64_t write_checked_blob(const std::string& final_path,
                                 const std::vector<unsigned char>& payload);

/// Reads and validates one checked-blob file; throws SnapshotCorruptError on
/// bad magic, unsupported version, truncation, or checksum mismatch.
std::vector<unsigned char> read_checked_blob(const std::string& path);

/// FNV-1a 64 over a byte range (the container checksum; exposed so tests
/// can forge/verify payloads).
std::uint64_t fnv1a64(const unsigned char* data, std::size_t n);

/// Little typed appender used to build checked-blob payloads.
class PayloadWriter {
 public:
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void f32s(const float* v, std::size_t n) { raw(v, n * sizeof(float)); }

  void tensor(const tensor::Tensor& t) {
    u32(static_cast<std::uint32_t>(t.rank()));
    for (int d = 0; d < t.rank(); ++d) {
      i64(t.size(d));
    }
    f32s(t.data(), static_cast<std::size_t>(t.numel()));
  }

  const std::vector<unsigned char>& bytes() const { return buf_; }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<unsigned char> buf_;
};

/// Bounds-checked reader over a checked-blob payload; every overrun throws
/// SnapshotCorruptError, so truncated payloads fail loud, never UB.
class PayloadReader {
 public:
  PayloadReader(const unsigned char* data, std::size_t n)
      : data_(data), n_(n) {}

  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::uint64_t u64() { return get<std::uint64_t>(); }
  std::int64_t i64() { return get<std::int64_t>(); }
  double f64() { return get<double>(); }

  void f32s(float* out, std::size_t n) {
    need(n * sizeof(float));
    std::memcpy(out, data_ + pos_, n * sizeof(float));
    pos_ += n * sizeof(float);
  }

  tensor::Tensor tensor() {
    const std::uint32_t rank = u32();
    if (rank != 1 && rank != 2) {
      throw SnapshotCorruptError("tensor rank " + std::to_string(rank));
    }
    tensor::Tensor t;
    if (rank == 1) {
      t = tensor::Tensor(i64());
    } else {
      const std::int64_t rows = i64();
      t = tensor::Tensor(rows, i64());
    }
    f32s(t.data(), static_cast<std::size_t>(t.numel()));
    return t;
  }

  bool done() const { return pos_ == n_; }

 private:
  template <typename T>
  T get() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void need(std::size_t n) const {
    if (pos_ + n > n_) {
      throw SnapshotCorruptError("payload truncated");
    }
  }

  const unsigned char* data_;
  std::size_t n_;
  std::size_t pos_ = 0;
};

/// Everything the resilient training loop needs to resume a run.
struct TrainSnapshot {
  /// Next step to execute when resuming (steps [0, step) are committed).
  std::uint64_t step = 0;
  /// Position in the data stream (== step for one sequence per step).
  std::uint64_t data_cursor = 0;
  /// Data-stream generator state *before* producing step `step`'s sequence.
  tensor::RngState data_rng;
  model::ModelWeights weights;
  model::AdamState adam;
};

/// Bitwise equality of two weight sets (shape and every byte of every
/// parameter tensor). The acceptance check for crash-recovery runs.
bool bitwise_equal(const model::ModelWeights& a, const model::ModelWeights& b);

/// Serialized size of `snap` in bytes (header included) — what save() will
/// write, used to model snapshot I/O time against a disk bandwidth.
std::uint64_t snapshot_bytes(const TrainSnapshot& snap);

class SnapshotManager {
 public:
  /// Snapshots live in `dir` (created if missing) as snap-<step>.bin.
  /// After each save, only the newest `keep_last` snapshots are retained.
  explicit SnapshotManager(std::string dir, int keep_last = 2);

  const std::string& dir() const { return dir_; }

  /// Atomically persists `snap`; returns the bytes written.
  std::uint64_t save(const TrainSnapshot& snap);

  /// Loads and validates one snapshot file.
  TrainSnapshot load(const std::string& path) const;

  /// Loads the newest snapshot that validates, silently skipping corrupt
  /// files. Throws SnapshotCorruptError if no valid snapshot exists.
  TrainSnapshot load_latest() const;

  /// Snapshot file paths in the directory, oldest step first.
  std::vector<std::string> list() const;

 private:
  std::string dir_;
  int keep_last_;
};

}  // namespace burst::resilience
